// Lazy-vs-full parser parity: LazyMessage::Index must accept exactly the
// inputs Message::Parse accepts, and on acceptance every observable — header
// table, first-value lookups, typed Via/From/To/CSeq views, start line,
// body clamping — must agree with the materialized Message. The property is
// pinned over a handcrafted corpus (compact forms, folded Vias, bare-LF,
// adversarial rejects), a generated-message corpus, and random mutations.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "sdp/sdp.h"
#include "sip/lazy_message.h"
#include "sip/message.h"

namespace vids::sip {
namespace {

using common::Stream;

// Materializes a ParamList the way the mutable codec does: lowercased keys,
// last occurrence wins. `drop` skips one key (Via::Parse pulls "branch" out
// of the map; ViaView keeps it in the list).
std::map<std::string, std::string> ToMap(const ParamList& params,
                                         std::string_view drop = {}) {
  std::map<std::string, std::string> out;
  for (size_t i = 0; i < params.size(); ++i) {
    std::string key(params[i].name);
    common::AsciiLowerInPlace(key);
    if (!drop.empty() && key == drop) continue;
    out.insert_or_assign(std::move(key), std::string(params[i].value));
  }
  return out;
}

void ExpectUriParity(const UriView& lazy, const SipUri& full,
                     const std::string& wire) {
  EXPECT_EQ(lazy.user, full.user) << wire;
  EXPECT_EQ(lazy.host, full.host) << wire;
  EXPECT_EQ(lazy.port, full.port) << wire;
  EXPECT_EQ(lazy.params, full.params) << wire;
}

void ExpectNameAddrParity(const NameAddrView* lazy,
                          const std::optional<NameAddr>& full,
                          const std::string& wire) {
  ASSERT_EQ(lazy != nullptr, full.has_value()) << wire;
  if (lazy == nullptr) return;
  EXPECT_EQ(lazy->display_name, full->display_name) << wire;
  ExpectUriParity(lazy->uri, full->uri, wire);
  EXPECT_EQ(ToMap(lazy->params), full->params) << wire;
  const auto lazy_tag = lazy->Tag();
  const auto full_tag = full->Tag();
  ASSERT_EQ(lazy_tag.has_value(), full_tag.has_value()) << wire;
  if (lazy_tag.has_value()) {
    EXPECT_EQ(*lazy_tag, *full_tag) << wire;
  }
}

// The parity property itself: both parsers agree on acceptance, and on
// acceptance every observable agrees.
void ExpectParity(const std::string& wire) {
  LazyMessage lazy;
  const bool lazy_ok = lazy.Index(wire);
  const auto full = Message::Parse(wire);
  ASSERT_EQ(lazy_ok, full.has_value()) << "acceptance disagrees on:\n"
                                       << wire;
  if (!lazy_ok) return;

  // Start line.
  EXPECT_EQ(lazy.IsRequest(), full->IsRequest()) << wire;
  EXPECT_EQ(lazy.method(), full->method()) << wire;
  EXPECT_EQ(lazy.status(), full->status()) << wire;
  if (lazy.IsRequest()) {
    ExpectUriParity(lazy.request_uri(), full->request_uri(), wire);
  } else {
    EXPECT_EQ(lazy.reason(), full->reason()) << wire;
  }

  // Header table: same cardinality, and per name the same value sequence.
  ASSERT_EQ(lazy.HeaderCount(), full->HeaderCount()) << wire;
  for (size_t i = 0; i < lazy.HeaderCount(); ++i) {
    const auto& entry = lazy.HeaderAt(i);
    std::vector<std::string_view> lazy_values;
    for (size_t j = 0; j < lazy.HeaderCount(); ++j) {
      const auto& other = lazy.HeaderAt(j);
      const bool same_name = entry.id != HeaderId::kOther
                                 ? other.id == entry.id
                                 : other.id == HeaderId::kOther &&
                                       common::IEquals(other.name, entry.name);
      if (same_name) lazy_values.push_back(other.value);
    }
    const auto full_values = full->Headers(entry.name);
    ASSERT_EQ(lazy_values.size(), full_values.size())
        << wire << "\nheader: " << entry.name;
    for (size_t j = 0; j < lazy_values.size(); ++j) {
      EXPECT_EQ(lazy_values[j], full_values[j]) << wire;
    }
    EXPECT_EQ(lazy.Header(entry.name), full->Header(entry.name)) << wire;
  }

  // Body (Content-Length clamping included) and Call-ID.
  EXPECT_EQ(lazy.body(), full->body()) << wire;
  EXPECT_EQ(lazy.CallId(), full->CallId()) << wire;

  // CSeq.
  const auto full_cseq = full->Cseq();
  ASSERT_EQ(lazy.Cseq() != nullptr, full_cseq.has_value()) << wire;
  if (const auto* cseq = lazy.Cseq()) {
    EXPECT_EQ(cseq->number, full_cseq->number) << wire;
    EXPECT_EQ(cseq->method, full_cseq->method) << wire;
  }

  // Top Via: agreement on presence/decodability, then field parity. The
  // view keeps "branch" in its param list; the map drops it.
  const auto full_via = full->TopVia();
  const auto* lazy_via = lazy.TopVia();
  ASSERT_EQ(lazy_via != nullptr, full_via.has_value()) << wire;
  if (lazy_via != nullptr) {
    EXPECT_EQ(lazy_via->transport, full_via->transport) << wire;
    EXPECT_EQ(lazy_via->sent_by, full_via->sent_by) << wire;
    EXPECT_EQ(lazy_via->branch, full_via->branch) << wire;
    EXPECT_EQ(ToMap(lazy_via->params, "branch"), full_via->params) << wire;
  }

  ExpectNameAddrParity(lazy.From(), full->From(), wire);
  ExpectNameAddrParity(lazy.To(), full->To(), wire);
}

TEST(SipLazyParity, HandcraftedValidCorpus) {
  const std::string corpus[] = {
      // Minimal request / response.
      "INVITE sip:bob@b.example.com SIP/2.0\r\n\r\n",
      "SIP/2.0 200 OK\r\n\r\n",
      "SIP/2.0 180 Ringing\r\nCSeq: 7 INVITE\r\n\r\n",
      "SIP/2.0 200\r\n\r\n",  // empty reason
      // Compact header forms (RFC 3261 §7.3.3).
      "INVITE sip:b@h SIP/2.0\r\n"
      "i: call-1\r\n"
      "f: <sip:a@x>;tag=t1\r\n"
      "t: sip:b@h\r\n"
      "v: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bK1\r\n"
      "m: <sip:a@10.0.0.2>\r\n"
      "c: application/sdp\r\n"
      "l: 0\r\n\r\n",
      // Folded multi-Via: comma-separated values unfold to entries.
      "BYE sip:b@h SIP/2.0\r\n"
      "Via: SIP/2.0/UDP 10.0.0.1:5060;branch=a, SIP/2.0/TCP 10.0.0.2:5062\r\n"
      "Via: SIP/2.0/UDP 10.0.0.3\r\n\r\n",
      // Empty comma pieces are kept (and later fail Via decode, in parity).
      "OPTIONS sip:b@h SIP/2.0\r\nVia: ,SIP/2.0/UDP 1.2.3.4,\r\n\r\n",
      "OPTIONS sip:b@h SIP/2.0\r\nVia:\r\n\r\n",
      // Bare-LF line endings and the "\n\n" body split.
      "REGISTER sip:h SIP/2.0\nCall-ID: lf-1\nCSeq: 1 REGISTER\n\nbody",
      // Head with no body separator at all.
      "ACK sip:b@h SIP/2.0\r\nCall-ID: nb-1",
      // Unknown method and unknown headers (word-capitalized by the codec).
      "NOTIFY sip:b@h SIP/2.0\r\nx-custom-header: zig\r\nX-CUSTOM-HEADER: "
      "zag\r\n\r\n",
      // Odd whitespace around names and values.
      "INVITE sip:b@h SIP/2.0\r\n  Subject  :   hello world  \r\n"
      "Blank:\r\n\r\n",
      // Name-addr shapes: quoted display, bare addr-spec with URI params,
      // flag params, parameter case folding, duplicate keys (last wins).
      "INVITE sip:b@h SIP/2.0\r\n"
      "From: \"Alice Q\" <sip:alice@a.com:5070;user=phone>;tag=abc;flag\r\n"
      "To: sip:bob@b.com;tag=one;TAG=two\r\n"
      "Contact: Bob <sip:bob@10.0.0.9:5080>;q=0.7\r\n\r\n",
      // Present-but-empty tag is distinct from absent.
      "INVITE sip:b@h SIP/2.0\r\nFrom: <sip:a@x>;tag=\r\nTo: <sip:b@y>\r\n\r\n",
      // URI edge: empty user, params, no '@'.
      "INVITE sip:h.example.com;transport=udp SIP/2.0\r\n\r\n",
      "INVITE sip::5060 SIP/2.0\r\n\r\n",
      // Via without port (defaults 5060) and with extra params.
      "INVITE sip:b@h SIP/2.0\r\n"
      "Via: SIP/2.0/TCP 10.1.1.1;received=1.2.3.4;rport=5061;branch=z9\r\n\r\n",
      // Via whose value does not decode (both typed views must agree).
      "INVITE sip:b@h SIP/2.0\r\nVia: SIP/3.0/UDP 10.0.0.1\r\n\r\n",
      "INVITE sip:b@h SIP/2.0\r\nVia: SIP/2.0/UDP not-an-ip\r\n\r\n",
      "INVITE sip:b@h SIP/2.0\r\nFrom: <sip:a@x\r\n\r\n",  // unclosed <
      // Response with no CSeq (method() falls back to kUnknown).
      "SIP/2.0 486 Busy Here\r\nCall-ID: r-1\r\n\r\n",
      // Content-Length clamps the body; multiple CSeq (first one rules).
      "INVITE sip:b@h SIP/2.0\r\nContent-Length: 4\r\n\r\nbodyEXTRA",
      "INVITE sip:b@h SIP/2.0\r\nContent-Length: 0\r\n\r\nignored",
      "INVITE sip:b@h SIP/2.0\r\nCSeq: 1 INVITE\r\nCSeq: 2 BYE\r\n\r\n",
      // Blank lines inside the head are skipped.
      "INVITE sip:b@h SIP/2.0\r\n\r\nVia: SIP/2.0/UDP 1.2.3.4\r\n",
  };
  for (const auto& wire : corpus) ExpectParity(wire);
}

TEST(SipLazyParity, HandcraftedRejectCorpus) {
  const std::string corpus[] = {
      "",
      "\r\n",
      "\r\n\r\n",
      "INVITE sip:b@h\r\n\r\n",             // missing SIP version
      "INVITE sip:b@h SIP/2.1\r\n\r\n",     // wrong version
      "INVITE sip:b@h sip/2.0\r\n\r\n",     // version is case-sensitive
      "INVITE  sip:b@h SIP/2.0\r\n\r\n",    // doubled space -> empty piece
      "INVITE sip:b@h SIP/2.0 x\r\n\r\n",   // four pieces
      "INVITE http://b SIP/2.0\r\n\r\n",    // non-sip URI scheme
      "INVITE sip:b@h:70000 SIP/2.0\r\n\r\n",  // port overflow
      "INVITE sip:b@h:xx SIP/2.0\r\n\r\n",     // non-numeric port
      "INVITE sip:b@ SIP/2.0\r\n\r\n",         // empty host after '@'
      "SIP/2.0 99 Low\r\n\r\n",                // status below 100
      "SIP/2.0 700 High\r\n\r\n",              // status above 699
      "SIP/2.0 abc Bad\r\n\r\n",               // non-numeric status
      "INVITE sip:b@h SIP/2.0\r\nNoColonHere\r\n\r\n",
      "INVITE sip:b@h SIP/2.0\r\nCSeq: x INVITE\r\n\r\n",
      "INVITE sip:b@h SIP/2.0\r\nCSeq: 1 NOTIFY\r\n\r\n",  // unknown method
      "INVITE sip:b@h SIP/2.0\r\nCSeq: 1\r\n\r\n",         // missing method
      "INVITE sip:b@h SIP/2.0\r\nCSeq: -1 INVITE\r\n\r\n",
      "INVITE sip:b@h SIP/2.0\r\nContent-Length: nan\r\n\r\nx",
      "INVITE sip:b@h SIP/2.0\r\nContent-Length: -3\r\n\r\nx",
      "INVITE sip:b@h SIP/2.0\r\nContent-Length: 10\r\n\r\nshort",  // truncated
      "INVITE sip:b@h SIP/2.0\r\nl: 10\r\n\r\nshort",  // compact form too
  };
  for (const auto& wire : corpus) ExpectParity(wire);
}

TEST(SipLazyParity, WireRealisticFramingCorpus) {
  // Inputs a tap actually sees (the torn_truncated pcap corpus replays
  // these same shapes end to end): LF-only framing, unterminated final
  // header lines, Content-Length overruns, binary bodies.
  const std::string corpus[] = {
      // No trailing CRLF after the last header.
      "OPTIONS sip:b@h SIP/2.0\r\nCall-ID: nocrlf",
      // Compact-form header as the final, unterminated line.
      "OPTIONS sip:b@h SIP/2.0\r\n"
      "v: SIP/2.0/UDP 10.9.0.66:5060;branch=z9hG4bKco\r\n"
      "i:compact-1",
      // Content-Length far past the end of the captured buffer.
      "INVITE sip:b@h SIP/2.0\r\nCall-ID: overrun\r\nCSeq: 1 INVITE\r\n"
      "Content-Length: 9999\r\n\r\nshort",
      // CRLF-framed head with an LF-only blank line inside the body.
      "OPTIONS sip:b@h SIP/2.0\r\nCall-ID: crlf-head\r\n"
      "Content-Length: 8\r\n\r\nAB\n\nCD!!",
  };
  for (const auto& wire : corpus) ExpectParity(wire);
}

TEST(SipLazyParity, LfFramedHeadSplitsAtFirstBlankLine) {
  // An LF-framed message whose binary body happens to contain \r\n\r\n:
  // the head/body split must take the earlier blank line (the LF one),
  // not extend the head into the body hunting for CRLFCRLF. Before the
  // fix this mis-framed: the headers swallowed "AB" and the message was
  // spuriously rejected on the Content-Length check.
  const std::string wire =
      "OPTIONS sip:bob@b.example.com SIP/2.0\n"
      "Via: SIP/2.0/UDP 10.9.0.66:5060;branch=z9hG4bKlf\n"
      "Call-ID: lf-framed-1\n"
      "CSeq: 1 OPTIONS\n"
      "Content-Length: 8\n"
      "\n"
      "AB\r\n\r\nCD";
  ExpectParity(wire);
  LazyMessage lazy;
  ASSERT_TRUE(lazy.Index(wire));
  EXPECT_EQ(lazy.body(), "AB\r\n\r\nCD");
  EXPECT_EQ(lazy.HeaderCount(), 4u);
  EXPECT_EQ(lazy.CallId(), "lf-framed-1");

  // Mirror image: CRLF blank line first, \n\n later in the body.
  const std::string mirror =
      "OPTIONS sip:bob@b.example.com SIP/2.0\r\n"
      "Call-ID: crlf-framed-1\r\n"
      "Content-Length: 8\r\n"
      "\r\n"
      "AB\n\nCD!!";
  ExpectParity(mirror);
  LazyMessage mirror_lazy;
  ASSERT_TRUE(mirror_lazy.Index(mirror));
  EXPECT_EQ(mirror_lazy.body(), "AB\n\nCD!!");
}

TEST(SipLazyParity, CapacityOverflowStaysCorrect) {
  // More headers than the inline span table (32) and more parameters than
  // the inline param list (8): the overflow paths must stay in parity.
  std::string wire = "INVITE sip:b@h SIP/2.0\r\n";
  for (int i = 0; i < 40; ++i) {
    wire += "X-Pad-" + std::to_string(i) + ": v" + std::to_string(i) + "\r\n";
  }
  wire += "From: <sip:a@x>";
  for (int i = 0; i < 12; ++i) {
    wire += ";p" + std::to_string(i) + "=" + std::to_string(i);
  }
  wire += ";tag=deep\r\n\r\n";
  ExpectParity(wire);

  LazyMessage lazy;
  ASSERT_TRUE(lazy.Index(wire));
  EXPECT_EQ(lazy.HeaderCount(), 41u);
  ASSERT_NE(lazy.From(), nullptr);
  EXPECT_EQ(lazy.From()->params.size(), 13u);
  EXPECT_EQ(lazy.From()->Tag(), "deep");
}

TEST(SipLazyParity, MemoizationReturnsSameViewAndReindexResets) {
  LazyMessage lazy;
  ASSERT_TRUE(lazy.Index(
      "INVITE sip:b@h SIP/2.0\r\n"
      "Via: SIP/2.0/UDP 10.0.0.1:5062;branch=z9hG4bKm1\r\n"
      "From: <sip:a@x>;tag=t1\r\nTo: <sip:b@h>\r\nCSeq: 3 INVITE\r\n\r\n"));
  const auto* via_first = lazy.TopVia();
  const auto* from_first = lazy.From();
  ASSERT_NE(via_first, nullptr);
  ASSERT_NE(from_first, nullptr);
  // Memoized: repeated access decodes nothing new, same storage.
  EXPECT_EQ(lazy.TopVia(), via_first);
  EXPECT_EQ(lazy.From(), from_first);
  EXPECT_EQ(via_first->branch, "z9hG4bKm1");

  // Re-indexing resets the memo: the same accessors reflect the new payload.
  ASSERT_TRUE(lazy.Index(
      "BYE sip:b@h SIP/2.0\r\nVia: SIP/2.0/TCP 10.9.9.9;branch=other\r\n"
      "To: <sip:b@h>;tag=late\r\n\r\n"));
  ASSERT_NE(lazy.TopVia(), nullptr);
  EXPECT_EQ(lazy.TopVia()->branch, "other");
  EXPECT_EQ(lazy.From(), nullptr);
  ASSERT_NE(lazy.To(), nullptr);
  EXPECT_EQ(lazy.To()->Tag(), "late");
  EXPECT_EQ(lazy.Cseq(), nullptr);
}

TEST(SipLazyParity, OtherHeaderIdLookupIsExplicitlyAmbiguous) {
  LazyMessage lazy;
  ASSERT_TRUE(
      lazy.Index("INVITE sip:b@h SIP/2.0\r\nX-One: 1\r\nX-Two: 2\r\n\r\n"));
  // kOther covers many names; id-based lookup refuses to guess.
  EXPECT_EQ(lazy.Header(HeaderId::kOther), std::nullopt);
  EXPECT_EQ(lazy.Header("X-One"), "1");
  EXPECT_EQ(lazy.Header("x-two"), "2");
}

// Generated corpus: serialized well-formed messages (and their responses)
// must always be in parity.
class SipLazyGenerated : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SipLazyGenerated, GeneratedMessagesStayInParity) {
  Stream rng(GetParam(), "sip-lazy-parity");
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const auto token = [&rng](size_t min_len, size_t max_len) {
    std::string out;
    const size_t len = rng.NextInRange(min_len, max_len);
    for (size_t i = 0; i < len; ++i) {
      out += kAlphabet[rng.NextInRange(0, sizeof(kAlphabet) - 2)];
    }
    return out;
  };
  static constexpr Method kMethods[] = {Method::kInvite,   Method::kAck,
                                        Method::kBye,      Method::kCancel,
                                        Method::kRegister, Method::kOptions};
  for (int iteration = 0; iteration < 100; ++iteration) {
    const Method method = kMethods[rng.NextInRange(0, 5)];
    SipUri uri;
    uri.user = token(1, 10);
    uri.host = token(1, 10) + ".example.com";
    if (rng.NextBernoulli(0.4)) {
      uri.port = static_cast<uint16_t>(rng.NextInRange(1, 65535));
    }
    Message msg = Message::MakeRequest(method, uri);
    const int via_count = static_cast<int>(rng.NextInRange(1, 3));
    for (int i = 0; i < via_count; ++i) {
      Via via;
      via.sent_by = net::Endpoint{
          net::IpAddress(
              static_cast<uint32_t>(rng.NextInRange(0x01000000, 0xDFFFFFFF))),
          static_cast<uint16_t>(rng.NextInRange(1024, 65535))};
      via.branch = MakeBranch(rng.Next());
      if (rng.NextBernoulli(0.3)) via.params["received"] = "1.2.3.4";
      msg.PushVia(via);
    }
    NameAddr from;
    from.uri.user = token(1, 8);
    from.uri.host = token(1, 8) + ".net";
    if (rng.NextBernoulli(0.6)) from.display_name = token(1, 8);
    from.SetTag(token(1, 8));
    msg.SetFrom(from);
    NameAddr to;
    to.uri.user = token(1, 8);
    to.uri.host = token(1, 8) + ".org";
    if (rng.NextBernoulli(0.5)) to.SetTag(token(1, 8));
    msg.SetTo(to);
    msg.SetCallId(token(1, 10) + "@" + token(1, 10));
    msg.SetCseq(
        CSeq{static_cast<uint32_t>(rng.NextInRange(1, 1 << 30)), method});
    if (rng.NextBernoulli(0.4)) {
      msg.SetBody(sdp::MakeAudioOffer(
                      net::Endpoint{net::IpAddress(10, 0, 0, 1),
                                    static_cast<uint16_t>(
                                        rng.NextInRange(1024, 65000))})
                      .Serialize(),
                  "application/sdp");
    }
    ExpectParity(msg.Serialize());

    auto response =
        Message::MakeResponse(static_cast<int>(rng.NextInRange(100, 699)));
    response.SetFrom(from);
    response.SetTo(to);
    response.SetCallId(std::string(*msg.CallId()));
    response.SetCseq(*msg.Cseq());
    ExpectParity(response.Serialize());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SipLazyGenerated,
                         ::testing::Values(41, 42, 43, 44));

// Mutation fuzz: random byte damage must keep the two parsers agreeing —
// on rejection and, when both still accept, on every observable.
class SipLazyMutation : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SipLazyMutation, MutatedWireStaysInParity) {
  Stream rng(GetParam(), "sip-lazy-mutation");
  const std::string base =
      "INVITE sip:bob@b.example.com SIP/2.0\r\n"
      "Via: SIP/2.0/UDP 10.1.0.1:5060;branch=z9hG4bKmut\r\n"
      "From: Alice <sip:alice@a.example.com>;tag=t-a\r\n"
      "To: <sip:bob@b.example.com>\r\n"
      "Call-ID: mut-1\r\n"
      "CSeq: 1 INVITE\r\n"
      "Content-Length: 4\r\n"
      "\r\n"
      "abcd";
  for (int iteration = 0; iteration < 300; ++iteration) {
    std::string wire = base;
    const int mutations = static_cast<int>(rng.NextInRange(1, 6));
    for (int m = 0; m < mutations && !wire.empty(); ++m) {
      const size_t pos = rng.NextInRange(0, wire.size() - 1);
      switch (rng.NextInRange(0, 2)) {
        case 0:
          wire[pos] = static_cast<char>(rng.NextInRange(0, 255));
          break;
        case 1:
          wire.erase(pos, 1);
          break;
        default:
          wire.insert(pos, 1, wire[pos]);
          break;
      }
    }
    ExpectParity(wire);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SipLazyMutation,
                         ::testing::Values(51, 52, 53, 54));

}  // namespace
}  // namespace vids::sip
