#include <gtest/gtest.h>

#include "sdp/sdp.h"

namespace vids::sdp {
namespace {

constexpr const char* kTypical =
    "v=0\r\n"
    "o=alice 2890844526 2890844527 IN IP4 10.1.0.10\r\n"
    "s=call\r\n"
    "c=IN IP4 10.1.0.10\r\n"
    "t=0 0\r\n"
    "m=audio 20000 RTP/AVP 18 0\r\n"
    "a=rtpmap:18 G729/8000\r\n"
    "a=rtpmap:0 PCMU/8000\r\n"
    "a=sendrecv\r\n";

TEST(Sdp, ParsesTypicalOffer) {
  const auto sd = SessionDescription::Parse(kTypical);
  ASSERT_TRUE(sd.has_value());
  EXPECT_EQ(sd->origin_username, "alice");
  EXPECT_EQ(sd->session_id, 2890844526u);
  EXPECT_EQ(sd->session_version, 2890844527u);
  ASSERT_TRUE(sd->connection.has_value());
  EXPECT_EQ(sd->connection->ToString(), "10.1.0.10");
  ASSERT_EQ(sd->media.size(), 1u);
  const auto& m = sd->media[0];
  EXPECT_EQ(m.media, "audio");
  EXPECT_EQ(m.port, 20000);
  EXPECT_EQ(m.transport, "RTP/AVP");
  EXPECT_EQ(m.payload_types, (std::vector<int>{18, 0}));
  EXPECT_EQ(m.rtpmap.at(18), "G729/8000");
  ASSERT_EQ(m.attributes.size(), 1u);
  EXPECT_EQ(m.attributes[0], "sendrecv");
}

TEST(Sdp, AudioEndpointAndCodec) {
  const auto sd = SessionDescription::Parse(kTypical);
  ASSERT_TRUE(sd.has_value());
  const auto ep = sd->AudioEndpoint();
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->ToString(), "10.1.0.10:20000");
  EXPECT_EQ(sd->AudioCodec(), "G729");
}

TEST(Sdp, MediaLevelConnectionOverridesSession) {
  const auto sd = SessionDescription::Parse(
      "v=0\r\n"
      "o=- 1 1 IN IP4 10.0.0.1\r\n"
      "s=-\r\n"
      "c=IN IP4 10.0.0.1\r\n"
      "m=audio 4000 RTP/AVP 0\r\n"
      "c=IN IP4 10.0.0.99\r\n");
  ASSERT_TRUE(sd.has_value());
  EXPECT_EQ(sd->AudioEndpoint()->ip.ToString(), "10.0.0.99");
}

TEST(Sdp, CodecFallsBackToStaticPayloadTable) {
  const auto sd = SessionDescription::Parse(
      "v=0\r\no=- 1 1 IN IP4 10.0.0.1\r\ns=-\r\nc=IN IP4 10.0.0.1\r\n"
      "m=audio 4000 RTP/AVP 0\r\n");
  ASSERT_TRUE(sd.has_value());
  EXPECT_EQ(sd->AudioCodec(), "PCMU");
}

TEST(Sdp, SerializeParseRoundTrip) {
  const auto offer =
      MakeAudioOffer(net::Endpoint{net::IpAddress(10, 2, 0, 11), 22334});
  const auto parsed = SessionDescription::Parse(offer.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->AudioEndpoint()->ToString(), "10.2.0.11:22334");
  EXPECT_EQ(parsed->AudioCodec(), "G729");
  ASSERT_EQ(parsed->media.size(), 1u);
  EXPECT_EQ(parsed->media[0].payload_types, (std::vector<int>{18}));
}

TEST(Sdp, RejectsMissingVersion) {
  EXPECT_FALSE(SessionDescription::Parse(
                   "o=- 1 1 IN IP4 10.0.0.1\r\ns=-\r\n")
                   .has_value());
  EXPECT_FALSE(SessionDescription::Parse("").has_value());
  EXPECT_FALSE(SessionDescription::Parse("v=1\r\n").has_value());
}

TEST(Sdp, RejectsMalformedMediaLine) {
  EXPECT_FALSE(
      SessionDescription::Parse("v=0\r\nm=audio RTP/AVP 0\r\n").has_value());
  EXPECT_FALSE(
      SessionDescription::Parse("v=0\r\nm=audio 4000 RTP/AVP x\r\n")
          .has_value());
}

TEST(Sdp, RejectsMalformedConnection) {
  EXPECT_FALSE(
      SessionDescription::Parse("v=0\r\nc=IN IP6 ::1\r\n").has_value());
  EXPECT_FALSE(
      SessionDescription::Parse("v=0\r\nc=IN IP4 999.0.0.1\r\n").has_value());
}

TEST(Sdp, IgnoresUnknownLinesAndBareNewlines) {
  const auto sd = SessionDescription::Parse(
      "v=0\n"
      "o=- 1 1 IN IP4 10.0.0.1\n"
      "s=-\n"
      "b=AS:64\n"
      "z=something\n"
      "c=IN IP4 10.0.0.1\n"
      "m=audio 4000 RTP/AVP 18\n");
  ASSERT_TRUE(sd.has_value());
  EXPECT_TRUE(sd->AudioEndpoint().has_value());
}

TEST(Sdp, LinesWithoutEqualsAreRejected) {
  EXPECT_FALSE(SessionDescription::Parse("v=0\r\ngarbage\r\n").has_value());
}

TEST(Sdp, NoAudioSectionMeansNoEndpoint) {
  const auto sd = SessionDescription::Parse(
      "v=0\r\nc=IN IP4 10.0.0.1\r\nm=video 5000 RTP/AVP 31\r\n");
  ASSERT_TRUE(sd.has_value());
  EXPECT_FALSE(sd->AudioEndpoint().has_value());
  EXPECT_EQ(sd->AudioCodec(), "");
}

TEST(Sdp, ZeroPortMeansNoEndpoint) {
  const auto sd = SessionDescription::Parse(
      "v=0\r\nc=IN IP4 10.0.0.1\r\nm=audio 0 RTP/AVP 18\r\n");
  ASSERT_TRUE(sd.has_value());
  EXPECT_FALSE(sd->AudioEndpoint().has_value());
}

}  // namespace
}  // namespace vids::sdp
