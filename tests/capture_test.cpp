// Tests for the capture front end (DESIGN.md §14): the pcap reader/writer
// pair, the SimSource/TraceLogSource contract, the corpus generator, the
// RunSource replay drivers, and the sharded engine's clock-domain
// hardening under faster-than-real-time replay.
#include <algorithm>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include <gtest/gtest.h>

#include "capture/corpus.h"
#include "capture/pcap.h"
#include "capture/replay.h"
#include "capture/sources.h"
#include "net/address.h"
#include "net/datagram.h"
#include "sim/scheduler.h"
#include "sip/lazy_message.h"
#include "sip/message.h"
#include "vids/ids.h"
#include "vids/sharded_ids.h"
#include "vids/trace.h"

namespace vids::capture {
namespace {

const net::Endpoint kOutA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kInB{net::IpAddress(10, 2, 0, 1), 5060};

net::Datagram Dg(net::Endpoint src, net::Endpoint dst, std::string payload,
                 uint32_t padding = 0) {
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = std::move(payload);
  dgram.padding_bytes = padding;
  return dgram;
}

std::vector<TimedPacket> AllPackets(PacketSource& source) {
  std::vector<TimedPacket> all;
  std::vector<TimedPacket> batch;
  while (source.PullBatch(batch, 16) > 0) {
    for (auto& packet : batch) all.push_back(std::move(packet));
  }
  return all;
}

/// A 12-byte RTP-shaped payload (version bits 2) that is not RTCP-shaped.
std::string RtpShaped() {
  std::string payload(12, '\0');
  payload[0] = static_cast<char>(0x80);
  payload[1] = static_cast<char>(0x12);  // PT 18, not in the RTCP range
  return payload;
}

// ------------------------------------------------- hand-built pcap bytes
// The writer only emits well-formed Ethernet files; the cases a reader
// must *reject* or *skip* (other protocols, fragments, raw-IP linktype,
// bogus lengths) are assembled byte by byte here.

void PutLe16(std::string& s, uint16_t v) {
  s += static_cast<char>(v & 0xFF);
  s += static_cast<char>(v >> 8);
}

void PutLe32(std::string& s, uint32_t v) {
  s += static_cast<char>(v & 0xFF);
  s += static_cast<char>((v >> 8) & 0xFF);
  s += static_cast<char>((v >> 16) & 0xFF);
  s += static_cast<char>((v >> 24) & 0xFF);
}

void PutBe16(std::string& s, uint16_t v) {
  s += static_cast<char>(v >> 8);
  s += static_cast<char>(v & 0xFF);
}

void PutBe32(std::string& s, uint32_t v) {
  s += static_cast<char>((v >> 24) & 0xFF);
  s += static_cast<char>((v >> 16) & 0xFF);
  s += static_cast<char>((v >> 8) & 0xFF);
  s += static_cast<char>(v & 0xFF);
}

std::string GlobalHeader(uint32_t linktype) {  // little-endian, microsecond
  std::string s;
  PutLe32(s, 0xa1b2c3d4);
  PutLe16(s, 2);
  PutLe16(s, 4);
  PutLe32(s, 0);
  PutLe32(s, 0);
  PutLe32(s, 65535);
  PutLe32(s, linktype);
  return s;
}

std::string Ipv4Packet(net::Endpoint src, net::Endpoint dst,
                       std::string_view payload, uint8_t proto = 17,
                       uint16_t frag = 0x4000, int32_t udp_len = -1) {
  std::string f;
  f += static_cast<char>(0x45);  // version 4, IHL 5
  f += '\0';
  PutBe16(f, static_cast<uint16_t>(28 + payload.size()));
  PutBe16(f, 7);     // identification
  PutBe16(f, frag);  // default: DF, no offset
  f += static_cast<char>(0x40);  // TTL
  f += static_cast<char>(proto);
  PutBe16(f, 0);  // header checksum (reader does not verify)
  PutBe32(f, src.ip.bits());
  PutBe32(f, dst.ip.bits());
  PutBe16(f, src.port);
  PutBe16(f, dst.port);
  PutBe16(f, udp_len >= 0 ? static_cast<uint16_t>(udp_len)
                          : static_cast<uint16_t>(8 + payload.size()));
  PutBe16(f, 0);  // UDP checksum
  f.append(payload);
  return f;
}

std::string EthFrame(uint16_t ethertype, std::string_view body) {
  std::string f(12, static_cast<char>(0x02));  // MACs, content irrelevant
  PutBe16(f, ethertype);
  f.append(body);
  return f;
}

void AddRecord(std::string& file, uint32_t ts_sec, uint32_t ts_frac,
               std::string_view frame) {
  PutLe32(file, ts_sec);
  PutLe32(file, ts_frac);
  PutLe32(file, static_cast<uint32_t>(frame.size()));
  PutLe32(file, static_cast<uint32_t>(frame.size()));
  file.append(frame);
}

// ------------------------------------------------------------ round-trip

TEST(PcapRoundTrip, AllMagicVariants) {
  for (const bool big_endian : {false, true}) {
    for (const bool nanosecond : {false, true}) {
      PcapWriteOptions write;
      write.big_endian = big_endian;
      write.nanosecond = nanosecond;
      PcapWriter writer(write);
      // Microsecond-aligned times so the µs variants round-trip losslessly.
      writer.Add(sim::Time::FromNanos(0), Dg(kOutA, kInB, "hello"));
      writer.Add(sim::Time::FromNanos(0) + sim::Duration::Millis(1),
                 Dg(kInB, kOutA, RtpShaped()));
      writer.Add(sim::Time::FromNanos(0) + sim::Duration::Millis(2),
                 Dg(kOutA, kInB, "world"));

      PcapReadOptions read;
      read.inside = *net::Subnet::Parse("10.2.0.0/16");
      PcapFileSource source(writer.bytes(), read);
      ASSERT_TRUE(source.ok()) << source.error();
      EXPECT_EQ(source.swapped(), big_endian);
      EXPECT_EQ(source.nanosecond(), nanosecond);
      EXPECT_EQ(source.linktype(), 1u);

      const auto packets = AllPackets(source);
      ASSERT_EQ(packets.size(), 3u);
      ASSERT_TRUE(source.ok()) << source.error();
      EXPECT_EQ(packets[0].when.nanos(), 0);
      EXPECT_EQ(packets[1].when.nanos(), 1'000'000);
      EXPECT_EQ(packets[2].when.nanos(), 2'000'000);
      EXPECT_EQ(packets[0].dgram.payload, "hello");
      EXPECT_EQ(packets[1].dgram.payload, RtpShaped());
      EXPECT_EQ(packets[2].dgram.payload, "world");
      EXPECT_EQ(packets[0].dgram.src, kOutA);
      EXPECT_EQ(packets[0].dgram.dst, kInB);
      EXPECT_TRUE(packets[0].from_outside);   // src 10.1.0.1 is outside
      EXPECT_FALSE(packets[1].from_outside);  // src 10.2.0.1 is inside
      EXPECT_EQ(packets[0].dgram.kind, net::PayloadKind::kOther);
      EXPECT_EQ(packets[1].dgram.kind, net::PayloadKind::kRtp);
      EXPECT_EQ(packets[0].dgram.padding_bytes, 0u);
      EXPECT_EQ(packets[0].dgram.sent_time, packets[0].when);
      EXPECT_LT(packets[0].dgram.id, packets[1].dgram.id);
      EXPECT_EQ(source.clock().nanos(), 2'000'000);
      EXPECT_EQ(source.stats().delivered, 3u);
      EXPECT_EQ(source.stats().records, 3u);
    }
  }
}

TEST(PcapRoundTrip, NanosecondPrecisionAndMicrosecondQuantization) {
  const auto odd = sim::Time::FromNanos(123'456'789);

  PcapWriter ns_writer;  // nanosecond magic by default
  ns_writer.Add(odd, Dg(kOutA, kInB, "x"));
  PcapFileSource ns_source(ns_writer.bytes());
  auto packets = AllPackets(ns_source);
  ASSERT_EQ(packets.size(), 1u);
  PcapReadOptions keep;
  keep.rebase_to_first = false;
  PcapFileSource abs_source(ns_writer.bytes(), keep);
  packets = AllPackets(abs_source);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].when.nanos() % 1'000'000'000, 123'456'789);

  PcapWriteOptions micro;
  micro.nanosecond = false;
  PcapWriter us_writer(micro);
  us_writer.Add(odd, Dg(kOutA, kInB, "x"));
  PcapFileSource us_source(us_writer.bytes(), keep);
  packets = AllPackets(us_source);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].when.nanos() % 1'000'000'000, 123'456'000);
}

TEST(PcapRoundTrip, VlanTaggedFrames) {
  PcapWriteOptions write;
  write.vlan = true;
  PcapWriter writer(write);
  writer.Add(sim::Time::FromNanos(0), Dg(kOutA, kInB, "tagged"));
  writer.Add(sim::Time::FromNanos(10), Dg(kInB, kOutA, "back"));

  PcapFileSource source(writer.bytes());
  const auto packets = AllPackets(source);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_TRUE(source.ok()) << source.error();
  EXPECT_EQ(packets[0].dgram.payload, "tagged");
  EXPECT_EQ(packets[1].dgram.payload, "back");
}

TEST(PcapRoundTrip, SnaplenTornPaddingPreserved) {
  PcapWriter writer;
  // 4 captured bytes of a claimed 100-byte wire payload.
  writer.Add(sim::Time::FromNanos(0), Dg(kOutA, kInB, "HEAD", 96));
  PcapFileSource source(writer.bytes());
  const auto packets = AllPackets(source);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].dgram.payload, "HEAD");
  EXPECT_EQ(packets[0].dgram.padding_bytes, 96u);
  EXPECT_EQ(packets[0].dgram.WireBytes(), 4u + 96u + 28u);
}

// ------------------------------------------------------- reader hardening

TEST(PcapReader, TruncatedFinalRecordDeliversPrefixThenFaults) {
  PcapWriter writer;
  writer.Add(sim::Time::FromNanos(0), Dg(kOutA, kInB, "one"));
  writer.Add(sim::Time::FromNanos(10), Dg(kInB, kOutA, "two"));
  writer.Add(sim::Time::FromNanos(20), Dg(kOutA, kInB, "three"));

  // Cut mid-way through the last record's frame bytes.
  PcapFileSource torn(writer.bytes().substr(0, writer.bytes().size() - 5));
  const auto packets = AllPackets(torn);
  EXPECT_EQ(packets.size(), 2u);
  EXPECT_FALSE(torn.ok());
  EXPECT_NE(torn.error().find("record 3"), std::string::npos) << torn.error();
  EXPECT_NE(torn.error().find("past end of file"), std::string::npos);
  // Faulted source stays at EOF: further pulls yield nothing.
  std::vector<TimedPacket> more;
  EXPECT_EQ(torn.PullBatch(more, 4), 0u);

  // Cut inside a record *header* (8 stray bytes after a valid file).
  PcapWriter one;
  one.Add(sim::Time::FromNanos(0), Dg(kOutA, kInB, "only"));
  PcapFileSource ragged(one.bytes() + std::string(8, '\0'));
  EXPECT_EQ(AllPackets(ragged).size(), 1u);
  EXPECT_FALSE(ragged.ok());
  EXPECT_NE(ragged.error().find("record header"), std::string::npos)
      << ragged.error();
}

TEST(PcapReader, BadMagicFailsClosed) {
  PcapFileSource source("this is not a pcap savefile, not even close");
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("bad magic"), std::string::npos);
  std::vector<TimedPacket> batch;
  EXPECT_EQ(source.PullBatch(batch, 4), 0u);
}

TEST(PcapReader, TruncatedGlobalHeaderFailsClosed) {
  PcapFileSource source(GlobalHeader(1).substr(0, 10));
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("global header"), std::string::npos);
}

TEST(PcapReader, UnsupportedLinktypeFailsClosed) {
  PcapWriter writer;
  writer.Add(sim::Time::FromNanos(0), Dg(kOutA, kInB, "x"));
  std::string bytes = writer.bytes();
  bytes[20] = static_cast<char>(113);  // LINKTYPE_LINUX_SLL
  bytes[21] = bytes[22] = bytes[23] = '\0';
  PcapFileSource source(bytes);
  EXPECT_FALSE(source.ok());
  EXPECT_NE(source.error().find("linktype 113"), std::string::npos);
}

TEST(PcapReader, RawIpv4Linktype) {
  std::string file = GlobalHeader(101);  // LINKTYPE_RAW: no Ethernet shim
  AddRecord(file, 1, 500, Ipv4Packet(kOutA, kInB, "bare-ip"));
  PcapFileSource source(file);
  EXPECT_EQ(source.linktype(), 101u);
  const auto packets = AllPackets(source);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(source.ok()) << source.error();
  EXPECT_EQ(packets[0].dgram.payload, "bare-ip");
  EXPECT_EQ(packets[0].dgram.src, kOutA);
  EXPECT_EQ(packets[0].dgram.dst, kInB);
}

TEST(PcapReader, SkipsNonUdpTrafficWithAccounting) {
  std::string file = GlobalHeader(1);
  AddRecord(file, 1, 0, EthFrame(0x0806, "arp-ish"));  // non-IP ethertype
  AddRecord(file, 1, 100, EthFrame(0x0800, Ipv4Packet(kOutA, kInB, "tcp!",
                                                      /*proto=*/6)));
  AddRecord(file, 1, 200,
            EthFrame(0x0800, Ipv4Packet(kOutA, kInB, "frag",
                                        /*proto=*/17, /*frag=*/0x2000)));
  AddRecord(file, 1, 300, "short");  // runt: cut inside the Ethernet header
  AddRecord(file, 1, 400,
            EthFrame(0x0800, Ipv4Packet(kOutA, kInB, "jumbo", /*proto=*/17,
                                        /*frag=*/0x4000,
                                        /*udp_len=*/65535)));  // > 65507
  AddRecord(file, 1, 500, EthFrame(0x0800, Ipv4Packet(kOutA, kInB, "good")));

  PcapFileSource source(file);
  const auto packets = AllPackets(source);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_TRUE(source.ok()) << source.error();
  EXPECT_EQ(packets[0].dgram.payload, "good");
  const PcapStats& stats = source.stats();
  EXPECT_EQ(stats.records, 6u);
  EXPECT_EQ(stats.delivered, 1u);
  EXPECT_EQ(stats.skipped_non_ip, 1u);
  EXPECT_EQ(stats.skipped_non_udp, 1u);
  EXPECT_EQ(stats.skipped_fragment, 1u);
  EXPECT_EQ(stats.skipped_malformed, 2u);  // runt + impossible UDP length
}

TEST(PcapReader, BackwardTimestampClampsToStreamClock) {
  PcapWriter writer;
  writer.Add(sim::Time::FromNanos(0) + sim::Duration::Millis(5),
             Dg(kOutA, kInB, "first"));
  writer.Add(sim::Time::FromNanos(0) + sim::Duration::Millis(1),
             Dg(kOutA, kInB, "jitter"));
  PcapFileSource source(writer.bytes());
  const auto packets = AllPackets(source);
  ASSERT_EQ(packets.size(), 2u);
  // Rebase puts the first packet at t=0; the rewound second packet clamps
  // to the stream clock instead of going negative.
  EXPECT_EQ(packets[0].when.nanos(), 0);
  EXPECT_EQ(packets[1].when.nanos(), 0);
  EXPECT_EQ(source.clock().nanos(), 0);
}

TEST(PcapReader, RebaseDisabledKeepsAbsoluteEpoch) {
  PcapWriter writer;  // epoch_base_s = 1'600'000'000
  writer.Add(sim::Time::FromNanos(0) + sim::Duration::Millis(5),
             Dg(kOutA, kInB, "x"));
  PcapReadOptions read;
  read.rebase_to_first = false;
  PcapFileSource source(writer.bytes(), read);
  const auto packets = AllPackets(source);
  ASSERT_EQ(packets.size(), 1u);
  EXPECT_EQ(packets[0].when.nanos(),
            1'600'000'000LL * 1'000'000'000LL + 5'000'000LL);
}

// ------------------------------------------------------------ sim sources

TEST(Sources, SimSourceBatchesAndRewinds) {
  SimSource source;
  for (int i = 0; i < 5; ++i) {
    source.Append(sim::Time::FromNanos(i * 100), Dg(kOutA, kInB, "p"), true);
  }
  EXPECT_EQ(source.size(), 5u);
  std::vector<TimedPacket> batch;
  EXPECT_EQ(source.PullBatch(batch, 2), 2u);
  EXPECT_EQ(source.PullBatch(batch, 2), 2u);
  EXPECT_EQ(source.PullBatch(batch, 2), 1u);
  EXPECT_EQ(source.PullBatch(batch, 2), 0u);
  EXPECT_EQ(source.clock().nanos(), 400);
  EXPECT_TRUE(source.ok());
  source.Rewind();
  EXPECT_EQ(source.PullBatch(batch, 16), 5u);
}

TEST(Sources, SimSourceClampsBackwardAppends) {
  SimSource source;
  source.Append(sim::Time::FromNanos(1000), Dg(kOutA, kInB, "a"), true);
  source.Append(sim::Time::FromNanos(500), Dg(kOutA, kInB, "b"), true);
  std::vector<TimedPacket> batch;
  ASSERT_EQ(source.PullBatch(batch, 4), 2u);
  EXPECT_EQ(batch[1].when.nanos(), 1000);
}

TEST(Sources, SimSourceRecorderStampsSchedulerTime) {
  sim::Scheduler scheduler;
  SimSource source;
  auto monitor = source.Recorder(scheduler);
  monitor(Dg(kOutA, kInB, "t0"), true);
  scheduler.RunUntil(sim::Time::FromNanos(0) + sim::Duration::Millis(5));
  monitor(Dg(kInB, kOutA, "t5"), false);
  std::vector<TimedPacket> batch;
  ASSERT_EQ(source.PullBatch(batch, 4), 2u);
  EXPECT_EQ(batch[0].when.nanos(), 0);
  EXPECT_TRUE(batch[0].from_outside);
  EXPECT_EQ(batch[1].when.nanos(), 5'000'000);
  EXPECT_FALSE(batch[1].from_outside);
}

TEST(Sources, TraceLogSourceStreamsRecords) {
  ids::TraceLog log;
  log.Append(sim::Time::FromNanos(0), Dg(kOutA, kInB, "one"), true);
  log.Append(sim::Time::FromNanos(0) + sim::Duration::Millis(1),
             Dg(kInB, kOutA, "two"), false);
  TraceLogSource source(log);
  const auto packets = AllPackets(source);
  ASSERT_EQ(packets.size(), 2u);
  EXPECT_EQ(packets[0].dgram.payload, "one");
  EXPECT_TRUE(packets[0].from_outside);
  EXPECT_EQ(packets[1].dgram.payload, "two");
  EXPECT_FALSE(packets[1].from_outside);
  EXPECT_EQ(source.clock().nanos(), 1'000'000);
}

// -------------------------------------------------------------- corpus

std::map<std::string, int> ReplayClassifications(const std::string& bytes,
                                                 int shards) {
  PcapReadOptions read;
  read.inside = corpus::InsideSubnet();
  PcapFileSource source(bytes, read);
  std::map<std::string, int> counts;
  if (shards > 0) {
    ids::ShardedConfig config;
    config.shards = shards;
    ids::ShardedIds engine(config);
    const ReplayStats replay = RunSource(source, engine);
    engine.Stop();
    EXPECT_TRUE(replay.ok);
    for (const auto& alert : engine.alerts()) ++counts[alert.classification];
  } else {
    sim::Scheduler scheduler;
    ids::Vids vids(scheduler);
    const ReplayStats replay = RunSource(source, vids, scheduler);
    EXPECT_TRUE(replay.ok);
    for (const auto& alert : vids.alerts()) ++counts[alert.classification];
  }
  return counts;
}

TEST(Corpus, RegenerationIsByteDeterministic) {
  const auto first = corpus::BuildAll();
  const auto second = corpus::BuildAll();
  ASSERT_EQ(first.size(), 6u);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].bytes, second[i].bytes) << first[i].name;
  }
}

TEST(Corpus, CleanCallsRaiseNoAlerts) {
  const auto files = corpus::BuildAll();
  ASSERT_EQ(files[0].name, "clean_calls.pcap");
  PcapReadOptions read;
  read.inside = corpus::InsideSubnet();
  PcapFileSource source(files[0].bytes, read);
  sim::Scheduler scheduler;
  ids::Vids vids(scheduler);
  const ReplayStats replay = RunSource(source, vids, scheduler);
  EXPECT_TRUE(replay.ok);
  EXPECT_EQ(replay.packets, source.stats().delivered);
  EXPECT_EQ(source.stats().delivered, source.stats().records);
  EXPECT_GT(replay.packets, 0u);
  EXPECT_EQ(replay.end, source.clock());
  EXPECT_TRUE(vids.alerts().empty());
}

TEST(Corpus, InviteFloodRaisesExactlyOneAggregateAlert) {
  const auto files = corpus::BuildAll();
  ASSERT_EQ(files[1].name, "invite_flood.pcap");
  // The flood capture is big-endian microsecond on purpose: the
  // byte-swapped reader path rides through this test and CI.
  PcapFileSource probe(files[1].bytes);
  EXPECT_TRUE(probe.swapped());
  EXPECT_FALSE(probe.nanosecond());

  const auto counts = ReplayClassifications(files[1].bytes, 0);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("INVITE flood"), 1);
}

TEST(Corpus, TornCorpusFailsClosedPerPacket) {
  const auto files = corpus::BuildAll();
  ASSERT_EQ(files[2].name, "torn_truncated.pcap");
  PcapReadOptions read;
  read.inside = corpus::InsideSubnet();
  PcapFileSource source(files[2].bytes, read);
  const auto packets = AllPackets(source);
  EXPECT_TRUE(source.ok()) << source.error();
  EXPECT_EQ(packets.size(), 21u);  // VLAN-tagged frames all decode

  const auto counts = ReplayClassifications(files[2].bytes, 0);
  // The snaplen-torn INVITE, the Content-Length overrun and the compact-
  // form unterminated message fail closed as unparsable; the clean call,
  // the LF-framed OPTIONS, the truncated RTP and the runts raise nothing.
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("unparsable packet"), 3);
}

// Each behavioral capture is protocol-legal end to end: the spec machines
// and attack patterns must stay silent while the behavior profiles raise
// exactly one scored alert. This asymmetry — detected by profiling, clean
// by specification — is the behavioral layer's acceptance gate.
TEST(Corpus, BehavioralCapturesRaiseExactlyOneBehaviorAlert) {
  const auto files = corpus::BuildAll();
  const std::map<std::string, std::string> expected = {
      {"spit_burst.pcap", "SPIT call burst"},
      {"reg_cracking.pcap", "registration cracking"},
      {"toll_fraud.pcap", "toll-fraud fan-out"},
  };
  int covered = 0;
  for (const auto& file : files) {
    const auto it = expected.find(file.name);
    if (it == expected.end()) continue;
    ++covered;
    PcapReadOptions read;
    read.inside = corpus::InsideSubnet();
    PcapFileSource source(file.bytes, read);
    sim::Scheduler scheduler;
    ids::Vids vids(scheduler);
    const ReplayStats replay = RunSource(source, vids, scheduler);
    EXPECT_TRUE(replay.ok);
    ASSERT_EQ(vids.alerts().size(), 1u) << file.name;
    const ids::Alert& alert = vids.alerts().front();
    EXPECT_EQ(alert.kind, ids::AlertKind::kBehavior) << file.name;
    EXPECT_EQ(alert.classification, it->second) << file.name;
    EXPECT_EQ(alert.machine, "behavior-profile") << file.name;
    // Score provenance: the detail carries the per-feature breakdown.
    EXPECT_NE(alert.detail.find("score="), std::string::npos) << alert.detail;
  }
  EXPECT_EQ(covered, 3);
}

TEST(Corpus, AlertEqualityAcrossShardCounts) {
  for (const auto& file : corpus::BuildAll()) {
    const auto direct = ReplayClassifications(file.bytes, 0);
    const auto one = ReplayClassifications(file.bytes, 1);
    const auto four = ReplayClassifications(file.bytes, 4);
    EXPECT_EQ(direct, one) << file.name;
    EXPECT_EQ(direct, four) << file.name;
  }
}

// ------------------------------------------- torn-packet parser hardening

TEST(TornPackets, EveryCorpusPayloadPrefixIndexesWithinBounds) {
  // Every prefix of every corpus payload through the lazy index: the
  // sanitizer jobs turn any read past the datagram end into a hard fail,
  // and the views a successful index returns must stay inside the prefix.
  for (const auto& file : corpus::BuildAll()) {
    PcapFileSource source(file.bytes);
    for (const auto& packet : AllPackets(source)) {
      const std::string& payload = packet.dgram.payload;
      for (size_t len = 0; len <= payload.size(); ++len) {
        const std::string_view prefix(payload.data(), len);
        sip::LazyMessage lazy;
        if (!lazy.Index(prefix)) continue;
        EXPECT_LE(lazy.body().size(), len);
        if (const auto call_id = lazy.CallId()) {
          EXPECT_LE(call_id->size(), len);
        }
      }
    }
  }
}

TEST(TornPackets, TornCorpusPrefixesInspectCleanly) {
  const auto files = corpus::BuildAll();
  PcapFileSource source(files[2].bytes);
  const auto packets = AllPackets(source);
  sim::Scheduler scheduler;
  ids::Vids vids(scheduler);
  sim::Time now = sim::Time::FromNanos(0);
  for (const auto& packet : packets) {
    for (size_t len = 0; len <= packet.dgram.payload.size(); len += 7) {
      now = now + sim::Duration::Millis(1);
      scheduler.RunUntil(now);
      net::Datagram torn = packet.dgram;
      torn.payload.resize(len);
      torn.padding_bytes = static_cast<uint32_t>(
          packet.dgram.payload.size() - len + packet.dgram.padding_bytes);
      vids.Inspect(torn, packet.from_outside);
    }
  }
  // No crash and no unbounded alert storm: at most one alert per inspect.
  EXPECT_LE(vids.alerts().size(), 2000u);
}

// --------------------------------------- sharded replay clock domains

std::string WdMessage(std::string_view kind, const std::string& call_id) {
  auto build = [&](sip::Message message, bool add_to_tag) {
    sip::Via via;
    via.sent_by = kOutA;
    via.branch = "z9hG4bK" + call_id + std::string(kind);
    message.PushVia(via);
    sip::NameAddr from;
    from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
    from.SetTag("tag-" + call_id);
    message.SetFrom(from);
    sip::NameAddr to;
    to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
    if (add_to_tag) to.SetTag("tag-callee");
    message.SetTo(to);
    message.SetCallId(call_id);
    return message;
  };
  if (kind == "invite") {
    auto invite = build(
        sip::Message::MakeRequest(
            sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com")),
        false);
    invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
    return invite.Serialize();
  }
  if (kind == "ok") {
    auto ok = build(sip::Message::MakeResponse(200), true);
    ok.SetCseq(sip::CSeq{1, sip::Method::kInvite});
    return ok.Serialize();
  }
  auto ack = build(
      sip::Message::MakeRequest(sip::Method::kAck,
                                *sip::SipUri::Parse("sip:bob@b.example.com")),
      true);
  ack.SetCseq(sip::CSeq{1, sip::Method::kAck});
  return ack.Serialize();
}

net::Datagram SipDg(net::Endpoint src, net::Endpoint dst,
                    std::string payload) {
  net::Datagram dgram = Dg(src, dst, std::move(payload));
  dgram.kind = net::PayloadKind::kSip;
  return dgram;
}

TEST(ShardedReplayClock, CaptureGapUnderFastReplayDoesNotTripWatchdog) {
  // An established call keeps the fact base's sweep chain armed, then the
  // capture goes quiet for 8 simulated hours. Replay covers that gap in
  // microseconds of wall time; the worker has ~144k sweep timers to burn
  // through while the coordinator's watchdog (60 ms threshold) polls. The
  // sliced catch-up heartbeats plus the source-time re-anchor must keep
  // this scored as replay progress, not a wedged worker.
  ids::DetectionConfig detection;
  detection.sweep_interval = sim::Duration::Millis(200);
  detection.call_idle_timeout = sim::Duration::Seconds(24 * 3600);

  ids::ShardedConfig config;
  config.shards = 1;
  config.batch_max = 1;
  config.watchdog_stall_ms = 60;
  config.detection = detection;
  ids::ShardedIds engine(config);

  SimSource source;
  const auto at = [](int64_t ms) {
    return sim::Time::FromNanos(0) + sim::Duration::Millis(ms);
  };
  source.Append(at(0), SipDg(kOutA, kInB, WdMessage("invite", "wd-1")), true);
  source.Append(at(20), SipDg(kInB, kOutA, WdMessage("ok", "wd-1")), false);
  source.Append(at(40), SipDg(kOutA, kInB, WdMessage("ack", "wd-1")), true);
  const int64_t gap_ms = 8 * 3600 * 1000;
  source.Append(at(gap_ms), Dg(kOutA, kInB, "post-gap probe"), true);

  const ReplayStats replay = RunSource(source, engine);
  EXPECT_TRUE(replay.ok);
  EXPECT_EQ(replay.packets, 4u);
  EXPECT_EQ(engine.watchdog_stalls(), 0u);

  // Guard against vacuity: the worker really did sweep its way across the
  // gap (so a monolithic catch-up would have frozen the heartbeat for the
  // whole stretch).
  auto merged = engine.MergedMetrics();
  EXPECT_GE(merged.GetCounter("vids.sweeps").value(),
            static_cast<uint64_t>(gap_ms / 200 - 10));
  engine.Stop();
}

TEST(ShardedReplayClock, SourceTimeDeadlineFlushesOpenBatch) {
  // Two packets 10 ms apart in *source* time land within microseconds of
  // wall time. The batch deadline must bind in the source domain: the
  // second Ingest sees the batch open past batch_flush_us of stream time
  // and commits it, wall clock notwithstanding.
  ids::ShardedConfig config;
  config.shards = 1;
  config.batch_max = 1024;  // never fills: only the deadline can commit
  config.batch_flush_us = 50;
  ids::ShardedIds engine(config);

  engine.Ingest(Dg(kOutA, kInB, "a"), true, sim::Time::FromNanos(0));
  engine.Ingest(Dg(kOutA, kInB, "b"), true,
                sim::Time::FromNanos(0) + sim::Duration::Millis(10));
  engine.Flush(sim::Time::FromNanos(0) + sim::Duration::Millis(10));
  auto merged = engine.MergedMetrics();
  EXPECT_GE(merged.GetCounter("pipeline.flush.deadline").value(), 1u);
  engine.Stop();
}

}  // namespace
}  // namespace vids::capture
