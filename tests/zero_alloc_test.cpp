// Steady-state allocation test: once a call's media session is established
// and the per-endpoint pattern groups exist, inspecting an in-session RTP
// packet must not touch the heap. Global operator new/delete are replaced
// with counting forwarders; the counter is armed only around the measured
// loop, so gtest internals and the warmup phase are free to allocate.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "vids/ids.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

// GCC pairs allocation functions by body and flags free() on a pointer
// from the malloc-backed replacement operator new above — a false
// positive, as both sides of the pair are replaced together.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

namespace vids::ids {
namespace {

const net::Endpoint kProxyA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kProxyB{net::IpAddress(10, 2, 0, 1), 5060};
const net::Endpoint kCallerMedia{net::IpAddress(10, 1, 0, 10), 20000};
const net::Endpoint kCalleeMedia{net::IpAddress(10, 2, 0, 10), 30000};

net::Datagram SipDgram(const sip::Message& message, net::Endpoint src,
                       net::Endpoint dst) {
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = message.Serialize();
  dgram.kind = net::PayloadKind::kSip;
  return dgram;
}

sip::Message MakeInvite(const std::string& call_id) {
  auto invite = sip::Message::MakeRequest(
      sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com"));
  sip::Via via;
  via.sent_by = kProxyA;
  via.branch = "z9hG4bK" + call_id;
  invite.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("tag-alice");
  invite.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
  invite.SetTo(to);
  invite.SetCallId(call_id);
  invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
  invite.SetBody(sdp::MakeAudioOffer(kCallerMedia).Serialize(),
                 "application/sdp");
  return invite;
}

sip::Message MakeOk(const sip::Message& invite) {
  auto response = sip::Message::MakeResponse(200);
  for (const auto via : invite.Headers("Via")) {
    response.AddHeader("Via", via);
  }
  response.SetFrom(*invite.From());
  auto to = *invite.To();
  to.SetTag("tag-bob");
  response.SetTo(to);
  response.SetCallId(std::string(*invite.CallId()));
  response.SetCseq(*invite.Cseq());
  response.SetBody(sdp::MakeAudioOffer(kCalleeMedia).Serialize(),
                   "application/sdp");
  return response;
}

TEST(ZeroAlloc, SteadyStateRtpInspectionDoesNotAllocate) {
  sim::Scheduler scheduler;
  Vids vids(scheduler);

  // Establish a monitored call with negotiated media at kCalleeMedia.
  const auto invite = MakeInvite("za-1");
  vids.Inspect(SipDgram(invite, kProxyA, kProxyB), true);
  vids.Inspect(SipDgram(MakeOk(invite), kProxyB, kProxyA), false);
  auto ack = sip::Message::MakeRequest(
      sip::Method::kAck, *sip::SipUri::Parse("sip:bob@10.2.0.10"));
  sip::Via via;
  via.sent_by = kProxyA;
  via.branch = "z9hG4bKackza-1";
  ack.PushVia(via);
  ack.SetCallId("za-1");
  ack.SetCseq(sip::CSeq{1, sip::Method::kAck});
  vids.Inspect(SipDgram(ack, kCallerMedia, kCalleeMedia), true);
  ASSERT_EQ(vids.fact_base().CallByMedia(kCalleeMedia), "za-1");

  // Pre-built datagram; the loop patches sequence/timestamp bytes in place
  // (RFC 3550 big-endian offsets) instead of re-serializing.
  rtp::RtpHeader header;
  header.ssrc = 0xCAFE;
  header.sequence_number = 1;
  header.timestamp = 160;
  header.payload_type = 18;
  net::Datagram dgram;
  dgram.src = kCallerMedia;
  dgram.dst = kCalleeMedia;
  dgram.payload = header.Serialize();
  dgram.kind = net::PayloadKind::kRtp;
  const auto patch = [&dgram](uint16_t seq, uint32_t ts) {
    dgram.payload[2] = static_cast<char>(seq >> 8);
    dgram.payload[3] = static_cast<char>(seq & 0xFF);
    dgram.payload[4] = static_cast<char>(ts >> 24);
    dgram.payload[5] = static_cast<char>((ts >> 16) & 0xFF);
    dgram.payload[6] = static_cast<char>((ts >> 8) & 0xFF);
    dgram.payload[7] = static_cast<char>(ts & 0xFF);
  };

  // Warmup: settle container capacities, cross the RTP-flood threshold so
  // the flood machine parks in its (deduplicated) attack self-loop, and let
  // every lazily-compiled dispatch table build.
  uint16_t seq = 1;
  uint32_t ts = 160;
  for (int i = 0; i < 600; ++i) {
    patch(++seq, ts += 160);
    vids.Inspect(dgram, true);
  }

  g_alloc_count.store(0);
  g_counting.store(true);
  for (int i = 0; i < 200; ++i) {
    patch(++seq, ts += 160);
    vids.Inspect(dgram, true);
  }
  g_counting.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state RTP inspection touched the heap";
  EXPECT_GT(vids.stats().rtp_packets, 0u);
}

// In-dialog SIP steady state: once a dialog exists, a re-INVITE / 200 / ACK
// refresh cycle rides entirely on the lazy parse layer and reused scratch
// state — no heap traffic. This is the SIP counterpart of the RTP test
// above and the invariant BM_VidsInspectSipInDialog reports as
// allocs_per_iter.
TEST(ZeroAlloc, SteadyStateInDialogSipInspectionDoesNotAllocate) {
  sim::Scheduler scheduler;
  Vids vids(scheduler);
  const std::string call_id = "za-dlg";

  const auto make_ack = [&call_id](uint32_t cseq) {
    auto ack = sip::Message::MakeRequest(
        sip::Method::kAck, *sip::SipUri::Parse("sip:bob@b.example.com"));
    sip::Via via;
    via.sent_by = kProxyA;
    via.branch = "z9hG4bKack" + call_id;
    ack.PushVia(via);
    sip::NameAddr from;
    from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
    from.SetTag("tag-alice");
    ack.SetFrom(from);
    sip::NameAddr to;
    to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
    to.SetTag("tag-bob");
    ack.SetTo(to);
    ack.SetCallId(call_id);
    ack.SetCseq(sip::CSeq{cseq, sip::Method::kAck});
    return ack;
  };

  // Establish the dialog: INVITE / 200 / ACK.
  const auto invite = MakeInvite(call_id);
  vids.Inspect(SipDgram(invite, kProxyA, kProxyB), true);
  vids.Inspect(SipDgram(MakeOk(invite), kProxyB, kProxyA), false);
  vids.Inspect(SipDgram(make_ack(1), kProxyA, kProxyB), true);
  ASSERT_EQ(vids.fact_base().CallByMedia(kCalleeMedia), call_id);

  // Pre-serialized refresh cycle: re-INVITE with both tags and CSeq 2, its
  // 200, its ACK. The measured loop replays the same three datagrams.
  auto reinvite = MakeInvite(call_id);
  auto to = *reinvite.To();
  to.SetTag("tag-bob");
  reinvite.SetTo(to);
  reinvite.SetCseq(sip::CSeq{2, sip::Method::kInvite});
  net::Datagram cycle[3] = {
      SipDgram(reinvite, kProxyA, kProxyB),
      SipDgram(MakeOk(reinvite), kProxyB, kProxyA),
      SipDgram(make_ack(2), kProxyA, kProxyB),
  };
  const bool from_outside[3] = {true, false, true};

  // Warmup: settle string/map capacities, cross the INVITE-flood threshold
  // so its machine parks in the deduplicated attack self-loop.
  for (int i = 0; i < 600; ++i) {
    for (int p = 0; p < 3; ++p) vids.Inspect(cycle[p], from_outside[p]);
  }

  g_alloc_count.store(0);
  g_counting.store(true);
  for (int i = 0; i < 200; ++i) {
    for (int p = 0; p < 3; ++p) vids.Inspect(cycle[p], from_outside[p]);
  }
  g_counting.store(false);

  EXPECT_EQ(g_alloc_count.load(), 0u)
      << "steady-state in-dialog SIP inspection touched the heap";
  EXPECT_GT(vids.stats().sip_packets, 600u);
}

}  // namespace
}  // namespace vids::ids
