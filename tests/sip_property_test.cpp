// Property-style tests of the SIP codec: round-trip identity over
// generated messages, tolerance to header permutations and junk mutation
// safety (parse never crashes, never mis-parses).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sdp/sdp.h"
#include "rtp/packet.h"
#include "sip/lazy_message.h"
#include "sip/message.h"

namespace vids::sip {
namespace {

using common::Stream;

std::string RandomToken(Stream& rng, size_t min_len = 1, size_t max_len = 12) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  const size_t len = rng.NextInRange(min_len, max_len);
  std::string out;
  for (size_t i = 0; i < len; ++i) {
    out += kAlphabet[rng.NextInRange(0, sizeof(kAlphabet) - 2)];
  }
  return out;
}

net::IpAddress RandomIp(Stream& rng) {
  return net::IpAddress(static_cast<uint32_t>(rng.NextInRange(0x01000000, 0xDFFFFFFF)));
}

Message RandomRequest(Stream& rng) {
  static const Method kMethods[] = {Method::kInvite, Method::kAck,
                                    Method::kBye, Method::kCancel,
                                    Method::kRegister, Method::kOptions};
  const Method method = kMethods[rng.NextInRange(0, 5)];
  SipUri uri;
  uri.user = RandomToken(rng);
  uri.host = RandomToken(rng) + ".example.com";
  if (rng.NextBernoulli(0.5)) {
    uri.port = static_cast<uint16_t>(rng.NextInRange(1, 65535));
  }
  Message msg = Message::MakeRequest(method, uri);

  const int via_count = static_cast<int>(rng.NextInRange(1, 3));
  for (int i = 0; i < via_count; ++i) {
    Via via;
    via.sent_by = net::Endpoint{
        RandomIp(rng), static_cast<uint16_t>(rng.NextInRange(1024, 65535))};
    via.branch = MakeBranch(rng.Next());
    if (rng.NextBernoulli(0.3)) via.params["received"] = "1.2.3.4";
    msg.PushVia(via);
  }
  NameAddr from;
  from.uri.user = RandomToken(rng);
  from.uri.host = RandomToken(rng) + ".net";
  if (rng.NextBernoulli(0.7)) from.display_name = RandomToken(rng);
  from.SetTag(RandomToken(rng));
  msg.SetFrom(from);
  NameAddr to;
  to.uri.user = RandomToken(rng);
  to.uri.host = RandomToken(rng) + ".org";
  if (rng.NextBernoulli(0.5)) to.SetTag(RandomToken(rng));
  msg.SetTo(to);
  msg.SetCallId(RandomToken(rng) + "@" + RandomToken(rng));
  msg.SetCseq(CSeq{static_cast<uint32_t>(rng.NextInRange(1, 1 << 30)), method});
  if (rng.NextBernoulli(0.4)) {
    msg.SetBody(
        sdp::MakeAudioOffer(
            net::Endpoint{RandomIp(rng),
                          static_cast<uint16_t>(rng.NextInRange(1024, 65000))})
            .Serialize(),
        "application/sdp");
  }
  if (rng.NextBernoulli(0.3)) {
    msg.AddHeader("User-Agent", RandomToken(rng, 4, 30));
  }
  return msg;
}

class SipRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SipRoundTrip, SerializeParsePreservesEverything) {
  Stream rng(GetParam(), "sip-roundtrip");
  for (int iteration = 0; iteration < 50; ++iteration) {
    const Message original = RandomRequest(rng);
    const auto parsed = Message::Parse(original.Serialize());
    ASSERT_TRUE(parsed.has_value()) << original.Serialize();

    EXPECT_EQ(parsed->IsRequest(), original.IsRequest());
    EXPECT_EQ(parsed->method(), original.method());
    EXPECT_EQ(parsed->request_uri().ToString(),
              original.request_uri().ToString());
    EXPECT_EQ(parsed->CallId(), original.CallId());
    EXPECT_EQ(*parsed->Cseq(), *original.Cseq());
    EXPECT_EQ(parsed->From()->ToString(), original.From()->ToString());
    EXPECT_EQ(parsed->To()->ToString(), original.To()->ToString());
    EXPECT_EQ(parsed->body(), original.body());
    // Via stack preserved in order.
    const auto vias_a = parsed->Vias();
    const auto vias_b = original.Vias();
    ASSERT_EQ(vias_a.size(), vias_b.size());
    for (size_t i = 0; i < vias_a.size(); ++i) {
      EXPECT_EQ(vias_a[i].ToString(), vias_b[i].ToString());
    }
    // Idempotence: serialize(parse(serialize(x))) == serialize(x).
    EXPECT_EQ(parsed->Serialize(), original.Serialize());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SipRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

class SipMutation : public ::testing::TestWithParam<uint64_t> {};

// Parsing arbitrary mutations must never crash and, if it succeeds, must
// produce a message whose serialization parses again (no "half-parsed"
// garbage escaping into the IDS).
TEST_P(SipMutation, MutatedInputNeverBreaksInvariants) {
  Stream rng(GetParam(), "sip-mutation");
  for (int iteration = 0; iteration < 100; ++iteration) {
    std::string wire = RandomRequest(rng).Serialize();
    const int mutations = static_cast<int>(rng.NextInRange(1, 8));
    for (int m = 0; m < mutations; ++m) {
      const size_t pos = rng.NextInRange(0, wire.size() - 1);
      switch (rng.NextInRange(0, 2)) {
        case 0:  // flip a byte
          wire[pos] = static_cast<char>(rng.NextInRange(0, 255));
          break;
        case 1:  // delete a byte
          wire.erase(pos, 1);
          break;
        default:  // duplicate a byte
          wire.insert(pos, 1, wire[pos]);
          break;
      }
      if (wire.empty()) break;
    }
    const auto parsed = Message::Parse(wire);
    if (parsed.has_value()) {
      const auto reparsed = Message::Parse(parsed->Serialize());
      ASSERT_TRUE(reparsed.has_value());
      EXPECT_EQ(reparsed->Serialize(), parsed->Serialize());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SipMutation,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// Torn-datagram fuzz: a datagram cut short at any byte (UDP truncation,
// capture loss) must never crash the lazy lexer, and its accept/reject
// decision must stay identical to the full parser's at every cut point.
TEST(SipTornDatagram, EveryPrefixIndexesSafelyAndInParity) {
  Stream rng(99, "sip-torn");
  LazyMessage lazy;
  for (int iteration = 0; iteration < 10; ++iteration) {
    const std::string wire = RandomRequest(rng).Serialize();
    for (size_t cut = 0; cut <= wire.size(); ++cut) {
      const std::string_view prefix(wire.data(), cut);
      const bool lazy_ok = lazy.Index(prefix);
      EXPECT_EQ(lazy_ok, Message::Parse(prefix).has_value())
          << "prefix length " << cut << " of:\n" << wire;
      if (lazy_ok) {
        // Touch the lazy views too: decoding spans of a torn payload must
        // stay inside the buffer (ASan-checked in the sanitizer job).
        lazy.TopVia();
        lazy.From();
        lazy.To();
        lazy.Cseq();
        (void)lazy.HeaderCount();
      }
    }
  }
}

// Mid-message tears that also damage bytes (not just clean cuts).
TEST(SipTornDatagram, TornAndDamagedTailStaysInParity) {
  Stream rng(101, "sip-torn-damaged");
  LazyMessage lazy;
  for (int iteration = 0; iteration < 200; ++iteration) {
    std::string wire = RandomRequest(rng).Serialize();
    const size_t cut = rng.NextInRange(0, wire.size());
    wire.resize(cut);
    if (!wire.empty() && rng.NextBernoulli(0.5)) {
      wire[rng.NextInRange(0, wire.size() - 1)] =
          static_cast<char>(rng.NextInRange(0, 255));
    }
    EXPECT_EQ(lazy.Index(wire), Message::Parse(wire).has_value()) << wire;
  }
}

class SdpRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SdpRoundTrip, SerializeParsePreservesMedia) {
  Stream rng(GetParam(), "sdp-roundtrip");
  for (int iteration = 0; iteration < 100; ++iteration) {
    sdp::SessionDescription sd;
    sd.origin_username = RandomToken(rng);
    sd.session_id = rng.Next() >> 1;
    sd.session_version = rng.Next() >> 1;
    sd.origin_address = RandomIp(rng);
    sd.connection = RandomIp(rng);
    const int sections = static_cast<int>(rng.NextInRange(1, 3));
    for (int i = 0; i < sections; ++i) {
      sdp::MediaDescription media;
      media.media = i == 0 ? "audio" : "video";
      media.port = static_cast<uint16_t>(rng.NextInRange(1024, 65000));
      media.payload_types.push_back(static_cast<int>(rng.NextInRange(0, 127)));
      media.rtpmap[media.payload_types[0]] = RandomToken(rng) + "/8000";
      if (rng.NextBernoulli(0.5)) media.connection = RandomIp(rng);
      sd.media.push_back(media);
    }
    const auto parsed = sdp::SessionDescription::Parse(sd.Serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->origin_username, sd.origin_username);
    EXPECT_EQ(parsed->session_id, sd.session_id);
    ASSERT_EQ(parsed->media.size(), sd.media.size());
    for (size_t i = 0; i < sd.media.size(); ++i) {
      EXPECT_EQ(parsed->media[i].port, sd.media[i].port);
      EXPECT_EQ(parsed->media[i].payload_types, sd.media[i].payload_types);
      EXPECT_EQ(parsed->media[i].rtpmap, sd.media[i].rtpmap);
    }
    EXPECT_EQ(parsed->Serialize(), sd.Serialize());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdpRoundTrip, ::testing::Values(21, 22, 23));

class RtpRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RtpRoundTrip, HeaderRoundTripsAtAllFieldExtremes) {
  Stream rng(GetParam(), "rtp-roundtrip");
  for (int iteration = 0; iteration < 500; ++iteration) {
    rtp::RtpHeader header;
    header.padding = rng.NextBernoulli(0.5);
    header.extension = rng.NextBernoulli(0.5);
    header.csrc_count = static_cast<uint8_t>(rng.NextInRange(0, 15));
    header.marker = rng.NextBernoulli(0.5);
    header.payload_type = static_cast<uint8_t>(rng.NextInRange(0, 127));
    header.sequence_number = static_cast<uint16_t>(rng.NextInRange(0, 0xFFFF));
    header.timestamp = static_cast<uint32_t>(rng.Next());
    header.ssrc = static_cast<uint32_t>(rng.Next());
    const auto parsed = rtp::RtpHeader::Parse(header.Serialize());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, header);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RtpRoundTrip, ::testing::Values(31, 32));

}  // namespace
}  // namespace vids::sip
