#include <gtest/gtest.h>

#include "efsm/engine.h"

namespace vids::efsm {
namespace {

// Observer that records everything for assertions.
struct RecordingObserver : Observer {
  std::vector<std::string> transitions;
  std::vector<std::string> attacks;
  std::vector<std::string> deviations;
  int nondeterminism = 0;
  int retired = 0;

  void OnTransition(const MachineInstance& machine, const Transition& t,
                    const Event&) override {
    transitions.push_back(machine.name() + ":" + t.label);
  }
  void OnAttackState(const MachineInstance& machine, StateId state,
                     const Event&) override {
    attacks.push_back(machine.name() + ":" +
                      std::string(machine.def().StateName(state)));
  }
  void OnDeviation(const MachineInstance& machine, const Event& event) override {
    deviations.push_back(machine.name() + ":" + event.name);
  }
  void OnNondeterminism(const MachineInstance&, const Event&,
                        size_t) override {
    ++nondeterminism;
  }
  void OnRetired(const MachineInstance&) override { ++retired; }
};

Event Ev(std::string name) {
  Event event;
  event.name = std::move(name);
  return event;
}

// ------------------------------------------------------------------ values

TEST(Value, StoreTypedAccess) {
  VariableStore store;
  store.Set("i", int64_t{42});
  store.Set("d", 2.5);
  store.Set("s", std::string("hi"));
  store.Set("b", true);
  EXPECT_EQ(store.GetInt("i"), 42);
  EXPECT_EQ(store.GetDouble("d"), 2.5);
  EXPECT_EQ(store.GetString("s"), "hi");
  EXPECT_EQ(store.GetBool("b"), true);
  // Wrong-type reads return nullopt.
  EXPECT_FALSE(store.GetInt("s").has_value());
  EXPECT_FALSE(store.GetString("i").has_value());
  // Absent reads return nullopt / monostate.
  EXPECT_FALSE(store.GetInt("nope").has_value());
  EXPECT_TRUE(std::holds_alternative<std::monostate>(store.Get("nope")));
}

TEST(Value, OverwriteAndErase) {
  VariableStore store;
  store.Set("x", int64_t{1});
  store.Set("x", int64_t{2});
  EXPECT_EQ(store.GetInt("x"), 2);
  EXPECT_EQ(store.size(), 1u);
  store.Erase("x");
  EXPECT_FALSE(store.Has("x"));
}

TEST(Value, MemoryBytesGrowsWithContent) {
  VariableStore store;
  const size_t empty = store.MemoryBytes();
  store.Set("some_variable", std::string(100, 'x'));
  EXPECT_GT(store.MemoryBytes(), empty + 100);
}

TEST(Value, ToStringRendersAllAlternatives) {
  EXPECT_EQ(ToString(Value{}), "<unset>");
  EXPECT_EQ(ToString(Value{int64_t{5}}), "5");
  EXPECT_EQ(ToString(Value{std::string("s")}), "s");
  EXPECT_EQ(ToString(Value{true}), "true");
}

// ---------------------------------------------------------------- machines

class EngineFixture : public ::testing::Test {
 protected:
  sim::Scheduler scheduler_;
  RecordingObserver observer_;
};

TEST_F(EngineFixture, BasicTransitionWithPredicateAndAction) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto s1 = def.AddState("S1");
  def.On(s0, "go")
      .When([](const Context& c) { return c.event().ArgInt("x") == 1; })
      .Do([](Context& c) { c.mutable_local().Set("saw", c.event().Arg("x")); })
      .To(s1, "went");

  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  EXPECT_EQ(machine.StateName(), "S0");

  Event blocked = Ev("go");
  blocked.args["x"] = int64_t{2};
  EXPECT_EQ(machine.Deliver(blocked),
            MachineInstance::DeliverResult::kDeviation);
  EXPECT_EQ(machine.StateName(), "S0");

  Event pass = Ev("go");
  pass.args["x"] = int64_t{1};
  EXPECT_EQ(machine.Deliver(pass),
            MachineInstance::DeliverResult::kTransitioned);
  EXPECT_EQ(machine.StateName(), "S1");
  EXPECT_EQ(machine.local().GetInt("saw"), 1);
  ASSERT_EQ(observer_.transitions.size(), 1u);
  EXPECT_EQ(observer_.transitions[0], "m1:went");
}

TEST_F(EngineFixture, EventOutsideAlphabetIsIgnored) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  def.On(s0, "known").To(s0);
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  EXPECT_EQ(machine.Deliver(Ev("unknown")),
            MachineInstance::DeliverResult::kNotInAlphabet);
  EXPECT_TRUE(observer_.deviations.empty());
}

TEST_F(EngineFixture, DeviationSuppressedWhenConfigured) {
  MachineDef def("pattern");
  def.set_report_deviations(false);
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto s1 = def.AddState("S1");
  def.On(s0, "e")
      .When([](const Context&) { return false; })
      .To(s1);
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  EXPECT_EQ(machine.Deliver(Ev("e")),
            MachineInstance::DeliverResult::kDeviation);
  EXPECT_TRUE(observer_.deviations.empty());  // reported nowhere
}

TEST_F(EngineFixture, UnpredicatedTransitionIsElseBranch) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto hit = def.AddState("HIT");
  const auto other = def.AddState("OTHER");
  def.On(s0, "e")
      .When([](const Context& c) { return c.event().ArgInt("x") == 1; })
      .To(hit, "specific");
  def.On(s0, "e").To(other, "else");

  MachineGroup group("g", scheduler_, &observer_);
  auto& m1 = group.AddMachine(def, "m1");
  Event matching = Ev("e");
  matching.args["x"] = int64_t{1};
  m1.Deliver(matching);
  EXPECT_EQ(m1.StateName(), "HIT");
  EXPECT_EQ(observer_.nondeterminism, 0);  // else branch doesn't compete

  auto& m2 = group.AddMachine(def, "m2");
  Event not_matching = Ev("e");
  not_matching.args["x"] = int64_t{9};
  m2.Deliver(not_matching);
  EXPECT_EQ(m2.StateName(), "OTHER");
}

TEST_F(EngineFixture, OverlappingPredicatesReportNondeterminism) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto s1 = def.AddState("S1");
  def.On(s0, "e").When([](const Context&) { return true; }).To(s1, "first");
  def.On(s0, "e").When([](const Context&) { return true; }).To(s0, "second");
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  machine.Deliver(Ev("e"));
  EXPECT_EQ(observer_.nondeterminism, 1);
  EXPECT_EQ(machine.StateName(), "S1");  // first in definition order wins
}

TEST_F(EngineFixture, AttackStateRaisesObserver) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto bad = def.AddState("evil", StateKind::kAttack);
  def.On(s0, "boom").To(bad);
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  machine.Deliver(Ev("boom"));
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], "m1:evil");
}

TEST_F(EngineFixture, FinalStateRetiresMachine) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto done = def.AddState("done", StateKind::kFinal);
  def.On(s0, "end").To(done);
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  machine.Deliver(Ev("end"));
  EXPECT_TRUE(machine.retired());
  EXPECT_EQ(observer_.retired, 1);
  EXPECT_EQ(machine.Deliver(Ev("end")),
            MachineInstance::DeliverResult::kRetired);
  EXPECT_TRUE(group.AllRetired());
}

TEST_F(EngineFixture, SyncChannelDeliversWithPriority) {
  // Machine A emits on channel "ch" when it receives "data"; machine B
  // consumes from "ch".
  MachineDef def_a("a");
  const auto a0 = def_a.AddState("A0", StateKind::kInitial);
  def_a.On(a0, "data")
      .Do([](Context& c) {
        Event sync;
        sync.name = "delta";
        sync.args["v"] = int64_t{7};
        c.Emit("ch", sync);
      })
      .To(a0, "emit");

  MachineDef def_b("b");
  const auto b0 = def_b.AddState("B0", StateKind::kInitial);
  const auto b1 = def_b.AddState("B1");
  def_b.On(b0, "delta")
      .Do([](Context& c) { c.mutable_local().Set("v", c.event().Arg("v")); })
      .To(b1, "sync received");

  MachineGroup group("g", scheduler_, &observer_);
  auto& machine_a = group.AddMachine(def_a, "A");
  auto& machine_b = group.AddMachine(def_b, "B");
  group.RouteChannel("ch", machine_b);

  group.DeliverData(machine_a, Ev("data"));
  // The sync event was pumped before DeliverData returned.
  EXPECT_EQ(machine_b.StateName(), "B1");
  EXPECT_EQ(machine_b.local().GetInt("v"), 7);
}

TEST_F(EngineFixture, SyncEventsPreserveFifoOrder) {
  // A emits three numbered sync events in one action; B must consume them
  // in emission order (the paper's reliable FIFO queue assumption, §4.2).
  MachineDef def_a("a");
  const auto a0 = def_a.AddState("A0", StateKind::kInitial);
  def_a.On(a0, "burst")
      .Do([](Context& c) {
        for (int64_t i = 1; i <= 3; ++i) {
          Event sync;
          sync.name = "delta";
          sync.args["n"] = i;
          c.Emit("ch", sync);
        }
      })
      .To(a0);

  MachineDef def_b("b");
  const auto b0 = def_b.AddState("B0", StateKind::kInitial);
  def_b.On(b0, "delta")
      .Do([](Context& c) {
        auto& l = c.mutable_local();
        const auto count = l.GetInt("count").value_or(0);
        // Each arrival must carry exactly count+1.
        l.Set("in_order",
              c.event().ArgInt("n") == count + 1 &&
                  l.GetBool("in_order").value_or(true));
        l.Set("count", count + 1);
      })
      .To(b0);

  MachineGroup group("g", scheduler_, &observer_);
  auto& machine_a = group.AddMachine(def_a, "A");
  auto& machine_b = group.AddMachine(def_b, "B");
  group.RouteChannel("ch", machine_b);
  group.DeliverData(machine_a, Ev("burst"));
  EXPECT_EQ(machine_b.local().GetInt("count"), 3);
  EXPECT_EQ(machine_b.local().GetBool("in_order"), true);
}

TEST_F(EngineFixture, SyncChainsAreDeliveredTransitively) {
  // A → B → C through two channels in one data delivery.
  MachineDef def_a("a");
  const auto a0 = def_a.AddState("A0", StateKind::kInitial);
  def_a.On(a0, "go")
      .Do([](Context& c) { c.Emit("ab", Event{.name = "hop", .args = {}}); })
      .To(a0);
  MachineDef def_b("b");
  const auto b0 = def_b.AddState("B0", StateKind::kInitial);
  def_b.On(b0, "hop")
      .Do([](Context& c) { c.Emit("bc", Event{.name = "hop", .args = {}}); })
      .To(b0);
  MachineDef def_c("c");
  const auto c0 = def_c.AddState("C0", StateKind::kInitial);
  const auto c1 = def_c.AddState("C1");
  def_c.On(c0, "hop").To(c1);

  MachineGroup group("g", scheduler_, &observer_);
  auto& machine_a = group.AddMachine(def_a, "A");
  auto& machine_b = group.AddMachine(def_b, "B");
  auto& machine_c = group.AddMachine(def_c, "C");
  group.RouteChannel("ab", machine_b);
  group.RouteChannel("bc", machine_c);
  group.DeliverData(machine_a, Ev("go"));
  EXPECT_EQ(machine_c.StateName(), "C1");
}

TEST_F(EngineFixture, CyclicEmitChainIsBounded) {
  // Two machines that bounce a sync event forever: the pump's cap must
  // break the livelock instead of hanging the IDS.
  MachineDef def_ping("ping");
  const auto p0 = def_ping.AddState("P0", StateKind::kInitial);
  def_ping.On(p0, "ball")
      .Do([](Context& c) { c.Emit("to_pong", Event{.name = "ball", .args = {}}); })
      .To(p0);
  MachineDef def_pong("pong");
  const auto q0 = def_pong.AddState("Q0", StateKind::kInitial);
  def_pong.On(q0, "ball")
      .Do([](Context& c) { c.Emit("to_ping", Event{.name = "ball", .args = {}}); })
      .To(q0);

  MachineGroup group("g", scheduler_, &observer_);
  auto& ping = group.AddMachine(def_ping, "ping");
  auto& pong = group.AddMachine(def_pong, "pong");
  group.RouteChannel("to_pong", pong);
  group.RouteChannel("to_ping", ping);
  group.DeliverData(ping, Ev("ball"));  // must return, not livelock
  SUCCEED();
}

TEST_F(EngineFixture, EmitOnUnroutedChannelIsDroppedSilently) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  def.On(s0, "go")
      .Do([](Context& c) { c.Emit("nowhere", Event{.name = "x", .args = {}}); })
      .To(s0);
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  group.DeliverData(machine, Ev("go"));
  EXPECT_TRUE(observer_.deviations.empty());
}

TEST_F(EngineFixture, GlobalVariablesAreSharedAcrossMachines) {
  MachineDef writer("w");
  const auto w0 = writer.AddState("W0", StateKind::kInitial);
  writer.On(w0, "set")
      .Do([](Context& c) { c.mutable_global().Set("g_x", int64_t{9}); })
      .To(w0);
  MachineDef reader("r");
  const auto r0 = reader.AddState("R0", StateKind::kInitial);
  const auto r1 = reader.AddState("R1");
  reader.On(r0, "check")
      .When([](const Context& c) { return c.global().GetInt("g_x") == 9; })
      .To(r1);

  MachineGroup group("g", scheduler_, &observer_);
  auto& machine_w = group.AddMachine(writer, "W");
  auto& machine_r = group.AddMachine(reader, "R");
  group.DeliverData(machine_w, Ev("set"));
  group.DeliverData(machine_r, Ev("check"));
  EXPECT_EQ(machine_r.StateName(), "R1");
}

TEST_F(EngineFixture, TimersDeliverTimerEvents) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto armed = def.AddState("armed");
  const auto fired = def.AddState("fired");
  def.On(s0, "arm")
      .Do([](Context& c) { c.StartTimer("T", sim::Duration::Millis(100)); })
      .To(armed);
  def.On(armed, TimerEventName("T")).To(fired);

  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  group.DeliverData(machine, Ev("arm"));
  EXPECT_EQ(machine.StateName(), "armed");
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(50));
  EXPECT_EQ(machine.StateName(), "armed");
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(200));
  EXPECT_EQ(machine.StateName(), "fired");
}

TEST_F(EngineFixture, CancelTimerPreventsFiring) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto fired = def.AddState("fired");
  def.On(s0, "arm")
      .Do([](Context& c) { c.StartTimer("T", sim::Duration::Millis(100)); })
      .To(s0, "armed");
  def.On(s0, "disarm")
      .Do([](Context& c) { c.CancelTimer("T"); })
      .To(s0, "disarmed");
  def.On(s0, TimerEventName("T")).To(fired);

  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  group.DeliverData(machine, Ev("arm"));
  group.DeliverData(machine, Ev("disarm"));
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(1));
  EXPECT_EQ(machine.StateName(), "S0");
}

TEST_F(EngineFixture, StaleTimerEventIsIgnoredSilently) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto s1 = def.AddState("S1");
  def.On(s0, "arm")
      .Do([](Context& c) { c.StartTimer("T", sim::Duration::Millis(10)); })
      .To(s1, "armed");
  // S1 has no transition for timer:T — the expiry must not be a deviation.
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  group.DeliverData(machine, Ev("arm"));
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(1));
  EXPECT_TRUE(observer_.deviations.empty());
  EXPECT_EQ(machine.StateName(), "S1");
}

TEST_F(EngineFixture, RetiringCancelsPendingTimers) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto done = def.AddState("done", StateKind::kFinal);
  def.On(s0, "arm")
      .Do([](Context& c) { c.StartTimer("T", sim::Duration::Millis(10)); })
      .To(done);
  MachineGroup group("g", scheduler_, &observer_);
  auto& machine = group.AddMachine(def, "m1");
  group.DeliverData(machine, Ev("arm"));
  EXPECT_TRUE(machine.retired());
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(1));
  // No pending events leaked from the retired machine's timer.
  EXPECT_EQ(scheduler_.PendingEvents(), 0u);
}

TEST_F(EngineFixture, GroupMemoryAccountsInstances) {
  MachineDef def("m");
  def.AddState("S0", StateKind::kInitial);
  MachineGroup group("g", scheduler_, &observer_);
  const size_t empty = group.MemoryBytes();
  auto& machine = group.AddMachine(def, "m1");
  machine.local().Set("v", std::string(1000, 'x'));
  EXPECT_GT(group.MemoryBytes(), empty + 1000);
}

TEST(MachineDefCheck, ToDotRendersStatesAndEdges) {
  MachineDef def("demo");
  const auto s0 = def.AddState("Start", StateKind::kInitial);
  const auto bad = def.AddState("Evil State", StateKind::kAttack);
  const auto done = def.AddState("Done", StateKind::kFinal);
  def.On(s0, "hit").When([](const Context&) { return true; }).To(bad, "boom");
  def.On(s0, "end").To(done);
  const std::string dot = def.ToDot();
  EXPECT_NE(dot.find("digraph \"demo\""), std::string::npos);
  EXPECT_NE(dot.find("Start"), std::string::npos);
  EXPECT_NE(dot.find("Evil State"), std::string::npos);
  EXPECT_NE(dot.find("fillcolor"), std::string::npos);    // attack styling
  EXPECT_NE(dot.find("peripheries=2"), std::string::npos); // final styling
  EXPECT_NE(dot.find("s0 -> s1"), std::string::npos);
  EXPECT_NE(dot.find("P(x̄,v̄)"), std::string::npos);  // predicate marker
}

TEST(MachineDefCheck, ValidateFlagsUnreachableState) {
  MachineDef def("m");
  def.AddState("S0", StateKind::kInitial);
  def.AddState("Island");
  const auto findings = def.Validate();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("Island"), std::string::npos);
  EXPECT_NE(findings[0].find("unreachable"), std::string::npos);
}

TEST(MachineDefCheck, ValidateFlagsTrapState) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto trap = def.AddState("Stuck");
  def.On(s0, "go").To(trap);
  const auto findings = def.Validate();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("trap"), std::string::npos);
}

TEST(MachineDefCheck, ValidateFlagsTransitionsOutOfFinalStates) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto done = def.AddState("Done", StateKind::kFinal);
  def.On(s0, "end").To(done);
  def.On(done, "zombie").To(s0);
  const auto findings = def.Validate();
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].find("final"), std::string::npos);
}

TEST(MachineDefCheck, ValidateAcceptsWellFormedMachine) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  const auto s1 = def.AddState("S1");
  const auto done = def.AddState("Done", StateKind::kFinal);
  def.On(s0, "a").To(s1);
  def.On(s1, "b").To(done);
  def.On(s1, "loop").To(s1);
  EXPECT_TRUE(def.Validate().empty());
}

TEST(MachineDefCheck, TransitionToUnknownStateThrows) {
  MachineDef def("m");
  const auto s0 = def.AddState("S0", StateKind::kInitial);
  EXPECT_THROW(def.On(s0, "e").To(StateId{42}), std::invalid_argument);
}

TEST(MachineDefCheck, InstanceWithoutInitialStateThrows) {
  MachineDef def("m");
  def.AddState("S0");  // not initial
  sim::Scheduler scheduler;
  MachineGroup group("g", scheduler, nullptr);
  EXPECT_THROW(group.AddMachine(def, "m1"), std::invalid_argument);
}

}  // namespace
}  // namespace vids::efsm
