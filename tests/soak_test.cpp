// Tests of the soak/churn load harness (src/load): the direct driver's
// workload stays bounded end to end, the plateau screen catches growth,
// and the tap-mode soak exercises the deployed path.
#include <gtest/gtest.h>

#include "load/soak.h"
#include "vids/ids.h"

namespace vids::load {
namespace {

// Scaled-down lifecycle so a small run reaches steady state quickly.
ids::DetectionConfig FastLifecycle() {
  ids::DetectionConfig detection;
  detection.tombstone_ttl = sim::Duration::Seconds(4);
  detection.rtp_close_linger = sim::Duration::Seconds(2);
  detection.call_idle_timeout = sim::Duration::Seconds(10);
  detection.keyed_idle_timeout = sim::Duration::Seconds(5);
  return detection;
}

SoakConfig SmallConfig() {
  SoakConfig config;
  config.seed = 7;
  config.total_calls = 2000;
  config.calls_per_second = 100.0;
  config.mean_hold = sim::Duration::Seconds(3);
  config.rtp_packets_per_call = 6;
  config.callee_aors = 100;
  config.attack_every = 100;
  config.pause = sim::Duration::Seconds(12);
  config.sample_every = sim::Duration::Seconds(2);
  config.max_retained_alerts = 500;
  config.detection = FastLifecycle();
  return config;
}

TEST(SoakDriverTest, SustainedChurnStaysBoundedAndDrainsToEmpty) {
  SoakDriver driver(SmallConfig());
  const SoakReport report = driver.Run();

  EXPECT_EQ(report.calls_started, 2000u);
  EXPECT_GT(report.packets_inspected, 20000u);
  ASSERT_GE(report.samples.size(), 8u);
  for (const PlateauFinding& finding : report.findings) {
    EXPECT_TRUE(finding.bounded) << finding.name << ": peak " << finding.peak
                                 << " > limit " << finding.limit;
  }
  EXPECT_TRUE(report.bounded);

  // After the drain every map is empty: nothing survives its lifecycle.
  const auto& fb = driver.vids().fact_base();
  EXPECT_EQ(fb.call_count(), 0u);
  EXPECT_EQ(fb.keyed_count(), 0u);
  EXPECT_EQ(fb.tombstone_count(), 0u);
  EXPECT_EQ(fb.media_index_count(), 0u);
  EXPECT_EQ(driver.vids().alert_sig_count(), 0u);

  // The attack bursts actually fired (the run exercised the detectors).
  EXPECT_GT(report.alerts_total, 0u);
  // The retained history respected its cap.
  EXPECT_LE(driver.vids().alerts().size(), 500u);
}

TEST(SoakDriverTest, MidRunPauseReclaimsStateWithZeroPackets) {
  SoakConfig config = SmallConfig();
  config.attack_every = 0;  // benign only, for a clean decay signal
  // Longer than the longest clamped hold (10x mean) plus every lifecycle
  // timeout, so the pause ends with a genuinely silent tail.
  config.pause = sim::Duration::Seconds(45);
  SoakDriver driver(config);
  const SoakReport report = driver.Run();

  // Find the sample with the largest inter-sample packet gap — that is
  // inside the pause. By its end, holds + linger + tombstone TTL have all
  // expired with no packet arriving; only the periodic sweep can have
  // reclaimed the state.
  size_t pause_end = 0;
  uint64_t widest_gap = 0;
  for (size_t i = 1; i < report.samples.size(); ++i) {
    const uint64_t gap = report.samples[i].packets_inspected -
                         report.samples[i - 1].packets_inspected;
    if (report.samples[i].calls_started < config.total_calls && gap == 0) {
      pause_end = i;  // a zero-packet interval while arrivals remain
    }
    widest_gap = std::max(widest_gap, gap);
  }
  ASSERT_GT(pause_end, 0u) << "no zero-packet sampling interval found";
  const SoakSample& quiet = report.samples[pause_end];
  EXPECT_EQ(quiet.calls, 0u) << "idle calls survived a silent pause";
  EXPECT_EQ(quiet.keyed, 0u);
  EXPECT_EQ(quiet.tombstones, 0u);
  EXPECT_EQ(quiet.media_index, 0u);
}

TEST(PlateauCheckTest, FlagsLinearGrowthAndAcceptsSteadyState) {
  std::vector<SoakSample> growing;
  std::vector<SoakSample> steady;
  for (int i = 0; i < 40; ++i) {
    SoakSample s;
    s.when = sim::Time::FromNanos(int64_t{1'000'000'000} * i);
    s.memory_bytes = 1'000'000 + 500'000 * static_cast<size_t>(i);
    s.calls = 100 + 50 * static_cast<size_t>(i);
    growing.push_back(s);
    s.memory_bytes = 5'000'000 + (i % 3) * 100'000;
    s.calls = 5000 + (i % 5);
    steady.push_back(s);
  }
  for (const PlateauFinding& f : CheckPlateau(growing)) {
    if (f.name == "memory_bytes" || f.name == "calls") {
      EXPECT_FALSE(f.bounded) << f.name;
    }
  }
  for (const PlateauFinding& f : CheckPlateau(steady)) {
    EXPECT_TRUE(f.bounded) << f.name << ": peak " << f.peak << " > limit "
                           << f.limit;
  }
}

TEST(PlateauCheckTest, RefusesToPassTooShortRuns) {
  std::vector<SoakSample> few(5);
  for (const PlateauFinding& f : CheckPlateau(few)) {
    EXPECT_FALSE(f.bounded);
  }
}

TEST(SoakReportTest, SummaryAndCsvRenderEverySample) {
  SoakConfig config = SmallConfig();
  config.total_calls = 200;
  SoakDriver driver(config);
  const SoakReport report = driver.Run();
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("BOUNDED"), std::string::npos);
  const std::string csv = report.Csv();
  // Header + one line per sample.
  EXPECT_EQ(static_cast<size_t>(std::count(csv.begin(), csv.end(), '\n')),
            report.samples.size() + 1);
}

TEST(TapSoakTest, TestbedWorkloadWithAttacksStaysBounded) {
  SoakConfig config;
  config.seed = 11;
  config.calls_per_second = 2.0;
  config.mean_hold = sim::Duration::Seconds(10);
  config.sample_every = sim::Duration::Seconds(15);
  config.max_retained_alerts = 1000;
  config.detection = FastLifecycle();
  // Long enough that the warmup (failed call attempts live SIP-timer-B +
  // idle-timeout, ~45 s) is over before the 10%..25% reference window
  // opens at t=60 s.
  const SoakReport report =
      RunTapSoak(config, sim::Duration::Seconds(600));

  ASSERT_GE(report.samples.size(), 8u);
  EXPECT_GT(report.packets_inspected, 1000u);
  EXPECT_GT(report.calls_started, 0u);
  for (const PlateauFinding& finding : report.findings) {
    EXPECT_TRUE(finding.bounded) << finding.name << ": peak " << finding.peak
                                 << " > limit " << finding.limit;
  }
}

}  // namespace
}  // namespace vids::load
