// Event-level tests of the specification machines (Fig. 2/5) and attack
// patterns (Fig. 4/6): synthetic events, no network.
#include <gtest/gtest.h>

#include "efsm/engine.h"
#include "vids/classifier.h"
#include "vids/patterns.h"
#include "vids/spec_machines.h"

namespace vids::ids {
namespace {

using efsm::Event;
using efsm::MachineGroup;
using efsm::MachineInstance;

struct RecordingObserver : efsm::Observer {
  std::vector<std::string> attacks;
  std::vector<std::string> deviations;
  int nondeterminism = 0;
  void OnAttackState(const MachineInstance& machine, efsm::StateId state,
                     const Event&) override {
    attacks.push_back(std::string(machine.def().StateName(state)));
  }
  void OnDeviation(const MachineInstance& machine, const Event& event) override {
    deviations.push_back(machine.def().name() + ":" + event.name);
  }
  void OnNondeterminism(const MachineInstance&, const Event&,
                        size_t) override {
    ++nondeterminism;
  }
};

Event SipRequest(std::string method, std::string src_ip = "10.9.0.66",
                 std::string dst_ip = "10.2.0.1") {
  Event event;
  event.name = std::string(kSipEvent);
  event.args["kind"] = std::string("request");
  event.args["method"] = std::move(method);
  event.args["status"] = int64_t{0};
  event.args["src_ip"] = std::move(src_ip);
  event.args["dst_ip"] = std::move(dst_ip);
  event.args["call_id"] = std::string("call-1");
  event.args["from_tag"] = std::string("tag-caller");
  return event;
}

Event SipResponse(int status, std::string method,
                  std::string src_ip = "10.2.0.1",
                  std::string dst_ip = "10.1.0.1") {
  Event event;
  event.name = std::string(kSipEvent);
  event.args["kind"] = std::string("response");
  event.args["method"] = std::move(method);
  event.args["status"] = int64_t{status};
  event.args["src_ip"] = std::move(src_ip);
  event.args["dst_ip"] = std::move(dst_ip);
  event.args["to_tag"] = std::string("tag-callee");
  return event;
}

Event WithSdp(Event event, std::string ip, int port, int pt = 18) {
  event.args["sdp_ip"] = std::move(ip);
  event.args["sdp_port"] = int64_t{port};
  event.args["sdp_pt"] = int64_t{pt};
  event.args["sdp_codec"] = std::string("G729");
  return event;
}

Event Rtp(std::string src_ip, int src_port, std::string dst_ip, int dst_port,
          int64_t ssrc, int64_t seq, int64_t ts, int pt = 18) {
  Event event;
  event.name = std::string(kRtpEvent);
  event.args["src_ip"] = std::move(src_ip);
  event.args["src_port"] = int64_t{src_port};
  event.args["dst_ip"] = std::move(dst_ip);
  event.args["dst_port"] = int64_t{dst_port};
  event.args["ssrc"] = ssrc;
  event.args["seq"] = seq;
  event.args["ts"] = ts;
  event.args["pt"] = int64_t{pt};
  return event;
}

class SpecFixture : public ::testing::Test {
 protected:
  SpecFixture()
      : sip_def_(BuildSipSpecMachine(config_)),
        rtp_def_(BuildRtpSpecMachine(config_)),
        group_("call-1", scheduler_, &observer_),
        sip_(group_.AddMachine(sip_def_, std::string(kSipMachineName))),
        rtp_(group_.AddMachine(rtp_def_, std::string(kRtpMachineName))) {
    group_.RouteChannel(std::string(kSipToRtpChannel), rtp_);
  }

  // Drives a normal call up to the established state. Caller media at
  // 10.1.0.10:20000 (offer), callee media at 10.2.0.10:30000 (answer).
  void Establish() {
    group_.DeliverData(
        sip_, WithSdp(SipRequest("INVITE", "10.1.0.1"), "10.1.0.10", 20000));
    group_.DeliverData(sip_, SipResponse(180, "INVITE"));
    group_.DeliverData(
        sip_, WithSdp(SipResponse(200, "INVITE"), "10.2.0.10", 30000));
    group_.DeliverData(sip_, SipRequest("ACK", "10.1.0.1"));
  }

  void Close(std::string bye_src = "10.2.0.10") {
    group_.DeliverData(sip_, SipRequest("BYE", std::move(bye_src)));
    group_.DeliverData(sip_, SipResponse(200, "BYE"));
  }

  Event CallerToCalleeRtp(int64_t seq, int64_t ts, int pt = 18) {
    return Rtp("10.1.0.10", 20000, "10.2.0.10", 30000, 777, seq, ts, pt);
  }
  Event CalleeToCallerRtp(int64_t seq, int64_t ts) {
    return Rtp("10.2.0.10", 30000, "10.1.0.10", 20000, 888, seq, ts);
  }

  DetectionConfig config_;
  sim::Scheduler scheduler_;
  RecordingObserver observer_;
  efsm::MachineDef sip_def_;
  efsm::MachineDef rtp_def_;
  MachineGroup group_;
  MachineInstance& sip_;
  MachineInstance& rtp_;
};

// ------------------------------------------------- SIP spec machine

TEST_F(SpecFixture, NormalCallWalksTheLifecycle) {
  EXPECT_EQ(sip_.StateName(), "INIT");
  group_.DeliverData(
      sip_, WithSdp(SipRequest("INVITE", "10.1.0.1"), "10.1.0.10", 20000));
  EXPECT_EQ(sip_.StateName(), "INVITE Rcvd");
  // δ sync already initialized the RTP machine (Fig. 2(a)).
  EXPECT_EQ(rtp_.StateName(), "RTP Open");

  group_.DeliverData(sip_, SipResponse(100, "INVITE"));
  EXPECT_EQ(sip_.StateName(), "INVITE Rcvd");
  group_.DeliverData(sip_, SipResponse(180, "INVITE"));
  EXPECT_EQ(sip_.StateName(), "Proceeding");
  group_.DeliverData(sip_,
                     WithSdp(SipResponse(200, "INVITE"), "10.2.0.10", 30000));
  EXPECT_EQ(sip_.StateName(), "Answered");
  EXPECT_EQ(rtp_.StateName(), "RTP Ready");
  group_.DeliverData(sip_, SipRequest("ACK", "10.1.0.1"));
  EXPECT_EQ(sip_.StateName(), "Call Established");

  Close();
  EXPECT_EQ(sip_.StateName(), "Closed");
  EXPECT_TRUE(sip_.retired());
  EXPECT_TRUE(observer_.attacks.empty());
  EXPECT_TRUE(observer_.deviations.empty());
  EXPECT_EQ(observer_.nondeterminism, 0);
}

TEST_F(SpecFixture, MediaParametersExportedToGlobals) {
  Establish();
  EXPECT_EQ(group_.global().GetString("g_offer_ip"), "10.1.0.10");
  EXPECT_EQ(group_.global().GetInt("g_offer_port"), 20000);
  EXPECT_EQ(group_.global().GetString("g_answer_ip"), "10.2.0.10");
  EXPECT_EQ(group_.global().GetInt("g_answer_port"), 30000);
  EXPECT_EQ(group_.global().GetString("g_caller_ip"), "10.1.0.1");
}

TEST_F(SpecFixture, RegisterTransactionRetires) {
  group_.DeliverData(sip_, SipRequest("REGISTER", "10.2.0.10"));
  EXPECT_EQ(sip_.StateName(), "Registering");
  group_.DeliverData(sip_, SipResponse(200, "REGISTER"));
  EXPECT_TRUE(sip_.retired());
  // The RTP machine never opened: stays INIT (fact base treats as done).
  EXPECT_EQ(rtp_.state(), rtp_def_.initial_state());
}

TEST_F(SpecFixture, CancelledCallRetiresViaCancelledState) {
  group_.DeliverData(
      sip_, WithSdp(SipRequest("INVITE", "10.1.0.1"), "10.1.0.10", 20000));
  group_.DeliverData(sip_, SipRequest("CANCEL", "10.1.0.1"));
  EXPECT_EQ(sip_.StateName(), "Cancelling");
  group_.DeliverData(sip_, SipResponse(200, "CANCEL"));
  group_.DeliverData(sip_, SipResponse(487, "INVITE"));
  group_.DeliverData(sip_, SipRequest("ACK", "10.1.0.1"));
  EXPECT_TRUE(sip_.retired());
  // RTP machine got the close sync and will retire after T + linger.
  scheduler_.RunUntil(sim::Time{} + config_.bye_inflight_grace +
                      config_.rtp_close_linger + sim::Duration::Seconds(1));
  EXPECT_TRUE(rtp_.retired());
}

TEST_F(SpecFixture, ByeForUnknownCallIsDeviation) {
  group_.DeliverData(sip_, SipRequest("BYE"));
  ASSERT_EQ(observer_.deviations.size(), 1u);
  EXPECT_EQ(sip_.StateName(), "INIT");
}

TEST_F(SpecFixture, UnsolicitedResponseIsDeviation) {
  group_.DeliverData(sip_, SipResponse(200, "INVITE"));
  EXPECT_EQ(observer_.deviations.size(), 1u);
}

// ------------------------------------------------- RTP spec machine

TEST_F(SpecFixture, InSessionMediaFlowsCleanly) {
  Establish();
  group_.DeliverData(rtp_, CallerToCalleeRtp(1, 80));
  EXPECT_EQ(rtp_.StateName(), "RTP Rcvd");
  group_.DeliverData(rtp_, CallerToCalleeRtp(2, 160));
  group_.DeliverData(rtp_, CalleeToCallerRtp(1, 80));
  EXPECT_EQ(rtp_.StateName(), "RTP Rcvd");
  EXPECT_TRUE(observer_.deviations.empty());
  // Stream bookkeeping: fwd (toward answer) and rev both tracked.
  EXPECT_EQ(rtp_.local().GetInt("l_fwd_ssrc"), 777);
  EXPECT_EQ(rtp_.local().GetInt("l_rev_ssrc"), 888);
}

TEST_F(SpecFixture, MediaBeforeSignalingIsDeviation) {
  group_.DeliverData(rtp_, CallerToCalleeRtp(1, 80));
  ASSERT_EQ(observer_.deviations.size(), 1u);
  EXPECT_EQ(observer_.deviations[0], "rtp-spec:RTP");
}

TEST_F(SpecFixture, UnauthorizedEndpointIsDeviation) {
  Establish();
  // Media to a port never negotiated in SDP.
  group_.DeliverData(rtp_,
                     Rtp("10.9.0.66", 40000, "10.2.0.10", 31337, 1, 1, 80));
  ASSERT_EQ(observer_.deviations.size(), 1u);
}

TEST_F(SpecFixture, EncodingChangeEntersAttackStateAndRecovers) {
  Establish();
  group_.DeliverData(rtp_, CallerToCalleeRtp(1, 80));
  group_.DeliverData(rtp_, CallerToCalleeRtp(2, 160, /*pt=*/0));  // PCMU!
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackEncoding);
  EXPECT_EQ(rtp_.StateName(), kAttackEncoding);
  group_.DeliverData(rtp_, CallerToCalleeRtp(3, 240));  // back to G.729
  EXPECT_EQ(rtp_.StateName(), "RTP Rcvd");
}

TEST_F(SpecFixture, ByeDosDetectedAfterGraceT) {
  Establish();
  group_.DeliverData(rtp_, CallerToCalleeRtp(1, 80));
  // A third party (attacker at 10.9.0.66) sends the BYE...
  group_.DeliverData(sip_, SipRequest("BYE", "10.9.0.66"));
  group_.DeliverData(sip_, SipResponse(200, "BYE"));
  EXPECT_EQ(rtp_.StateName(), "RTP rcvd after BYE");

  // In-flight RTP within T is tolerated.
  group_.DeliverData(rtp_, CallerToCalleeRtp(2, 160));
  EXPECT_TRUE(observer_.attacks.empty());

  // After T the machine is in (RTP Close); the genuine caller's continuing
  // stream is the BYE DoS evidence.
  scheduler_.RunUntil(sim::Time{} + config_.bye_inflight_grace +
                      sim::Duration::Millis(10));
  EXPECT_EQ(rtp_.StateName(), "RTP Close");
  group_.DeliverData(rtp_, CallerToCalleeRtp(3, 240));
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackByeDos);
}

TEST_F(SpecFixture, TollFraudClassifiedByByeSender) {
  Establish();
  group_.DeliverData(rtp_, CallerToCalleeRtp(1, 80));
  // The caller's media host stops billing…
  group_.DeliverData(sip_, SipRequest("BYE", "10.1.0.10"));
  group_.DeliverData(sip_, SipResponse(200, "BYE"));
  scheduler_.RunUntil(sim::Time{} + config_.bye_inflight_grace +
                      sim::Duration::Millis(10));
  // …but keeps streaming from the same host: toll fraud, not BYE DoS.
  group_.DeliverData(rtp_, CallerToCalleeRtp(50, 4000));
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackTollFraud);
}

TEST_F(SpecFixture, CleanTeardownRaisesNothingAndRetires) {
  Establish();
  group_.DeliverData(rtp_, CallerToCalleeRtp(1, 80));
  Close();
  scheduler_.RunUntil(sim::Time{} + config_.bye_inflight_grace +
                      config_.rtp_close_linger + sim::Duration::Seconds(1));
  EXPECT_TRUE(rtp_.retired());
  EXPECT_TRUE(sip_.retired());
  EXPECT_TRUE(observer_.attacks.empty());
  EXPECT_TRUE(observer_.deviations.empty());
}

// ----------------------------------------------------- attack patterns

class PatternFixture : public ::testing::Test {
 protected:
  PatternFixture() : group_("key", scheduler_, &observer_) {}

  DetectionConfig config_;
  sim::Scheduler scheduler_;
  RecordingObserver observer_;
  MachineGroup group_;
};

TEST_F(PatternFixture, InviteFloodFiresAboveThresholdWithinWindow) {
  const auto def = BuildInviteFloodMachine(config_);
  auto& machine = group_.AddMachine(def, "flood");
  // N INVITEs within T1 are normal; the (N+1)-th trips the attack state.
  for (int i = 0; i < config_.invite_flood_threshold; ++i) {
    group_.DeliverData(machine, SipRequest("INVITE"));
    EXPECT_TRUE(observer_.attacks.empty()) << "at INVITE " << i;
  }
  group_.DeliverData(machine, SipRequest("INVITE"));
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackInviteFlood);
}

TEST_F(PatternFixture, InviteFloodWindowResetPreventsFalseAlarm) {
  const auto def = BuildInviteFloodMachine(config_);
  auto& machine = group_.AddMachine(def, "flood");
  // N INVITEs, wait out T1, N more: never an attack.
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < config_.invite_flood_threshold; ++i) {
      group_.DeliverData(machine, SipRequest("INVITE"));
    }
    scheduler_.RunUntil(scheduler_.Now() + config_.invite_flood_window +
                        sim::Duration::Millis(10));
    EXPECT_EQ(machine.StateName(), "INIT");
  }
  EXPECT_TRUE(observer_.attacks.empty());
}

TEST_F(PatternFixture, InviteFloodReArmsAfterAttackWindow) {
  const auto def = BuildInviteFloodMachine(config_);
  auto& machine = group_.AddMachine(def, "flood");
  for (int i = 0; i <= config_.invite_flood_threshold; ++i) {
    group_.DeliverData(machine, SipRequest("INVITE"));
  }
  EXPECT_EQ(observer_.attacks.size(), 1u);
  scheduler_.RunUntil(scheduler_.Now() + config_.invite_flood_window +
                      sim::Duration::Millis(10));
  EXPECT_EQ(machine.StateName(), "INIT");
  // A second surge alerts again.
  for (int i = 0; i <= config_.invite_flood_threshold; ++i) {
    group_.DeliverData(machine, SipRequest("INVITE"));
  }
  EXPECT_EQ(observer_.attacks.size(), 2u);
}

TEST_F(PatternFixture, MediaSpamFiresOnSeqGap) {
  const auto def = BuildMediaSpamMachine(config_);
  auto& machine = group_.AddMachine(def, "spam");
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 100, 8000));
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 101, 8080));
  EXPECT_TRUE(observer_.attacks.empty());
  // Same SSRC, sequence leaps by more than Δn: fabricated stream.
  group_.DeliverData(
      machine,
      Rtp("a", 1, "b", 2, 777, 101 + config_.spam_seq_gap + 1, 8160));
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackMediaSpam);
}

TEST_F(PatternFixture, MediaSpamFiresOnTimestampGap) {
  const auto def = BuildMediaSpamMachine(config_);
  auto& machine = group_.AddMachine(def, "spam");
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 100, 8000));
  group_.DeliverData(
      machine, Rtp("a", 1, "b", 2, 777, 101, 8000 + config_.spam_ts_gap + 1));
  ASSERT_EQ(observer_.attacks.size(), 1u);
}

TEST_F(PatternFixture, MediaSpamToleratesNormalProgressAndSsrcChange) {
  const auto def = BuildMediaSpamMachine(config_);
  auto& machine = group_.AddMachine(def, "spam");
  // A long normal stream.
  for (int i = 0; i < 500; ++i) {
    group_.DeliverData(machine,
                       Rtp("a", 1, "b", 2, 777, 100 + i, 8000 + 80 * i));
  }
  // A new call reuses the destination port with a different SSRC: re-lock.
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 999, 5, 400));
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 999, 6, 480));
  EXPECT_TRUE(observer_.attacks.empty());
}

TEST_F(PatternFixture, MediaSpamToleratesTalkspurtTimestampJumps) {
  const auto def = BuildMediaSpamMachine(config_);
  auto& machine = group_.AddMachine(def, "spam");
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 100, 8000));
  // A 2 s silence jumps the timestamp by 16000 — far beyond Δt — but the
  // packet opens a talkspurt (marker set, seq contiguous): legitimate VAD.
  auto spurt = Rtp("a", 1, "b", 2, 777, 101, 8000 + 16000);
  spurt.args["marker"] = true;
  group_.DeliverData(machine, spurt);
  EXPECT_TRUE(observer_.attacks.empty());
  // The same jump without the marker is the Fig. 6 fabricated stream.
  group_.DeliverData(machine,
                     Rtp("a", 1, "b", 2, 777, 102, 8000 + 32000));
  ASSERT_EQ(observer_.attacks.size(), 1u);
}

TEST_F(PatternFixture, MediaSpamExcusesLostTalkspurtMarker) {
  const auto def = BuildMediaSpamMachine(config_);
  auto& machine = group_.AddMachine(def, "spam");
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 100, 8000));
  // The marker packet of the next talkspurt was lost: seq gap 2, big
  // unmarked timestamp jump. Legitimate; must not alert.
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 102, 8000 + 16000));
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 103, 8000 + 16080));
  EXPECT_TRUE(observer_.attacks.empty());
}

TEST_F(PatternFixture, MediaSpamCatchesLowAndSlowInjectionViaRegression) {
  const auto def = BuildMediaSpamMachine(config_);
  auto& machine = group_.AddMachine(def, "spam");
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 100, 8000));
  // Stealthy clone: stays within the Δn/Δt windows (seq gap 3 excused)...
  group_.DeliverData(machine, Rtp("a", 1, "b", 2, 777, 103, 8000 + 20000));
  EXPECT_TRUE(observer_.attacks.empty());
  // ...but now the genuine stream's packets regress behind the clone.
  for (int i = 0; i < config_.spam_regress_threshold; ++i) {
    group_.DeliverData(machine,
                       Rtp("a", 1, "b", 2, 777, 101 + i, 8080 + 80 * i));
  }
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackMediaSpam);
}

TEST_F(PatternFixture, RtpFloodFiresAboveRate) {
  const auto def = BuildRtpFloodMachine(config_);
  auto& machine = group_.AddMachine(def, "flood");
  for (int i = 0; i <= config_.rtp_flood_threshold; ++i) {
    group_.DeliverData(machine, Rtp("a", 1, "b", 2, 1, i, 80 * i));
  }
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackRtpFlood);
}

TEST_F(PatternFixture, NormalG729RateNeverTripsRtpFlood) {
  const auto def = BuildRtpFloodMachine(config_);
  auto& machine = group_.AddMachine(def, "flood");
  // 100 pps for 5 seconds, spread over simulated time.
  for (int i = 0; i < 500; ++i) {
    scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(10) * i);
    group_.DeliverData(machine, Rtp("a", 1, "b", 2, 1, i, 80 * i));
  }
  EXPECT_TRUE(observer_.attacks.empty());
}

TEST_F(PatternFixture, CancelDosFiresOnForeignSource) {
  const auto def = BuildCancelDosMachine(config_);
  auto& machine = group_.AddMachine(def, "cancel");
  group_.DeliverData(machine, SipRequest("INVITE", "10.1.0.1"));
  group_.DeliverData(machine, SipRequest("CANCEL", "10.9.0.66"));
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackCancelDos);
}

TEST_F(PatternFixture, CancelFromCallerIsLegitimate) {
  const auto def = BuildCancelDosMachine(config_);
  auto& machine = group_.AddMachine(def, "cancel");
  group_.DeliverData(machine, SipRequest("INVITE", "10.1.0.1"));
  group_.DeliverData(machine, SipRequest("CANCEL", "10.1.0.1"));
  EXPECT_TRUE(observer_.attacks.empty());
  EXPECT_TRUE(machine.retired());
}

TEST_F(PatternFixture, CancelAfterFinalResponseIsOutOfScope) {
  const auto def = BuildCancelDosMachine(config_);
  auto& machine = group_.AddMachine(def, "cancel");
  group_.DeliverData(machine, SipRequest("INVITE", "10.1.0.1"));
  group_.DeliverData(machine, SipResponse(200, "INVITE"));
  EXPECT_TRUE(machine.retired());
}

TEST_F(PatternFixture, HijackFiresOnForeignTagInDialogInvite) {
  const auto def = BuildHijackMachine(config_);
  auto& machine = group_.AddMachine(def, "hijack");
  auto invite = SipRequest("INVITE", "10.1.0.1");
  group_.DeliverData(machine, invite);
  group_.DeliverData(machine, SipResponse(200, "INVITE"));

  // Re-INVITE by the caller (same from-tag): fine.
  group_.DeliverData(machine, invite);
  EXPECT_TRUE(observer_.attacks.empty());
  // Re-INVITE by the callee (its dialog tag): fine.
  auto callee_reinvite = SipRequest("INVITE", "10.2.0.10");
  callee_reinvite.args["from_tag"] = std::string("tag-callee");
  group_.DeliverData(machine, callee_reinvite);
  EXPECT_TRUE(observer_.attacks.empty());

  // INVITE with a tag foreign to the dialog: hijack.
  auto alien = SipRequest("INVITE", "10.9.0.66");
  alien.args["from_tag"] = std::string("tag-attacker");
  group_.DeliverData(machine, alien);
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackHijack);
}

TEST_F(PatternFixture, HijackMachineRetiresOnByeCompletion) {
  const auto def = BuildHijackMachine(config_);
  auto& machine = group_.AddMachine(def, "hijack");
  group_.DeliverData(machine, SipRequest("INVITE", "10.1.0.1"));
  group_.DeliverData(machine, SipResponse(200, "BYE"));
  EXPECT_TRUE(machine.retired());
}

TEST(MachineInventory, EveryShippedDefinitionValidatesCleanly) {
  DetectionConfig config;
  const efsm::MachineDef machines[] = {
      BuildSipSpecMachine(config),   BuildRtpSpecMachine(config),
      BuildInviteFloodMachine(config), BuildMediaSpamMachine(config),
      BuildRtpFloodMachine(config),  BuildCancelDosMachine(config),
      BuildHijackMachine(config),    BuildDrdosMachine(config),
      BuildRtcpByeMachine(config),
  };
  for (const auto& machine : machines) {
    const auto findings = machine.Validate();
    EXPECT_TRUE(findings.empty())
        << machine.name() << ": " << findings.front();
    // And each renders to a non-trivial graph.
    EXPECT_GT(machine.ToDot().size(), 100u) << machine.name();
  }
}

TEST_F(PatternFixture, DrdosCountsUnsolicitedResponses) {
  const auto def = BuildDrdosMachine(config_);
  auto& machine = group_.AddMachine(def, "drdos");
  efsm::Event unsolicited;
  unsolicited.name = std::string(kUnsolicitedEvent);
  for (int i = 0; i <= config_.drdos_threshold; ++i) {
    group_.DeliverData(machine, unsolicited);
  }
  ASSERT_EQ(observer_.attacks.size(), 1u);
  EXPECT_EQ(observer_.attacks[0], kAttackDrdos);
}

}  // namespace
}  // namespace vids::ids
