// Tests of the behavioral anomaly layer (src/vids/behavior, DESIGN.md §16):
// engine-level scoring/classification/cooldown semantics, the
// sweep-independence contract, false-positive resistance on a benign
// call-center workload, the three protocol-legal attack scenarios riding
// through the soak harness, and byte-identical alert streams across shard
// and producer counts.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "load/soak.h"
#include "vids/behavior/behavior.h"
#include "vids/ids.h"
#include "vids/sharded_ids.h"

namespace vids::ids::behavior {
namespace {

sim::Time At(double seconds) {
  return sim::Time::FromNanos(static_cast<int64_t>(seconds * 1e9));
}

struct Harness {
  explicit Harness(const BehaviorConfig& config = {}) : engine(config) {
    engine.set_alert_sink(
        [this](Alert&& alert) { alerts.push_back(std::move(alert)); });
  }
  BehaviorEngine engine;
  std::vector<Alert> alerts;
};

TEST(BehaviorEngineTest, SpitBurstScoresRateDominantThenCoolsDown) {
  Harness h;
  // One caller blasting 30 initial INVITEs at distinct victims, 150 ms
  // apart — all inside one 10 s rate window and one cooldown.
  for (int k = 0; k < 30; ++k) {
    h.engine.OnCallStart(At(0.15 * k), "spitter@a.example.com",
                         "victim-" + std::to_string(k) + "@b.example.com",
                         "spitware/1.0", static_cast<uint64_t>(k));
  }
  ASSERT_EQ(h.alerts.size(), 1u);
  const Alert& alert = h.alerts.front();
  EXPECT_EQ(alert.kind, AlertKind::kBehavior);
  EXPECT_EQ(alert.classification, kBehaviorSpit);
  EXPECT_EQ(alert.machine, kBehaviorMachine);
  EXPECT_EQ(alert.group, "caller|spitter@a.example.com");
  EXPECT_EQ(alert.state, "elevated");
  // Score provenance: the per-feature breakdown rides in the detail.
  EXPECT_NE(alert.detail.find("score="), std::string::npos);
  EXPECT_NE(alert.detail.find("calls="), std::string::npos);
  EXPECT_NE(alert.detail.find("fanout="), std::string::npos);
  // The 18th call is the first to clear alert_score (400 * (18 - 15));
  // every over-threshold call after it lands inside the cooldown.
  EXPECT_EQ(h.engine.alerts_emitted(), 1u);
  EXPECT_GT(h.engine.cooldown_suppressed(), 0u);
}

TEST(BehaviorEngineTest, ReemissionAfterCooldownEscalatesToCritical) {
  BehaviorConfig config;
  config.alert_cooldown = sim::Duration::Seconds(1);
  Harness h(config);
  for (int k = 0; k < 30; ++k) {
    h.engine.OnCallStart(At(0.1 * k), "burster@a.example.com",
                         "victim-" + std::to_string(k) + "@b.example.com",
                         "spitware/1.0", static_cast<uint64_t>(k));
  }
  // First alert at call 18 (t=1.7 s, score 1200: elevated). The next
  // emission waits out the 1 s cooldown; by then the window holds enough
  // calls that rate + fanout clear critical_score.
  ASSERT_EQ(h.alerts.size(), 2u);
  EXPECT_EQ(h.alerts[0].state, "elevated");
  EXPECT_EQ(h.alerts[1].state, "critical");
  EXPECT_EQ(h.alerts[1].classification, kBehaviorSpit);
}

TEST(BehaviorEngineTest, LowAndSlowFanoutClassifiesAsTollFraud) {
  Harness h;
  // 2 s pacing keeps the 10 s call-rate window far under threshold; only
  // the 60 s distinct-destination window accumulates.
  for (int k = 0; k < 25; ++k) {
    h.engine.OnCallStart(At(2.0 * k), "fraudster@a.example.com",
                         "premium-" + std::to_string(k) + "@b.example.com",
                         "fraudster-phone/2.1", static_cast<uint64_t>(k));
  }
  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts.front().classification, kBehaviorTollFraud);
  // Fan-out is the dominant (here: only) contributing feature: the 23rd
  // distinct destination is 7 over threshold at weight 150.
  EXPECT_NE(h.alerts.front().detail.find("fanout=23:+1050"),
            std::string::npos);
}

TEST(BehaviorEngineTest, RegCrackingAlertsAndSuccessBreaksTheStreak) {
  Harness h;
  // Distributed cracking: 10 failed REGISTERs against one AOR from 10
  // distinct sources, 300 ms apart.
  for (int k = 0; k < 10; ++k) {
    h.engine.OnRegFailure(At(0.3 * k), "victim@b.example.com",
                          0x0a09'0000 + static_cast<uint64_t>(k));
  }
  ASSERT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.alerts.front().classification, kBehaviorRegCracking);
  EXPECT_EQ(h.alerts.front().group, "reg|victim@b.example.com");
  EXPECT_NE(h.alerts.front().detail.find("reg_failures="), std::string::npos);

  // A successful registration (past the cooldown, so suppression is not
  // what hides the next alert) resets both the failure window and the
  // source spread: a fresh sub-threshold streak stays silent.
  h.engine.OnRegSuccess(At(15.0), "victim@b.example.com");
  for (int k = 0; k < 7; ++k) {
    h.engine.OnRegFailure(At(20.0 + 0.3 * k), "victim@b.example.com",
                          0x0b0b'0000 + static_cast<uint64_t>(k));
  }
  EXPECT_EQ(h.alerts.size(), 1u);
  EXPECT_EQ(h.engine.alerts_emitted(), 1u);
}

TEST(BehaviorEngineTest, ScoreDecaysAcrossWindows) {
  Harness h;
  // Two sub-threshold bursts separated by more than the rate window: the
  // armed-window counter restarts, so the bursts never sum. Single
  // destination keeps the fan-out feature out of the picture.
  for (int k = 0; k < 14; ++k) {
    h.engine.OnCallStart(At(0.1 * k), "bursty@a.example.com",
                         "callee@b.example.com", "softphone/3.2",
                         static_cast<uint64_t>(k));
  }
  for (int k = 0; k < 14; ++k) {
    h.engine.OnCallStart(At(20.0 + 0.1 * k), "bursty@a.example.com",
                         "callee@b.example.com", "softphone/3.2",
                         static_cast<uint64_t>(100 + k));
  }
  EXPECT_TRUE(h.alerts.empty());
  EXPECT_EQ(h.engine.cooldown_suppressed(), 0u);
}

TEST(BehaviorEngineTest, SweepIsInvisibleToEmissionsAndRecyclesProfiles) {
  // Two engines fed the identical event stream; one is aggressively swept
  // in the idle gap. The determinism contract says their alert streams
  // must be byte-identical.
  Harness swept;
  Harness retained;
  const auto feed = [&](BehaviorEngine& engine) {
    for (int k = 0; k < 10; ++k) {  // sub-threshold warmup burst
      engine.OnCallStart(At(0.1 * k), "bob@a.example.com",
                         "dest-" + std::to_string(k) + "@b.example.com",
                         "softphone/3.2", static_cast<uint64_t>(k));
    }
  };
  feed(swept.engine);
  feed(retained.engine);
  EXPECT_EQ(swept.engine.profile_count(), 1u);

  // t=150 s: bob has been idle 149 s > IdleHorizon() (120 s) — reclaimable.
  swept.engine.Sweep(At(150.0));
  EXPECT_EQ(swept.engine.profile_count(), 0u);
  EXPECT_EQ(swept.engine.pool_size(), 1u);
  retained.engine.Sweep(At(0.5));  // nothing idle: a no-op
  EXPECT_EQ(retained.engine.profile_count(), 1u);

  const auto burst = [&](BehaviorEngine& engine) {
    for (int k = 0; k < 20; ++k) {
      engine.OnCallStart(At(200.0 + 0.1 * k), "bob@a.example.com",
                         "dest-" + std::to_string(100 + k) + "@b.example.com",
                         "softphone/3.2", static_cast<uint64_t>(100 + k));
    }
  };
  burst(swept.engine);   // profile recreated from the recycle pool
  burst(retained.engine);
  EXPECT_EQ(swept.engine.pool_size(), 0u);  // pooled profile was reused

  ASSERT_EQ(swept.alerts.size(), retained.alerts.size());
  ASSERT_FALSE(swept.alerts.empty());
  for (size_t i = 0; i < swept.alerts.size(); ++i) {
    EXPECT_EQ(swept.alerts[i].ToString(), retained.alerts[i].ToString());
  }

  // Lifecycle closes clean: after the alert the profile goes idle again
  // and a later sweep returns it to the pool.
  swept.engine.Sweep(At(400.0));
  EXPECT_EQ(swept.engine.profile_count(), 0u);
  EXPECT_EQ(swept.engine.pool_size(), 1u);
}

TEST(BehaviorEngineTest, DurationHistogramSurvivesReclaim) {
  Harness h;
  h.engine.OnCallStart(At(0.0), "alice@a.example.com", "bob@b.example.com",
                       "softphone/3.2", 7u);
  h.engine.OnCallEnd(At(5.0), "alice@a.example.com", 7u);
  obs::Histogram live;
  h.engine.MergeDurationHistogram(live);
  EXPECT_EQ(live.count(), 1u);

  h.engine.Sweep(At(300.0));  // reclaim folds durations into the engine
  EXPECT_EQ(h.engine.profile_count(), 0u);
  obs::Histogram retired;
  h.engine.MergeDurationHistogram(retired);
  EXPECT_EQ(retired.count(), 1u);
}

}  // namespace
}  // namespace vids::ids::behavior

namespace vids::load {
namespace {

// Scenario-only soak: no benign calls, no spec-machine attack bursts —
// whatever alerts come out were raised by the behavior layer alone.
SoakConfig ScenarioOnly() {
  SoakConfig config;
  config.total_calls = 0;
  config.attack_every = 0;
  config.sample_every = sim::Duration::Seconds(5);
  return config;
}

void ExpectSingleBehaviorAlert(ids::Vids& vids,
                               std::string_view classification) {
  ASSERT_EQ(vids.alerts().size(), 1u);
  const ids::Alert& alert = vids.alerts().front();
  EXPECT_EQ(alert.kind, ids::AlertKind::kBehavior);
  EXPECT_EQ(alert.classification, classification);
  EXPECT_EQ(alert.machine, ids::behavior::kBehaviorMachine);
  EXPECT_NE(alert.detail.find("score="), std::string::npos);
  // The spec-machine layer ran the same packets to clean terminal states.
  EXPECT_EQ(vids.CountAlerts(ids::AlertKind::kSpecDeviation), 0u);
  EXPECT_EQ(vids.CountAlerts(ids::AlertKind::kAttackPattern), 0u);
  EXPECT_EQ(vids.CountAlerts(ids::AlertKind::kMalformed), 0u);
}

TEST(BehaviorScenarioTest, SpitBurstIsBehaviorOnlyDetection) {
  SoakConfig config = ScenarioOnly();
  config.spit_bursts = 1;
  SoakDriver driver(config);
  driver.Run();
  ExpectSingleBehaviorAlert(driver.vids(), ids::behavior::kBehaviorSpit);
}

TEST(BehaviorScenarioTest, RegistrationCrackingIsBehaviorOnlyDetection) {
  SoakConfig config = ScenarioOnly();
  config.reg_crack_bursts = 1;
  SoakDriver driver(config);
  driver.Run();
  ExpectSingleBehaviorAlert(driver.vids(),
                            ids::behavior::kBehaviorRegCracking);
}

TEST(BehaviorScenarioTest, TollFraudFanoutIsBehaviorOnlyDetection) {
  SoakConfig config = ScenarioOnly();
  config.toll_fraud_bursts = 1;
  SoakDriver driver(config);
  driver.Run();
  ExpectSingleBehaviorAlert(driver.vids(), ids::behavior::kBehaviorTollFraud);
}

TEST(BehaviorScenarioTest, BenignCallCenterRaisesNoBehaviorAlerts) {
  // The false-positive-resistance configuration: the benign aggregate rate
  // (100 cps) is spread over 500 caller identities, so every per-caller
  // rate and fan-out stays far under its behavioral threshold.
  SoakConfig config;
  config.seed = 7;
  config.total_calls = 3000;
  config.calls_per_second = 100.0;
  config.mean_hold = sim::Duration::Seconds(3);
  config.rtp_packets_per_call = 4;
  config.caller_aors = 500;
  config.callee_aors = 100;
  config.attack_every = 0;
  // No injected retransmissions of closed calls: those are deliberate
  // worst-case inputs that raise spec deviations by design; this test
  // isolates the behavior layer's zero-FP claim on a clean stream.
  config.late_retransmit_prob = 0.0;
  config.post_ttl_retransmit_prob = 0.0;
  config.pause = sim::Duration::Seconds(12);
  config.sample_every = sim::Duration::Seconds(2);
  config.detection.tombstone_ttl = sim::Duration::Seconds(4);
  config.detection.rtp_close_linger = sim::Duration::Seconds(2);
  // Above the 10x-mean hold clamp (30 s): a benign call must never be
  // idle-reclaimed mid-hold, or its own BYE raises a dialog-less-BYE
  // deviation and pollutes the zero-alert assertion.
  config.detection.call_idle_timeout = sim::Duration::Seconds(35);
  config.detection.keyed_idle_timeout = sim::Duration::Seconds(5);
  SoakDriver driver(config);
  const SoakReport report = driver.Run();

  EXPECT_EQ(driver.vids().CountAlerts(ids::AlertKind::kBehavior), 0u);
  EXPECT_EQ(report.alerts_total, 0u);
  ASSERT_GE(report.samples.size(), 8u);
  EXPECT_TRUE(report.bounded);
}

TEST(BehaviorScenarioTest, AlertsByteIdenticalAcrossShardsAndProducers) {
  // The full behavioral workload (all three scenarios plus a benign
  // stream with spec-machine attack bursts) must produce the exact same
  // alert byte stream no matter how the pipeline is parallelized —
  // behavior events ride the shard-local aggregate staging path and are
  // replayed in frontier order on the coordinator.
  const auto run = [](int shards, int producers) {
    SoakConfig config;
    config.seed = 13;
    config.total_calls = 300;
    config.calls_per_second = 50.0;
    config.mean_hold = sim::Duration::Seconds(3);
    config.rtp_packets_per_call = 4;
    config.callee_aors = 100;
    config.attack_every = 100;
    config.spit_bursts = 1;
    config.reg_crack_bursts = 1;
    config.toll_fraud_bursts = 1;
    config.sample_every = sim::Duration::Seconds(10);
    config.shards = shards;
    config.producers = producers;
    SoakDriver driver(config);
    driver.Run();
    std::vector<std::string> lines;
    size_t behavior_alerts = 0;
    for (const ids::Alert& alert : driver.sharded()->alerts()) {
      if (alert.kind == ids::AlertKind::kEngineHealth) continue;
      if (alert.kind == ids::AlertKind::kBehavior) ++behavior_alerts;
      lines.push_back(alert.ToString());
    }
    EXPECT_GE(behavior_alerts, 3u)
        << shards << " shards, " << producers << " producers";
    return lines;
  };

  const std::vector<std::string> baseline = run(1, 1);
  ASSERT_FALSE(baseline.empty());
  EXPECT_EQ(run(4, 1), baseline) << "4 shards diverged";
  EXPECT_EQ(run(1, 4), baseline) << "4 producers diverged";
  EXPECT_EQ(run(4, 4), baseline) << "4x4 diverged";
}

}  // namespace
}  // namespace vids::load
