#include <gtest/gtest.h>

#include "net/host.h"
#include "net/network.h"
#include "rtp/packet.h"
#include "rtp/session.h"

namespace vids::rtp {
namespace {

TEST(RtpHeader, SerializeParseRoundTrip) {
  RtpHeader header;
  header.marker = true;
  header.payload_type = 18;
  header.sequence_number = 0xBEEF;
  header.timestamp = 0xDEADBEEF;
  header.ssrc = 0x12345678;
  const std::string wire = header.Serialize();
  ASSERT_EQ(wire.size(), kRtpHeaderSize);
  const auto parsed = RtpHeader::Parse(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, header);
}

TEST(RtpHeader, ParseRejectsShortOrWrongVersion) {
  EXPECT_FALSE(RtpHeader::Parse("short").has_value());
  std::string wire = RtpHeader{}.Serialize();
  wire[0] = 0x40;  // version 1
  EXPECT_FALSE(RtpHeader::Parse(wire).has_value());
}

TEST(RtpHeader, FlagBitsRoundTrip) {
  RtpHeader header;
  header.padding = true;
  header.extension = true;
  header.csrc_count = 5;
  const auto parsed = RtpHeader::Parse(header.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->padding);
  EXPECT_TRUE(parsed->extension);
  EXPECT_EQ(parsed->csrc_count, 5);
}

TEST(SeqMath, WrapAwareDistances) {
  EXPECT_EQ(SeqDistance(10, 11), 1);
  EXPECT_EQ(SeqDistance(11, 10), -1);
  EXPECT_EQ(SeqDistance(65535, 0), 1);    // wraparound forward
  EXPECT_EQ(SeqDistance(0, 65535), -1);   // wraparound backward
  EXPECT_EQ(SeqDistance(0, 30000), 30000);
  EXPECT_EQ(TimestampDistance(0xFFFFFFFF, 0), 1);
  EXPECT_EQ(TimestampDistance(0, 0xFFFFFFFF), -1);
  EXPECT_EQ(TimestampDistance(100, 900), 800);
}

TEST(Codec, G729Profile) {
  const auto codec = G729();
  EXPECT_EQ(codec.payload_type, 18);
  EXPECT_EQ(codec.frame_interval, sim::Duration::Millis(10));
  EXPECT_EQ(codec.bytes_per_frame, 10u);
  EXPECT_EQ(codec.TimestampStep(), 80u);  // 8 kHz × 10 ms
  EXPECT_DOUBLE_EQ(codec.BitRate(), 8000.0);
}

TEST(Codec, PcmuProfile) {
  const auto codec = Pcmu();
  EXPECT_EQ(codec.payload_type, 0);
  EXPECT_EQ(codec.TimestampStep(), 160u);
  EXPECT_DOUBLE_EQ(codec.BitRate(), 64000.0);
}

// ------------------------------------------------------------- sessions

class SessionFixture : public ::testing::Test {
 protected:
  SessionFixture()
      : network_(scheduler_, 3),
        rng_(3, "test"),
        host_a_(network_.AddNode<net::Host>(network_, "a",
                                            net::IpAddress(10, 0, 0, 1))),
        host_b_(network_.AddNode<net::Host>(network_, "b",
                                            net::IpAddress(10, 0, 0, 2))) {
    auto [a_to_b, b_to_a] =
        network_.ConnectDuplex(host_a_, host_b_, net::FastEthernet());
    host_a_.SetUplink(a_to_b);
    host_b_.SetUplink(b_to_a);
  }

  MediaSession::Config ConfigFor(uint16_t local, net::IpAddress remote_ip,
                                 uint16_t remote_port, bool vad) {
    MediaSession::Config config;
    config.local_port = local;
    config.remote = net::Endpoint{remote_ip, remote_port};
    config.codec = G729();
    config.talkspurt.enabled = vad;
    return config;
  }

  sim::Scheduler scheduler_;
  net::Network network_;
  common::Stream rng_;
  net::Host& host_a_;
  net::Host& host_b_;
};

TEST_F(SessionFixture, ConstantBitrateStreamDelivers100PacketsPerSecond) {
  MediaSession sender(scheduler_, host_a_,
                      ConfigFor(20000, host_b_.ip(), 20002, /*vad=*/false),
                      rng_);
  MediaSession receiver(scheduler_, host_b_,
                        ConfigFor(20002, host_a_.ip(), 20000, /*vad=*/false),
                        rng_);
  sender.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(10));
  sender.Stop();
  scheduler_.Run();  // drain in-flight packets
  // 10 ms frames → 100 pps. (+1 for the packet at t=0.)
  EXPECT_NEAR(static_cast<double>(sender.packets_sent()), 1001.0, 2.0);
  const auto& stats = receiver.receiver_stats();
  EXPECT_EQ(stats.packets_received, sender.packets_sent());
  EXPECT_EQ(stats.packets_lost, 0u);
  EXPECT_EQ(stats.ssrc_mismatches, 0u);
  // LAN delay only: well under a millisecond, near-zero jitter.
  EXPECT_LT(stats.MeanDelaySeconds(), 0.001);
  EXPECT_LT(stats.jitter_seconds, 0.0005);
}

TEST_F(SessionFixture, VadReducesPacketRate) {
  MediaSession sender(scheduler_, host_a_,
                      ConfigFor(20000, host_b_.ip(), 20002, /*vad=*/true),
                      rng_);
  sender.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(60));
  sender.Stop();
  // Activity factor ≈ 1.004/(1.004+1.587) ≈ 0.39 → ~39 pps on average.
  const double pps = static_cast<double>(sender.packets_sent()) / 60.0;
  EXPECT_GT(pps, 15.0);
  EXPECT_LT(pps, 70.0);
}

TEST_F(SessionFixture, TalkspurtsSetMarkerAndJumpTimestamp) {
  MediaSession sender(scheduler_, host_a_,
                      ConfigFor(20000, host_b_.ip(), 20002, /*vad=*/true),
                      rng_);
  std::vector<RtpHeader> headers;
  host_b_.BindUdp(20002, [&](const net::Datagram& dgram) {
    if (auto header = RtpHeader::Parse(dgram.payload)) {
      headers.push_back(*header);
    }
  });
  sender.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(30));
  sender.Stop();
  ASSERT_GT(headers.size(), 100u);
  EXPECT_TRUE(headers.front().marker);  // first packet of first spurt
  int markers = 0;
  bool saw_ts_jump_at_marker = false;
  for (size_t i = 1; i < headers.size(); ++i) {
    // Sequence numbers are continuous even across silence...
    EXPECT_EQ(SeqDistance(headers[i - 1].sequence_number,
                          headers[i].sequence_number),
              1);
    if (headers[i].marker) {
      ++markers;
      // ...but the timestamp leaps over the silent gap.
      if (TimestampDistance(headers[i - 1].timestamp, headers[i].timestamp) >
          80) {
        saw_ts_jump_at_marker = true;
      }
    }
  }
  EXPECT_GT(markers, 2);
  EXPECT_TRUE(saw_ts_jump_at_marker);
}

TEST_F(SessionFixture, ReceiverCountsAlienSsrc) {
  MediaSession receiver(scheduler_, host_b_,
                        ConfigFor(20002, host_a_.ip(), 20000, /*vad=*/false),
                        rng_);
  auto send = [&](uint32_t ssrc, uint16_t seq) {
    RtpHeader header;
    header.ssrc = ssrc;
    header.sequence_number = seq;
    host_a_.SendUdp(20000, net::Endpoint{host_b_.ip(), 20002},
                    header.Serialize(), net::PayloadKind::kRtp, 10);
  };
  send(111, 1);
  send(111, 2);
  send(222, 3);  // alien SSRC
  scheduler_.Run();
  EXPECT_EQ(receiver.receiver_stats().packets_received, 3u);
  EXPECT_EQ(receiver.receiver_stats().ssrc_mismatches, 1u);
}

TEST_F(SessionFixture, ReceiverCountsLossAndMisorder) {
  MediaSession receiver(scheduler_, host_b_,
                        ConfigFor(20002, host_a_.ip(), 20000, /*vad=*/false),
                        rng_);
  auto send = [&](uint16_t seq) {
    RtpHeader header;
    header.ssrc = 7;
    header.sequence_number = seq;
    host_a_.SendUdp(20000, net::Endpoint{host_b_.ip(), 20002},
                    header.Serialize(), net::PayloadKind::kRtp, 10);
  };
  send(1);
  send(2);
  send(5);  // 3, 4 lost
  send(4);  // late arrival → misordered
  scheduler_.Run();
  const auto& stats = receiver.receiver_stats();
  EXPECT_EQ(stats.packets_received, 4u);
  EXPECT_EQ(stats.packets_lost, 2u);
  EXPECT_EQ(stats.packets_misordered, 1u);
}

TEST_F(SessionFixture, QosSamplesAreRecorded) {
  auto config = ConfigFor(20002, host_a_.ip(), 20000, /*vad=*/false);
  config.sample_every = 10;
  MediaSession receiver(scheduler_, host_b_, config, rng_);
  MediaSession sender(scheduler_, host_a_,
                      ConfigFor(20000, host_b_.ip(), 20002, /*vad=*/false),
                      rng_);
  sender.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(2));
  sender.Stop();
  EXPECT_NEAR(static_cast<double>(receiver.samples().size()), 20.0, 2.0);
  for (const auto& sample : receiver.samples()) {
    EXPECT_GT(sample.delay_seconds, 0.0);
  }
}

TEST_F(SessionFixture, StopHaltsTransmission) {
  MediaSession sender(scheduler_, host_a_,
                      ConfigFor(20000, host_b_.ip(), 20002, /*vad=*/false),
                      rng_);
  sender.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(1));
  sender.Stop();
  const auto sent = sender.packets_sent();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(2));
  EXPECT_EQ(sender.packets_sent(), sent);
}

}  // namespace
}  // namespace vids::rtp
