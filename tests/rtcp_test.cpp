// RTCP substrate and the ghost-media (RTP-after-RTCP-BYE) detection.
#include <gtest/gtest.h>

#include "rtp/rtcp.h"
#include "rtp/session.h"
#include "testbed/testbed.h"
#include "vids/patterns.h"

namespace vids::rtp {
namespace {

// ----------------------------------------------------------- codec

TEST(Rtcp, SenderReportRoundTrip) {
  SenderReport sr;
  sr.sender_ssrc = 0xAABBCCDD;
  sr.ntp_timestamp = 0x0123456789ABCDEFULL;
  sr.rtp_timestamp = 4242;
  sr.packet_count = 1000;
  sr.octet_count = 10000;
  ReportBlock block;
  block.ssrc = 0x11223344;
  block.fraction_lost = 12;
  block.cumulative_lost = 0x00ABCDEF & 0xFFFFFF;
  block.highest_seq = 55555;
  block.jitter = 7;
  sr.reports.push_back(block);

  const auto parsed = ParseRtcp(sr.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->sr.has_value());
  EXPECT_EQ(*parsed->sr, sr);
  EXPECT_EQ(parsed->type(), RtcpType::kSenderReport);
}

TEST(Rtcp, ReceiverReportRoundTrip) {
  ReceiverReport rr;
  rr.sender_ssrc = 99;
  ReportBlock block;
  block.ssrc = 7;
  block.highest_seq = 1234;
  rr.reports.push_back(block);
  const auto parsed = ParseRtcp(rr.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->rr.has_value());
  EXPECT_EQ(*parsed->rr, rr);
}

TEST(Rtcp, ByeRoundTripWithReason) {
  RtcpBye bye;
  bye.ssrcs = {111, 222};
  bye.reason = "done";
  const auto parsed = ParseRtcp(bye.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->bye.has_value());
  EXPECT_EQ(parsed->bye->ssrcs, bye.ssrcs);
  EXPECT_EQ(parsed->bye->reason, "done");
}

TEST(Rtcp, ByeWithoutReason) {
  RtcpBye bye;
  bye.ssrcs = {7};
  const auto parsed = ParseRtcp(bye.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->bye.has_value());
  EXPECT_TRUE(parsed->bye->reason.empty());
}

TEST(Rtcp, DiscriminatesFromRtp) {
  // An RTP voice packet must not look like RTCP, and vice versa.
  RtpHeader rtp;
  rtp.payload_type = 18;
  rtp.marker = true;
  EXPECT_FALSE(LooksLikeRtcp(rtp.Serialize()));

  SenderReport sr;
  sr.sender_ssrc = 1;
  EXPECT_TRUE(LooksLikeRtcp(sr.Serialize()));
  // RTCP *would* parse as RTP (shared first bytes) — which is exactly why
  // the classifier checks RTCP first.
  EXPECT_TRUE(RtpHeader::Parse(sr.Serialize()).has_value());
}

TEST(Rtcp, RejectsTruncatedAndJunk) {
  EXPECT_FALSE(ParseRtcp("").has_value());
  EXPECT_FALSE(ParseRtcp("\x80").has_value());
  SenderReport sr;
  sr.sender_ssrc = 1;
  std::string wire = sr.Serialize();
  EXPECT_FALSE(ParseRtcp(wire.substr(0, wire.size() - 4)).has_value());
  wire[1] = static_cast<char>(202);  // SDES: recognized range, unmodeled type
  EXPECT_FALSE(ParseRtcp(wire).has_value());
}

// ----------------------------------------------------------- sessions

class RtcpSessionFixture : public ::testing::Test {
 protected:
  RtcpSessionFixture()
      : network_(scheduler_, 5),
        rng_(5, "rtcp-test"),
        host_a_(network_.AddNode<net::Host>(network_, "a",
                                            net::IpAddress(10, 0, 0, 1))),
        host_b_(network_.AddNode<net::Host>(network_, "b",
                                            net::IpAddress(10, 0, 0, 2))) {
    auto [a_to_b, b_to_a] =
        network_.ConnectDuplex(host_a_, host_b_, net::FastEthernet());
    host_a_.SetUplink(a_to_b);
    host_b_.SetUplink(b_to_a);
  }

  MediaSession::Config ConfigFor(uint16_t local, uint16_t remote) {
    MediaSession::Config config;
    config.local_port = local;
    config.remote = net::Endpoint{local == 20000 ? host_b_.ip() : host_a_.ip(),
                                  remote};
    config.codec = G729();
    config.talkspurt.enabled = false;
    return config;
  }

  sim::Scheduler scheduler_;
  net::Network network_;
  common::Stream rng_;
  net::Host& host_a_;
  net::Host& host_b_;
};

TEST_F(RtcpSessionFixture, SenderReportsFlowPeriodically) {
  MediaSession a(scheduler_, host_a_, ConfigFor(20000, 20002), rng_);
  MediaSession b(scheduler_, host_b_, ConfigFor(20002, 20000), rng_);
  a.Start();
  b.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(21));
  // Every 5 s → 4 SRs each by t=21 s.
  EXPECT_EQ(a.rtcp_sent(), 4u);
  EXPECT_EQ(b.rtcp_received(), 4u);
  // The SR carries the sender's own packet count.
  ASSERT_TRUE(b.remote_claimed_packets().has_value());
  EXPECT_NEAR(static_cast<double>(*b.remote_claimed_packets()),
              static_cast<double>(a.packets_sent()), 110.0);
  EXPECT_FALSE(b.remote_bye_received());
}

TEST_F(RtcpSessionFixture, ByeAnnouncesTeardown) {
  MediaSession a(scheduler_, host_a_, ConfigFor(20000, 20002), rng_);
  MediaSession b(scheduler_, host_b_, ConfigFor(20002, 20000), rng_);
  a.Start();
  b.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(2));
  a.Stop();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(3));
  EXPECT_TRUE(b.remote_bye_received());
  // Stop is idempotent: only one BYE.
  a.Stop();
  b.Stop();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(4));
  EXPECT_EQ(a.rtcp_sent(), 1u);  // no SR fired before t=5s, just the BYE
}

TEST_F(RtcpSessionFixture, RtcpDisabledSendsNothing) {
  auto config = ConfigFor(20000, 20002);
  config.rtcp_enabled = false;
  MediaSession a(scheduler_, host_a_, config, rng_);
  a.Start();
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(12));
  a.Stop();
  scheduler_.Run();
  EXPECT_EQ(a.rtcp_sent(), 0u);
}

}  // namespace
}  // namespace vids::rtp

// ------------------------------------------- ghost-media detection

namespace vids::ids {
namespace {

struct AttackRecorder : efsm::Observer {
  std::vector<std::string> attacks;
  void OnAttackState(const efsm::MachineInstance& machine, efsm::StateId state,
                     const efsm::Event&) override {
    attacks.push_back(std::string(machine.def().StateName(state)));
  }
};

efsm::Event RtcpBye(int64_t ssrc) {
  efsm::Event event;
  event.name = std::string(kRtcpEvent);
  event.args["kind"] = std::string("BYE");
  event.args["ssrc"] = ssrc;
  return event;
}

efsm::Event RtpPacket(int64_t ssrc, int64_t seq) {
  efsm::Event event;
  event.name = std::string(kRtpEvent);
  event.args["ssrc"] = ssrc;
  event.args["seq"] = seq;
  event.args["ts"] = seq * 80;
  event.args["pt"] = int64_t{18};
  return event;
}

TEST(GhostMedia, RtpAfterRtcpByeIsAttack) {
  DetectionConfig config;
  sim::Scheduler scheduler;
  AttackRecorder observer;
  efsm::MachineGroup group("media|x", scheduler, &observer);
  const auto def = BuildRtcpByeMachine(config);
  auto& machine = group.AddMachine(def, "rtcp-bye");

  group.DeliverData(machine, RtpPacket(7, 1));
  group.DeliverData(machine, RtcpBye(7));
  // In-flight within grace: fine.
  group.DeliverData(machine, RtpPacket(7, 2));
  EXPECT_TRUE(observer.attacks.empty());
  scheduler.RunUntil(sim::Time{} + config.bye_inflight_grace +
                     sim::Duration::Millis(10));
  group.DeliverData(machine, RtpPacket(7, 3));
  ASSERT_EQ(observer.attacks.size(), 1u);
  EXPECT_EQ(observer.attacks[0], kAttackGhostMedia);
}

TEST(GhostMedia, NewStreamOnReusedEndpointIsFine) {
  DetectionConfig config;
  sim::Scheduler scheduler;
  AttackRecorder observer;
  efsm::MachineGroup group("media|x", scheduler, &observer);
  const auto def = BuildRtcpByeMachine(config);
  auto& machine = group.AddMachine(def, "rtcp-bye");
  group.DeliverData(machine, RtcpBye(7));
  scheduler.RunUntil(sim::Time{} + config.bye_inflight_grace +
                     sim::Duration::Millis(10));
  // A different SSRC (new session on the same port) is not ghost media.
  group.DeliverData(machine, RtpPacket(99, 1));
  EXPECT_TRUE(observer.attacks.empty());
}

TEST(GhostMedia, MachineRetiresAfterLinger) {
  DetectionConfig config;
  sim::Scheduler scheduler;
  AttackRecorder observer;
  efsm::MachineGroup group("media|x", scheduler, &observer);
  const auto def = BuildRtcpByeMachine(config);
  auto& machine = group.AddMachine(def, "rtcp-bye");
  group.DeliverData(machine, RtcpBye(7));
  scheduler.RunUntil(sim::Time{} + config.bye_inflight_grace +
                     config.rtp_close_linger + sim::Duration::Seconds(1));
  EXPECT_TRUE(machine.retired());
}

}  // namespace
}  // namespace vids::ids

// --------------------------------------------- end-to-end over testbed

namespace vids::testbed {
namespace {

TEST(GhostMediaEndToEnd, SpoofedRtcpByeDetectedThroughTheNetwork) {
  TestbedConfig config;
  config.seed = 60;
  config.uas_per_network = 3;
  Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(6));
  const auto snap = bed.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_TRUE(snap->media_seen);

  bed.attacker().SendSpoofedRtcpBye(*snap);
  bed.RunFor(sim::Duration::Seconds(5));
  EXPECT_GE(bed.vids()->CountAlerts(ids::kAttackGhostMedia), 1u);
  // The SIP dialog is untouched: no BYE DoS, no deviations.
  EXPECT_EQ(bed.vids()->CountAlerts(ids::kAttackByeDos), 0u);
  EXPECT_EQ(bed.vids()->CountAlerts(ids::AlertKind::kSpecDeviation), 0u);
}

TEST(GhostMediaEndToEnd, CleanCallTeardownRaisesNoGhostAlert) {
  TestbedConfig config;
  config.seed = 61;
  config.uas_per_network = 3;
  Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));
  auto& caller = *bed.uas_a()[0];
  caller.ua().PlaceCall(bed.uas_b()[0]->ua().address_of_record(),
                        sim::Duration::Seconds(20));
  bed.RunFor(sim::Duration::Seconds(40));
  ASSERT_FALSE(caller.ua().completed_calls().empty());
  EXPECT_FALSE(caller.ua().completed_calls()[0].failed);
  EXPECT_EQ(bed.vids()->CountAlerts(ids::AlertKind::kAttackPattern), 0u);
  EXPECT_EQ(bed.vids()->CountAlerts(ids::AlertKind::kSpecDeviation), 0u);
  // RTCP was live on the wire and classified as such.
  EXPECT_GT(bed.vids()->stats().rtcp_packets, 0u);
}

}  // namespace
}  // namespace vids::testbed
