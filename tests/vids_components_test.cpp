// Unit suites for the vIDS components in isolation: the Packet Classifier
// (datagram → typed event) and the Call State Fact Base (group lifecycle,
// keyed groups, media index, sweeps, tombstones).
#include <gtest/gtest.h>

#include "rtp/packet.h"
#include "rtp/rtcp.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "vids/classifier.h"
#include "vids/fact_base.h"

namespace vids::ids {
namespace {

const net::Endpoint kSrc{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kDst{net::IpAddress(10, 2, 0, 1), 5060};

net::Datagram Wrap(std::string payload, net::PayloadKind kind) {
  net::Datagram dgram;
  dgram.src = kSrc;
  dgram.dst = kDst;
  dgram.payload = std::move(payload);
  dgram.kind = kind;
  return dgram;
}

// ----------------------------------------------------------- classifier

TEST(Classifier, SipRequestEventCarriesTheInputVector) {
  PacketClassifier classifier;
  auto invite = sip::Message::MakeRequest(
      sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com"));
  sip::Via via;
  via.sent_by = kSrc;
  via.branch = "z9hG4bKtest";
  invite.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("ft");
  invite.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
  invite.SetTo(to);
  invite.SetCallId("cid-1");
  invite.SetCseq(sip::CSeq{7, sip::Method::kInvite});
  invite.SetBody(
      sdp::MakeAudioOffer(net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000})
          .Serialize(),
      "application/sdp");

  const auto result = classifier.Classify(
      Wrap(invite.Serialize(), net::PayloadKind::kSip), true);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->proto, PacketProto::kSip);
  EXPECT_EQ(result->call_key, "cid-1");
  EXPECT_EQ(result->dest_key, "bob@b.example.com");
  const auto& event = result->event;
  EXPECT_EQ(event.name, kSipEvent);
  EXPECT_EQ(event.ArgString("kind"), "request");
  EXPECT_EQ(event.ArgString("method"), "INVITE");
  EXPECT_EQ(event.ArgInt("cseq"), 7);
  EXPECT_EQ(event.ArgString("from_tag"), "ft");
  EXPECT_EQ(event.ArgString("branch"), "z9hG4bKtest");
  EXPECT_EQ(event.ArgString("src_ip"), "10.1.0.1");
  EXPECT_EQ(event.ArgInt("dst_port"), 5060);
  EXPECT_EQ(event.Arg("from_outside"), efsm::Value{true});
  EXPECT_EQ(event.ArgString("sdp_ip"), "10.1.0.10");
  EXPECT_EQ(event.ArgInt("sdp_port"), 20000);
  EXPECT_EQ(event.ArgInt("sdp_pt"), 18);
}

TEST(Classifier, RtpEventCarriesStreamFields) {
  PacketClassifier classifier;
  rtp::RtpHeader header;
  header.ssrc = 0xCAFE;
  header.sequence_number = 42;
  header.timestamp = 4242;
  header.payload_type = 18;
  header.marker = true;
  const auto result = classifier.Classify(
      Wrap(header.Serialize(), net::PayloadKind::kRtp), false);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->proto, PacketProto::kRtp);
  EXPECT_EQ(result->event.ArgInt("ssrc"), 0xCAFE);
  EXPECT_EQ(result->event.ArgInt("seq"), 42);
  EXPECT_EQ(result->event.ArgInt("ts"), 4242);
  EXPECT_EQ(result->event.Arg("marker"), efsm::Value{true});
}

TEST(Classifier, RtcpSniffedBeforeRtp) {
  PacketClassifier classifier;
  rtp::SenderReport sr;
  sr.sender_ssrc = 9;
  sr.packet_count = 500;
  const auto result = classifier.Classify(
      Wrap(sr.Serialize(), net::PayloadKind::kRtp), true);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->proto, PacketProto::kRtcp);
  EXPECT_EQ(result->event.ArgString("kind"), "SR");
  EXPECT_EQ(result->event.ArgInt("packet_count"), 500);
}

TEST(Classifier, HintIsOnlyAHint) {
  PacketClassifier classifier;
  // SIP content labeled as RTP still classifies as SIP (content wins).
  const auto result = classifier.Classify(
      Wrap("OPTIONS sip:x@y SIP/2.0\r\nCSeq: 1 OPTIONS\r\n"
           "Content-Length: 0\r\n\r\n",
           net::PayloadKind::kRtp),
      true);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->proto, PacketProto::kSip);
}

TEST(Classifier, JunkIsCountedUnknown) {
  PacketClassifier classifier;
  EXPECT_EQ(classifier.Classify(
                Wrap("\x01\x02garbage", net::PayloadKind::kSip), true),
            nullptr);
  EXPECT_EQ(classifier.unknown_packets(), 1u);
}

// ------------------------------------------------------------ fact base

class FactBaseFixture : public ::testing::Test {
 protected:
  FactBaseFixture() : fact_base_(scheduler_, config_, nullptr) {}

  DetectionConfig config_;
  sim::Scheduler scheduler_;
  CallStateFactBase fact_base_;
};

TEST_F(FactBaseFixture, CallGroupCreatedOnceWithMachinesAndChannel) {
  bool created = false;
  auto& group = fact_base_.GetOrCreateCall("c1", created);
  EXPECT_TRUE(created);
  EXPECT_NE(group.Find(kSipMachineName), nullptr);
  EXPECT_NE(group.Find(kRtpMachineName), nullptr);
  EXPECT_NE(group.Find("cancel-dos"), nullptr);
  EXPECT_NE(group.Find("hijack"), nullptr);

  auto& again = fact_base_.GetOrCreateCall("c1", created);
  EXPECT_FALSE(created);
  EXPECT_EQ(&group, &again);
  EXPECT_EQ(fact_base_.call_count(), 1u);
  EXPECT_EQ(fact_base_.calls_created(), 1u);
}

TEST_F(FactBaseFixture, CrossProtocolAblationSkipsChannel) {
  DetectionConfig ablated = config_;
  ablated.enable_cross_protocol = false;
  CallStateFactBase fact_base(scheduler_, ablated, nullptr);
  bool created = false;
  auto& group = fact_base.GetOrCreateCall("c1", created);
  // The SIP machine's δ emit lands on an unrouted channel: the RTP machine
  // must stay in INIT after a media offer.
  auto* sip_machine = group.Find(kSipMachineName);
  efsm::Event invite;
  invite.name = std::string(kSipEvent);
  invite.args["kind"] = std::string("request");
  invite.args["method"] = std::string("INVITE");
  invite.args["sdp_ip"] = std::string("10.1.0.10");
  invite.args["sdp_port"] = int64_t{20000};
  invite.args["sdp_pt"] = int64_t{18};
  group.DeliverData(*sip_machine, invite);
  EXPECT_EQ(group.Find(kRtpMachineName)->StateName(), "INIT");
}

TEST_F(FactBaseFixture, KeyedGroupsPerKindAndKey) {
  auto& flood1 = fact_base_.GetOrCreateKeyed(KeyedKind::kInviteFlood, "bob@b");
  auto& flood2 = fact_base_.GetOrCreateKeyed(KeyedKind::kInviteFlood, "bob@b");
  auto& media = fact_base_.GetOrCreateKeyed(KeyedKind::kMediaEndpoint,
                                            "10.2.0.10:30000");
  EXPECT_EQ(&flood1, &flood2);
  EXPECT_NE(static_cast<void*>(&flood1), static_cast<void*>(&media));
  EXPECT_EQ(fact_base_.keyed_count(), 2u);
  EXPECT_NE(flood1.Find("invite-flood"), nullptr);
  EXPECT_NE(media.Find("media-spam"), nullptr);
  EXPECT_NE(media.Find("rtp-flood"), nullptr);
  EXPECT_NE(media.Find("rtcp-bye"), nullptr);
}

TEST_F(FactBaseFixture, MediaIndexMapsEndpointsToCalls) {
  const net::Endpoint ep{net::IpAddress(10, 2, 0, 10), 30000};
  bool created = false;
  fact_base_.GetOrCreateCall("c1", created);
  fact_base_.GetOrCreateCall("c2", created);
  fact_base_.IndexMedia(ep, "c1");
  EXPECT_EQ(fact_base_.CallByMedia(ep), "c1");
  fact_base_.IndexMedia(ep, "c2");  // rebind (port reuse)
  EXPECT_EQ(fact_base_.CallByMedia(ep), "c2");
}

TEST_F(FactBaseFixture, MediaForUnknownCallIsNotIndexed) {
  // An index entry with no owning call would have no reverse index and
  // could never be reclaimed — the fact base refuses to create one.
  const net::Endpoint ep{net::IpAddress(10, 2, 0, 10), 30000};
  fact_base_.IndexMedia(ep, "ghost");
  EXPECT_EQ(fact_base_.CallByMedia(ep), std::nullopt);
  EXPECT_EQ(fact_base_.media_index_count(), 0u);
}

TEST_F(FactBaseFixture, SweepReclaimsIdleKeyedGroups) {
  fact_base_.GetOrCreateKeyed(KeyedKind::kInviteFlood, "bob@b");
  scheduler_.RunUntil(scheduler_.Now() + config_.keyed_idle_timeout +
                      sim::Duration::Seconds(2));
  fact_base_.Sweep(scheduler_.Now());
  EXPECT_EQ(fact_base_.keyed_count(), 0u);
}

TEST_F(FactBaseFixture, SweepReclaimsIdleCallsWithTombstone) {
  bool created = false;
  fact_base_.GetOrCreateCall("stuck", created);
  scheduler_.RunUntil(scheduler_.Now() + config_.call_idle_timeout +
                      sim::Duration::Seconds(2));
  fact_base_.Sweep(scheduler_.Now());
  EXPECT_EQ(fact_base_.call_count(), 0u);
  EXPECT_TRUE(fact_base_.IsTombstoned("stuck"));
  EXPECT_EQ(fact_base_.calls_deleted(), 1u);

  // Tombstones themselves expire.
  scheduler_.RunUntil(scheduler_.Now() + config_.tombstone_ttl +
                      sim::Duration::Seconds(2));
  fact_base_.Sweep(scheduler_.Now());
  EXPECT_FALSE(fact_base_.IsTombstoned("stuck"));
}

TEST_F(FactBaseFixture, SweepDropsMediaIndexOfDeletedCall) {
  bool created = false;
  fact_base_.GetOrCreateCall("c1", created);
  const net::Endpoint ep{net::IpAddress(10, 2, 0, 10), 30000};
  fact_base_.IndexMedia(ep, "c1");
  scheduler_.RunUntil(scheduler_.Now() + config_.call_idle_timeout +
                      sim::Duration::Seconds(2));
  fact_base_.Sweep(scheduler_.Now());
  EXPECT_FALSE(fact_base_.CallByMedia(ep).has_value());
}

TEST_F(FactBaseFixture, BinaryAndStringMediaKeysAlias) {
  const net::Endpoint ep{net::IpAddress(10, 2, 0, 10), 30000};
  auto& by_string =
      fact_base_.GetOrCreateKeyed(KeyedKind::kMediaEndpoint, ep.ToString());
  auto& by_endpoint = fact_base_.GetOrCreateMediaGroup(ep);
  EXPECT_EQ(&by_string, &by_endpoint);
  EXPECT_EQ(fact_base_.keyed_count(), 1u);

  auto& drdos_by_string =
      fact_base_.GetOrCreateKeyed(KeyedKind::kDrdos, "10.2.0.1");
  auto& drdos_by_ip = fact_base_.GetOrCreateDrdosGroup(net::IpAddress(10, 2, 0, 1));
  EXPECT_EQ(&drdos_by_string, &drdos_by_ip);
  EXPECT_EQ(fact_base_.keyed_count(), 2u);
}

TEST_F(FactBaseFixture, FindGroupByMediaResolvesTheOwningGroup) {
  const net::Endpoint ep{net::IpAddress(10, 2, 0, 10), 30000};
  EXPECT_EQ(fact_base_.FindGroupByMedia(ep), nullptr);

  bool created = false;
  auto& group = fact_base_.GetOrCreateCall("c1", created);
  fact_base_.IndexMedia(ep, "c1");
  EXPECT_EQ(fact_base_.FindGroupByMedia(ep), &group);

  scheduler_.RunUntil(scheduler_.Now() + config_.call_idle_timeout +
                      sim::Duration::Seconds(2));
  fact_base_.Sweep(scheduler_.Now());
  EXPECT_EQ(fact_base_.FindGroupByMedia(ep), nullptr);
}

TEST_F(FactBaseFixture, SweepKeepsReboundMediaIndexEntry) {
  // c1 negotiates ep, then the port is reused by c2. When c1 is reclaimed
  // its stale reverse keys must not delete c2's live index entry.
  bool created = false;
  fact_base_.GetOrCreateCall("c1", created);
  const net::Endpoint ep{net::IpAddress(10, 2, 0, 10), 30000};
  fact_base_.IndexMedia(ep, "c1");

  scheduler_.RunUntil(scheduler_.Now() + config_.call_idle_timeout -
                      sim::Duration::Seconds(5));
  auto& c2 = fact_base_.GetOrCreateCall("c2", created);
  fact_base_.IndexMedia(ep, "c2");

  scheduler_.RunUntil(scheduler_.Now() + sim::Duration::Seconds(10));
  fact_base_.Sweep(scheduler_.Now());  // c1 idle-expired, c2 still fresh
  EXPECT_EQ(fact_base_.call_count(), 1u);
  EXPECT_EQ(fact_base_.CallByMedia(ep), "c2");
  EXPECT_EQ(fact_base_.FindGroupByMedia(ep), &c2);
}

TEST_F(FactBaseFixture, SweepIsRateLimited) {
  bool created = false;
  fact_base_.GetOrCreateCall("c1", created);
  // Two immediate sweeps: the second is a no-op (next_sweep_ gate), cheap
  // to call per-packet.
  fact_base_.Sweep(scheduler_.Now());
  fact_base_.Sweep(scheduler_.Now());
  EXPECT_EQ(fact_base_.call_count(), 1u);
}

}  // namespace
}  // namespace vids::ids
