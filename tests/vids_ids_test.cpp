// Tests of the composed vIDS (classifier → distributor → fact base →
// analysis engine) driven with hand-crafted datagrams.
#include <gtest/gtest.h>

#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "vids/ids.h"

namespace vids::ids {
namespace {

net::Datagram SipDgram(const sip::Message& message, net::Endpoint src,
                       net::Endpoint dst) {
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = message.Serialize();
  dgram.kind = net::PayloadKind::kSip;
  return dgram;
}

net::Datagram RtpDgram(uint32_t ssrc, uint16_t seq, uint32_t ts,
                       net::Endpoint src, net::Endpoint dst, uint8_t pt = 18) {
  rtp::RtpHeader header;
  header.ssrc = ssrc;
  header.sequence_number = seq;
  header.timestamp = ts;
  header.payload_type = pt;
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = header.Serialize();
  dgram.kind = net::PayloadKind::kRtp;
  return dgram;
}

const net::Endpoint kProxyA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kProxyB{net::IpAddress(10, 2, 0, 1), 5060};
const net::Endpoint kCallerMedia{net::IpAddress(10, 1, 0, 10), 20000};
const net::Endpoint kCalleeMedia{net::IpAddress(10, 2, 0, 10), 30000};
const net::Endpoint kAttacker{net::IpAddress(10, 9, 0, 66), 5060};

class IdsFixture : public ::testing::Test {
 protected:
  IdsFixture() : vids_(scheduler_) {}

  sip::Message MakeInvite(const std::string& call_id) {
    auto invite = sip::Message::MakeRequest(
        sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com"));
    sip::Via via;
    via.sent_by = kProxyA;
    via.branch = "z9hG4bK" + call_id;
    invite.PushVia(via);
    sip::NameAddr from;
    from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
    from.SetTag("tag-alice");
    invite.SetFrom(from);
    sip::NameAddr to;
    to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
    invite.SetTo(to);
    invite.SetCallId(call_id);
    invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
    invite.SetBody(sdp::MakeAudioOffer(kCallerMedia).Serialize(),
                   "application/sdp");
    return invite;
  }

  sip::Message MakeResponse(const sip::Message& request, int status,
                            bool with_sdp) {
    auto response = sip::Message::MakeResponse(status);
    for (const auto via : request.Headers("Via")) {
      response.AddHeader("Via", via);
    }
    response.SetFrom(*request.From());
    auto to = *request.To();
    to.SetTag("tag-bob");
    response.SetTo(to);
    response.SetCallId(std::string(*request.CallId()));
    response.SetCseq(*request.Cseq());
    if (with_sdp) {
      response.SetBody(sdp::MakeAudioOffer(kCalleeMedia).Serialize(),
                       "application/sdp");
    }
    return response;
  }

  sip::Message MakeBye(const std::string& call_id) {
    auto bye = sip::Message::MakeRequest(
        sip::Method::kBye, *sip::SipUri::Parse("sip:bob@10.2.0.10"));
    sip::Via via;
    via.sent_by = kProxyA;
    via.branch = "z9hG4bKbye" + call_id;
    bye.PushVia(via);
    sip::NameAddr from;
    from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
    from.SetTag("tag-alice");
    bye.SetFrom(from);
    sip::NameAddr to;
    to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
    to.SetTag("tag-bob");
    bye.SetTo(to);
    bye.SetCallId(call_id);
    bye.SetCseq(sip::CSeq{2, sip::Method::kBye});
    return bye;
  }

  // Feeds a full signaling handshake for `call_id` (INVITE/180/200/ACK).
  void EstablishCall(const std::string& call_id) {
    const auto invite = MakeInvite(call_id);
    vids_.Inspect(SipDgram(invite, kProxyA, kProxyB), true);
    vids_.Inspect(SipDgram(MakeResponse(invite, 180, false), kProxyB, kProxyA),
                  false);
    vids_.Inspect(SipDgram(MakeResponse(invite, 200, true), kProxyB, kProxyA),
                  false);
    auto ack = sip::Message::MakeRequest(
        sip::Method::kAck, *sip::SipUri::Parse("sip:bob@10.2.0.10"));
    sip::Via via;
    via.sent_by = kProxyA;
    via.branch = "z9hG4bKack" + call_id;
    ack.PushVia(via);
    ack.SetCallId(call_id);
    ack.SetCseq(sip::CSeq{1, sip::Method::kAck});
    vids_.Inspect(SipDgram(ack, kCallerMedia, kCalleeMedia), true);
  }

  size_t Attacks(std::string_view classification) {
    return vids_.CountAlerts(classification);
  }

  sim::Scheduler scheduler_;
  Vids vids_;
};

TEST_F(IdsFixture, ChargesConfiguredCosts) {
  const auto invite = MakeInvite("c1");
  EXPECT_EQ(vids_.Inspect(SipDgram(invite, kProxyA, kProxyB), true),
            CostModel{}.sip_cost);
  EXPECT_EQ(vids_.Inspect(RtpDgram(1, 1, 80, kCallerMedia, kCalleeMedia),
                          true),
            CostModel{}.rtp_cost);
  EXPECT_EQ(vids_.stats().sip_packets, 1u);
  EXPECT_EQ(vids_.stats().rtp_packets, 1u);
}

TEST_F(IdsFixture, CleanCallProducesNoAlerts) {
  EstablishCall("clean-1");
  // Both media directions, in session.
  for (int i = 0; i < 50; ++i) {
    vids_.Inspect(RtpDgram(77, static_cast<uint16_t>(i),
                           static_cast<uint32_t>(80 * i), kCallerMedia,
                           kCalleeMedia),
                  true);
    vids_.Inspect(RtpDgram(88, static_cast<uint16_t>(i),
                           static_cast<uint32_t>(80 * i), kCalleeMedia,
                           kCallerMedia),
                  false);
  }
  const auto bye = MakeBye("clean-1");
  vids_.Inspect(SipDgram(bye, kCallerMedia, kCalleeMedia), true);
  vids_.Inspect(SipDgram(MakeResponse(bye, 200, false), kCalleeMedia,
                         kCallerMedia),
                false);
  EXPECT_EQ(vids_.alerts().size(), 0u);
  EXPECT_EQ(vids_.stats().orphan_rtp, 0u);
}

TEST_F(IdsFixture, MediaIndexRoutesRtpToItsCall) {
  EstablishCall("c-media");
  EXPECT_EQ(vids_.fact_base().CallByMedia(kCalleeMedia), "c-media");
  EXPECT_EQ(vids_.fact_base().CallByMedia(kCallerMedia), "c-media");
  EXPECT_FALSE(vids_.fact_base()
                   .CallByMedia(net::Endpoint{net::IpAddress(1, 1, 1, 1), 9})
                   .has_value());
}

TEST_F(IdsFixture, ByeDosRaisesCrossProtocolAlert) {
  EstablishCall("c-byedos");
  vids_.Inspect(RtpDgram(77, 1, 80, kCallerMedia, kCalleeMedia), true);
  // Attacker (different host) sends the BYE.
  const auto bye = MakeBye("c-byedos");
  vids_.Inspect(SipDgram(bye, kAttacker, kCalleeMedia), true);
  vids_.Inspect(
      SipDgram(MakeResponse(bye, 200, false), kCalleeMedia, kAttacker),
      false);
  // Caller keeps streaming past the grace period.
  scheduler_.RunUntil(scheduler_.Now() +
                      vids_.detection().bye_inflight_grace +
                      sim::Duration::Millis(10));
  vids_.Inspect(RtpDgram(77, 2, 160, kCallerMedia, kCalleeMedia), true);
  EXPECT_EQ(Attacks("BYE DoS"), 1u);
  EXPECT_EQ(Attacks("toll fraud"), 0u);
}

TEST_F(IdsFixture, InviteFloodAlertsPerDestination) {
  const int n = vids_.detection().invite_flood_threshold;
  for (int i = 0; i <= n; ++i) {
    vids_.Inspect(SipDgram(MakeInvite("flood-" + std::to_string(i)), kAttacker,
                           kProxyB),
                  true);
  }
  EXPECT_EQ(Attacks("INVITE flood"), 1u);
}

TEST_F(IdsFixture, MediaSpamAlertViaPerEndpointPattern) {
  EstablishCall("c-spam");
  vids_.Inspect(RtpDgram(77, 100, 8000, kCallerMedia, kCalleeMedia), true);
  vids_.Inspect(RtpDgram(77, 101, 8080, kCallerMedia, kCalleeMedia), true);
  // Attacker injects with the same SSRC far ahead.
  vids_.Inspect(RtpDgram(77, 2000, 500000,
                         net::Endpoint{kAttacker.ip, 40000}, kCalleeMedia),
                true);
  EXPECT_EQ(Attacks("media spamming"), 1u);
}

TEST_F(IdsFixture, UnsolicitedResponsesFeedDrdosCounter) {
  const auto invite = MakeInvite("nonexistent");
  for (int i = 0; i <= vids_.detection().drdos_threshold; ++i) {
    auto response = MakeResponse(invite, 200, false);
    response.SetCallId("reflection-" + std::to_string(i));
    vids_.Inspect(SipDgram(response, kProxyA, kCalleeMedia), true);
  }
  EXPECT_EQ(Attacks("DRDoS reflection"), 1u);
  // Each also deviated from the SIP spec machine.
  EXPECT_GT(vids_.CountAlerts(AlertKind::kSpecDeviation), 0u);
}

TEST_F(IdsFixture, MalformedPacketIsFlagged) {
  net::Datagram junk;
  junk.src = kAttacker;
  junk.dst = kProxyB;
  junk.payload = "complete garbage that is neither SIP nor RTP";
  junk.kind = net::PayloadKind::kSip;
  vids_.Inspect(junk, true);
  EXPECT_EQ(vids_.CountAlerts(AlertKind::kMalformed), 1u);
}

TEST_F(IdsFixture, CompletedCallIsSweptAndTombstoned) {
  EstablishCall("c-done");
  const auto bye = MakeBye("c-done");
  vids_.Inspect(SipDgram(bye, kCallerMedia, kCalleeMedia), true);
  vids_.Inspect(SipDgram(MakeResponse(bye, 200, false), kCalleeMedia,
                         kCallerMedia),
                false);
  EXPECT_EQ(vids_.fact_base().call_count(), 1u);
  // Let the RTP machine linger out, then trigger a sweep with any packet.
  scheduler_.RunUntil(scheduler_.Now() + vids_.detection().bye_inflight_grace +
                      vids_.detection().rtp_close_linger +
                      sim::Duration::Seconds(2));
  vids_.Inspect(SipDgram(MakeInvite("other"), kProxyA, kProxyB), true);
  EXPECT_EQ(vids_.fact_base().call_count(), 1u);  // only "other"
  EXPECT_TRUE(vids_.fact_base().IsTombstoned("c-done"));

  // A late retransmission of the closed call is dropped silently.
  const auto alerts_before = vids_.alerts().size();
  vids_.Inspect(SipDgram(MakeResponse(bye, 200, false), kCalleeMedia,
                         kCallerMedia),
                false);
  EXPECT_EQ(vids_.alerts().size(), alerts_before);
}

TEST_F(IdsFixture, IdleCallsAreReclaimed) {
  // An INVITE that never progresses (flood residue).
  vids_.Inspect(SipDgram(MakeInvite("stuck"), kAttacker, kProxyB), true);
  EXPECT_EQ(vids_.fact_base().call_count(), 1u);
  scheduler_.RunUntil(scheduler_.Now() + vids_.detection().call_idle_timeout +
                      sim::Duration::Seconds(2));
  vids_.Inspect(SipDgram(MakeInvite("fresh"), kProxyA, kProxyB), true);
  EXPECT_FALSE(vids_.fact_base().FindCall("stuck") != nullptr);
}

TEST_F(IdsFixture, RepeatedAttackAlertsAreDeduplicated) {
  const int n = vids_.detection().invite_flood_threshold;
  // A sustained flood: many packets beyond the threshold within 1 s.
  for (int i = 0; i <= n + 20; ++i) {
    vids_.Inspect(SipDgram(MakeInvite("f" + std::to_string(i)), kAttacker,
                           kProxyB),
                  true);
  }
  EXPECT_EQ(Attacks("INVITE flood"), 1u);
  EXPECT_GT(vids_.stats().alerts_suppressed, 0u);
}

TEST_F(IdsFixture, PerCallMemoryIsSmallAndBounded) {
  EstablishCall("c-mem");
  const auto bytes = vids_.fact_base().CallMemoryBytes("c-mem");
  ASSERT_TRUE(bytes.has_value());
  // The paper prices a call's machines at ~490 bytes of state variables;
  // our instances carry the machinery too, but stay in the low KBs.
  EXPECT_LT(*bytes, 16 * 1024u);
  EXPECT_GT(*bytes, 100u);
}

TEST_F(IdsFixture, OrphanRtpIsCounted) {
  vids_.Inspect(RtpDgram(5, 1, 80, kAttacker, kCalleeMedia), true);
  EXPECT_EQ(vids_.stats().orphan_rtp, 1u);
}

TEST_F(IdsFixture, ExpiredTombstoneCallIdReturnsAsFreshCall) {
  // Complete a call, let it be swept and its tombstone expire, then see
  // the same Call-ID again: it must open as a brand-new, clean call.
  EstablishCall("c-reuse");
  const auto bye = MakeBye("c-reuse");
  vids_.Inspect(SipDgram(bye, kCallerMedia, kCalleeMedia), true);
  vids_.Inspect(SipDgram(MakeResponse(bye, 200, false), kCalleeMedia,
                         kCallerMedia),
                false);
  scheduler_.RunUntil(scheduler_.Now() + vids_.detection().rtp_close_linger +
                      vids_.detection().tombstone_ttl +
                      sim::Duration::Seconds(4));
  EXPECT_FALSE(vids_.fact_base().IsTombstoned("c-reuse"));
  const auto alerts_before = vids_.alerts().size();
  EstablishCall("c-reuse");
  EXPECT_NE(vids_.fact_base().FindCall("c-reuse"), nullptr);
  EXPECT_EQ(vids_.alerts().size(), alerts_before)
      << "re-used Call-ID after tombstone expiry raised a false alert";
}

TEST_F(IdsFixture, RenegotiatedMediaEndpointSurvivesFirstCallSweep) {
  // Two calls negotiate the same media endpoint (port reuse) back to
  // back; when the first call is swept, the index entry must keep
  // routing to the second call (the sweep's ownership check).
  EstablishCall("c-old");
  EstablishCall("c-new");  // rebinds kCalleeMedia / kCallerMedia to c-new
  const auto bye = MakeBye("c-old");
  vids_.Inspect(SipDgram(bye, kCallerMedia, kCalleeMedia), true);
  vids_.Inspect(SipDgram(MakeResponse(bye, 200, false), kCalleeMedia,
                         kCallerMedia),
                false);
  scheduler_.RunUntil(scheduler_.Now() + vids_.detection().rtp_close_linger +
                      sim::Duration::Seconds(2));
  EXPECT_EQ(vids_.fact_base().FindCall("c-old"), nullptr);
  EXPECT_EQ(vids_.fact_base().CallByMedia(kCalleeMedia), "c-new");
  // RTP at the endpoint still reaches a monitored call, not the orphan
  // counter.
  vids_.Inspect(RtpDgram(99, 1, 80, kCallerMedia, kCalleeMedia), true);
  EXPECT_EQ(vids_.stats().orphan_rtp, 0u);
}

TEST_F(IdsFixture, AlertSigsExpireWithDedupWindowAndReAlert) {
  // A deviation alert plants a dedup signature; once the window passes,
  // the periodic sweep prunes it and an identical deviation alerts again
  // instead of hitting a stale suppression entry.
  const auto bye = MakeBye("c-ghost");
  vids_.Inspect(SipDgram(bye, kAttacker, kCalleeMedia), true);
  const auto first = vids_.alerts().size();
  ASSERT_GT(first, 0u);
  EXPECT_GT(vids_.alert_sig_count(), 0u);

  // Identical deviation inside the window: suppressed, sig table flat.
  vids_.Inspect(SipDgram(bye, kAttacker, kCalleeMedia), true);
  EXPECT_EQ(vids_.alerts().size(), first);
  EXPECT_GT(vids_.stats().alerts_suppressed, 0u);

  // Past the window the sweep timer prunes the signature (no packets).
  scheduler_.RunUntil(scheduler_.Now() + vids_.detection().alert_dedup_window +
                      sim::Duration::Seconds(2));
  EXPECT_EQ(vids_.alert_sig_count(), 0u);
  EXPECT_EQ(vids_.metrics().GetGauge("vids.alert_sigs").value(), 0);

  vids_.Inspect(SipDgram(bye, kAttacker, kCalleeMedia), true);
  EXPECT_EQ(vids_.alerts().size(), first + 1)
      << "deviation after the dedup window must alert again";
}

TEST_F(IdsFixture, IdleStateDiesWithZeroPackets) {
  // Open never-completing state (an INVITE that stalls plus a flood
  // group), then go silent: the scheduler-armed sweep alone must reclaim
  // every map and the gauges must track the true cardinalities.
  vids_.Inspect(SipDgram(MakeInvite("c-stalled"), kProxyA, kProxyB), true);
  EstablishCall("c-idle");
  EXPECT_EQ(vids_.metrics().GetGauge("vids.active_calls").value(),
            static_cast<int64_t>(vids_.fact_base().call_count()));
  EXPECT_EQ(vids_.metrics().GetGauge("vids.keyed_groups").value(),
            static_cast<int64_t>(vids_.fact_base().keyed_count()));

  scheduler_.RunUntil(scheduler_.Now() + vids_.detection().call_idle_timeout +
                      vids_.detection().tombstone_ttl +
                      sim::Duration::Seconds(4));
  EXPECT_EQ(vids_.fact_base().call_count(), 0u);
  EXPECT_EQ(vids_.fact_base().keyed_count(), 0u);
  EXPECT_EQ(vids_.fact_base().tombstone_count(), 0u);
  EXPECT_EQ(vids_.fact_base().media_index_count(), 0u);
  EXPECT_EQ(vids_.alert_sig_count(), 0u);
  EXPECT_EQ(vids_.metrics().GetGauge("vids.active_calls").value(), 0);
  EXPECT_EQ(vids_.metrics().GetGauge("vids.keyed_groups").value(), 0);
  EXPECT_EQ(vids_.metrics().GetGauge("vids.media_index_size").value(), 0);
  EXPECT_EQ(vids_.metrics().GetGauge("vids.tombstones").value(), 0);
}

TEST_F(IdsFixture, RetainedAlertHistoryRespectsItsCap) {
  vids_.set_max_retained_alerts(4);
  for (int i = 0; i < 8; ++i) {
    // Distinct groups, so dedup never suppresses.
    const auto bye = MakeBye("c-cap-" + std::to_string(i));
    vids_.Inspect(SipDgram(bye, kAttacker, kCalleeMedia), true);
  }
  EXPECT_LE(vids_.alerts().size(), 4u);
  EXPECT_GT(vids_.alerts().size(), 0u);
}

TEST(IdsLifecycle, ReclaimedGroupEvictsItsAlertSigInsideTheWindow) {
  // With a dedup window much longer than the idle timeout, a reclaimed
  // group's signature must die with the group — otherwise the next
  // deviation from a same-named group would be wrongly suppressed.
  DetectionConfig detection;
  detection.call_idle_timeout = sim::Duration::Seconds(5);
  detection.alert_dedup_window = sim::Duration::Seconds(600);
  sim::Scheduler scheduler;
  Vids vids(scheduler, detection);

  auto bye = sip::Message::MakeRequest(
      sip::Method::kBye, *sip::SipUri::Parse("sip:bob@b.example.com"));
  sip::Via via;
  via.sent_by = kAttacker;
  via.branch = "z9hG4bKevict";
  bye.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("t");
  bye.SetFrom(from);
  auto to = from;
  to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
  bye.SetTo(to);
  bye.SetCallId("c-evict");
  bye.SetCseq(sip::CSeq{2, sip::Method::kBye});

  vids.Inspect(SipDgram(bye, kAttacker, kCalleeMedia), true);
  const auto first = vids.alerts().size();
  ASSERT_GT(first, 0u);
  ASSERT_GT(vids.alert_sig_count(), 0u);

  // Idle out the group; its signature is evicted although the dedup
  // window is nowhere near over.
  scheduler.RunUntil(scheduler.Now() + detection.call_idle_timeout +
                     detection.tombstone_ttl + sim::Duration::Seconds(4));
  EXPECT_EQ(vids.alert_sig_count(), 0u);

  vids.Inspect(SipDgram(bye, kAttacker, kCalleeMedia), true);
  EXPECT_EQ(vids.alerts().size(), first + 1)
      << "fresh group's deviation was suppressed by a dead group's sig";
}

}  // namespace
}  // namespace vids::ids
