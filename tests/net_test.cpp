#include <gtest/gtest.h>

#include "net/forwarder.h"
#include "net/host.h"
#include "net/inline_tap.h"
#include "net/network.h"

namespace vids::net {
namespace {

// ---------------------------------------------------------------- address

TEST(Address, ParseAndFormatRoundTrip) {
  const auto addr = IpAddress::Parse("10.1.0.255");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->ToString(), "10.1.0.255");
  EXPECT_EQ(*addr, IpAddress(10, 1, 0, 255));
}

TEST(Address, ParseRejectsMalformed) {
  EXPECT_FALSE(IpAddress::Parse("10.1.0").has_value());
  EXPECT_FALSE(IpAddress::Parse("10.1.0.256").has_value());
  EXPECT_FALSE(IpAddress::Parse("10.1.0.0.1").has_value());
  EXPECT_FALSE(IpAddress::Parse("ten.one.zero.one").has_value());
  EXPECT_FALSE(IpAddress::Parse("").has_value());
}

TEST(Address, SubnetContains) {
  const auto subnet = Subnet::Parse("10.2.0.0/16");
  ASSERT_TRUE(subnet.has_value());
  EXPECT_TRUE(subnet->Contains(IpAddress(10, 2, 3, 4)));
  EXPECT_FALSE(subnet->Contains(IpAddress(10, 3, 0, 1)));
  const Subnet all(IpAddress(0, 0, 0, 0), 0);
  EXPECT_TRUE(all.Contains(IpAddress(1, 2, 3, 4)));
  const Subnet host_route(IpAddress(10, 2, 0, 5), 32);
  EXPECT_TRUE(host_route.Contains(IpAddress(10, 2, 0, 5)));
  EXPECT_FALSE(host_route.Contains(IpAddress(10, 2, 0, 6)));
}

TEST(Address, EndpointParse) {
  const auto ep = Endpoint::Parse("10.1.0.5:5060");
  ASSERT_TRUE(ep.has_value());
  EXPECT_EQ(ep->ip, IpAddress(10, 1, 0, 5));
  EXPECT_EQ(ep->port, 5060);
  EXPECT_FALSE(Endpoint::Parse("10.1.0.5").has_value());
  EXPECT_FALSE(Endpoint::Parse("10.1.0.5:99999").has_value());
}

// ------------------------------------------------------------------ fixture

class NetFixture : public ::testing::Test {
 protected:
  NetFixture() : network_(scheduler_, /*seed=*/1) {}

  sim::Scheduler scheduler_;
  Network network_;
};

// A node recording everything delivered to it.
class SinkNode : public Node {
 public:
  explicit SinkNode(std::string name) : Node(std::move(name)) {}
  void Receive(const Datagram& dgram) override { received.push_back(dgram); }
  std::vector<Datagram> received;
};

// -------------------------------------------------------------------- link

TEST_F(NetFixture, LinkDelaysBySerializationPlusPropagation) {
  auto& sink = network_.AddNode<SinkNode>("sink");
  // 1 Mb/s, 1 ms propagation: a 972-byte payload (1000B wire) takes 8 ms.
  LinkConfig config{.bandwidth_bps = 1'000'000,
                    .propagation = sim::Duration::Millis(1),
                    .loss_rate = 0.0};
  Link& link = network_.MakeLink("l", sink, config);
  Datagram d;
  d.payload = std::string(972, 'x');
  ASSERT_EQ(d.WireBytes(), 1000u);
  link.Send(d);
  scheduler_.Run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(scheduler_.Now(), sim::Time{} + sim::Duration::Millis(9));
}

TEST_F(NetFixture, LinkQueuesBackToBackPackets) {
  auto& sink = network_.AddNode<SinkNode>("sink");
  LinkConfig config{.bandwidth_bps = 1'000'000,
                    .propagation = sim::Duration{},
                    .loss_rate = 0.0};
  Link& link = network_.MakeLink("l", sink, config);
  Datagram d;
  d.payload = std::string(972, 'x');  // 8 ms each
  link.Send(d);
  link.Send(d);
  scheduler_.Run();
  ASSERT_EQ(sink.received.size(), 2u);
  // Second packet waits for the first to serialize: arrives at 16 ms.
  EXPECT_EQ(scheduler_.Now(), sim::Time{} + sim::Duration::Millis(16));
}

TEST_F(NetFixture, InfiniteBandwidthHasNoSerializationDelay) {
  auto& sink = network_.AddNode<SinkNode>("sink");
  LinkConfig config{.bandwidth_bps = 0,
                    .propagation = sim::Duration::Millis(50),
                    .loss_rate = 0.0};
  Link& link = network_.MakeLink("l", sink, config);
  Datagram d;
  d.payload = "x";
  link.Send(d);
  link.Send(d);
  scheduler_.Run();
  EXPECT_EQ(sink.received.size(), 2u);
  EXPECT_EQ(scheduler_.Now(), sim::Time{} + sim::Duration::Millis(50));
}

TEST_F(NetFixture, LossRateDropsApproximatelyThatFraction) {
  auto& sink = network_.AddNode<SinkNode>("sink");
  LinkConfig config{.bandwidth_bps = 0,
                    .propagation = sim::Duration{},
                    .loss_rate = 0.2};
  Link& link = network_.MakeLink("lossy", sink, config);
  Datagram d;
  d.payload = "x";
  const int n = 10000;
  for (int i = 0; i < n; ++i) link.Send(d);
  scheduler_.Run();
  EXPECT_EQ(link.packets_sent() + link.packets_dropped(),
            static_cast<uint64_t>(n));
  EXPECT_NEAR(static_cast<double>(link.packets_dropped()) / n, 0.2, 0.02);
}

// --------------------------------------------------------------- forwarder

TEST_F(NetFixture, ForwarderUsesLongestPrefixMatch) {
  auto& wide = network_.AddNode<SinkNode>("wide");
  auto& narrow = network_.AddNode<SinkNode>("narrow");
  auto& fallback = network_.AddNode<SinkNode>("default");
  auto& fwd = network_.AddNode<Forwarder>("fwd");
  Link& to_wide = network_.Connect(fwd, wide, FastEthernet());
  Link& to_narrow = network_.Connect(fwd, narrow, FastEthernet());
  Link& to_default = network_.Connect(fwd, fallback, FastEthernet());
  fwd.AddRoute(*Subnet::Parse("10.2.0.0/16"), to_wide);
  fwd.AddRoute(*Subnet::Parse("10.2.0.5/32"), to_narrow);
  fwd.SetDefaultRoute(to_default);

  Datagram d;
  d.dst = Endpoint{IpAddress(10, 2, 0, 5), 1};
  fwd.Receive(d);
  d.dst = Endpoint{IpAddress(10, 2, 9, 9), 1};
  fwd.Receive(d);
  d.dst = Endpoint{IpAddress(99, 9, 9, 9), 1};
  fwd.Receive(d);
  scheduler_.Run();
  EXPECT_EQ(narrow.received.size(), 1u);
  EXPECT_EQ(wide.received.size(), 1u);
  EXPECT_EQ(fallback.received.size(), 1u);
  EXPECT_EQ(fwd.packets_forwarded(), 3u);
}

TEST_F(NetFixture, ForwarderCountsUnroutable) {
  auto& fwd = network_.AddNode<Forwarder>("fwd");
  Datagram d;
  d.dst = Endpoint{IpAddress(1, 2, 3, 4), 1};
  fwd.Receive(d);
  EXPECT_EQ(fwd.packets_unroutable(), 1u);
}

// -------------------------------------------------------------------- host

TEST_F(NetFixture, HostDemuxesUdpByPort) {
  auto& host = network_.AddNode<Host>(network_, "h", IpAddress(10, 0, 0, 1));
  int on_5060 = 0, on_20000 = 0;
  host.BindUdp(5060, [&](const Datagram&) { ++on_5060; });
  host.BindUdp(20000, [&](const Datagram&) { ++on_20000; });

  Datagram d;
  d.dst = Endpoint{host.ip(), 5060};
  host.Receive(d);
  d.dst = Endpoint{host.ip(), 20000};
  host.Receive(d);
  d.dst = Endpoint{host.ip(), 9};  // unbound
  host.Receive(d);
  d.dst = Endpoint{IpAddress(9, 9, 9, 9), 5060};  // not our address
  host.Receive(d);
  EXPECT_EQ(on_5060, 1);
  EXPECT_EQ(on_20000, 1);
  EXPECT_EQ(host.datagrams_received(), 2u);
  EXPECT_EQ(host.datagrams_dropped(), 2u);
}

TEST_F(NetFixture, HostStampsSendTimeAndId) {
  auto& a = network_.AddNode<Host>(network_, "a", IpAddress(10, 0, 0, 1));
  auto& b = network_.AddNode<Host>(network_, "b", IpAddress(10, 0, 0, 2));
  auto [ab, ba] = network_.ConnectDuplex(a, b, FastEthernet());
  (void)ba;
  a.SetUplink(ab);  // a's uplink delivers into b
  std::vector<Datagram> got;
  b.BindUdp(7, [&](const Datagram& d) { got.push_back(d); });

  scheduler_.ScheduleAfter(sim::Duration::Millis(3), [&] {
    a.SendUdp(5060, Endpoint{b.ip(), 7}, "hello", PayloadKind::kOther);
  });
  scheduler_.Run();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].sent_time, sim::Time{} + sim::Duration::Millis(3));
  EXPECT_GT(got[0].id, 0u);
  EXPECT_EQ(got[0].src, (Endpoint{a.ip(), 5060}));
}

TEST_F(NetFixture, HostSendWithoutUplinkThrows) {
  auto& host = network_.AddNode<Host>(network_, "h", IpAddress(10, 0, 0, 1));
  EXPECT_THROW(
      host.SendUdp(1, Endpoint{IpAddress(1, 1, 1, 1), 1}, "x",
                   PayloadKind::kOther),
      std::logic_error);
}

// --------------------------------------------------------------------- tap

class TapFixture : public NetFixture {
 protected:
  TapFixture()
      : tap_(network_.AddNode<InlineTap>("tap", scheduler_)),
        inside_(network_.AddNode<SinkNode>("inside")),
        outside_(network_.AddNode<SinkNode>("outside")) {
    Link& to_inside = network_.MakeLink("tap->inside", inside_, FastEthernet());
    Link& to_outside =
        network_.MakeLink("tap->outside", outside_, FastEthernet());
    tap_.SetLinks(to_inside, to_outside);
  }

  InlineTap& tap_;
  SinkNode& inside_;
  SinkNode& outside_;
};

TEST_F(TapFixture, ForwardsToOppositeSide) {
  Datagram d;
  d.payload = "x";
  tap_.port_from_outside().Receive(d);
  tap_.port_from_inside().Receive(d);
  scheduler_.Run();
  EXPECT_EQ(inside_.received.size(), 1u);
  EXPECT_EQ(outside_.received.size(), 1u);
  EXPECT_EQ(tap_.packets_seen(), 2u);
}

TEST_F(TapFixture, NullInspectorAddsNoDelay) {
  Datagram d;
  d.payload = "x";
  tap_.port_from_outside().Receive(d);
  scheduler_.Run();
  // Only the outgoing link's delay applies (FastEthernet ~ 8.3us).
  EXPECT_LT(scheduler_.Now().ToSeconds(), 0.001);
  EXPECT_EQ(tap_.cpu_time_used(), sim::Duration{});
}

TEST_F(TapFixture, InspectorChargesSerializedCpuTime) {
  tap_.SetInspector([](const Datagram&, bool) {
    return sim::Duration::Millis(10);
  });
  Datagram d;
  d.payload = "x";
  tap_.port_from_outside().Receive(d);
  tap_.port_from_outside().Receive(d);  // queues behind the first
  scheduler_.Run();
  ASSERT_EQ(inside_.received.size(), 2u);
  // Second packet leaves the CPU at 20 ms.
  EXPECT_GE(scheduler_.Now(), sim::Time{} + sim::Duration::Millis(20));
  EXPECT_EQ(tap_.cpu_time_used(), sim::Duration::Millis(20));
}

TEST_F(TapFixture, InspectorSeesTrueArrivalDirection) {
  std::vector<bool> directions;
  tap_.SetInspector([&](const Datagram&, bool from_outside) {
    directions.push_back(from_outside);
    return sim::Duration{};
  });
  Datagram d;
  d.payload = "x";
  tap_.port_from_outside().Receive(d);
  tap_.port_from_inside().Receive(d);
  scheduler_.Run();
  EXPECT_EQ(directions, (std::vector<bool>{true, false}));
}

TEST_F(TapFixture, MonitorSeesPacketsWithoutCost) {
  int monitored = 0;
  tap_.SetMonitor([&](const Datagram&, bool) { ++monitored; });
  Datagram d;
  d.payload = "x";
  tap_.port_from_inside().Receive(d);
  scheduler_.Run();
  EXPECT_EQ(monitored, 1);
  EXPECT_EQ(tap_.cpu_time_used(), sim::Duration{});
}

}  // namespace
}  // namespace vids::net
