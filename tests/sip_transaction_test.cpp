#include <gtest/gtest.h>

#include "net/host.h"
#include "net/network.h"
#include "sip/transaction.h"

namespace vids::sip {
namespace {

class TransactionFixture : public ::testing::Test {
 protected:
  TransactionFixture()
      : network_(scheduler_, 1),
        host_a_(network_.AddNode<net::Host>(network_, "a",
                                            net::IpAddress(10, 0, 0, 1))),
        host_b_(network_.AddNode<net::Host>(network_, "b",
                                            net::IpAddress(10, 0, 0, 2))),
        transport_a_(host_a_),
        transport_b_(host_b_),
        layer_a_(scheduler_, transport_a_),
        layer_b_(scheduler_, transport_b_) {
    auto [a_to_b, b_to_a] =
        network_.ConnectDuplex(host_a_, host_b_, net::FastEthernet());
    host_a_.SetUplink(a_to_b);
    host_b_.SetUplink(b_to_a);

    layer_b_.SetCore(TransactionLayer::Core{
        .on_request =
            [this](ServerTransaction& tx) { b_requests_.push_back(&tx); },
        .on_ack = [this](const Message&, const net::Datagram&) { ++b_acks_; },
        .on_stray_response = [](const Message&, const net::Datagram&) {},
    });
  }

  Message MakeRequest(Method method) {
    Message request = Message::MakeRequest(
        method, SipUri{.user = "bob", .host = "10.0.0.2", .port = 0,
                       .params = ""});
    Via via;
    via.sent_by = transport_a_.local();
    via.branch = layer_a_.NewBranch();
    request.PushVia(via);
    NameAddr from;
    from.uri = SipUri{.user = "alice", .host = "10.0.0.1", .port = 0,
                      .params = ""};
    from.SetTag("t-alice");
    request.SetFrom(from);
    NameAddr to;
    to.uri = SipUri{.user = "bob", .host = "10.0.0.2", .port = 0, .params = ""};
    request.SetTo(to);
    request.SetCallId("call-1@test");
    request.SetCseq(CSeq{1, method});
    return request;
  }

  net::Endpoint b_endpoint() { return transport_b_.local(); }

  sim::Scheduler scheduler_;
  net::Network network_;
  net::Host& host_a_;
  net::Host& host_b_;
  Transport transport_a_;
  Transport transport_b_;
  TransactionLayer layer_a_;
  TransactionLayer layer_b_;
  std::vector<ServerTransaction*> b_requests_;
  int b_acks_ = 0;
};

TEST_F(TransactionFixture, NonInviteRequestResponse) {
  std::vector<int> statuses;
  layer_a_.StartClient(
      MakeRequest(Method::kOptions), b_endpoint(),
      [&](const Message& response) { statuses.push_back(response.status()); },
      [] { FAIL() << "unexpected timeout"; });
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(100));
  ASSERT_EQ(b_requests_.size(), 1u);
  b_requests_[0]->Respond(b_requests_[0]->MakeResponse(200, "tag-bob"));
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(200));
  EXPECT_EQ(statuses, (std::vector<int>{200}));
  EXPECT_EQ(b_requests_[0]->state(), TxState::kCompleted);
}

TEST_F(TransactionFixture, NonInviteRetransmitsUntilResponse) {
  // No responder on this port: watch timer E retransmissions, then timer F.
  bool timed_out = false;
  layer_a_.StartClient(MakeRequest(Method::kOptions),
                       net::Endpoint{host_b_.ip(), 9999},  // nobody listens
                       [](const Message&) { FAIL(); },
                       [&] { timed_out = true; });
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(40));
  EXPECT_TRUE(timed_out);
  // Timer E: T1=500ms doubling, capped at T2=4s, until timer F at 64*T1:
  // sends at 0, 0.5, 1.5, 3.5, 7.5, 11.5, ..., 31.5 s → 11 total.
  EXPECT_EQ(transport_a_.messages_sent(), 11u);
}

TEST_F(TransactionFixture, InviteStopsRetransmittingOnProvisional) {
  layer_a_.StartClient(MakeRequest(Method::kInvite), b_endpoint(),
                       [](const Message&) {}, [] {});
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(100));
  ASSERT_EQ(b_requests_.size(), 1u);
  b_requests_[0]->Respond(b_requests_[0]->MakeResponse(180, "tag-bob"));
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(10));
  // Only the original INVITE was sent: 1xx froze timer A.
  EXPECT_EQ(transport_a_.messages_sent(), 1u);
}

TEST_F(TransactionFixture, InviteNon2xxGetsAutoAcked) {
  std::vector<int> statuses;
  layer_a_.StartClient(
      MakeRequest(Method::kInvite), b_endpoint(),
      [&](const Message& response) { statuses.push_back(response.status()); },
      [] {});
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(100));
  ASSERT_EQ(b_requests_.size(), 1u);
  ServerTransaction* tx = b_requests_[0];
  tx->Respond(tx->MakeResponse(486, "tag-bob"));
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(1));
  EXPECT_EQ(statuses, (std::vector<int>{486}));
  // The ACK reached B's INVITE server transaction → Confirmed.
  EXPECT_EQ(tx->state(), TxState::kConfirmed);
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(10));
  // Timer I fired: the transaction terminated and was collected — the
  // pointer is dead now, so assert through the layer, not through it.
  EXPECT_EQ(layer_b_.active_servers(), 0u);
}

TEST_F(TransactionFixture, Invite2xxTerminatesAndAckGoesToCore) {
  std::vector<int> statuses;
  layer_a_.StartClient(
      MakeRequest(Method::kInvite), b_endpoint(),
      [&](const Message& response) { statuses.push_back(response.status()); },
      [] {});
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(100));
  ASSERT_EQ(b_requests_.size(), 1u);
  b_requests_[0]->Respond(b_requests_[0]->MakeResponse(200, "tag-bob"));
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(200));
  ASSERT_EQ(statuses, (std::vector<int>{200}));

  // The TU sends the ACK end-to-end (stateless).
  Message ack = MakeRequest(Method::kAck);
  ack.SetCseq(CSeq{1, Method::kAck});
  layer_a_.SendStateless(ack, b_endpoint());
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(300));
  EXPECT_EQ(b_acks_, 1);
}

TEST_F(TransactionFixture, ServerRetransmitAnswersWithLastResponse) {
  layer_a_.StartClient(MakeRequest(Method::kInvite), b_endpoint(),
                       [](const Message&) {}, [] {});
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(100));
  ASSERT_EQ(b_requests_.size(), 1u);
  ServerTransaction* tx = b_requests_[0];
  tx->Respond(tx->MakeResponse(180, "tag-bob"));
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(200));
  const auto sent_before = transport_b_.messages_sent();

  // A retransmitted INVITE (same branch) must NOT create a new transaction;
  // B resends the 180.
  Message retransmit = tx->request();
  transport_a_.Send(retransmit, b_endpoint());
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(300));
  EXPECT_EQ(b_requests_.size(), 1u);
  EXPECT_EQ(transport_b_.messages_sent(), sent_before + 1);
}

TEST_F(TransactionFixture, CancelFindsItsInviteServerTransaction) {
  layer_a_.StartClient(MakeRequest(Method::kInvite), b_endpoint(),
                       [](const Message&) {}, [] {});
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(100));
  ASSERT_EQ(b_requests_.size(), 1u);
  ServerTransaction* invite_tx = b_requests_[0];

  // CANCEL with the same branch as the INVITE (§9.1).
  Message cancel = Message::MakeRequest(Method::kCancel,
                                        invite_tx->request().request_uri());
  cancel.PushVia(*invite_tx->request().TopVia());
  cancel.SetFrom(*invite_tx->request().From());
  cancel.SetTo(*invite_tx->request().To());
  cancel.SetCallId(std::string(*invite_tx->request().CallId()));
  cancel.SetCseq(CSeq{1, Method::kCancel});
  transport_a_.Send(cancel, b_endpoint());
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(200));

  // The CANCEL created its own server transaction and can locate the INVITE.
  ASSERT_EQ(b_requests_.size(), 2u);
  EXPECT_EQ(b_requests_[1]->method(), Method::kCancel);
  EXPECT_EQ(layer_b_.FindInviteServer(b_requests_[1]->request()), invite_tx);
}

TEST_F(TransactionFixture, ClientRequiresViaBranch) {
  Message bad = Message::MakeRequest(
      Method::kOptions, SipUri{.user = "x", .host = "h", .port = 0,
                               .params = ""});
  EXPECT_THROW(
      layer_a_.StartClient(std::move(bad), b_endpoint(),
                           [](const Message&) {}, [] {}),
      std::invalid_argument);
}

TEST_F(TransactionFixture, TerminatedTransactionsAreCollected) {
  layer_a_.StartClient(MakeRequest(Method::kOptions), b_endpoint(),
                       [](const Message&) {}, [] {});
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Millis(100));
  ASSERT_EQ(b_requests_.size(), 1u);
  b_requests_[0]->Respond(b_requests_[0]->MakeResponse(200, "tag-bob"));
  // Timer K (client, T4=5s) and timer J (server, 64*T1=32s) must both
  // expire, then the collector erases the transactions.
  scheduler_.RunUntil(sim::Time{} + sim::Duration::Seconds(60));
  EXPECT_EQ(layer_a_.active_clients(), 0u);
  EXPECT_EQ(layer_b_.active_servers(), 0u);
}

}  // namespace
}  // namespace vids::sip
