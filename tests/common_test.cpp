#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "common/backoff.h"
#include "common/log.h"
#include "common/payload_arena.h"
#include "common/rng.h"
#include "common/spsc_ring.h"
#include "common/strings.h"

namespace vids::common {
namespace {

// ---------------------------------------------------------------- logging

/// Restores the global logger to its defaults when a test ends.
class ScopedLogConfig {
 public:
  ScopedLogConfig() = default;
  ~ScopedLogConfig() {
    Log::SetLevel(LogLevel::kWarn);
    Log::SetSink(nullptr);
    Log::SetClock(nullptr);
  }
};

TEST(Log, SinkReceivesClockAndComponentPrefixes) {
  ScopedLogConfig scoped;
  Log::SetLevel(LogLevel::kInfo);
  std::vector<std::string> lines;
  Log::SetSink([&lines](LogLevel, const std::string& msg) {
    lines.push_back(msg);
  });
  Log::SetClock([] { return int64_t{1500000000}; });  // t = 1.5 s
  VIDS_INFO_C("sip") << "hello";
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "[t=1.500000s] [sip] hello");

  // Untagged lines still get the clock prefix; clearing the clock drops it.
  VIDS_INFO() << "plain";
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "[t=1.500000s] plain");
  Log::SetClock(nullptr);
  VIDS_INFO_C("rtp") << "later";
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[2], "[rtp] later");
}

TEST(Log, LevelFilterSuppressesBelowThreshold) {
  ScopedLogConfig scoped;
  Log::SetLevel(LogLevel::kWarn);
  int calls = 0;
  Log::SetSink([&calls](LogLevel, const std::string&) { ++calls; });
  VIDS_DEBUG_C("sip") << "dropped";
  VIDS_INFO() << "dropped";
  VIDS_WARN() << "kept";
  EXPECT_EQ(calls, 1);
}

TEST(Log, SinkMayRemoveItselfMidInvocation) {
  // Regression: a sink resetting the sink from inside its own invocation
  // used to destroy the std::function it was executing.
  ScopedLogConfig scoped;
  Log::SetLevel(LogLevel::kInfo);
  int calls = 0;
  Log::SetSink([&calls](LogLevel, const std::string&) {
    ++calls;
    Log::SetSink(nullptr);  // one-shot sink
  });
  VIDS_INFO() << "first";   // delivered, then the sink removes itself
  EXPECT_EQ(calls, 1);
}

TEST(Log, SinkMayReplaceItselfMidInvocation) {
  ScopedLogConfig scoped;
  Log::SetLevel(LogLevel::kInfo);
  std::vector<std::string> second_lines;
  Log::SetSink([&second_lines](LogLevel, const std::string&) {
    Log::SetSink([&second_lines](LogLevel, const std::string& msg) {
      second_lines.push_back(msg);
    });
  });
  VIDS_INFO() << "handover";
  VIDS_INFO() << "to-second";
  ASSERT_EQ(second_lines.size(), 1u);
  EXPECT_EQ(second_lines[0], "to-second");
}

// ---------------------------------------------------------------- strings

TEST(Strings, TrimRemovesLinearWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\r\nhello\t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a"), "a");
}

TEST(Strings, SplitKeepsEmptyPieces) {
  const auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(Strings, SplitTrimsEachPiece) {
  const auto parts = Split(" x ; y ; z ", ';');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "x");
  EXPECT_EQ(parts[1], "y");
  EXPECT_EQ(parts[2], "z");
}

TEST(Strings, SplitOnceFindsFirstSeparatorOnly) {
  const auto split = SplitOnce("CSeq: 1 INVITE: x", ':');
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->first, "CSeq");
  EXPECT_EQ(split->second, "1 INVITE: x");
  EXPECT_FALSE(SplitOnce("no-separator", ':').has_value());
}

TEST(Strings, IEqualsIsCaseInsensitive) {
  EXPECT_TRUE(IEquals("Call-ID", "CALL-id"));
  EXPECT_TRUE(IEquals("", ""));
  EXPECT_FALSE(IEquals("From", "Fro"));
  EXPECT_FALSE(IEquals("From", "To"));
}

TEST(Strings, IStartsWith) {
  EXPECT_TRUE(IStartsWith("SIP/2.0 200 OK", "sip/2.0"));
  EXPECT_FALSE(IStartsWith("SI", "SIP"));
}

TEST(Strings, ParseIntAcceptsWholeTokenOnly) {
  EXPECT_EQ(ParseInt<int>("42"), 42);
  EXPECT_EQ(ParseInt<int>(" 42 "), 42);
  EXPECT_EQ(ParseInt<uint16_t>("65535"), 65535);
  EXPECT_FALSE(ParseInt<uint16_t>("65536").has_value());  // overflow
  EXPECT_FALSE(ParseInt<int>("42x").has_value());
  EXPECT_FALSE(ParseInt<int>("").has_value());
  EXPECT_FALSE(ParseInt<int>("x").has_value());
}

TEST(Strings, ToLowerIsAsciiOnly) {
  EXPECT_EQ(ToLower("SIP/2.0-Invite"), "sip/2.0-invite");
}

TEST(Strings, JoinInvertsSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

// -------------------------------------------------------------------- rng

TEST(Rng, SameSeedAndNameReproduces) {
  Stream a(7, "calls");
  Stream b(7, "calls");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentNamesDecorrelate) {
  Stream a(7, "calls");
  Stream b(7, "media");
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkIsDeterministic) {
  Stream parent1(7, "x");
  Stream parent2(7, "x");
  Stream child1 = parent1.Fork("c");
  Stream child2 = parent2.Fork("c");
  EXPECT_EQ(child1.Next(), child2.Next());
}

TEST(Rng, DoubleInUnitInterval) {
  Stream s(1, "d");
  for (int i = 0; i < 10000; ++i) {
    const double v = s.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, RangeIsInclusive) {
  Stream s(1, "r");
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(s.NextInRange(3, 5));
  EXPECT_EQ(seen, (std::set<uint64_t>{3, 4, 5}));
}

TEST(Rng, ExponentialHasRoughlyRightMean) {
  Stream s(1, "e");
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += s.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, BernoulliRespectsProbability) {
  Stream s(1, "b");
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += s.NextBernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Stream s(1, "n");
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = s.NextNormal(10.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double stddev = std::sqrt(sum_sq / n - mean * mean);
  EXPECT_NEAR(mean, 10.0, 0.15);
  EXPECT_NEAR(stddev, 3.0, 0.15);
}

// ---------------------------------------------------------------- backoff

TEST(SpinBackoff, SleepsOnlyAfterSpinBudgetAndResetRestartsIt) {
  // sleep_micros = 0 keeps the test fast: the sleep path still counts via
  // sleeps() but degrades to a yield.
  SpinBackoff backoff(/*spins=*/4, /*sleep_micros=*/0);
  for (int i = 0; i < 3; ++i) backoff.Pause();
  EXPECT_EQ(backoff.sleeps(), 0u);  // still inside the spin budget
  for (int i = 0; i < 5; ++i) backoff.Pause();
  EXPECT_EQ(backoff.sleeps(), 5u);  // every pause past the budget sleeps
  backoff.Reset();                  // useful work: spin again
  for (int i = 0; i < 3; ++i) backoff.Pause();
  EXPECT_EQ(backoff.sleeps(), 5u);
}

TEST(SpinBackoff, DefaultsComeFromNamedConstants) {
  SpinBackoff backoff;
  for (int i = 0; i < kSpinsBeforeSleep - 1; ++i) backoff.Pause();
  EXPECT_EQ(backoff.sleeps(), 0u);
}

// ---------------------------------------------------------- payload arena

TEST(PayloadArena, StoresAndReadsBackPerSlot) {
  PayloadArena arena(/*slots=*/4, /*slot_bytes=*/16);
  EXPECT_EQ(arena.slot_bytes(), 16u);
  EXPECT_GE(arena.MemoryBytes(), 4u * 16u);
  const std::string a = "alpha-payload";
  const std::string b(16, 'x');  // exactly slot_bytes must still fit
  arena.Store(0, a.data(), a.size());
  arena.Store(3, b.data(), b.size());
  EXPECT_EQ(std::string(arena.Slot(0), a.size()), a);
  EXPECT_EQ(std::string(arena.Slot(3), b.size()), b);
  // Slots are reused in place, exactly like the paired ring's slots.
  const std::string c = "beta";
  arena.Store(0, c.data(), c.size());
  EXPECT_EQ(std::string(arena.Slot(0), c.size()), c);
}

TEST(PayloadArena, FitsRespectsSlotBoundsAndDisabledArena) {
  PayloadArena arena(8, 32);
  EXPECT_TRUE(arena.Fits(0));
  EXPECT_TRUE(arena.Fits(32));
  EXPECT_FALSE(arena.Fits(33));  // jumbo payloads take the fallback path
  // slot_bytes == 0 disables the fast path entirely: nothing "fits", not
  // even an empty payload, so callers never touch the zero-byte slab.
  PayloadArena disabled(8, 0);
  EXPECT_FALSE(disabled.Fits(0));
  EXPECT_FALSE(disabled.Fits(1));
  EXPECT_EQ(disabled.MemoryBytes(), 0u);
}

// ------------------------------------------- producer-side occupancy gauge

TEST(SpscRing, SizeFromProducerTracksDepthAcrossLaps) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.SizeFromProducer(), 0u);
  // An open (uncommitted) batch counts: the gauge reports bytes-at-risk in
  // the lane, not just what the consumer can already see.
  *ring.BeginPushN() = 1;
  *ring.BeginPushN() = 2;
  EXPECT_EQ(ring.SizeFromProducer(), 2u);
  ring.CommitPushN();
  EXPECT_EQ(ring.SizeFromProducer(), 2u);
  // Drive many laps with a consumer that always drains. The gauge may
  // overestimate (the head cache refreshes lazily — the right bias for a
  // high-water mark), but it must never under-report the true occupancy
  // and never exceed capacity. Without the bounded-staleness refresh a
  // producer that never hits backpressure would report tail-minus-ancient-
  // head: a many-lap phantom depth growing without bound.
  for (int lap = 0; lap < 5; ++lap) {
    ASSERT_EQ(ring.FrontN(4), 2u);
    ring.PopN(2);
    for (int i = 0; i < 2; ++i) {
      int* slot = ring.BeginPush();
      ASSERT_NE(slot, nullptr);
      *slot = lap * 10 + i;
      ring.CommitPush();
    }
    EXPECT_GE(ring.SizeFromProducer(), 2u);               // never under
    EXPECT_LE(ring.SizeFromProducer(), ring.capacity());  // never phantom
  }
}

TEST(SpscRing, SizeFromProducerSaturatesAtCapacityWhenFull) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int* slot = ring.BeginPush();
    ASSERT_NE(slot, nullptr);
    *slot = i;
    ring.CommitPush();
  }
  EXPECT_EQ(ring.BeginPush(), nullptr);  // full is backpressure, not growth
  EXPECT_EQ(ring.SizeFromProducer(), ring.capacity());
  ring.FrontN(1);
  ring.PopN(1);
  // The pop may not be visible yet (overestimate is allowed) but the gauge
  // stays within [true occupancy, capacity].
  EXPECT_GE(ring.SizeFromProducer(), ring.capacity() - 1);
  EXPECT_LE(ring.SizeFromProducer(), ring.capacity());
  // A successful push refreshes the cache: exact again, at capacity.
  int* slot = ring.BeginPush();
  ASSERT_NE(slot, nullptr);
  *slot = 99;
  ring.CommitPush();
  EXPECT_EQ(ring.SizeFromProducer(), ring.capacity());
}

}  // namespace
}  // namespace vids::common
