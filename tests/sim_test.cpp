#include <gtest/gtest.h>

#include <vector>

#include "sim/scheduler.h"
#include "sim/time.h"

namespace vids::sim {
namespace {

TEST(Time, DurationArithmetic) {
  EXPECT_EQ(Duration::Millis(1), Duration::Micros(1000));
  EXPECT_EQ(Duration::Seconds(1).nanos(), 1'000'000'000);
  EXPECT_EQ((Duration::Millis(3) - Duration::Millis(1)), Duration::Millis(2));
  EXPECT_EQ(Duration::Millis(2) * 3, Duration::Millis(6));
  EXPECT_EQ(Duration::Millis(6) / 2, Duration::Millis(3));
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_DOUBLE_EQ(Duration::Millis(1500).ToSeconds(), 1.5);
}

TEST(Time, FromSecondsRoundsToNanos) {
  EXPECT_EQ(Duration::FromSeconds(0.5), Duration::Millis(500));
  EXPECT_EQ(Duration::FromSeconds(1e-9), Duration::Nanos(1));
}

TEST(Time, TimePlusDuration) {
  const Time t = Time::FromNanos(100) + Duration::Nanos(50);
  EXPECT_EQ(t.nanos(), 150);
  EXPECT_EQ(t - Time::FromNanos(100), Duration::Nanos(50));
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(Time::FromNanos(300), [&] { order.push_back(3); });
  sched.ScheduleAt(Time::FromNanos(100), [&] { order.push_back(1); });
  sched.ScheduleAt(Time::FromNanos(200), [&] { order.push_back(2); });
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.Now(), Time::FromNanos(300));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sched.ScheduleAt(Time::FromNanos(100), [&order, i] { order.push_back(i); });
  }
  sched.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterIsRelativeToNow) {
  Scheduler sched;
  Time fired;
  sched.ScheduleAfter(Duration::Millis(10), [&] {
    sched.ScheduleAfter(Duration::Millis(5), [&] { fired = sched.Now(); });
  });
  sched.Run();
  EXPECT_EQ(fired, Time::FromNanos(15'000'000));
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  auto id = sched.ScheduleAfter(Duration::Millis(1), [&] { ran = true; });
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));  // double-cancel is a no-op
  sched.Run();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelAfterRunReturnsFalse) {
  Scheduler sched;
  auto id = sched.ScheduleAfter(Duration{}, [] {});
  sched.Run();
  EXPECT_FALSE(sched.Cancel(id));
}

TEST(Scheduler, DefaultEventIdIsInert) {
  Scheduler sched;
  Scheduler::EventId id;
  EXPECT_FALSE(sched.Cancel(id));
}

TEST(Scheduler, RunUntilStopsAtDeadlineAndAdvancesClock) {
  Scheduler sched;
  int count = 0;
  sched.ScheduleAt(Time::FromNanos(100), [&] { ++count; });
  sched.ScheduleAt(Time::FromNanos(2000), [&] { ++count; });
  sched.RunUntil(Time::FromNanos(1000));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(sched.Now(), Time::FromNanos(1000));
  EXPECT_EQ(sched.PendingEvents(), 1u);
  sched.Run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, SchedulingInThePastThrows) {
  Scheduler sched;
  sched.ScheduleAt(Time::FromNanos(100), [] {});
  sched.Run();
  EXPECT_THROW(sched.ScheduleAt(Time::FromNanos(50), [] {}),
               std::invalid_argument);
  EXPECT_THROW(sched.ScheduleAfter(Duration::Nanos(-1), [] {}),
               std::invalid_argument);
}

TEST(Scheduler, CancelAfterFireIsANoOp) {
  Scheduler sched;
  auto first = sched.ScheduleAfter(Duration::Millis(1), [] {});
  bool second_ran = false;
  auto second =
      sched.ScheduleAfter(Duration::Millis(2), [&] { second_ran = true; });
  EXPECT_TRUE(sched.Step());
  EXPECT_FALSE(sched.IsPending(first));
  EXPECT_FALSE(sched.Cancel(first));  // already fired
  EXPECT_TRUE(sched.IsPending(second));
  sched.Run();
  EXPECT_TRUE(second_ran);
}

TEST(Scheduler, StaleHandleCannotCancelRecycledSlot) {
  Scheduler sched;
  bool a_ran = false;
  bool b_ran = false;
  auto a = sched.ScheduleAfter(Duration::Millis(1), [&] { a_ran = true; });
  const auto stale = a;  // copy taken before the slot is released
  EXPECT_TRUE(sched.Cancel(a));
  // The next event recycles a's slot under a bumped generation; the stale
  // copy must not be able to cancel it.
  auto b = sched.ScheduleAfter(Duration::Millis(2), [&] { b_ran = true; });
  auto stale_copy = stale;
  EXPECT_FALSE(sched.IsPending(stale));
  EXPECT_FALSE(sched.Cancel(stale_copy));
  EXPECT_TRUE(sched.IsPending(b));
  sched.Run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
}

TEST(Scheduler, HandleGoesStaleBeforeItsCallbackRuns) {
  Scheduler sched;
  Scheduler::EventId id;
  bool cancel_result = true;
  id = sched.ScheduleAfter(Duration::Millis(1),
                           [&] { cancel_result = sched.Cancel(id); });
  sched.Run();
  EXPECT_FALSE(cancel_result);  // a firing event cannot cancel itself
  EXPECT_EQ(sched.ExecutedEvents(), 1u);
}

TEST(Scheduler, PendingEventsExcludesCancelled) {
  Scheduler sched;
  Scheduler::EventId ids[3];
  int ran = 0;
  for (auto& id : ids) {
    id = sched.ScheduleAfter(Duration::Millis(1), [&] { ++ran; });
  }
  EXPECT_EQ(sched.PendingEvents(), 3u);
  EXPECT_TRUE(sched.Cancel(ids[1]));
  EXPECT_EQ(sched.PendingEvents(), 2u);
  sched.Run();
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(sched.ExecutedEvents(), 2u);
}

TEST(Scheduler, ExecutedEventsCounts) {
  Scheduler sched;
  for (int i = 0; i < 7; ++i) sched.ScheduleAfter(Duration::Nanos(i), [] {});
  sched.Run();
  EXPECT_EQ(sched.ExecutedEvents(), 7u);
}

TEST(Timer, StartFiresOnce) {
  Scheduler sched;
  Timer timer(sched);
  int fired = 0;
  timer.Start(Duration::Millis(5), [&] { ++fired; });
  EXPECT_TRUE(timer.IsRunning());
  sched.Run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(timer.IsRunning());
}

TEST(Timer, RestartCancelsPrevious) {
  Scheduler sched;
  Timer timer(sched);
  std::vector<int> fired;
  timer.Start(Duration::Millis(5), [&] { fired.push_back(1); });
  timer.Start(Duration::Millis(10), [&] { fired.push_back(2); });
  sched.Run();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(Timer, CancelStops) {
  Scheduler sched;
  Timer timer(sched);
  bool ran = false;
  timer.Start(Duration::Millis(5), [&] { ran = true; });
  timer.Cancel();
  sched.Run();
  EXPECT_FALSE(ran);
  EXPECT_FALSE(timer.IsRunning());
}

TEST(Timer, DestructorCancels) {
  Scheduler sched;
  bool ran = false;
  {
    Timer timer(sched);
    timer.Start(Duration::Millis(5), [&] { ran = true; });
  }
  sched.Run();
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace vids::sim
