// Proxy behaviors in isolation: registrar binding, request routing, 404s,
// response forwarding along Vias, CANCEL propagation, and Max-Forwards
// loop protection (two proxies misconfigured to point at each other).
#include <gtest/gtest.h>

#include "net/forwarder.h"
#include "net/host.h"
#include "net/network.h"
#include "sip/proxy.h"

namespace vids::sip {
namespace {

class ProxyFixture : public ::testing::Test {
 protected:
  ProxyFixture() : network_(scheduler_, 1) {
    // Two proxy hosts and one UA-ish host, all on one LAN segment via a
    // forwarder so anything can reach anything.
    hub_ = &network_.AddNode<net::Forwarder>("hub");
    proxy_host_a_ = AddHost("pa", net::IpAddress(10, 0, 0, 1));
    proxy_host_b_ = AddHost("pb", net::IpAddress(10, 0, 0, 2));
    ua_host_ = AddHost("ua", net::IpAddress(10, 0, 0, 10));

    // Proxy A authoritative for a.example, B for b.example; each knows the
    // other — including (deliberately) bogus entries that form a loop for
    // the domain "loop.example".
    DomainDirectory directory_a;
    directory_a["b.example"] = net::Endpoint{proxy_host_b_->ip(), 5060};
    directory_a["loop.example"] = net::Endpoint{proxy_host_b_->ip(), 5060};
    DomainDirectory directory_b;
    directory_b["a.example"] = net::Endpoint{proxy_host_a_->ip(), 5060};
    directory_b["loop.example"] = net::Endpoint{proxy_host_a_->ip(), 5060};

    Proxy::Config config_a;
    config_a.domain = "a.example";
    config_a.directory = directory_a;
    proxy_a_ = std::make_unique<Proxy>(scheduler_, *proxy_host_a_, config_a);
    Proxy::Config config_b;
    config_b.domain = "b.example";
    config_b.directory = directory_b;
    proxy_b_ = std::make_unique<Proxy>(scheduler_, *proxy_host_b_, config_b);

    transport_ = std::make_unique<Transport>(*ua_host_, 5060);
    layer_ = std::make_unique<TransactionLayer>(scheduler_, *transport_);
  }

  net::Host* AddHost(const std::string& name, net::IpAddress ip) {
    auto& host = network_.AddNode<net::Host>(network_, name, ip);
    auto [to_host, to_hub] =
        network_.ConnectDuplex(*hub_, host, net::FastEthernet());
    host.SetUplink(to_hub);
    hub_->AddRoute(net::Subnet(ip, 32), to_host);
    return &host;
  }

  Message MakeRequest(Method method, const std::string& user,
                      const std::string& domain) {
    Message request = Message::MakeRequest(
        method, SipUri{.user = user, .host = domain, .port = 0, .params = ""});
    Via via;
    via.sent_by = transport_->local();
    via.branch = layer_->NewBranch();
    request.PushVia(via);
    NameAddr from;
    from.uri = SipUri{.user = "tester", .host = "a.example", .port = 0,
                      .params = ""};
    from.SetTag("t1");
    request.SetFrom(from);
    NameAddr to;
    to.uri = SipUri{.user = user, .host = domain, .port = 0, .params = ""};
    request.SetTo(to);
    request.SetCallId(user + "-test@ua");
    request.SetCseq(CSeq{1, method});
    NameAddr contact;
    contact.uri.user = "tester";
    contact.uri.host = ua_host_->ip().ToString();
    contact.uri.port = 5060;
    request.SetContact(contact);
    return request;
  }

  net::Endpoint proxy_a_endpoint() {
    return net::Endpoint{proxy_host_a_->ip(), 5060};
  }

  // Sends `request` to proxy A, returns the final status (0 on timeout).
  int SendAndAwaitFinal(Message request,
                        sim::Duration wait = sim::Duration::Seconds(40)) {
    int final_status = 0;
    layer_->StartClient(
        std::move(request), proxy_a_endpoint(),
        [&](const Message& response) {
          if (response.status() >= 200) final_status = response.status();
        },
        [] {});
    scheduler_.RunUntil(scheduler_.Now() + wait);
    return final_status;
  }

  sim::Scheduler scheduler_;
  net::Network network_;
  net::Forwarder* hub_ = nullptr;
  net::Host* proxy_host_a_ = nullptr;
  net::Host* proxy_host_b_ = nullptr;
  net::Host* ua_host_ = nullptr;
  std::unique_ptr<Proxy> proxy_a_;
  std::unique_ptr<Proxy> proxy_b_;
  std::unique_ptr<Transport> transport_;
  std::unique_ptr<TransactionLayer> layer_;
};

TEST_F(ProxyFixture, RegisterBindsAndOverwrites) {
  EXPECT_EQ(SendAndAwaitFinal(MakeRequest(Method::kRegister, "tester",
                                          "a.example")),
            200);
  EXPECT_EQ(proxy_a_->binding_count(), 1u);
  // Re-REGISTER from the same UA overwrites, not duplicates.
  EXPECT_EQ(SendAndAwaitFinal(MakeRequest(Method::kRegister, "tester",
                                          "a.example")),
            200);
  EXPECT_EQ(proxy_a_->binding_count(), 1u);
}

TEST_F(ProxyFixture, RegisterForForeignDomainRefused) {
  EXPECT_EQ(SendAndAwaitFinal(MakeRequest(Method::kRegister, "tester",
                                          "b.example")),
            403);
}

TEST_F(ProxyFixture, RegisterWithoutContactIsBadRequest) {
  auto request = MakeRequest(Method::kRegister, "tester", "a.example");
  request.RemoveHeader("Contact");
  EXPECT_EQ(SendAndAwaitFinal(std::move(request)), 400);
}

TEST_F(ProxyFixture, UnknownLocalUserGets404) {
  EXPECT_EQ(SendAndAwaitFinal(MakeRequest(Method::kOptions, "nobody",
                                          "a.example")),
            404);
}

TEST_F(ProxyFixture, UnknownDomainGets404) {
  EXPECT_EQ(SendAndAwaitFinal(MakeRequest(Method::kOptions, "x",
                                          "mars.example")),
            404);
}

TEST_F(ProxyFixture, RequestForLocalUserRoutedToItsBinding) {
  // Bind ourselves, then OPTIONS ourselves through the proxy: the request
  // must come back to our own transport (the registrar's routing works).
  SendAndAwaitFinal(MakeRequest(Method::kRegister, "tester", "a.example"));
  // Our transaction layer auto-creates a server transaction and our core
  // is unset — install one that answers OPTIONS.
  int options_received = 0;
  layer_->SetCore(TransactionLayer::Core{
      .on_request =
          [&](ServerTransaction& tx) {
            ++options_received;
            tx.Respond(tx.MakeResponse(200, "tag-x"));
          },
      .on_ack = [](const Message&, const net::Datagram&) {},
      .on_stray_response = [](const Message&, const net::Datagram&) {},
  });
  EXPECT_EQ(SendAndAwaitFinal(MakeRequest(Method::kOptions, "tester",
                                          "a.example")),
            200);
  EXPECT_EQ(options_received, 1);
  EXPECT_EQ(proxy_a_->requests_proxied(), 1u);
}

TEST_F(ProxyFixture, CrossDomainRequestTraversesBothProxies) {
  // Bind "remote@b.example" at proxy B directly, then call through A.
  proxy_b_->AddBinding("remote@b.example",
                       net::Endpoint{ua_host_->ip(), 5060});
  int requests_seen = 0;
  layer_->SetCore(TransactionLayer::Core{
      .on_request =
          [&](ServerTransaction& tx) {
            ++requests_seen;
            tx.Respond(tx.MakeResponse(200, "tag-x"));
          },
      .on_ack = [](const Message&, const net::Datagram&) {},
      .on_stray_response = [](const Message&, const net::Datagram&) {},
  });
  EXPECT_EQ(SendAndAwaitFinal(MakeRequest(Method::kOptions, "remote",
                                          "b.example")),
            200);
  EXPECT_EQ(requests_seen, 1);
  // The request crossed A (forwarded) and B (forwarded to the binding).
  EXPECT_EQ(proxy_a_->requests_proxied(), 1u);
  EXPECT_EQ(proxy_b_->requests_proxied(), 1u);
  // Two Vias were added and shed symmetrically: the response reached us
  // with our own Via only (otherwise the transaction would not match).
}

TEST_F(ProxyFixture, RoutingLoopKilledByMaxForwards) {
  // "loop.example" bounces A→B→A→… until Max-Forwards hits zero and one
  // proxy answers 483 Too Many Hops.
  auto request = MakeRequest(Method::kOptions, "x", "loop.example");
  request.SetMaxForwards(12);
  EXPECT_EQ(SendAndAwaitFinal(std::move(request)), 483);
  // The request bounced between the proxies ~12 times, not forever.
  EXPECT_LE(proxy_a_->requests_proxied() + proxy_b_->requests_proxied(), 13u);
  EXPECT_GE(proxy_a_->requests_proxied() + proxy_b_->requests_proxied(), 11u);
}

TEST_F(ProxyFixture, NumericRequestUriBypassesLocationService) {
  int requests_seen = 0;
  layer_->SetCore(TransactionLayer::Core{
      .on_request =
          [&](ServerTransaction& tx) {
            ++requests_seen;
            tx.Respond(tx.MakeResponse(200, "tag-x"));
          },
      .on_ack = [](const Message&, const net::Datagram&) {},
      .on_stray_response = [](const Message&, const net::Datagram&) {},
  });
  // Request-URI names our IP directly (like an ACK/BYE toward a Contact).
  auto request = MakeRequest(Method::kOptions, "tester",
                             ua_host_->ip().ToString());
  EXPECT_EQ(SendAndAwaitFinal(std::move(request)), 200);
  EXPECT_EQ(requests_seen, 1);
}

}  // namespace
}  // namespace vids::sip
