// Tests of the sharded multi-worker engine: SPSC ring semantics, the
// shards=N vs shards=1 vs plain-Vids alert-equivalence guarantee, ring
// backpressure (stall, never drop), and cross-shard media-ownership
// transfer. The threaded cases double as the TSan stress surface — CI
// runs this binary under -fsanitize=thread, scaled up via
// SHARDED_STRESS_PACKETS.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "obs/flight_recorder.h"

#include "capture/replay.h"
#include "common/spsc_ring.h"
#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "vids/alert.h"
#include "vids/ids.h"
#include "vids/patterns.h"
#include "vids/sharded_ids.h"

namespace vids::ids {
namespace {

// ------------------------------------------------------------ SpscRing

TEST(SpscRing, RoundsCapacityUpToPowerOfTwo) {
  EXPECT_EQ(common::SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(common::SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(common::SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(common::SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoAcrossWraparound) {
  common::SpscRing<int> ring(4);
  EXPECT_EQ(ring.Front(), nullptr);  // empty
  int next_push = 0;
  int next_pop = 0;
  // Many full/empty cycles so head and tail wrap the 4-slot buffer often.
  for (int round = 0; round < 100; ++round) {
    while (int* slot = ring.BeginPush()) {
      *slot = next_push++;
      ring.CommitPush();
    }
    EXPECT_EQ(ring.SizeApprox(), ring.capacity());
    EXPECT_EQ(ring.BeginPush(), nullptr);  // full: rejected, not overwritten
    while (int* front = ring.Front()) {
      EXPECT_EQ(*front, next_pop++);
      ring.Pop();
    }
    EXPECT_EQ(ring.Front(), nullptr);
  }
  EXPECT_EQ(next_push, next_pop);
  EXPECT_EQ(next_push, 400);
}

TEST(SpscRing, SlotsAreReusedInPlace) {
  // The zero-allocation handoff depends on Pop() leaving the slot object
  // alive: after a full lap, BeginPush must hand back the same object
  // (same address, warm string capacity) it handed out last lap.
  common::SpscRing<std::string> ring(2);
  std::string* first = ring.BeginPush();
  ASSERT_NE(first, nullptr);
  first->assign("warm-capacity-probe-string");
  const size_t capacity_before = first->capacity();
  ring.CommitPush();
  ring.Pop();
  std::string* second = ring.BeginPush();  // slot 1
  ASSERT_NE(second, nullptr);
  ring.CommitPush();
  ring.Pop();
  std::string* again = ring.BeginPush();  // back to slot 0
  ASSERT_EQ(again, first);
  EXPECT_GE(again->capacity(), capacity_before);
}

TEST(SpscRing, TwoThreadStressKeepsOrderAndLosesNothing) {
  const int n = [] {
    if (const char* s = std::getenv("SHARDED_STRESS_PACKETS")) {
      return std::max(1000, std::atoi(s));
    }
    return 200'000;
  }();
  common::SpscRing<int> ring(64);
  std::thread producer([&] {
    for (int i = 0; i < n;) {
      if (int* slot = ring.BeginPush()) {
        *slot = i++;
        ring.CommitPush();
      } else {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  long long sum = 0;
  while (expected < n) {
    if (int* front = ring.Front()) {
      ASSERT_EQ(*front, expected);  // strict FIFO under concurrency
      sum += *front;
      ++expected;
      ring.Pop();
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
  EXPECT_EQ(ring.Front(), nullptr);
}

TEST(SpscRingBatched, WraparoundAtCapacityBoundaries) {
  // Batches of every size from 1 to capacity, pushed/popped repeatedly so
  // the open batch regularly straddles the index wraparound.
  common::SpscRing<int> ring(8);
  const size_t cap = ring.capacity();
  int next_push = 0;
  int next_pop = 0;
  for (size_t batch = 1; batch <= cap; ++batch) {
    for (int round = 0; round < 25; ++round) {
      size_t pushed = 0;
      while (pushed < batch) {
        int* slot = ring.BeginPushN();
        ASSERT_NE(slot, nullptr);  // ring is drained between rounds
        *slot = next_push++;
        ++pushed;
      }
      EXPECT_EQ(ring.open_push(), batch);
      ring.CommitPushN();
      EXPECT_EQ(ring.open_push(), 0u);
      const size_t n = ring.FrontN(cap);
      ASSERT_EQ(n, batch);
      for (size_t i = 0; i < n; ++i) EXPECT_EQ(ring.At(i), next_pop++);
      ring.PopN(n);
      EXPECT_EQ(ring.FrontN(cap), 0u);
    }
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRingBatched, PartialBatchInvisibleUntilCommit) {
  common::SpscRing<int> ring(8);
  // Reserved-but-uncommitted slots must not be readable…
  for (int i = 0; i < 3; ++i) {
    int* slot = ring.BeginPushN();
    ASSERT_NE(slot, nullptr);
    *slot = i;
    EXPECT_EQ(ring.FrontN(8), 0u) << "uncommitted slot leaked to consumer";
  }
  // …but they do count against capacity: the ring is full counting the
  // open batch, and rejects rather than hands out an in-flight slot twice.
  for (int i = 3; i < 8; ++i) {
    int* slot = ring.BeginPushN();
    ASSERT_NE(slot, nullptr);
    *slot = i;
  }
  EXPECT_EQ(ring.BeginPushN(), nullptr);
  ring.CommitPushN();  // one publish for all 8
  ASSERT_EQ(ring.FrontN(8), 8u);
  for (size_t i = 0; i < 8; ++i) EXPECT_EQ(ring.At(i), static_cast<int>(i));
  ring.PopN(8);
}

TEST(SpscRingBatched, InterleavedSingleAndBatchedOps) {
  // Single push/pop is the K = 1 case of the batched machinery, so mixing
  // them must preserve FIFO exactly.
  common::SpscRing<int> ring(8);
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 50; ++round) {
    // Two singles, then a batch of three.
    for (int i = 0; i < 2; ++i) {
      int* slot = ring.BeginPush();
      ASSERT_NE(slot, nullptr);
      *slot = next_push++;
      ring.CommitPush();
    }
    for (int i = 0; i < 3; ++i) {
      int* slot = ring.BeginPushN();
      ASSERT_NE(slot, nullptr);
      *slot = next_push++;
    }
    ring.CommitPushN();
    // One single pop, then drain the rest batched.
    int* front = ring.Front();
    ASSERT_NE(front, nullptr);
    EXPECT_EQ(*front, next_pop++);
    ring.Pop();
    const size_t n = ring.FrontN(8);
    ASSERT_EQ(n, 4u);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(ring.At(i), next_pop++);
    ring.PopN(n);
  }
  EXPECT_EQ(next_push, next_pop);
}

TEST(SpscRingBatched, TwoThreadStressKeepsOrderAndLosesNothing) {
  // The batched analog of the single-op stress above, and the TSan surface
  // for the one-release-store-per-batch publish: producer commits variable
  // partial batches, consumer drains variable batch sizes.
  const int n = [] {
    if (const char* s = std::getenv("SHARDED_STRESS_PACKETS")) {
      return std::max(1000, std::atoi(s));
    }
    return 200'000;
  }();
  common::SpscRing<int> ring(64);
  std::thread producer([&] {
    int i = 0;
    while (i < n) {
      // Vary the batch size so commits land on every ring offset.
      const int want = 1 + (i % 7);
      int reserved = 0;
      while (reserved < want && i < n) {
        int* slot = ring.BeginPushN();
        if (slot == nullptr) break;  // full: publish what we have
        *slot = i++;
        ++reserved;
      }
      if (reserved > 0) {
        ring.CommitPushN();
      } else {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  long long sum = 0;
  while (expected < n) {
    const size_t avail = ring.FrontN(1 + static_cast<size_t>(expected % 13));
    if (avail == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < avail; ++i) {
      ASSERT_EQ(ring.At(i), expected);  // strict FIFO under concurrency
      sum += ring.At(i);
      ++expected;
    }
    ring.PopN(avail);
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(n) * (n - 1) / 2);
  EXPECT_EQ(ring.FrontN(1), 0u);
}

// ------------------------------------------------- trace infrastructure

const net::Endpoint kProxyA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kProxyB{net::IpAddress(10, 2, 0, 1), 5060};
const net::Endpoint kAttacker{net::IpAddress(10, 9, 0, 66), 5060};

struct TracePacket {
  net::Datagram dgram;
  bool from_outside = true;
  sim::Time when;
};

net::Datagram SipDgram(const sip::Message& message, net::Endpoint src,
                       net::Endpoint dst) {
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = message.Serialize();
  dgram.kind = net::PayloadKind::kSip;
  return dgram;
}

net::Datagram RtpDgram(uint32_t ssrc, uint16_t seq, uint32_t ts,
                       net::Endpoint src, net::Endpoint dst) {
  rtp::RtpHeader header;
  header.ssrc = ssrc;
  header.sequence_number = seq;
  header.timestamp = ts;
  header.payload_type = 18;
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = header.Serialize();
  dgram.kind = net::PayloadKind::kRtp;
  return dgram;
}

sip::Message MakeInvite(const std::string& call_id, const std::string& callee,
                        net::Endpoint offer_media, net::Endpoint via_sentby) {
  auto invite = sip::Message::MakeRequest(
      sip::Method::kInvite,
      *sip::SipUri::Parse("sip:" + callee + "@b.example.com"));
  sip::Via via;
  via.sent_by = via_sentby;
  via.branch = "z9hG4bK" + call_id;
  invite.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("tag-" + call_id);
  invite.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:" + callee + "@b.example.com");
  invite.SetTo(to);
  invite.SetCallId(call_id);
  invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
  invite.SetBody(sdp::MakeAudioOffer(offer_media).Serialize(),
                 "application/sdp");
  return invite;
}

sip::Message MakeResponse(const sip::Message& request, int status,
                          std::optional<net::Endpoint> answer_media) {
  auto response = sip::Message::MakeResponse(status);
  for (const auto via : request.Headers("Via")) {
    response.AddHeader("Via", via);
  }
  response.SetFrom(*request.From());
  auto to = *request.To();
  to.SetTag("tag-callee");
  response.SetTo(to);
  response.SetCallId(std::string(*request.CallId()));
  response.SetCseq(*request.Cseq());
  if (answer_media) {
    response.SetBody(sdp::MakeAudioOffer(*answer_media).Serialize(),
                     "application/sdp");
  }
  return response;
}

sip::Message MakeInDialog(sip::Method method, const std::string& call_id,
                          uint32_t cseq, net::Endpoint via_sentby) {
  auto request = sip::Message::MakeRequest(
      method, *sip::SipUri::Parse("sip:bob@b.example.com"));
  sip::Via via;
  via.sent_by = via_sentby;
  via.branch = "z9hG4bK" + std::string(sip::MethodName(method)) + call_id;
  request.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("tag-" + call_id);
  request.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
  to.SetTag("tag-callee");
  request.SetTo(to);
  request.SetCallId(call_id);
  request.SetCseq(sip::CSeq{cseq, method});
  return request;
}

// Builds an attack-scenario trace with monotonically increasing timestamps.
// All steps are 17 ms — deliberately off every detection-window boundary so
// timer-vs-packet ties can't depend on floating sweep cadence.
class TraceBuilder {
 public:
  void Step() { now_ = now_ + sim::Duration::Millis(17); }

  void Add(net::Datagram dgram, bool from_outside) {
    trace_.push_back({std::move(dgram), from_outside, now_});
  }

  // Benign INVITE/180/200/ACK handshake negotiating both media endpoints.
  void EstablishCall(const std::string& call_id, net::Endpoint caller_media,
                     net::Endpoint callee_media) {
    const auto invite = MakeInvite(call_id, "bob", caller_media, kProxyA);
    Add(SipDgram(invite, kProxyA, kProxyB), true);
    Step();
    Add(SipDgram(MakeResponse(invite, 180, std::nullopt), kProxyB, kProxyA),
        false);
    Step();
    Add(SipDgram(MakeResponse(invite, 200, callee_media), kProxyB, kProxyA),
        false);
    Step();
    Add(SipDgram(MakeInDialog(sip::Method::kAck, call_id, 1, caller_media),
                 caller_media, callee_media),
        true);
    Step();
  }

  const std::vector<TracePacket>& trace() const { return trace_; }
  sim::Time now() const { return now_; }

 private:
  std::vector<TracePacket> trace_;
  sim::Time now_ = sim::Time::FromNanos(0);
};

// Everything that must be identical across engine shapes. `trigger` and
// `provenance` are deliberately excluded: the coordinator's replayed
// aggregate alerts describe their evidence differently (no shard-local
// flight recorder), which is a documented presentation difference.
using AlertSig =
    std::tuple<int64_t, int, std::string, std::string, std::string,
               std::string>;

AlertSig SigOf(const Alert& alert) {
  return {alert.when.nanos(), static_cast<int>(alert.kind),
          alert.classification, alert.group, alert.machine, alert.detail};
}

std::vector<AlertSig> SortedSigs(const std::vector<Alert>& alerts) {
  std::vector<AlertSig> sigs;
  sigs.reserve(alerts.size());
  for (const Alert& alert : alerts) sigs.push_back(SigOf(alert));
  std::sort(sigs.begin(), sigs.end());
  return sigs;
}

std::vector<Alert> RunPlain(const std::vector<TracePacket>& trace) {
  sim::Scheduler scheduler;
  Vids vids(scheduler);
  for (const TracePacket& p : trace) {
    if (p.when > scheduler.Now()) scheduler.RunUntil(p.when);
    vids.Inspect(p.dgram, p.from_outside);
  }
  return vids.alerts();
}

std::vector<Alert> RunShardedCfg(const std::vector<TracePacket>& trace,
                                 ShardedConfig config) {
  ShardedIds engine(config);
  sim::Time last;
  for (const TracePacket& p : trace) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);
  engine.Stop();
  return engine.alerts();
}

std::vector<Alert> RunSharded(const std::vector<TracePacket>& trace,
                              int shards) {
  ShardedConfig config;
  config.shards = shards;
  return RunShardedCfg(trace, config);
}

// Benign calls interleaved with every attack scenario whose detection the
// sharded engine re-plumbs: the two cross-call aggregates (INVITE flood,
// DRDoS) plus call-local attacks (BYE DoS, CANCEL DoS, RTP flood) that
// must keep working untouched on whatever shard their state hashed to.
std::vector<TracePacket> AttackScenarioTrace() {
  TraceBuilder b;
  DetectionConfig detection;

  // A few benign calls with media on distinct Call-IDs/endpoints.
  for (int c = 0; c < 4; ++c) {
    const std::string call_id = "benign-" + std::to_string(c) + "@trace";
    const net::Endpoint caller{net::IpAddress(10, 1, 0, 10),
                               static_cast<uint16_t>(20000 + 2 * c)};
    const net::Endpoint callee{net::IpAddress(10, 2, 0, 10),
                               static_cast<uint16_t>(30000 + 2 * c)};
    b.EstablishCall(call_id, caller, callee);
    for (int i = 1; i <= 6; ++i) {
      b.Add(RtpDgram(0x600u + static_cast<uint32_t>(c),
                     static_cast<uint16_t>(i), 160u * static_cast<uint32_t>(i),
                     caller, callee),
            true);
      b.Step();
    }
  }

  // BYE DoS: a spoofed BYE from a third party against an open call.
  b.EstablishCall("bye-dos@trace", {net::IpAddress(10, 1, 0, 11), 21000},
                  {net::IpAddress(10, 2, 0, 11), 31000});
  b.Add(SipDgram(MakeInDialog(sip::Method::kBye, "bye-dos@trace", 9,
                              kAttacker),
                 kAttacker, kProxyB),
        true);
  b.Step();

  // CANCEL DoS: pending INVITE answered by a foreign-source CANCEL.
  {
    const auto invite =
        MakeInvite("cancel-dos@trace", "carol",
                   {net::IpAddress(10, 1, 0, 12), 22000}, kProxyA);
    b.Add(SipDgram(invite, kProxyA, kProxyB), true);
    b.Step();
    b.Add(SipDgram(MakeResponse(invite, 180, std::nullopt), kProxyB, kProxyA),
          false);
    b.Step();
    auto cancel = sip::Message::MakeRequest(
        sip::Method::kCancel, *sip::SipUri::Parse("sip:carol@b.example.com"));
    for (const auto via : invite.Headers("Via")) {
      cancel.AddHeader("Via", via);
    }
    cancel.SetFrom(*invite.From());
    cancel.SetTo(*invite.To());
    cancel.SetCallId("cancel-dos@trace");
    cancel.SetCseq(sip::CSeq{1, sip::Method::kCancel});
    b.Add(SipDgram(cancel, kAttacker, kProxyB), true);
    b.Step();
  }

  // INVITE flood: distinct Call-IDs (hence scattered across shards) aimed
  // at one AOR — the aggregate the coordinator must count globally.
  for (int k = 0; k <= detection.invite_flood_threshold + 2; ++k) {
    const std::string call_id = "flood-" + std::to_string(k) + "@trace";
    b.Add(SipDgram(MakeInvite(call_id, "floodee",
                              net::Endpoint{kAttacker.ip, 42000}, kAttacker),
                   kAttacker, kProxyB),
          true);
    b.Step();
  }

  // DRDoS reflection: unsolicited 200s, each a fresh Call-ID, converging on
  // one victim host — the other cross-shard aggregate.
  {
    const net::Endpoint victim{net::IpAddress(10, 9, 1, 77), 5060};
    const auto probe = MakeInvite(
        "refl-probe", "victim", {net::IpAddress(10, 1, 0, 30), 23000},
        kProxyB);
    for (int k = 0; k <= detection.drdos_threshold + 2; ++k) {
      auto response = MakeResponse(probe, 200, std::nullopt);
      response.SetCallId("refl-" + std::to_string(k) + "@trace");
      b.Add(SipDgram(response, kProxyB, victim), false);
      b.Step();
    }
  }

  // RTP flood at one (unnegotiated) victim endpoint. Single key, so it
  // lands wholly on one shard — must alert there exactly as in the plain
  // engine. Tight spacing: the threshold must be crossed inside one window.
  {
    const net::Endpoint victim{net::IpAddress(10, 2, 9, 5), 40000};
    const net::Endpoint source{net::IpAddress(10, 9, 0, 66), 41000};
    for (int k = 0; k <= detection.rtp_flood_threshold + 10; ++k) {
      b.Add(RtpDgram(0xF100Du, static_cast<uint16_t>(k),
                     160u * static_cast<uint32_t>(k), source, victim),
            true);
      if (k % 50 == 49) b.Step();  // stay well inside the 1 s window
    }
    b.Step();
  }

  return b.trace();
}

// ------------------------------------------------------- equivalence

TEST(ShardedEquivalence, OneShardMatchesPlainVids) {
  const auto trace = AttackScenarioTrace();
  const auto plain = SortedSigs(RunPlain(trace));
  const auto sharded = SortedSigs(RunSharded(trace, 1));
  EXPECT_FALSE(plain.empty());  // the trace must actually trigger attacks
  EXPECT_EQ(plain, sharded);
}

TEST(ShardedEquivalence, FourShardsMatchPlainVids) {
  const auto trace = AttackScenarioTrace();
  const auto plain = SortedSigs(RunPlain(trace));
  const auto sharded = SortedSigs(RunSharded(trace, 4));
  EXPECT_FALSE(plain.empty());
  EXPECT_EQ(plain, sharded);
}

TEST(ShardedEquivalence, ShardCountsAgreeWithEachOther) {
  const auto trace = AttackScenarioTrace();
  const auto one = SortedSigs(RunSharded(trace, 1));
  const auto two = SortedSigs(RunSharded(trace, 2));
  const auto eight = SortedSigs(RunSharded(trace, 8));
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
}

TEST(ShardedEquivalence, BatchingKnobsNeverChangeAlerts) {
  // The alert multiset must be invariant across the whole batching matrix:
  // slot-at-a-time (batch_max = 1, the PR-5 handoff), deep batching with
  // immediate aggregate shipping (agg_hold = 0), and deep batching with a
  // hold so large that cold events only ever ship at Flush/Stop (so the
  // escalation path and the barrier ships carry everything).
  const auto trace = AttackScenarioTrace();
  const auto baseline = SortedSigs(RunSharded(trace, 4));  // defaults
  EXPECT_FALSE(baseline.empty());

  ShardedConfig unbatched;
  unbatched.shards = 4;
  unbatched.batch_max = 1;
  unbatched.agg_hold = sim::Duration::Seconds(0);
  EXPECT_EQ(baseline, SortedSigs(RunShardedCfg(trace, unbatched)));

  ShardedConfig eager;
  eager.shards = 4;
  eager.batch_max = 64;
  eager.agg_hold = sim::Duration::Seconds(0);
  EXPECT_EQ(baseline, SortedSigs(RunShardedCfg(trace, eager)));

  ShardedConfig lazy;
  lazy.shards = 4;
  lazy.batch_max = 64;
  lazy.agg_hold = sim::Duration::Seconds(3600);
  lazy.agg_escalation_fraction = 0.5;  // escalate extra-early, ship eagerly
  EXPECT_EQ(baseline, SortedSigs(RunShardedCfg(trace, lazy)));
}

TEST(ShardedEquivalence, FloodEscalatesShardSketchesToHot) {
  // With an hour-long hold, cold events would only surface at the Flush
  // barrier — so any timely shipping during the flood must come from the
  // sketch escalation. Verify it fires, and that alerts stay exact.
  const auto trace = AttackScenarioTrace();
  ShardedConfig config;
  config.shards = 4;
  config.agg_hold = sim::Duration::Seconds(3600);
  ShardedIds engine(config);
  sim::Time last;
  for (const TracePacket& p : trace) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);
  // invite_flood_threshold = 5 on 4 shards → share = ceil(6/4) = 2: the
  // 8-INVITE flood puts ≥ 2 same-window events on some shard. Same math
  // for the 13-response DRDoS burst.
  EXPECT_GT(engine.aggregate_escalations(), 0u);
  engine.Stop();
  EXPECT_EQ(SortedSigs(RunSharded(trace, 4)), SortedSigs(engine.alerts()));
}

TEST(ShardedEquivalence, TraceCoversEveryRelevantClassification) {
  // Guard the guard: if a future change silently stops the trace from
  // triggering an attack class, the equivalence tests would still "pass".
  const auto trace = AttackScenarioTrace();
  ShardedConfig config;
  config.shards = 4;
  ShardedIds engine(config);
  sim::Time last;
  for (const TracePacket& p : trace) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);
  engine.Stop();
  EXPECT_GE(engine.CountAlerts(kAttackInviteFlood), 1u);
  EXPECT_GE(engine.CountAlerts(kAttackDrdos), 1u);
  EXPECT_GE(engine.CountAlerts(kAttackRtpFlood), 1u);
}

// ------------------------------------------------------ backpressure

TEST(ShardedBackpressure, TinyRingsStallButLoseNothing) {
  ShardedConfig config;
  config.shards = 2;
  config.ring_capacity = 2;  // virtually every burst overruns the ring
  ShardedIds engine(config);
  const sim::Time t0 = sim::Time::FromNanos(1);
  uint64_t fed = 0;
  for (int k = 0; k < 4000; ++k) {
    const net::Endpoint victim{net::IpAddress(10, 2, 9, 1),
                               static_cast<uint16_t>(40000 + 2 * (k % 8))};
    engine.Ingest(RtpDgram(0xB00Du + static_cast<uint32_t>(k % 8),
                           static_cast<uint16_t>(k),
                           160u * static_cast<uint32_t>(k),
                           {net::IpAddress(10, 9, 0, 66), 41000}, victim),
                  true, t0);
    ++fed;
  }
  engine.Flush(t0);
  uint64_t inspected = 0;
  for (int i = 0; i < engine.shards(); ++i) {
    inspected += engine.shard_vids(i).stats().packets;
  }
  EXPECT_EQ(inspected, fed);
  EXPECT_GT(engine.ingest_stalls(), 0u);
  engine.Stop();
}

// ---------------------------------------------------- aggregate hooks

TEST(AggregateHook, DrdosKeyIsVictimIpFromPacket) {
  // The DRDoS replay key must be the packet's destination IP itself (the
  // same key GetOrCreateDrdosGroup uses), not an event arg that could be
  // absent — an empty-key fallback would collapse all victims into one
  // shared window counter.
  sim::Scheduler scheduler;
  Vids vids(scheduler);
  std::vector<std::string> keys;
  vids.set_aggregate_hook([&](Vids::AggregateKind kind, std::string_view key,
                              const ClassifiedPacket&) {
    if (kind == Vids::AggregateKind::kUnsolicitedResponse) {
      keys.emplace_back(key);
    }
  });
  const net::Endpoint victim{net::IpAddress(10, 9, 1, 77), 5060};
  const auto probe = MakeInvite(
      "refl-probe", "victim", {net::IpAddress(10, 1, 0, 30), 23000}, kProxyB);
  auto response = MakeResponse(probe, 200, std::nullopt);
  response.SetCallId("refl-key@trace");
  vids.Inspect(SipDgram(response, kProxyB, victim), false);
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "10.9.1.77");
}

// ----------------------------------------------------------- shutdown

TEST(ShardedShutdown, StopWithoutFlushDrainsBacklog) {
  // Regression: Stop() used to push kStop and block in join() without
  // draining the up-rings. With tiny rings and aggregate-heavy traffic a
  // worker fills its up-ring while the kStop still waits behind down-ring
  // backlog, and PushUp then blocks forever against a joining coordinator
  // (the deadlock shows up as a test timeout). Stop() must keep draining
  // until every worker has exited — and still surface every alert, since
  // the destructor takes exactly this path with no prior Flush().
  DetectionConfig detection;
  ShardedConfig config;
  config.shards = 2;
  config.ring_capacity = 2;
  ShardedIds engine(config);
  TraceBuilder b;
  b.Step();
  const net::Endpoint victim{net::IpAddress(10, 9, 1, 77), 5060};
  const auto probe = MakeInvite(
      "refl-probe", "victim", {net::IpAddress(10, 1, 0, 30), 23000}, kProxyB);
  for (int k = 0; k < detection.drdos_threshold + 50; ++k) {
    auto response = MakeResponse(probe, 200, std::nullopt);
    response.SetCallId("refl-stop-" + std::to_string(k) + "@trace");
    engine.Ingest(SipDgram(response, kProxyB, victim), false, b.now());
    b.Step();
  }
  engine.Stop();  // deliberately no Flush() first
  EXPECT_GE(engine.CountAlerts(kAttackDrdos), 1u);
}

// ------------------------------------------------ ownership transfer

TEST(ShardedOwnership, RenegotiationMovesMediaBetweenShards) {
  ShardedConfig config;
  config.shards = 4;
  ShardedIds engine(config);
  const net::Endpoint media{net::IpAddress(10, 5, 0, 10), 40000};
  TraceBuilder b;
  b.Step();
  // Call A negotiates `media`; then a sequence of calls with different
  // Call-IDs renegotiate the same endpoint. FNV scatters the Call-IDs over
  // 4 shards, so some consecutive owner pair differs and a RetractMedia
  // must cross shards (probability of all 17 landing identically: 4^-16).
  b.Add(SipDgram(MakeInvite("xfer-a@trace", "bob", media, kProxyA), kProxyA,
                 kProxyB),
        true);
  b.Step();
  for (int i = 0; i < 16; ++i) {
    const std::string call_id = "xfer-b-" + std::to_string(i) + "@trace";
    b.Add(SipDgram(MakeInvite(call_id, "bob", media, kProxyA), kProxyA,
                   kProxyB),
          true);
    b.Step();
  }
  sim::Time last;
  for (const TracePacket& p : b.trace()) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);
  EXPECT_GT(engine.ownership_transfers(), 0u);
  // Exactly one shard may still claim the endpoint: every superseded
  // claim was retracted (cross-shard) or overwritten (same shard).
  size_t media_entries = 0;
  for (int i = 0; i < engine.shards(); ++i) {
    media_entries += engine.shard_vids(i).fact_base().media_index_count();
  }
  EXPECT_EQ(media_entries, 1u);
  engine.Stop();
}

TEST(ShardedOwnership, EarlyMediaStateCollapsesOntoClaimingShard) {
  // RTP that arrives before its SDP negotiation is hash-routed and builds
  // per-endpoint keyed counters on the fallback shard. When the SDP claim
  // lands on a different shard, the router must retract the fallback
  // shard's partial state, so exactly one keyed media group per endpoint
  // survives — split counters would make near-threshold detections depend
  // on the hash layout.
  ShardedConfig config;
  config.shards = 4;
  ShardedIds engine(config);
  TraceBuilder b;
  b.Step();
  constexpr int kCalls = 8;
  const auto callee_media = [](int c) {
    return net::Endpoint{net::IpAddress(10, 2, 0, 10),
                         static_cast<uint16_t>(30000 + 2 * c)};
  };
  const auto caller_media = [](int c) {
    return net::Endpoint{net::IpAddress(10, 1, 0, 10),
                         static_cast<uint16_t>(20000 + 2 * c)};
  };
  // Early media: RTP to each callee endpoint before any SDP mentions it.
  for (int c = 0; c < kCalls; ++c) {
    for (int i = 0; i < 3; ++i) {
      b.Add(RtpDgram(0x700u + static_cast<uint32_t>(c),
                     static_cast<uint16_t>(i), 160u * static_cast<uint32_t>(i),
                     caller_media(c), callee_media(c)),
            true);
      b.Step();
    }
  }
  // Then each call negotiates its endpoint, and media keeps flowing.
  for (int c = 0; c < kCalls; ++c) {
    b.EstablishCall("early-" + std::to_string(c) + "@trace", caller_media(c),
                    callee_media(c));
    b.Add(RtpDgram(0x700u + static_cast<uint32_t>(c), 100, 16000u,
                   caller_media(c), callee_media(c)),
          true);
    b.Step();
  }
  sim::Time last;
  for (const TracePacket& p : b.trace()) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);
  // One keyed media group per endpoint across ALL shards: the pre-claim
  // state on the hash-fallback shard was dropped when the negotiating
  // call's shard claimed the endpoint.
  size_t keyed = 0;
  for (int i = 0; i < engine.shards(); ++i) {
    keyed += engine.shard_vids(i).fact_base().keyed_count();
  }
  EXPECT_EQ(keyed, static_cast<size_t>(kCalls));
  // With 16 claims over 4 shards, some hash-fallback shard must differ
  // from its claimant (routing is deterministic, so this is stable).
  EXPECT_GT(engine.early_media_retracts(), 0u);
  engine.Stop();
}

TEST(FactBase, DropMediaKeyedGroupRemovesKeyedState) {
  sim::Scheduler scheduler;
  Vids vids(scheduler);
  auto& fb = vids.fact_base();
  const net::Endpoint endpoint{net::IpAddress(10, 2, 9, 5), 40000};
  fb.GetOrCreateMediaGroup(endpoint);
  EXPECT_EQ(fb.keyed_count(), 1u);
  fb.DropMediaKeyedGroup(endpoint);
  EXPECT_EQ(fb.keyed_count(), 0u);
  fb.DropMediaKeyedGroup(endpoint);  // no-op when absent
  EXPECT_EQ(fb.keyed_count(), 0u);
}

// ----------------------------------------------------- pipeline spans

TEST(PipelineSpans, SampledSpansPopulateLatencyHistograms) {
  ShardedConfig config;
  config.shards = 2;
  config.trace_sample_period = 1;  // sample every packet
  ShardedIds engine(config);
  const auto trace = AttackScenarioTrace();
  sim::Time last;
  for (const TracePacket& p : trace) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);

  const auto merged = engine.MergedMetrics();
  // Every packet was sampled: the cross-shard aggregate histograms hold
  // one span per packet, with the three stages in agreement.
  const auto* e2e = merged.FindHistogram("lat.e2e");
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count(), trace.size());
  EXPECT_GT(e2e->sum(), 0);
  const auto* dequeue = merged.FindHistogram("lat.ingest_to_dequeue");
  const auto* inspect = merged.FindHistogram("lat.inspect");
  ASSERT_NE(dequeue, nullptr);
  ASSERT_NE(inspect, nullptr);
  EXPECT_EQ(dequeue->count(), e2e->count());
  EXPECT_EQ(inspect->count(), e2e->count());
  // The attack trace alerts, so the emit stage recorded too.
  const auto* to_alert = merged.FindHistogram("lat.ingest_to_alert");
  ASSERT_NE(to_alert, nullptr);
  EXPECT_GT(to_alert->count(), 0u);
  // Per-shard series exist under the shard prefix and sum to the total.
  uint64_t per_shard = 0;
  uint64_t span_records = 0;
  for (int i = 0; i < engine.shards(); ++i) {
    const auto* h = merged.FindHistogram("shard." + std::to_string(i) +
                                         ".lat.e2e");
    ASSERT_NE(h, nullptr) << "shard " << i;
    per_shard += h->count();
    // The worker also logged kSpan flight records (ring of the last 32).
    const auto& spans = engine.shard_spans(i);
    span_records += spans.total_recorded();
    spans.ForEach([&](const obs::Record& r) {
      EXPECT_EQ(r.type, obs::RecordType::kSpan);
      EXPECT_EQ(r.to, static_cast<int16_t>(i));
      EXPECT_GT(r.when_ns, 0);
    });
  }
  EXPECT_EQ(per_shard, e2e->count());
  EXPECT_EQ(span_records, e2e->count());
  // Batch + queue visibility rode along.
  EXPECT_GT(merged.FindHistogram("batch.consumed")->count(), 0u);
  EXPECT_GT(merged.FindHistogram("pipeline.batch.committed")->count(), 0u);
  ASSERT_NE(merged.FindGauge("shard.0.ring.down_depth_hwm"), nullptr);
  engine.Stop();
}

TEST(PipelineSpans, SamplingOffRecordsNothing) {
  ShardedConfig config;
  config.shards = 2;
  config.trace_sample_period = 0;  // tracing disabled
  ShardedIds engine(config);
  const auto trace = AttackScenarioTrace();
  sim::Time last;
  for (const TracePacket& p : trace) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);
  const auto merged = engine.MergedMetrics();
  EXPECT_EQ(merged.FindHistogram("lat.e2e")->count(), 0u);
  EXPECT_EQ(merged.FindHistogram("lat.ingest_to_alert")->count(), 0u);
  for (int i = 0; i < engine.shards(); ++i) {
    EXPECT_EQ(engine.shard_spans(i).total_recorded(), 0u);
  }
  engine.Stop();
}

TEST(PipelineSpans, SamplingNeverChangesAlerts) {
  const auto trace = AttackScenarioTrace();
  const auto baseline = SortedSigs(RunSharded(trace, 4));  // default period
  ShardedConfig every;
  every.shards = 4;
  every.trace_sample_period = 1;
  EXPECT_EQ(baseline, SortedSigs(RunShardedCfg(trace, every)));
  ShardedConfig off;
  off.shards = 4;
  off.trace_sample_period = 0;
  off.watchdog_stall_ms = 0;
  EXPECT_EQ(baseline, SortedSigs(RunShardedCfg(trace, off)));
}

// ------------------------------------------------------------ watchdog

TEST(Watchdog, WedgedWorkerRaisesEngineHealthAlert) {
  ShardedConfig config;
  config.shards = 2;
  config.watchdog_stall_ms = 50;
  ShardedIds engine(config);
  // A little traffic first, so the engine is provably healthy when the
  // wedge lands.
  TraceBuilder b;
  b.Step();
  b.EstablishCall("wedge@trace", {net::IpAddress(10, 1, 0, 10), 20000},
                  {net::IpAddress(10, 2, 0, 10), 30000});
  for (const TracePacket& p : b.trace()) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
  }
  engine.Flush(b.now());
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 0u);

  // Wedge worker 0: its down-ring keeps the kWedge message (never retired
  // while wedged), its heartbeat freezes. Keep pumping so the watchdog's
  // episode stays continuously observed; it must alert within the
  // deadline — generous wall cap for sanitizer builds.
  engine.WedgeWorkerForTest(0);
  const auto cap = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.CountAlerts(AlertKind::kEngineHealth) == 0 &&
         std::chrono::steady_clock::now() < cap) {
    engine.Pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(engine.CountAlerts(AlertKind::kEngineHealth), 1u)
      << "watchdog failed to flag a wedged worker within 30 s";
  // One alert per stall episode, aimed at the wedged shard.
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 1u);
  EXPECT_EQ(engine.watchdog_stalls(), 1u);
  for (const Alert& alert : engine.alerts()) {
    if (alert.kind != AlertKind::kEngineHealth) continue;
    EXPECT_EQ(alert.classification, kEngineWorkerStall);
    EXPECT_EQ(alert.machine, "watchdog");
    EXPECT_EQ(alert.group, "shard|0");
  }

  // Release the worker: the engine must recover and stop cleanly, and the
  // closed episode must not re-alert.
  engine.UnwedgeWorkerForTest(0);
  engine.Flush(b.now());
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 1u);
  engine.Stop();
}

TEST(Watchdog, CleanTrafficAndStopRaiseNoFalsePositives) {
  // The watchdog stays armed with a tight deadline while normal traffic,
  // Flush barriers, and Stop() all run — none of it may look like a stall
  // (episodes must anchor on pending-work-without-progress, not on idle
  // gaps or driver pauses).
  ShardedConfig config;
  config.shards = 2;
  config.watchdog_stall_ms = 250;
  ShardedIds engine(config);
  const auto trace = AttackScenarioTrace();
  sim::Time last;
  for (const TracePacket& p : trace) {
    engine.Ingest(p.dgram, p.from_outside, p.when);
    last = p.when;
  }
  engine.Flush(last);
  // A driver pause with the watchdog armed (idle-then-burst): no episode
  // may carry across the quiet gap.
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  const sim::Duration offset = last - sim::Time::FromNanos(0);
  for (const TracePacket& p : trace) {
    engine.Ingest(p.dgram, p.from_outside, p.when + offset);
  }
  engine.Flush(last + offset);
  engine.Stop();
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 0u);
  EXPECT_EQ(engine.watchdog_stalls(), 0u);
}

// ------------------------------------------------------------- stress

TEST(ShardedStress, MixedTrafficUnderChurn) {
  // Wide mixed workload for the sanitizers: all shards busy, rings cycling,
  // periodic Flush barriers interleaved with traffic. Scaled up in the CI
  // TSan lane via SHARDED_STRESS_PACKETS.
  int packets = 20'000;
  if (const char* s = std::getenv("SHARDED_STRESS_PACKETS")) {
    packets = std::max(1000, std::atoi(s));
  }
  ShardedConfig config;
  config.shards = 4;
  config.ring_capacity = 64;
  ShardedIds engine(config);
  sim::Time now = sim::Time::FromNanos(1);
  uint64_t fed = 0;
  for (int k = 0; k < packets; ++k) {
    now = now + sim::Duration::Micros(97);
    if (k % 20 == 0) {
      const std::string call_id =
          "stress-" + std::to_string(k / 20) + "@trace";
      const net::Endpoint caller{net::IpAddress(10, 1, 0, 10),
                                 static_cast<uint16_t>(20000 + (k / 10) % 500)};
      engine.Ingest(
          SipDgram(MakeInvite(call_id, "bob", caller, kProxyA), kProxyA,
                   kProxyB),
          true, now);
    } else {
      const net::Endpoint dst{net::IpAddress(10, 2, 0, 10),
                              static_cast<uint16_t>(30000 + 2 * (k % 64))};
      engine.Ingest(RtpDgram(0x51000u + static_cast<uint32_t>(k % 64),
                             static_cast<uint16_t>(k),
                             160u * static_cast<uint32_t>(k),
                             {net::IpAddress(10, 1, 0, 10), 20002}, dst),
                    true, now);
    }
    ++fed;
    if (k % 5000 == 4999) engine.Flush(now);
  }
  engine.Flush(now);
  uint64_t inspected = 0;
  for (int i = 0; i < engine.shards(); ++i) {
    inspected += engine.shard_vids(i).stats().packets;
  }
  EXPECT_EQ(inspected, fed);
  // Default-on span sampling and watchdog rode through the whole soak:
  // no stall alert may appear on a healthy run.
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 0u);
  EXPECT_EQ(engine.watchdog_stalls(), 0u);
  engine.Stop();
}

// ------------------------------------------------- multi-producer ingest

/// The full trace through the MpIngest fan-out: a dispatcher thread plus
/// producers-1 feeder threads, exactly the soak/pcap deployment shape.
std::vector<Alert> RunShardedMp(const std::vector<TracePacket>& trace,
                                int shards, int producers) {
  ShardedConfig config;
  config.shards = shards;
  config.producers = producers;
  ShardedIds engine(config);
  {
    capture::MpIngest mp(engine, producers);
    sim::Time last;
    for (const TracePacket& p : trace) {
      mp.Ingest(p.dgram, p.from_outside, p.when);
      last = p.when;
    }
    mp.Finish();
    engine.Flush(last);
  }
  engine.Stop();
  return engine.alerts();
}

std::string RenderedAlerts(const std::vector<Alert>& alerts) {
  std::string out;
  for (const Alert& alert : alerts) {
    out += alert.ToString();
    out += '\n';
  }
  return out;
}

TEST(MpEquivalence, KnobSweepMatchesPlainVids) {
  const auto trace = AttackScenarioTrace();
  const auto plain = SortedSigs(RunPlain(trace));
  ASSERT_FALSE(plain.empty());
  for (int shards : {1, 4}) {
    for (int producers : {1, 2, 4}) {
      EXPECT_EQ(plain, SortedSigs(RunShardedMp(trace, shards, producers)))
          << "shards=" << shards << " producers=" << producers;
    }
  }
}

TEST(MpEquivalence, AlertStreamByteIdenticalAcrossProducersAndShards) {
  // Stronger than signature equality: the canonically ordered retained
  // history must RENDER identically for every (producers, shards) point,
  // including against the single-producer direct-Ingest path — the same
  // byte-for-byte gate the soak and the CI corpus replay enforce.
  const auto trace = AttackScenarioTrace();
  const std::string reference = RenderedAlerts(RunSharded(trace, 4));
  ASSERT_FALSE(reference.empty());
  for (int shards : {1, 4}) {
    for (int producers : {1, 2, 4}) {
      EXPECT_EQ(reference, RenderedAlerts(RunShardedMp(trace, shards,
                                                       producers)))
          << "shards=" << shards << " producers=" << producers;
    }
  }
}

TEST(MpEquivalence, MidStreamQuiesceResumeKeepsAlertsIdentical) {
  // The soak's sampling protocol — park every feeder, Flush, resume —
  // exercised mid-stream: it must not move a single alert byte. Quiesce
  // only between distinct instants: a flush between two same-instant
  // packets may legitimately reorder their cross-port processing
  // (DESIGN.md §15), and real sample timers never tie a packet exactly.
  const auto trace = AttackScenarioTrace();
  const std::string reference = RenderedAlerts(RunShardedMp(trace, 4, 4));
  ShardedConfig config;
  config.shards = 4;
  config.producers = 4;
  ShardedIds engine(config);
  {
    capture::MpIngest mp(engine, 4);
    sim::Time last;
    for (size_t i = 0; i < trace.size(); ++i) {
      mp.Ingest(trace[i].dgram, trace[i].from_outside, trace[i].when);
      last = trace[i].when;
      if (i % 97 == 96 && i + 1 < trace.size() &&
          trace[i + 1].when > trace[i].when) {
        mp.Quiesce();
        engine.Flush(last);
        mp.Resume();
      }
    }
    mp.Finish();
    engine.Flush(last);
  }
  engine.Stop();
  EXPECT_EQ(reference, RenderedAlerts(engine.alerts()));
}

TEST(ShardedOwnership, MpRenegotiationRetractsExactlyOnce) {
  // The renegotiation chain from RenegotiationMovesMediaBetweenShards,
  // under concurrent producers: claims land inline on the dispatcher's
  // port while feeders race RTP through routing snapshots that may be one
  // claim behind. Every superseded claim must still retract exactly once
  // — same transfer and retract counters as the single-producer run, one
  // surviving owner — or split per-endpoint state would make detection
  // depend on producer timing.
  const net::Endpoint media{net::IpAddress(10, 5, 0, 10), 40000};
  TraceBuilder b;
  b.Step();
  b.Add(SipDgram(MakeInvite("xfer-a@trace", "bob", media, kProxyA), kProxyA,
                 kProxyB),
        true);
  b.Step();
  for (int i = 0; i < 16; ++i) {
    const std::string call_id = "xfer-b-" + std::to_string(i) + "@trace";
    b.Add(SipDgram(MakeInvite(call_id, "bob", media, kProxyA), kProxyA,
                   kProxyB),
          true);
    b.Step();
    // In-flight media between consecutive claims: routed against whatever
    // snapshot its producer holds, it must land on (or be retracted from)
    // exactly one shard.
    b.Add(RtpDgram(0xAB01u, static_cast<uint16_t>(i),
                   160u * static_cast<uint32_t>(i),
                   {net::IpAddress(10, 1, 0, 10), 20002}, media),
          true);
    b.Step();
  }
  const auto run = [&](int producers) {
    ShardedConfig config;
    config.shards = 4;
    config.producers = producers;
    ShardedIds engine(config);
    uint64_t transfers = 0;
    uint64_t retracts = 0;
    size_t media_entries = 0;
    {
      capture::MpIngest mp(engine, producers);
      sim::Time last;
      for (const TracePacket& p : b.trace()) {
        mp.Ingest(p.dgram, p.from_outside, p.when);
        last = p.when;
      }
      mp.Finish();
      engine.Flush(last);
      transfers = engine.ownership_transfers();
      retracts = engine.early_media_retracts();
      for (int i = 0; i < engine.shards(); ++i) {
        media_entries += engine.shard_vids(i).fact_base().media_index_count();
      }
    }
    engine.Stop();
    return std::tuple{transfers, retracts, media_entries};
  };
  const auto single = run(1);
  EXPECT_GT(std::get<0>(single), 0u);
  EXPECT_EQ(std::get<2>(single), 1u);
  for (int producers : {2, 4}) {
    EXPECT_EQ(run(producers), single) << "producers=" << producers;
  }
}

TEST(Watchdog, StalledProducerLaneAttributedToProducer) {
  // A worker merge-gated on an ingest lane whose producer stopped
  // advancing its frontier is the PRODUCER's failure: the watchdog must
  // say so (kEngineProducerStall, group "producer|<lane>"), not accuse
  // the healthy worker.
  ShardedConfig config;
  config.shards = 1;
  config.producers = 2;
  config.watchdog_stall_ms = 50;
  ShardedIds engine(config);
  engine.port(0).set_inline_drain(true);
  TraceBuilder b;
  b.Step();
  b.EstablishCall("pstall@trace", {net::IpAddress(10, 1, 0, 10), 20000},
                  {net::IpAddress(10, 2, 0, 10), 30000});
  uint64_t seq = 0;
  sim::Time last;
  for (const TracePacket& p : b.trace()) {
    engine.port(0).Ingest(p.dgram, p.from_outside, p.when, seq++);
    last = p.when;
  }
  // Port 0 committed its batches past `last`; port 1 never says a word,
  // so the worker's merge is gated on lane 1 with work visibly pending.
  const auto cap = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (engine.CountAlerts(AlertKind::kEngineHealth) == 0 &&
         std::chrono::steady_clock::now() < cap) {
    engine.port(0).Heartbeat(last + sim::Duration::Millis(5));
    engine.Pump();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_GE(engine.CountAlerts(AlertKind::kEngineHealth), 1u)
      << "watchdog failed to flag the stalled producer within 30 s";
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 1u);
  for (const Alert& alert : engine.alerts()) {
    if (alert.kind != AlertKind::kEngineHealth) continue;
    EXPECT_EQ(alert.classification, kEngineProducerStall);
    EXPECT_EQ(alert.machine, "watchdog");
    EXPECT_EQ(alert.group, "producer|1");
  }
  // The delinquent producer speaks again: the engine recovers, drains,
  // and the closed episode never re-alerts.
  engine.port(1).Heartbeat(last + sim::Duration::Millis(10));
  engine.Flush(last + sim::Duration::Millis(10));
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 1u);
  engine.Stop();
}

TEST(ShardedStress, MpMixedTrafficUnderChurn) {
  // The multi-producer sibling of MixedTrafficUnderChurn, and the TSan
  // stress surface for the whole MPSC path: dispatcher + three feeders
  // over tiny rings (constant wraparound), periodic quiesce/flush/resume
  // cycles, and mid-run producer churn (tear the MpIngest down and build
  // a new one over the same ports). Scaled up in the CI TSan lane via
  // SHARDED_STRESS_PACKETS.
  int packets = 20'000;
  if (const char* s = std::getenv("SHARDED_STRESS_PACKETS")) {
    packets = std::max(1000, std::atoi(s));
  }
  ShardedConfig config;
  config.shards = 4;
  config.producers = 4;
  config.ring_capacity = 64;
  ShardedIds engine(config);
  auto mp = std::make_unique<capture::MpIngest>(engine, 4);
  sim::Time now = sim::Time::FromNanos(1);
  uint64_t fed = 0;
  for (int k = 0; k < packets; ++k) {
    now = now + sim::Duration::Micros(97);
    if (k % 20 == 0) {
      const std::string call_id =
          "stress-" + std::to_string(k / 20) + "@trace";
      const net::Endpoint caller{net::IpAddress(10, 1, 0, 10),
                                 static_cast<uint16_t>(20000 + (k / 10) % 500)};
      mp->Ingest(SipDgram(MakeInvite(call_id, "bob", caller, kProxyA),
                          kProxyA, kProxyB),
                 true, now);
    } else {
      const net::Endpoint dst{net::IpAddress(10, 2, 0, 10),
                              static_cast<uint16_t>(30000 + 2 * (k % 64))};
      mp->Ingest(RtpDgram(0x51000u + static_cast<uint32_t>(k % 64),
                          static_cast<uint16_t>(k),
                          160u * static_cast<uint32_t>(k),
                          {net::IpAddress(10, 1, 0, 10), 20002}, dst),
                 true, now);
    }
    ++fed;
    if (k % 5000 == 4999) {
      mp->Quiesce();
      engine.Flush(now);
      mp->Resume();
    }
    if (k == packets / 2) {
      // Producer churn: the old dispatcher and feeders retire, fresh
      // threads pick up the same ports without losing or reordering
      // anything already vouched for.
      mp->Finish();
      mp = std::make_unique<capture::MpIngest>(engine, 4);
    }
  }
  mp->Finish();
  engine.Flush(now);
  uint64_t inspected = 0;
  for (int i = 0; i < engine.shards(); ++i) {
    inspected += engine.shard_vids(i).stats().packets;
  }
  EXPECT_EQ(inspected, fed);
  EXPECT_EQ(engine.CountAlerts(AlertKind::kEngineHealth), 0u);
  EXPECT_EQ(engine.watchdog_stalls(), 0u);
  engine.Stop();
}

}  // namespace
}  // namespace vids::ids
