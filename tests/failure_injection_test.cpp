// Targeted failure injection: lose exactly one specific message and verify
// the protocol machinery recovers — the reliability mechanisms RFC 3261
// prescribes for UDP, each exercised in isolation:
//   lost INVITE  → timer A retransmission
//   lost 200 OK  → UAS-core 2xx retransmission (§13.3.1.4)
//   lost ACK     → retransmitted 2xx answered with a fresh ACK (§13.2.2.4)
//   lost BYE     → timer E retransmission
// And the vIDS must ride through all of it without false alarms.
#include <gtest/gtest.h>

#include "sip/message.h"
#include "testbed/testbed.h"

namespace vids::testbed {
namespace {

// Matches the first datagram whose SIP content satisfies `want`; drops it.
class DropOnce {
 public:
  using Predicate = std::function<bool(const sip::Message&)>;
  explicit DropOnce(Predicate want) : want_(std::move(want)) {}

  net::Link::DropFilter AsFilter() {
    return [this](const net::Datagram& dgram) {
      if (done_ || dgram.kind != net::PayloadKind::kSip) return false;
      const auto message = sip::Message::Parse(dgram.payload);
      if (!message || !want_(*message)) return false;
      done_ = true;
      return true;
    };
  }
  bool fired() const { return done_; }

 private:
  Predicate want_;
  bool done_ = false;
};

class InjectionFixture : public ::testing::Test {
 protected:
  InjectionFixture() {
    TestbedConfig config;
    config.seed = 99;
    config.uas_per_network = 2;
    config.cloud.loss_rate = 0.0;  // only the injected loss
    bed_ = std::make_unique<Testbed>(config);
    bed_->RunFor(sim::Duration::Seconds(2));
  }

  // Installs `filter` on every link (the drop predicate aims at the target
  // message, whichever hop it crosses first).
  void InstallEverywhere(DropOnce& dropper) {
    for (const auto& link : bed_->network().links()) {
      link->SetDropFilter(dropper.AsFilter());
    }
  }

  // Places one a0→b0 call of 10 s and runs well past teardown.
  sip::CallRecord RunOneCall() {
    auto& caller = *bed_->uas_a()[0];
    caller.ua().PlaceCall(bed_->uas_b()[0]->ua().address_of_record(),
                          sim::Duration::Seconds(10));
    bed_->RunFor(sim::Duration::Seconds(60));
    EXPECT_EQ(caller.ua().completed_calls().size(), 1u);
    EXPECT_EQ(caller.ua().active_call_count(), 0);
    return caller.ua().completed_calls().empty()
               ? sip::CallRecord{}
               : caller.ua().completed_calls()[0];
  }

  void ExpectNoFalsePositives() {
    EXPECT_EQ(bed_->vids()->CountAlerts(ids::AlertKind::kAttackPattern), 0u);
    EXPECT_EQ(bed_->vids()->CountAlerts(ids::AlertKind::kSpecDeviation), 0u);
  }

  std::unique_ptr<Testbed> bed_;
};

TEST_F(InjectionFixture, LostInviteIsRetransmitted) {
  DropOnce dropper([](const sip::Message& message) {
    return message.IsRequest() && message.method() == sip::Method::kInvite;
  });
  InstallEverywhere(dropper);
  const auto record = RunOneCall();
  EXPECT_TRUE(dropper.fired());
  EXPECT_FALSE(record.failed);
  // Setup took at least one timer-A period (T1 = 500 ms) longer.
  EXPECT_GT(record.SetupDelay()->ToMillis(), 500.0);
  ExpectNoFalsePositives();
}

TEST_F(InjectionFixture, Lost180OnlyDelaysRingingPerception) {
  DropOnce dropper([](const sip::Message& message) {
    return message.IsResponse() && message.status() == 180;
  });
  InstallEverywhere(dropper);
  const auto record = RunOneCall();
  EXPECT_TRUE(dropper.fired());
  // 1xx are unacknowledged and may be lost; the call still answers.
  EXPECT_FALSE(record.failed);
  EXPECT_TRUE(record.answered.has_value());
  ExpectNoFalsePositives();
}

TEST_F(InjectionFixture, Lost200IsRetransmittedByUasCore) {
  DropOnce dropper([](const sip::Message& message) {
    return message.IsResponse() && message.status() == 200 &&
           message.method() == sip::Method::kInvite;
  });
  InstallEverywhere(dropper);
  const auto record = RunOneCall();
  EXPECT_TRUE(dropper.fired());
  EXPECT_FALSE(record.failed);
  ASSERT_TRUE(record.answered.has_value());
  // Answer arrived roughly one T1 late, not 32 s late.
  EXPECT_LT((*record.answered - record.started).ToSeconds(), 3.0);
  ExpectNoFalsePositives();
}

TEST_F(InjectionFixture, LostAckIsReissuedForRetransmitted200) {
  DropOnce dropper([](const sip::Message& message) {
    return message.IsRequest() && message.method() == sip::Method::kAck;
  });
  InstallEverywhere(dropper);
  const auto record = RunOneCall();
  EXPECT_TRUE(dropper.fired());
  EXPECT_FALSE(record.failed);
  // The callee saw the dialog through to a clean end too.
  ASSERT_EQ(bed_->uas_b()[0]->ua().completed_calls().size(), 1u);
  EXPECT_FALSE(bed_->uas_b()[0]->ua().completed_calls()[0].failed);
  ExpectNoFalsePositives();
}

TEST_F(InjectionFixture, LostByeIsRetransmitted) {
  DropOnce dropper([](const sip::Message& message) {
    return message.IsRequest() && message.method() == sip::Method::kBye;
  });
  InstallEverywhere(dropper);
  const auto record = RunOneCall();
  EXPECT_TRUE(dropper.fired());
  EXPECT_FALSE(record.failed);
  // Both sides closed.
  EXPECT_EQ(bed_->uas_b()[0]->ua().active_call_count(), 0);
  ExpectNoFalsePositives();
}

TEST_F(InjectionFixture, Lost200ForByeAbsorbedByServerTransaction) {
  DropOnce dropper([](const sip::Message& message) {
    return message.IsResponse() && message.status() == 200 &&
           message.method() == sip::Method::kBye;
  });
  InstallEverywhere(dropper);
  const auto record = RunOneCall();
  EXPECT_TRUE(dropper.fired());
  EXPECT_FALSE(record.failed);
  ExpectNoFalsePositives();
}

}  // namespace
}  // namespace vids::testbed
