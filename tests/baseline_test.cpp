#include <gtest/gtest.h>

#include "baseline/rate_ids.h"
#include "baseline/rule_ids.h"
#include "baseline/signature_ids.h"
#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"

namespace vids::baseline {
namespace {

net::Datagram Dgram(std::string payload) {
  net::Datagram dgram;
  dgram.src = net::Endpoint{net::IpAddress(10, 9, 0, 66), 5060};
  dgram.dst = net::Endpoint{net::IpAddress(10, 2, 0, 1), 5060};
  dgram.payload = std::move(payload);
  return dgram;
}

std::string ValidSip() {
  return "OPTIONS sip:x@y SIP/2.0\r\nCSeq: 1 OPTIONS\r\n"
         "Content-Length: 0\r\n\r\n";
}

TEST(SignatureIds, FlagsMalformedTraffic) {
  SignatureIds ids;
  ids.InstallDefaultRules();
  ids.Inspect(Dgram("garbage packet"), true, sim::Time{});
  ids.Inspect(Dgram(ValidSip()), true, sim::Time{});
  ids.Inspect(Dgram(rtp::RtpHeader{}.Serialize()), true, sim::Time{});
  EXPECT_EQ(ids.CountAlerts("malformed-packet"), 1u);
  EXPECT_EQ(ids.packets_inspected(), 3u);
}

TEST(SignatureIds, MatchesKnownFingerprints) {
  SignatureIds ids;
  ids.InstallDefaultRules();
  ids.Inspect(Dgram("OPTIONS sip:x@y SIP/2.0\r\nCSeq: 1 OPTIONS\r\n"
                    "User-Agent: friendly-scanner\r\nContent-Length: 0\r\n\r\n"),
              true, sim::Time{});
  EXPECT_EQ(ids.CountAlerts("scanner-user-agent"), 1u);
}

TEST(SignatureIds, SourceScopedRule) {
  SignatureIds ids;
  ids.AddRule(SignatureRule{.name = "bad-host",
                            .pattern = "",
                            .src_ip = net::IpAddress(10, 9, 0, 66),
                            .match_malformed = false});
  ids.Inspect(Dgram(ValidSip()), true, sim::Time{});
  auto other = Dgram(ValidSip());
  other.src.ip = net::IpAddress(10, 1, 0, 1);
  ids.Inspect(other, true, sim::Time{});
  EXPECT_EQ(ids.CountAlerts("bad-host"), 1u);
}

// The structural blindness the ablation bench quantifies: a spoofed BYE is
// byte-for-byte legitimate SIP, so no per-packet signature can flag it.
TEST(SignatureIds, CannotSeeSpoofedBye) {
  SignatureIds ids;
  ids.InstallDefaultRules();
  ids.Inspect(Dgram("BYE sip:bob@10.2.0.10 SIP/2.0\r\n"
                    "Via: SIP/2.0/UDP 10.9.0.66:5060;branch=z9hG4bK1\r\n"
                    "From: <sip:alice@a.example.com>;tag=t1\r\n"
                    "To: <sip:bob@b.example.com>;tag=t2\r\n"
                    "Call-ID: victim-call@a\r\nCSeq: 2 BYE\r\n"
                    "Content-Length: 0\r\n\r\n"),
              true, sim::Time{});
  EXPECT_TRUE(ids.alerts().empty());
}

TEST(RateIds, AlertsOnFloodOncePerWindow) {
  RateIds ids(RateIds::Config{.threshold = 10,
                              .window = sim::Duration::Seconds(1)});
  for (int i = 0; i < 50; ++i) {
    ids.Inspect(Dgram("x"), true, sim::Time{} + sim::Duration::Millis(i));
  }
  ASSERT_EQ(ids.alerts().size(), 1u);
  EXPECT_EQ(ids.alerts()[0].src, net::IpAddress(10, 9, 0, 66));
}

TEST(RateIds, LowRateNeverAlerts) {
  RateIds ids(RateIds::Config{.threshold = 10,
                              .window = sim::Duration::Seconds(1)});
  for (int i = 0; i < 100; ++i) {
    ids.Inspect(Dgram("x"), true, sim::Time{} + sim::Duration::Millis(200 * i));
  }
  EXPECT_TRUE(ids.alerts().empty());
}

// ----------------------------------------------------------- rule IDS

class RuleIdsFixture : public ::testing::Test {
 protected:
  sim::Time At(double seconds) {
    return sim::Time{} + sim::Duration::FromSeconds(seconds);
  }

  net::Datagram SipDgram(const sip::Message& message, net::IpAddress src) {
    net::Datagram dgram;
    dgram.src = net::Endpoint{src, 5060};
    dgram.dst = net::Endpoint{net::IpAddress(10, 2, 0, 1), 5060};
    dgram.payload = message.Serialize();
    dgram.kind = net::PayloadKind::kSip;
    return dgram;
  }

  sip::Message Invite(const std::string& call_id) {
    auto invite = sip::Message::MakeRequest(
        sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com"));
    sip::Via via;
    via.sent_by = net::Endpoint{net::IpAddress(10, 1, 0, 1), 5060};
    via.branch = "z9hG4bK" + call_id;
    invite.PushVia(via);
    sip::NameAddr from;
    from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
    from.SetTag("t");
    invite.SetFrom(from);
    sip::NameAddr to;
    to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
    invite.SetTo(to);
    invite.SetCallId(call_id);
    invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
    invite.SetBody(
        sdp::MakeAudioOffer(net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000})
            .Serialize(),
        "application/sdp");
    return invite;
  }

  sip::Message Response(const sip::Message& request, int status,
                        bool with_sdp) {
    auto response = sip::Message::MakeResponse(status);
    response.SetCallId(std::string(*request.CallId()));
    response.SetCseq(*request.Cseq());
    if (with_sdp) {
      response.SetBody(
          sdp::MakeAudioOffer(
              net::Endpoint{net::IpAddress(10, 2, 0, 10), 30000})
              .Serialize(),
          "application/sdp");
    }
    return response;
  }

  sip::Message Bye(const std::string& call_id) {
    auto bye = sip::Message::MakeRequest(
        sip::Method::kBye, *sip::SipUri::Parse("sip:bob@10.2.0.10"));
    bye.SetCallId(call_id);
    bye.SetCseq(sip::CSeq{2, sip::Method::kBye});
    return bye;
  }

  net::Datagram Media(const std::string& /*call*/, uint16_t seq) {
    rtp::RtpHeader header;
    header.ssrc = 7;
    header.sequence_number = seq;
    net::Datagram dgram;
    dgram.src = net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000};
    dgram.dst = net::Endpoint{net::IpAddress(10, 2, 0, 10), 30000};
    dgram.payload = header.Serialize();
    dgram.kind = net::PayloadKind::kRtp;
    return dgram;
  }

  baseline::RuleIds ids_;
};

TEST_F(RuleIdsFixture, RtpAfterByeRuleFires) {
  const auto invite = Invite("c1");
  ids_.Inspect(SipDgram(invite, net::IpAddress(10, 1, 0, 1)), true, At(0));
  ids_.Inspect(SipDgram(Response(invite, 200, true),
                        net::IpAddress(10, 2, 0, 1)),
               false, At(0.2));
  ids_.Inspect(Media("c1", 1), true, At(0.5));
  ids_.Inspect(SipDgram(Bye("c1"), net::IpAddress(10, 9, 0, 66)), true,
               At(1.0));
  // Within grace: tolerated.
  ids_.Inspect(Media("c1", 2), true, At(1.05));
  EXPECT_EQ(ids_.CountAlerts("rtp-after-bye"), 0u);
  // Past grace: the cross-protocol rule fires.
  ids_.Inspect(Media("c1", 3), true, At(1.5));
  EXPECT_EQ(ids_.CountAlerts("rtp-after-bye"), 1u);
  // Dedup: the ongoing stream doesn't alert per packet.
  ids_.Inspect(Media("c1", 4), true, At(1.6));
  EXPECT_EQ(ids_.CountAlerts("rtp-after-bye"), 1u);
}

TEST_F(RuleIdsFixture, CancelMismatchRuleFires) {
  const auto invite = Invite("c2");
  ids_.Inspect(SipDgram(invite, net::IpAddress(10, 1, 0, 1)), true, At(0));
  auto cancel = sip::Message::MakeRequest(
      sip::Method::kCancel, *sip::SipUri::Parse("sip:bob@b.example.com"));
  cancel.SetCallId("c2");
  cancel.SetCseq(sip::CSeq{1, sip::Method::kCancel});
  ids_.Inspect(SipDgram(cancel, net::IpAddress(10, 9, 0, 66)), true, At(0.2));
  EXPECT_EQ(ids_.CountAlerts("cancel-source-mismatch"), 1u);
}

TEST_F(RuleIdsFixture, InviteRateRuleFires) {
  for (int i = 0; i <= 5; ++i) {
    ids_.Inspect(SipDgram(Invite("flood-" + std::to_string(i)),
                          net::IpAddress(10, 9, 0, 66)),
                 true, At(0.01 * i));
  }
  EXPECT_EQ(ids_.CountAlerts("invite-rate"), 1u);
}

TEST_F(RuleIdsFixture, CleanCallRaisesNothing) {
  const auto invite = Invite("clean");
  ids_.Inspect(SipDgram(invite, net::IpAddress(10, 1, 0, 1)), true, At(0));
  ids_.Inspect(SipDgram(Response(invite, 200, true),
                        net::IpAddress(10, 2, 0, 1)),
               false, At(0.2));
  for (int i = 0; i < 100; ++i) {
    ids_.Inspect(Media("clean", static_cast<uint16_t>(i)), true,
                 At(0.3 + 0.01 * i));
  }
  ids_.Inspect(SipDgram(Bye("clean"), net::IpAddress(10, 1, 0, 10)), true,
               At(2.0));
  EXPECT_TRUE(ids_.alerts().empty());
}

// The structural gap the ablation bench shows: no rule, no detection —
// an in-dialog hijack INVITE is just "another INVITE" to the rule engine.
TEST_F(RuleIdsFixture, UnanticipatedAttackPassesSilently) {
  const auto invite = Invite("c3");
  ids_.Inspect(SipDgram(invite, net::IpAddress(10, 1, 0, 1)), true, At(0));
  ids_.Inspect(SipDgram(Response(invite, 200, true),
                        net::IpAddress(10, 2, 0, 1)),
               false, At(0.2));
  auto hijack = Invite("c3");  // same Call-ID, alien source
  ids_.Inspect(SipDgram(hijack, net::IpAddress(10, 9, 0, 66)), true, At(1.0));
  EXPECT_TRUE(ids_.alerts().empty());
}

TEST(RateIds, CountsPerSource) {
  RateIds ids(RateIds::Config{.threshold = 5,
                              .window = sim::Duration::Seconds(1)});
  // Two sources each below threshold: no alert even though the sum exceeds.
  for (int i = 0; i < 5; ++i) {
    auto d1 = Dgram("x");
    auto d2 = Dgram("x");
    d2.src.ip = net::IpAddress(10, 9, 0, 67);
    ids.Inspect(d1, true, sim::Time{} + sim::Duration::Millis(i));
    ids.Inspect(d2, true, sim::Time{} + sim::Duration::Millis(i));
  }
  EXPECT_TRUE(ids.alerts().empty());
}

}  // namespace
}  // namespace vids::baseline
