// End-to-end SIP call flows over the Fig. 7 topology (vIDS disabled):
// registration, INVITE through two proxies, media, BYE, CANCEL, busy.
#include <gtest/gtest.h>

#include "testbed/testbed.h"

namespace vids::testbed {
namespace {

class CallFixture : public ::testing::Test {
 protected:
  static TestbedConfig Config() {
    TestbedConfig config;
    config.vids_enabled = false;
    config.uas_per_network = 3;
    config.seed = 7;
    return config;
  }

  CallFixture() : bed_(Config()) {
    // Let the REGISTERs complete.
    bed_.RunFor(sim::Duration::Seconds(2));
  }

  Testbed bed_;
};

TEST_F(CallFixture, RegistrationPopulatesLocationService) {
  EXPECT_EQ(bed_.proxy_a().binding_count(), 3u);
  EXPECT_EQ(bed_.proxy_b().binding_count(), 3u);
}

TEST_F(CallFixture, BasicCallCompletesWithMedia) {
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[0];
  caller.ua().PlaceCall(callee.ua().address_of_record(),
                        sim::Duration::Seconds(20));
  bed_.RunFor(sim::Duration::Seconds(40));

  const auto& records = caller.ua().completed_calls();
  ASSERT_EQ(records.size(), 1u);
  const auto& record = records[0];
  EXPECT_FALSE(record.failed);
  ASSERT_TRUE(record.ringing.has_value());
  ASSERT_TRUE(record.answered.has_value());
  ASSERT_TRUE(record.ended.has_value());
  // Setup delay ≈ 2× one-way (50 ms cloud each way) plus serialization.
  const double setup = record.SetupDelay()->ToSeconds();
  EXPECT_GT(setup, 0.09);
  EXPECT_LT(setup, 0.4);
  // The call lasted about its planned 20 s duration.
  EXPECT_NEAR((*record.ended - *record.answered).ToSeconds(), 20.0, 2.0);

  // Media flowed in both directions (G.729 with VAD ≈ 39% activity → tens
  // of packets per second of call).
  EXPECT_GT(caller.AggregateReceiverStats().packets_received, 100u);
  EXPECT_GT(callee.AggregateReceiverStats().packets_received, 100u);
  // Callee also logged the incoming call.
  ASSERT_EQ(callee.ua().completed_calls().size(), 1u);
  EXPECT_FALSE(callee.ua().completed_calls()[0].failed);
  EXPECT_FALSE(callee.ua().completed_calls()[0].outgoing);
}

TEST_F(CallFixture, MediaDelayIsDominatedByTheCloud) {
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[1];
  caller.ua().PlaceCall(callee.ua().address_of_record(),
                        sim::Duration::Seconds(20));
  bed_.RunFor(sim::Duration::Seconds(30));
  const auto stats = callee.AggregateReceiverStats();
  ASSERT_GT(stats.packets_received, 0u);
  EXPECT_NEAR(stats.MeanDelaySeconds(), 0.050, 0.01);
}

TEST_F(CallFixture, CloudLossShowsUpAsSequenceGaps) {
  auto& caller = *bed_.uas_a()[1];
  auto& callee = *bed_.uas_b()[1];
  caller.ua().PlaceCall(callee.ua().address_of_record(),
                        sim::Duration::Seconds(60));
  bed_.RunFor(sim::Duration::Seconds(80));
  const auto stats = callee.AggregateReceiverStats();
  ASSERT_GT(stats.packets_received, 1000u);
  // 0.42% loss → the receiver observed at least a few gaps.
  EXPECT_GT(stats.packets_lost, 0u);
  const double loss = static_cast<double>(stats.packets_lost) /
                      static_cast<double>(stats.packets_received +
                                          stats.packets_lost);
  EXPECT_NEAR(loss, 0.0042, 0.004);
}

TEST_F(CallFixture, CalleeHangupAlsoWorks) {
  // The callee's planned "duration" is controlled by the caller here, so
  // instead: place a call, then have the callee hang up early by force.
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[2];
  const auto call_id = caller.ua().PlaceCall(
      callee.ua().address_of_record(), sim::Duration::Seconds(300));
  bed_.RunFor(sim::Duration::Seconds(5));
  callee.ua().HangUp(call_id);
  bed_.RunFor(sim::Duration::Seconds(10));
  ASSERT_EQ(caller.ua().completed_calls().size(), 1u);
  EXPECT_FALSE(caller.ua().completed_calls()[0].failed);
  EXPECT_EQ(caller.ua().active_call_count(), 0);
  EXPECT_EQ(callee.ua().active_call_count(), 0);
}

TEST_F(CallFixture, CancelBeforeAnswerYields487Path) {
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[0];
  const auto call_id = caller.ua().PlaceCall(
      callee.ua().address_of_record(), sim::Duration::Seconds(60));
  // Cancel while still ringing (answer_delay is 500 ms; cancel at 200 ms
  // after the INVITE had time to propagate ~55 ms).
  bed_.scheduler().ScheduleAfter(sim::Duration::Millis(200), [&] {
    caller.ua().CancelCall(call_id);
  });
  bed_.RunFor(sim::Duration::Seconds(10));
  ASSERT_EQ(caller.ua().completed_calls().size(), 1u);
  EXPECT_TRUE(caller.ua().completed_calls()[0].failed);
  EXPECT_EQ(caller.ua().active_call_count(), 0);
  EXPECT_EQ(callee.ua().active_call_count(), 0);
  // No media ever started.
  EXPECT_EQ(callee.AggregateReceiverStats().packets_received, 0u);
}

TEST_F(CallFixture, BusyCalleeRefusesExtraCalls) {
  auto& callee = *bed_.uas_b()[0];
  // max_concurrent_calls defaults to 3: the 4th simultaneous call is busy.
  for (int i = 0; i < 3; ++i) {
    bed_.uas_a()[static_cast<size_t>(i)]->ua().PlaceCall(
        callee.ua().address_of_record(), sim::Duration::Seconds(60));
  }
  bed_.RunFor(sim::Duration::Seconds(2));
  EXPECT_EQ(callee.ua().active_call_count(), 3);
  auto& fourth = *bed_.uas_a()[0];
  fourth.ua().PlaceCall(callee.ua().address_of_record(),
                        sim::Duration::Seconds(60));
  bed_.RunFor(sim::Duration::Seconds(5));
  // The 4th call failed (486 Busy Here).
  ASSERT_GE(fourth.ua().completed_calls().size(), 1u);
  EXPECT_TRUE(fourth.ua().completed_calls().back().failed);
}

TEST_F(CallFixture, ReinviteRefreshesEstablishedDialog) {
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[0];
  const auto call_id = caller.ua().PlaceCall(
      callee.ua().address_of_record(), sim::Duration::Seconds(30));
  bed_.RunFor(sim::Duration::Seconds(5));
  // Refresh from the caller side mid-call.
  EXPECT_TRUE(caller.ua().Reinvite(call_id));
  bed_.RunFor(sim::Duration::Seconds(5));
  // Call survives the refresh and tears down normally.
  EXPECT_EQ(caller.ua().active_call_count(), 1);
  bed_.RunFor(sim::Duration::Seconds(40));
  ASSERT_EQ(caller.ua().completed_calls().size(), 1u);
  EXPECT_FALSE(caller.ua().completed_calls()[0].failed);
  EXPECT_EQ(callee.ua().active_call_count(), 0);
}

TEST_F(CallFixture, ReinviteRequiresEstablishedCall) {
  auto& caller = *bed_.uas_a()[0];
  EXPECT_FALSE(caller.ua().Reinvite("no-such-call@x"));
  const auto call_id = caller.ua().PlaceCall(
      bed_.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(30));
  // Still ringing: not established yet.
  EXPECT_FALSE(caller.ua().Reinvite(call_id));
}

TEST_F(CallFixture, UnknownCalleeFailsWith404) {
  auto& caller = *bed_.uas_a()[0];
  sip::SipUri nobody;
  nobody.user = "nobody";
  nobody.host = "b.example.com";
  caller.ua().PlaceCall(nobody, sim::Duration::Seconds(10));
  bed_.RunFor(sim::Duration::Seconds(5));
  ASSERT_EQ(caller.ua().completed_calls().size(), 1u);
  EXPECT_TRUE(caller.ua().completed_calls()[0].failed);
}

TEST_F(CallFixture, TwoSimultaneousCallsKeepMediaApart) {
  auto& caller0 = *bed_.uas_a()[0];
  auto& caller1 = *bed_.uas_a()[1];
  auto& callee = *bed_.uas_b()[0];
  caller0.ua().PlaceCall(callee.ua().address_of_record(),
                         sim::Duration::Seconds(15));
  caller1.ua().PlaceCall(callee.ua().address_of_record(),
                         sim::Duration::Seconds(15));
  bed_.RunFor(sim::Duration::Seconds(30));
  EXPECT_EQ(caller0.ua().completed_calls().size(), 1u);
  EXPECT_EQ(caller1.ua().completed_calls().size(), 1u);
  EXPECT_FALSE(caller0.ua().completed_calls()[0].failed);
  EXPECT_FALSE(caller1.ua().completed_calls()[0].failed);
  // Both callers received their own media back.
  EXPECT_GT(caller0.AggregateReceiverStats().packets_received, 50u);
  EXPECT_GT(caller1.AggregateReceiverStats().packets_received, 50u);
  // No stream leaked into the other call's session.
  EXPECT_EQ(caller0.AggregateReceiverStats().ssrc_mismatches, 0u);
  EXPECT_EQ(caller1.AggregateReceiverStats().ssrc_mismatches, 0u);
}

}  // namespace
}  // namespace vids::testbed
