// Digest authentication: codec, challenge/response registration flow, and
// the paper's §3.1 observation that authentication does not subsume the
// IDS — spoofed teardowns still work and still need the vIDS to be seen.
#include <gtest/gtest.h>

#include "sip/auth.h"
#include "testbed/testbed.h"

namespace vids::sip {
namespace {

TEST(DigestCodec, ChallengeRoundTrip) {
  DigestChallenge challenge{.realm = "b.example.com", .nonce = "n42"};
  const auto parsed = DigestChallenge::Parse(challenge.ToString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->realm, "b.example.com");
  EXPECT_EQ(parsed->nonce, "n42");
}

TEST(DigestCodec, CredentialsRoundTrip) {
  DigestChallenge challenge{.realm = "r", .nonce = "n1"};
  const auto credentials =
      AnswerChallenge(challenge, "alice", "secret", "REGISTER", "sip:r");
  const auto parsed = DigestCredentials::Parse(credentials.ToString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->username, "alice");
  EXPECT_EQ(parsed->nonce, "n1");
  EXPECT_EQ(parsed->response, credentials.response);
}

TEST(DigestCodec, ParseRejectsNonDigestAndIncomplete) {
  EXPECT_FALSE(DigestChallenge::Parse("Basic realm=\"x\"").has_value());
  EXPECT_FALSE(DigestChallenge::Parse("Digest realm=\"x\"").has_value());
  EXPECT_FALSE(
      DigestCredentials::Parse("Digest username=\"a\", nonce=\"n\"")
          .has_value());
}

TEST(DigestCodec, ResponseBindsEveryInput) {
  const auto base =
      ComputeDigestResponse("u", "r", "pw", "n", "REGISTER", "sip:r");
  EXPECT_NE(base,
            ComputeDigestResponse("x", "r", "pw", "n", "REGISTER", "sip:r"));
  EXPECT_NE(base,
            ComputeDigestResponse("u", "r", "XX", "n", "REGISTER", "sip:r"));
  EXPECT_NE(base,
            ComputeDigestResponse("u", "r", "pw", "m", "REGISTER", "sip:r"));
  EXPECT_NE(base,
            ComputeDigestResponse("u", "r", "pw", "n", "INVITE", "sip:r"));
  EXPECT_EQ(base,
            ComputeDigestResponse("u", "r", "pw", "n", "REGISTER", "sip:r"));
}

}  // namespace
}  // namespace vids::sip

namespace vids::testbed {
namespace {

class AuthFixture : public ::testing::Test {
 protected:
  static TestbedConfig Config() {
    TestbedConfig config;
    config.seed = 88;
    config.uas_per_network = 3;
    config.enable_registration_auth = true;
    return config;
  }

  AuthFixture() : bed_(Config()) { bed_.RunFor(sim::Duration::Seconds(2)); }

  Testbed bed_;
};

TEST_F(AuthFixture, ChallengedRegistrationSucceeds) {
  // Every UA answered its challenge and is bound.
  EXPECT_GE(bed_.proxy_a().auth_challenges_sent(), 3u);
  EXPECT_GE(bed_.proxy_b().auth_challenges_sent(), 3u);
  EXPECT_EQ(bed_.proxy_a().binding_count(), 3u);
  EXPECT_EQ(bed_.proxy_b().binding_count(), 3u);
  EXPECT_EQ(bed_.proxy_a().auth_failures(), 0u);
  for (const auto& ua : bed_.uas_a()) {
    EXPECT_TRUE(ua->ua().registered());
  }
}

TEST_F(AuthFixture, CallsWorkOverAuthenticatedRegistrations) {
  auto& caller = *bed_.uas_a()[0];
  caller.ua().PlaceCall(bed_.uas_b()[0]->ua().address_of_record(),
                        sim::Duration::Seconds(10));
  bed_.RunFor(sim::Duration::Seconds(30));
  ASSERT_EQ(caller.ua().completed_calls().size(), 1u);
  EXPECT_FALSE(caller.ua().completed_calls()[0].failed);
}

TEST_F(AuthFixture, WrongPasswordIsRefused) {
  sip::UserAgent::Config rogue_config;
  rogue_config.user = "b0";  // impersonation attempt
  rogue_config.domain = "b.example.com";
  rogue_config.outbound_proxy = bed_.proxy_b_endpoint();
  rogue_config.password = "wrong-password";
  sip::UserAgent rogue(bed_.scheduler(), bed_.attacker_host(), rogue_config);
  const auto failures_before = bed_.proxy_b().auth_failures();
  rogue.Register();
  bed_.RunFor(sim::Duration::Seconds(3));
  EXPECT_FALSE(rogue.registered());
  EXPECT_GT(bed_.proxy_b().auth_failures(), failures_before);
  // The genuine binding is untouched: b0 still reachable at its own phone.
  auto& caller = *bed_.uas_a()[1];
  caller.ua().PlaceCall(bed_.uas_b()[0]->ua().address_of_record(),
                        sim::Duration::Seconds(5));
  bed_.RunFor(sim::Duration::Seconds(20));
  ASSERT_EQ(caller.ua().completed_calls().size(), 1u);
  EXPECT_FALSE(caller.ua().completed_calls()[0].failed);
}

TEST_F(AuthFixture, UnauthenticatedRegisterOnlyGetsChallenged) {
  sip::UserAgent::Config mute_config;
  mute_config.user = "b1";
  mute_config.domain = "b.example.com";
  mute_config.outbound_proxy = bed_.proxy_b_endpoint();
  // No password: the 401 goes unanswered (password mismatch on retry is the
  // other test; here the UA answers with an empty password and fails).
  sip::UserAgent mute(bed_.scheduler(), bed_.attacker_host(), mute_config);
  mute.Register();
  bed_.RunFor(sim::Duration::Seconds(3));
  EXPECT_FALSE(mute.registered());
}

// The point of §3.1: authentication on registration does NOT stop the
// spoofed BYE — it rides the established dialog, and only the vIDS's
// cross-protocol state view exposes it.
TEST_F(AuthFixture, SpoofedByeStillWorksAndStillNeedsVids) {
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[0];
  const auto call_id = caller.ua().PlaceCall(
      callee.ua().address_of_record(), sim::Duration::Seconds(120));
  bed_.RunFor(sim::Duration::Seconds(3));
  const auto snap = bed_.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  bed_.attacker().SendSpoofedBye(*snap);
  bed_.RunFor(sim::Duration::Seconds(5));
  // The attack succeeded despite auth...
  EXPECT_EQ(callee.ua().active_call_count(), 0);
  // ...and the vIDS caught it.
  EXPECT_GE(bed_.vids()->CountAlerts(ids::kAttackByeDos), 1u);
}

}  // namespace
}  // namespace vids::testbed
