// Trace capture and offline replay: the recorded wire traffic of an attack
// run, re-analyzed by a fresh vIDS, reproduces the online verdicts.
#include <gtest/gtest.h>

#include <set>

#include "load/soak.h"
#include "vids/trace.h"
#include "testbed/testbed.h"

namespace vids::ids {
namespace {

TEST(TraceLog, SerializeParseRoundTrip) {
  TraceLog log;
  net::Datagram dgram;
  dgram.src = net::Endpoint{net::IpAddress(10, 1, 0, 1), 5060};
  dgram.dst = net::Endpoint{net::IpAddress(10, 2, 0, 1), 5060};
  dgram.payload = "binary\x00\xff\r\npayload";
  dgram.payload += '\0';
  dgram.kind = net::PayloadKind::kSip;
  dgram.padding_bytes = 321;
  log.Append(sim::Time::FromNanos(123456789), dgram, true);
  dgram.kind = net::PayloadKind::kRtp;
  dgram.padding_bytes = 0;
  log.Append(sim::Time::FromNanos(987654321), dgram, false);

  const auto parsed = TraceLog::Parse(log.Serialize());
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ(parsed->records()[0].when.nanos(), 123456789);
  EXPECT_TRUE(parsed->records()[0].from_outside);
  EXPECT_EQ(parsed->records()[0].dgram.payload, log.records()[0].dgram.payload);
  EXPECT_EQ(parsed->records()[0].dgram.padding_bytes, 321u);
  EXPECT_EQ(parsed->records()[1].dgram.kind, net::PayloadKind::kRtp);
  EXPECT_FALSE(parsed->records()[1].from_outside);
  // Idempotent.
  EXPECT_EQ(parsed->Serialize(), log.Serialize());
}

TEST(TraceLog, ParseRejectsMalformedLines) {
  EXPECT_FALSE(TraceLog::Parse("not a trace").has_value());
  EXPECT_FALSE(TraceLog::Parse("1 in 10.0.0.1:1 10.0.0.2:2 sip 0 zz")
                   .has_value());  // bad hex
  EXPECT_FALSE(TraceLog::Parse("1 sideways 10.0.0.1:1 10.0.0.2:2 sip 0 ab")
                   .has_value());
  EXPECT_FALSE(TraceLog::Parse("x in 10.0.0.1:1 10.0.0.2:2 sip 0 ab")
                   .has_value());
  // Truncated hex payload (odd number of nibbles).
  EXPECT_FALSE(TraceLog::Parse("1 in 10.0.0.1:1 10.0.0.2:2 sip 0 abc")
                   .has_value());
  // Missing fields (line cut off mid-record).
  EXPECT_FALSE(TraceLog::Parse("1 in 10.0.0.1:1 10.0.0.2:2 sip")
                   .has_value());
  // Empty trace is fine.
  const auto empty = TraceLog::Parse("\n\n");
  ASSERT_TRUE(empty.has_value());
  EXPECT_EQ(empty->size(), 0u);
}

TEST(TraceLog, ParseRejectsNonMonotonicTimestamps) {
  const std::string rewind =
      "200 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab\n"
      "100 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab\n";
  EXPECT_FALSE(TraceLog::Parse(rewind).has_value());
  // Equal timestamps are legal: distinct packets can share a tick.
  const std::string tied =
      "200 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab\n"
      "200 out 10.0.0.2:2 10.0.0.1:1 sip 0 ab\n";
  const auto parsed = TraceLog::Parse(tied);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(TraceLog, OfflineReplayReproducesOnlineAlerts) {
  // Online: record a BYE DoS run at the tap.
  testbed::TestbedConfig config;
  config.seed = 123;
  config.uas_per_network = 3;
  testbed::Testbed bed(config);
  TraceLog capture;
  bed.AddMonitor(capture.MakeRecorder(bed.scheduler()));
  bed.RunFor(sim::Duration::Seconds(2));
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(3));
  const auto snap = bed.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  bed.attacker().SendSpoofedBye(*snap);
  bed.RunFor(sim::Duration::Seconds(5));
  ASSERT_GE(bed.vids()->CountAlerts(kAttackByeDos), 1u);
  ASSERT_GT(capture.size(), 100u);

  const auto online_classes = [&] {
    std::set<std::string> classes;
    for (const auto& alert : bed.vids()->alerts()) {
      classes.insert(alert.classification);
    }
    return classes;
  }();

  // Offline: persist, reload, re-analyze with a fresh vIDS.
  const auto reloaded = TraceLog::Parse(capture.Serialize());
  ASSERT_TRUE(reloaded.has_value());
  sim::Scheduler offline_scheduler;
  Vids offline(offline_scheduler);
  // Stop where the online run stopped, so IDS-internal timers (teardown
  // grace, sweeps) have fired in both worlds or in neither.
  reloaded->ReplayInto(offline, offline_scheduler, bed.scheduler().Now());

  std::set<std::string> offline_classes;
  for (const auto& alert : offline.alerts()) {
    offline_classes.insert(alert.classification);
  }
  EXPECT_EQ(offline_classes, online_classes);
  EXPECT_GE(offline.CountAlerts(kAttackByeDos), 1u);
  EXPECT_EQ(offline.stats().packets, capture.size());

  // Replay must reproduce the IDS metric registry bit-for-bit, not just the
  // alert verdicts (histograms excluded: they sample wall-clock latency).
  EXPECT_EQ(offline.metrics().ToJson(/*include_histograms=*/false),
            bed.vids()->metrics().ToJson(/*include_histograms=*/false));
}

TEST(TraceLog, ReplayWithDifferentThresholdsChangesVerdicts) {
  // Record a mild INVITE burst (4 calls ≤ default threshold 5).
  testbed::TestbedConfig config;
  config.seed = 124;
  config.uas_per_network = 3;
  testbed::Testbed bed(config);
  TraceLog capture;
  bed.AddMonitor(capture.MakeRecorder(bed.scheduler()));
  bed.RunFor(sim::Duration::Seconds(2));
  bed.attacker().LaunchInviteFlood(bed.uas_b()[0]->ua().address_of_record(),
                                   bed.proxy_b_endpoint(), 4,
                                   sim::Duration::Millis(50));
  bed.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(bed.vids()->CountAlerts(kAttackInviteFlood), 0u);

  // Offline with a stricter threshold, the same traffic is a flood —
  // the forensics workflow the trace facility exists for.
  DetectionConfig strict;
  strict.invite_flood_threshold = 2;
  sim::Scheduler offline_scheduler;
  Vids offline(offline_scheduler, strict);
  capture.ReplayInto(offline, offline_scheduler);
  EXPECT_GE(offline.CountAlerts(kAttackInviteFlood), 1u);
}

TEST(TraceLog, ParseErrorsAreLineNumbered) {
  // Every rejection names the offending line and the defect, so a corrupt
  // multi-gigabyte capture points straight at its bad record. The first
  // line is always valid; the defect rides on line 2.
  const std::string good = "1 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab\n";
  const struct {
    const char* line;
    const char* needle;
  } cases[] = {
      {"2 in 10.0.0.1:1 10.0.0.2:2 sip 0 abc", "odd-length hex"},
      {"2 in 10.0.0.1:1 10.0.0.2:2 sip 0 azzz", "non-hex byte"},
      {"-5 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab", "negative nanosecond"},
      {"99999999999999999999999 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab",
       "bad nanosecond timestamp"},
      {"2 upward 10.0.0.1:1 10.0.0.2:2 sip 0 ab", "bad direction"},
      {"2 in 10.0.0.1 10.0.0.2:2 sip 0 ab", "bad src endpoint"},
      {"2 in 10.0.0.1:1 999.0.0.2:2 sip 0 ab", "bad dst endpoint"},
      {"2 in 10.0.0.1:1 10.0.0.2:2 quic 0 ab", "bad payload kind"},
      {"2 in 10.0.0.1:1 10.0.0.2:2 sip -1 ab", "bad padding-byte count"},
      {"2 in 10.0.0.1:1 10.0.0.2:2 sip 65507 ab", "payload"},
      {"0 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab", "timestamp rewind"},
      {"2 in 10.0.0.1:1 10.0.0.2:2 sip 0 ab extra", "expected 7 fields"},
      {"2 in 10.0.0.1:1 10.0.0.2:2 sip 0", "expected 7 fields"},
  };
  for (const auto& c : cases) {
    std::string error;
    const auto parsed = TraceLog::Parse(good + c.line, &error);
    EXPECT_FALSE(parsed.has_value()) << c.line;
    EXPECT_NE(error.find("line 2"), std::string::npos)
        << c.line << " -> " << error;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.line << " -> " << error;
  }
  // Success clears a stale error message.
  std::string error = "stale";
  ASSERT_TRUE(TraceLog::Parse(good, &error).has_value());
  EXPECT_TRUE(error.empty());
}

TEST(TraceLog, ParseAcceptsMaximumWireSizedRecord) {
  // padding + payload == 65507 is the largest datagram UDP/IPv4 can carry;
  // one byte more must fail closed.
  const std::string ok = "1 in 10.0.0.1:1 10.0.0.2:2 sip 65505 abcd";
  ASSERT_TRUE(TraceLog::Parse(ok).has_value());
  std::string error;
  EXPECT_FALSE(
      TraceLog::Parse("1 in 10.0.0.1:1 10.0.0.2:2 sip 65506 abcd", &error)
          .has_value());
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;
}

TEST(TraceLog, SoakRoundTripReproducesOnlineRun) {
  // The capture hook records every datagram a soak run feeds the online
  // engine; the serialized text, parsed back and replayed into a fresh
  // Vids, must reproduce the online alert list and metric registry
  // bit-for-bit (histograms excluded: they sample wall-clock latency).
  load::SoakConfig config;
  config.seed = 77;
  config.total_calls = 250;
  config.calls_per_second = 50;
  config.attack_every = 40;
  config.pause = sim::Duration::Seconds(20);
  config.sample_every = sim::Duration::Seconds(10);
  TraceLog capture;
  config.capture = &capture;
  load::SoakDriver driver(config);
  driver.Run();
  ASSERT_GT(capture.size(), 0u);
  ASSERT_GT(driver.vids().alerts().size(), 0u);

  std::string error;
  const auto parsed = TraceLog::Parse(capture.Serialize(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), capture.size());

  sim::Scheduler offline_scheduler;
  Vids offline(offline_scheduler, config.detection);
  offline.set_max_retained_alerts(config.max_retained_alerts);
  parsed->ReplayInto(offline, offline_scheduler, driver.scheduler().Now());

  const auto& online_alerts = driver.vids().alerts();
  const auto& offline_alerts = offline.alerts();
  ASSERT_EQ(offline_alerts.size(), online_alerts.size());
  for (size_t i = 0; i < online_alerts.size(); ++i) {
    EXPECT_EQ(offline_alerts[i].when, online_alerts[i].when) << i;
    EXPECT_EQ(offline_alerts[i].classification,
              online_alerts[i].classification)
        << i;
    EXPECT_EQ(offline_alerts[i].group, online_alerts[i].group) << i;
  }
  EXPECT_EQ(offline.metrics().ToJson(/*include_histograms=*/false),
            driver.vids().metrics().ToJson(/*include_histograms=*/false));
}

}  // namespace
}  // namespace vids::ids
