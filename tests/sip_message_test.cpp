#include <gtest/gtest.h>

#include "sip/message.h"

namespace vids::sip {
namespace {

constexpr const char* kInviteWire =
    "INVITE sip:bob@b.example.com SIP/2.0\r\n"
    "Via: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bK776asdhds\r\n"
    "Max-Forwards: 70\r\n"
    "To: \"Bob\" <sip:bob@b.example.com>\r\n"
    "From: \"Alice\" <sip:alice@a.example.com>;tag=1928301774\r\n"
    "Call-ID: a84b4c76e66710@10.1.0.10\r\n"
    "CSeq: 314159 INVITE\r\n"
    "Contact: <sip:alice@10.1.0.10:5060>\r\n"
    "Content-Type: application/sdp\r\n"
    "Content-Length: 4\r\n"
    "\r\n"
    "v=0\n";

TEST(SipUri, ParseFullForm) {
  const auto uri = SipUri::Parse("sip:alice@a.example.com:5070;transport=udp");
  ASSERT_TRUE(uri.has_value());
  EXPECT_EQ(uri->user, "alice");
  EXPECT_EQ(uri->host, "a.example.com");
  EXPECT_EQ(uri->port, 5070);
  EXPECT_EQ(uri->params, "transport=udp");
  EXPECT_EQ(uri->UserAtHost(), "alice@a.example.com");
  EXPECT_EQ(uri->ToString(), "sip:alice@a.example.com:5070;transport=udp");
}

TEST(SipUri, ParseHostOnly) {
  const auto uri = SipUri::Parse("sip:b.example.com");
  ASSERT_TRUE(uri.has_value());
  EXPECT_TRUE(uri->user.empty());
  EXPECT_EQ(uri->port, 0);
  EXPECT_EQ(uri->ToString(), "sip:b.example.com");
}

TEST(SipUri, RejectsBadScheme) {
  EXPECT_FALSE(SipUri::Parse("http://x").has_value());
  EXPECT_FALSE(SipUri::Parse("sip:").has_value());
  EXPECT_FALSE(SipUri::Parse("sip:a@b:badport").has_value());
}

TEST(NameAddr, ParseWithDisplayNameAndTag) {
  const auto addr =
      NameAddr::Parse("\"Alice\" <sip:alice@a.example.com>;tag=88;x=1");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->display_name, "Alice");
  EXPECT_EQ(addr->uri.user, "alice");
  EXPECT_EQ(addr->Tag(), "88");
  EXPECT_EQ(addr->params.at("x"), "1");
}

TEST(NameAddr, ParseAddrSpecForm) {
  const auto addr = NameAddr::Parse("sip:bob@b.example.com;tag=42");
  ASSERT_TRUE(addr.has_value());
  EXPECT_EQ(addr->uri.user, "bob");
  EXPECT_EQ(addr->Tag(), "42");
  // In addr-spec form the ;tag belongs to the header, not the URI.
  EXPECT_TRUE(addr->uri.params.empty());
}

TEST(NameAddr, SetTagRoundTrips) {
  NameAddr addr;
  addr.uri = *SipUri::Parse("sip:bob@b.example.com");
  addr.SetTag("abc");
  const auto reparsed = NameAddr::Parse(addr.ToString());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->Tag(), "abc");
}

TEST(ViaHeader, ParseAndStripBranch) {
  const auto via =
      Via::Parse("SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bK77;received=1.2.3.4");
  ASSERT_TRUE(via.has_value());
  EXPECT_EQ(via->transport, "UDP");
  EXPECT_EQ(via->sent_by.ToString(), "10.1.0.10:5060");
  EXPECT_EQ(via->branch, "z9hG4bK77");
  EXPECT_EQ(via->params.at("received"), "1.2.3.4");
  // Round-trip preserves branch.
  const auto again = Via::Parse(via->ToString());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->branch, "z9hG4bK77");
}

TEST(ViaHeader, DefaultPortIs5060) {
  const auto via = Via::Parse("SIP/2.0/UDP 10.1.0.10;branch=z9hG4bK1");
  ASSERT_TRUE(via.has_value());
  EXPECT_EQ(via->sent_by.port, 5060);
}

TEST(ViaHeader, RejectsWrongProtocol) {
  EXPECT_FALSE(Via::Parse("SIP/1.0/UDP 10.0.0.1:5060").has_value());
  EXPECT_FALSE(Via::Parse("SIP/2.0/UDP").has_value());
}

TEST(CSeqHeader, ParseFormats) {
  const auto cseq = CSeq::Parse("314159 INVITE");
  ASSERT_TRUE(cseq.has_value());
  EXPECT_EQ(cseq->number, 314159u);
  EXPECT_EQ(cseq->method, Method::kInvite);
  EXPECT_EQ(cseq->ToString(), "314159 INVITE");
  EXPECT_FALSE(CSeq::Parse("INVITE").has_value());
  EXPECT_FALSE(CSeq::Parse("12 NOSUCH").has_value());
}

TEST(Message, ParseTypicalInvite) {
  const auto msg = Message::Parse(kInviteWire);
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->IsRequest());
  EXPECT_EQ(msg->method(), Method::kInvite);
  EXPECT_EQ(msg->request_uri().UserAtHost(), "bob@b.example.com");
  EXPECT_EQ(msg->CallId(), "a84b4c76e66710@10.1.0.10");
  EXPECT_EQ(msg->From()->Tag(), "1928301774");
  EXPECT_FALSE(msg->To()->Tag().has_value());
  EXPECT_EQ(msg->Cseq()->number, 314159u);
  EXPECT_EQ(msg->TopVia()->branch, "z9hG4bK776asdhds");
  EXPECT_EQ(msg->MaxForwards(), 70);
  EXPECT_EQ(msg->body(), "v=0\n");
}

TEST(Message, SerializeParseRoundTrip) {
  Message invite = Message::MakeRequest(
      Method::kInvite, *SipUri::Parse("sip:bob@b.example.com"));
  Via via;
  via.sent_by = *net::Endpoint::Parse("10.1.0.10:5060");
  via.branch = "z9hG4bK1";
  invite.PushVia(via);
  NameAddr from;
  from.uri = *SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("t1");
  invite.SetFrom(from);
  NameAddr to;
  to.uri = *SipUri::Parse("sip:bob@b.example.com");
  invite.SetTo(to);
  invite.SetCallId("id1@host");
  invite.SetCseq(CSeq{1, Method::kInvite});
  invite.SetBody("v=0\r\n", "application/sdp");

  const auto parsed = Message::Parse(invite.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->method(), Method::kInvite);
  EXPECT_EQ(parsed->CallId(), "id1@host");
  EXPECT_EQ(parsed->From()->Tag(), "t1");
  EXPECT_EQ(parsed->body(), "v=0\r\n");
  EXPECT_EQ(parsed->Header("Content-Type"), "application/sdp");
}

TEST(Message, ParseStatusLine) {
  const auto msg = Message::Parse(
      "SIP/2.0 180 Ringing\r\nCSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(msg.has_value());
  EXPECT_TRUE(msg->IsResponse());
  EXPECT_EQ(msg->status(), 180);
  EXPECT_EQ(msg->reason(), "Ringing");
  EXPECT_EQ(msg->method(), Method::kInvite);  // via CSeq
}

TEST(Message, CompactHeaderFormsExpand) {
  const auto msg = Message::Parse(
      "BYE sip:bob@b.example.com SIP/2.0\r\n"
      "v: SIP/2.0/UDP 10.1.0.10:5060;branch=z9hG4bK9\r\n"
      "f: <sip:alice@a.example.com>;tag=1\r\n"
      "t: <sip:bob@b.example.com>;tag=2\r\n"
      "i: compact@call\r\n"
      "CSeq: 2 BYE\r\n"
      "l: 0\r\n\r\n");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->CallId(), "compact@call");
  EXPECT_EQ(msg->From()->Tag(), "1");
  EXPECT_EQ(msg->TopVia()->branch, "z9hG4bK9");
}

TEST(Message, FoldedViaValuesUnfold) {
  const auto msg = Message::Parse(
      "SIP/2.0 200 OK\r\n"
      "Via: SIP/2.0/UDP 10.0.0.1:5060;branch=z9hG4bKa, "
      "SIP/2.0/UDP 10.0.0.2:5060;branch=z9hG4bKb\r\n"
      "CSeq: 1 INVITE\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(msg.has_value());
  const auto vias = msg->Vias();
  ASSERT_EQ(vias.size(), 2u);
  EXPECT_EQ(vias[0].branch, "z9hG4bKa");
  EXPECT_EQ(vias[1].branch, "z9hG4bKb");
}

TEST(Message, PushPopViaMaintainsStack) {
  Message msg = Message::MakeRequest(Method::kBye,
                                     *SipUri::Parse("sip:x@y"));
  Via v1, v2;
  v1.sent_by = *net::Endpoint::Parse("10.0.0.1:5060");
  v1.branch = "z9hG4bK1";
  v2.sent_by = *net::Endpoint::Parse("10.0.0.2:5060");
  v2.branch = "z9hG4bK2";
  msg.PushVia(v1);
  msg.PushVia(v2);  // v2 now on top
  EXPECT_EQ(msg.TopVia()->branch, "z9hG4bK2");
  msg.PopVia();
  EXPECT_EQ(msg.TopVia()->branch, "z9hG4bK1");
  msg.PopVia();
  EXPECT_FALSE(msg.TopVia().has_value());
}

TEST(Message, RejectsStructuralViolations) {
  EXPECT_FALSE(Message::Parse("").has_value());
  EXPECT_FALSE(Message::Parse("garbage\r\n\r\n").has_value());
  EXPECT_FALSE(Message::Parse("INVITE sip:x@y\r\n\r\n").has_value());  // no version
  EXPECT_FALSE(
      Message::Parse("INVITE sip:x@y SIP/2.0\r\nNoColonHere\r\n\r\n")
          .has_value());
  EXPECT_FALSE(Message::Parse("SIP/2.0 99 Bad\r\n\r\n").has_value());
  EXPECT_FALSE(
      Message::Parse("INVITE sip:x@y SIP/2.0\r\nCSeq: nonsense\r\n\r\n")
          .has_value());
}

TEST(Message, TruncatedBodyRejected) {
  EXPECT_FALSE(Message::Parse(
                   "INVITE sip:x@y SIP/2.0\r\nContent-Length: 100\r\n\r\nshort")
                   .has_value());
}

TEST(Message, BodyTrimmedToContentLength) {
  const auto msg = Message::Parse(
      "INVITE sip:x@y SIP/2.0\r\nContent-Length: 2\r\n\r\nabXTRAS");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->body(), "ab");
}

TEST(Message, SetBodyMaintainsContentHeaders) {
  Message msg = Message::MakeResponse(200);
  msg.SetBody("hello", "text/plain");
  EXPECT_EQ(msg.Header("Content-Length"), "5");
  EXPECT_EQ(msg.Header("Content-Type"), "text/plain");
  msg.SetBody("", "text/plain");
  EXPECT_EQ(msg.Header("Content-Length"), "0");
  EXPECT_FALSE(msg.Header("Content-Type").has_value());
}

TEST(Message, HeaderAccessIsCaseInsensitive) {
  const auto msg = Message::Parse(
      "OPTIONS sip:x@y SIP/2.0\r\ncall-id: abc\r\nCONTENT-LENGTH: 0\r\n\r\n");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->Header("Call-ID"), "abc");
  EXPECT_EQ(msg->CallId(), "abc");
}

TEST(Message, UnknownMethodSurvivesRoundTrip) {
  const auto msg = Message::Parse(
      "SUBSCRIBE sip:x@y SIP/2.0\r\nCSeq: 1 OPTIONS\r\nContent-Length: 0\r\n\r\n");
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->Serialize().substr(0, 9), "SUBSCRIBE");
}

TEST(Message, ReasonPhrases) {
  EXPECT_EQ(ReasonPhrase(180), "Ringing");
  EXPECT_EQ(ReasonPhrase(200), "OK");
  EXPECT_EQ(ReasonPhrase(487), "Request Terminated");
  EXPECT_EQ(ReasonPhrase(999), "Unknown");
}

TEST(Message, MakeBranchHasMagicCookie) {
  EXPECT_TRUE(MakeBranch(42).starts_with("z9hG4bK"));
  EXPECT_NE(MakeBranch(1), MakeBranch(2));
}

}  // namespace
}  // namespace vids::sip
