// Observability subsystem: metrics registry primitives, exporters, the
// per-call flight recorder, and alert provenance end to end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "testbed/testbed.h"
#include "vids/spec_machines.h"

namespace vids::obs {
namespace {

// ------------------------------------------------------------- primitives

TEST(Metrics, CounterAndGaugeBasics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.value(), 7);
}

TEST(Metrics, HistogramBucketsAreLog2) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(-5), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(1023), 10u);
  EXPECT_EQ(Histogram::BucketOf(1024), 11u);

  Histogram h;
  h.Record(100);
  h.Record(200);
  h.Record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 600);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 300);
  EXPECT_DOUBLE_EQ(h.Mean(), 200.0);
}

TEST(Metrics, HistogramQuantilesAreFactorOfTwoEstimates) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0);  // empty
  for (int i = 0; i < 99; ++i) h.Record(100);
  h.Record(100000);
  // p50 lands in 100's bucket: the estimate is within its 2x bound and
  // clamped to the observed range.
  const int64_t p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 100);
  EXPECT_LT(p50, 256);
  // p100 clamps to the observed max.
  EXPECT_EQ(h.Quantile(1.0), 100000);
  EXPECT_GE(h.Quantile(0.0), h.min());
}

TEST(Metrics, HistogramQuantileEdgeCases) {
  // Empty: every quantile is 0.
  Histogram empty;
  EXPECT_EQ(empty.Quantile(0.0), 0);
  EXPECT_EQ(empty.Quantile(0.5), 0);
  EXPECT_EQ(empty.Quantile(1.0), 0);

  // Single value: every quantile collapses onto it (the bucket bound is
  // clamped to the observed [min, max]).
  Histogram one;
  one.Record(300);
  EXPECT_EQ(one.Quantile(0.0), 300);
  EXPECT_EQ(one.Quantile(0.5), 300);
  EXPECT_EQ(one.Quantile(1.0), 300);

  // Several values in one bucket: still clamped into [min, max].
  Histogram bucket;
  bucket.Record(130);
  bucket.Record(150);
  bucket.Record(170);
  const int64_t p50 = bucket.Quantile(0.5);
  EXPECT_GE(p50, 130);
  EXPECT_LE(p50, 170);
  // q below 0 / above 1 clamp to the extremes rather than misindexing.
  EXPECT_EQ(bucket.Quantile(-0.5), 130);
  EXPECT_EQ(bucket.Quantile(1.5), 170);

  // Non-positive samples land in bucket 0 and stay representable.
  Histogram zeros;
  zeros.Record(0);
  zeros.Record(-7);
  EXPECT_EQ(zeros.Quantile(0.0), -7);
  EXPECT_EQ(zeros.Quantile(1.0), 0);
}

TEST(Metrics, HistogramMergeFromIsAssociative) {
  const auto fill = [](Histogram& h, int seed, int n) {
    for (int i = 0; i < n; ++i) h.Record(seed * 37 + i * i - 5);
  };
  Histogram a, b, c;
  fill(a, 1, 40);
  fill(b, 90, 25);
  fill(c, 3000, 7);

  Histogram left;  // (a ⊕ b) ⊕ c
  left.MergeFrom(a);
  left.MergeFrom(b);
  left.MergeFrom(c);
  Histogram bc;  // a ⊕ (b ⊕ c)
  bc.MergeFrom(b);
  bc.MergeFrom(c);
  Histogram right;
  right.MergeFrom(a);
  right.MergeFrom(bc);

  EXPECT_EQ(left.count(), right.count());
  EXPECT_EQ(left.sum(), right.sum());
  EXPECT_EQ(left.min(), right.min());
  EXPECT_EQ(left.max(), right.max());
  EXPECT_EQ(left.buckets(), right.buckets());

  // Merging an empty histogram is the identity (min/max must not widen
  // toward the empty histogram's zero-initialized fields).
  Histogram id;
  id.MergeFrom(a);
  id.MergeFrom(Histogram{});
  EXPECT_EQ(id.count(), a.count());
  EXPECT_EQ(id.min(), a.min());
  EXPECT_EQ(id.max(), a.max());
}

TEST(Metrics, NullSinksAreSharedSingletons) {
  Counter& c1 = NullCounter();
  Counter& c2 = NullCounter();
  EXPECT_EQ(&c1, &c2);
  EXPECT_EQ(&NullGauge(), &NullGauge());
  EXPECT_EQ(&NullHistogram(), &NullHistogram());
  // Writes are harmless.
  c1.Inc();
  NullGauge().Set(5);
  NullHistogram().Record(9);
}

// --------------------------------------------------------------- registry

TEST(MetricsRegistry, GetIsIdempotentByName) {
  MetricsRegistry reg;
  Counter& a = reg.GetCounter("x.count");
  Counter& b = reg.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  a.Inc(3);
  const Counter* found = reg.FindCounter("x.count");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->value(), 3u);
  EXPECT_EQ(reg.FindCounter("nope"), nullptr);
  EXPECT_EQ(reg.FindGauge("x.count"), nullptr);
}

TEST(MetricsRegistry, ToJsonIsDeterministicAndFiltersHistograms) {
  MetricsRegistry reg;
  reg.GetCounter("b.two").Inc(2);
  reg.GetCounter("a.one").Inc(1);
  reg.GetGauge("depth").Set(-4);
  reg.GetHistogram("lat_ns").Record(5);

  const std::string json = reg.ToJson();
  // Lexicographic key order regardless of registration order.
  EXPECT_LT(json.find("a.one"), json.find("b.two"));
  EXPECT_NE(json.find("\"a.one\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"b.two\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"depth\": -4"), std::string::npos);
  EXPECT_NE(json.find("lat_ns"), std::string::npos);

  const std::string no_hist = reg.ToJson(/*include_histograms=*/false);
  EXPECT_EQ(no_hist.find("lat_ns"), std::string::npos);
  EXPECT_NE(no_hist.find("a.one"), std::string::npos);

  // Two registries fed identically snapshot identically.
  MetricsRegistry reg2;
  reg2.GetGauge("depth").Set(-4);
  reg2.GetCounter("a.one").Inc(1);
  reg2.GetCounter("b.two").Inc(2);
  EXPECT_EQ(reg2.ToJson(false), reg.ToJson(false));
}

TEST(MetricsRegistry, ToPrometheusSanitizesNames) {
  MetricsRegistry reg;
  reg.GetCounter("sip.tx.timer-fires").Inc(7);
  reg.GetGauge("sim.queue_depth").Set(3);
  const std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("sip_tx_timer_fires 7"), std::string::npos);
  EXPECT_NE(text.find("sim_queue_depth 3"), std::string::npos);
  EXPECT_EQ(text.find("sip.tx"), std::string::npos);
}

TEST(MetricsRegistry, GetReferencesStayStableAcrossRegistrations) {
  // Components cache the returned reference at construction; later
  // registrations (e.g. the merged snapshot's prefixed names) must never
  // invalidate it.
  MetricsRegistry reg;
  Counter& c = reg.GetCounter("pinned.count");
  Histogram& h = reg.GetHistogram("pinned.lat");
  for (int i = 0; i < 200; ++i) {
    reg.GetCounter("churn.c." + std::to_string(i));
    reg.GetHistogram("churn.h." + std::to_string(i));
  }
  c.Inc(5);
  h.Record(64);
  EXPECT_EQ(reg.FindCounter("pinned.count")->value(), 5u);
  EXPECT_EQ(reg.FindHistogram("pinned.lat")->count(), 1u);
  EXPECT_EQ(&c, &reg.GetCounter("pinned.count"));
  EXPECT_EQ(&h, &reg.GetHistogram("pinned.lat"));
}

TEST(MetricsRegistry, PrefixedMergeFoldsUnderShardNames) {
  MetricsRegistry shard;
  shard.GetCounter("ring.down_stalls").Inc(3);
  shard.GetGauge("ring.depth").Set(9);
  shard.GetHistogram("lat.e2e").Record(4000);
  shard.GetHistogram("lat.e2e").Record(12000);

  MetricsRegistry merged;
  merged.MergeFrom(shard, "shard.0.");
  merged.MergeFrom(shard, "shard.1.");
  merged.MergeFrom(shard);  // bare fold alongside the prefixed ones

  EXPECT_EQ(merged.FindCounter("shard.0.ring.down_stalls")->value(), 3u);
  EXPECT_EQ(merged.FindCounter("shard.1.ring.down_stalls")->value(), 3u);
  EXPECT_EQ(merged.FindCounter("ring.down_stalls")->value(), 3u);
  EXPECT_EQ(merged.FindGauge("shard.1.ring.depth")->value(), 9);
  const Histogram* h = merged.FindHistogram("shard.0.lat.e2e");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->sum(), 16000);
  // Prefixed merge accumulates like the bare one.
  merged.MergeFrom(shard, "shard.0.");
  EXPECT_EQ(merged.FindCounter("shard.0.ring.down_stalls")->value(), 6u);
  EXPECT_EQ(merged.FindHistogram("shard.0.lat.e2e")->count(), 4u);
}

TEST(MetricsRegistry, ToPrometheusTurnsShardPrefixesIntoLabels) {
  MetricsRegistry reg;
  reg.GetHistogram("shard.0.lat.e2e").Record(1000);
  reg.GetHistogram("shard.1.lat.e2e").Record(3000);
  reg.GetCounter("shard.12.ring.down_stalls").Inc(4);
  reg.GetCounter("sharded.flushes").Inc(2);  // 'e' after "shard." — no label

  const std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("lat_e2e_count{shard=\"0\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_e2e_count{shard=\"1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("lat_e2e_sum{shard=\"0\"} 1000"), std::string::npos);
  EXPECT_NE(text.find("{shard=\"0\",le="), std::string::npos);
  EXPECT_NE(text.find("ring_down_stalls{shard=\"12\"} 4"), std::string::npos);
  // The family TYPE header appears once even with several shard series.
  const std::string type_line = "# TYPE lat_e2e histogram";
  const size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
  // Names that merely start with "shard" but carry no numeric segment pass
  // through unlabeled.
  EXPECT_NE(text.find("sharded_flushes 2"), std::string::npos);
  EXPECT_EQ(text.find("sharded_flushes{"), std::string::npos);
}

TEST(MetricsRegistry, ToPrometheusTurnsLanePrefixesIntoLabels) {
  // Per-ingest-lane gauges published under "shard.N.lane.M." collapse into
  // one family with shard AND lane labels, so a dashboard can plot every
  // producer lane's ring depth without per-lane metric names.
  MetricsRegistry reg;
  reg.GetGauge("shard.3.lane.1.ring.depth_hwm").Set(48);
  reg.GetGauge("shard.0.lane.0.ring.depth_hwm").Set(7);
  reg.GetCounter("shard.2.lane.11.ring.stalls").Inc(5);
  // A shard-level name whose next segment merely STARTS with "lane" keeps
  // that segment in the family name rather than minting a bogus label.
  reg.GetGauge("shard.1.lanes.total").Set(4);

  const std::string text = reg.ToPrometheus();
  EXPECT_NE(text.find("ring_depth_hwm{shard=\"3\",lane=\"1\"} 48"),
            std::string::npos);
  EXPECT_NE(text.find("ring_depth_hwm{shard=\"0\",lane=\"0\"} 7"),
            std::string::npos);
  EXPECT_NE(text.find("ring_stalls{shard=\"2\",lane=\"11\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("lanes_total{shard=\"1\"} 4"), std::string::npos);
  // One family, one TYPE header, despite four shard/lane series.
  const std::string type_line = "# TYPE ring_depth_hwm gauge";
  const size_t first = text.find(type_line);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(type_line, first + 1), std::string::npos);
}

// --------------------------------------------------------- flight recorder

TEST(FlightRecorder, RingKeepsNewestRecords) {
  FlightRecorder ring;
  EXPECT_EQ(ring.size(), 0u);
  for (int i = 0; i < 40; ++i) {
    Record r;
    r.when_ns = i;
    r.type = RecordType::kTransition;
    ring.Record(r);
  }
  EXPECT_EQ(ring.size(), FlightRecorder::kCapacity);
  EXPECT_EQ(ring.total_recorded(), 40u);
  std::vector<int64_t> seen;
  ring.ForEach([&seen](const Record& r) { seen.push_back(r.when_ns); });
  ASSERT_EQ(seen.size(), FlightRecorder::kCapacity);
  EXPECT_EQ(seen.front(), 40 - static_cast<int>(FlightRecorder::kCapacity));
  EXPECT_EQ(seen.back(), 39);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LT(seen[i - 1], seen[i]);

  ring.Clear();
  EXPECT_EQ(ring.size(), 0u);
}

// --------------------------------------------------------- instrumentation

TEST(SchedulerMetrics, CountsScheduledAndExecutedEvents) {
  sim::Scheduler scheduler;
  MetricsRegistry reg;
  scheduler.AttachMetrics(reg);
  int fired = 0;
  for (int i = 0; i < 5; ++i) {
    scheduler.ScheduleAfter(sim::Duration::Millis(i + 1), [&fired] { ++fired; });
  }
  EXPECT_EQ(reg.FindCounter("sim.events_scheduled")->value(), 5u);
  EXPECT_EQ(reg.FindGauge("sim.queue_depth")->value(), 5);
  scheduler.RunUntil(sim::Time::FromNanos(10'000'000'000));
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(reg.FindCounter("sim.events_executed")->value(), 5u);
  EXPECT_EQ(reg.FindGauge("sim.queue_depth")->value(), 0);
}

TEST(TestbedMetrics, EnvironmentRegistrySeesSipAndRtpTraffic) {
  testbed::TestbedConfig config;
  config.seed = 321;
  config.uas_per_network = 2;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));
  auto& caller = *bed.uas_a()[0];
  caller.ua().PlaceCall(bed.uas_b()[0]->ua().address_of_record(),
                        sim::Duration::Seconds(5));
  bed.RunFor(sim::Duration::Seconds(10));

  MetricsRegistry& env = bed.metrics();
  ASSERT_NE(env.FindCounter("sip.tx.clients_created"), nullptr);
  EXPECT_GT(env.FindCounter("sip.tx.clients_created")->value(), 0u);
  ASSERT_NE(env.FindCounter("rtp.packets_sent"), nullptr);
  EXPECT_GT(env.FindCounter("rtp.packets_sent")->value(), 0u);
  EXPECT_GT(env.FindCounter("sim.events_executed")->value(), 0u);

  // IDS metrics live in their own registry, derived only from the tap.
  ASSERT_NE(bed.vids(), nullptr);
  MetricsRegistry& idsm = bed.vids()->metrics();
  EXPECT_GT(idsm.FindCounter("vids.packets")->value(), 0u);
  EXPECT_GT(idsm.FindCounter("efsm.transitions")->value(), 0u);
  EXPECT_EQ(idsm.FindCounter("sim.events_executed"), nullptr);
  // The engine's sampled transition-latency histogram is registered.
  ASSERT_NE(idsm.FindHistogram("efsm.transition_ns"), nullptr);
}

// ----------------------------------------------------------- provenance

TEST(AlertProvenance, ByeDosAlertNamesTriggerAndCallHistory) {
  testbed::TestbedConfig config;
  config.seed = 123;
  config.uas_per_network = 3;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(3));
  const auto snap = bed.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  bed.attacker().SendSpoofedBye(*snap);
  bed.RunFor(sim::Duration::Seconds(5));

  const ids::Alert* bye_dos = nullptr;
  for (const auto& alert : bed.vids()->alerts()) {
    if (alert.classification == ids::kAttackByeDos) {
      bye_dos = &alert;
      break;
    }
  }
  ASSERT_NE(bye_dos, nullptr);

  // The trigger names the transition that entered the attack state.
  EXPECT_FALSE(bye_dos->trigger.empty());
  EXPECT_NE(bye_dos->trigger.find("->"), std::string::npos);
  EXPECT_NE(bye_dos->trigger.find(ids::kAttackByeDos), std::string::npos);

  // Provenance: the call's preceding history, bounded by the ring.
  ASSERT_FALSE(bye_dos->provenance.empty());
  EXPECT_LE(bye_dos->provenance.size(), FlightRecorder::kCapacity);
  // The spoofed BYE's cross-machine sync (SIP -> RTP channel send) and the
  // fact-base call creation are both part of the story.
  bool saw_transition = false;
  bool saw_alert_line = false;
  for (const auto& line : bye_dos->provenance) {
    if (line.find("->") != std::string::npos) saw_transition = true;
    if (line.find("ALERT") != std::string::npos) saw_alert_line = true;
  }
  EXPECT_TRUE(saw_transition);
  // The kAlert marker is stamped *after* provenance capture, so this
  // alert's own emission is not in its own history.
  (void)saw_alert_line;

  const std::string report = bye_dos->ProvenanceToString();
  EXPECT_NE(report.find("trigger:"), std::string::npos);
  EXPECT_NE(report.find(ids::kAttackByeDos), std::string::npos);

  // Every alert (not just this one) carries a trigger and provenance.
  for (const auto& alert : bed.vids()->alerts()) {
    EXPECT_FALSE(alert.trigger.empty()) << alert.classification;
    EXPECT_LE(alert.provenance.size(), FlightRecorder::kCapacity);
  }

  // Attack-specific alert counters appeared in the IDS registry.
  const std::string counter_name =
      "alerts." + std::string(ids::kAttackByeDos);
  const Counter* by_class = bed.vids()->metrics().FindCounter(counter_name);
  ASSERT_NE(by_class, nullptr);
  EXPECT_GE(by_class->value(), 1u);
}

}  // namespace
}  // namespace vids::obs
