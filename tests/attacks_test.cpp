// Attack tooling tests: the eavesdropper reconstructs calls from the wire,
// and each toolkit primitive actually compromises the victim (independent
// of detection — vIDS disabled here).
#include <gtest/gtest.h>

#include "attacks/rogue_ua.h"
#include "testbed/testbed.h"

namespace vids::testbed {
namespace {

class AttackFixture : public ::testing::Test {
 protected:
  static TestbedConfig Config() {
    TestbedConfig config;
    config.vids_enabled = false;
    config.uas_per_network = 3;
    config.seed = 11;
    return config;
  }

  AttackFixture() : bed_(Config()) {
    bed_.RunFor(sim::Duration::Seconds(2));  // registrations
  }

  // Places a call and runs until established; returns the snapshot.
  attacks::CallSnapshot EstablishObservedCall(sim::Duration duration) {
    auto& caller = *bed_.uas_a()[0];
    auto& callee = *bed_.uas_b()[0];
    const auto call_id = caller.ua().PlaceCall(
        callee.ua().address_of_record(), duration);
    bed_.RunFor(sim::Duration::Seconds(3));
    const auto snap = bed_.eavesdropper().Get(call_id);
    EXPECT_TRUE(snap.has_value());
    return *snap;
  }

  Testbed bed_;
};

TEST_F(AttackFixture, EavesdropperReconstructsDialogAndMedia) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(60));
  EXPECT_TRUE(snap.answered);
  EXPECT_EQ(snap.caller_aor.UserAtHost(), "a0@a.example.com");
  EXPECT_EQ(snap.callee_aor.UserAtHost(), "b0@b.example.com");
  EXPECT_FALSE(snap.caller_tag.empty());
  EXPECT_FALSE(snap.callee_tag.empty());
  EXPECT_FALSE(snap.invite_branch.empty());
  // Contact and media endpoints resolved to network-B's phone.
  EXPECT_EQ(snap.callee_contact.ip, bed_.uas_b()[0]->host().ip());
  ASSERT_TRUE(snap.callee_media.has_value());
  EXPECT_EQ(snap.callee_media->ip, bed_.uas_b()[0]->host().ip());
  // Live stream position observed.
  EXPECT_TRUE(snap.media_seen);
  EXPECT_NE(snap.ssrc_toward_callee, 0u);
}

TEST_F(AttackFixture, SpoofedByeTearsDownTheCall) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(300));
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[0];
  EXPECT_EQ(callee.ua().active_call_count(), 1);

  bed_.attacker().SendSpoofedBye(snap);
  bed_.RunFor(sim::Duration::Seconds(5));
  // The victim UA accepted the forged BYE: call gone long before 300 s.
  EXPECT_EQ(callee.ua().active_call_count(), 0);
  ASSERT_EQ(callee.ua().completed_calls().size(), 1u);
  // The caller side is desynchronized — it still believes the call is up.
  EXPECT_EQ(caller.ua().active_call_count(), 1);
}

TEST_F(AttackFixture, SpoofedCancelAbortsPendingCall) {
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[0];
  // Long answer delay so the INVITE stays pending.
  const auto call_id = caller.ua().PlaceCall(
      callee.ua().address_of_record(), sim::Duration::Seconds(60));
  bed_.RunFor(sim::Duration::Millis(200));  // INVITE observed, still ringing
  const auto snap = bed_.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  ASSERT_FALSE(snap->answered);

  bed_.attacker().SendSpoofedCancel(*snap, bed_.proxy_b_endpoint());
  bed_.RunFor(sim::Duration::Seconds(10));
  // The call attempt failed (487 path) instead of being answered.
  ASSERT_EQ(caller.ua().completed_calls().size(), 1u);
  EXPECT_TRUE(caller.ua().completed_calls()[0].failed);
  EXPECT_EQ(callee.ua().active_call_count(), 0);
}

TEST_F(AttackFixture, InviteFloodOverwhelmsPhoneCapacity) {
  auto& victim = *bed_.uas_b()[1];
  bed_.attacker().LaunchInviteFlood(victim.ua().address_of_record(),
                                    bed_.proxy_b_endpoint(), 30,
                                    sim::Duration::Millis(20));
  bed_.RunFor(sim::Duration::Seconds(3));
  // The phone is saturated at its concurrency limit (3): real callers get
  // 486 Busy.
  EXPECT_EQ(victim.ua().active_call_count(),
            victim.ua().config().max_concurrent_calls);
  auto& genuine = *bed_.uas_a()[2];
  genuine.ua().PlaceCall(victim.ua().address_of_record(),
                         sim::Duration::Seconds(10));
  bed_.RunFor(sim::Duration::Seconds(5));
  ASSERT_EQ(genuine.ua().completed_calls().size(), 1u);
  EXPECT_TRUE(genuine.ua().completed_calls()[0].failed);
}

TEST_F(AttackFixture, MediaSpamReachesTheVictimStream) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(60));
  auto& callee = *bed_.uas_b()[0];
  const auto before = callee.AggregateReceiverStats();
  bed_.attacker().LaunchMediaSpam(snap, /*count=*/50,
                                  sim::Duration::Millis(10));
  bed_.RunFor(sim::Duration::Seconds(3));
  const auto after = callee.AggregateReceiverStats();
  // The spoofed packets were accepted into the victim's session and, since
  // they carry the genuine SSRC ahead of the real stream, the genuine
  // packets now appear as large "loss"/reordering artifacts.
  EXPECT_GE(after.packets_received, before.packets_received + 50);
  EXPECT_GT(after.packets_misordered, before.packets_misordered);
}

TEST_F(AttackFixture, RtpFloodDeliversBulkTraffic) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(60));
  ASSERT_TRUE(snap.callee_media.has_value());
  auto& callee = *bed_.uas_b()[0];
  const auto before = callee.AggregateReceiverStats().packets_received;
  bed_.attacker().LaunchRtpFlood(*snap.callee_media, /*pps=*/500,
                                 sim::Duration::Seconds(2));
  bed_.RunFor(sim::Duration::Seconds(4));
  const auto after = callee.AggregateReceiverStats();
  EXPECT_GE(after.packets_received, before + 900);
  EXPECT_GT(after.ssrc_mismatches, 900u);  // alien SSRC counted
}

TEST_F(AttackFixture, RogueUaStreamsAfterItsOwnBye) {
  attacks::RogueUa::Config config;
  config.ua.user = "rogue";
  config.ua.domain = "attacker.example.com";
  config.ua.outbound_proxy = bed_.proxy_b_endpoint();
  config.codec = rtp::G729();
  config.bye_after = sim::Duration::Seconds(3);
  config.stream_after_bye = sim::Duration::Seconds(5);
  common::Stream rng(99, "rogue");
  attacks::RogueUa rogue(bed_.scheduler(), bed_.attacker_host(), config, rng);

  auto& victim = *bed_.uas_b()[2];
  rogue.CallAndDefraud(victim.ua().address_of_record());
  bed_.RunFor(sim::Duration::Seconds(15));
  EXPECT_TRUE(rogue.bye_sent());
  // The fraudulent stream really did continue past the BYE.
  EXPECT_GT(rogue.rtp_packets_after_bye(), 50u);
  // Victim's dialog closed at the BYE.
  EXPECT_EQ(victim.ua().active_call_count(), 0);
}

}  // namespace
}  // namespace vids::testbed
