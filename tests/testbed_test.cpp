// Full-system integration: the Fig. 7 testbed with the vIDS inline. These
// are the §7.5 claims in miniature — clean traffic raises no alarms, every
// modeled attack is detected through the real network.
#include <gtest/gtest.h>

#include "attacks/rogue_ua.h"
#include "testbed/testbed.h"

namespace vids::testbed {
namespace {

class VidsOnFixture : public ::testing::Test {
 protected:
  static TestbedConfig Config() {
    TestbedConfig config;
    config.vids_enabled = true;
    config.uas_per_network = 4;
    config.seed = 21;
    return config;
  }

  VidsOnFixture() : bed_(Config()) {
    bed_.RunFor(sim::Duration::Seconds(2));
  }

  size_t Attacks(std::string_view classification) {
    return bed_.vids()->CountAlerts(classification);
  }

  attacks::CallSnapshot EstablishObservedCall(
      sim::Duration duration, int caller_index = 0, int callee_index = 0) {
    auto& caller = *bed_.uas_a()[static_cast<size_t>(caller_index)];
    auto& callee = *bed_.uas_b()[static_cast<size_t>(callee_index)];
    const auto call_id = caller.ua().PlaceCall(
        callee.ua().address_of_record(), duration);
    bed_.RunFor(sim::Duration::Seconds(3));
    const auto snap = bed_.eavesdropper().Get(call_id);
    EXPECT_TRUE(snap.has_value());
    return *snap;
  }

  Testbed bed_;
};

TEST_F(VidsOnFixture, CleanWorkloadRaisesNoAlarms) {
  WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(40);
  workload.mean_duration = sim::Duration::Seconds(20);
  bed_.StartWorkload(workload);
  bed_.RunFor(sim::Duration::Seconds(300));

  EXPECT_GT(bed_.CompletedCalls().size(), 5u);  // traffic actually flowed
  EXPECT_EQ(bed_.vids()->CountAlerts(ids::AlertKind::kAttackPattern), 0u);
  EXPECT_EQ(bed_.vids()->CountAlerts(ids::AlertKind::kSpecDeviation), 0u);
  EXPECT_EQ(bed_.vids()->CountAlerts(ids::AlertKind::kNondeterminism), 0u);
  EXPECT_GT(bed_.vids()->stats().sip_packets, 0u);
  EXPECT_GT(bed_.vids()->stats().rtp_packets, 0u);
  EXPECT_EQ(bed_.vids()->stats().orphan_rtp, 0u);
}

TEST_F(VidsOnFixture, DetectsByeDosThroughTheNetwork) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(120));
  bed_.attacker().SendSpoofedBye(snap);
  bed_.RunFor(sim::Duration::Seconds(5));
  // The duped caller keeps streaming, so the ongoing attack re-alerts once
  // per dedup window — at least one alert, all classified BYE DoS.
  EXPECT_GE(Attacks(ids::kAttackByeDos), 1u);
  EXPECT_EQ(Attacks(ids::kAttackTollFraud), 0u);
}

TEST_F(VidsOnFixture, DetectsSpoofedCancel) {
  auto& caller = *bed_.uas_a()[0];
  auto& callee = *bed_.uas_b()[0];
  const auto call_id = caller.ua().PlaceCall(
      callee.ua().address_of_record(), sim::Duration::Seconds(60));
  bed_.RunFor(sim::Duration::Millis(200));
  const auto snap = bed_.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  bed_.attacker().SendSpoofedCancel(*snap, bed_.proxy_b_endpoint());
  bed_.RunFor(sim::Duration::Seconds(5));
  EXPECT_EQ(Attacks(ids::kAttackCancelDos), 1u);
}

TEST_F(VidsOnFixture, DetectsInviteFlood) {
  auto& victim = *bed_.uas_b()[1];
  bed_.attacker().LaunchInviteFlood(victim.ua().address_of_record(),
                                    bed_.proxy_b_endpoint(), 20,
                                    sim::Duration::Millis(20));
  bed_.RunFor(sim::Duration::Seconds(5));
  EXPECT_GE(Attacks(ids::kAttackInviteFlood), 1u);
}

TEST_F(VidsOnFixture, DetectsMediaSpam) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(120));
  bed_.attacker().LaunchMediaSpam(snap, 30, sim::Duration::Millis(10));
  bed_.RunFor(sim::Duration::Seconds(3));
  EXPECT_GE(Attacks(ids::kAttackMediaSpam), 1u);
}

TEST_F(VidsOnFixture, DetectsRtpFlood) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(120));
  ASSERT_TRUE(snap.callee_media.has_value());
  bed_.attacker().LaunchRtpFlood(*snap.callee_media, 1000,
                                 sim::Duration::Seconds(1));
  bed_.RunFor(sim::Duration::Seconds(3));
  EXPECT_GE(Attacks(ids::kAttackRtpFlood), 1u);
}

TEST_F(VidsOnFixture, DetectsCallHijackInvite) {
  const auto snap = EstablishObservedCall(sim::Duration::Seconds(120));
  bed_.attacker().SendHijackInvite(snap);
  bed_.RunFor(sim::Duration::Seconds(3));
  EXPECT_GE(Attacks(ids::kAttackHijack), 1u);
}

TEST_F(VidsOnFixture, DetectsDrdosReflection) {
  // Bounce spoofed OPTIONS off proxy A; responses swamp a network-B host.
  const net::Endpoint victim{bed_.uas_b()[2]->host().ip(), 5060};
  bed_.attacker().LaunchDrdosReflection(victim, bed_.proxy_a_endpoint(),
                                        30, sim::Duration::Millis(20));
  bed_.RunFor(sim::Duration::Seconds(5));
  EXPECT_GE(Attacks(ids::kAttackDrdos), 1u);
}

TEST_F(VidsOnFixture, DetectsTollFraudByRogueUa) {
  attacks::RogueUa::Config config;
  config.ua.user = "rogue";
  config.ua.domain = "attacker.example.com";
  config.ua.outbound_proxy = bed_.proxy_b_endpoint();
  config.codec = rtp::G729();
  config.bye_after = sim::Duration::Seconds(3);
  config.stream_after_bye = sim::Duration::Seconds(5);
  common::Stream rng(99, "rogue");
  attacks::RogueUa rogue(bed_.scheduler(), bed_.attacker_host(), config, rng);
  rogue.CallAndDefraud(bed_.uas_b()[3]->ua().address_of_record());
  bed_.RunFor(sim::Duration::Seconds(15));
  EXPECT_GE(Attacks(ids::kAttackTollFraud), 1u);
  // It is fraud by the BYE sender, not a third-party BYE DoS.
  EXPECT_EQ(Attacks(ids::kAttackByeDos), 0u);
}

TEST_F(VidsOnFixture, VidsAddsSetupDelayComparedToBaseline) {
  // Run an identical single call in both arms and compare setup delays.
  auto run_arm = [](bool vids_enabled) {
    TestbedConfig config = Config();
    config.vids_enabled = vids_enabled;
    Testbed bed(config);
    bed.RunFor(sim::Duration::Seconds(2));
    auto& caller = *bed.uas_a()[0];
    caller.ua().PlaceCall(bed.uas_b()[0]->ua().address_of_record(),
                          sim::Duration::Seconds(10));
    bed.RunFor(sim::Duration::Seconds(30));
    const auto& records = caller.ua().completed_calls();
    EXPECT_EQ(records.size(), 1u);
    return records.empty() ? sim::Duration{} : *records[0].SetupDelay();
  };
  const auto with_vids = run_arm(true);
  const auto without = run_arm(false);
  const double delta_ms = (with_vids - without).ToMillis();
  // §7.2: vIDS adds ≈100 ms to call setup (two 50 ms SIP analyses in the
  // INVITE→180 path).
  EXPECT_GT(delta_ms, 80.0);
  EXPECT_LT(delta_ms, 140.0);
}

TEST_F(VidsOnFixture, LegitimateReinviteRaisesNoHijackAlert) {
  auto& caller = *bed_.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed_.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(30));
  bed_.RunFor(sim::Duration::Seconds(5));
  ASSERT_TRUE(caller.ua().Reinvite(call_id));
  bed_.RunFor(sim::Duration::Seconds(10));
  EXPECT_EQ(Attacks(ids::kAttackHijack), 0u);
  EXPECT_EQ(bed_.vids()->CountAlerts(ids::AlertKind::kSpecDeviation), 0u);
  // A hijacker's in-dialog INVITE right after is still caught.
  const auto snap = bed_.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  bed_.attacker().SendHijackInvite(*snap);
  bed_.RunFor(sim::Duration::Seconds(3));
  EXPECT_GE(Attacks(ids::kAttackHijack), 1u);
}

TEST_F(VidsOnFixture, CallStateIsFreedAfterCalls) {
  WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(30);
  workload.mean_duration = sim::Duration::Seconds(10);
  bed_.StartWorkload(workload);
  bed_.RunFor(sim::Duration::Seconds(240));
  const auto created = bed_.vids()->fact_base().calls_created();
  const auto deleted = bed_.vids()->fact_base().calls_deleted();
  EXPECT_GT(created, 5u);
  // Most completed calls were reclaimed (recent ones may still linger).
  EXPECT_GE(deleted + 5, created * 3 / 4);
}

}  // namespace
}  // namespace vids::testbed
