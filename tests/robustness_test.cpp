// Robustness and determinism properties of the whole system:
//  * heavy packet loss must not break calls (SIP retransmissions) nor
//    trick the vIDS into attack false positives;
//  * arbitrary junk fed to the IDS must never crash it;
//  * a run is a pure function of its seed (bit-for-bit reproducibility);
//  * detection holds across seeds (parameterized sweep).
#include <gtest/gtest.h>

#include "testbed/testbed.h"
#include "vids/ids.h"

namespace vids::testbed {
namespace {

TEST(Robustness, CallsSurviveHeavyLossWithoutFalseAttackAlerts) {
  TestbedConfig config;
  config.seed = 1001;
  config.uas_per_network = 4;
  config.vids_enabled = true;
  config.cloud.loss_rate = 0.05;  // 12x the paper's 0.42%
  Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(40);
  workload.mean_duration = sim::Duration::Seconds(20);
  bed.StartWorkload(workload);
  bed.RunFor(sim::Duration::Seconds(300));

  // Most calls completed despite the loss (transaction retransmissions).
  const auto calls = bed.CompletedCalls();
  int ok = 0;
  for (const auto& call : calls) ok += call.failed ? 0 : 1;
  ASSERT_GT(calls.size(), 5u);
  // "Failures" include busy-here collisions of the random workload, not
  // just loss casualties; 70% completion under 12x the paper's loss shows
  // the retransmission machinery doing its job.
  EXPECT_GT(static_cast<double>(ok) / static_cast<double>(calls.size()), 0.7);

  // Loss produces retransmissions and gaps, but never a fabricated-attack
  // verdict on clean traffic.
  EXPECT_EQ(bed.vids()->CountAlerts(ids::AlertKind::kAttackPattern), 0u);
}

TEST(Robustness, ExtremeLossStillRaisesNoAttackAlerts) {
  TestbedConfig config;
  config.seed = 1002;
  config.uas_per_network = 3;
  config.cloud.loss_rate = 0.20;
  Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));
  WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(30);
  workload.mean_duration = sim::Duration::Seconds(15);
  bed.StartWorkload(workload);
  bed.RunFor(sim::Duration::Seconds(200));
  EXPECT_EQ(bed.vids()->CountAlerts(ids::AlertKind::kAttackPattern), 0u);
}

TEST(Robustness, IdsSurvivesArbitraryJunk) {
  sim::Scheduler scheduler;
  ids::Vids vids(scheduler);
  common::Stream rng(77, "junk");
  for (int i = 0; i < 5000; ++i) {
    net::Datagram dgram;
    dgram.src = net::Endpoint{net::IpAddress(static_cast<uint32_t>(rng.Next())),
                              static_cast<uint16_t>(rng.NextInRange(1, 65535))};
    dgram.dst = net::Endpoint{net::IpAddress(static_cast<uint32_t>(rng.Next())),
                              static_cast<uint16_t>(rng.NextInRange(1, 65535))};
    const size_t len = rng.NextInRange(0, 600);
    dgram.payload.resize(len);
    for (auto& byte : dgram.payload) {
      byte = static_cast<char>(rng.NextInRange(0, 255));
    }
    dgram.kind = rng.NextBernoulli(0.5) ? net::PayloadKind::kSip
                                        : net::PayloadKind::kRtp;
    vids.Inspect(dgram, rng.NextBernoulli(0.5));
  }
  // It classified, counted and (for the RTP-header-shaped minority) tracked
  // without crashing; junk that parses as nothing is flagged malformed.
  EXPECT_EQ(vids.stats().packets, 5000u);
  EXPECT_GT(vids.stats().unknown_packets, 0u);
}

TEST(Robustness, RunsAreBitForBitReproducible) {
  auto run = [] {
    TestbedConfig config;
    config.seed = 4242;
    config.uas_per_network = 4;
    Testbed bed(config);
    bed.RunFor(sim::Duration::Seconds(2));
    WorkloadConfig workload;
    workload.mean_intercall = sim::Duration::Seconds(30);
    workload.mean_duration = sim::Duration::Seconds(15);
    bed.StartWorkload(workload);
    // Mid-run attack for alert-stream comparison.
    bed.RunFor(sim::Duration::Seconds(30));
    if (const auto snap = bed.eavesdropper().LatestAnswered()) {
      bed.attacker().SendSpoofedBye(*snap);
    }
    bed.RunFor(sim::Duration::Seconds(120));

    std::string fingerprint;
    for (const auto& alert : bed.vids()->alerts()) {
      fingerprint += alert.ToString() + "\n";
    }
    fingerprint += "packets=" + std::to_string(bed.vids()->stats().packets);
    fingerprint +=
        " transitions=" + std::to_string(bed.vids()->stats().transitions);
    for (const auto& call : bed.CompletedCalls()) {
      fingerprint += " " + call.call_id + ":" +
                     std::to_string(call.ended->nanos());
    }
    return fingerprint;
  };
  const std::string first = run();
  const std::string second = run();
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

// Detection must not depend on a lucky seed: sweep the BYE DoS scenario.
class DetectionSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DetectionSeedSweep, ByeDosDetectedForEverySeed) {
  TestbedConfig config;
  config.seed = GetParam();
  config.uas_per_network = 4;
  Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(3));
  const auto snap = bed.eavesdropper().Get(call_id);
  ASSERT_TRUE(snap.has_value());
  bed.attacker().SendSpoofedBye(*snap);
  bed.RunFor(sim::Duration::Seconds(5));
  EXPECT_GE(bed.vids()->CountAlerts(ids::kAttackByeDos), 1u)
      << "seed " << GetParam();
  EXPECT_EQ(bed.vids()->CountAlerts(ids::kAttackTollFraud), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DetectionSeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

class FloodSeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FloodSeedSweep, InviteFloodDetectedForEverySeed) {
  TestbedConfig config;
  config.seed = GetParam();
  config.uas_per_network = 4;
  Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));
  bed.attacker().LaunchInviteFlood(bed.uas_b()[0]->ua().address_of_record(),
                                   bed.proxy_b_endpoint(), 20,
                                   sim::Duration::Millis(20));
  bed.RunFor(sim::Duration::Seconds(5));
  EXPECT_GE(bed.vids()->CountAlerts(ids::kAttackInviteFlood), 1u)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FloodSeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace vids::testbed
