// Authoring a new attack pattern with the EFSM library.
//
//   $ ./build/examples/custom_pattern
//
// The paper argues (§6) that even when a full protocol machine is hard to
// derive, "it is straightforward to develop attack scenarios for known
// attacks". This example demonstrates exactly that workflow with the
// public EFSM API: define a REGISTER-hijacking pattern (an attacker
// re-REGISTERs a victim's address-of-record to its own contact, stealing
// the victim's incoming calls), instantiate it in a machine group, and
// drive it with events — no changes to the vIDS core.
#include <cstdio>

#include "efsm/engine.h"

using namespace vids;
using efsm::Context;
using efsm::Event;
using efsm::MachineDef;
using efsm::StateKind;

namespace {

// Pattern: after a REGISTER binds an AOR to a contact, a REGISTER for the
// same AOR from a *different* source that rebinds it elsewhere within the
// registration's lifetime is a hijack attempt.
MachineDef BuildRegisterHijackPattern() {
  MachineDef def("register-hijack");
  def.set_report_deviations(false);

  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto bound = def.AddState("Bound");
  const auto attack = def.AddState("registration hijack", StateKind::kAttack);

  const auto is_register = [](const Context& c) {
    return c.event().ArgString("method") == "REGISTER";
  };
  const auto same_binding = [](const Context& c) {
    return c.local().Get("v_src_ip") == c.event().Arg("src_ip") &&
           c.local().Get("v_contact") == c.event().Arg("contact");
  };
  const auto remember = [](Context& c) {
    auto& l = c.mutable_local();
    l.Set("v_src_ip", c.event().Arg("src_ip"));
    l.Set("v_contact", c.event().Arg("contact"));
    // Bindings expire: forget after the registration lifetime.
    c.StartTimer("expiry", sim::Duration::Seconds(3600));
  };

  def.On(init, "SIP")
      .When(is_register)
      .Do(remember)
      .To(bound, "AOR bound");
  def.On(bound, "SIP")
      .When([=](const Context& c) { return is_register(c) && same_binding(c); })
      .Do(remember)
      .To(bound, "binding refreshed by its owner");
  def.On(bound, "SIP")
      .When([=](const Context& c) {
        return is_register(c) && !same_binding(c);
      })
      .To(attack, "AOR re-bound from a different source");
  def.On(bound, efsm::TimerEventName("expiry")).To(init, "binding expired");
  def.On(attack, "SIP").To(attack);
  return def;
}

Event Register(std::string src_ip, std::string contact) {
  Event event;
  event.name = "SIP";
  event.args["method"] = std::string("REGISTER");
  event.args["src_ip"] = std::move(src_ip);
  event.args["contact"] = std::move(contact);
  return event;
}

struct PrintingObserver : efsm::Observer {
  void OnTransition(const efsm::MachineInstance& machine,
                    const efsm::Transition& t, const Event&) override {
    std::printf("  %-18s %s\n", machine.name().c_str(), t.label.c_str());
  }
  void OnAttackState(const efsm::MachineInstance& machine, efsm::StateId state,
                     const Event& event) override {
    std::printf(">>> ATTACK '%s' on %s (offending source %s)\n",
                std::string(machine.def().StateName(state)).c_str(),
                machine.group().name().c_str(),
                event.ArgString("src_ip").value_or("?").c_str());
    ++attacks;
  }
  int attacks = 0;
};

}  // namespace

int main() {
  const MachineDef pattern = BuildRegisterHijackPattern();
  std::printf("pattern '%s': %zu states, %zu transitions\n\n",
              pattern.name().c_str(), pattern.state_count(),
              pattern.transitions().size());

  sim::Scheduler scheduler;
  PrintingObserver observer;
  // One group per monitored address-of-record, as the fact base would do.
  efsm::MachineGroup group("bob@b.example.com", scheduler, &observer);
  auto& machine = group.AddMachine(pattern, "reg-hijack");

  std::printf("bob's phone registers and refreshes:\n");
  group.DeliverData(machine, Register("10.2.0.10", "sip:bob@10.2.0.10"));
  group.DeliverData(machine, Register("10.2.0.10", "sip:bob@10.2.0.10"));

  std::printf("\nattacker re-registers bob's AOR to itself:\n");
  group.DeliverData(machine, Register("10.9.0.66", "sip:bob@10.9.0.66"));

  std::printf("\n%s\n", observer.attacks == 1
                            ? "hijack detected — pattern authored in ~30 "
                              "lines of definition code"
                            : "unexpected result");
  return observer.attacks == 1 ? 0 : 1;
}
