// Unknown-attack detection: the paper's §7.5 claim, demonstrated.
//
//   $ ./build/examples/unknown_attack
//
// "We postulate that the detailed and accurate representation of protocol
// state machines should be capable of detecting unknown attacks." — §7.5
//
// The Attack Scenario base contains NO pattern for either attack below;
// both are caught purely as deviations from the protocol specification
// machines:
//
//   1. mid-ring BYE injection — a forged BYE during call setup (after the
//      180, before the 200). Some UA stacks tear the early dialog down;
//      RFC-wise the message is illegal in that state. The SIP machine is
//      in (Proceeding), which has no BYE transition → deviation.
//
//   2. phantom ACK probing — ACKs for dialogs that never existed, a
//      stealthy scan for SIP stacks (ACKs are never answered, so probing
//      with them evades response-based rate limiting). The SIP machine is
//      in (INIT), which has no ACK transition → deviation.
#include <cstdio>

#include "testbed/testbed.h"

using namespace vids;

int main() {
  testbed::TestbedConfig config;
  config.seed = 3;
  config.uas_per_network = 3;
  testbed::Testbed bed(config);
  bed.vids()->set_alert_callback([](const ids::Alert& alert) {
    std::printf("  >>> %s\n", alert.ToString().c_str());
  });
  bed.RunFor(sim::Duration::Seconds(2));

  // ---- 1. mid-ring BYE injection --------------------------------------
  std::printf("=== mid-ring BYE injection (no pattern in the scenario "
              "base) ===\n");
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(60));
  // Wait until the 180 has crossed (ringing) but the 500 ms answer delay
  // has not elapsed.
  bed.RunFor(sim::Duration::Millis(250));
  const auto snap = bed.eavesdropper().Get(call_id);
  if (snap && !snap->answered) {
    std::printf("call %s is ringing; injecting BYE now\n",
                snap->call_id.c_str());
    bed.attacker().SendSpoofedBye(*snap);
  }
  bed.RunFor(sim::Duration::Seconds(5));

  // ---- 2. phantom ACK probing ------------------------------------------
  std::printf("\n=== phantom ACK probing (no pattern in the scenario "
              "base) ===\n");
  for (int i = 0; i < 3; ++i) {
    attacks::CallSnapshot fake;
    fake.call_id = "phantom-" + std::to_string(i) + "@nowhere";
    fake.callee_aor = bed.uas_b()[1]->ua().address_of_record();
    fake.callee_contact =
        net::Endpoint{bed.uas_b()[1]->host().ip(), sip::kDefaultSipPort};
    // A BYE for a dialog that never existed works just as well; use the
    // toolkit's BYE as the probe (CSeq/tags are made up).
    bed.attacker().SendSpoofedBye(fake);
  }
  bed.RunFor(sim::Duration::Seconds(3));

  const auto deviations =
      bed.vids()->CountAlerts(ids::AlertKind::kSpecDeviation);
  std::printf("\n%zu specification-deviation alert(s) — zero signatures "
              "involved.\n",
              deviations);
  std::printf("%s\n", deviations >= 2
                          ? "unknown attacks detected by the specification "
                            "machines alone"
                          : "unexpected: deviations not raised");
  return deviations >= 2 ? 0 : 1;
}
