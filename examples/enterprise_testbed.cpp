// Enterprise testbed runner: the paper's §7 evaluation environment as a
// command-line tool.
//
//   $ ./build/examples/enterprise_testbed [minutes] [seed] [--no-vids]
//
// Simulates the Fig. 7 topology under the random call workload and prints
// the operational report an administrator would read: call volume, setup
// delays, media QoS, vIDS resource usage and any alerts.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "testbed/testbed.h"

using namespace vids;

int main(int argc, char** argv) {
  int minutes = 10;
  uint64_t seed = 42;
  bool vids_enabled = true;
  if (argc > 1) minutes = std::atoi(argv[1]);
  if (argc > 2) seed = static_cast<uint64_t>(std::atoll(argv[2]));
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--no-vids") == 0) vids_enabled = false;
  }

  testbed::TestbedConfig config;
  config.seed = seed;
  config.uas_per_network = 10;
  config.vids_enabled = vids_enabled;
  config.qos_sample_every = 50;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  testbed::WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(150);
  workload.mean_duration = sim::Duration::Seconds(90);
  bed.StartWorkload(workload);

  std::printf("running %d simulated minutes (seed %llu, vIDS %s)...\n",
              minutes, static_cast<unsigned long long>(seed),
              vids_enabled ? "inline" : "disabled");
  bed.RunFor(sim::Duration::Seconds(60) * minutes);

  // --- Call report ---
  const auto calls = bed.CompletedCalls();
  int completed = 0, failed = 0;
  double setup_sum_ms = 0;
  int setup_count = 0;
  double talk_seconds = 0;
  for (const auto& call : calls) {
    (call.failed ? failed : completed)++;
    if (const auto setup = call.SetupDelay()) {
      setup_sum_ms += setup->ToMillis();
      ++setup_count;
    }
    if (call.answered && call.ended) {
      talk_seconds += (*call.ended - *call.answered).ToSeconds();
    }
  }
  std::printf("\ncalls: %d completed, %d failed; %.1f minutes of "
              "conversation\n",
              completed, failed, talk_seconds / 60.0);
  if (setup_count > 0) {
    std::printf("mean call setup delay (INVITE->180): %.1f ms\n",
                setup_sum_ms / setup_count);
  }

  // --- Media QoS at the network-B phones ---
  rtp::ReceiverStats media{};
  for (const auto& ua : bed.uas_b()) {
    const auto stats = ua->AggregateReceiverStats();
    media.packets_received += stats.packets_received;
    media.packets_lost += stats.packets_lost;
    media.total_delay_seconds += stats.total_delay_seconds;
    media.max_delay_seconds =
        std::max(media.max_delay_seconds, stats.max_delay_seconds);
  }
  std::printf("media at B-side phones: %llu packets, %.2f%% lost, mean "
              "delay %.1f ms (max %.1f)\n",
              static_cast<unsigned long long>(media.packets_received),
              100.0 * static_cast<double>(media.packets_lost) /
                  std::max<double>(1.0, static_cast<double>(
                                            media.packets_received +
                                            media.packets_lost)),
              media.MeanDelaySeconds() * 1000.0,
              media.max_delay_seconds * 1000.0);

  // --- vIDS report ---
  if (bed.vids() != nullptr) {
    const auto& stats = bed.vids()->stats();
    std::printf("\nvIDS: %llu packets analyzed (%llu SIP, %llu RTP), %llu "
                "EFSM transitions\n",
                static_cast<unsigned long long>(stats.packets),
                static_cast<unsigned long long>(stats.sip_packets),
                static_cast<unsigned long long>(stats.rtp_packets),
                static_cast<unsigned long long>(stats.transitions));
    std::printf("      %llu calls tracked, %llu reclaimed, fact base now "
                "%.1f KB\n",
                static_cast<unsigned long long>(
                    bed.vids()->fact_base().calls_created()),
                static_cast<unsigned long long>(
                    bed.vids()->fact_base().calls_deleted()),
                static_cast<double>(bed.vids()->fact_base().MemoryBytes()) /
                    1024.0);
    std::printf("      analysis CPU: %.1f s over %d min of traffic\n",
                bed.tap().cpu_time_used().ToSeconds(), minutes);
    if (bed.vids()->alerts().empty()) {
      std::printf("      no alerts — traffic conformed to the protocol "
                  "specifications\n");
    } else {
      std::printf("      ALERTS:\n");
      for (const auto& alert : bed.vids()->alerts()) {
        std::printf("        %s\n", alert.ToString().c_str());
      }
    }
  }
  return 0;
}
