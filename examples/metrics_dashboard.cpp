// Live metrics dashboard: the enterprise testbed under call workload and
// attack load, summarized as periodic top-style frames from the metrics
// registries, then a flight-recorder provenance dump for the last alert,
// and finally the sharded pipeline under load with per-shard columns.
//
//   $ ./build/examples/metrics_dashboard
//
// The first act shows the two single-engine observability planes side by
// side: the environment registry (what the network is doing — scheduler,
// SIP transactions, RTP senders) and the IDS registry (what the vIDS sees
// — packets, EFSM transitions and their sampled latency, alerts by
// classification). The second act switches to the multi-worker pipeline
// view: a ShardedIds under synthetic call + media load, every packet
// spanned, rendered as one row per shard — ring-depth high-water mark,
// end-to-end ingest->inspect latency quantiles, span count — from the
// merged cross-shard snapshot that the Prometheus exporter also serves.
#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "testbed/testbed.h"
#include "vids/sharded_ids.h"

using namespace vids;

namespace {

void PrintFrame(testbed::Testbed& bed, uint64_t last_transitions,
                double interval_s) {
  obs::MetricsRegistry& ids_metrics = bed.vids()->metrics();
  obs::MetricsRegistry& env = bed.metrics();

  const auto counter = [](const obs::MetricsRegistry& reg,
                          std::string_view name) -> uint64_t {
    const obs::Counter* c = reg.FindCounter(name);
    return c == nullptr ? 0 : c->value();
  };
  const auto gauge = [](const obs::MetricsRegistry& reg,
                        std::string_view name) -> int64_t {
    const obs::Gauge* g = reg.FindGauge(name);
    return g == nullptr ? 0 : g->value();
  };

  const uint64_t transitions = counter(ids_metrics, "efsm.transitions");
  const double rate =
      static_cast<double>(transitions - last_transitions) / interval_s;

  std::printf("---- t=%7.1fs ----------------------------------------\n",
              bed.scheduler().Now().ToSeconds());
  std::printf("  env: sim events %10llu   sip tx %llu   rtp pkts sent %llu\n",
              static_cast<unsigned long long>(
                  counter(env, "sim.events_executed")),
              static_cast<unsigned long long>(
                  counter(env, "sip.tx.clients_created") +
                  counter(env, "sip.tx.servers_created")),
              static_cast<unsigned long long>(
                  counter(env, "rtp.packets_sent")));
  std::printf("  ids: packets %llu   active calls %lld   keyed groups %lld\n",
              static_cast<unsigned long long>(
                  counter(ids_metrics, "vids.packets")),
              static_cast<long long>(gauge(ids_metrics, "vids.active_calls")),
              static_cast<long long>(gauge(ids_metrics, "vids.keyed_groups")));
  std::printf("  efsm: transitions %llu (%.0f/s)",
              static_cast<unsigned long long>(transitions), rate);
  if (const obs::Histogram* lat =
          ids_metrics.FindHistogram("efsm.transition_ns");
      lat != nullptr && lat->count() > 0) {
    std::printf("   latency p50 ~%lldns p99 ~%lldns (n=%llu sampled)",
                static_cast<long long>(lat->Quantile(0.5)),
                static_cast<long long>(lat->Quantile(0.99)),
                static_cast<unsigned long long>(lat->count()));
  }
  std::printf("\n  alerts: %llu total",
              static_cast<unsigned long long>(
                  counter(ids_metrics, "vids.alerts")));
  ids_metrics.VisitCounters(
      [](std::string_view name, const obs::Counter& c) {
        constexpr std::string_view kPrefix = "alerts.";
        if (name.substr(0, kPrefix.size()) != kPrefix) return;
        std::printf("   %.*s=%llu",
                    static_cast<int>(name.size() - kPrefix.size()),
                    name.data() + kPrefix.size(),
                    static_cast<unsigned long long>(c.value()));
      });
  std::printf("\n");
}

/// One frame of the pipeline view: per-shard ring depth / latency / span
/// columns out of the merged snapshot. The snapshot is taken after a
/// Flush() barrier, so every worker-written series in it is quiescent.
void PrintPipelineFrame(const ids::ShardedIds& engine,
                        const obs::MetricsRegistry& merged) {
  std::printf("  shard |  ring depth hwm | e2e p50      p99        | spans\n");
  char name[64];
  for (int i = 0; i < engine.shards(); ++i) {
    std::snprintf(name, sizeof(name), "shard.%d.ring.down_depth_hwm", i);
    const obs::Gauge* depth = merged.FindGauge(name);
    std::snprintf(name, sizeof(name), "shard.%d.lat.e2e", i);
    const obs::Histogram* e2e = merged.FindHistogram(name);
    std::printf("  %5d | %15lld |", i,
                depth == nullptr ? 0LL
                                 : static_cast<long long>(depth->value()));
    if (e2e != nullptr && e2e->count() > 0) {
      std::printf(" %9.3fms %9.3fms |",
                  static_cast<double>(e2e->Quantile(0.5)) / 1e6,
                  static_cast<double>(e2e->Quantile(0.99)) / 1e6);
    } else {
      std::printf(" %9s   %9s   |", "-", "-");
    }
    std::printf(" %llu\n",
                e2e == nullptr
                    ? 0ULL
                    : static_cast<unsigned long long>(e2e->count()));
  }
  const auto counter = [&merged](std::string_view n) -> uint64_t {
    const obs::Counter* c = merged.FindCounter(n);
    return c == nullptr ? 0 : c->value();
  };
  std::printf("  flushes: full=%llu deadline=%llu barrier=%llu   "
              "alerts=%llu\n",
              static_cast<unsigned long long>(
                  counter("pipeline.flush.full")),
              static_cast<unsigned long long>(
                  counter("pipeline.flush.deadline")),
              static_cast<unsigned long long>(
                  counter("pipeline.flush.barrier")),
              static_cast<unsigned long long>(counter("vids.alerts")));
}

/// Drives a ShardedIds with synthetic calls + in-session media (every
/// packet spanned) and renders the per-shard pipeline frames.
void RunPipelineView() {
  ids::ShardedConfig config;
  config.shards = 4;
  config.trace_sample_period = 1;
  ids::ShardedIds engine(config);

  const net::Endpoint proxy_a{net::IpAddress(10, 1, 0, 1), 5060};
  const net::Endpoint proxy_b{net::IpAddress(10, 2, 0, 1), 5060};
  constexpr int kCalls = 8;
  const sim::Time t0 = sim::Time::FromNanos(1);
  std::vector<net::Datagram> media;
  for (int i = 0; i < kCalls; ++i) {
    const net::Endpoint offer{net::IpAddress(10, 1, 0, 10),
                              static_cast<uint16_t>(40000 + 2 * i)};
    auto invite = sip::Message::MakeRequest(
        sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com"));
    sip::Via via;
    via.sent_by = proxy_a;
    via.branch = "z9hG4bKdash" + std::to_string(i);
    invite.PushVia(via);
    sip::NameAddr from;
    from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
    from.SetTag("tag-alice");
    invite.SetFrom(from);
    sip::NameAddr to;
    to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
    invite.SetTo(to);
    invite.SetCallId("dashboard-" + std::to_string(i));
    invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
    invite.SetBody(sdp::MakeAudioOffer(offer).Serialize(), "application/sdp");

    net::Datagram d_invite;
    d_invite.src = proxy_a;
    d_invite.dst = proxy_b;
    d_invite.kind = net::PayloadKind::kSip;
    d_invite.payload = invite.Serialize();
    engine.Ingest(d_invite, true, t0);

    rtp::RtpHeader header;
    header.ssrc = 0xDA000000u + static_cast<uint32_t>(i);
    net::Datagram dgram;
    dgram.src = net::Endpoint{net::IpAddress(10, 2, 0, 10),
                              static_cast<uint16_t>(42000 + 2 * i)};
    dgram.dst = offer;
    dgram.kind = net::PayloadKind::kRtp;
    dgram.payload = header.Serialize();
    media.push_back(std::move(dgram));
  }

  std::printf("\nsharded pipeline view: %d workers, every packet spanned\n",
              engine.shards());
  std::vector<uint16_t> seq(kCalls, 0);
  std::vector<uint32_t> ts(kCalls, 0);
  for (int frame = 0; frame < 3; ++frame) {
    for (int k = 0; k < 150; ++k) {
      for (int i = 0; i < kCalls; ++i) {
        auto& dgram = media[static_cast<size_t>(i)];
        const uint16_t s = ++seq[static_cast<size_t>(i)];
        const uint32_t t = ts[static_cast<size_t>(i)] += 160;
        dgram.payload[2] = static_cast<char>(s >> 8);
        dgram.payload[3] = static_cast<char>(s & 0xFF);
        dgram.payload[4] = static_cast<char>(t >> 24);
        dgram.payload[5] = static_cast<char>((t >> 16) & 0xFF);
        dgram.payload[6] = static_cast<char>((t >> 8) & 0xFF);
        dgram.payload[7] = static_cast<char>(t & 0xFF);
        engine.Ingest(dgram, true, t0);
      }
    }
    engine.Flush(t0);  // barrier: quiesce every shard before the snapshot
    std::printf("---- pipeline frame %d (+%d media packets) ----\n",
                frame + 1, 150 * kCalls);
    PrintPipelineFrame(engine, engine.MergedMetrics());
  }
  engine.Stop();
}

}  // namespace

int main() {
  testbed::TestbedConfig config;
  config.seed = 11;
  config.uas_per_network = 6;
  testbed::Testbed bed(config);

  // Busy workload: every network-A phone calls network-B phones often.
  testbed::WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(25);
  workload.mean_duration = sim::Duration::Seconds(40);
  bed.StartWorkload(workload);

  // Attack load on top: a spoofed BYE against a live call mid-run, and an
  // INVITE flood later.
  std::string victim_call_id;
  bed.scheduler().ScheduleAt(sim::Time::FromNanos(20'000'000'000), [&] {
    victim_call_id = bed.uas_a()[0]->ua().PlaceCall(
        bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(90));
  });
  bed.scheduler().ScheduleAt(sim::Time::FromNanos(26'000'000'000), [&] {
    if (const auto snap = bed.eavesdropper().Get(victim_call_id)) {
      bed.attacker().SendSpoofedBye(*snap);
    }
  });
  bed.scheduler().ScheduleAt(sim::Time::FromNanos(45'000'000'000), [&] {
    bed.attacker().LaunchInviteFlood(
        bed.uas_b()[1]->ua().address_of_record(), bed.proxy_b_endpoint(), 25,
        sim::Duration::Millis(20));
  });

  std::printf("enterprise testbed: %d+%d phones, workload + attacks\n",
              config.uas_per_network, config.uas_per_network);
  const sim::Duration frame = sim::Duration::Seconds(10);
  uint64_t last_transitions = 0;
  for (int i = 0; i < 8; ++i) {
    bed.RunFor(frame);
    PrintFrame(bed, last_transitions, frame.ToSeconds());
    last_transitions =
        bed.vids()->metrics().FindCounter("efsm.transitions")->value();
  }

  // Provenance: explain the BYE-DoS alert from its call's flight recorder.
  for (const auto& alert : bed.vids()->alerts()) {
    if (alert.classification == ids::kAttackByeDos) {
      std::printf("\n%s\n", alert.ProvenanceToString().c_str());
      break;
    }
  }

  std::printf("\nfinal IDS registry snapshot:\n%s",
              bed.vids()->metrics().ToJson().c_str());

  // Act two: the same observability stack on the multi-worker pipeline.
  RunPipelineView();
  return 0;
}
