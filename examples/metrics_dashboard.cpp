// Live metrics dashboard: the enterprise testbed under call workload and
// attack load, summarized as periodic top-style frames from the metrics
// registries, then a flight-recorder provenance dump for the last alert.
//
//   $ ./build/examples/metrics_dashboard
//
// Each frame shows the two observability planes side by side: the
// environment registry (what the network is doing — scheduler, SIP
// transactions, RTP senders) and the IDS registry (what the vIDS sees —
// packets, EFSM transitions and their sampled latency, alerts by
// classification).
#include <cstdio>
#include <string>
#include <string_view>

#include "obs/metrics.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

void PrintFrame(testbed::Testbed& bed, uint64_t last_transitions,
                double interval_s) {
  obs::MetricsRegistry& ids_metrics = bed.vids()->metrics();
  obs::MetricsRegistry& env = bed.metrics();

  const auto counter = [](const obs::MetricsRegistry& reg,
                          std::string_view name) -> uint64_t {
    const obs::Counter* c = reg.FindCounter(name);
    return c == nullptr ? 0 : c->value();
  };
  const auto gauge = [](const obs::MetricsRegistry& reg,
                        std::string_view name) -> int64_t {
    const obs::Gauge* g = reg.FindGauge(name);
    return g == nullptr ? 0 : g->value();
  };

  const uint64_t transitions = counter(ids_metrics, "efsm.transitions");
  const double rate =
      static_cast<double>(transitions - last_transitions) / interval_s;

  std::printf("---- t=%7.1fs ----------------------------------------\n",
              bed.scheduler().Now().ToSeconds());
  std::printf("  env: sim events %10llu   sip tx %llu   rtp pkts sent %llu\n",
              static_cast<unsigned long long>(
                  counter(env, "sim.events_executed")),
              static_cast<unsigned long long>(
                  counter(env, "sip.tx.clients_created") +
                  counter(env, "sip.tx.servers_created")),
              static_cast<unsigned long long>(
                  counter(env, "rtp.packets_sent")));
  std::printf("  ids: packets %llu   active calls %lld   keyed groups %lld\n",
              static_cast<unsigned long long>(
                  counter(ids_metrics, "vids.packets")),
              static_cast<long long>(gauge(ids_metrics, "vids.active_calls")),
              static_cast<long long>(gauge(ids_metrics, "vids.keyed_groups")));
  std::printf("  efsm: transitions %llu (%.0f/s)",
              static_cast<unsigned long long>(transitions), rate);
  if (const obs::Histogram* lat =
          ids_metrics.FindHistogram("efsm.transition_ns");
      lat != nullptr && lat->count() > 0) {
    std::printf("   latency p50 ~%lldns p99 ~%lldns (n=%llu sampled)",
                static_cast<long long>(lat->Quantile(0.5)),
                static_cast<long long>(lat->Quantile(0.99)),
                static_cast<unsigned long long>(lat->count()));
  }
  std::printf("\n  alerts: %llu total",
              static_cast<unsigned long long>(
                  counter(ids_metrics, "vids.alerts")));
  ids_metrics.VisitCounters(
      [](std::string_view name, const obs::Counter& c) {
        constexpr std::string_view kPrefix = "alerts.";
        if (name.substr(0, kPrefix.size()) != kPrefix) return;
        std::printf("   %.*s=%llu",
                    static_cast<int>(name.size() - kPrefix.size()),
                    name.data() + kPrefix.size(),
                    static_cast<unsigned long long>(c.value()));
      });
  std::printf("\n");
}

}  // namespace

int main() {
  testbed::TestbedConfig config;
  config.seed = 11;
  config.uas_per_network = 6;
  testbed::Testbed bed(config);

  // Busy workload: every network-A phone calls network-B phones often.
  testbed::WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(25);
  workload.mean_duration = sim::Duration::Seconds(40);
  bed.StartWorkload(workload);

  // Attack load on top: a spoofed BYE against a live call mid-run, and an
  // INVITE flood later.
  std::string victim_call_id;
  bed.scheduler().ScheduleAt(sim::Time::FromNanos(20'000'000'000), [&] {
    victim_call_id = bed.uas_a()[0]->ua().PlaceCall(
        bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(90));
  });
  bed.scheduler().ScheduleAt(sim::Time::FromNanos(26'000'000'000), [&] {
    if (const auto snap = bed.eavesdropper().Get(victim_call_id)) {
      bed.attacker().SendSpoofedBye(*snap);
    }
  });
  bed.scheduler().ScheduleAt(sim::Time::FromNanos(45'000'000'000), [&] {
    bed.attacker().LaunchInviteFlood(
        bed.uas_b()[1]->ua().address_of_record(), bed.proxy_b_endpoint(), 25,
        sim::Duration::Millis(20));
  });

  std::printf("enterprise testbed: %d+%d phones, workload + attacks\n",
              config.uas_per_network, config.uas_per_network);
  const sim::Duration frame = sim::Duration::Seconds(10);
  uint64_t last_transitions = 0;
  for (int i = 0; i < 8; ++i) {
    bed.RunFor(frame);
    PrintFrame(bed, last_transitions, frame.ToSeconds());
    last_transitions =
        bed.vids()->metrics().FindCounter("efsm.transitions")->value();
  }

  // Provenance: explain the BYE-DoS alert from its call's flight recorder.
  for (const auto& alert : bed.vids()->alerts()) {
    if (alert.classification == ids::kAttackByeDos) {
      std::printf("\n%s\n", alert.ProvenanceToString().c_str());
      break;
    }
  }

  std::printf("\nfinal IDS registry snapshot:\n%s",
              bed.vids()->metrics().ToJson().c_str());
  return 0;
}
