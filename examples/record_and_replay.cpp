// Forensics workflow: record the wire, re-analyze offline.
//
//   $ ./build/examples/record_and_replay [trace-file]
//
// Captures a BYE DoS attack at the monitoring point into a portable text
// trace, then loads the trace into a *fresh* offline vIDS twice — once
// with the default thresholds (reproducing the online alert) and once
// with a paranoid configuration — showing how a recorded incident can be
// re-examined after the fact.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "testbed/testbed.h"
#include "vids/trace.h"

using namespace vids;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/vids_incident.trace";

  // --- Online: the incident happens; the tap records. ---
  testbed::TestbedConfig config;
  config.seed = 2026;
  config.uas_per_network = 3;
  testbed::Testbed bed(config);
  ids::TraceLog capture;
  bed.AddMonitor(capture.MakeRecorder(bed.scheduler()));
  bed.RunFor(sim::Duration::Seconds(2));
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(3));
  if (const auto snap = bed.eavesdropper().Get(call_id)) {
    bed.attacker().SendSpoofedBye(*snap);
  }
  // Keep recording long enough for the duped caller's next talkspurt —
  // VAD silences can stretch for many seconds.
  bed.RunFor(sim::Duration::Seconds(20));
  std::printf("online: %zu packets captured, %zu alert(s)\n", capture.size(),
              bed.vids()->alerts().size());

  {
    std::ofstream file(path);
    file << capture.Serialize();
  }
  std::printf("trace written to %s\n\n", path.c_str());

  // --- Offline: reload and re-analyze. ---
  std::ifstream file(path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  const auto trace = ids::TraceLog::Parse(buffer.str());
  if (!trace) {
    std::printf("trace failed to parse!\n");
    return 1;
  }

  std::printf("replay with default thresholds:\n");
  sim::Scheduler scheduler_a;
  ids::Vids default_vids(scheduler_a);
  trace->ReplayInto(default_vids, scheduler_a);
  for (const auto& alert : default_vids.alerts()) {
    std::printf("  %s\n", alert.ToString().c_str());
  }

  std::printf("\nreplay with a paranoid configuration (T = 10 ms):\n");
  ids::DetectionConfig paranoid;
  paranoid.bye_inflight_grace = sim::Duration::Millis(10);
  sim::Scheduler scheduler_b;
  ids::Vids paranoid_vids(scheduler_b, paranoid);
  trace->ReplayInto(paranoid_vids, scheduler_b);
  std::printf("  %zu alert(s) — smaller T flags the attack sooner (and, on "
              "clean traffic,\n  would false-alarm; see "
              "bench/detection_sensitivity)\n",
              paranoid_vids.alerts().size());

  return default_vids.CountAlerts(ids::kAttackByeDos) >= 1 ? 0 : 1;
}
