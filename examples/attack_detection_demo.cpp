// Attack detection demo: replays the paper's §3 threat model against a
// live network and narrates what the vIDS sees.
//
//   $ ./build/examples/attack_detection_demo
//
// One scenario at a time: spoofed BYE, spoofed CANCEL, INVITE flood,
// media spam, RTP flood, call hijack, DRDoS reflection and toll fraud —
// each launched by a real attacker host against real victim phones.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "attacks/rogue_ua.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

struct Demo {
  std::string title;
  std::string what_happens;
  std::function<void(testbed::Testbed&)> launch;
};

attacks::CallSnapshot DialAndObserve(testbed::Testbed& bed, int callee = 0) {
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[static_cast<size_t>(callee)]->ua().address_of_record(),
      sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(3));
  return bed.eavesdropper().Get(call_id).value_or(attacks::CallSnapshot{});
}

}  // namespace

int main() {
  std::vector<Demo> demos;
  demos.push_back(
      {"BYE DoS",
       "attacker forges a BYE inside an established dialog; the callee "
       "hangs up\nwhile the caller keeps talking into a dead line",
       [](testbed::Testbed& bed) {
         const auto snap = DialAndObserve(bed);
         bed.attacker().SendSpoofedBye(snap);
         bed.RunFor(sim::Duration::Seconds(5));
       }});
  demos.push_back(
      {"CANCEL DoS",
       "attacker cancels a ringing call it never placed, using the INVITE "
       "branch\nit sniffed off the wire",
       [](testbed::Testbed& bed) {
         auto& caller = *bed.uas_a()[0];
         const auto call_id = caller.ua().PlaceCall(
             bed.uas_b()[0]->ua().address_of_record(),
             sim::Duration::Seconds(60));
         bed.RunFor(sim::Duration::Millis(200));
         if (const auto snap = bed.eavesdropper().Get(call_id)) {
           bed.attacker().SendSpoofedCancel(*snap, bed.proxy_b_endpoint());
         }
         bed.RunFor(sim::Duration::Seconds(5));
       }});
  demos.push_back(
      {"INVITE flooding",
       "25 call attempts in half a second exhaust the phone's 3-call "
       "capacity",
       [](testbed::Testbed& bed) {
         bed.attacker().LaunchInviteFlood(
             bed.uas_b()[1]->ua().address_of_record(),
             bed.proxy_b_endpoint(), 25, sim::Duration::Millis(20));
         bed.RunFor(sim::Duration::Seconds(5));
       }});
  demos.push_back(
      {"media spamming",
       "attacker injects RTP with the live stream's SSRC, sequence numbers "
       "far\nahead — the phone plays the attacker's audio",
       [](testbed::Testbed& bed) {
         const auto snap = DialAndObserve(bed);
         bed.attacker().LaunchMediaSpam(snap, 40, sim::Duration::Millis(10));
         bed.RunFor(sim::Duration::Seconds(3));
       }});
  demos.push_back(
      {"RTP flooding",
       "1000 alien packets per second hammer the negotiated media port",
       [](testbed::Testbed& bed) {
         const auto snap = DialAndObserve(bed);
         if (snap.callee_media) {
           bed.attacker().LaunchRtpFlood(*snap.callee_media, 1000,
                                         sim::Duration::Seconds(2));
         }
         bed.RunFor(sim::Duration::Seconds(4));
       }});
  demos.push_back(
      {"call hijacking",
       "a re-INVITE inside the dialog, from a tag the dialog never saw, "
       "tries to\nredirect the media to the attacker",
       [](testbed::Testbed& bed) {
         const auto snap = DialAndObserve(bed);
         bed.attacker().SendHijackInvite(snap);
         bed.RunFor(sim::Duration::Seconds(3));
       }});
  demos.push_back(
      {"DRDoS reflection",
       "spoofed OPTIONS bounce off an outside proxy; the responses converge "
       "on a\nnetwork-B phone that never asked",
       [](testbed::Testbed& bed) {
         bed.attacker().LaunchDrdosReflection(
             net::Endpoint{bed.uas_b()[2]->host().ip(), 5060},
             bed.proxy_a_endpoint(), 30, sim::Duration::Millis(20));
         bed.RunFor(sim::Duration::Seconds(5));
       }});
  demos.push_back(
      {"toll fraud",
       "a misbehaving-but-authenticated UA sends BYE to stop the billing "
       "clock and\nkeeps streaming — only the SIP+RTP cross view can tell",
       [](testbed::Testbed& bed) {
         attacks::RogueUa::Config config;
         config.ua.user = "rogue";
         config.ua.domain = "attacker.example.com";
         config.ua.outbound_proxy = bed.proxy_b_endpoint();
         config.codec = rtp::G729();
         config.bye_after = sim::Duration::Seconds(3);
         config.stream_after_bye = sim::Duration::Seconds(6);
         static common::Stream rng(7, "demo-rogue");
         static std::unique_ptr<attacks::RogueUa> rogue;
         rogue = std::make_unique<attacks::RogueUa>(
             bed.scheduler(), bed.attacker_host(), config, rng);
         rogue->CallAndDefraud(bed.uas_b()[3]->ua().address_of_record());
         bed.RunFor(sim::Duration::Seconds(15));
         rogue.reset();
       }});

  int detected = 0;
  for (const auto& demo : demos) {
    std::printf("=== %s ===\n%s\n", demo.title.c_str(),
                demo.what_happens.c_str());
    testbed::TestbedConfig config;
    config.seed = 5;
    config.uas_per_network = 4;
    testbed::Testbed bed(config);
    bed.vids()->set_alert_callback([&](const ids::Alert& alert) {
      std::printf("  >>> %s\n", alert.ToString().c_str());
    });
    bed.RunFor(sim::Duration::Seconds(2));
    demo.launch(bed);
    const bool hit =
        bed.vids()->CountAlerts(ids::AlertKind::kAttackPattern) > 0 ||
        bed.vids()->CountAlerts(ids::AlertKind::kSpecDeviation) > 0;
    detected += hit ? 1 : 0;
    std::printf("  -> %s\n\n", hit ? "detected" : "NOT detected");
  }
  std::printf("%d / %zu scenarios detected.\n", detected, demos.size());
  return 0;
}
