// pcap_replay: feed a capture file through the vIDS, offline.
//
// The operator-facing half of the capture front end (DESIGN.md §14): reads
// a classic pcap savefile (either byte order, µs or ns resolution,
// Ethernet/VLAN or raw-IPv4 frames, UDP only), replays it at recorded
// timestamps into the engine — single-threaded Vids by default, the
// sharded multi-worker engine with --shards=N — and prints decode stats
// plus the alert list. CI replays the checked-in corpus at --shards=1 and
// --shards=4 and asserts identical alert counts; the bench-smoke lane also
// replays at --producers=2 --shards=4 and asserts the count again (the
// multi-producer fan-out keeps the alert stream byte-identical).
//
// Usage: pcap_replay --pcap=FILE [--shards=N] [--producers=N]
//                    [--inside=CIDR] [--quiet]
//
//   --inside=CIDR  packets whose source lies in CIDR are treated as coming
//                  from inside the protected perimeter (default: all
//                  traffic is outside). The checked-in corpus uses
//                  10.2.0.0/16.
//
// Exit status: 0 on success, 1 on a capture fault (bad magic, record past
// EOF) or an unreadable file, 2 on usage errors.
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "capture/pcap.h"
#include "capture/replay.h"
#include "sim/scheduler.h"
#include "vids/ids.h"
#include "vids/sharded_ids.h"

int main(int argc, char** argv) {
  using namespace vids;

  std::string pcap_path;
  int shards = 0;
  int producers = 1;
  bool quiet = false;
  capture::PcapReadOptions read_options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--pcap=", 7) == 0) {
      pcap_path = arg + 7;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = std::atoi(arg + 9);
    } else if (std::strncmp(arg, "--producers=", 12) == 0) {
      producers = std::atoi(arg + 12);
    } else if (std::strncmp(arg, "--inside=", 9) == 0) {
      const auto subnet = net::Subnet::Parse(arg + 9);
      if (!subnet) {
        std::fprintf(stderr, "pcap_replay: bad subnet '%s'\n", arg + 9);
        return 2;
      }
      read_options.inside = *subnet;
    } else if (std::strcmp(arg, "--quiet") == 0) {
      quiet = true;
    } else {
      std::fprintf(stderr,
                   "usage: pcap_replay --pcap=FILE [--shards=N] "
                   "[--producers=N] [--inside=CIDR] [--quiet]\n");
      return 2;
    }
  }
  if (pcap_path.empty()) {
    std::fprintf(stderr, "pcap_replay: --pcap=FILE is required\n");
    return 2;
  }

  const auto source = capture::PcapFileSource::Open(pcap_path, read_options);
  capture::ReplayStats replay;
  std::map<std::string, int> by_classification;
  size_t alert_count = 0;

  if (producers > 1 && shards <= 0) {
    std::fprintf(stderr, "pcap_replay: --producers needs --shards=N\n");
    return 2;
  }
  if (shards > 0) {
    ids::ShardedConfig config;
    config.shards = shards;
    config.producers = producers < 1 ? 1 : producers;
    ids::ShardedIds engine(config);
    replay = capture::RunSource(*source, engine, config.producers, 64);
    engine.Stop();
    alert_count = engine.alerts().size();
    for (const auto& alert : engine.alerts()) {
      ++by_classification[alert.classification];
    }
  } else {
    sim::Scheduler scheduler;
    ids::Vids vids(scheduler, ids::DetectionConfig{}, ids::CostModel{});
    replay = capture::RunSource(*source, vids, scheduler);
    alert_count = vids.alerts().size();
    for (const auto& alert : vids.alerts()) {
      ++by_classification[alert.classification];
    }
  }

  const auto& stats = source->stats();
  std::printf("pcap: %s (%s-endian, %s resolution, linktype %u)\n",
              pcap_path.c_str(), source->swapped() ? "big" : "little",
              source->nanosecond() ? "ns" : "us", source->linktype());
  std::printf(
      "records=%llu delivered=%llu skipped: non_ip=%llu non_udp=%llu "
      "fragment=%llu malformed=%llu\n",
      static_cast<unsigned long long>(stats.records),
      static_cast<unsigned long long>(stats.delivered),
      static_cast<unsigned long long>(stats.skipped_non_ip),
      static_cast<unsigned long long>(stats.skipped_non_udp),
      static_cast<unsigned long long>(stats.skipped_fragment),
      static_cast<unsigned long long>(stats.skipped_malformed));
  std::printf("replayed %llu packets in %llu batches, stream end %.6fs, "
              "shards=%d, producers=%d\n",
              static_cast<unsigned long long>(replay.packets),
              static_cast<unsigned long long>(replay.batches),
              replay.end.ToSeconds(), shards, producers < 1 ? 1 : producers);
  std::printf("alerts: %zu\n", alert_count);
  if (!quiet) {
    for (const auto& [classification, count] : by_classification) {
      std::printf("  %-40s %d\n", classification.c_str(), count);
    }
  }
  if (!source->ok()) {
    std::fprintf(stderr, "capture fault: %s\n", source->error().c_str());
    return 1;
  }
  return 0;
}
