// Dumps every EFSM in the system as Graphviz and validates it.
//
//   $ ./build/examples/dump_machines [output-dir]
//
// Regenerates the paper's state-machine figures from the executable
// definitions: the SIP/RTP specification machines (Fig. 2/5) and all
// attack patterns (Fig. 4/6 + the rest of the scenario base). Render with
//   dot -Tsvg sip-spec.dot > sip-spec.svg
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "vids/patterns.h"
#include "vids/spec_machines.h"

using namespace vids;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  ids::DetectionConfig config;

  std::vector<efsm::MachineDef> machines;
  machines.push_back(ids::BuildSipSpecMachine(config));
  machines.push_back(ids::BuildRtpSpecMachine(config));
  machines.push_back(ids::BuildInviteFloodMachine(config));
  machines.push_back(ids::BuildMediaSpamMachine(config));
  machines.push_back(ids::BuildRtpFloodMachine(config));
  machines.push_back(ids::BuildCancelDosMachine(config));
  machines.push_back(ids::BuildHijackMachine(config));
  machines.push_back(ids::BuildDrdosMachine(config));
  machines.push_back(ids::BuildRtcpByeMachine(config));

  int problems = 0;
  for (const auto& machine : machines) {
    const std::string path = out_dir + "/" + machine.name() + ".dot";
    std::ofstream file(path);
    file << machine.ToDot();
    std::printf("%-16s %2zu states %3zu transitions -> %s\n",
                machine.name().c_str(), machine.state_count(),
                machine.transitions().size(), path.c_str());
    for (const auto& finding : machine.Validate()) {
      std::printf("  WARNING: %s\n", finding.c_str());
      ++problems;
    }
  }
  std::printf("%s\n", problems == 0
                          ? "all machine definitions validate cleanly"
                          : "definition problems found!");
  return problems == 0 ? 0 : 1;
}
