// Quickstart: monitor one VoIP call, watch the interacting state machines,
// then watch them catch a spoofed BYE.
//
//   $ ./build/examples/quickstart
//
// Builds the Fig. 7 testbed, places a call from a0@a.example.com to
// b0@b.example.com, prints every EFSM transition the vIDS makes (the SIP
// machine walking the dialog, the δ syncs driving the RTP machine), then
// lets an attacker forge a BYE and shows the cross-protocol alert.
#include <cstdio>

#include "testbed/testbed.h"

using namespace vids;

int main() {
  // 1. A simulated enterprise deployment with the vIDS inline.
  testbed::TestbedConfig config;
  config.seed = 1;
  config.uas_per_network = 2;
  config.vids_enabled = true;
  testbed::Testbed bed(config);

  // 2. Watch the state-transition analysis live.
  bed.vids()->set_transition_trace(
      [&](const efsm::MachineInstance& machine, const efsm::Transition& t) {
        // Per-destination counters are noisy; show the per-call machines.
        if (machine.def().name() != "sip-spec" &&
            machine.def().name() != "rtp-spec") {
          return;
        }
        std::printf("  [t=%7.3fs] %-8s %s\n",
                    bed.scheduler().Now().ToSeconds(),
                    machine.name().c_str(), t.label.c_str());
      });
  bed.vids()->set_alert_callback([&](const ids::Alert& alert) {
    std::printf(">>> ALERT: %s\n", alert.ToString().c_str());
  });

  bed.RunFor(sim::Duration::Seconds(2));  // REGISTER handshakes

  // 3. A normal call: a0 calls b0 for 20 seconds.
  std::printf("--- placing call a0 -> b0 ---\n");
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(20));
  bed.RunFor(sim::Duration::Seconds(30));

  const auto& record = caller.ua().completed_calls().at(0);
  std::printf("--- call %s completed: setup delay %.1f ms, no alerts ---\n\n",
              call_id.c_str(), record.SetupDelay()->ToMillis());

  // 4. Now the same call again, but an attacker tears it down mid-stream.
  std::printf("--- placing a second call; attacker will forge a BYE ---\n");
  caller.ua().PlaceCall(bed.uas_b()[0]->ua().address_of_record(),
                        sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(5));
  const auto snapshot = bed.eavesdropper().LatestAnswered();
  if (snapshot) {
    std::printf("--- attacker eavesdropped dialog %s; sending spoofed BYE "
                "---\n",
                snapshot->call_id.c_str());
    bed.attacker().SendSpoofedBye(*snapshot);
  }
  bed.RunFor(sim::Duration::Seconds(5));

  std::printf("\nvIDS saw %llu packets, made %llu transitions, raised %zu "
              "alert(s).\n",
              static_cast<unsigned long long>(bed.vids()->stats().packets),
              static_cast<unsigned long long>(bed.vids()->stats().transitions),
              bed.vids()->alerts().size());
  return 0;
}
