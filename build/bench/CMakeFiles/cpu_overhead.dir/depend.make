# Empty dependencies file for cpu_overhead.
# This may be replaced when dependencies are built.
