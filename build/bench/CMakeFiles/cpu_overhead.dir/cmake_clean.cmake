file(REMOVE_RECURSE
  "CMakeFiles/cpu_overhead.dir/cpu_overhead.cpp.o"
  "CMakeFiles/cpu_overhead.dir/cpu_overhead.cpp.o.d"
  "cpu_overhead"
  "cpu_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
