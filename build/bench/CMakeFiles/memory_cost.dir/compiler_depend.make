# Empty compiler generated dependencies file for memory_cost.
# This may be replaced when dependencies are built.
