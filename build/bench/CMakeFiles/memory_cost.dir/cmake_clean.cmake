file(REMOVE_RECURSE
  "CMakeFiles/memory_cost.dir/memory_cost.cpp.o"
  "CMakeFiles/memory_cost.dir/memory_cost.cpp.o.d"
  "memory_cost"
  "memory_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
