file(REMOVE_RECURSE
  "CMakeFiles/detection_sensitivity.dir/detection_sensitivity.cpp.o"
  "CMakeFiles/detection_sensitivity.dir/detection_sensitivity.cpp.o.d"
  "detection_sensitivity"
  "detection_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detection_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
