# Empty dependencies file for detection_sensitivity.
# This may be replaced when dependencies are built.
