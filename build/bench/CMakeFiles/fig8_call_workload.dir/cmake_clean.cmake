file(REMOVE_RECURSE
  "CMakeFiles/fig8_call_workload.dir/fig8_call_workload.cpp.o"
  "CMakeFiles/fig8_call_workload.dir/fig8_call_workload.cpp.o.d"
  "fig8_call_workload"
  "fig8_call_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_call_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
