# Empty compiler generated dependencies file for fig8_call_workload.
# This may be replaced when dependencies are built.
