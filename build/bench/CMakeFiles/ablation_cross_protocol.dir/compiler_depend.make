# Empty compiler generated dependencies file for ablation_cross_protocol.
# This may be replaced when dependencies are built.
