file(REMOVE_RECURSE
  "CMakeFiles/ablation_cross_protocol.dir/ablation_cross_protocol.cpp.o"
  "CMakeFiles/ablation_cross_protocol.dir/ablation_cross_protocol.cpp.o.d"
  "ablation_cross_protocol"
  "ablation_cross_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cross_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
