# Empty dependencies file for fig9_call_setup_delay.
# This may be replaced when dependencies are built.
