file(REMOVE_RECURSE
  "CMakeFiles/fig9_call_setup_delay.dir/fig9_call_setup_delay.cpp.o"
  "CMakeFiles/fig9_call_setup_delay.dir/fig9_call_setup_delay.cpp.o.d"
  "fig9_call_setup_delay"
  "fig9_call_setup_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_call_setup_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
