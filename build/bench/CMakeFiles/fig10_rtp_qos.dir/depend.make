# Empty dependencies file for fig10_rtp_qos.
# This may be replaced when dependencies are built.
