file(REMOVE_RECURSE
  "CMakeFiles/fig10_rtp_qos.dir/fig10_rtp_qos.cpp.o"
  "CMakeFiles/fig10_rtp_qos.dir/fig10_rtp_qos.cpp.o.d"
  "fig10_rtp_qos"
  "fig10_rtp_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_rtp_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
