
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_rtp_qos.cpp" "bench/CMakeFiles/fig10_rtp_qos.dir/fig10_rtp_qos.cpp.o" "gcc" "bench/CMakeFiles/fig10_rtp_qos.dir/fig10_rtp_qos.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/vids_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/vids/CMakeFiles/vids_ids.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/vids_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/vids_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/vids_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/sdp/CMakeFiles/vids_sdp.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/vids_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/efsm/CMakeFiles/vids_efsm.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vids_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vids_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
