# Empty compiler generated dependencies file for unknown_attack.
# This may be replaced when dependencies are built.
