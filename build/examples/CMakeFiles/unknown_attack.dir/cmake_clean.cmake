file(REMOVE_RECURSE
  "CMakeFiles/unknown_attack.dir/unknown_attack.cpp.o"
  "CMakeFiles/unknown_attack.dir/unknown_attack.cpp.o.d"
  "unknown_attack"
  "unknown_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unknown_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
