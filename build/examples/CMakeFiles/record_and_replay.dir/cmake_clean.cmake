file(REMOVE_RECURSE
  "CMakeFiles/record_and_replay.dir/record_and_replay.cpp.o"
  "CMakeFiles/record_and_replay.dir/record_and_replay.cpp.o.d"
  "record_and_replay"
  "record_and_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/record_and_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
