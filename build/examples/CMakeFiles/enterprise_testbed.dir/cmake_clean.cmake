file(REMOVE_RECURSE
  "CMakeFiles/enterprise_testbed.dir/enterprise_testbed.cpp.o"
  "CMakeFiles/enterprise_testbed.dir/enterprise_testbed.cpp.o.d"
  "enterprise_testbed"
  "enterprise_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
