# Empty dependencies file for enterprise_testbed.
# This may be replaced when dependencies are built.
