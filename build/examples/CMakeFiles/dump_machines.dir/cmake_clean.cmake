file(REMOVE_RECURSE
  "CMakeFiles/dump_machines.dir/dump_machines.cpp.o"
  "CMakeFiles/dump_machines.dir/dump_machines.cpp.o.d"
  "dump_machines"
  "dump_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
