# Empty dependencies file for dump_machines.
# This may be replaced when dependencies are built.
