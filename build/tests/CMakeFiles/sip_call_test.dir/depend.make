# Empty dependencies file for sip_call_test.
# This may be replaced when dependencies are built.
