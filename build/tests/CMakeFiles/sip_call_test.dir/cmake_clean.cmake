file(REMOVE_RECURSE
  "CMakeFiles/sip_call_test.dir/sip_call_test.cpp.o"
  "CMakeFiles/sip_call_test.dir/sip_call_test.cpp.o.d"
  "sip_call_test"
  "sip_call_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_call_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
