# Empty dependencies file for sip_proxy_test.
# This may be replaced when dependencies are built.
