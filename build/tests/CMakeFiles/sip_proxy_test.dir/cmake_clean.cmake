file(REMOVE_RECURSE
  "CMakeFiles/sip_proxy_test.dir/sip_proxy_test.cpp.o"
  "CMakeFiles/sip_proxy_test.dir/sip_proxy_test.cpp.o.d"
  "sip_proxy_test"
  "sip_proxy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
