# Empty dependencies file for efsm_test.
# This may be replaced when dependencies are built.
