file(REMOVE_RECURSE
  "CMakeFiles/vids_ids_test.dir/vids_ids_test.cpp.o"
  "CMakeFiles/vids_ids_test.dir/vids_ids_test.cpp.o.d"
  "vids_ids_test"
  "vids_ids_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_ids_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
