# Empty compiler generated dependencies file for vids_ids_test.
# This may be replaced when dependencies are built.
