file(REMOVE_RECURSE
  "CMakeFiles/vids_components_test.dir/vids_components_test.cpp.o"
  "CMakeFiles/vids_components_test.dir/vids_components_test.cpp.o.d"
  "vids_components_test"
  "vids_components_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_components_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
