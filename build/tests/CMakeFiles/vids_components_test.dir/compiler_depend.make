# Empty compiler generated dependencies file for vids_components_test.
# This may be replaced when dependencies are built.
