# Empty compiler generated dependencies file for sip_auth_test.
# This may be replaced when dependencies are built.
