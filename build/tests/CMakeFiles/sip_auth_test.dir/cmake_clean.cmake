file(REMOVE_RECURSE
  "CMakeFiles/sip_auth_test.dir/sip_auth_test.cpp.o"
  "CMakeFiles/sip_auth_test.dir/sip_auth_test.cpp.o.d"
  "sip_auth_test"
  "sip_auth_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
