file(REMOVE_RECURSE
  "CMakeFiles/sip_property_test.dir/sip_property_test.cpp.o"
  "CMakeFiles/sip_property_test.dir/sip_property_test.cpp.o.d"
  "sip_property_test"
  "sip_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
