file(REMOVE_RECURSE
  "CMakeFiles/vids_machines_test.dir/vids_machines_test.cpp.o"
  "CMakeFiles/vids_machines_test.dir/vids_machines_test.cpp.o.d"
  "vids_machines_test"
  "vids_machines_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_machines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
