# Empty dependencies file for vids_machines_test.
# This may be replaced when dependencies are built.
