# Empty compiler generated dependencies file for sip_message_test.
# This may be replaced when dependencies are built.
