file(REMOVE_RECURSE
  "CMakeFiles/sip_message_test.dir/sip_message_test.cpp.o"
  "CMakeFiles/sip_message_test.dir/sip_message_test.cpp.o.d"
  "sip_message_test"
  "sip_message_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_message_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
