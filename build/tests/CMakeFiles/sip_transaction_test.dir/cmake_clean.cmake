file(REMOVE_RECURSE
  "CMakeFiles/sip_transaction_test.dir/sip_transaction_test.cpp.o"
  "CMakeFiles/sip_transaction_test.dir/sip_transaction_test.cpp.o.d"
  "sip_transaction_test"
  "sip_transaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sip_transaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
