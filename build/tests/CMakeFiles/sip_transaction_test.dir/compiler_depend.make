# Empty compiler generated dependencies file for sip_transaction_test.
# This may be replaced when dependencies are built.
