file(REMOVE_RECURSE
  "CMakeFiles/vids_attacks.dir/eavesdropper.cpp.o"
  "CMakeFiles/vids_attacks.dir/eavesdropper.cpp.o.d"
  "CMakeFiles/vids_attacks.dir/rogue_ua.cpp.o"
  "CMakeFiles/vids_attacks.dir/rogue_ua.cpp.o.d"
  "CMakeFiles/vids_attacks.dir/toolkit.cpp.o"
  "CMakeFiles/vids_attacks.dir/toolkit.cpp.o.d"
  "libvids_attacks.a"
  "libvids_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
