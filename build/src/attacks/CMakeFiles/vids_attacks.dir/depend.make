# Empty dependencies file for vids_attacks.
# This may be replaced when dependencies are built.
