file(REMOVE_RECURSE
  "libvids_attacks.a"
)
