file(REMOVE_RECURSE
  "libvids_sim.a"
)
