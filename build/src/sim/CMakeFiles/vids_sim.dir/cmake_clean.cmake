file(REMOVE_RECURSE
  "CMakeFiles/vids_sim.dir/scheduler.cpp.o"
  "CMakeFiles/vids_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/vids_sim.dir/time.cpp.o"
  "CMakeFiles/vids_sim.dir/time.cpp.o.d"
  "libvids_sim.a"
  "libvids_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
