# Empty compiler generated dependencies file for vids_sim.
# This may be replaced when dependencies are built.
