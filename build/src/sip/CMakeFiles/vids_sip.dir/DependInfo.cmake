
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sip/auth.cpp" "src/sip/CMakeFiles/vids_sip.dir/auth.cpp.o" "gcc" "src/sip/CMakeFiles/vids_sip.dir/auth.cpp.o.d"
  "/root/repo/src/sip/message.cpp" "src/sip/CMakeFiles/vids_sip.dir/message.cpp.o" "gcc" "src/sip/CMakeFiles/vids_sip.dir/message.cpp.o.d"
  "/root/repo/src/sip/proxy.cpp" "src/sip/CMakeFiles/vids_sip.dir/proxy.cpp.o" "gcc" "src/sip/CMakeFiles/vids_sip.dir/proxy.cpp.o.d"
  "/root/repo/src/sip/transaction.cpp" "src/sip/CMakeFiles/vids_sip.dir/transaction.cpp.o" "gcc" "src/sip/CMakeFiles/vids_sip.dir/transaction.cpp.o.d"
  "/root/repo/src/sip/transport.cpp" "src/sip/CMakeFiles/vids_sip.dir/transport.cpp.o" "gcc" "src/sip/CMakeFiles/vids_sip.dir/transport.cpp.o.d"
  "/root/repo/src/sip/user_agent.cpp" "src/sip/CMakeFiles/vids_sip.dir/user_agent.cpp.o" "gcc" "src/sip/CMakeFiles/vids_sip.dir/user_agent.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vids_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sdp/CMakeFiles/vids_sdp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
