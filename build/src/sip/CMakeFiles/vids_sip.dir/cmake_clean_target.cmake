file(REMOVE_RECURSE
  "libvids_sip.a"
)
