# Empty dependencies file for vids_sip.
# This may be replaced when dependencies are built.
