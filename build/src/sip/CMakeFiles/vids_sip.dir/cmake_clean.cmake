file(REMOVE_RECURSE
  "CMakeFiles/vids_sip.dir/auth.cpp.o"
  "CMakeFiles/vids_sip.dir/auth.cpp.o.d"
  "CMakeFiles/vids_sip.dir/message.cpp.o"
  "CMakeFiles/vids_sip.dir/message.cpp.o.d"
  "CMakeFiles/vids_sip.dir/proxy.cpp.o"
  "CMakeFiles/vids_sip.dir/proxy.cpp.o.d"
  "CMakeFiles/vids_sip.dir/transaction.cpp.o"
  "CMakeFiles/vids_sip.dir/transaction.cpp.o.d"
  "CMakeFiles/vids_sip.dir/transport.cpp.o"
  "CMakeFiles/vids_sip.dir/transport.cpp.o.d"
  "CMakeFiles/vids_sip.dir/user_agent.cpp.o"
  "CMakeFiles/vids_sip.dir/user_agent.cpp.o.d"
  "libvids_sip.a"
  "libvids_sip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_sip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
