file(REMOVE_RECURSE
  "libvids_testbed.a"
)
