# Empty dependencies file for vids_testbed.
# This may be replaced when dependencies are built.
