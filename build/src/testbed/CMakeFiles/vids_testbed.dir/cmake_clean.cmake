file(REMOVE_RECURSE
  "CMakeFiles/vids_testbed.dir/testbed.cpp.o"
  "CMakeFiles/vids_testbed.dir/testbed.cpp.o.d"
  "libvids_testbed.a"
  "libvids_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
