file(REMOVE_RECURSE
  "libvids_sdp.a"
)
