file(REMOVE_RECURSE
  "CMakeFiles/vids_sdp.dir/sdp.cpp.o"
  "CMakeFiles/vids_sdp.dir/sdp.cpp.o.d"
  "libvids_sdp.a"
  "libvids_sdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_sdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
