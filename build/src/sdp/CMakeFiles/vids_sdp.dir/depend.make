# Empty dependencies file for vids_sdp.
# This may be replaced when dependencies are built.
