# Empty dependencies file for vids_common.
# This may be replaced when dependencies are built.
