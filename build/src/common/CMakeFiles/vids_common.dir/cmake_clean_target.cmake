file(REMOVE_RECURSE
  "libvids_common.a"
)
