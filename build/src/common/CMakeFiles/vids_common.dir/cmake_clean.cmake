file(REMOVE_RECURSE
  "CMakeFiles/vids_common.dir/log.cpp.o"
  "CMakeFiles/vids_common.dir/log.cpp.o.d"
  "CMakeFiles/vids_common.dir/rng.cpp.o"
  "CMakeFiles/vids_common.dir/rng.cpp.o.d"
  "CMakeFiles/vids_common.dir/strings.cpp.o"
  "CMakeFiles/vids_common.dir/strings.cpp.o.d"
  "libvids_common.a"
  "libvids_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
