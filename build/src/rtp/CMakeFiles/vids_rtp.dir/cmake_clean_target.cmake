file(REMOVE_RECURSE
  "libvids_rtp.a"
)
