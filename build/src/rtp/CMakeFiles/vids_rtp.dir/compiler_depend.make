# Empty compiler generated dependencies file for vids_rtp.
# This may be replaced when dependencies are built.
