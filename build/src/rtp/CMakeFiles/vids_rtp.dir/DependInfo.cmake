
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rtp/codec.cpp" "src/rtp/CMakeFiles/vids_rtp.dir/codec.cpp.o" "gcc" "src/rtp/CMakeFiles/vids_rtp.dir/codec.cpp.o.d"
  "/root/repo/src/rtp/packet.cpp" "src/rtp/CMakeFiles/vids_rtp.dir/packet.cpp.o" "gcc" "src/rtp/CMakeFiles/vids_rtp.dir/packet.cpp.o.d"
  "/root/repo/src/rtp/rtcp.cpp" "src/rtp/CMakeFiles/vids_rtp.dir/rtcp.cpp.o" "gcc" "src/rtp/CMakeFiles/vids_rtp.dir/rtcp.cpp.o.d"
  "/root/repo/src/rtp/session.cpp" "src/rtp/CMakeFiles/vids_rtp.dir/session.cpp.o" "gcc" "src/rtp/CMakeFiles/vids_rtp.dir/session.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vids_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
