file(REMOVE_RECURSE
  "CMakeFiles/vids_rtp.dir/codec.cpp.o"
  "CMakeFiles/vids_rtp.dir/codec.cpp.o.d"
  "CMakeFiles/vids_rtp.dir/packet.cpp.o"
  "CMakeFiles/vids_rtp.dir/packet.cpp.o.d"
  "CMakeFiles/vids_rtp.dir/rtcp.cpp.o"
  "CMakeFiles/vids_rtp.dir/rtcp.cpp.o.d"
  "CMakeFiles/vids_rtp.dir/session.cpp.o"
  "CMakeFiles/vids_rtp.dir/session.cpp.o.d"
  "libvids_rtp.a"
  "libvids_rtp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_rtp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
