
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/address.cpp" "src/net/CMakeFiles/vids_net.dir/address.cpp.o" "gcc" "src/net/CMakeFiles/vids_net.dir/address.cpp.o.d"
  "/root/repo/src/net/forwarder.cpp" "src/net/CMakeFiles/vids_net.dir/forwarder.cpp.o" "gcc" "src/net/CMakeFiles/vids_net.dir/forwarder.cpp.o.d"
  "/root/repo/src/net/host.cpp" "src/net/CMakeFiles/vids_net.dir/host.cpp.o" "gcc" "src/net/CMakeFiles/vids_net.dir/host.cpp.o.d"
  "/root/repo/src/net/inline_tap.cpp" "src/net/CMakeFiles/vids_net.dir/inline_tap.cpp.o" "gcc" "src/net/CMakeFiles/vids_net.dir/inline_tap.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/net/CMakeFiles/vids_net.dir/link.cpp.o" "gcc" "src/net/CMakeFiles/vids_net.dir/link.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vids_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
