file(REMOVE_RECURSE
  "libvids_net.a"
)
