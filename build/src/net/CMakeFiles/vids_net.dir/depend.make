# Empty dependencies file for vids_net.
# This may be replaced when dependencies are built.
