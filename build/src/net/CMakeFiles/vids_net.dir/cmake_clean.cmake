file(REMOVE_RECURSE
  "CMakeFiles/vids_net.dir/address.cpp.o"
  "CMakeFiles/vids_net.dir/address.cpp.o.d"
  "CMakeFiles/vids_net.dir/forwarder.cpp.o"
  "CMakeFiles/vids_net.dir/forwarder.cpp.o.d"
  "CMakeFiles/vids_net.dir/host.cpp.o"
  "CMakeFiles/vids_net.dir/host.cpp.o.d"
  "CMakeFiles/vids_net.dir/inline_tap.cpp.o"
  "CMakeFiles/vids_net.dir/inline_tap.cpp.o.d"
  "CMakeFiles/vids_net.dir/link.cpp.o"
  "CMakeFiles/vids_net.dir/link.cpp.o.d"
  "libvids_net.a"
  "libvids_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
