
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vids/alert.cpp" "src/vids/CMakeFiles/vids_ids.dir/alert.cpp.o" "gcc" "src/vids/CMakeFiles/vids_ids.dir/alert.cpp.o.d"
  "/root/repo/src/vids/classifier.cpp" "src/vids/CMakeFiles/vids_ids.dir/classifier.cpp.o" "gcc" "src/vids/CMakeFiles/vids_ids.dir/classifier.cpp.o.d"
  "/root/repo/src/vids/fact_base.cpp" "src/vids/CMakeFiles/vids_ids.dir/fact_base.cpp.o" "gcc" "src/vids/CMakeFiles/vids_ids.dir/fact_base.cpp.o.d"
  "/root/repo/src/vids/ids.cpp" "src/vids/CMakeFiles/vids_ids.dir/ids.cpp.o" "gcc" "src/vids/CMakeFiles/vids_ids.dir/ids.cpp.o.d"
  "/root/repo/src/vids/patterns.cpp" "src/vids/CMakeFiles/vids_ids.dir/patterns.cpp.o" "gcc" "src/vids/CMakeFiles/vids_ids.dir/patterns.cpp.o.d"
  "/root/repo/src/vids/spec_machines.cpp" "src/vids/CMakeFiles/vids_ids.dir/spec_machines.cpp.o" "gcc" "src/vids/CMakeFiles/vids_ids.dir/spec_machines.cpp.o.d"
  "/root/repo/src/vids/trace.cpp" "src/vids/CMakeFiles/vids_ids.dir/trace.cpp.o" "gcc" "src/vids/CMakeFiles/vids_ids.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vids_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/vids_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sdp/CMakeFiles/vids_sdp.dir/DependInfo.cmake"
  "/root/repo/build/src/sip/CMakeFiles/vids_sip.dir/DependInfo.cmake"
  "/root/repo/build/src/rtp/CMakeFiles/vids_rtp.dir/DependInfo.cmake"
  "/root/repo/build/src/efsm/CMakeFiles/vids_efsm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
