file(REMOVE_RECURSE
  "libvids_ids.a"
)
