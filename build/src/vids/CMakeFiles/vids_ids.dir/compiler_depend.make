# Empty compiler generated dependencies file for vids_ids.
# This may be replaced when dependencies are built.
