file(REMOVE_RECURSE
  "CMakeFiles/vids_ids.dir/alert.cpp.o"
  "CMakeFiles/vids_ids.dir/alert.cpp.o.d"
  "CMakeFiles/vids_ids.dir/classifier.cpp.o"
  "CMakeFiles/vids_ids.dir/classifier.cpp.o.d"
  "CMakeFiles/vids_ids.dir/fact_base.cpp.o"
  "CMakeFiles/vids_ids.dir/fact_base.cpp.o.d"
  "CMakeFiles/vids_ids.dir/ids.cpp.o"
  "CMakeFiles/vids_ids.dir/ids.cpp.o.d"
  "CMakeFiles/vids_ids.dir/patterns.cpp.o"
  "CMakeFiles/vids_ids.dir/patterns.cpp.o.d"
  "CMakeFiles/vids_ids.dir/spec_machines.cpp.o"
  "CMakeFiles/vids_ids.dir/spec_machines.cpp.o.d"
  "CMakeFiles/vids_ids.dir/trace.cpp.o"
  "CMakeFiles/vids_ids.dir/trace.cpp.o.d"
  "libvids_ids.a"
  "libvids_ids.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_ids.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
