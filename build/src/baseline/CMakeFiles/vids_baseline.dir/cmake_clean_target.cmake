file(REMOVE_RECURSE
  "libvids_baseline.a"
)
