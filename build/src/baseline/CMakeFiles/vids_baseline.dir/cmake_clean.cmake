file(REMOVE_RECURSE
  "CMakeFiles/vids_baseline.dir/rate_ids.cpp.o"
  "CMakeFiles/vids_baseline.dir/rate_ids.cpp.o.d"
  "CMakeFiles/vids_baseline.dir/rule_ids.cpp.o"
  "CMakeFiles/vids_baseline.dir/rule_ids.cpp.o.d"
  "CMakeFiles/vids_baseline.dir/signature_ids.cpp.o"
  "CMakeFiles/vids_baseline.dir/signature_ids.cpp.o.d"
  "libvids_baseline.a"
  "libvids_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
