# Empty dependencies file for vids_baseline.
# This may be replaced when dependencies are built.
