file(REMOVE_RECURSE
  "CMakeFiles/vids_efsm.dir/engine.cpp.o"
  "CMakeFiles/vids_efsm.dir/engine.cpp.o.d"
  "CMakeFiles/vids_efsm.dir/machine.cpp.o"
  "CMakeFiles/vids_efsm.dir/machine.cpp.o.d"
  "CMakeFiles/vids_efsm.dir/value.cpp.o"
  "CMakeFiles/vids_efsm.dir/value.cpp.o.d"
  "libvids_efsm.a"
  "libvids_efsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vids_efsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
