# Empty dependencies file for vids_efsm.
# This may be replaced when dependencies are built.
