
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/efsm/engine.cpp" "src/efsm/CMakeFiles/vids_efsm.dir/engine.cpp.o" "gcc" "src/efsm/CMakeFiles/vids_efsm.dir/engine.cpp.o.d"
  "/root/repo/src/efsm/machine.cpp" "src/efsm/CMakeFiles/vids_efsm.dir/machine.cpp.o" "gcc" "src/efsm/CMakeFiles/vids_efsm.dir/machine.cpp.o.d"
  "/root/repo/src/efsm/value.cpp" "src/efsm/CMakeFiles/vids_efsm.dir/value.cpp.o" "gcc" "src/efsm/CMakeFiles/vids_efsm.dir/value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vids_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vids_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
