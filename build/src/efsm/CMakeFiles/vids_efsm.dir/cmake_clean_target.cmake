file(REMOVE_RECURSE
  "libvids_efsm.a"
)
