// TAB-MEM: per-call memory cost of the vIDS (paper §7.3).
//
// Paper claim: one instance of each protocol machine per call; SIP state
// ≈ 450 bytes, RTP state ≈ 40 bytes; growth is linear in concurrent calls
// and low enough to monitor thousands of calls; machines are deleted when
// a call reaches its final state.
#include <cstdio>

#include "bench_util.h"
#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "vids/ids.h"
#include "vids/spec_machines.h"

using namespace vids;

namespace {

const net::Endpoint kProxyA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kProxyB{net::IpAddress(10, 2, 0, 1), 5060};

sip::Message MakeInvite(const std::string& call_id, uint16_t caller_port) {
  auto invite = sip::Message::MakeRequest(
      sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com"));
  sip::Via via;
  via.sent_by = kProxyA;
  via.branch = "z9hG4bK" + call_id;
  invite.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("tag-" + call_id);
  invite.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
  invite.SetTo(to);
  invite.SetCallId(call_id);
  invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
  invite.SetBody(
      sdp::MakeAudioOffer(net::Endpoint{net::IpAddress(10, 1, 0, 10),
                                        caller_port})
          .Serialize(),
      "application/sdp");
  return invite;
}

net::Datagram Wrap(const sip::Message& message) {
  net::Datagram dgram;
  dgram.src = kProxyA;
  dgram.dst = kProxyB;
  dgram.payload = message.Serialize();
  dgram.kind = net::PayloadKind::kSip;
  return dgram;
}

// Feeds INVITE + 180 + 200 for one call: an established, monitored call.
void OpenCall(ids::Vids& vids, int index) {
  const std::string call_id = "call-" + std::to_string(index) + "@bench";
  const auto invite =
      MakeInvite(call_id, static_cast<uint16_t>(20000 + (index % 20000) * 2));
  vids.Inspect(Wrap(invite), true);
  for (int status : {180, 200}) {
    auto response = sip::Message::MakeResponse(status);
    for (const auto via : invite.Headers("Via")) {
      response.AddHeader("Via", via);
    }
    response.SetFrom(*invite.From());
    auto to = *invite.To();
    to.SetTag("tag-callee");
    response.SetTo(to);
    response.SetCallId(call_id);
    response.SetCseq(*invite.Cseq());
    if (status == 200) {
      response.SetBody(
          sdp::MakeAudioOffer(
              net::Endpoint{net::IpAddress(10, 2, 0, 10),
                            static_cast<uint16_t>(30000 + (index % 17000) * 2)})
              .Serialize(),
          "application/sdp");
    }
    auto dgram = Wrap(response);
    std::swap(dgram.src, dgram.dst);
    vids.Inspect(dgram, false);
  }
}

}  // namespace

int main() {
  bench::PrintHeader(
      "TAB-MEM", "per-call memory cost and linear growth",
      "~450 B SIP + ~40 B RTP state vars per call; linear growth; "
      "thousands of calls affordable; deleted at final state");

  // --- State-variable payload of one monitored call (the paper's unit) ---
  {
    sim::Scheduler scheduler;
    ids::Vids vids(scheduler);
    OpenCall(vids, 0);
    auto* group = vids.fact_base().FindCall("call-0@bench");
    if (group != nullptr) {
      size_t sip_vars = 0, rtp_vars = 0, sip_total = 0, rtp_total = 0;
      for (const auto& machine : group->machines()) {
        if (machine->name() == ids::kSipMachineName) {
          sip_vars = machine->local().MemoryBytes();
          sip_total = machine->MemoryBytes();
        }
        if (machine->name() == ids::kRtpMachineName) {
          rtp_vars = machine->local().MemoryBytes();
          rtp_total = machine->MemoryBytes();
        }
      }
      std::printf("one established call:\n");
      std::printf("  SIP machine: %5zu B state variables (%zu B with "
                  "instance overhead; paper: ~450 B)\n",
                  sip_vars, sip_total);
      std::printf("  RTP machine: %5zu B state variables (%zu B with "
                  "instance overhead; paper: ~40 B)\n",
                  rtp_vars, rtp_total);
      std::printf("  whole group (incl. globals + per-call patterns): %zu B\n",
                  group->MemoryBytes());
    }
  }

  // --- Linear growth with concurrent calls ---
  bench::PrintRule();
  std::printf("%-18s %-16s %-12s\n", "concurrent calls", "fact base (KB)",
              "bytes/call");
  size_t bytes_at_1000 = 0;
  for (int calls : {100, 500, 1000, 2000, 5000}) {
    sim::Scheduler scheduler;
    ids::Vids vids(scheduler);
    for (int i = 0; i < calls; ++i) OpenCall(vids, i);
    const size_t bytes = vids.fact_base().MemoryBytes();
    if (calls == 1000) bytes_at_1000 = bytes;
    std::printf("%-18d %-16.1f %-12zu\n", calls,
                static_cast<double>(bytes) / 1024.0,
                bytes / static_cast<size_t>(calls));
  }
  std::printf("=> 10,000 calls would take ~%.1f MB: easily afforded "
              "(paper's claim)\n",
              static_cast<double>(bytes_at_1000) * 10.0 / (1024.0 * 1024.0));

  // --- Deletion at final state ---
  bench::PrintRule();
  {
    sim::Scheduler scheduler;
    ids::Vids vids(scheduler);
    for (int i = 0; i < 200; ++i) OpenCall(vids, i);
    const size_t before = vids.fact_base().MemoryBytes();
    // Tear each call down: ACK + BYE + 200.
    for (int i = 0; i < 200; ++i) {
      const std::string call_id = "call-" + std::to_string(i) + "@bench";
      auto bye = sip::Message::MakeRequest(
          sip::Method::kBye, *sip::SipUri::Parse("sip:bob@10.2.0.10"));
      sip::Via via;
      via.sent_by = kProxyA;
      via.branch = "z9hG4bKbye" + std::to_string(i);
      bye.PushVia(via);
      bye.SetCallId(call_id);
      bye.SetCseq(sip::CSeq{2, sip::Method::kBye});
      sip::NameAddr from;
      from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
      from.SetTag("t");
      bye.SetFrom(from);
      auto to = from;
      to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
      bye.SetTo(to);
      vids.Inspect(Wrap(bye), true);
      auto ok = sip::Message::MakeResponse(200);
      ok.AddHeader("Via", via.ToString());
      ok.SetCallId(call_id);
      ok.SetCseq(sip::CSeq{2, sip::Method::kBye});
      ok.SetFrom(from);
      ok.SetTo(to);
      auto dgram = Wrap(ok);
      std::swap(dgram.src, dgram.dst);
      vids.Inspect(dgram, false);
    }
    // Run out the RTP close linger, then sweep (triggered by one packet).
    scheduler.RunUntil(scheduler.Now() + ids::DetectionConfig{}.rtp_close_linger +
                       sim::Duration::Seconds(5));
    OpenCall(vids, 9999);
    const size_t after = vids.fact_base().MemoryBytes();
    std::printf("200 calls open: %zu KB -> all closed + swept: %zu KB\n",
                before / 1024, after / 1024);
    std::printf("state deleted at final call state -> %s\n",
                after < before / 4 ? "OK" : "MISMATCH");
  }
  return 0;
}
