#!/usr/bin/env bash
# Runs the tracked hot-path microbenchmarks and records the numbers in
# BENCH_micro.json under a run label, so before/after comparisons are part
# of the repo instead of someone's scrollback.
#
# Usage: bench/run_bench.sh [label] [build-dir]
#   label      run label in BENCH_micro.json (default: dev)
#   build-dir  CMake build directory, created Release if absent
#              (default: build-bench, kept separate from the test build)
set -euo pipefail

LABEL="${1:-dev}"
BUILD_DIR="${2:-build-bench}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
FILTER='BM_EfsmTransition|BM_ClassifySip|BM_ClassifyRtp|BM_VidsInspectRtpInSession|BM_VidsInspectSip'
RAW_JSON="$(mktemp /tmp/micro_core.XXXXXX.json)"
trap 'rm -f "$RAW_JSON"' EXIT

cmake -S "$ROOT" -B "$ROOT/$BUILD_DIR" -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$ROOT/$BUILD_DIR" --target micro_core -j >/dev/null

# NOTE: this benchmark version takes min_time as a bare double (seconds).
"$ROOT/$BUILD_DIR/bench/micro_core" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time=0.5 \
  --benchmark_format=json >"$RAW_JSON"

# BM_VidsInspectSip admits a fresh call per packet and is expected to
# allocate (same whitelist CI's screen step uses); everything else must
# report 0 allocs/iter or the recording run flags it.
python3 "$ROOT/bench/report_bench.py" "$ROOT/BENCH_micro.json" "$LABEL" \
  "$RAW_JSON" --allow-allocs BM_VidsInspectSip
