// FIG-10: impact of the inline vIDS on RTP stream QoS — end-to-end delay
// and average delay variation (jitter), with and without vIDS (Figure 10).
//
// Paper claim: vIDS adds ~1.5 ms to RTP delay and raises delay variation
// by ~2.2e-5 s — both imperceptible against the 150 ms latency budget.
#include <cstdio>

#include "bench_util.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

struct Arm {
  std::vector<double> delays_ms;
  std::vector<double> jitters_s;
  std::vector<rtp::QosSample> series;  // time series from network-B phones
};

Arm RunArm(bool vids_enabled) {
  testbed::TestbedConfig config;
  config.seed = 10;
  config.uas_per_network = 10;
  config.vids_enabled = vids_enabled;
  config.qos_sample_every = 25;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  testbed::WorkloadConfig workload;  // §7.1-like sporadic call load
  workload.mean_intercall = sim::Duration::Seconds(150);
  workload.mean_duration = sim::Duration::Seconds(60);
  bed.StartWorkload(workload);
  bed.RunFor(sim::Duration::Seconds(20 * 60));

  Arm arm;
  for (const auto& ua : bed.uas_b()) {
    for (const auto& sample : ua->AllQosSamples()) {
      arm.series.push_back(sample);
      arm.delays_ms.push_back(sample.delay_seconds * 1000.0);
      arm.jitters_s.push_back(sample.jitter_seconds);
    }
  }
  return arm;
}

}  // namespace

int main() {
  bench::PrintHeader("FIG-10", "impact of vIDS on RTP delay and jitter",
                     "vIDS adds ~1.5 ms RTP delay and ~2.2e-5 s delay "
                     "variation; both imperceptible");

  const Arm with_vids = RunArm(true);
  const Arm without = RunArm(false);

  // Time series excerpt (one row per minute, first sample in that minute),
  // mirroring the x-axis of the figure.
  std::printf("%-10s %-22s %-22s\n", "", "with vIDS", "without vIDS");
  std::printf("%-10s %-11s %-11s %-11s %-11s\n", "t (min)", "delay ms",
              "jitter ms", "delay ms", "jitter ms");
  bench::PrintRule();
  for (int minute = 1; minute <= 20; minute += 2) {
    auto pick = [&](const Arm& arm) -> const rtp::QosSample* {
      for (const auto& sample : arm.series) {
        if (sample.when.ToSeconds() >= minute * 60.0) return &sample;
      }
      return nullptr;
    };
    const auto* a = pick(with_vids);
    const auto* b = pick(without);
    if (a == nullptr || b == nullptr) continue;
    std::printf("%-10d %-11.2f %-11.4f %-11.2f %-11.4f\n", minute,
                a->delay_seconds * 1000, a->jitter_seconds * 1000,
                b->delay_seconds * 1000, b->jitter_seconds * 1000);
  }

  const auto d_with = bench::Summarize(with_vids.delays_ms);
  const auto d_without = bench::Summarize(without.delays_ms);
  const auto j_with = bench::Summarize(with_vids.jitters_s);
  const auto j_without = bench::Summarize(without.jitters_s);
  bench::PrintRule();
  std::printf("RTP delay  (ms): with=%6.2f  without=%6.2f  delta=%+5.2f "
              "(paper: ~+1.5)\n",
              d_with.mean, d_without.mean, d_with.mean - d_without.mean);
  std::printf("RTP jitter (s):  with=%.6f  without=%.6f  delta=%+.6f "
              "(paper: ~+2.2e-5)\n",
              j_with.mean, j_without.mean, j_with.mean - j_without.mean);
  std::printf("one-way delay vs the 150 ms budget: p95=%.1f ms  max=%.1f ms\n",
              d_with.p95, d_with.max);
  const double delay_delta = d_with.mean - d_without.mean;
  std::printf("shape check: delay delta in (0, 5] ms and p95 < 150 ms -> %s\n",
              (delay_delta > 0.0 && delay_delta <= 5.0 && d_with.p95 < 150.0)
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
