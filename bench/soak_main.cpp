// SOAK: bounded state under sustained traffic (million-call soak/churn).
//
// Drives the load harness (src/load) against the vIDS: benign calls with
// Poisson arrivals and exponential holding times, interleaved attack
// bursts, late retransmissions and a mid-run arrival pause. Samples every
// tracked quantity at fixed simulated-time intervals and screens the
// series for unbounded growth. With --check the process exits nonzero if
// any quantity failed to plateau — the CI gate against IDS-side leaks.
//
// Usage: soak [--calls=N] [--rate=CPS] [--seed=S] [--sample-every=SEC]
//             [--attack-every=N] [--pause=SEC] [--shards=N] [--producers=N]
//             [--trace=N] [--tap] [--duration=SEC] [--csv=FILE] [--check]
//             [--pcap=FILE] [--inside=CIDR] [--caller-aors=N]
//             [--spit=N] [--reg-crack=N] [--toll-fraud=N]
//
// --spit/--reg-crack/--toll-fraud=N interleave N behavioral-attack bursts
// (protocol-legal SPIT blasting, distributed registration cracking,
// low-and-slow toll-fraud fan-out — DESIGN.md §16) with the benign
// workload; only the behavior profiles can raise on them. --caller-aors=N
// spreads the benign stream over N caller identities (call-center shape),
// the false-positive-resistance configuration: per-caller rates stay far
// under every behavioral threshold.
//
// --shards=N drives the same workload through the sharded multi-worker
// engine (N worker threads behind SPSC rings) instead of the direct
// single-threaded Vids; the report then also prints wall-clock ingest
// throughput for the scaling table. --producers=N (sharded only) fans the
// same stream out over N ingest ports via the MpIngest dispatcher — the
// alert totals must not move, which is the soak-scale equivalence proof
// for the multi-producer path. --trace=N sets the pipeline span
// sampling period for sharded runs (1-in-N packets, 0 = off), so the
// soak's alert totals double as the proof that span sampling never
// changes detection behavior.
//
// --pcap=FILE replaces the generated workload entirely: the capture is
// replayed at recorded timestamps through the selected engine (direct or
// --shards=N) and the run reports decode stats, replay throughput and the
// alert total — real-wire ingress through the same code path as live
// deployment. --inside=CIDR sets the protected-perimeter subnet for
// direction inference (the checked-in corpus uses 10.2.0.0/16).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "capture/pcap.h"
#include "capture/replay.h"
#include "load/soak.h"
#include "obs/metrics.h"
#include "vids/sharded_ids.h"

namespace {

bool ParseFlag(const char* arg, const char* name, long long* out) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::atoll(arg + len + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace vids;

  load::SoakConfig config;
  config.total_calls = 500'000;
  bool check = false;
  bool tap = false;
  long long duration_s = 300;
  std::string csv_path;
  std::string pcap_path;
  capture::PcapReadOptions pcap_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    long long value = 0;
    if (std::strncmp(arg, "--pcap=", 7) == 0) {
      pcap_path = arg + 7;
    } else if (std::strncmp(arg, "--inside=", 9) == 0) {
      const auto subnet = net::Subnet::Parse(arg + 9);
      if (!subnet) {
        std::fprintf(stderr, "bad subnet: %s\n", arg + 9);
        return 2;
      }
      pcap_options.inside = *subnet;
    } else if (ParseFlag(arg, "--calls", &value)) {
      config.total_calls = static_cast<uint64_t>(value);
    } else if (ParseFlag(arg, "--rate", &value)) {
      config.calls_per_second = static_cast<double>(value);
    } else if (ParseFlag(arg, "--seed", &value)) {
      config.seed = static_cast<uint64_t>(value);
    } else if (ParseFlag(arg, "--sample-every", &value)) {
      config.sample_every = sim::Duration::Seconds(value);
    } else if (ParseFlag(arg, "--attack-every", &value)) {
      config.attack_every = static_cast<uint64_t>(value);
    } else if (ParseFlag(arg, "--pause", &value)) {
      config.pause = sim::Duration::Seconds(value);
    } else if (ParseFlag(arg, "--shards", &value)) {
      config.shards = static_cast<int>(value);
    } else if (ParseFlag(arg, "--producers", &value)) {
      config.producers = static_cast<int>(value);
    } else if (ParseFlag(arg, "--trace", &value)) {
      config.trace_sample_period = static_cast<uint32_t>(value);
    } else if (ParseFlag(arg, "--caller-aors", &value)) {
      config.caller_aors = static_cast<int>(value);
    } else if (ParseFlag(arg, "--spit", &value)) {
      config.spit_bursts = static_cast<int>(value);
    } else if (ParseFlag(arg, "--reg-crack", &value)) {
      config.reg_crack_bursts = static_cast<int>(value);
    } else if (ParseFlag(arg, "--toll-fraud", &value)) {
      config.toll_fraud_bursts = static_cast<int>(value);
    } else if (ParseFlag(arg, "--duration", &value)) {
      duration_s = value;
    } else if (std::strncmp(arg, "--csv=", 6) == 0) {
      csv_path = arg + 6;
    } else if (std::strcmp(arg, "--check") == 0) {
      check = true;
    } else if (std::strcmp(arg, "--tap") == 0) {
      tap = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  if (!pcap_path.empty()) {
    // Real-wire ingress: replay the capture through the selected engine.
    bench::PrintHeader(
        "SOAK --pcap", "capture replay through the engine",
        "a recorded wire capture replays at source timestamps through the "
        "same inspect path as live traffic");
    const auto source = capture::PcapFileSource::Open(pcap_path, pcap_options);
    const int64_t t0 = vids::obs::MonotonicNanos();
    capture::ReplayStats replay;
    size_t alerts = 0;
    if (config.shards > 0) {
      ids::ShardedConfig sharded;
      sharded.shards = config.shards;
      sharded.producers = std::max(1, config.producers);
      sharded.ring_capacity = config.ring_capacity;
      sharded.detection = config.detection;
      sharded.trace_sample_period = config.trace_sample_period;
      ids::ShardedIds engine(sharded);
      replay = capture::RunSource(*source, engine, config.producers,
                                  /*batch_size=*/64);
      engine.Stop();
      alerts = engine.alerts().size();
    } else {
      sim::Scheduler scheduler;
      ids::Vids vids(scheduler, config.detection);
      replay = capture::RunSource(*source, vids, scheduler);
      alerts = vids.alerts().size();
    }
    const int64_t wall_ns = vids::obs::MonotonicNanos() - t0;
    const auto& stats = source->stats();
    std::printf("pcap: %s\n", pcap_path.c_str());
    std::printf("records=%llu delivered=%llu skipped=%llu\n",
                static_cast<unsigned long long>(stats.records),
                static_cast<unsigned long long>(stats.delivered),
                static_cast<unsigned long long>(
                    stats.skipped_non_ip + stats.skipped_non_udp +
                    stats.skipped_fragment + stats.skipped_malformed));
    std::printf("replayed %llu packets in %.3fs (%.0f packets/s), "
                "alerts: %zu\n",
                static_cast<unsigned long long>(replay.packets),
                static_cast<double>(wall_ns) / 1e9,
                wall_ns > 0 ? static_cast<double>(replay.packets) * 1e9 /
                                  static_cast<double>(wall_ns)
                            : 0.0,
                alerts);
    if (!source->ok()) {
      std::fprintf(stderr, "capture fault: %s\n", source->error().c_str());
      return 1;
    }
    return 0;
  }

  bench::PrintHeader(
      "SOAK", "bounded state under sustained traffic",
      "state is deleted at final call state and idle state is reclaimed, "
      "so tracked state plateaus instead of growing with uptime");

  load::SoakReport report;
  if (tap) {
    std::printf("tap mode: testbed workload + toolkit attacks, %llds\n",
                duration_s);
    report = load::RunTapSoak(config, sim::Duration::Seconds(duration_s));
  } else {
    if (config.shards > 0) {
      std::printf("sharded mode (%d workers, %d producers): ", config.shards,
                  std::max(1, config.producers));
    } else {
      std::printf("direct mode: ");
    }
    std::printf("%llu calls at %.0f/s (attack burst every "
                "%llu calls, %.0fs mid-run pause)\n",
                static_cast<unsigned long long>(config.total_calls),
                config.calls_per_second,
                static_cast<unsigned long long>(config.attack_every),
                config.pause.ToSeconds());
    load::SoakDriver driver(config);
    report = driver.Run();
    if (const char* dump = std::getenv("SOAK_DUMP_ALERTS");
        dump != nullptr && driver.sharded() != nullptr) {
      if (std::FILE* f = std::fopen(dump, "w")) {
        for (const auto& a : driver.sharded()->alerts()) {
          std::fprintf(f, "%s\n", a.ToString().c_str());
        }
        std::fclose(f);
      }
    }
  }

  bench::PrintRule();
  std::fputs(report.Summary().c_str(), stdout);
  bench::PrintRule();
  std::printf("calls started: %llu, packets inspected: %llu, alerts: %llu\n",
              static_cast<unsigned long long>(report.calls_started),
              static_cast<unsigned long long>(report.packets_inspected),
              static_cast<unsigned long long>(report.alerts_total));
  if (report.wall_ns > 0) {
    std::printf("wall time: %.2fs, ingest throughput: %.0f packets/s\n",
                static_cast<double>(report.wall_ns) / 1e9,
                report.packets_per_second);
  }
  std::printf("verdict: %s\n",
              report.bounded ? "BOUNDED (all quantities plateaued)"
                             : "UNBOUNDED GROWTH DETECTED");

  if (!csv_path.empty()) {
    if (std::FILE* f = std::fopen(csv_path.c_str(), "w")) {
      std::fputs(report.Csv().c_str(), f);
      std::fclose(f);
      std::printf("samples written to %s\n", csv_path.c_str());
    } else {
      std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
      return 2;
    }
  }

  return (check && !report.bounded) ? 1 : 0;
}
