// TAB-CPU: CPU overhead of running the vIDS analysis (paper §7.3: +3.6%).
//
// Two complementary measurements:
//  1. Host CPU: the same 10-minute testbed traffic simulated with and
//     without the vIDS analysis stage; the process CPU-time increase is
//     the real cost of classification + EFSM tracking for that traffic.
//  2. Simulated vIDS-host utilization under the paper's cost model
//     (50 ms/SIP, 1 ms/RTP on 2006-era hardware): analysis CPU-seconds
//     per simulated second.
// Absolute percentages depend on the host; the paper's claim to preserve
// is the *shape*: analysis is a small fraction of the work of carrying the
// same traffic, and utilization stays far from saturation.
#include <sys/resource.h>

#include <cstdio>

#include "bench_util.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

double CpuSecondsNow() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_utime.tv_sec + usage.ru_stime.tv_sec) +
         static_cast<double>(usage.ru_utime.tv_usec + usage.ru_stime.tv_usec) /
             1e6;
}

struct ArmResult {
  double host_cpu_s = 0.0;
  uint64_t packets_seen = 0;
  double tap_cpu_utilization = 0.0;  // simulated analysis CPU / sim time
};

ArmResult RunArm(bool vids_enabled) {
  const double cpu_before = CpuSecondsNow();
  testbed::TestbedConfig config;
  config.seed = 1234;
  config.uas_per_network = 10;
  config.vids_enabled = vids_enabled;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));
  testbed::WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(100);
  workload.mean_duration = sim::Duration::Seconds(60);
  bed.StartWorkload(workload);
  const double sim_seconds = 600.0;
  bed.RunFor(sim::Duration::FromSeconds(sim_seconds));

  ArmResult result;
  result.host_cpu_s = CpuSecondsNow() - cpu_before;
  result.packets_seen = bed.tap().packets_seen();
  result.tap_cpu_utilization =
      bed.tap().cpu_time_used().ToSeconds() / sim_seconds;
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader("TAB-CPU", "CPU overhead of the vIDS analysis stage",
                     "running vIDS increases CPU cost by ~3.6%");

  // Warm-up pass so allocator/page-cache effects don't bias the first arm.
  RunArm(false);

  const ArmResult without = RunArm(false);
  const ArmResult with_vids = RunArm(true);

  std::printf("traffic: %llu packets crossed the monitoring point (10 sim-min)\n",
              static_cast<unsigned long long>(with_vids.packets_seen));
  bench::PrintRule();
  std::printf("host CPU, traffic simulated without analysis: %7.3f s\n",
              without.host_cpu_s);
  std::printf("host CPU, traffic simulated with analysis:    %7.3f s\n",
              with_vids.host_cpu_s);
  const double per_packet_us =
      (with_vids.host_cpu_s - without.host_cpu_s) /
      static_cast<double>(with_vids.packets_seen) * 1e6;
  std::printf("measured vIDS analysis cost: %.2f us per packet\n",
              per_packet_us);

  // The paper's 3.6%% is analysis CPU relative to everything else the vIDS
  // host does to carry the packet (kernel receive, forward, logging) —
  // roughly 50-100 us per packet on mid-2000s software-forwarding hosts.
  // The simulated baseline does none of that real per-packet work, so the
  // comparable ratio uses that reference cost, not the simulator's.
  constexpr double kReferenceForwardingUsPerPacket = 85.0;
  const double overhead_vs_forwarding =
      100.0 * per_packet_us / kReferenceForwardingUsPerPacket;
  std::printf("analysis relative to a %g us/packet forwarding path: "
              "%.1f %%  (paper: 3.6%%)\n",
              kReferenceForwardingUsPerPacket, overhead_vs_forwarding);
  bench::PrintRule();
  std::printf("simulated vIDS host (2006 cost model: 50 ms/SIP, 1 ms/RTP):\n");
  std::printf("  analysis utilization: %.1f %% of one CPU — far from "
              "saturation\n",
              100.0 * with_vids.tap_cpu_utilization);
  std::printf("shape check: analysis is single-digit %% of the per-packet "
              "forwarding work and utilization < 100%% -> %s\n",
              (overhead_vs_forwarding < 15.0 &&
               with_vids.tap_cpu_utilization < 1.0)
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
