// MICRO: google-benchmark microbenchmarks of the vIDS hot path — the
// supporting numbers behind the CPU/latency claims: parse costs, EFSM
// transition cost, per-call state construction, full Inspect() cost.
//
// The hot-path benchmarks also report allocs_per_iter via counting global
// operator new/delete — the "zero-allocation steady state" claim is a
// number here, not a comment.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "capture/replay.h"
#include "common/spsc_ring.h"
#include "obs/metrics.h"
#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "vids/ids.h"
#include "vids/sharded_ids.h"
#include "vids/spec_machines.h"

namespace {
std::atomic<uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

// GCC pairs allocation functions by body and flags free() on a pointer
// from the malloc-backed replacement operator new above — a false
// positive, as both sides of the pair are replaced together.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#pragma GCC diagnostic pop

using namespace vids;

namespace {

/// Attaches an allocations-per-iteration counter to `state`; construct
/// before the benchmark loop, destroy after it ends.
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state)
      : state_(state), start_(g_alloc_count.load()) {}
  ~AllocCounter() {
    state_.counters["allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(g_alloc_count.load() - start_) /
        static_cast<double>(state_.iterations() ? state_.iterations() : 1));
  }

 private:
  benchmark::State& state_;
  uint64_t start_;
};

const net::Endpoint kProxyA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kProxyB{net::IpAddress(10, 2, 0, 1), 5060};

sip::Message TypicalInvite(const std::string& call_id,
                           net::Endpoint offer_media) {
  auto invite = sip::Message::MakeRequest(
      sip::Method::kInvite, *sip::SipUri::Parse("sip:bob@b.example.com"));
  sip::Via via;
  via.sent_by = kProxyA;
  via.branch = "z9hG4bK" + call_id;
  invite.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
  from.SetTag("tag-alice");
  invite.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
  invite.SetTo(to);
  invite.SetCallId(call_id);
  invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
  invite.SetBody(sdp::MakeAudioOffer(offer_media).Serialize(),
                 "application/sdp");
  return invite;
}

sip::Message TypicalInvite(const std::string& call_id) {
  return TypicalInvite(call_id,
                       net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000});
}

void BM_SipParse(benchmark::State& state) {
  const std::string wire = TypicalInvite("bench").Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sip::Message::Parse(wire));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_SipParse);

void BM_SipSerialize(benchmark::State& state) {
  const auto invite = TypicalInvite("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(invite.Serialize());
  }
}
BENCHMARK(BM_SipSerialize);

void BM_SdpParse(benchmark::State& state) {
  const std::string body =
      sdp::MakeAudioOffer(net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000})
          .Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sdp::SessionDescription::Parse(body));
  }
}
BENCHMARK(BM_SdpParse);

void BM_RtpParse(benchmark::State& state) {
  rtp::RtpHeader header;
  header.ssrc = 0xABCD;
  header.sequence_number = 100;
  const std::string wire = header.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(rtp::RtpHeader::Parse(wire));
  }
}
BENCHMARK(BM_RtpParse);

void BM_ClassifySip(benchmark::State& state) {
  ids::PacketClassifier classifier;
  net::Datagram dgram;
  dgram.src = kProxyA;
  dgram.dst = kProxyB;
  dgram.payload = TypicalInvite("bench").Serialize();
  dgram.kind = net::PayloadKind::kSip;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Classify(dgram, true));
  }
}
BENCHMARK(BM_ClassifySip);

void BM_ClassifyRtp(benchmark::State& state) {
  ids::PacketClassifier classifier;
  rtp::RtpHeader header;
  net::Datagram dgram;
  dgram.src = net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000};
  dgram.dst = net::Endpoint{net::IpAddress(10, 2, 0, 10), 30000};
  dgram.payload = header.Serialize();
  dgram.kind = net::PayloadKind::kRtp;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classifier.Classify(dgram, true));
  }
}
BENCHMARK(BM_ClassifyRtp);

void BM_EfsmTransition(benchmark::State& state) {
  // One self-loop transition with a predicate and an action — the unit of
  // work per in-session RTP packet.
  ids::DetectionConfig config;
  const auto def = ids::BuildRtpSpecMachine(config);
  sim::Scheduler scheduler;
  efsm::MachineGroup group("bench", scheduler, nullptr);
  auto& machine = group.AddMachine(def, "RTP");
  group.global().Set("g_offer_ip", std::string("10.1.0.10"));
  group.global().Set("g_offer_port", int64_t{20000});
  group.global().Set("g_offer_pt", int64_t{18});
  efsm::Event offer;
  offer.name = std::string(ids::kSyncOffer);
  offer.args["ip"] = std::string("10.1.0.10");
  offer.args["port"] = int64_t{20000};
  offer.args["pt"] = int64_t{18};
  machine.Deliver(offer);

  efsm::Event rtp_event;
  rtp_event.name = std::string(ids::kRtpEvent);
  rtp_event.args["src_ip"] = std::string("10.2.0.10");
  rtp_event.args["src_port"] = int64_t{30000};
  rtp_event.args["dst_ip"] = std::string("10.1.0.10");
  rtp_event.args["dst_port"] = int64_t{20000};
  rtp_event.args["ssrc"] = int64_t{7};
  rtp_event.args["seq"] = int64_t{1};
  rtp_event.args["ts"] = int64_t{80};
  rtp_event.args["pt"] = int64_t{18};
  machine.Deliver(rtp_event);  // warmup: compile the dispatch tables

  AllocCounter allocs(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(machine.Deliver(rtp_event));
  }
}
BENCHMARK(BM_EfsmTransition);

void BM_VidsInspectSip(benchmark::State& state) {
  sim::Scheduler scheduler;
  // Short reclamation horizon + an advancing clock keep the live-call table
  // at a realistic steady state (~200 concurrent half-open calls). With a
  // frozen clock the sweep never fires and every iteration's fresh Call-ID
  // grows the call map without bound — the bench would end up measuring
  // hashtable rehash/collision cost, not Inspect().
  ids::DetectionConfig config;
  config.call_idle_timeout = sim::Duration::Seconds(2);
  config.tombstone_ttl = sim::Duration::Seconds(2);
  // Every iteration is a *benign* fresh call aimed at one proxy; with the
  // default threshold (5 INVITEs/s per destination) the whole run would sit
  // inside a permanent INVITE-flood alarm and the bench would measure
  // alert provenance formatting instead of inspection.
  config.invite_flood_threshold = 1 << 20;
  ids::Vids vids(scheduler, config);
  net::Datagram dgram;
  dgram.src = kProxyA;
  dgram.dst = kProxyB;
  dgram.kind = net::PayloadKind::kSip;
  // Pre-serialized INVITE; each iteration patches the ten Call-ID digits in
  // place (the Via branch embeds the Call-ID, so both spots get patched) —
  // the measured cost is Inspect(), not message construction.
  static constexpr char kMarker[] = "c0000000000";
  dgram.payload = TypicalInvite(kMarker).Serialize();
  std::vector<size_t> digit_offsets;
  for (size_t pos = dgram.payload.find(kMarker); pos != std::string::npos;
       pos = dgram.payload.find(kMarker, pos + 1)) {
    digit_offsets.push_back(pos + 1);
  }
  uint64_t i = 0;
  char digits[16];
  AllocCounter allocs(state);
  for (auto _ : state) {
    // Fresh Call-ID each iteration: measures the worst case (group
    // creation + machine instantiation + first transition), so a nonzero
    // allocs_per_iter is expected here — the group is born on this packet.
    std::snprintf(digits, sizeof(digits), "%010llu",
                  static_cast<unsigned long long>(i++));
    for (const size_t offset : digit_offsets) {
      std::memcpy(&dgram.payload[offset], digits, 10);
    }
    benchmark::DoNotOptimize(vids.Inspect(dgram, true));
    // 10 ms of simulated time per call lets periodic sweeps reclaim idle
    // groups; the sweep's amortized cost is part of what a deployment pays
    // per packet, so it belongs inside the timed region.
    scheduler.RunUntil(scheduler.Now() + sim::Duration::Millis(10));
  }
}
BENCHMARK(BM_VidsInspectSip);

void BM_VidsInspectSipInDialog(benchmark::State& state) {
  sim::Scheduler scheduler;
  ids::Vids vids(scheduler);
  const std::string call_id = "dlg-bench";

  // Establish the dialog: INVITE / 200 / ACK.
  const auto invite = TypicalInvite(call_id);
  net::Datagram d_invite;
  d_invite.src = kProxyA;
  d_invite.dst = kProxyB;
  d_invite.kind = net::PayloadKind::kSip;
  d_invite.payload = invite.Serialize();
  vids.Inspect(d_invite, true);

  const auto make_ok = [](const sip::Message& request) {
    auto response = sip::Message::MakeResponse(200);
    for (const auto via : request.Headers("Via")) {
      response.AddHeader("Via", via);
    }
    response.SetFrom(*request.From());
    auto to = *request.To();
    to.SetTag("tag-bob");
    response.SetTo(to);
    response.SetCallId(std::string(*request.CallId()));
    response.SetCseq(*request.Cseq());
    response.SetBody(
        sdp::MakeAudioOffer(net::Endpoint{net::IpAddress(10, 2, 0, 10), 30000})
            .Serialize(),
        "application/sdp");
    return response;
  };
  const auto make_ack = [&call_id](uint32_t cseq) {
    auto ack = sip::Message::MakeRequest(
        sip::Method::kAck, *sip::SipUri::Parse("sip:bob@b.example.com"));
    sip::Via via;
    via.sent_by = kProxyA;
    via.branch = "z9hG4bKack" + call_id;
    ack.PushVia(via);
    sip::NameAddr from;
    from.uri = *sip::SipUri::Parse("sip:alice@a.example.com");
    from.SetTag("tag-alice");
    ack.SetFrom(from);
    sip::NameAddr to;
    to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
    to.SetTag("tag-bob");
    ack.SetTo(to);
    ack.SetCallId(call_id);
    ack.SetCseq(sip::CSeq{cseq, sip::Method::kAck});
    return ack;
  };

  net::Datagram d_ok;
  d_ok.src = kProxyB;
  d_ok.dst = kProxyA;
  d_ok.kind = net::PayloadKind::kSip;
  d_ok.payload = make_ok(invite).Serialize();
  vids.Inspect(d_ok, false);

  net::Datagram d_ack = d_invite;
  d_ack.payload = make_ack(1).Serialize();
  vids.Inspect(d_ack, true);

  // Steady-state cycle: re-INVITE (CSeq 2, both tags, unchanged SDP offer),
  // 200, ACK — all pre-serialized; the loop does no message construction.
  auto reinvite = TypicalInvite(call_id);
  auto to = *reinvite.To();
  to.SetTag("tag-bob");
  reinvite.SetTo(to);
  reinvite.SetCseq(sip::CSeq{2, sip::Method::kInvite});
  d_invite.payload = reinvite.Serialize();
  d_ok.payload = make_ok(reinvite).Serialize();
  d_ack.payload = make_ack(2).Serialize();

  // Warmup: settle map/string capacities, cross the INVITE-flood threshold
  // so its machine parks in the deduplicated attack self-loop, build every
  // lazily-compiled dispatch table.
  for (int i = 0; i < 600; ++i) {
    vids.Inspect(d_invite, true);
    vids.Inspect(d_ok, false);
    vids.Inspect(d_ack, true);
  }

  {
    // Scoped so the counter snapshot closes before SetItemsProcessed below
    // touches the (allocating) counters map.
    AllocCounter allocs(state);
    for (auto _ : state) {
      benchmark::DoNotOptimize(vids.Inspect(d_invite, true));
      benchmark::DoNotOptimize(vids.Inspect(d_ok, false));
      benchmark::DoNotOptimize(vids.Inspect(d_ack, true));
    }
  }
  // Three packets per iteration; report per-packet throughput too.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 3);
}
BENCHMARK(BM_VidsInspectSipInDialog);

void BM_VidsInspectSipBehavior(benchmark::State& state) {
  // Steady-state cost of Inspect() WITH the behavioral layer in the loop:
  // every iteration is an initial INVITE carrying a User-Agent header, so
  // it walks the whole FeedBehavior path — From-AOR profile probe, rate
  // window touch, destination fan-out and UA distinct-ring touches,
  // open-call slot refresh, scoring. Time is frozen and the Call-ID fixed:
  // the caller's profile blew past alert_score during warmup (one alert,
  // emitted before the counter arms), so the timed region exercises the
  // worst hot case — a fully saturated profile re-scored per packet and
  // suppressed by the cooldown. The gate: allocs_per_iter must be 0; the
  // behavioral layer adds no allocation to the steady-state inspect path.
  sim::Scheduler scheduler;
  ids::DetectionConfig config;
  // Benign fixed-destination INVITEs would otherwise park the run inside a
  // permanent INVITE-flood alarm (see BM_VidsInspectSip).
  config.invite_flood_threshold = 1 << 20;
  ids::Vids vids(scheduler, config);
  auto invite = TypicalInvite("behavior-bench");
  invite.SetHeader("User-Agent", "bench-softphone/1.0");
  net::Datagram dgram;
  dgram.src = kProxyA;
  dgram.dst = kProxyB;
  dgram.kind = net::PayloadKind::kSip;
  dgram.payload = invite.Serialize();

  // Warmup: group + profile creation, the one behavioral alert (rate far
  // over threshold at frozen time), every capacity settled.
  for (int i = 0; i < 600; ++i) {
    vids.Inspect(dgram, true);
  }
  if (vids.CountAlerts(ids::AlertKind::kBehavior) != 1) {
    state.SkipWithError("behavioral warmup alert missing");
    return;
  }

  {
    AllocCounter allocs(state);
    for (auto _ : state) {
      benchmark::DoNotOptimize(vids.Inspect(dgram, true));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["cooldown_suppressed"] =
      static_cast<double>(vids.behavior().cooldown_suppressed());
}
BENCHMARK(BM_VidsInspectSipBehavior);

void BM_VidsInspectRtpInSession(benchmark::State& state) {
  sim::Scheduler scheduler;
  ids::Vids vids(scheduler);
  net::Datagram invite;
  invite.src = kProxyA;
  invite.dst = kProxyB;
  invite.kind = net::PayloadKind::kSip;
  invite.payload = TypicalInvite("media-bench").Serialize();
  vids.Inspect(invite, true);

  rtp::RtpHeader header;
  header.ssrc = 7;
  net::Datagram dgram;
  dgram.src = net::Endpoint{net::IpAddress(10, 2, 0, 10), 30000};
  dgram.dst = net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000};
  dgram.kind = net::PayloadKind::kRtp;
  dgram.payload = header.Serialize();
  // Patch sequence/timestamp bytes in place (RFC 3550 big-endian offsets):
  // the measured cost is the IDS, not datagram construction.
  uint16_t seq = 0;
  uint32_t ts = 0;
  const auto patch = [&dgram](uint16_t s, uint32_t t) {
    dgram.payload[2] = static_cast<char>(s >> 8);
    dgram.payload[3] = static_cast<char>(s & 0xFF);
    dgram.payload[4] = static_cast<char>(t >> 24);
    dgram.payload[5] = static_cast<char>((t >> 16) & 0xFF);
    dgram.payload[6] = static_cast<char>((t >> 8) & 0xFF);
    dgram.payload[7] = static_cast<char>(t & 0xFF);
  };
  // Warmup to steady state: container capacities settled, the RTP-flood
  // machine parked in its deduplicated attack self-loop.
  for (int i = 0; i < 600; ++i) {
    patch(++seq, ts += 80);
    vids.Inspect(dgram, true);
  }

  AllocCounter allocs(state);
  for (auto _ : state) {
    patch(++seq, ts += 80);
    benchmark::DoNotOptimize(vids.Inspect(dgram, true));
  }
}
BENCHMARK(BM_VidsInspectRtpInSession);

void RunShardedIngestBench(benchmark::State& state, ids::ShardedConfig config,
                           bool count_allocs = false) {
  // End-to-end pipeline throughput of the sharded engine: router + SPSC
  // handoff + N workers inspecting in parallel. Steady-state in-session RTP
  // across pre-opened calls whose media endpoints were negotiated over SIP,
  // so packets take the owner-routed path. Wall-clock (UseRealTime) because
  // the work happens on worker threads; compare items_per_second across the
  // shard counts — and against the `cores` counter, since a 1-core host
  // serializes the workers and cannot show scaling.
  const int shards = static_cast<int>(state.range(0));
  config.shards = shards;
  config.ring_capacity = 4096;
  // Benign steady-state media at frozen simulated time would otherwise sit
  // in a permanent RTP-flood window; park those machines during warmup and
  // dedup keeps them quiet (same approach as BM_VidsInspectRtpInSession).
  ids::ShardedIds engine(config);

  constexpr int kCalls = 16;
  const sim::Time t0 = sim::Time::FromNanos(1);
  std::vector<net::Datagram> media;
  for (int i = 0; i < kCalls; ++i) {
    const net::Endpoint offer{net::IpAddress(10, 1, 0, 10),
                              static_cast<uint16_t>(20000 + 2 * i)};
    net::Datagram invite;
    invite.src = kProxyA;
    invite.dst = kProxyB;
    invite.kind = net::PayloadKind::kSip;
    invite.payload =
        TypicalInvite("shard-bench-" + std::to_string(i), offer).Serialize();
    engine.Ingest(invite, true, t0);

    rtp::RtpHeader header;
    header.ssrc = 0x5A000000u + static_cast<uint32_t>(i);
    net::Datagram dgram;
    dgram.src = net::Endpoint{net::IpAddress(10, 2, 0, 10),
                              static_cast<uint16_t>(30000 + 2 * i)};
    dgram.dst = offer;
    dgram.kind = net::PayloadKind::kRtp;
    dgram.payload = header.Serialize();
    media.push_back(std::move(dgram));
  }

  std::vector<uint16_t> seq(kCalls, 0);
  std::vector<uint32_t> ts(kCalls, 0);
  const auto patch = [](net::Datagram& dgram, uint16_t s, uint32_t t) {
    dgram.payload[2] = static_cast<char>(s >> 8);
    dgram.payload[3] = static_cast<char>(s & 0xFF);
    dgram.payload[4] = static_cast<char>(t >> 24);
    dgram.payload[5] = static_cast<char>((t >> 16) & 0xFF);
    dgram.payload[6] = static_cast<char>((t >> 8) & 0xFF);
    dgram.payload[7] = static_cast<char>(t & 0xFF);
  };
  for (int k = 0; k < 300; ++k) {  // past the flood threshold on every call
    for (int i = 0; i < kCalls; ++i) {
      patch(media[static_cast<size_t>(i)], ++seq[static_cast<size_t>(i)],
            ts[static_cast<size_t>(i)] += 80);
      engine.Ingest(media[static_cast<size_t>(i)], true, t0);
    }
  }
  engine.Flush(t0);  // warmup fully absorbed before the timed region

  size_t next = 0;
  {
    // The counter covers every thread: worker-side allocations during the
    // timed window land in allocs_per_iter too, which is the point — the
    // whole pipeline must be allocation-free in steady state.
    std::optional<AllocCounter> allocs;
    if (count_allocs) allocs.emplace(state);
    for (auto _ : state) {
      const size_t i = next;
      next = (next + 1) % kCalls;
      patch(media[i], ++seq[i], ts[i] += 80);
      engine.Ingest(media[i], true, t0);
    }
  }
  // Ring backpressure ties the timed ingest rate to worker throughput to
  // within one ring of slack — negligible over the iteration counts the
  // harness picks. The final drain itself is outside the timed region.
  engine.Flush(t0);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["shards"] = shards;
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["ingest_stalls"] =
      static_cast<double>(engine.ingest_stalls());
}

void BM_ShardedIngest(benchmark::State& state) {
  // Slot-at-a-time configuration (batch_max = 1): the PR-5 handoff,
  // unchanged semantics and no wall-clock reads on the ingest path — the
  // single-core no-regression baseline.
  ids::ShardedConfig config;
  config.batch_max = 1;
  config.agg_hold = sim::Duration::Seconds(0);
  // Pin the observability knobs off too: this row is the no-regression
  // baseline, so its ingest path must not read the wall clock at all.
  config.trace_sample_period = 0;
  config.watchdog_stall_ms = 0;
  RunShardedIngestBench(state, config);
}
BENCHMARK(BM_ShardedIngest)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

void BM_ShardedIngestBatched(benchmark::State& state) {
  // Default batched configuration: up to batch_max slots per
  // release/acquire pair on both rings, bounded-latency partial flush, and
  // the shard-local aggregate staging path (DESIGN.md §12).
  RunShardedIngestBench(state, ids::ShardedConfig{});
}
BENCHMARK(BM_ShardedIngestBatched)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime();

void BM_ShardedIngestMp(benchmark::State& state) {
  // Multi-producer fan-out: BM_ShardedIngestMp/<producers>/<shards>. The
  // timed thread is the MpIngest dispatcher — producers == 1 degenerates
  // to the direct single-producer ingest (the <= 10% overhead row against
  // BM_ShardedIngestBatched), while higher rows price what the fan-out
  // buys: classification, routing and the shard-lane handoff move off the
  // dispatcher onto feeder threads, so dispatch cost per packet drops to a
  // claim sniff plus one SPSC push. Unlike the frozen-clock rows above,
  // the stream advances 1 ns per packet: the multi-lane merge orders
  // lanes by each port's vouched frontier, and several lanes pinned at
  // one frozen instant would gate on each other forever. A nanosecond per
  // packet keeps every warmup-parked flood window from rolling over even
  // across a billion iterations.
  const int producers = static_cast<int>(state.range(0));
  const int shards = static_cast<int>(state.range(1));
  ids::ShardedConfig config;
  config.shards = shards;
  config.producers = producers;
  config.ring_capacity = 4096;
  ids::ShardedIds engine(config);
  capture::MpIngest mp(engine, producers);

  int64_t now_ns = 1;
  constexpr int kCalls = 16;
  std::vector<net::Datagram> media;
  for (int i = 0; i < kCalls; ++i) {
    const net::Endpoint offer{net::IpAddress(10, 1, 0, 10),
                              static_cast<uint16_t>(20000 + 2 * i)};
    net::Datagram invite;
    invite.src = kProxyA;
    invite.dst = kProxyB;
    invite.kind = net::PayloadKind::kSip;
    invite.payload =
        TypicalInvite("mp-bench-" + std::to_string(i), offer).Serialize();
    mp.Ingest(invite, true, sim::Time::FromNanos(now_ns++));

    rtp::RtpHeader header;
    header.ssrc = 0x6B000000u + static_cast<uint32_t>(i);
    net::Datagram dgram;
    dgram.src = net::Endpoint{net::IpAddress(10, 2, 0, 10),
                              static_cast<uint16_t>(30000 + 2 * i)};
    dgram.dst = offer;
    dgram.kind = net::PayloadKind::kRtp;
    dgram.payload = header.Serialize();
    media.push_back(std::move(dgram));
  }

  std::vector<uint16_t> seq(kCalls, 0);
  std::vector<uint32_t> ts(kCalls, 0);
  const auto patch = [](net::Datagram& dgram, uint16_t s, uint32_t t) {
    dgram.payload[2] = static_cast<char>(s >> 8);
    dgram.payload[3] = static_cast<char>(s & 0xFF);
    dgram.payload[4] = static_cast<char>(t >> 24);
    dgram.payload[5] = static_cast<char>((t >> 16) & 0xFF);
    dgram.payload[6] = static_cast<char>((t >> 8) & 0xFF);
    dgram.payload[7] = static_cast<char>(t & 0xFF);
  };
  // Warmup parks the flood machines AND laps every dispatch-ring slot, so
  // each slot's payload string has its steady-state capacity before the
  // allocation counter arms.
  for (int k = 0; k < 300; ++k) {
    for (int i = 0; i < kCalls; ++i) {
      patch(media[static_cast<size_t>(i)], ++seq[static_cast<size_t>(i)],
            ts[static_cast<size_t>(i)] += 80);
      mp.Ingest(media[static_cast<size_t>(i)], true,
                sim::Time::FromNanos(now_ns++));
    }
  }
  mp.Quiesce();
  engine.Flush(sim::Time::FromNanos(now_ns));
  mp.Resume();

  size_t next = 0;
  {
    AllocCounter allocs(state);
    for (auto _ : state) {
      const size_t i = next;
      next = (next + 1) % kCalls;
      patch(media[i], ++seq[i], ts[i] += 80);
      mp.Ingest(media[i], true, sim::Time::FromNanos(++now_ns));
    }
  }
  mp.Finish();
  engine.Flush(sim::Time::FromNanos(now_ns));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.counters["producers"] = producers;
  state.counters["shards"] = shards;
  state.counters["cores"] =
      static_cast<double>(std::thread::hardware_concurrency());
  state.counters["ingest_stalls"] =
      static_cast<double>(engine.ingest_stalls());
}
BENCHMARK(BM_ShardedIngestMp)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({1, 4})
    ->Args({2, 4})
    ->Args({4, 4})
    ->UseRealTime();

void BM_ShardedPipelineSpans(benchmark::State& state) {
  // Cost of the pipeline span layer on the default batched engine:
  // range(1) is trace_sample_period (0 = sampling off). The /1/0 row is
  // the zero-alloc gate — with sampling off the span path must be one
  // always-false branch and no clock read, so steady-state ingest stays
  // allocation-free; the sampled rows price the MonotonicNanos() pair plus
  // three histogram records per sampled packet.
  ids::ShardedConfig config;
  config.trace_sample_period = static_cast<uint32_t>(state.range(1));
  config.watchdog_stall_ms = 0;  // isolate span cost from watchdog polls
  state.counters["trace_period"] = static_cast<double>(state.range(1));
  RunShardedIngestBench(state, config, /*count_allocs=*/true);
}
BENCHMARK(BM_ShardedPipelineSpans)
    ->Args({1, 0})
    ->Args({1, 64})
    ->Args({4, 64})
    ->UseRealTime();

void BM_HistogramRecord(benchmark::State& state) {
  // One log2-bucket histogram record — the unit cost each sampled span
  // pays three times. Values cycle across buckets so the bucket index
  // computation is not branch-predicted away.
  obs::Histogram histogram;
  static constexpr int64_t kValues[] = {80, 1200, 65000, 900000};
  benchmark::DoNotOptimize(&histogram);
  size_t i = 0;
  AllocCounter allocs(state);
  for (auto _ : state) {
    histogram.Record(kValues[i++ & 3]);
  }
  benchmark::DoNotOptimize(histogram.count());
}
BENCHMARK(BM_HistogramRecord);

void BM_RingBatchPushPop(benchmark::State& state) {
  // Raw SPSC ring cost of the batched producer/consumer ops, single
  // threaded so it measures the index machinery (and the zero-alloc slot
  // reuse), not scheduler noise. One iteration = one K-slot batch pushed,
  // committed, read and popped.
  const size_t batch = static_cast<size_t>(state.range(0));
  common::SpscRing<std::string> ring(batch * 4);
  const std::string payload(160, 'r');  // one G.729-sized RTP packet
  // Warm lap: give every slot its capacity so the timed region reuses it.
  for (size_t lap = 0; lap < ring.capacity() / batch; ++lap) {
    for (size_t i = 0; i < batch; ++i) ring.BeginPushN()->assign(payload);
    ring.CommitPushN();
    ring.PopN(ring.FrontN(batch));
  }
  size_t moved = 0;
  {
    AllocCounter allocs(state);
    for (auto _ : state) {
      for (size_t i = 0; i < batch; ++i) ring.BeginPushN()->assign(payload);
      ring.CommitPushN();
      const size_t n = ring.FrontN(batch);
      for (size_t i = 0; i < n; ++i) {
        benchmark::DoNotOptimize(ring.At(i).data());
      }
      ring.PopN(n);
      moved += n;
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(moved));
  state.counters["batch"] = static_cast<double>(batch);
}
BENCHMARK(BM_RingBatchPushPop)->Arg(1)->Arg(8)->Arg(32);

/// Runs a short in-session RTP scenario (same shape as
/// BM_VidsInspectRtpInSession) and writes the IDS metric registry snapshot
/// to `path`, so CI can assert on instrumented-run counters next to the
/// benchmark numbers.
void WriteMetricsSnapshot(const char* path) {
  sim::Scheduler scheduler;
  ids::Vids vids(scheduler);
  net::Datagram invite;
  invite.src = kProxyA;
  invite.dst = kProxyB;
  invite.kind = net::PayloadKind::kSip;
  invite.payload = TypicalInvite("metrics-snapshot").Serialize();
  vids.Inspect(invite, true);

  rtp::RtpHeader header;
  header.ssrc = 7;
  net::Datagram dgram;
  dgram.src = net::Endpoint{net::IpAddress(10, 2, 0, 10), 30000};
  dgram.dst = net::Endpoint{net::IpAddress(10, 1, 0, 10), 20000};
  dgram.kind = net::PayloadKind::kRtp;
  dgram.payload = header.Serialize();
  uint16_t seq = 0;
  uint32_t ts = 0;
  for (int i = 0; i < 2000; ++i) {
    ++seq;
    ts += 80;
    dgram.payload[2] = static_cast<char>(seq >> 8);
    dgram.payload[3] = static_cast<char>(seq & 0xFF);
    dgram.payload[4] = static_cast<char>(ts >> 24);
    dgram.payload[5] = static_cast<char>((ts >> 16) & 0xFF);
    dgram.payload[6] = static_cast<char>((ts >> 8) & 0xFF);
    dgram.payload[7] = static_cast<char>(ts & 0xFF);
    vids.Inspect(dgram, true);
  }

  std::ofstream out(path);
  out << vids.metrics().ToJson();
}

/// Runs the sharded pipeline with every packet spanned (trace period 1)
/// and writes the merged cross-shard snapshot to `path`: per-shard
/// `shard.N.lat.*` latency histograms, ring high-water marks, and
/// flush-reason counters. report_bench.py --latency renders the p50/p95/p99
/// table from this file.
void WritePipelineSnapshot(const char* path) {
  ids::ShardedConfig config;
  config.shards = 4;
  config.trace_sample_period = 1;
  ids::ShardedIds engine(config);

  const sim::Time t0 = sim::Time::FromNanos(1);
  constexpr int kCalls = 8;
  std::vector<net::Datagram> media;
  for (int i = 0; i < kCalls; ++i) {
    const net::Endpoint offer{net::IpAddress(10, 1, 0, 10),
                              static_cast<uint16_t>(21000 + 2 * i)};
    net::Datagram invite;
    invite.src = kProxyA;
    invite.dst = kProxyB;
    invite.kind = net::PayloadKind::kSip;
    invite.payload =
        TypicalInvite("span-snapshot-" + std::to_string(i), offer).Serialize();
    engine.Ingest(invite, true, t0);

    rtp::RtpHeader header;
    header.ssrc = 0x51000000u + static_cast<uint32_t>(i);
    net::Datagram dgram;
    dgram.src = net::Endpoint{net::IpAddress(10, 2, 0, 10),
                              static_cast<uint16_t>(31000 + 2 * i)};
    dgram.dst = offer;
    dgram.kind = net::PayloadKind::kRtp;
    dgram.payload = header.Serialize();
    media.push_back(std::move(dgram));
  }
  // In-session media at frozen simulated time deliberately crosses the
  // RTP-flood threshold: the resulting alerts exercise the ingest->alert
  // histogram alongside the per-packet spans.
  std::vector<uint16_t> seq(kCalls, 0);
  std::vector<uint32_t> ts(kCalls, 0);
  for (int k = 0; k < 500; ++k) {
    for (int i = 0; i < kCalls; ++i) {
      auto& dgram = media[static_cast<size_t>(i)];
      const uint16_t s = ++seq[static_cast<size_t>(i)];
      const uint32_t t = ts[static_cast<size_t>(i)] += 80;
      dgram.payload[2] = static_cast<char>(s >> 8);
      dgram.payload[3] = static_cast<char>(s & 0xFF);
      dgram.payload[4] = static_cast<char>(t >> 24);
      dgram.payload[5] = static_cast<char>((t >> 16) & 0xFF);
      dgram.payload[6] = static_cast<char>((t >> 8) & 0xFF);
      dgram.payload[7] = static_cast<char>(t & 0xFF);
      engine.Ingest(dgram, true, t0);
    }
  }
  engine.Flush(t0);

  std::ofstream out(path);
  out << engine.MergedMetrics().ToJson();
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (const char* path = std::getenv("VIDS_METRICS_OUT")) {
    WriteMetricsSnapshot(path);
  }
  if (const char* path = std::getenv("VIDS_PIPELINE_OUT")) {
    WritePipelineSnapshot(path);
  }
  return 0;
}
