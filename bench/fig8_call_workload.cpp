// FIG-8: call arrivals and call durations observed at network B's proxy
// over a 120-minute run (paper §7.1, Figure 8).
//
// Prints one row per 5-minute bucket (arrivals) and the distribution of
// call durations, mirroring the two panels of the figure.
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "testbed/testbed.h"

using namespace vids;

int main() {
  bench::PrintHeader(
      "FIG-8", "call arrivals and call durations (120 min workload)",
      "random independent arrivals; durations exponential-like, mostly "
      "< 100 s with a tail of several hundred seconds");

  testbed::TestbedConfig config;
  config.seed = 8;
  config.uas_per_network = 10;
  config.vids_enabled = true;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  testbed::WorkloadConfig workload;  // paper-like: sporadic, minutes-long
  workload.mean_intercall = sim::Duration::Seconds(150);
  workload.mean_duration = sim::Duration::Seconds(90);
  bed.StartWorkload(workload);
  bed.RunFor(sim::Duration::Seconds(120 * 60));

  const auto calls = bed.CompletedCalls();
  std::map<int, int> arrivals_per_bucket;  // 5-minute buckets
  std::vector<double> durations;
  for (const auto& call : calls) {
    arrivals_per_bucket[static_cast<int>(call.started.ToSeconds()) / 300]++;
    if (call.answered && call.ended) {
      durations.push_back((*call.ended - *call.answered).ToSeconds());
    }
  }

  std::printf("%-14s %s\n", "time (min)", "call arrivals");
  bench::PrintRule();
  for (int bucket = 0; bucket < 24; ++bucket) {
    std::printf("%4d - %-4d    %d\n", bucket * 5, bucket * 5 + 5,
                arrivals_per_bucket.contains(bucket)
                    ? arrivals_per_bucket[bucket]
                    : 0);
  }

  const auto s = bench::Summarize(durations);
  bench::PrintRule();
  std::printf("completed calls:          %zu\n", calls.size());
  std::printf("answered-and-ended calls: %zu\n", s.count);
  std::printf("duration (s):   mean=%.1f  p50=%.1f  p95=%.1f  max=%.1f\n",
              s.mean, s.p50, s.p95, s.max);
  int failed = 0;
  for (const auto& call : calls) failed += call.failed ? 1 : 0;
  std::printf("failed attempts:          %d (busy/timeout)\n", failed);
  std::printf("\nshape check vs paper: arrivals scattered across the run, "
              "duration distribution\nexponential-like (p50 well under the "
              "mean, long tail) -> %s\n",
              (s.count > 50 && s.p50 < s.mean && s.max > 3 * s.mean)
                  ? "OK"
                  : "MISMATCH");
  return 0;
}
