// FIG-9: call setup delay (INVITE sent → 180 Ringing received) with and
// without the inline vIDS, for two representative callers (paper Figure 9).
//
// The same seed drives both arms, so the call schedule is identical and
// the difference isolates the vIDS processing path. Paper claim: the vIDS
// adds ≈ 100 ms on average, from the ~50 ms analysis charge on each of the
// two signaling messages (INVITE in, 180 out) in the setup path.
#include <cstdio>

#include "bench_util.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

struct Arm {
  std::vector<double> all_setups_ms;
  // Per-caller time series for callers 3 and 4 (paper's representatives).
  std::vector<std::pair<double, double>> caller3;  // (call start s, setup ms)
  std::vector<std::pair<double, double>> caller4;
};

Arm RunArm(bool vids_enabled) {
  testbed::TestbedConfig config;
  config.seed = 9;
  config.uas_per_network = 10;
  config.vids_enabled = vids_enabled;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  testbed::WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(120);
  workload.mean_duration = sim::Duration::Seconds(60);
  bed.StartWorkload(workload);
  bed.RunFor(sim::Duration::Seconds(30 * 60));

  Arm arm;
  for (size_t i = 0; i < bed.uas_a().size(); ++i) {
    for (const auto& record : bed.uas_a()[i]->ua().completed_calls()) {
      const auto setup = record.SetupDelay();
      if (!setup) continue;
      arm.all_setups_ms.push_back(setup->ToMillis());
      if (i == 3) arm.caller3.emplace_back(record.started.ToSeconds(),
                                           setup->ToMillis());
      if (i == 4) arm.caller4.emplace_back(record.started.ToSeconds(),
                                           setup->ToMillis());
    }
  }
  return arm;
}

void PrintSeries(const char* name,
                 const std::vector<std::pair<double, double>>& with_vids,
                 const std::vector<std::pair<double, double>>& without) {
  std::printf("\n%s (same seed → same call schedule):\n", name);
  std::printf("%-12s %-16s %-16s %s\n", "t (s)", "with vIDS (ms)",
              "without (ms)", "delta (ms)");
  const size_t n = std::min(with_vids.size(), without.size());
  for (size_t i = 0; i < n && i < 12; ++i) {
    std::printf("%-12.0f %-16.1f %-16.1f %+.1f\n", with_vids[i].first,
                with_vids[i].second, without[i].second,
                with_vids[i].second - without[i].second);
  }
}

}  // namespace

int main() {
  bench::PrintHeader("FIG-9",
                     "call setup delay with/without vIDS (callers 3 & 4)",
                     "average extra setup delay induced by vIDS ~= 100 ms");

  const Arm with_vids = RunArm(true);
  const Arm without = RunArm(false);

  PrintSeries("caller 3", with_vids.caller3, without.caller3);
  PrintSeries("caller 4", with_vids.caller4, without.caller4);

  const auto s_with = bench::Summarize(with_vids.all_setups_ms);
  const auto s_without = bench::Summarize(without.all_setups_ms);
  bench::PrintRule();
  std::printf("all callers, %zu vs %zu calls:\n", s_with.count,
              s_without.count);
  std::printf("  with vIDS:    mean=%6.1f ms  p50=%6.1f  p95=%6.1f\n",
              s_with.mean, s_with.p50, s_with.p95);
  std::printf("  without vIDS: mean=%6.1f ms  p50=%6.1f  p95=%6.1f\n",
              s_without.mean, s_without.p50, s_without.p95);
  const double delta = s_with.mean - s_without.mean;
  std::printf("  average vIDS-induced setup delay: %+.1f ms (paper: ~100)\n",
              delta);
  std::printf("shape check: delta in [80, 140] ms -> %s\n",
              (delta > 80 && delta < 140) ? "OK" : "MISMATCH");
  return 0;
}
