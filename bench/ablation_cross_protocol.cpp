// ABL: ablation — what do the interacting state machines buy?
//
// DESIGN.md §4(5): the δ synchronization between the SIP and RTP machines
// is the paper's core contribution; its §8 positions the EFSM approach
// against SCIDIVE's stateful rule matching. This bench runs five detectors
// over identical attack traffic:
//   vIDS (full)            — specification machines + δ sync + patterns
//   vIDS (no cross-proto)  — same, δ channel unrouted
//   rule IDS (SCIDIVE-like)— stateful cross-protocol rule matching
//   signature IDS          — stateless per-packet matching (Snort-class)
//   rate IDS               — per-source packet-rate anomaly
// Expected story:
//   * BYE DoS / toll fraud need cross-protocol state: full vIDS and the
//     rule engine (which has an rtp-after-bye rule) see them; the ablated
//     vIDS and the stateless baselines are blind.
//   * attacks without an anticipated rule (call hijacking) and *unknown*
//     attacks (mid-ring BYE, no pattern anywhere) are caught only by the
//     specification machines — the paper's §7.5 claim and its criticism
//     of rule matching ("same disadvantages as misuse detection").
#include <cstdio>
#include <functional>

#include "attacks/rogue_ua.h"
#include "baseline/rate_ids.h"
#include "baseline/rule_ids.h"
#include "baseline/signature_ids.h"
#include "bench_util.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

struct Detectors {
  bool vids_full = false;
  bool vids_ablated = false;
  bool rule = false;
  bool signature = false;
  bool rate = false;
};

struct AttackCase {
  std::string name;
  std::string classification;  // vIDS attack-pattern label; "" → deviations
  bool cross_protocol = false;
  bool expect_rule_engine = false;  // has an anticipated SCIDIVE-style rule
  std::function<void(testbed::Testbed&)> launch;
};

bool VidsSaw(testbed::Testbed& bed, const AttackCase& attack) {
  if (!attack.classification.empty()) {
    return bed.vids()->CountAlerts(attack.classification) > 0;
  }
  return bed.vids()->CountAlerts(ids::AlertKind::kSpecDeviation) > 0;
}

Detectors RunCase(const AttackCase& attack) {
  Detectors result;
  baseline::SignatureIds signature;
  signature.InstallDefaultRules();
  baseline::RateIds rate(baseline::RateIds::Config{
      .threshold = 400, .window = sim::Duration::Seconds(1)});
  baseline::RuleIds rule;

  for (const bool cross_protocol : {true, false}) {
    testbed::TestbedConfig config;
    config.seed = 77;
    config.uas_per_network = 5;
    config.vids_enabled = true;
    config.detection.enable_cross_protocol = cross_protocol;
    testbed::Testbed bed(config);
    if (cross_protocol) {
      bed.AddMonitor([&](const net::Datagram& dgram, bool from_outside) {
        signature.Inspect(dgram, from_outside, bed.scheduler().Now());
        rate.Inspect(dgram, from_outside, bed.scheduler().Now());
        rule.Inspect(dgram, from_outside, bed.scheduler().Now());
      });
    }
    bed.RunFor(sim::Duration::Seconds(2));
    attack.launch(bed);
    bed.RunFor(sim::Duration::Seconds(120));
    if (cross_protocol) {
      result.vids_full = VidsSaw(bed, attack);
      result.signature = !signature.alerts().empty();
      result.rate = !rate.alerts().empty();
      result.rule = !rule.alerts().empty();
    } else {
      result.vids_ablated = VidsSaw(bed, attack);
    }
  }
  return result;
}

attacks::CallSnapshot ObservedCall(testbed::Testbed& bed) {
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(120));
  bed.RunFor(sim::Duration::Seconds(3));
  return bed.eavesdropper().Get(call_id).value_or(attacks::CallSnapshot{});
}

}  // namespace

int main() {
  bench::PrintHeader(
      "ABL", "detector x attack matrix: EFSMs vs rule matching vs stateless",
      "cross-protocol attacks need cross-protocol state; rule matching "
      "catches only anticipated attacks; only the specification machines "
      "catch unanticipated ones (paper §7.5, §8)");

  std::vector<AttackCase> cases;
  cases.push_back({"BYE DoS", std::string(ids::kAttackByeDos),
                   /*cross_protocol=*/true, /*expect_rule_engine=*/true,
                   [](testbed::Testbed& bed) {
                     const auto snap = ObservedCall(bed);
                     bed.attacker().SendSpoofedBye(snap);
                   }});
  cases.push_back(
      {"toll fraud", std::string(ids::kAttackTollFraud),
       /*cross_protocol=*/true, /*expect_rule_engine=*/true,
       [](testbed::Testbed& bed) {
         attacks::RogueUa::Config rogue_config;
         rogue_config.ua.user = "rogue";
         rogue_config.ua.domain = "attacker.example.com";
         rogue_config.ua.outbound_proxy = bed.proxy_b_endpoint();
         rogue_config.codec = rtp::G729();
         rogue_config.bye_after = sim::Duration::Seconds(3);
         rogue_config.stream_after_bye = sim::Duration::Seconds(8);
         static common::Stream rng(5, "abl-rogue");
         auto* rogue = new attacks::RogueUa(bed.scheduler(),
                                            bed.attacker_host(),
                                            rogue_config, rng);
         rogue->CallAndDefraud(bed.uas_b()[1]->ua().address_of_record());
       }});
  cases.push_back({"INVITE flood", std::string(ids::kAttackInviteFlood),
                   /*cross_protocol=*/false, /*expect_rule_engine=*/true,
                   [](testbed::Testbed& bed) {
                     bed.attacker().LaunchInviteFlood(
                         bed.uas_b()[2]->ua().address_of_record(),
                         bed.proxy_b_endpoint(), 25,
                         sim::Duration::Millis(20));
                   }});
  cases.push_back({"media spamming", std::string(ids::kAttackMediaSpam),
                   /*cross_protocol=*/false, /*expect_rule_engine=*/false,
                   [](testbed::Testbed& bed) {
                     const auto snap = ObservedCall(bed);
                     bed.attacker().LaunchMediaSpam(snap, 40,
                                                    sim::Duration::Millis(10));
                   }});
  cases.push_back({"call hijacking", std::string(ids::kAttackHijack),
                   /*cross_protocol=*/false, /*expect_rule_engine=*/false,
                   [](testbed::Testbed& bed) {
                     const auto snap = ObservedCall(bed);
                     bed.attacker().SendHijackInvite(snap);
                   }});
  cases.push_back(
      {"unknown (mid-ring BYE)", "",
       /*cross_protocol=*/false, /*expect_rule_engine=*/false,
       [](testbed::Testbed& bed) {
         auto& caller = *bed.uas_a()[0];
         auto& victim = *bed.uas_b()[0];
         const auto call_id = caller.ua().PlaceCall(
             victim.ua().address_of_record(), sim::Duration::Seconds(60));
         bed.RunFor(sim::Duration::Millis(250));  // ringing, not answered
         if (auto snap = bed.eavesdropper().Get(call_id)) {
           // Pre-answer there is no Contact on the wire yet; the attacker
           // knows the phone's address from prior reconnaissance.
           snap->callee_contact =
               net::Endpoint{victim.host().ip(), sip::kDefaultSipPort};
           bed.attacker().SendSpoofedBye(*snap);
         }
       }});

  std::printf("%-24s %-11s %-15s %-11s %-11s %-9s\n", "attack", "vIDS full",
              "vIDS no-cross", "rule(SCI)", "signature", "rate");
  bench::PrintRule();
  bool shape_ok = true;
  for (const auto& attack : cases) {
    const Detectors d = RunCase(attack);
    std::printf("%-24s %-11s %-15s %-11s %-11s %-9s\n", attack.name.c_str(),
                d.vids_full ? "DETECTED" : "-",
                d.vids_ablated ? "DETECTED" : "-",
                d.rule ? "DETECTED" : "-", d.signature ? "DETECTED" : "-",
                d.rate ? "DETECTED" : "-");
    if (!d.vids_full) shape_ok = false;
    if (attack.cross_protocol && d.vids_ablated) shape_ok = false;
    if (!attack.cross_protocol && !d.vids_ablated) shape_ok = false;
    if (attack.expect_rule_engine != d.rule) shape_ok = false;
  }
  bench::PrintRule();
  std::printf(
      "shape check: full vIDS detects everything; the δ channel is what\n"
      "sees the cross-protocol pair; the rule engine sees only what its\n"
      "rules anticipated -> %s\n",
      shape_ok ? "OK" : "MISMATCH");
  return 0;
}
