#!/usr/bin/env python3
"""Merges a google-benchmark JSON run into the tracked BENCH_micro.json.

Usage: report_bench.py <BENCH_micro.json> <run-label> <gbench-output.json>
           [--metrics <metrics-snapshot.json>] [--check]

BENCH_micro.json keeps one entry per label in "runs" (re-running a label
replaces it) so before/after numbers for a change live side by side. The
last run also gets a "speedup_vs" table against the first (baseline) run.

--metrics attaches an instrumented-run metric snapshot (the JSON written by
micro_core with VIDS_METRICS_OUT set) to the run entry.

After merging, the run is screened:
  * any benchmark with allocs_per_iter != 0 is a zero-allocation violation;
  * any benchmark whose cpu_ns regressed >10% vs the previous entry is
    flagged as a regression.
Both are warnings by default. With --check, alloc violations are fatal
(exit 1); cpu regressions stay warnings — CI runners are too noisy to gate
on latency alone.
"""
import json
import sys

REGRESSION_TOLERANCE = 1.10


def screen(tracked: dict, check: bool) -> int:
    """Returns the exit code after flagging violations in the latest run."""
    last = tracked["runs"][-1]
    prev = tracked["runs"][-2] if len(tracked["runs"]) >= 2 else None
    status = 0

    for name, entry in sorted(last["results"].items()):
        allocs = entry.get("allocs_per_iter")
        if allocs:  # present and nonzero
            print(f"VIOLATION: {name} allocates ({allocs} allocs/iter; "
                  f"the steady-state hot path must stay at 0)",
                  file=sys.stderr)
            if check:
                status = 1
        if prev is None or name not in prev["results"]:
            continue
        before = prev["results"][name]["cpu_ns"]
        after = entry["cpu_ns"]
        if before > 0 and after > before * REGRESSION_TOLERANCE:
            pct = 100.0 * (after / before - 1.0)
            print(f"WARNING: {name} regressed {pct:.1f}% vs "
                  f"'{prev['label']}' ({before} -> {after} cpu ns)",
                  file=sys.stderr)
    return status


def main() -> int:
    args = list(sys.argv[1:])
    check = "--check" in args
    if check:
        args.remove("--check")
    metrics_path = None
    if "--metrics" in args:
        at = args.index("--metrics")
        try:
            metrics_path = args[at + 1]
        except IndexError:
            print(__doc__, file=sys.stderr)
            return 2
        del args[at:at + 2]
    if len(args) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    tracked_path, label, run_path = args

    with open(run_path) as f:
        run = json.load(f)
    results = {}
    for bench in run.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {
            "cpu_ns": round(bench["cpu_time"], 1),
            "real_ns": round(bench["real_time"], 1),
            "iterations": bench["iterations"],
        }
        if "allocs_per_iter" in bench:
            entry["allocs_per_iter"] = round(bench["allocs_per_iter"], 3)
        results[bench["name"]] = entry

    try:
        with open(tracked_path) as f:
            tracked = json.load(f)
    except FileNotFoundError:
        tracked = {"benchmarks": [], "runs": []}

    tracked["benchmarks"] = sorted(
        set(tracked.get("benchmarks", [])) | set(results)
    )
    tracked["runs"] = [r for r in tracked["runs"] if r["label"] != label]
    tracked["runs"].append({"label": label, "results": results})

    if metrics_path is not None:
        with open(metrics_path) as f:
            tracked["runs"][-1]["metrics"] = json.load(f)

    if len(tracked["runs"]) >= 2:
        base = tracked["runs"][0]["results"]
        last = tracked["runs"][-1]
        speedup = {}
        for name, entry in last["results"].items():
            if name in base and entry["cpu_ns"] > 0:
                speedup[name] = round(base[name]["cpu_ns"] / entry["cpu_ns"], 2)
        last["speedup_vs"] = {tracked["runs"][0]["label"]: speedup}

    status = screen(tracked, check)

    with open(tracked_path, "w") as f:
        json.dump(tracked, f, indent=2)
        f.write("\n")
    print(f"{tracked_path}: recorded run '{label}' "
          f"({', '.join(sorted(results))})")
    return status


if __name__ == "__main__":
    sys.exit(main())
