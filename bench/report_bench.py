#!/usr/bin/env python3
"""Merges a google-benchmark JSON run into the tracked BENCH_micro.json.

Usage: report_bench.py <BENCH_micro.json> <run-label> <gbench-output.json>
           [--metrics <metrics-snapshot.json>] [--check] [--scaling]
           [--latency <pipeline-metrics.json>]
           [--require-zero-alloc <bench>]... [--allow-allocs <bench>]...
           [--baseline <tracked.json> <label>]

BENCH_micro.json keeps one entry per label in "runs" (re-running a label
replaces it) so before/after numbers for a change live side by side. The
last run also gets a "speedup_vs" table against the first (baseline) run.

--metrics attaches an instrumented-run metric snapshot (the JSON written by
micro_core with VIDS_METRICS_OUT set) to the run entry.

After merging, the run is screened:
  * any benchmark with allocs_per_iter != 0 is a zero-allocation violation,
    unless listed via --allow-allocs (benchmarks that measure a path that
    legitimately allocates, e.g. first-packet group creation, get an INFO
    note instead);
  * --require-zero-alloc names benchmarks that MUST appear in the run,
    MUST report allocs_per_iter, and MUST report it as 0 — a missing
    counter is as fatal as a nonzero one, so the gate cannot rot silently;
  * any benchmark whose cpu_ns regressed >10% vs the previous entry is
    flagged, and --baseline additionally compares against a pinned run
    (file + label) so drift against a recorded release number is visible
    even when the previous run already regressed.
Violations of the first two are fatal with --check (exit 1); cpu
regressions stay warnings — CI runners are too noisy to gate on latency
alone.

Every appended run records the host's core count as `cpu_count` in its
metadata (from the gbench context, falling back to os.cpu_count()), so a
number taken on a 1-core container can never masquerade as a real
scaling measurement later.

--latency attaches the merged pipeline snapshot (the JSON written by
micro_core with VIDS_PIPELINE_OUT set) to the run entry as
"pipeline_latency" and prints a p50/p95/p99 table of every `lat.*`
histogram in it — both the cross-shard aggregates and the per-shard
`shard.N.lat.*` series. It also gates the span layer's zero-cost claim:
every BM_ShardedPipelineSpans row whose trace period argument is 0
(sampling off) must report allocs_per_iter == 0, and at least one such
row must exist — a missing or nonzero counter is fatal regardless of
--check, because it means the "sampling off is free" number is broken.

--scaling screens the BM_ShardedIngest rows: the 4-shard pipeline must
deliver >= 2x the single-shard throughput. The gate only binds when the
run was recorded on a host with >= 4 cores (the run-level `cpu_count`,
falling back to the benchmark's `cores` counter) — a 1-core container
serializes the workers, so there the screen reports a loud SKIP naming
the recorded core count and exits 0 instead of recording a meaningless
failure.

--scaling also screens the producer axis when BM_ShardedIngestMp rows
are present:
  * the single-producer fan-out (producers=1) must stay within 10% of the
    direct BM_ShardedIngestBatched throughput at the same shard count —
    the MPSC capability may not tax deployments that do not use it;
  * 4 producers must deliver >= 2x the 1-producer throughput at 4 shards.
    Like the shard gate, this only binds on >= 4 cores; below that the
    screen reports a loud SKIP naming both the recorded core count and
    the producer count whose measurement is meaningless there.
"""
import json
import os
import sys

REGRESSION_TOLERANCE = 1.10


def warn_regressions(results: dict, against: dict, label: str) -> None:
    for name, entry in sorted(results.items()):
        if name not in against:
            continue
        before = against[name]["cpu_ns"]
        after = entry["cpu_ns"]
        if before > 0 and after > before * REGRESSION_TOLERANCE:
            pct = 100.0 * (after / before - 1.0)
            print(f"WARNING: {name} regressed {pct:.1f}% vs "
                  f"'{label}' ({before} -> {after} cpu ns)",
                  file=sys.stderr)


def screen_scaling(last: dict, check: bool) -> int:
    """Gates 4-shard vs 1-shard BM_ShardedIngest throughput at 2x."""
    entries = {}
    for name, entry in last["results"].items():
        if not name.startswith("BM_ShardedIngest/"):
            continue
        if "shards" in entry and "items_per_second" in entry:
            entries[int(entry["shards"])] = entry
    if 1 not in entries or 4 not in entries:
        print("SCALING: 1- and 4-shard BM_ShardedIngest rows not both "
              "present in the run; nothing to screen", file=sys.stderr)
        return 1 if check else 0
    cores = int(last.get("cpu_count") or entries[4].get("cores", 0))
    if cores < 4:
        print(f"SCALING: SKIPPED — the run was recorded on {cores} core(s). "
              f"Four workers cannot outrun one on fewer than 4 cores; the "
              f"2x gate only binds for runs recorded on >= 4 cores.",
              file=sys.stderr)
        return 0
    one = entries[1]["items_per_second"]
    four = entries[4]["items_per_second"]
    ratio = four / one if one > 0 else 0.0
    if ratio < 2.0:
        print(f"VIOLATION: 4-shard throughput is {ratio:.2f}x single-shard "
              f"({four:.0f} vs {one:.0f} items/s); the sharded engine must "
              f"deliver >= 2x on a >= 4-core host", file=sys.stderr)
        return 1 if check else 0
    print(f"SCALING: OK — 4 shards deliver {ratio:.2f}x single-shard "
          f"throughput ({four:.0f} vs {one:.0f} items/s, {cores} cores)",
          file=sys.stderr)
    return 0


def screen_producer_scaling(last: dict, check: bool) -> int:
    """Gates the BM_ShardedIngestMp producer axis (see module docstring)."""
    mp = {}       # (producers, shards) -> entry
    batched = {}  # shards -> entry
    for name, entry in last["results"].items():
        if "items_per_second" not in entry:
            continue
        if name.startswith("BM_ShardedIngestMp/"):
            if "producers" in entry and "shards" in entry:
                mp[(int(entry["producers"]), int(entry["shards"]))] = entry
        elif name.startswith("BM_ShardedIngestBatched/"):
            if "shards" in entry:
                batched[int(entry["shards"])] = entry
    if not mp:
        print("SCALING: no BM_ShardedIngestMp rows in the run; producer "
              "axis not screened", file=sys.stderr)
        return 1 if check else 0
    status = 0

    # Single-producer fan-out overhead vs the direct batched ingest.
    for shards, direct in sorted(batched.items()):
        entry = mp.get((1, shards))
        if entry is None:
            continue
        direct_ips = direct["items_per_second"]
        mp_ips = entry["items_per_second"]
        if direct_ips > 0 and mp_ips < direct_ips / 1.10:
            pct = 100.0 * (1.0 - mp_ips / direct_ips)
            print(f"VIOLATION: 1-producer fan-out at {shards} shard(s) is "
                  f"{pct:.1f}% below the direct batched ingest "
                  f"({mp_ips:.0f} vs {direct_ips:.0f} items/s); the MPSC "
                  f"capability must cost <= 10% when unused",
                  file=sys.stderr)
            status = 1 if check else status
        else:
            print(f"SCALING: OK — 1-producer fan-out at {shards} shard(s) "
                  f"is within 10% of direct ingest ({mp_ips:.0f} vs "
                  f"{direct_ips:.0f} items/s)", file=sys.stderr)

    # Producer-axis throughput: 4 producers vs 1 at 4 shards.
    if (1, 4) not in mp or (4, 4) not in mp:
        print("SCALING: 1- and 4-producer BM_ShardedIngestMp rows at 4 "
              "shards not both present; producer scaling not screened",
              file=sys.stderr)
        return max(status, 1 if check else 0)
    cores = int(last.get("cpu_count") or mp[(4, 4)].get("cores", 0))
    if cores < 4:
        print(f"SCALING: producer axis SKIPPED — the run was recorded on "
              f"{cores} core(s), and 4 producers cannot outrun 1 producer "
              f"on fewer than 4 cores; the 2x producer gate only binds for "
              f"runs recorded on >= 4 cores.", file=sys.stderr)
        return status
    one = mp[(1, 4)]["items_per_second"]
    four = mp[(4, 4)]["items_per_second"]
    ratio = four / one if one > 0 else 0.0
    if ratio < 2.0:
        print(f"VIOLATION: 4-producer throughput is {ratio:.2f}x "
              f"1-producer at 4 shards ({four:.0f} vs {one:.0f} items/s); "
              f"the fan-out must deliver >= 2x on a >= 4-core host",
              file=sys.stderr)
        return max(status, 1 if check else 0)
    print(f"SCALING: OK — 4 producers deliver {ratio:.2f}x 1-producer "
          f"throughput at 4 shards ({four:.0f} vs {one:.0f} items/s, "
          f"{cores} cores)", file=sys.stderr)
    return status


def screen_latency(last: dict, snapshot: dict) -> int:
    """Prints the pipeline latency table; gates the sampling-off rows."""
    hists = snapshot.get("histograms", {})
    rows = [(name, h) for name, h in sorted(hists.items())
            if name.startswith("lat.") or ".lat." in name]
    if not rows:
        print("VIOLATION: the pipeline snapshot has no 'lat.*' histograms "
              "(span sampling came unwired?)", file=sys.stderr)
        return 1
    print(f"{'pipeline histogram':<36} {'count':>9} {'p50_ns':>12} "
          f"{'p95_ns':>12} {'p99_ns':>12}")
    for name, h in rows:
        print(f"{name:<36} {h['count']:>9} {h['p50']:>12} {h['p95']:>12} "
              f"{h['p99']:>12}")

    status = 0
    off_rows = 0
    for name, entry in sorted(last["results"].items()):
        if not name.startswith("BM_ShardedPipelineSpans/"):
            continue
        parts = name.split("/")  # BM_.../<shards>/<period>[/real_time]
        if len(parts) < 3 or parts[2] != "0":
            continue
        off_rows += 1
        allocs = entry.get("allocs_per_iter")
        if allocs is None:
            print(f"VIOLATION: {name} runs with sampling off but does not "
                  f"report allocs_per_iter (the allocation counter came "
                  f"unwired)", file=sys.stderr)
            status = 1
        elif allocs != 0:
            print(f"VIOLATION: {name} allocates with span sampling off "
                  f"({allocs} allocs/iter; the disabled span path must be "
                  f"free)", file=sys.stderr)
            status = 1
    if off_rows == 0:
        print("VIOLATION: no BM_ShardedPipelineSpans sampling-off row in "
              "the run; the zero-cost gate has nothing to screen",
              file=sys.stderr)
        status = 1
    return status


def screen(tracked: dict, check: bool, require_zero: list,
           allow_allocs: list, baseline: dict | None,
           baseline_label: str) -> int:
    """Returns the exit code after flagging violations in the latest run."""
    last = tracked["runs"][-1]
    prev = tracked["runs"][-2] if len(tracked["runs"]) >= 2 else None
    status = 0

    for name, entry in sorted(last["results"].items()):
        allocs = entry.get("allocs_per_iter")
        if allocs:  # present and nonzero
            if name in allow_allocs:
                print(f"INFO: {name} allocates ({allocs} allocs/iter; "
                      f"expected — this benchmark measures an allocating "
                      f"path)", file=sys.stderr)
            else:
                print(f"VIOLATION: {name} allocates ({allocs} allocs/iter; "
                      f"the steady-state hot path must stay at 0)",
                      file=sys.stderr)
                if check:
                    status = 1
    for name in require_zero:
        entry = last["results"].get(name)
        if entry is None:
            print(f"VIOLATION: required zero-alloc benchmark {name} is "
                  f"missing from the run", file=sys.stderr)
        elif "allocs_per_iter" not in entry:
            print(f"VIOLATION: {name} does not report allocs_per_iter "
                  f"(the allocation counter came unwired)", file=sys.stderr)
        elif entry["allocs_per_iter"] != 0:
            # Already flagged above; repeat with the requirement context.
            print(f"VIOLATION: {name} is required to be zero-allocation "
                  f"but reports {entry['allocs_per_iter']} allocs/iter",
                  file=sys.stderr)
        else:
            continue
        if check:
            status = 1

    if prev is not None:
        warn_regressions(last["results"], prev["results"], prev["label"])
    if baseline is not None:
        pinned = next((r for r in baseline.get("runs", [])
                       if r["label"] == baseline_label), None)
        if pinned is None:
            print(f"WARNING: baseline label '{baseline_label}' not found",
                  file=sys.stderr)
        else:
            warn_regressions(last["results"], pinned["results"],
                             baseline_label)
    return status


def main() -> int:
    args = list(sys.argv[1:])
    check = "--check" in args
    if check:
        args.remove("--check")
    scaling = "--scaling" in args
    if scaling:
        args.remove("--scaling")

    def take_values(flag: str, count: int = 1) -> list:
        taken = []
        while flag in args:
            at = args.index(flag)
            if len(args) < at + 1 + count:
                print(__doc__, file=sys.stderr)
                sys.exit(2)
            values = args[at + 1:at + 1 + count]
            taken.append(values[0] if count == 1 else tuple(values))
            del args[at:at + 1 + count]
        return taken

    metrics = take_values("--metrics")
    metrics_path = metrics[-1] if metrics else None
    latency = take_values("--latency")
    latency_path = latency[-1] if latency else None
    require_zero = take_values("--require-zero-alloc")
    allow_allocs = take_values("--allow-allocs")
    baselines = take_values("--baseline", count=2)
    if len(args) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    tracked_path, label, run_path = args

    with open(run_path) as f:
        run = json.load(f)
    results = {}
    for bench in run.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {
            "cpu_ns": round(bench["cpu_time"], 1),
            "real_ns": round(bench["real_time"], 1),
            "iterations": bench["iterations"],
        }
        if "allocs_per_iter" in bench:
            entry["allocs_per_iter"] = round(bench["allocs_per_iter"], 3)
        # Scaling-row context: throughput plus the shard/host counters the
        # --scaling screen interprets.
        for key in ("items_per_second", "shards", "producers", "cores",
                    "ingest_stalls"):
            if key in bench:
                entry[key] = round(bench[key], 3)
        results[bench["name"]] = entry

    try:
        with open(tracked_path) as f:
            tracked = json.load(f)
    except FileNotFoundError:
        tracked = {"benchmarks": [], "runs": []}

    tracked["benchmarks"] = sorted(
        set(tracked.get("benchmarks", [])) | set(results)
    )
    # Host core count stamped into the run: gbench records num_cpus in its
    # context; fall back to the merging host if the run file lacks one.
    cpu_count = run.get("context", {}).get("num_cpus") or os.cpu_count() or 0
    tracked["runs"] = [r for r in tracked["runs"] if r["label"] != label]
    tracked["runs"].append({"label": label, "cpu_count": int(cpu_count),
                            "results": results})

    if metrics_path is not None:
        with open(metrics_path) as f:
            tracked["runs"][-1]["metrics"] = json.load(f)
    latency_snapshot = None
    if latency_path is not None:
        with open(latency_path) as f:
            latency_snapshot = json.load(f)
        tracked["runs"][-1]["pipeline_latency"] = latency_snapshot

    if len(tracked["runs"]) >= 2:
        base = tracked["runs"][0]["results"]
        last = tracked["runs"][-1]
        speedup = {}
        for name, entry in last["results"].items():
            if name in base and entry["cpu_ns"] > 0:
                speedup[name] = round(base[name]["cpu_ns"] / entry["cpu_ns"], 2)
        last["speedup_vs"] = {tracked["runs"][0]["label"]: speedup}

    baseline = None
    baseline_label = ""
    if baselines:
        baseline_path, baseline_label = baselines[-1]
        if baseline_path == tracked_path:
            baseline = tracked  # compare within the file being updated
        else:
            with open(baseline_path) as f:
                baseline = json.load(f)
    status = screen(tracked, check, require_zero, allow_allocs,
                    baseline, baseline_label)
    if scaling:
        status = max(status, screen_scaling(tracked["runs"][-1], check))
        status = max(status,
                     screen_producer_scaling(tracked["runs"][-1], check))
    if latency_snapshot is not None:
        status = max(status,
                     screen_latency(tracked["runs"][-1], latency_snapshot))

    with open(tracked_path, "w") as f:
        json.dump(tracked, f, indent=2)
        f.write("\n")
    print(f"{tracked_path}: recorded run '{label}' "
          f"({', '.join(sorted(results))})")
    return status


if __name__ == "__main__":
    sys.exit(main())
