#!/usr/bin/env python3
"""Merges a google-benchmark JSON run into the tracked BENCH_micro.json.

Usage: report_bench.py <BENCH_micro.json> <run-label> <gbench-output.json>

BENCH_micro.json keeps one entry per label in "runs" (re-running a label
replaces it) so before/after numbers for a change live side by side. The
last run also gets a "speedup_vs" table against the first (baseline) run.
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 4:
        print(__doc__, file=sys.stderr)
        return 2
    tracked_path, label, run_path = sys.argv[1], sys.argv[2], sys.argv[3]

    with open(run_path) as f:
        run = json.load(f)
    results = {}
    for bench in run.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        entry = {
            "cpu_ns": round(bench["cpu_time"], 1),
            "real_ns": round(bench["real_time"], 1),
            "iterations": bench["iterations"],
        }
        if "allocs_per_iter" in bench:
            entry["allocs_per_iter"] = round(bench["allocs_per_iter"], 3)
        results[bench["name"]] = entry

    try:
        with open(tracked_path) as f:
            tracked = json.load(f)
    except FileNotFoundError:
        tracked = {"benchmarks": [], "runs": []}

    tracked["benchmarks"] = sorted(
        set(tracked.get("benchmarks", [])) | set(results)
    )
    tracked["runs"] = [r for r in tracked["runs"] if r["label"] != label]
    tracked["runs"].append({"label": label, "results": results})

    if len(tracked["runs"]) >= 2:
        base = tracked["runs"][0]["results"]
        last = tracked["runs"][-1]
        speedup = {}
        for name, entry in last["results"].items():
            if name in base and entry["cpu_ns"] > 0:
                speedup[name] = round(base[name]["cpu_ns"] / entry["cpu_ns"], 2)
        last["speedup_vs"] = {tracked["runs"][0]["label"]: speedup}

    with open(tracked_path, "w") as f:
        json.dump(tracked, f, indent=2)
        f.write("\n")
    print(f"{tracked_path}: recorded run '{label}' "
          f"({', '.join(sorted(results))})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
