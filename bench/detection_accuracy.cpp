// TAB-DET: detection accuracy (paper §7.5).
//
// Paper claim: for attacks with patterns in the scenario base, 100%
// detection with zero false positives. Each scenario runs over the full
// testbed with live background calls; the clean arm (background only)
// measures the false-alarm side.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "attacks/rogue_ua.h"
#include "bench_util.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

struct Scenario {
  std::string name;
  std::string expected_classification;  // empty → expect NO alerts (clean)
  std::function<void(testbed::Testbed&)> launch;
};

struct Row {
  std::string name;
  bool detected = false;
  size_t matching_alerts = 0;
  size_t other_attack_alerts = 0;
  size_t deviations = 0;
};

// Establishes a call from a0 to b0 and returns its wire snapshot.
attacks::CallSnapshot ObservedCall(testbed::Testbed& bed,
                                   sim::Duration duration) {
  auto& caller = *bed.uas_a()[0];
  const auto call_id = caller.ua().PlaceCall(
      bed.uas_b()[0]->ua().address_of_record(), duration);
  bed.RunFor(sim::Duration::Seconds(3));
  return bed.eavesdropper().Get(call_id).value_or(attacks::CallSnapshot{});
}

Row RunScenario(const Scenario& scenario) {
  testbed::TestbedConfig config;
  config.seed = 1700;
  config.uas_per_network = 6;
  config.vids_enabled = true;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  // Live background traffic throughout.
  testbed::WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::Seconds(60);
  workload.mean_duration = sim::Duration::Seconds(30);
  bed.StartWorkload(workload);
  bed.RunFor(sim::Duration::Seconds(20));

  if (scenario.launch) scenario.launch(bed);
  bed.RunFor(sim::Duration::Seconds(120));

  Row row;
  row.name = scenario.name;
  for (const auto& alert : bed.vids()->alerts()) {
    if (alert.kind == ids::AlertKind::kAttackPattern) {
      if (alert.classification == scenario.expected_classification) {
        ++row.matching_alerts;
      } else {
        ++row.other_attack_alerts;
      }
    } else if (alert.kind == ids::AlertKind::kSpecDeviation) {
      ++row.deviations;
    }
  }
  row.detected = row.matching_alerts > 0;
  return row;
}

}  // namespace

int main() {
  bench::PrintHeader("TAB-DET", "detection accuracy over the testbed",
                     "100% detection of known attack patterns, zero false "
                     "positives (§7.5)");

  std::vector<Scenario> scenarios;

  scenarios.push_back({"clean baseline (no attack)", "", nullptr});

  scenarios.push_back(
      {"BYE DoS (spoofed BYE)", std::string(ids::kAttackByeDos),
       [](testbed::Testbed& bed) {
         const auto snap = ObservedCall(bed, sim::Duration::Seconds(120));
         bed.attacker().SendSpoofedBye(snap);
       }});

  scenarios.push_back(
      {"CANCEL DoS (spoofed CANCEL)", std::string(ids::kAttackCancelDos),
       [](testbed::Testbed& bed) {
         auto& caller = *bed.uas_a()[1];
         const auto call_id = caller.ua().PlaceCall(
             bed.uas_b()[1]->ua().address_of_record(),
             sim::Duration::Seconds(60));
         bed.RunFor(sim::Duration::Millis(200));
         if (const auto snap = bed.eavesdropper().Get(call_id)) {
           bed.attacker().SendSpoofedCancel(*snap, bed.proxy_b_endpoint());
         }
       }});

  scenarios.push_back(
      {"INVITE flooding", std::string(ids::kAttackInviteFlood),
       [](testbed::Testbed& bed) {
         bed.attacker().LaunchInviteFlood(
             bed.uas_b()[2]->ua().address_of_record(),
             bed.proxy_b_endpoint(), 25, sim::Duration::Millis(20));
       }});

  scenarios.push_back(
      {"media spamming (SSRC hijack)", std::string(ids::kAttackMediaSpam),
       [](testbed::Testbed& bed) {
         const auto snap = ObservedCall(bed, sim::Duration::Seconds(120));
         bed.attacker().LaunchMediaSpam(snap, 40, sim::Duration::Millis(10));
       }});

  scenarios.push_back(
      {"RTP flooding", std::string(ids::kAttackRtpFlood),
       [](testbed::Testbed& bed) {
         const auto snap = ObservedCall(bed, sim::Duration::Seconds(120));
         if (snap.callee_media) {
           bed.attacker().LaunchRtpFlood(*snap.callee_media, 1000,
                                         sim::Duration::Seconds(2));
         }
       }});

  scenarios.push_back(
      {"call hijacking (in-dialog INVITE)", std::string(ids::kAttackHijack),
       [](testbed::Testbed& bed) {
         const auto snap = ObservedCall(bed, sim::Duration::Seconds(120));
         bed.attacker().SendHijackInvite(snap);
       }});

  scenarios.push_back(
      {"DRDoS reflection", std::string(ids::kAttackDrdos),
       [](testbed::Testbed& bed) {
         bed.attacker().LaunchDrdosReflection(
             net::Endpoint{bed.uas_b()[3]->host().ip(), 5060},
             bed.proxy_a_endpoint(), 30, sim::Duration::Millis(20));
       }});

  scenarios.push_back(
      {"toll fraud (BYE, keep streaming)", std::string(ids::kAttackTollFraud),
       [](testbed::Testbed& bed) {
         attacks::RogueUa::Config rogue_config;
         rogue_config.ua.user = "rogue";
         rogue_config.ua.domain = "attacker.example.com";
         rogue_config.ua.outbound_proxy = bed.proxy_b_endpoint();
         rogue_config.codec = rtp::G729();
         rogue_config.bye_after = sim::Duration::Seconds(3);
         rogue_config.stream_after_bye = sim::Duration::Seconds(8);
         static common::Stream rng(99, "rogue-bench");
         // Leaked deliberately: must outlive this callback until run ends.
         auto* rogue = new attacks::RogueUa(bed.scheduler(),
                                            bed.attacker_host(),
                                            rogue_config, rng);
         rogue->CallAndDefraud(bed.uas_b()[4]->ua().address_of_record());
       }});

  scenarios.push_back(
      {"ghost media (spoofed RTCP BYE)", std::string(ids::kAttackGhostMedia),
       [](testbed::Testbed& bed) {
         const auto snap = ObservedCall(bed, sim::Duration::Seconds(120));
         bed.attacker().SendSpoofedRtcpBye(snap);
       }});

  std::printf("%-36s %-10s %-9s %-12s %-10s\n", "scenario", "detected",
              "alerts", "other-atk", "deviations");
  bench::PrintRule();
  int detected = 0, total_attacks = 0;
  bool clean_fp = false;
  for (const auto& scenario : scenarios) {
    const Row row = RunScenario(scenario);
    const bool is_clean = scenario.expected_classification.empty();
    if (is_clean) {
      clean_fp = row.other_attack_alerts + row.matching_alerts +
                     row.deviations > 0;
      std::printf("%-36s %-10s %-9zu %-12zu %-10zu\n", row.name.c_str(),
                  clean_fp ? "FP!" : "no-alert", row.matching_alerts,
                  row.other_attack_alerts, row.deviations);
      continue;
    }
    ++total_attacks;
    detected += row.detected ? 1 : 0;
    std::printf("%-36s %-10s %-9zu %-12zu %-10zu\n", row.name.c_str(),
                row.detected ? "YES" : "MISSED", row.matching_alerts,
                row.other_attack_alerts, row.deviations);
  }
  bench::PrintRule();
  std::printf("detection rate: %d/%d   clean-run false positives: %s\n",
              detected, total_attacks, clean_fp ? "YES (bad)" : "none");
  std::printf("shape check vs paper (100%% detection, zero FP): %s\n",
              (detected == total_attacks && !clean_fp) ? "OK" : "MISMATCH");
  return 0;
}
