// Shared helpers for the experiment benches: summary statistics and the
// fixed-width table output every bench prints.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace vids::bench {

struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

inline Summary Summarize(std::vector<double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(values.size()));
  const auto pct = [&](double p) {
    const size_t index = static_cast<size_t>(
        p * static_cast<double>(values.size() - 1) + 0.5);
    return values[index];
  };
  s.min = values.front();
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.max = values.back();
  return s;
}

inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& paper_claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s — %s\n", id.c_str(), title.c_str());
  std::printf("paper: %s\n", paper_claim.c_str());
  std::printf("==============================================================\n");
}

inline void PrintRule() {
  std::printf("--------------------------------------------------------------\n");
}

}  // namespace vids::bench
