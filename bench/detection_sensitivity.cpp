// TAB-SENS: detection sensitivity — the earliest possible detection time
// and its dependence on the detection timers (paper §7.5).
//
// Paper claims: detection delay is governed by timer T1 (INVITE flooding:
// smaller windows detect faster, at higher computational granularity) and
// timer T (BYE DoS: T of about one RTT is long enough for in-flight RTP,
// giving "less chance of false alarms"; smaller T detects faster but
// false-alarms on legitimate teardowns).
#include <cstdio>
#include <optional>

#include "bench_util.h"
#include "testbed/testbed.h"

using namespace vids;

namespace {

// --- INVITE flood: detection delay vs (N, T1) -------------------------

struct FloodResult {
  bool detected = false;
  double delay_s = 0.0;  // attack start → first flood alert
};

FloodResult RunFlood(int threshold, sim::Duration window) {
  testbed::TestbedConfig config;
  config.seed = 42;
  config.uas_per_network = 4;
  config.vids_enabled = true;
  config.detection.invite_flood_threshold = threshold;
  config.detection.invite_flood_window = window;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  const auto attack_start = bed.scheduler().Now();
  // 20 INVITEs/s for 3 seconds toward one phone.
  bed.attacker().LaunchInviteFlood(bed.uas_b()[0]->ua().address_of_record(),
                                   bed.proxy_b_endpoint(), 60,
                                   sim::Duration::Millis(50));
  bed.RunFor(sim::Duration::Seconds(10));

  FloodResult result;
  for (const auto& alert : bed.vids()->alerts()) {
    if (alert.classification == ids::kAttackInviteFlood) {
      result.detected = true;
      result.delay_s = (alert.when - attack_start).ToSeconds();
      break;
    }
  }
  return result;
}

// --- BYE DoS: detection delay and false alarms vs timer T --------------

struct ByeResult {
  bool attack_detected = false;
  double detection_delay_s = 0.0;  // spoofed BYE sent → alert
  int clean_teardowns = 0;
  int false_alarms = 0;  // BYE DoS/toll fraud alerts on clean teardowns
};

ByeResult RunByeSweep(sim::Duration grace, bool with_attack) {
  testbed::TestbedConfig config;
  config.seed = 43;
  config.uas_per_network = 6;
  config.vids_enabled = true;
  config.detection.bye_inflight_grace = grace;
  testbed::Testbed bed(config);
  bed.RunFor(sim::Duration::Seconds(2));

  ByeResult result;
  if (with_attack) {
    auto& caller = *bed.uas_a()[0];
    const auto call_id = caller.ua().PlaceCall(
        bed.uas_b()[0]->ua().address_of_record(), sim::Duration::Seconds(120));
    bed.RunFor(sim::Duration::Seconds(3));
    const auto snap = bed.eavesdropper().Get(call_id);
    const auto bye_at = bed.scheduler().Now();
    if (snap) bed.attacker().SendSpoofedBye(*snap);
    bed.RunFor(sim::Duration::Seconds(10));
    for (const auto& alert : bed.vids()->alerts()) {
      if (alert.classification == ids::kAttackByeDos) {
        result.attack_detected = true;
        result.detection_delay_s = (alert.when - bye_at).ToSeconds();
        break;
      }
    }
  } else {
    // Clean teardowns only: every alert is a false alarm.
    testbed::WorkloadConfig workload;
    workload.mean_intercall = sim::Duration::Seconds(30);
    workload.mean_duration = sim::Duration::Seconds(15);
    bed.StartWorkload(workload);
    bed.RunFor(sim::Duration::Seconds(240));
    for (const auto& call : bed.CompletedCalls()) {
      if (!call.failed) ++result.clean_teardowns;
    }
    for (const auto& alert : bed.vids()->alerts()) {
      if (alert.classification == ids::kAttackByeDos ||
          alert.classification == ids::kAttackTollFraud) {
        ++result.false_alarms;
      }
    }
  }
  return result;
}

}  // namespace

int main() {
  bench::PrintHeader(
      "TAB-SENS", "detection sensitivity vs timers T1 and T",
      "detection delay governed by the pattern timers; T ~= 1 RTT avoids "
      "false alarms on in-flight RTP (§7.5)");

  std::printf("INVITE flooding: detection delay vs threshold N and window "
              "T1\n(attack rate: 20 INVITE/s toward one phone)\n");
  std::printf("%-8s %-10s %-11s %-14s\n", "N", "T1 (s)", "detected",
              "delay (s)");
  bench::PrintRule();
  for (const int threshold : {3, 5, 10, 20}) {
    for (const double window_s : {0.5, 1.0, 2.0}) {
      const auto result =
          RunFlood(threshold, sim::Duration::FromSeconds(window_s));
      std::printf("%-8d %-10.1f %-11s %-14.3f\n", threshold, window_s,
                  result.detected ? "yes" : "no", result.delay_s);
    }
  }
  std::printf("(delay grows with N/rate; windows shorter than N/rate cannot "
              "accumulate N and miss)\n\n");

  std::printf("BYE DoS: timer T trade-off (cloud RTT ~= 100 ms)\n");
  std::printf("%-10s %-10s %-16s %-18s %-14s\n", "T (ms)", "detected",
              "det. delay (s)", "clean teardowns", "false alarms");
  bench::PrintRule();
  bool crossover_seen_fp = false;
  bool large_t_clean = true;
  for (const int grace_ms : {10, 50, 120, 300, 1000}) {
    const auto grace = sim::Duration::Millis(grace_ms);
    const auto attack = RunByeSweep(grace, /*with_attack=*/true);
    const auto clean = RunByeSweep(grace, /*with_attack=*/false);
    std::printf("%-10d %-10s %-16.3f %-18d %-14d\n", grace_ms,
                attack.attack_detected ? "yes" : "no",
                attack.detection_delay_s, clean.clean_teardowns,
                clean.false_alarms);
    if (grace_ms < 100 && clean.false_alarms > 0) crossover_seen_fp = true;
    if (grace_ms >= 120 && clean.false_alarms > 0) large_t_clean = false;
  }
  std::printf("\nshape check vs paper: T below one RTT false-alarms on "
              "in-flight RTP, T >= RTT is clean -> %s\n",
              (crossover_seen_fp && large_t_clean) ? "OK" : "MISMATCH");
  return 0;
}
