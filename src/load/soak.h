// Soak/churn load harness: proves the IDS's tracked state stays bounded
// under sustained traffic.
//
// The driver synthesizes a long mixed workload against a Vids instance —
// benign calls with Poisson arrivals and exponentially distributed holding
// times, interleaved attack scenarios (BYE DoS, CANCEL DoS, INVITE flood,
// RTP flood, DRDoS reflection), late retransmissions of closed calls, and
// a mid-run pause where arrivals stop entirely (idle state must die with
// zero packets arriving). While the workload runs it samples every tracked
// quantity — CallStateFactBase::MemoryBytes(), each map's cardinality,
// the alert-dedup signature table, the retained alert history — at fixed
// simulated-time intervals; CheckPlateau() then fails the run if any
// quantity kept growing instead of plateauing.
//
// Two drive modes: SoakDriver feeds Vids::Inspect() directly (fast; the
// default for the million-call runs) and RunTapSoak() drives the full
// testbed so the same sampling covers the deployed tap path.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "vids/config.h"

namespace vids::ids {
class Vids;
class ShardedIds;
class TraceLog;
}

namespace vids::load {

struct SoakConfig {
  uint64_t seed = 1;
  /// Benign calls to generate before arrivals stop.
  uint64_t total_calls = 100'000;
  /// Poisson arrival rate of benign calls.
  double calls_per_second = 200.0;
  /// Mean call holding time (exponential, clamped to [1s, 10x mean]).
  sim::Duration mean_hold = sim::Duration::Seconds(30);
  /// RTP packets sent in each direction over a call's lifetime, spread
  /// evenly across the holding time (consecutive seq / +160 timestamps, so
  /// clean traffic never trips the media-spam predicates).
  int rtp_packets_per_call = 16;
  /// Benign callee AORs to spread INVITEs over — keeps the per-destination
  /// benign INVITE rate far below the flood threshold.
  int callee_aors = 500;
  /// Every Nth benign call is chased by one attack burst, rotating through
  /// BYE DoS, CANCEL DoS, INVITE flood, RTP flood and DRDoS reflection.
  /// 0 disables attacks.
  uint64_t attack_every = 200;
  /// Benign caller AORs the clean workload rotates through. The default
  /// (1) keeps the historical single-caller ("alice") stream; the
  /// call-center FP soak spreads the same aggregate rate over many callers
  /// so every per-entity behavior profile stays under threshold.
  int caller_aors = 1;
  /// Behavioral-attack scenario bursts (DESIGN.md §16), scheduled at fixed
  /// simulated times alongside the benign workload; 0 disables. Every
  /// dialog and registration in these bursts is protocol-legal — the spec
  /// machines run them to clean terminal states — so only the per-entity
  /// behavior profiles can raise on them.
  int spit_bursts = 0;        // one caller blasting rapid short calls
  int reg_crack_bursts = 0;   // distributed REGISTER cracking vs one AOR
  int toll_fraud_bursts = 0;  // low-and-slow premium-destination fan-out
  /// Probability that a closed call retransmits its final 200-for-BYE
  /// 2 s later (inside the tombstone TTL: must be dropped silently).
  double late_retransmit_prob = 0.05;
  /// Probability that the retransmission instead arrives *after* the
  /// tombstone expired — worst-case input that re-opens deviant state,
  /// which the idle sweep must then reclaim.
  double post_ttl_retransmit_prob = 0.005;
  /// Arrivals pause for `pause` once this fraction of calls started; with
  /// no packets flowing, only the periodic sweep can reclaim state.
  double pause_at_fraction = 0.5;
  sim::Duration pause = sim::Duration::Seconds(120);
  /// Simulated-time sampling interval.
  sim::Duration sample_every = sim::Duration::Seconds(30);
  /// Cap handed to Vids::set_max_retained_alerts (0 = unlimited).
  size_t max_retained_alerts = 10'000;
  ids::DetectionConfig detection{};
  /// 0 = classic single-threaded drive straight into Vids::Inspect().
  /// N >= 1 routes the same workload through a ShardedIds with N worker
  /// threads; samples then cover the summed shard state plus the
  /// coordinator's router/replay maps.
  int shards = 0;
  /// Per-ring slot count for the sharded engine (ignored when shards == 0).
  size_t ring_capacity = 1024;
  /// Ingest producers for the sharded engine (ignored when shards == 0).
  /// 1 feeds the engine inline as before; N >= 2 routes the workload
  /// through a capture::MpIngest fan-out — the generator thread ingests
  /// claim-carrying SIP on port 0 and round-robins the rest to N-1 feeder
  /// threads. Samples quiesce the feeders first, so the alert stream and
  /// every sampled quantity stay byte-identical to producers == 1.
  int producers = 1;
  /// Pipeline span sampling period handed to ShardedIds (ignored when
  /// shards == 0): 1-in-N ingested packets carries a latency span. The
  /// default matches ShardedConfig; 0 disables sampling so the soak can
  /// also prove the untraced path, and 1 spans every packet.
  uint32_t trace_sample_period = 1024;
  /// When set, every generated datagram is also appended here (with its
  /// feed time and direction) — the capture hook behind the offline
  /// round-trip property tests: a soak run's trace must
  /// Serialize→Parse→ReplayInto to the online run's exact alert list and
  /// metric snapshot. Must outlive the driver. Not owned.
  ids::TraceLog* capture = nullptr;
};

/// One fixed-interval snapshot of everything that must stay bounded.
struct SoakSample {
  sim::Time when;
  uint64_t calls_started = 0;
  uint64_t packets_inspected = 0;
  size_t memory_bytes = 0;   // CallStateFactBase::MemoryBytes()
  size_t calls = 0;          // calls_ cardinality
  size_t keyed = 0;          // keyed_str_ + keyed_bin_
  size_t tombstones = 0;     // tombstones_
  size_t media_index = 0;    // media_index_
  size_t alert_sigs = 0;     // recent_alerts_ (dedup signatures)
  size_t alerts_retained = 0;  // alerts() history after capping
  uint64_t alerts_total = 0;   // "vids.alerts" counter (monotonic)
};

/// Verdict for one tracked quantity. `reference` is its maximum over the
/// 10%..25% stretch of samples (past warmup, well before the end); `peak`
/// is its maximum over the second half. Bounded means peak <= limit where
/// limit = 2*reference + slack — a leak that grows through the whole run
/// fails this even though the post-drain final sample trivially shrinks.
struct PlateauFinding {
  std::string name;
  double reference = 0.0;
  double peak = 0.0;
  double limit = 0.0;
  bool bounded = true;
};

struct SoakReport {
  std::vector<SoakSample> samples;
  uint64_t calls_started = 0;
  uint64_t packets_inspected = 0;
  uint64_t alerts_total = 0;
  std::vector<PlateauFinding> findings;
  bool bounded = true;  // every finding bounded
  /// Wall-clock nanoseconds spent driving the workload (scheduler start to
  /// final pipeline drain) and the resulting ingest throughput. These are
  /// real-time measurements, so they vary with the host; the simulated
  /// samples above do not.
  int64_t wall_ns = 0;
  double packets_per_second = 0.0;

  /// Human-readable sample table + verdicts.
  std::string Summary() const;
  /// Samples as CSV (header + one row per sample).
  std::string Csv() const;
};

/// Screens a sample series for unbounded growth (see PlateauFinding).
/// `max_retained_alerts` adds an absolute-cap finding for the alert
/// history when nonzero. Needs >= 8 samples to judge; with fewer, every
/// finding comes back bounded=false so a too-short run cannot pass.
std::vector<PlateauFinding> CheckPlateau(const std::vector<SoakSample>& samples,
                                         size_t max_retained_alerts = 0);

/// Direct-drive soak: synthesizes the workload as datagrams fed straight
/// into Vids::Inspect() on a private scheduler (config.shards == 0), or
/// into a ShardedIds pipeline with worker threads (config.shards >= 1).
class SoakDriver {
 public:
  explicit SoakDriver(SoakConfig config);
  ~SoakDriver();

  /// Runs the full workload to completion (arrivals, pause, drain) and
  /// returns the sampled report. In sharded mode the engine is flushed and
  /// stopped before this returns.
  SoakReport Run();

  /// The engine under test. vids() is only valid in classic mode
  /// (config.shards == 0); sharded() is null there and set otherwise.
  ids::Vids& vids() { return *vids_; }
  ids::ShardedIds* sharded() { return sharded_.get(); }
  sim::Scheduler& scheduler() { return scheduler_; }

 private:
  struct Impl;
  sim::Scheduler scheduler_;
  std::unique_ptr<ids::Vids> vids_;
  std::unique_ptr<ids::ShardedIds> sharded_;
  std::unique_ptr<Impl> impl_;
};

/// Tap-mode soak: runs the real testbed workload (UAs, proxies, tap) with
/// periodic toolkit attacks for `duration`, sampling the tapped vIDS at
/// the same fixed intervals. Integration-scale (hundreds of calls), not
/// the million-call driver.
SoakReport RunTapSoak(const SoakConfig& config, sim::Duration duration);

}  // namespace vids::load
