#include "load/soak.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>

#include "attacks/toolkit.h"
#include "capture/replay.h"
#include "common/rng.h"
#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"
#include "testbed/testbed.h"
#include "vids/ids.h"
#include "vids/sharded_ids.h"
#include "vids/trace.h"

namespace vids::load {
namespace {

const net::Endpoint kProxyA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kProxyB{net::IpAddress(10, 2, 0, 1), 5060};
const net::Endpoint kAttacker{net::IpAddress(10, 9, 0, 66), 5060};
const net::Endpoint kAttackerMedia{net::IpAddress(10, 9, 0, 66), 41000};

net::Datagram SipDgram(const sip::Message& message, net::Endpoint src,
                       net::Endpoint dst) {
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = message.Serialize();
  dgram.kind = net::PayloadKind::kSip;
  return dgram;
}

net::Datagram RtpDgram(uint32_t ssrc, uint16_t seq, uint32_t ts, bool marker,
                       net::Endpoint src, net::Endpoint dst) {
  rtp::RtpHeader header;
  header.ssrc = ssrc;
  header.sequence_number = seq;
  header.timestamp = ts;
  header.marker = marker;
  header.payload_type = 18;  // G.729, the testbed codec
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = header.Serialize();
  dgram.kind = net::PayloadKind::kRtp;
  return dgram;
}

sip::Message MakeInvite(const std::string& call_id,
                        const std::string& callee_user,
                        net::Endpoint caller_media, net::Endpoint src,
                        const std::string& caller_user = "alice",
                        const std::string& user_agent = {}) {
  auto invite = sip::Message::MakeRequest(
      sip::Method::kInvite,
      *sip::SipUri::Parse("sip:" + callee_user + "@b.example.com"));
  sip::Via via;
  via.sent_by = src;
  via.branch = "z9hG4bK" + call_id;
  invite.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:" + caller_user + "@a.example.com");
  from.SetTag("tag-" + call_id);
  invite.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:" + callee_user + "@b.example.com");
  invite.SetTo(to);
  invite.SetCallId(call_id);
  invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
  if (!user_agent.empty()) invite.SetHeader("User-Agent", user_agent);
  invite.SetBody(sdp::MakeAudioOffer(caller_media).Serialize(),
                 "application/sdp");
  return invite;
}

sip::Message MakeResponse(const sip::Message& request, int status,
                          std::optional<net::Endpoint> answer_media) {
  auto response = sip::Message::MakeResponse(status);
  for (const auto via : request.Headers("Via")) {
    response.AddHeader("Via", via);
  }
  response.SetFrom(*request.From());
  auto to = *request.To();
  to.SetTag("tag-callee");
  response.SetTo(to);
  response.SetCallId(std::string(*request.CallId()));
  response.SetCseq(*request.Cseq());
  if (answer_media) {
    response.SetBody(sdp::MakeAudioOffer(*answer_media).Serialize(),
                     "application/sdp");
  }
  return response;
}

sip::Message MakeInDialog(sip::Method method, const std::string& call_id,
                          uint32_t cseq, net::Endpoint via_sentby,
                          const std::string& caller_user = "alice") {
  auto request = sip::Message::MakeRequest(
      method, *sip::SipUri::Parse("sip:bob@b.example.com"));
  sip::Via via;
  via.sent_by = via_sentby;
  via.branch = "z9hG4bK" + std::string(sip::MethodName(method)) + call_id;
  request.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:" + caller_user + "@a.example.com");
  from.SetTag("tag-" + call_id);
  request.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:bob@b.example.com");
  to.SetTag("tag-callee");
  request.SetTo(to);
  request.SetCallId(call_id);
  request.SetCseq(sip::CSeq{cseq, method});
  return request;
}

// REGISTER for `target_user`'s account. From == To == the account AOR (no
// To tag), as a real registration; the behavior layer profiles the To AOR
// and reads the *response's* destination as the registering source.
sip::Message MakeRegister(const std::string& call_id,
                          const std::string& target_user, net::Endpoint src) {
  auto reg = sip::Message::MakeRequest(
      sip::Method::kRegister, *sip::SipUri::Parse("sip:b.example.com"));
  sip::Via via;
  via.sent_by = src;
  via.branch = "z9hG4bKreg" + call_id;
  reg.PushVia(via);
  sip::NameAddr aor;
  aor.uri = *sip::SipUri::Parse("sip:" + target_user + "@b.example.com");
  auto from = aor;
  from.SetTag("tag-" + call_id);
  reg.SetFrom(from);
  reg.SetTo(aor);
  reg.SetCallId(call_id);
  reg.SetCseq(sip::CSeq{1, sip::Method::kRegister});
  return reg;
}

SoakSample Snapshot(ids::Vids& vids, sim::Time when, uint64_t calls_started,
                    uint64_t packets) {
  SoakSample s;
  s.when = when;
  s.calls_started = calls_started;
  s.packets_inspected = packets;
  const auto& fb = vids.fact_base();
  s.memory_bytes = fb.MemoryBytes();
  s.calls = fb.call_count();
  s.keyed = fb.keyed_count();
  s.tombstones = fb.tombstone_count();
  s.media_index = fb.media_index_count();
  s.alert_sigs = vids.alert_sig_count();
  s.alerts_retained = vids.alerts().size();
  s.alerts_total = vids.metrics().GetCounter("vids.alerts").value();
  return s;
}

// Sharded-mode snapshot. Caller must have flushed the engine: shard state
// is only coherent (and data-race-free) behind the Flush barrier.
SoakSample Snapshot(ids::ShardedIds& engine, sim::Time when,
                    uint64_t calls_started, uint64_t packets) {
  SoakSample s;
  s.when = when;
  s.calls_started = calls_started;
  s.packets_inspected = packets;
  s.memory_bytes = engine.MemoryBytes();
  for (int i = 0; i < engine.shards(); ++i) {
    const auto& vids = engine.shard_vids(i);
    const auto& fb = vids.fact_base();
    s.calls += fb.call_count();
    s.keyed += fb.keyed_count();
    s.tombstones += fb.tombstone_count();
    s.media_index += fb.media_index_count();
    s.alert_sigs += vids.alert_sig_count();
  }
  // The coordinator replays the aggregate (flood/DRDoS) alerts itself;
  // those never touch any shard's "vids.alerts" counter.
  auto merged = engine.MergedMetrics();
  s.alerts_total = merged.GetCounter("vids.alerts").value() +
                   merged.GetCounter("sharded.coord_alerts").value();
  s.alerts_retained = engine.alerts().size();
  return s;
}

}  // namespace

// ------------------------------------------------------ plateau screening

namespace {

struct Tracked {
  const char* name;
  double slack;  // absolute headroom so tiny counts don't trip the ratio
  double (*get)(const SoakSample&);
};

constexpr Tracked kTracked[] = {
    {"memory_bytes", 128.0 * 1024,
     [](const SoakSample& s) { return static_cast<double>(s.memory_bytes); }},
    {"calls", 32.0,
     [](const SoakSample& s) { return static_cast<double>(s.calls); }},
    {"keyed", 32.0,
     [](const SoakSample& s) { return static_cast<double>(s.keyed); }},
    {"tombstones", 32.0,
     [](const SoakSample& s) { return static_cast<double>(s.tombstones); }},
    {"media_index", 32.0,
     [](const SoakSample& s) { return static_cast<double>(s.media_index); }},
    {"alert_sigs", 32.0,
     [](const SoakSample& s) { return static_cast<double>(s.alert_sigs); }},
};

}  // namespace

std::vector<PlateauFinding> CheckPlateau(const std::vector<SoakSample>& samples,
                                         size_t max_retained_alerts) {
  std::vector<PlateauFinding> findings;
  const size_t n = samples.size();
  const bool enough = n >= 8;
  for (const Tracked& tracked : kTracked) {
    PlateauFinding f;
    f.name = tracked.name;
    if (!enough) {
      f.bounded = false;  // too short to judge: refuse to pass
      findings.push_back(std::move(f));
      continue;
    }
    // Reference window: past warmup, long before the end. A leak that
    // grows for the whole run is >= 4x its own 10%-25% stretch at the
    // second-half peak, so the 2x limit catches it with margin.
    const size_t ref_lo = std::max<size_t>(1, n / 10);
    const size_t ref_hi = std::max(ref_lo + 1, n / 4);
    for (size_t i = ref_lo; i < ref_hi; ++i) {
      f.reference = std::max(f.reference, tracked.get(samples[i]));
    }
    for (size_t i = n / 2; i < n; ++i) {
      f.peak = std::max(f.peak, tracked.get(samples[i]));
    }
    f.limit = 2.0 * f.reference + tracked.slack;
    f.bounded = f.peak <= f.limit;
    findings.push_back(std::move(f));
  }
  if (max_retained_alerts != 0) {
    // The alert history is gated by its absolute cap, not the plateau
    // ratio: it legitimately accumulates until the cap halves it.
    PlateauFinding f;
    f.name = "alerts_retained";
    f.limit = static_cast<double>(max_retained_alerts);
    f.reference = f.limit;
    for (const SoakSample& s : samples) {
      f.peak = std::max(f.peak, static_cast<double>(s.alerts_retained));
    }
    f.bounded = enough && f.peak <= f.limit;
    findings.push_back(std::move(f));
  }
  return findings;
}

std::string SoakReport::Summary() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "%10s %12s %10s %8s %8s %8s %8s %8s %10s\n", "t(s)",
                "started", "mem(KB)", "calls", "keyed", "tombs", "media",
                "sigs", "alerts");
  out += line;
  for (const SoakSample& s : samples) {
    std::snprintf(line, sizeof(line),
                  "%10.0f %12llu %10.1f %8zu %8zu %8zu %8zu %8zu %10llu\n",
                  s.when.ToSeconds(),
                  static_cast<unsigned long long>(s.calls_started),
                  static_cast<double>(s.memory_bytes) / 1024.0, s.calls,
                  s.keyed, s.tombstones, s.media_index, s.alert_sigs,
                  static_cast<unsigned long long>(s.alerts_total));
    out += line;
  }
  for (const PlateauFinding& f : findings) {
    std::snprintf(line, sizeof(line),
                  "%s %-16s reference %.0f, second-half peak %.0f "
                  "(limit %.0f)\n",
                  f.bounded ? "BOUNDED  " : "UNBOUNDED", f.name.c_str(),
                  f.reference, f.peak, f.limit);
    out += line;
  }
  return out;
}

std::string SoakReport::Csv() const {
  std::string out =
      "t_s,calls_started,packets,memory_bytes,calls,keyed,tombstones,"
      "media_index,alert_sigs,alerts_retained,alerts_total\n";
  char line[256];
  for (const SoakSample& s : samples) {
    std::snprintf(line, sizeof(line),
                  "%.3f,%llu,%llu,%zu,%zu,%zu,%zu,%zu,%zu,%zu,%llu\n",
                  s.when.ToSeconds(),
                  static_cast<unsigned long long>(s.calls_started),
                  static_cast<unsigned long long>(s.packets_inspected),
                  s.memory_bytes, s.calls, s.keyed, s.tombstones,
                  s.media_index, s.alert_sigs, s.alerts_retained,
                  static_cast<unsigned long long>(s.alerts_total));
    out += line;
  }
  return out;
}

// --------------------------------------------------------- direct driver

struct SoakDriver::Impl {
  // One benign call in flight: identity, media addressing and the RTP
  // stream positions for both directions.
  struct CallCtx {
    std::string call_id;
    std::string caller_user;
    net::Endpoint caller_media;
    net::Endpoint callee_media;
    uint32_t ssrc = 0;
    uint16_t seq_out = 0;  // caller -> callee
    uint16_t seq_in = 0;   // callee -> caller
    int ticks_left = 0;
    sim::Duration spacing;
  };

  Impl(SoakConfig cfg, sim::Scheduler& sch, ids::Vids* ids,
       ids::ShardedIds* sharded_ids)
      : config(std::move(cfg)),
        scheduler(sch),
        vids(ids),
        sharded(sharded_ids),
        rng(config.seed, "soak") {
    if (sharded != nullptr && config.producers > 1) {
      mp = std::make_unique<capture::MpIngest>(*sharded, config.producers);
    }
  }

  void Feed(const net::Datagram& dgram, bool from_outside) {
    if (config.capture != nullptr) {
      config.capture->Append(scheduler.Now(), dgram, from_outside);
    }
    if (mp != nullptr) {
      mp->Ingest(dgram, from_outside, scheduler.Now());
    } else if (sharded != nullptr) {
      sharded->Ingest(dgram, from_outside, scheduler.Now());
    } else {
      vids->Inspect(dgram, from_outside);
    }
    ++packets;
  }

  void ScheduleNextArrival() {
    if (started >= config.total_calls) {
      arrivals_done = true;
      return;
    }
    const double rate = std::max(0.001, config.calls_per_second);
    sim::Duration delay =
        sim::Duration::FromSeconds(rng.NextExponential(1.0 / rate));
    if (!paused_yet &&
        static_cast<double>(started) >=
            config.pause_at_fraction *
                static_cast<double>(config.total_calls)) {
      delay += config.pause;  // mid-run silence: arrivals stop entirely
      paused_yet = true;
    }
    scheduler.ScheduleAfter(delay, [this] {
      const uint64_t index = started++;
      StartCall(index);
      if (config.attack_every != 0 &&
          index % config.attack_every == config.attack_every - 1) {
        LaunchAttackBurst(attack_bursts++, index);
      }
      ScheduleNextArrival();
    });
  }

  void StartCall(uint64_t index) {
    auto ctx = std::make_shared<CallCtx>();
    ctx->call_id = "soak-" + std::to_string(index) + "@load";
    // Unique media endpoints cycling over a space far larger than the
    // concurrency, so live calls never collide on an endpoint.
    ctx->caller_media =
        net::Endpoint{net::IpAddress(10, 1, 0, 10),
                      static_cast<uint16_t>(10000 + (index % 27000) * 2)};
    ctx->callee_media =
        net::Endpoint{net::IpAddress(10, 2, 0, 10),
                      static_cast<uint16_t>(10001 + (index % 27000) * 2)};
    ctx->ssrc = 0x50000000u + static_cast<uint32_t>(index);
    const std::string callee_user =
        "u" + std::to_string(index % std::max(1, config.callee_aors));
    // Call-center mode: rotate the caller identity so each per-caller
    // behavior profile carries only 1/caller_aors of the aggregate rate.
    ctx->caller_user =
        config.caller_aors <= 1
            ? "alice"
            : "cc" + std::to_string(index % static_cast<uint64_t>(
                                                config.caller_aors));

    const auto invite = MakeInvite(ctx->call_id, callee_user,
                                   ctx->caller_media, kProxyA,
                                   ctx->caller_user);
    Feed(SipDgram(invite, kProxyA, kProxyB), true);
    Feed(SipDgram(MakeResponse(invite, 180, std::nullopt), kProxyB, kProxyA),
         false);
    Feed(SipDgram(MakeResponse(invite, 200, ctx->callee_media), kProxyB,
                  kProxyA),
         false);
    Feed(SipDgram(MakeInDialog(sip::Method::kAck, ctx->call_id, 1,
                               ctx->caller_media, ctx->caller_user),
                  ctx->caller_media, ctx->callee_media),
         true);

    const double hold_s = std::clamp(
        rng.NextExponential(config.mean_hold.ToSeconds()), 1.0,
        10.0 * config.mean_hold.ToSeconds());
    const sim::Duration hold = sim::Duration::FromSeconds(hold_s);
    ctx->ticks_left = std::max(2, config.rtp_packets_per_call);
    ctx->spacing = hold / ctx->ticks_left;
    scheduler.ScheduleAfter(ctx->spacing, [this, ctx] { MediaTick(ctx); });
    scheduler.ScheduleAfter(hold, [this, ctx] { Teardown(*ctx); });
  }

  void MediaTick(const std::shared_ptr<CallCtx>& ctx) {
    // One clean packet each way: same SSRC, consecutive sequence numbers,
    // +160 timestamps — benign media must never trip the spam predicates.
    const bool first = ctx->seq_out == 0;
    ++ctx->seq_out;
    ++ctx->seq_in;
    Feed(RtpDgram(ctx->ssrc, ctx->seq_out, 160u * ctx->seq_out, first,
                  ctx->caller_media, ctx->callee_media),
         true);
    Feed(RtpDgram(ctx->ssrc + 1, ctx->seq_in, 160u * ctx->seq_in, first,
                  ctx->callee_media, ctx->caller_media),
         false);
    if (--ctx->ticks_left > 0) {
      scheduler.ScheduleAfter(ctx->spacing, [this, ctx] { MediaTick(ctx); });
    }
  }

  void Teardown(const CallCtx& ctx) {
    const auto bye = MakeInDialog(sip::Method::kBye, ctx.call_id, 2,
                                  ctx.caller_media, ctx.caller_user);
    Feed(SipDgram(bye, ctx.caller_media, ctx.callee_media), true);
    const auto ok = MakeResponse(bye, 200, std::nullopt);
    Feed(SipDgram(ok, ctx.callee_media, ctx.caller_media), false);

    // Late retransmission of the final 200: inside the tombstone TTL it
    // must be dropped silently; past the TTL it re-opens deviant state
    // that only the idle sweep can reclaim.
    const double draw = rng.NextDouble();
    sim::Duration late;
    if (draw < config.post_ttl_retransmit_prob) {
      late = config.detection.tombstone_ttl + sim::Duration::Seconds(2);
    } else if (draw < config.late_retransmit_prob) {
      late = sim::Duration::Seconds(2);
    } else {
      return;
    }
    auto dgram = SipDgram(ok, ctx.callee_media, ctx.caller_media);
    scheduler.ScheduleAfter(late, [this, dgram = std::move(dgram)] {
      Feed(dgram, false);
    });
  }

  void LaunchAttackBurst(uint64_t burst, uint64_t call_index) {
    const auto& detection = config.detection;
    switch (burst % 5) {
      case 0: {  // BYE DoS against the call that just opened
        const std::string call_id =
            "soak-" + std::to_string(call_index) + "@load";
        const auto bye =
            MakeInDialog(sip::Method::kBye, call_id, 9, kAttacker);
        Feed(SipDgram(bye, kAttacker, kProxyB), true);
        Feed(SipDgram(MakeResponse(bye, 200, std::nullopt), kProxyB,
                      kAttacker),
             false);
        break;
      }
      case 1: {  // CANCEL DoS: INVITE answered by a foreign-source CANCEL
        const std::string call_id = "atk-cancel-" + std::to_string(burst);
        const auto invite = MakeInvite(
            call_id, "carol",
            net::Endpoint{net::IpAddress(10, 1, 0, 20), 22000}, kProxyA);
        Feed(SipDgram(invite, kProxyA, kProxyB), true);
        Feed(SipDgram(MakeResponse(invite, 180, std::nullopt), kProxyB,
                      kProxyA),
             false);
        auto cancel = sip::Message::MakeRequest(
            sip::Method::kCancel,
            *sip::SipUri::Parse("sip:carol@b.example.com"));
        for (const auto via : invite.Headers("Via")) {
          cancel.AddHeader("Via", via);  // matches the pending transaction
        }
        cancel.SetFrom(*invite.From());
        cancel.SetTo(*invite.To());
        cancel.SetCallId(call_id);
        cancel.SetCseq(sip::CSeq{1, sip::Method::kCancel});
        Feed(SipDgram(cancel, kAttacker, kProxyB), true);
        break;
      }
      case 2: {  // INVITE flood at a rotating target AOR
        const std::string target =
            "floodee" + std::to_string(burst % 8);
        for (int k = 0; k <= detection.invite_flood_threshold + 1; ++k) {
          const std::string call_id =
              "atk-flood-" + std::to_string(burst) + "-" + std::to_string(k);
          Feed(SipDgram(MakeInvite(call_id, target,
                                   net::Endpoint{kAttacker.ip, 42000},
                                   kAttacker),
                        kAttacker, kProxyB),
               true);
        }
        break;
      }
      case 3: {  // RTP flood at a rotating victim endpoint
        const net::Endpoint victim{
            net::IpAddress(10, 2, 9, static_cast<uint8_t>(1 + burst % 8)),
            40000};
        for (int k = 0; k <= detection.rtp_flood_threshold + 10; ++k) {
          Feed(RtpDgram(0xF100Du, static_cast<uint16_t>(k), 160u * k,
                        k == 0, kAttackerMedia, victim),
               true);
        }
        break;
      }
      default: {  // DRDoS reflection: unsolicited responses at a victim
        const net::Endpoint victim{
            net::IpAddress(10, 9, static_cast<uint8_t>(1 + burst % 8), 77),
            5060};
        const auto probe = MakeInvite(
            "refl-probe", "victim",
            net::Endpoint{net::IpAddress(10, 1, 0, 30), 23000}, kProxyB);
        for (int k = 0; k <= detection.drdos_threshold + 1; ++k) {
          auto response = MakeResponse(probe, 200, std::nullopt);
          response.SetCallId("refl-" + std::to_string(burst) + "-" +
                             std::to_string(k));
          Feed(SipDgram(response, kProxyB, victim), false);
        }
        break;
      }
    }
  }

  // ---------------- behavioral-attack scenarios (DESIGN.md §16) ----------
  // Fixed simulated-time schedules, independent of the Poisson benign
  // stream, so every run (and every shard/producer count fed the same
  // stream) sees the identical packet sequence. Burst sizes are sized to
  // cross the default BehaviorConfig thresholds with margin while staying
  // inside the engine's fixed distinct-slot rings.
  static constexpr int kSpitCallsPerBurst = 40;       // rate 15/10s crossed
  static constexpr int kRegCrackAttemptsPerBurst = 30;  // failures 8/30s
  static constexpr int kTollFraudCallsPerBurst = 25;    // fanout 16/60s

  void ScheduleScenarios() {
    for (int b = 0; b < config.spit_bursts; ++b) {
      const auto base = sim::Duration::Seconds(2 + 45 * b);
      for (int k = 0; k < kSpitCallsPerBurst; ++k) {
        scheduler.ScheduleAfter(base + sim::Duration::Millis(150) * k,
                                [this, b, k] { LaunchSpitCall(b, k); });
      }
    }
    for (int b = 0; b < config.reg_crack_bursts; ++b) {
      const auto base = sim::Duration::Seconds(10 + 60 * b);
      for (int k = 0; k < kRegCrackAttemptsPerBurst; ++k) {
        scheduler.ScheduleAfter(base + sim::Duration::Millis(300) * k,
                                [this, b, k] { LaunchRegCrackAttempt(b, k); });
      }
    }
    for (int b = 0; b < config.toll_fraud_bursts; ++b) {
      const auto base = sim::Duration::Seconds(20 + 120 * b);
      for (int k = 0; k < kTollFraudCallsPerBurst; ++k) {
        scheduler.ScheduleAfter(base + sim::Duration::Seconds(2) * k,
                                [this, b, k] { LaunchTollFraudCall(b, k); });
      }
    }
  }

  /// One full clean dialog (INVITE/180/200/ACK now, BYE/200 after `hold`)
  /// from a scenario caller. Protocol-legal by construction.
  void ScenarioCall(const std::string& caller, const std::string& callee,
                    const std::string& call_id, const std::string& ua,
                    net::Endpoint caller_media, net::Endpoint callee_media,
                    sim::Duration hold) {
    const auto invite =
        MakeInvite(call_id, callee, caller_media, kAttacker, caller, ua);
    Feed(SipDgram(invite, kAttacker, kProxyB), true);
    Feed(SipDgram(MakeResponse(invite, 180, std::nullopt), kProxyB, kAttacker),
         false);
    Feed(SipDgram(MakeResponse(invite, 200, callee_media), kProxyB, kAttacker),
         false);
    Feed(SipDgram(MakeInDialog(sip::Method::kAck, call_id, 1, caller_media,
                               caller),
                  caller_media, callee_media),
         true);
    scheduler.ScheduleAfter(
        hold, [this, call_id, caller, caller_media, callee_media] {
          const auto bye = MakeInDialog(sip::Method::kBye, call_id, 2,
                                        caller_media, caller);
          Feed(SipDgram(bye, caller_media, callee_media), true);
          Feed(SipDgram(MakeResponse(bye, 200, std::nullopt), callee_media,
                        caller_media),
               false);
        });
  }

  // SPIT: one spitter blasting short calls at distinct victims, 150 ms
  // apart — the 10 s call-rate window fills past its threshold within
  // ~2.6 s and the 1 s holds feed the short-call counter as well.
  void LaunchSpitCall(int b, int k) {
    ScenarioCall(
        "spitter" + std::to_string(b), "spit-victim-" + std::to_string(k),
        "spit-" + std::to_string(b) + "-" + std::to_string(k) + "@load",
        "spitware/1.0",
        net::Endpoint{kAttacker.ip, static_cast<uint16_t>(43000 + 2 * k)},
        net::Endpoint{net::IpAddress(10, 2, 0, 10),
                      static_cast<uint16_t>(43001 + 2 * k)},
        sim::Duration::Seconds(1));
  }

  // Toll fraud, low and slow: 2 s between calls keeps every short-window
  // rate far under threshold; only the 60 s destination fan-out window
  // accumulates the distinct premium AORs.
  void LaunchTollFraudCall(int b, int k) {
    ScenarioCall(
        "fraudster" + std::to_string(b), "premium-" + std::to_string(k),
        "fraud-" + std::to_string(b) + "-" + std::to_string(k) + "@load",
        "fraudster-phone/2.1",
        net::Endpoint{kAttacker.ip, static_cast<uint16_t>(45000 + 2 * k)},
        net::Endpoint{net::IpAddress(10, 2, 0, 10),
                      static_cast<uint16_t>(45001 + 2 * k)},
        sim::Duration::Seconds(5));
  }

  // Distributed registration cracking: every attempt is a clean REGISTER /
  // 401 exchange in its own dialog-less transaction, each from a different
  // source address against the same account.
  void LaunchRegCrackAttempt(int b, int k) {
    const std::string call_id =
        "crack-" + std::to_string(b) + "-" + std::to_string(k) + "@load";
    const net::Endpoint source{
        net::IpAddress(10, 9, static_cast<uint8_t>(100 + b % 100),
                       static_cast<uint8_t>(1 + k)),
        5060};
    const auto reg =
        MakeRegister(call_id, "reg-victim-" + std::to_string(b), source);
    Feed(SipDgram(reg, source, kProxyB), true);
    Feed(SipDgram(MakeResponse(reg, 401, std::nullopt), kProxyB, source),
         false);
  }

  size_t TrackedState() const {
    if (sharded != nullptr) return sharded->TrackedState();
    const auto& fb = vids->fact_base();
    return fb.call_count() + fb.keyed_count() + fb.tombstone_count() +
           fb.media_index_count();
  }

  void TakeSample() {
    if (sharded != nullptr) {
      // Barrier first: shard state may only be read once every in-flight
      // packet is processed and the shard clocks have caught up to now.
      // With live feeder threads the ports must also be quiescent before
      // Flush may touch them.
      if (mp != nullptr) mp->Quiesce();
      sharded->Flush(scheduler.Now());
      samples.push_back(Snapshot(*sharded, scheduler.Now(), started, packets));
      if (mp != nullptr) mp->Resume();
    } else {
      samples.push_back(Snapshot(*vids, scheduler.Now(), started, packets));
    }
  }

  void ArmSampler() {
    scheduler.ScheduleAfter(config.sample_every, [this] {
      TakeSample();
      // Keep sampling while traffic or state remains; once both are gone
      // the scheduler drains and Run() takes the final post-drain sample.
      if (!arrivals_done || TrackedState() > 0) ArmSampler();
    });
  }

  SoakConfig config;
  sim::Scheduler& scheduler;
  ids::Vids* vids;
  ids::ShardedIds* sharded;
  std::unique_ptr<capture::MpIngest> mp;  // set iff sharded && producers > 1
  common::Stream rng;
  uint64_t started = 0;
  uint64_t packets = 0;
  uint64_t attack_bursts = 0;
  bool paused_yet = false;
  bool arrivals_done = false;
  std::vector<SoakSample> samples;
};

SoakDriver::SoakDriver(SoakConfig config) {
  if (config.shards > 0) {
    ids::ShardedConfig sharded;
    sharded.shards = config.shards;
    sharded.producers = std::max(1, config.producers);
    sharded.ring_capacity = config.ring_capacity;
    sharded.detection = config.detection;
    sharded.max_retained_alerts = config.max_retained_alerts;
    sharded.trace_sample_period = config.trace_sample_period;
    sharded_ = std::make_unique<ids::ShardedIds>(sharded);
  } else {
    vids_ = std::make_unique<ids::Vids>(scheduler_, config.detection);
    vids_->set_max_retained_alerts(config.max_retained_alerts);
  }
  impl_ = std::make_unique<Impl>(std::move(config), scheduler_, vids_.get(),
                                 sharded_.get());
}

SoakDriver::~SoakDriver() = default;

SoakReport SoakDriver::Run() {
  impl_->TakeSample();  // t=0 baseline
  impl_->ScheduleNextArrival();
  impl_->ScheduleScenarios();
  impl_->ArmSampler();
  const auto wall_start = std::chrono::steady_clock::now();
  scheduler_.Run();     // drains arrivals, pause, teardowns and reclamation
  if (impl_->mp) impl_->mp->Finish();  // join feeders before the barrier
  if (sharded_) sharded_->Flush(scheduler_.Now());  // drain the pipeline too
  const auto wall_end = std::chrono::steady_clock::now();
  impl_->TakeSample();  // post-drain
  SoakReport report;
  report.samples = impl_->samples;
  report.calls_started = impl_->started;
  report.packets_inspected = impl_->packets;
  report.alerts_total = report.samples.back().alerts_total;
  report.wall_ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                       wall_end - wall_start)
                       .count();
  if (report.wall_ns > 0) {
    report.packets_per_second = static_cast<double>(report.packets_inspected) *
                                1e9 / static_cast<double>(report.wall_ns);
  }
  report.findings =
      CheckPlateau(report.samples, impl_->config.max_retained_alerts);
  for (const PlateauFinding& f : report.findings) {
    report.bounded = report.bounded && f.bounded;
  }
  if (sharded_) sharded_->Stop();
  return report;
}

// ------------------------------------------------------------- tap soak

SoakReport RunTapSoak(const SoakConfig& config, sim::Duration duration) {
  testbed::TestbedConfig tb;
  tb.seed = config.seed;
  tb.detection = config.detection;
  testbed::Testbed bed(tb);
  bed.vids()->set_max_retained_alerts(config.max_retained_alerts);

  testbed::WorkloadConfig workload;
  workload.mean_intercall = sim::Duration::FromSeconds(
      tb.uas_per_network / std::max(0.1, config.calls_per_second));
  workload.mean_duration = config.mean_hold;
  bed.StartWorkload(workload);

  std::vector<SoakSample> samples;
  auto& scheduler = bed.scheduler();
  auto sample = [&] {
    samples.push_back(Snapshot(*bed.vids(), scheduler.Now(),
                               bed.eavesdropper().calls_seen(),
                               bed.vids()->stats().packets));
  };
  sample();
  const int64_t sample_count =
      duration.nanos() / std::max<int64_t>(1, config.sample_every.nanos());
  for (int64_t k = 1; k <= sample_count; ++k) {
    scheduler.ScheduleAt(scheduler.Now() + config.sample_every * k,
                         [&sample] { sample(); });
  }

  // Periodic toolkit attacks through the real tap.
  const sim::Duration attack_period = sim::Duration::Seconds(15);
  for (int64_t k = 1; k * attack_period.nanos() < duration.nanos(); ++k) {
    scheduler.ScheduleAt(
        scheduler.Now() + attack_period * k, [&bed, &config, k] {
          auto& toolkit = bed.attacker();
          const auto& detection = config.detection;
          switch (k % 3) {
            case 0:
              toolkit.LaunchInviteFlood(
                  *sip::SipUri::Parse("sip:soakee@b.example.com"),
                  bed.proxy_b_endpoint(),
                  detection.invite_flood_threshold + 2,
                  sim::Duration::Millis(50));
              break;
            case 1:
              toolkit.LaunchDrdosReflection(
                  net::Endpoint{net::IpAddress(10, 9, 3, 77), 5060},
                  bed.proxy_b_endpoint(), detection.drdos_threshold + 2,
                  sim::Duration::Millis(100));
              break;
            default:
              if (auto call = bed.eavesdropper().LatestAnswered()) {
                toolkit.SendSpoofedBye(*call, /*spoof_ip=*/true);
              }
              break;
          }
        });
  }

  bed.RunUntil(scheduler.Now() + duration);

  SoakReport report;
  report.samples = std::move(samples);
  report.calls_started = bed.eavesdropper().calls_seen();
  report.packets_inspected = bed.vids()->stats().packets;
  report.alerts_total =
      bed.vids()->metrics().GetCounter("vids.alerts").value();
  report.findings =
      CheckPlateau(report.samples, config.max_retained_alerts);
  for (const PlateauFinding& f : report.findings) {
    report.bounded = report.bounded && f.bounded;
  }
  return report;
}

}  // namespace vids::load
