#include "rtp/rtcp.h"

namespace vids::rtp {

namespace {

void PutU16(std::string& out, uint16_t v) {
  out += static_cast<char>(v >> 8);
  out += static_cast<char>(v & 0xFF);
}
void PutU32(std::string& out, uint32_t v) {
  PutU16(out, static_cast<uint16_t>(v >> 16));
  PutU16(out, static_cast<uint16_t>(v & 0xFFFF));
}
void PutU64(std::string& out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v >> 32));
  PutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFF));
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}
  bool Ok(size_t n) const { return pos_ + n <= data_.size(); }
  uint8_t U8() { return static_cast<uint8_t>(data_[pos_++]); }
  uint16_t U16() {
    const uint16_t hi = U8();
    return static_cast<uint16_t>((hi << 8) | U8());
  }
  uint32_t U32() {
    const uint32_t hi = U16();
    return (hi << 16) | U16();
  }
  uint64_t U64() {
    const uint64_t hi = U32();
    return (hi << 32) | U32();
  }
  std::string_view Bytes(size_t n) {
    const auto out = data_.substr(pos_, n);
    pos_ += n;
    return out;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// Common header: V=2|P|count(5) , PT(8) , length in 32-bit words - 1.
void PutHeader(std::string& out, uint8_t count, RtcpType type,
               size_t body_bytes) {
  out += static_cast<char>(0x80 | (count & 0x1F));
  out += static_cast<char>(type);
  PutU16(out, static_cast<uint16_t>((body_bytes + 4) / 4 - 1));
}

void PutReportBlock(std::string& out, const ReportBlock& block) {
  PutU32(out, block.ssrc);
  out += static_cast<char>(block.fraction_lost);
  out += static_cast<char>((block.cumulative_lost >> 16) & 0xFF);
  out += static_cast<char>((block.cumulative_lost >> 8) & 0xFF);
  out += static_cast<char>(block.cumulative_lost & 0xFF);
  PutU32(out, block.highest_seq);
  PutU32(out, block.jitter);
  PutU32(out, 0);  // LSR (unused in the simulation)
  PutU32(out, 0);  // DLSR
}

ReportBlock ReadReportBlock(Reader& reader) {
  ReportBlock block;
  block.ssrc = reader.U32();
  block.fraction_lost = reader.U8();
  block.cumulative_lost = (static_cast<uint32_t>(reader.U8()) << 16) |
                          (static_cast<uint32_t>(reader.U8()) << 8) |
                          reader.U8();
  block.highest_seq = reader.U32();
  block.jitter = reader.U32();
  reader.U32();  // LSR
  reader.U32();  // DLSR
  return block;
}

}  // namespace

std::string SenderReport::Serialize() const {
  std::string out;
  const size_t body = 24 + reports.size() * 24;
  PutHeader(out, static_cast<uint8_t>(reports.size()),
            RtcpType::kSenderReport, body);
  PutU32(out, sender_ssrc);
  PutU64(out, ntp_timestamp);
  PutU32(out, rtp_timestamp);
  PutU32(out, packet_count);
  PutU32(out, octet_count);
  for (const auto& block : reports) PutReportBlock(out, block);
  return out;
}

std::string ReceiverReport::Serialize() const {
  std::string out;
  const size_t body = 4 + reports.size() * 24;
  PutHeader(out, static_cast<uint8_t>(reports.size()),
            RtcpType::kReceiverReport, body);
  PutU32(out, sender_ssrc);
  for (const auto& block : reports) PutReportBlock(out, block);
  return out;
}

std::string RtcpBye::Serialize() const {
  std::string out;
  // Reason is padded to a word boundary, prefixed by its length byte.
  size_t reason_bytes = 0;
  if (!reason.empty()) {
    reason_bytes = (1 + reason.size() + 3) / 4 * 4;
  }
  const size_t body = ssrcs.size() * 4 + reason_bytes;
  PutHeader(out, static_cast<uint8_t>(ssrcs.size()), RtcpType::kBye, body);
  for (const auto ssrc : ssrcs) PutU32(out, ssrc);
  if (!reason.empty()) {
    out += static_cast<char>(reason.size());
    out += reason;
    while (out.size() % 4 != 0) out += '\0';
  }
  return out;
}

bool LooksLikeRtcp(std::string_view data) {
  if (data.size() < 4) return false;
  const auto byte0 = static_cast<uint8_t>(data[0]);
  const auto byte1 = static_cast<uint8_t>(data[1]);
  return (byte0 >> 6) == 2 && byte1 >= 200 && byte1 <= 204;
}

std::optional<RtcpPacket> ParseRtcp(std::string_view data) {
  if (!LooksLikeRtcp(data)) return std::nullopt;
  Reader reader(data);
  if (!reader.Ok(4)) return std::nullopt;
  const uint8_t byte0 = reader.U8();
  const uint8_t count = byte0 & 0x1F;
  const uint8_t packet_type = reader.U8();
  const uint16_t length_words = reader.U16();
  const size_t body_bytes = static_cast<size_t>(length_words) * 4;
  if (!reader.Ok(body_bytes)) return std::nullopt;

  RtcpPacket packet;
  switch (packet_type) {
    case 200: {
      if (body_bytes < 24 + count * 24u) return std::nullopt;
      SenderReport sr;
      sr.sender_ssrc = reader.U32();
      sr.ntp_timestamp = reader.U64();
      sr.rtp_timestamp = reader.U32();
      sr.packet_count = reader.U32();
      sr.octet_count = reader.U32();
      for (int i = 0; i < count; ++i) sr.reports.push_back(ReadReportBlock(reader));
      packet.sr = std::move(sr);
      return packet;
    }
    case 201: {
      if (body_bytes < 4 + count * 24u) return std::nullopt;
      ReceiverReport rr;
      rr.sender_ssrc = reader.U32();
      for (int i = 0; i < count; ++i) rr.reports.push_back(ReadReportBlock(reader));
      packet.rr = std::move(rr);
      return packet;
    }
    case 203: {
      if (body_bytes < count * 4u) return std::nullopt;
      RtcpBye bye;
      for (int i = 0; i < count; ++i) bye.ssrcs.push_back(reader.U32());
      if (body_bytes > count * 4u) {
        const uint8_t reason_len = reader.U8();
        if (reader.Ok(reason_len)) {
          bye.reason = std::string(reader.Bytes(reason_len));
        }
      }
      packet.bye = std::move(bye);
      return packet;
    }
    default:
      return std::nullopt;  // SDES/APP not modeled
  }
}

}  // namespace vids::rtp
