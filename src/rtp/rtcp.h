// RTCP — RTP's companion control protocol (RFC 3550 §6), subset.
//
// Extension beyond the paper: vIDS's thesis is that *interacting* protocol
// machines catch what single-protocol views miss; RTCP is the natural
// third machine. Sender Reports carry the sender's own packet/octet
// counts (a consistency oracle against observed media), and the RTCP BYE
// announces end-of-stream — giving a second, SIP-independent teardown
// signal to cross-check against continuing RTP (see the ghost-media
// pattern in vids/patterns.h).
//
// Implemented packet types: SR (200), RR (201), BYE (203), each as a
// single (non-compound) packet — enough for the detection semantics;
// compound packing is a wire-efficiency concern only.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vids::rtp {

enum class RtcpType : uint8_t {
  kSenderReport = 200,
  kReceiverReport = 201,
  kBye = 203,
};

/// One reception report block (inside SR/RR).
struct ReportBlock {
  uint32_t ssrc = 0;            // stream being reported on
  uint8_t fraction_lost = 0;    // fixed-point /256 since last report
  uint32_t cumulative_lost = 0; // 24-bit on the wire
  uint32_t highest_seq = 0;     // extended highest sequence received
  uint32_t jitter = 0;          // RFC 3550 §6.4.1 in timestamp units

  bool operator==(const ReportBlock&) const = default;
};

struct SenderReport {
  uint32_t sender_ssrc = 0;
  uint64_t ntp_timestamp = 0;
  uint32_t rtp_timestamp = 0;
  uint32_t packet_count = 0;
  uint32_t octet_count = 0;
  std::vector<ReportBlock> reports;

  std::string Serialize() const;
  bool operator==(const SenderReport&) const = default;
};

struct ReceiverReport {
  uint32_t sender_ssrc = 0;
  std::vector<ReportBlock> reports;

  std::string Serialize() const;
  bool operator==(const ReceiverReport&) const = default;
};

struct RtcpBye {
  std::vector<uint32_t> ssrcs;
  std::string reason;

  std::string Serialize() const;
  bool operator==(const RtcpBye&) const = default;
};

/// A parsed RTCP packet (exactly one alternative set).
struct RtcpPacket {
  std::optional<SenderReport> sr;
  std::optional<ReceiverReport> rr;
  std::optional<RtcpBye> bye;

  RtcpType type() const {
    if (sr) return RtcpType::kSenderReport;
    if (rr) return RtcpType::kReceiverReport;
    return RtcpType::kBye;
  }
};

/// Quick structural sniff: does this look like RTCP (version 2, packet
/// type 200..204)? Used by the classifier to demux from RTP, whose
/// payload-type field never occupies that range (RFC 5761 §4).
bool LooksLikeRtcp(std::string_view data);

/// Parses one RTCP packet. Returns nullopt on structural violations.
std::optional<RtcpPacket> ParseRtcp(std::string_view data);

}  // namespace vids::rtp
