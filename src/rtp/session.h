// RTP media sessions: voice senders and measuring receivers.
//
// A MediaSession is one leg of a call's media: it binds the local RTP port,
// streams codec frames toward the remote endpoint (with a talkspurt on/off
// model when VAD is enabled) and measures the incoming stream — packet
// counts, loss from sequence gaps, one-way delay, and the RFC 3550 §6.4.1
// interarrival jitter estimator. Figure 10's "RTP delay" and "average delay
// variation" series come from these receiver statistics.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "net/host.h"
#include "obs/metrics.h"
#include "rtp/codec.h"
#include "rtp/packet.h"
#include "rtp/rtcp.h"
#include "sim/scheduler.h"

namespace vids::rtp {

/// Receiver-side stream statistics.
struct ReceiverStats {
  uint64_t packets_received = 0;
  uint64_t packets_lost = 0;       // from sequence-number gaps
  uint64_t packets_misordered = 0; // sequence went backwards
  uint64_t ssrc_mismatches = 0;    // packets not from the locked SSRC
  double jitter_seconds = 0.0;     // RFC 3550 running estimate
  double total_delay_seconds = 0.0;
  double max_delay_seconds = 0.0;

  double MeanDelaySeconds() const {
    return packets_received == 0 ? 0.0
                                 : total_delay_seconds /
                                       static_cast<double>(packets_received);
  }
};

/// One time-stamped delay/jitter observation, for time-series plots.
struct QosSample {
  sim::Time when;
  double delay_seconds = 0.0;
  double jitter_seconds = 0.0;
};

class MediaSession {
 public:
  struct Config {
    uint16_t local_port = 0;
    net::Endpoint remote;
    CodecProfile codec;
    TalkspurtModel talkspurt{};
    uint32_t ssrc = 0;  // 0 → draw from rng
    /// Record a QosSample every N received packets (0 disables sampling).
    uint32_t sample_every = 0;
    /// RTCP runs on local_port+1 / remote.port+1 (RFC 3550 §11): periodic
    /// Sender Reports while streaming, a BYE at teardown.
    bool rtcp_enabled = true;
    sim::Duration rtcp_interval = sim::Duration::Seconds(5);
  };

  MediaSession(sim::Scheduler& scheduler, net::Host& host, Config config,
               common::Stream& rng);
  ~MediaSession();
  MediaSession(const MediaSession&) = delete;
  MediaSession& operator=(const MediaSession&) = delete;

  /// Starts streaming toward the remote endpoint.
  void Start();
  /// Stops streaming; the receiver keeps measuring until destruction.
  void Stop();

  bool sending() const { return sending_; }
  uint32_t ssrc() const { return ssrc_; }
  uint64_t packets_sent() const { return packets_sent_; }
  const ReceiverStats& receiver_stats() const { return stats_; }
  const std::vector<QosSample>& samples() const { return samples_; }

  // --- RTCP observability ---
  uint64_t rtcp_sent() const { return rtcp_sent_; }
  uint64_t rtcp_received() const { return rtcp_received_; }
  /// Packet count the remote sender last claimed in an SR — the
  /// consistency oracle against packets actually observed.
  std::optional<uint32_t> remote_claimed_packets() const {
    return remote_claimed_packets_;
  }
  /// True once the remote announced end-of-stream via RTCP BYE.
  bool remote_bye_received() const { return remote_bye_received_; }

  /// Points this session's metric slots at "rtp.*" counters of `registry`.
  /// Sessions sharing a registry aggregate into the same counters.
  void AttachMetrics(obs::MetricsRegistry& registry);

 private:
  void SendFrame();
  void ScheduleNextFrame();
  void EnterTalkspurt();
  void EnterSilence();
  void OnDatagram(const net::Datagram& dgram);
  void OnRtcpDatagram(const net::Datagram& dgram);
  void SendSenderReport();
  void SendRtcpBye();
  net::Endpoint RemoteRtcp() const {
    return net::Endpoint{config_.remote.ip,
                         static_cast<uint16_t>(config_.remote.port + 1)};
  }

  sim::Scheduler& scheduler_;
  net::Host& host_;
  Config config_;
  common::Stream rng_;
  uint32_t ssrc_;
  bool sending_ = false;
  bool in_talkspurt_ = false;
  bool first_frame_of_spurt_ = false;
  uint16_t next_seq_;
  uint32_t next_timestamp_;
  uint64_t packets_sent_ = 0;
  uint64_t octets_sent_ = 0;
  sim::Timer frame_timer_;
  sim::Timer spurt_timer_;
  sim::Timer rtcp_timer_;
  uint64_t rtcp_sent_ = 0;
  uint64_t rtcp_received_ = 0;
  std::optional<uint32_t> remote_claimed_packets_;
  bool remote_bye_received_ = false;
  bool rtcp_bye_sent_ = false;

  // Receiver state.
  ReceiverStats stats_;
  std::vector<QosSample> samples_;
  std::optional<uint32_t> locked_ssrc_;
  std::optional<uint16_t> last_seq_;
  std::optional<double> last_transit_;

  // Metric slots, aggregated across sessions; null sinks until attached.
  obs::Counter* m_packets_sent_ = &obs::NullCounter();
  obs::Counter* m_packets_received_ = &obs::NullCounter();
  obs::Counter* m_packets_lost_ = &obs::NullCounter();
  obs::Counter* m_packets_misordered_ = &obs::NullCounter();
  obs::Counter* m_ssrc_mismatches_ = &obs::NullCounter();
  obs::Counter* m_rtcp_sent_ = &obs::NullCounter();
  obs::Counter* m_rtcp_received_ = &obs::NullCounter();
};

}  // namespace vids::rtp
