#include "rtp/codec.h"

namespace vids::rtp {

CodecProfile G729() {
  return CodecProfile{.name = "G729",
                      .payload_type = 18,
                      .frame_interval = sim::Duration::Millis(10),
                      .bytes_per_frame = 10,
                      .clock_rate = 8000};
}

CodecProfile Pcmu() {
  return CodecProfile{.name = "PCMU",
                      .payload_type = 0,
                      .frame_interval = sim::Duration::Millis(20),
                      .bytes_per_frame = 160,
                      .clock_rate = 8000};
}

}  // namespace vids::rtp
