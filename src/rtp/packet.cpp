#include "rtp/packet.h"

namespace vids::rtp {

std::string RtpHeader::Serialize() const {
  std::string out(kRtpHeaderSize, '\0');
  out[0] = static_cast<char>((version << 6) | (padding ? 0x20 : 0) |
                             (extension ? 0x10 : 0) | (csrc_count & 0x0F));
  out[1] = static_cast<char>((marker ? 0x80 : 0) | (payload_type & 0x7F));
  out[2] = static_cast<char>(sequence_number >> 8);
  out[3] = static_cast<char>(sequence_number & 0xFF);
  out[4] = static_cast<char>(timestamp >> 24);
  out[5] = static_cast<char>((timestamp >> 16) & 0xFF);
  out[6] = static_cast<char>((timestamp >> 8) & 0xFF);
  out[7] = static_cast<char>(timestamp & 0xFF);
  out[8] = static_cast<char>(ssrc >> 24);
  out[9] = static_cast<char>((ssrc >> 16) & 0xFF);
  out[10] = static_cast<char>((ssrc >> 8) & 0xFF);
  out[11] = static_cast<char>(ssrc & 0xFF);
  return out;
}

std::optional<RtpHeader> RtpHeader::Parse(std::string_view data) {
  if (data.size() < kRtpHeaderSize) return std::nullopt;
  const auto byte = [&](size_t i) {
    return static_cast<uint8_t>(data[i]);
  };
  RtpHeader header;
  header.version = byte(0) >> 6;
  if (header.version != 2) return std::nullopt;
  header.padding = (byte(0) & 0x20) != 0;
  header.extension = (byte(0) & 0x10) != 0;
  header.csrc_count = byte(0) & 0x0F;
  header.marker = (byte(1) & 0x80) != 0;
  header.payload_type = byte(1) & 0x7F;
  header.sequence_number =
      static_cast<uint16_t>((uint16_t{byte(2)} << 8) | byte(3));
  header.timestamp = (uint32_t{byte(4)} << 24) | (uint32_t{byte(5)} << 16) |
                     (uint32_t{byte(6)} << 8) | byte(7);
  header.ssrc = (uint32_t{byte(8)} << 24) | (uint32_t{byte(9)} << 16) |
                (uint32_t{byte(10)} << 8) | byte(11);
  return header;
}

int SeqDistance(uint16_t a, uint16_t b) {
  const int16_t diff = static_cast<int16_t>(b - a);
  return diff;
}

int64_t TimestampDistance(uint32_t a, uint32_t b) {
  const int32_t diff = static_cast<int32_t>(b - a);
  return diff;
}

}  // namespace vids::rtp
