// Voice codec traffic profiles.
//
// The paper's testbed uses G.729 with 10 ms frames at 8 kb/s and speech
// activity detection enabled (§7.1). Only the traffic characteristics
// matter to the IDS and the QoS measurements, so a profile is frame timing,
// frame size and RTP clock bookkeeping — not signal processing.
#pragma once

#include <cstdint>
#include <string>

#include "sim/time.h"

namespace vids::rtp {

struct CodecProfile {
  std::string name;
  uint8_t payload_type = 0;
  sim::Duration frame_interval;
  uint32_t bytes_per_frame = 0;
  uint32_t clock_rate = 8000;

  /// RTP timestamp increment per frame.
  uint32_t TimestampStep() const {
    return static_cast<uint32_t>(clock_rate *
                                 frame_interval.ToSeconds());
  }
  /// Payload bitrate in bits/second.
  double BitRate() const {
    return bytes_per_frame * 8.0 / frame_interval.ToSeconds();
  }
};

/// G.729: 10 ms frames, 10 bytes each → 8 kb/s (paper §7.1 settings).
CodecProfile G729();

/// G.711 µ-law: 20 ms frames, 160 bytes each → 64 kb/s.
CodecProfile Pcmu();

/// ITU-T P.59-style conversational speech on/off model, used when speech
/// activity detection is enabled: exponential talkspurts and pauses.
struct TalkspurtModel {
  bool enabled = true;
  sim::Duration mean_talk = sim::Duration::Millis(1004);
  sim::Duration mean_silence = sim::Duration::Millis(1587);
};

}  // namespace vids::rtp
