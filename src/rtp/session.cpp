#include "rtp/session.h"

#include <cmath>

#include "common/log.h"

namespace vids::rtp {

MediaSession::MediaSession(sim::Scheduler& scheduler, net::Host& host,
                           Config config, common::Stream& rng)
    : scheduler_(scheduler),
      host_(host),
      config_(std::move(config)),
      rng_(rng.Fork(std::string(host.name()) + ":rtp:" +
                    std::to_string(config_.local_port))),
      ssrc_(config_.ssrc != 0
                ? config_.ssrc
                : static_cast<uint32_t>(rng_.NextInRange(1, 0xFFFFFFFF))),
      next_seq_(static_cast<uint16_t>(rng_.NextInRange(0, 0xFFFF))),
      next_timestamp_(static_cast<uint32_t>(rng_.NextInRange(0, 0xFFFFFFFF))),
      frame_timer_(scheduler),
      spurt_timer_(scheduler),
      rtcp_timer_(scheduler) {
  host_.BindUdp(config_.local_port,
                [this](const net::Datagram& dgram) { OnDatagram(dgram); });
  if (config_.rtcp_enabled) {
    host_.BindUdp(static_cast<uint16_t>(config_.local_port + 1),
                  [this](const net::Datagram& dgram) { OnRtcpDatagram(dgram); });
  }
}

MediaSession::~MediaSession() {
  Stop();
  host_.UnbindUdp(config_.local_port);
  if (config_.rtcp_enabled) {
    host_.UnbindUdp(static_cast<uint16_t>(config_.local_port + 1));
  }
}

void MediaSession::Start() {
  if (sending_) return;
  sending_ = true;
  if (config_.rtcp_enabled) {
    rtcp_timer_.Start(config_.rtcp_interval, [this] { SendSenderReport(); });
  }
  if (config_.talkspurt.enabled) {
    EnterTalkspurt();
  } else {
    in_talkspurt_ = true;
    first_frame_of_spurt_ = true;
    SendFrame();
  }
}

void MediaSession::Stop() {
  const bool was_sending = sending_;
  sending_ = false;
  in_talkspurt_ = false;
  frame_timer_.Cancel();
  spurt_timer_.Cancel();
  rtcp_timer_.Cancel();
  if (was_sending && config_.rtcp_enabled && !rtcp_bye_sent_) {
    rtcp_bye_sent_ = true;
    SendRtcpBye();
  }
}

void MediaSession::EnterTalkspurt() {
  if (!sending_) return;
  in_talkspurt_ = true;
  first_frame_of_spurt_ = true;
  const double talk_s =
      rng_.NextExponential(config_.talkspurt.mean_talk.ToSeconds());
  spurt_timer_.Start(sim::Duration::FromSeconds(talk_s),
                     [this] { EnterSilence(); });
  SendFrame();
}

void MediaSession::EnterSilence() {
  in_talkspurt_ = false;
  frame_timer_.Cancel();
  if (!sending_) return;
  const double silence_s =
      rng_.NextExponential(config_.talkspurt.mean_silence.ToSeconds());
  // The RTP timestamp keeps advancing through silence (RFC 3550 §5.1): the
  // next talkspurt starts with a timestamp jump and the marker bit set.
  const auto frames_skipped = static_cast<uint32_t>(
      silence_s / config_.codec.frame_interval.ToSeconds());
  next_timestamp_ += frames_skipped * config_.codec.TimestampStep();
  spurt_timer_.Start(sim::Duration::FromSeconds(silence_s),
                     [this] { EnterTalkspurt(); });
}

void MediaSession::SendFrame() {
  if (!sending_ || !in_talkspurt_) return;
  RtpHeader header;
  header.marker = first_frame_of_spurt_;
  first_frame_of_spurt_ = false;
  header.payload_type = config_.codec.payload_type;
  header.sequence_number = next_seq_++;
  header.timestamp = next_timestamp_;
  next_timestamp_ += config_.codec.TimestampStep();
  header.ssrc = ssrc_;
  ++packets_sent_;
  m_packets_sent_->Inc();
  octets_sent_ += config_.codec.bytes_per_frame;
  host_.SendUdp(config_.local_port, config_.remote, header.Serialize(),
                net::PayloadKind::kRtp, config_.codec.bytes_per_frame);
  ScheduleNextFrame();
}

void MediaSession::SendSenderReport() {
  if (!sending_) return;
  SenderReport report;
  report.sender_ssrc = ssrc_;
  report.ntp_timestamp = static_cast<uint64_t>(scheduler_.Now().nanos());
  report.rtp_timestamp = next_timestamp_;
  report.packet_count = static_cast<uint32_t>(packets_sent_);
  report.octet_count = static_cast<uint32_t>(octets_sent_);
  // Piggyback a reception report on the incoming stream, if any.
  if (locked_ssrc_ && last_seq_) {
    ReportBlock block;
    block.ssrc = *locked_ssrc_;
    block.cumulative_lost = static_cast<uint32_t>(stats_.packets_lost);
    block.highest_seq = *last_seq_;
    block.jitter = static_cast<uint32_t>(stats_.jitter_seconds *
                                         config_.codec.clock_rate);
    report.reports.push_back(block);
  }
  ++rtcp_sent_;
  m_rtcp_sent_->Inc();
  host_.SendUdp(static_cast<uint16_t>(config_.local_port + 1), RemoteRtcp(),
                report.Serialize(), net::PayloadKind::kRtp);
  rtcp_timer_.Start(config_.rtcp_interval, [this] { SendSenderReport(); });
}

void MediaSession::SendRtcpBye() {
  RtcpBye bye;
  bye.ssrcs.push_back(ssrc_);
  bye.reason = "session ended";
  ++rtcp_sent_;
  m_rtcp_sent_->Inc();
  host_.SendUdp(static_cast<uint16_t>(config_.local_port + 1), RemoteRtcp(),
                bye.Serialize(), net::PayloadKind::kRtp);
}

void MediaSession::OnRtcpDatagram(const net::Datagram& dgram) {
  const auto packet = ParseRtcp(dgram.payload);
  if (!packet) return;
  ++rtcp_received_;
  m_rtcp_received_->Inc();
  if (packet->sr) remote_claimed_packets_ = packet->sr->packet_count;
  if (packet->bye) remote_bye_received_ = true;
}

void MediaSession::ScheduleNextFrame() {
  frame_timer_.Start(config_.codec.frame_interval, [this] { SendFrame(); });
}

void MediaSession::OnDatagram(const net::Datagram& dgram) {
  const auto header = RtpHeader::Parse(dgram.payload);
  if (!header) return;

  if (!locked_ssrc_) {
    locked_ssrc_ = header->ssrc;
  } else if (*locked_ssrc_ != header->ssrc) {
    ++stats_.ssrc_mismatches;
    m_ssrc_mismatches_->Inc();
    // Still measured: a spoofed-SSRC stream is the media-spam attack and we
    // want the victim's QoS numbers to show its effect.
  }

  ++stats_.packets_received;
  m_packets_received_->Inc();
  if (last_seq_) {
    const int gap = SeqDistance(*last_seq_, header->sequence_number);
    if (gap > 1) {
      stats_.packets_lost += static_cast<uint64_t>(gap - 1);
      m_packets_lost_->Inc(static_cast<uint64_t>(gap - 1));
    } else if (gap < 0) {
      ++stats_.packets_misordered;
      m_packets_misordered_->Inc();
    }
  }
  last_seq_ = header->sequence_number;

  const double transit =
      (scheduler_.Now() - dgram.sent_time).ToSeconds();
  stats_.total_delay_seconds += transit;
  stats_.max_delay_seconds = std::max(stats_.max_delay_seconds, transit);
  if (last_transit_) {
    // RFC 3550 §6.4.1: J += (|D| - J) / 16.
    const double d = std::abs(transit - *last_transit_);
    stats_.jitter_seconds += (d - stats_.jitter_seconds) / 16.0;
  }
  last_transit_ = transit;

  if (config_.sample_every != 0 &&
      stats_.packets_received % config_.sample_every == 0) {
    samples_.push_back(QosSample{scheduler_.Now(), transit,
                                 stats_.jitter_seconds});
  }
}

void MediaSession::AttachMetrics(obs::MetricsRegistry& registry) {
  m_packets_sent_ = &registry.GetCounter("rtp.packets_sent");
  m_packets_received_ = &registry.GetCounter("rtp.packets_received");
  m_packets_lost_ = &registry.GetCounter("rtp.packets_lost");
  m_packets_misordered_ = &registry.GetCounter("rtp.packets_misordered");
  m_ssrc_mismatches_ = &registry.GetCounter("rtp.ssrc_mismatches");
  m_rtcp_sent_ = &registry.GetCounter("rtp.rtcp_sent");
  m_rtcp_received_ = &registry.GetCounter("rtp.rtcp_received");
}

}  // namespace vids::rtp
