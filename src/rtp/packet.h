// RTP fixed header (RFC 1889 / RFC 3550 §5.1) binary codec.
//
// The vIDS media-spamming detector (paper Fig. 6) keys on exactly the fields
// this header carries: SSRC, sequence number and timestamp. Payload bytes
// are modeled as wire padding; the 12-byte header is carried for real so
// the IDS parses genuine packets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vids::rtp {

struct RtpHeader {
  uint8_t version = 2;
  bool padding = false;
  bool extension = false;
  uint8_t csrc_count = 0;
  bool marker = false;
  uint8_t payload_type = 0;
  uint16_t sequence_number = 0;
  uint32_t timestamp = 0;
  uint32_t ssrc = 0;

  /// Serializes the 12-byte fixed header.
  std::string Serialize() const;

  /// Parses a fixed header from the start of `data`. Returns nullopt if the
  /// buffer is short or the version is not 2.
  static std::optional<RtpHeader> Parse(std::string_view data);

  bool operator==(const RtpHeader&) const = default;
};

constexpr size_t kRtpHeaderSize = 12;

/// 16-bit sequence-number distance with wraparound: how far `b` is ahead of
/// `a` (negative if behind). Used by both the receiver's loss accounting and
/// the IDS gap predicate.
int SeqDistance(uint16_t a, uint16_t b);

/// 32-bit timestamp distance with wraparound (b - a as signed).
int64_t TimestampDistance(uint32_t a, uint32_t b);

}  // namespace vids::rtp
