// RunSource: the drivers that feed a PacketSource into the engine.
//
// Both drivers replay at recorded timestamps into the sim scheduler(s), so
// TTL sweeps, aggregate windows and the watchdog see a clock consistent
// with the traffic: before each packet is inspected every engine-internal
// timer due at or before its arrival instant fires (the same
// timer-before-same-time-packet order the sharded WorkerLoop uses), and at
// end of stream the engine runs up to the source's vouched clock() so
// trailing windows close exactly where the capture ended.
#pragma once

#include <cstddef>
#include <cstdint>

#include "capture/packet_source.h"
#include "sim/scheduler.h"
#include "vids/ids.h"
#include "vids/sharded_ids.h"

namespace vids::capture {

struct ReplayStats {
  uint64_t packets = 0;  ///< datagrams delivered to the engine
  uint64_t batches = 0;  ///< PullBatch calls that yielded packets
  sim::Time end;         ///< source clock() at end of stream
  bool ok = false;       ///< error() was empty at end of stream
};

/// Replays into a single-threaded Vids on `scheduler`.
ReplayStats RunSource(PacketSource& source, ids::Vids& vids,
                      sim::Scheduler& scheduler, size_t batch_size = 64);

/// Replays into the sharded engine. Each Ingest carries the source
/// timestamp (the workers' private schedulers advance on the source
/// clock); a final Flush(source.clock()) drains every ring and fires
/// everything up to stream end.
ReplayStats RunSource(PacketSource& source, ids::ShardedIds& engine,
                      size_t batch_size = 64);

}  // namespace vids::capture
