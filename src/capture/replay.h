// RunSource: the drivers that feed a PacketSource into the engine.
//
// All drivers replay at recorded timestamps into the sim scheduler(s), so
// TTL sweeps, aggregate windows and the watchdog see a clock consistent
// with the traffic: before each packet is inspected every engine-internal
// timer due at or before its arrival instant fires (the same
// timer-before-same-time-packet order the sharded WorkerLoop uses), and at
// end of stream the engine runs up to the source's vouched clock() so
// trailing windows close exactly where the capture ended.
//
// MpIngest is the multi-producer fan-out those drivers (and the soak
// harness) share: it spreads a time-ordered packet stream over `producers`
// ingest ports while keeping the alert stream byte-identical to the
// 1-producer replay (DESIGN.md §15). The calling thread is both the
// dispatcher and the coordinator: it stamps each packet with its global
// arrival number, ingests the rare claim-carrying SIP packets INLINE on
// port 0 (which upholds the engine's claim-ordered ingest contract — every
// claim is in the ownership table before any later-sequenced packet is
// even dispatched), and round-robins the media bulk to feeder threads
// driving ports 1..P-1 over per-producer SPSC handoff queues. Feeders
// heartbeat their ports from the dispatch watermark when idle so an
// unlucky round-robin split can never stall a worker's merge.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "capture/packet_source.h"
#include "common/spsc_ring.h"
#include "sim/scheduler.h"
#include "sip/lazy_message.h"
#include "vids/ids.h"
#include "vids/sharded_ids.h"

namespace vids::capture {

struct ReplayStats {
  uint64_t packets = 0;  ///< datagrams delivered to the engine
  uint64_t batches = 0;  ///< PullBatch calls that yielded packets
  sim::Time end;         ///< source clock() at end of stream
  bool ok = false;       ///< error() was empty at end of stream
};

/// Fans a time-ordered packet stream out over a sharded engine's ingest
/// ports (file header). Owned and driven by ONE thread — the same thread
/// that owns the engine's coordinator surface; Ingest() calls must carry
/// non-decreasing times. `producers` is clamped to [1, engine.producers()];
/// with one producer the dispatcher degenerates to the engine's inline
/// single-threaded path (no feeder threads at all).
class MpIngest {
 public:
  MpIngest(ids::ShardedIds& engine, int producers);
  /// Finish()es if the caller has not.
  ~MpIngest();
  MpIngest(const MpIngest&) = delete;
  MpIngest& operator=(const MpIngest&) = delete;

  /// Dispatch one packet; the call order is the global arrival order.
  void Ingest(const net::Datagram& dgram, bool from_outside, sim::Time when);

  /// Drains and parks every feeder thread: on return all dispatched
  /// packets are fully ingested and no feeder will touch its port until
  /// Resume(), so the caller may use the engine's coordinator surface
  /// (Flush(), metrics, state reads) — the quiescent-ports contract.
  void Quiesce();
  void Resume();

  /// Terminal: drains, stops and joins the feeders (idempotent). The
  /// engine is NOT flushed — callers follow with engine.Flush(end).
  void Finish();

  int producers() const { return producers_; }

 private:
  /// One dispatched packet on a feeder's handoff queue. Slots are reused
  /// in place across ring laps (the payload string keeps its capacity), so
  /// the steady-state dispatch path does not allocate.
  struct DispatchItem {
    int64_t when_ns = 0;
    uint64_t seq = 0;
    bool from_outside = false;
    bool stop = false;  ///< end-of-stream sentinel: feeder exits
    net::Datagram dgram;
  };
  struct Feeder {
    explicit Feeder(size_t ring_slots) : ring(ring_slots) {}
    common::SpscRing<DispatchItem> ring;
    /// True while the feeder is parked (quiesce) or exited: it holds no
    /// in-flight ingest and will not touch its port. Release by the
    /// feeder, acquire by the dispatcher.
    std::atomic<bool> parked{false};
    std::thread thread;
  };

  void FeedPort(Feeder& feeder, ids::ShardedIds::IngestPort& port);
  /// Dispatcher-side slow path while waiting on a feeder: keep the
  /// coordinator surface and port 0's frontier moving so a backlogged
  /// worker (or one merge-gated on idle port 0) cannot deadlock the wait.
  void PumpWhileWaiting();

  ids::ShardedIds& engine_;
  int producers_;
  sip::LazyMessage sniff_;
  uint64_t seq_ = 0;
  size_t rr_ = 0;
  int64_t heartbeat_ns_ = 0;
  bool finished_ = false;
  std::atomic<int64_t> watermark_ns_{0};
  std::atomic<bool> pause_{false};
  std::vector<std::unique_ptr<Feeder>> feeders_;
};

/// Replays into a single-threaded Vids on `scheduler`.
ReplayStats RunSource(PacketSource& source, ids::Vids& vids,
                      sim::Scheduler& scheduler, size_t batch_size = 64);

/// Replays into the sharded engine. Each Ingest carries the source
/// timestamp (the workers' private schedulers advance on the source
/// clock); a final Flush(source.clock()) drains every ring and fires
/// everything up to stream end.
ReplayStats RunSource(PacketSource& source, ids::ShardedIds& engine,
                      size_t batch_size = 64);

/// Multi-producer replay over `producers` ingest ports via MpIngest;
/// `producers <= 1` is exactly the overload above. Alerts are
/// byte-identical for every producer count. The engine must be freshly
/// constructed or Flush()ed, with no other threads driving its ports or
/// coordinator surface during the call.
ReplayStats RunSource(PacketSource& source, ids::ShardedIds& engine,
                      int producers, size_t batch_size);

}  // namespace vids::capture
