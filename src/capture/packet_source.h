// PacketSource: the capture front end's contract with the engine.
//
// A source yields timestamped datagrams in non-decreasing time order via a
// pull-batch API, and owns the logical clock for the stream: `clock()` is
// the highest timestamp the source vouches for, so a driver that has
// drained the source may advance its scheduler to `clock()` and know that
// every TTL sweep, aggregate window and watchdog deadline it fires is
// consistent with the traffic it saw. Implementations: the simulator
// refactored behind SimSource, the TraceLog text format (TraceLogSource)
// and a hand-rolled classic-pcap file reader (PcapFileSource).
//
// Contract (DESIGN.md §14):
//  - PullBatch appends up to `max` packets to `out` (cleared first) and
//    returns how many it delivered. 0 means end of stream — permanently;
//    callers must not retry.
//  - Timestamps are non-decreasing across the whole stream. Ties are
//    delivered in capture order.
//  - `out` is caller-owned scratch: drivers reuse one vector across calls
//    so a steady-state source can run without per-batch allocation.
//  - `error()` is empty while the stream is healthy. A source that hits a
//    framing or I/O fault sets it, delivers whatever it decoded before the
//    fault, and then returns 0 from PullBatch. EOF with an empty error()
//    is a clean end of capture.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/datagram.h"
#include "sim/time.h"

namespace vids::capture {

/// One captured packet: arrival instant on the source's clock, the
/// direction verdict (outside the protected perimeter?) and the datagram.
struct TimedPacket {
  sim::Time when;
  bool from_outside = false;
  net::Datagram dgram;
};

class PacketSource {
 public:
  virtual ~PacketSource() = default;

  /// Clears `out`, appends up to `max` packets and returns the count.
  /// Returns 0 at end of stream (clean EOF or fault — check error()).
  virtual size_t PullBatch(std::vector<TimedPacket>& out, size_t max) = 0;

  /// The stream's logical clock: the highest timestamp this source vouches
  /// no future packet will precede. After EOF this is the instant drivers
  /// should run their schedulers up to.
  virtual sim::Time clock() const = 0;

  /// Empty while healthy; a human-readable fault description (with the
  /// offending record/line position where known) once the stream broke.
  virtual const std::string& error() const = 0;

  bool ok() const { return error().empty(); }
};

}  // namespace vids::capture
