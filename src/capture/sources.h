// The two non-pcap PacketSource implementations.
//
// SimSource is the simulator path refactored behind the capture contract:
// an in-memory, time-ordered packet buffer. Fill it directly (tests,
// corpus generators) or attach Recorder() as an inline-tap monitor so a
// simulated network run is captured behind the same interface the pcap
// reader implements — the engine then cannot tell a testbed from a wire.
//
// TraceLogSource adapts the TraceLog text format (vids/trace.h): a parsed
// trace streams through the same pull-batch API, so the offline-replay
// path and the pcap path share one driver (capture/replay.h).
#pragma once

#include <string>
#include <vector>

#include "capture/packet_source.h"
#include "net/inline_tap.h"
#include "vids/trace.h"

namespace vids::capture {

class SimSource : public PacketSource {
 public:
  /// Appends one packet. Timestamps must be non-decreasing; an earlier
  /// `when` is clamped to the last appended time (the contract forbids
  /// rewinds, and the scheduler-driven Recorder can never produce one).
  void Append(sim::Time when, const net::Datagram& dgram, bool from_outside);

  /// A tap monitor recording everything it sees at the scheduler's current
  /// time. `scheduler` and this object must outlive the tap's use.
  net::InlineTap::Monitor Recorder(sim::Scheduler& scheduler);

  size_t PullBatch(std::vector<TimedPacket>& out, size_t max) override;
  sim::Time clock() const override { return clock_; }
  const std::string& error() const override { return error_; }

  size_t size() const { return packets_.size(); }
  /// Resets the read cursor so the buffer can be replayed again.
  void Rewind();

 private:
  std::vector<TimedPacket> packets_;
  size_t cursor_ = 0;
  sim::Time clock_;
  std::string error_;
};

/// Streams a parsed TraceLog. Non-owning: `log` must outlive the source.
class TraceLogSource : public PacketSource {
 public:
  explicit TraceLogSource(const ids::TraceLog& log) : log_(log) {}

  size_t PullBatch(std::vector<TimedPacket>& out, size_t max) override;
  sim::Time clock() const override { return clock_; }
  const std::string& error() const override { return error_; }

 private:
  const ids::TraceLog& log_;
  size_t cursor_ = 0;
  sim::Time clock_;
  std::string error_;
};

}  // namespace vids::capture
