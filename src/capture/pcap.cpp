#include "capture/pcap.h"

#include <cstdio>
#include <string_view>

#include "rtp/rtcp.h"

namespace vids::capture {

namespace {

// pcap magics, as read little-endian from the first four file bytes.
constexpr uint32_t kMagicMicroLe = 0xa1b2c3d4;  // LE file, µs fractions
constexpr uint32_t kMagicMicroBe = 0xd4c3b2a1;  // BE file, µs fractions
constexpr uint32_t kMagicNanoLe = 0xa1b23c4d;   // LE file, ns fractions
constexpr uint32_t kMagicNanoBe = 0x4d3cb2a1;   // BE file, ns fractions

constexpr uint32_t kLinktypeEthernet = 1;
constexpr uint32_t kLinktypeRawIp = 101;  // LINKTYPE_RAW: IPv4/IPv6 directly

constexpr uint16_t kEthertypeIpv4 = 0x0800;
constexpr uint16_t kEthertypeVlan = 0x8100;   // 802.1Q
constexpr uint16_t kEthertypeQinQ = 0x88A8;   // 802.1ad
constexpr uint16_t kEthertypeQinQ2 = 0x9100;  // legacy double-tag

constexpr uint8_t kIpProtoUdp = 17;

/// Largest UDP payload an IPv4 datagram can carry (65535 - 20 - 8).
constexpr size_t kMaxUdpPayload = 65507;

uint32_t Bswap32(uint32_t v) {
  return ((v & 0xFF000000U) >> 24) | ((v & 0x00FF0000U) >> 8) |
         ((v & 0x0000FF00U) << 8) | ((v & 0x000000FFU) << 24);
}

uint16_t Bswap16(uint16_t v) {
  return static_cast<uint16_t>((v >> 8) | (v << 8));
}

// Frame contents are always network byte order, independent of the pcap
// header endianness.
uint16_t FrameU16(std::string_view frame, size_t offset) {
  return static_cast<uint16_t>(
      (static_cast<uint16_t>(static_cast<uint8_t>(frame[offset])) << 8) |
      static_cast<uint16_t>(static_cast<uint8_t>(frame[offset + 1])));
}

uint32_t FrameU32(std::string_view frame, size_t offset) {
  return (static_cast<uint32_t>(static_cast<uint8_t>(frame[offset])) << 24) |
         (static_cast<uint32_t>(static_cast<uint8_t>(frame[offset + 1]))
          << 16) |
         (static_cast<uint32_t>(static_cast<uint8_t>(frame[offset + 2]))
          << 8) |
         static_cast<uint32_t>(static_cast<uint8_t>(frame[offset + 3]));
}

/// The router/classifier dispatch is content-based (RTCP sniffed first,
/// then SIP, then RTP), so the kind label is only a dispatch-order hint.
/// Label RTP-shaped payloads kRtp (version bits 2, fixed header present);
/// everything else — including SIP, whose first byte is ASCII and can
/// never carry version bits 2 — stays kOther and classifies by content.
net::PayloadKind InferKind(std::string_view payload) {
  if (rtp::LooksLikeRtcp(payload)) return net::PayloadKind::kOther;
  if (payload.size() >= 12 &&
      (static_cast<uint8_t>(payload[0]) >> 6) == 2) {
    return net::PayloadKind::kRtp;
  }
  return net::PayloadKind::kOther;
}

}  // namespace

// ----------------------------------------------------------------- reader

PcapFileSource::PcapFileSource(std::string bytes, PcapReadOptions options)
    : data_(std::move(bytes)), options_(options) {
  if (data_.size() < 24) {
    error_ = "pcap: file truncated inside the 24-byte global header (" +
             std::to_string(data_.size()) + " bytes)";
    return;
  }
  // Read the magic little-endian; the byte-swapped constants then identify
  // big-endian files, so detection is host-order independent.
  const uint32_t magic =
      (static_cast<uint32_t>(static_cast<uint8_t>(data_[3])) << 24) |
      (static_cast<uint32_t>(static_cast<uint8_t>(data_[2])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(data_[1])) << 8) |
      static_cast<uint32_t>(static_cast<uint8_t>(data_[0]));
  switch (magic) {
    case kMagicMicroLe: swapped_ = false; nanosecond_ = false; break;
    case kMagicNanoLe: swapped_ = false; nanosecond_ = true; break;
    case kMagicMicroBe: swapped_ = true; nanosecond_ = false; break;
    case kMagicNanoBe: swapped_ = true; nanosecond_ = true; break;
    default: {
      char buf[32];
      std::snprintf(buf, sizeof buf, "0x%08x", magic);
      error_ = std::string("pcap: bad magic ") + buf +
               " (not a classic pcap savefile)";
      return;
    }
  }
  linktype_ = ReadU32(20);
  if (linktype_ != kLinktypeEthernet && linktype_ != kLinktypeRawIp) {
    error_ = "pcap: unsupported linktype " + std::to_string(linktype_) +
             " (supported: 1 Ethernet, 101 raw IPv4)";
    return;
  }
  offset_ = 24;
}

std::unique_ptr<PcapFileSource> PcapFileSource::Open(
    const std::string& path, PcapReadOptions options) {
  std::string bytes;
  if (std::FILE* f = std::fopen(path.c_str(), "rb")) {
    char buf[1 << 16];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) bytes.append(buf, n);
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (!read_error) {
      return std::make_unique<PcapFileSource>(std::move(bytes), options);
    }
  }
  auto source = std::make_unique<PcapFileSource>(std::string(), options);
  source->error_ = "pcap: cannot read " + path;
  return source;
}

uint32_t PcapFileSource::ReadU32(size_t offset) const {
  const uint32_t v =
      (static_cast<uint32_t>(static_cast<uint8_t>(data_[offset + 3])) << 24) |
      (static_cast<uint32_t>(static_cast<uint8_t>(data_[offset + 2])) << 16) |
      (static_cast<uint32_t>(static_cast<uint8_t>(data_[offset + 1])) << 8) |
      static_cast<uint32_t>(static_cast<uint8_t>(data_[offset]));
  return swapped_ ? Bswap32(v) : v;
}

uint16_t PcapFileSource::ReadU16(size_t offset) const {
  const auto v = static_cast<uint16_t>(
      (static_cast<uint16_t>(static_cast<uint8_t>(data_[offset + 1])) << 8) |
      static_cast<uint16_t>(static_cast<uint8_t>(data_[offset])));
  return swapped_ ? Bswap16(v) : v;
}

size_t PcapFileSource::PullBatch(std::vector<TimedPacket>& out, size_t max) {
  out.clear();
  while (out.size() < max) {
    TimedPacket packet;
    if (!DecodeNext(packet)) break;
    out.push_back(std::move(packet));
  }
  return out.size();
}

bool PcapFileSource::DecodeNext(TimedPacket& out) {
  while (error_.empty()) {
    const size_t remaining = data_.size() - offset_;
    if (remaining == 0) return false;  // clean EOF
    if (remaining < 16) {
      error_ = "pcap: record " + std::to_string(stats_.records + 1) +
               " truncated inside the record header (offset " +
               std::to_string(offset_) + ", " + std::to_string(remaining) +
               " bytes left)";
      return false;
    }
    const uint32_t ts_sec = ReadU32(offset_);
    const uint32_t ts_frac = ReadU32(offset_ + 4);
    const uint32_t incl_len = ReadU32(offset_ + 8);
    const uint32_t orig_len = ReadU32(offset_ + 12);
    offset_ += 16;
    if (incl_len > data_.size() - offset_) {
      error_ = "pcap: record " + std::to_string(stats_.records + 1) +
               " runs past end of file (incl_len " + std::to_string(incl_len) +
               ", " + std::to_string(data_.size() - offset_) + " bytes left)";
      return false;
    }
    const std::string_view frame(data_.data() + offset_, incl_len);
    offset_ += incl_len;
    ++stats_.records;
    if (orig_len < incl_len) {
      error_ = "pcap: record " + std::to_string(stats_.records) +
               " has orig_len " + std::to_string(orig_len) + " < incl_len " +
               std::to_string(incl_len);
      return false;
    }

    // ---- link layer ----
    size_t p = 0;
    if (linktype_ == kLinktypeEthernet) {
      if (frame.size() < 14) {
        ++stats_.skipped_malformed;
        continue;
      }
      uint16_t ethertype = FrameU16(frame, 12);
      p = 14;
      // Up to two stacked VLAN tags (802.1ad outer + 802.1Q inner).
      bool torn = false;
      for (int tag = 0; tag < 2 && (ethertype == kEthertypeVlan ||
                                    ethertype == kEthertypeQinQ ||
                                    ethertype == kEthertypeQinQ2);
           ++tag) {
        if (frame.size() < p + 4) {
          torn = true;
          break;
        }
        ethertype = FrameU16(frame, p + 2);
        p += 4;
      }
      if (torn) {
        ++stats_.skipped_malformed;
        continue;
      }
      if (ethertype != kEthertypeIpv4) {
        ++stats_.skipped_non_ip;
        continue;
      }
    }

    // ---- IPv4 ----
    if (frame.size() < p + 20) {
      ++stats_.skipped_malformed;
      continue;
    }
    const auto vihl = static_cast<uint8_t>(frame[p]);
    if ((vihl >> 4) != 4) {
      ++stats_.skipped_non_ip;
      continue;
    }
    const size_t ihl = static_cast<size_t>(vihl & 0xF) * 4;
    if (ihl < 20 || frame.size() < p + ihl) {
      ++stats_.skipped_malformed;
      continue;
    }
    const uint16_t frag = FrameU16(frame, p + 6);
    if ((frag & 0x2000) != 0 || (frag & 0x1FFF) != 0) {
      ++stats_.skipped_fragment;  // MF set or nonzero offset; no reassembly
      continue;
    }
    if (static_cast<uint8_t>(frame[p + 9]) != kIpProtoUdp) {
      ++stats_.skipped_non_udp;
      continue;
    }
    const net::IpAddress src_ip(FrameU32(frame, p + 12));
    const net::IpAddress dst_ip(FrameU32(frame, p + 16));

    // ---- UDP ----
    const size_t udp = p + ihl;
    if (frame.size() < udp + 8) {
      ++stats_.skipped_malformed;  // snap cut inside the UDP header
      continue;
    }
    const uint16_t src_port = FrameU16(frame, udp);
    const uint16_t dst_port = FrameU16(frame, udp + 2);
    const uint16_t udp_len = FrameU16(frame, udp + 4);
    if (udp_len < 8 || static_cast<size_t>(udp_len - 8) > kMaxUdpPayload) {
      ++stats_.skipped_malformed;
      continue;
    }
    // The UDP length field names the wire payload; the captured slice may
    // be shorter (snaplen truncation) or longer (Ethernet trailer padding
    // on sub-minimum frames). The difference between the wire payload and
    // the captured bytes is preserved as Datagram::padding_bytes, so torn
    // packets keep their true wire size without fabricated filler.
    const size_t full_payload = static_cast<size_t>(udp_len) - 8;
    const size_t captured = std::min(frame.size() - (udp + 8), full_payload);

    // ---- timestamp ----
    const int64_t frac_ns = nanosecond_
                                ? static_cast<int64_t>(ts_frac)
                                : static_cast<int64_t>(ts_frac) * 1000;
    int64_t ts_ns = static_cast<int64_t>(ts_sec) * 1'000'000'000 + frac_ns;
    if (first_ts_ns_ < 0) first_ts_ns_ = ts_ns;
    if (options_.rebase_to_first) ts_ns -= first_ts_ns_;
    // Contract: timestamps are non-decreasing. Real captures can jitter a
    // few µs backwards across capture queues; clamp to the stream clock
    // rather than failing the whole file.
    if (ts_ns < clock_.nanos()) ts_ns = clock_.nanos();

    out.when = sim::Time::FromNanos(ts_ns);
    out.from_outside =
        options_.inside.has_value() ? !options_.inside->Contains(src_ip) : true;
    out.dgram.src = net::Endpoint{src_ip, src_port};
    out.dgram.dst = net::Endpoint{dst_ip, dst_port};
    out.dgram.payload.assign(frame.substr(udp + 8, captured));
    out.dgram.kind = InferKind(out.dgram.payload);
    out.dgram.padding_bytes = static_cast<uint32_t>(full_payload - captured);
    out.dgram.sent_time = out.when;
    out.dgram.id = next_id_++;
    clock_ = out.when;
    ++stats_.delivered;
    return true;
  }
  return false;
}

// ----------------------------------------------------------------- writer

PcapWriter::PcapWriter(PcapWriteOptions options) : options_(options) {
  PutU32(options_.nanosecond ? kMagicNanoLe : kMagicMicroLe);
  PutU16(2);      // version major
  PutU16(4);      // version minor
  PutU32(0);      // thiszone
  PutU32(0);      // sigfigs
  PutU32(65535);  // snaplen
  PutU32(kLinktypeEthernet);
}

void PcapWriter::PutU16(uint16_t value) {
  if (options_.big_endian) value = Bswap16(value);
  bytes_ += static_cast<char>(value & 0xFF);
  bytes_ += static_cast<char>((value >> 8) & 0xFF);
}

void PcapWriter::PutU32(uint32_t value) {
  if (options_.big_endian) value = Bswap32(value);
  bytes_ += static_cast<char>(value & 0xFF);
  bytes_ += static_cast<char>((value >> 8) & 0xFF);
  bytes_ += static_cast<char>((value >> 16) & 0xFF);
  bytes_ += static_cast<char>((value >> 24) & 0xFF);
}

void PcapWriter::Add(sim::Time when, const net::Datagram& dgram) {
  // Frame bytes are network order regardless of the header endianness.
  const auto put_be16 = [this](uint16_t v) {
    bytes_ += static_cast<char>((v >> 8) & 0xFF);
    bytes_ += static_cast<char>(v & 0xFF);
  };
  const auto put_be32 = [this](uint32_t v) {
    bytes_ += static_cast<char>((v >> 24) & 0xFF);
    bytes_ += static_cast<char>((v >> 16) & 0xFF);
    bytes_ += static_cast<char>((v >> 8) & 0xFF);
    bytes_ += static_cast<char>(v & 0xFF);
  };
  const auto put_mac = [this](net::IpAddress ip) {
    // Locally-administered MACs derived from the IP: deterministic and
    // collision-free within a corpus.
    bytes_ += static_cast<char>(0x02);
    bytes_ += static_cast<char>(0x00);
    bytes_ += static_cast<char>((ip.bits() >> 24) & 0xFF);
    bytes_ += static_cast<char>((ip.bits() >> 16) & 0xFF);
    bytes_ += static_cast<char>((ip.bits() >> 8) & 0xFF);
    bytes_ += static_cast<char>(ip.bits() & 0xFF);
  };

  const size_t wire_payload = dgram.payload.size() + dgram.padding_bytes;
  const auto udp_len = static_cast<uint16_t>(8 + wire_payload);
  const auto ip_total = static_cast<uint16_t>(20 + udp_len);
  const size_t eth_len = options_.vlan ? 18 : 14;
  // padding_bytes become the snap-truncated tail: headers claim them,
  // stored bytes omit them (orig_len - incl_len = padding).
  const auto incl_len =
      static_cast<uint32_t>(eth_len + 20 + 8 + dgram.payload.size());
  const auto orig_len = static_cast<uint32_t>(eth_len + ip_total);

  const int64_t ts_ns =
      options_.epoch_base_s * 1'000'000'000 + when.nanos();
  PutU32(static_cast<uint32_t>(ts_ns / 1'000'000'000));
  const int64_t frac = ts_ns % 1'000'000'000;
  PutU32(static_cast<uint32_t>(options_.nanosecond ? frac : frac / 1000));
  PutU32(incl_len);
  PutU32(orig_len);

  // Ethernet
  put_mac(dgram.dst.ip);
  put_mac(dgram.src.ip);
  if (options_.vlan) {
    put_be16(kEthertypeVlan);
    put_be16(100);  // VLAN id 100, priority 0
  }
  put_be16(kEthertypeIpv4);

  // IPv4, header checksum computed over the 20 header bytes.
  const size_t ip_start = bytes_.size();
  bytes_ += static_cast<char>(0x45);  // version 4, IHL 5
  bytes_ += static_cast<char>(0x00);  // TOS
  put_be16(ip_total);
  put_be16(next_ip_id_++);
  put_be16(0x4000);                   // DF, fragment offset 0
  bytes_ += static_cast<char>(64);    // TTL
  bytes_ += static_cast<char>(kIpProtoUdp);
  put_be16(0);                        // checksum placeholder
  put_be32(dgram.src.ip.bits());
  put_be32(dgram.dst.ip.bits());
  uint32_t sum = 0;
  for (size_t i = 0; i < 20; i += 2) {
    sum += static_cast<uint32_t>(
        (static_cast<uint8_t>(bytes_[ip_start + i]) << 8) |
        static_cast<uint8_t>(bytes_[ip_start + i + 1]));
  }
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  const auto checksum = static_cast<uint16_t>(~sum & 0xFFFF);
  bytes_[ip_start + 10] = static_cast<char>((checksum >> 8) & 0xFF);
  bytes_[ip_start + 11] = static_cast<char>(checksum & 0xFF);

  // UDP (checksum 0 = none, legal over IPv4), then the stored payload.
  put_be16(dgram.src.port);
  put_be16(dgram.dst.port);
  put_be16(udp_len);
  put_be16(0);
  bytes_ += dgram.payload;
}

bool PcapWriter::WriteFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = std::fwrite(bytes_.data(), 1, bytes_.size(), f);
  const int close_rc = std::fclose(f);
  return written == bytes_.size() && close_rc == 0;
}

}  // namespace vids::capture
