#include "capture/replay.h"

#include <vector>

namespace vids::capture {

ReplayStats RunSource(PacketSource& source, ids::Vids& vids,
                      sim::Scheduler& scheduler, size_t batch_size) {
  ReplayStats stats;
  std::vector<TimedPacket> batch;
  batch.reserve(batch_size);
  while (source.PullBatch(batch, batch_size) > 0) {
    ++stats.batches;
    for (TimedPacket& packet : batch) {
      if (packet.when > scheduler.Now()) scheduler.RunUntil(packet.when);
      vids.Inspect(packet.dgram, packet.from_outside);
      ++stats.packets;
    }
  }
  if (source.clock() > scheduler.Now()) scheduler.RunUntil(source.clock());
  stats.end = source.clock();
  stats.ok = source.ok();
  return stats;
}

ReplayStats RunSource(PacketSource& source, ids::ShardedIds& engine,
                      size_t batch_size) {
  ReplayStats stats;
  std::vector<TimedPacket> batch;
  batch.reserve(batch_size);
  while (source.PullBatch(batch, batch_size) > 0) {
    ++stats.batches;
    for (TimedPacket& packet : batch) {
      engine.Ingest(packet.dgram, packet.from_outside, packet.when);
      ++stats.packets;
    }
  }
  engine.Flush(source.clock());
  stats.end = source.clock();
  stats.ok = source.ok();
  return stats;
}

}  // namespace vids::capture
