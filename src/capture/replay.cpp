#include "capture/replay.h"

#include <thread>

namespace vids::capture {

namespace {

/// How many packets a feeder's handoff queue can hold. Large enough to
/// decouple the dispatcher from transient feeder stalls, small enough that
/// the payload slabs stay cache-friendly.
constexpr size_t kDispatchRingSlots = 2048;

/// Dispatcher upkeep cadence: every this many Ingest() calls the
/// dispatcher pumps the coordinator surface and vouches port 0's frontier
/// up to the dispatch head, so sparse SIP traffic never gates the merges.
constexpr uint64_t kUpkeepPeriod = 64;

}  // namespace

MpIngest::MpIngest(ids::ShardedIds& engine, int producers)
    : engine_(engine), producers_(producers) {
  if (producers_ > engine_.producers()) producers_ = engine_.producers();
  if (producers_ < 1) producers_ = 1;
  // This thread owns port 0 and the coordinator surface, so port 0's
  // backpressure wait must drain the up-rings itself (the engine may have
  // been built with producers > 1, which leaves this off by default).
  engine_.port(0).set_inline_drain(true);
  const int feeders = producers_ - 1;
  feeders_.reserve(static_cast<size_t>(feeders));
  for (int f = 0; f < feeders; ++f) {
    feeders_.push_back(std::make_unique<Feeder>(kDispatchRingSlots));
  }
  for (int f = 0; f < feeders; ++f) {
    Feeder& feeder = *feeders_[static_cast<size_t>(f)];
    feeder.thread = std::thread([this, &feeder, f] {
      FeedPort(feeder, engine_.port(f + 1));
    });
  }
}

MpIngest::~MpIngest() { Finish(); }

void MpIngest::FeedPort(Feeder& feeder, ids::ShardedIds::IngestPort& port) {
  int64_t heartbeat_ns = 0;
  for (;;) {
    // Ordering is load-bearing in both idle branches below: an "empty"
    // verdict only proves anything about pushes that happen-before an
    // acquire load SEQUENCED BEFORE the emptiness re-check. A FrontN that
    // ran first can miss a committed item whose flag/watermark IS visible.
    if (pause_.load(std::memory_order_acquire) && feeder.ring.FrontN(1) == 0) {
      // Park: the pause acquire makes every pre-Quiesce dispatch visible,
      // so the empty re-check proves all of them are fully ingested. No
      // port activity (not even heartbeats) until Resume() — the
      // dispatcher may be mid-Flush.
      feeder.parked.store(true, std::memory_order_release);
      while (pause_.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
      feeder.parked.store(false, std::memory_order_relaxed);
      continue;
    }
    const int64_t w = watermark_ns_.load(std::memory_order_acquire);
    const size_t n = feeder.ring.FrontN(16);
    if (n == 0) {
      // Idle: vouch the port's frontier from the dispatch watermark. The
      // watermark acquire makes every dispatch up to `w` visible, so the
      // empty ring proves this feeder's future packets were dispatched
      // later — and by stream time order carry when >= w. Heartbeat(w)
      // (frontier w-1) is then sound, and an unlucky round-robin split
      // never stalls the workers' lane merges.
      if (w > heartbeat_ns) {
        port.Heartbeat(sim::Time::FromNanos(w));
        heartbeat_ns = w;
      }
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      DispatchItem& item = feeder.ring.At(i);
      if (item.stop) {
        feeder.ring.PopN(i + 1);
        feeder.parked.store(true, std::memory_order_release);
        return;
      }
      port.Ingest(item.dgram, item.from_outside,
                  sim::Time::FromNanos(item.when_ns), item.seq);
    }
    feeder.ring.PopN(n);
  }
}

void MpIngest::PumpWhileWaiting() {
  // A worker blocked publishing alerts upstream blocks its feeder's lane
  // in turn, and a worker can also be merge-gated on idle port 0's stale
  // frontier: keep both moving while we wait.
  engine_.Pump();
  const int64_t w = watermark_ns_.load(std::memory_order_relaxed);
  if (w > heartbeat_ns_) {
    engine_.port(0).Heartbeat(sim::Time::FromNanos(w));
    heartbeat_ns_ = w;
  }
  std::this_thread::yield();
}

void MpIngest::Ingest(const net::Datagram& dgram, bool from_outside,
                      sim::Time when) {
  if (producers_ <= 1) {
    engine_.Ingest(dgram, from_outside, when);
    return;
  }
  if (ids::ShardedIds::CarriesClaims(dgram, sniff_)) {
    // Inline on the dispatcher's own port: the claim lands in the
    // ownership table before any later-sequenced packet is even handed to
    // a feeder — the engine's claim-ordered ingest contract.
    engine_.port(0).Ingest(dgram, from_outside, when, seq_);
  } else {
    Feeder& feeder = *feeders_[rr_];
    DispatchItem* slot = feeder.ring.BeginPush();
    while (slot == nullptr) {
      PumpWhileWaiting();
      slot = feeder.ring.BeginPush();
    }
    slot->when_ns = when.nanos();
    slot->seq = seq_;
    slot->from_outside = from_outside;
    slot->stop = false;
    slot->dgram = dgram;
    feeder.ring.CommitPush();
    rr_ = (rr_ + 1) % feeders_.size();
  }
  watermark_ns_.store(when.nanos(), std::memory_order_release);
  ++seq_;
  if (seq_ % kUpkeepPeriod == 0) {
    engine_.port(0).Heartbeat(when);
    heartbeat_ns_ = when.nanos();
    engine_.Pump();
  }
}

void MpIngest::Quiesce() {
  if (finished_) return;  // feeders joined: the ports are already quiescent
  pause_.store(true, std::memory_order_release);
  for (auto& feeder : feeders_) {
    while (!feeder->parked.load(std::memory_order_acquire)) {
      PumpWhileWaiting();
    }
  }
  // Every feeder parked with an empty ring: all dispatched packets are in
  // their shard lanes and the ports are untouched until Resume(). The
  // parked release/acquire pair carries the feeders' port state over.
}

void MpIngest::Resume() {
  if (finished_) return;
  pause_.store(false, std::memory_order_release);
  // Wait for every feeder to actually wake: a feeder that stayed parked
  // through this whole resume window (entirely possible when virtual time
  // outruns wall time and the next Quiesce comes microseconds later) would
  // satisfy the NEXT Quiesce()'s parked check instantly — with freshly
  // dispatched packets still in its ring, silently breaking the
  // quiescent-ports contract. An exited feeder stays parked forever, which
  // is why Quiesce()/Resume() are no-ops after Finish().
  for (auto& feeder : feeders_) {
    while (feeder->parked.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
}

void MpIngest::Finish() {
  if (finished_) return;
  finished_ = true;
  // Wake any parked feeders so they can reach the stop sentinel.
  pause_.store(false, std::memory_order_release);
  for (auto& feeder : feeders_) {
    DispatchItem* slot = feeder->ring.BeginPush();
    while (slot == nullptr) {
      PumpWhileWaiting();
      slot = feeder->ring.BeginPush();
    }
    slot->stop = true;
    feeder->ring.CommitPush();
  }
  for (auto& feeder : feeders_) feeder->thread.join();
}

ReplayStats RunSource(PacketSource& source, ids::Vids& vids,
                      sim::Scheduler& scheduler, size_t batch_size) {
  ReplayStats stats;
  std::vector<TimedPacket> batch;
  batch.reserve(batch_size);
  while (source.PullBatch(batch, batch_size) > 0) {
    ++stats.batches;
    for (TimedPacket& packet : batch) {
      if (packet.when > scheduler.Now()) scheduler.RunUntil(packet.when);
      vids.Inspect(packet.dgram, packet.from_outside);
      ++stats.packets;
    }
  }
  if (source.clock() > scheduler.Now()) scheduler.RunUntil(source.clock());
  stats.end = source.clock();
  stats.ok = source.ok();
  return stats;
}

ReplayStats RunSource(PacketSource& source, ids::ShardedIds& engine,
                      size_t batch_size) {
  ReplayStats stats;
  std::vector<TimedPacket> batch;
  batch.reserve(batch_size);
  while (source.PullBatch(batch, batch_size) > 0) {
    ++stats.batches;
    for (TimedPacket& packet : batch) {
      engine.Ingest(packet.dgram, packet.from_outside, packet.when);
      ++stats.packets;
    }
  }
  engine.Flush(source.clock());
  stats.end = source.clock();
  stats.ok = source.ok();
  return stats;
}

ReplayStats RunSource(PacketSource& source, ids::ShardedIds& engine,
                      int producers, size_t batch_size) {
  MpIngest mp(engine, producers);
  ReplayStats stats;
  std::vector<TimedPacket> batch;
  batch.reserve(batch_size);
  while (source.PullBatch(batch, batch_size) > 0) {
    ++stats.batches;
    for (TimedPacket& packet : batch) {
      mp.Ingest(packet.dgram, packet.from_outside, packet.when);
      ++stats.packets;
    }
  }
  mp.Finish();
  engine.Flush(source.clock());
  stats.end = source.clock();
  stats.ok = source.ok();
  return stats;
}

}  // namespace vids::capture
