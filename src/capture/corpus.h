// The checked-in pcap corpus, generated — never hand-edited.
//
// Six deterministic captures exercise the wire-ingress path end to end:
//   clean_calls.pcap    — complete SIP calls with two-way RTP (LE, ns)
//   invite_flood.pcap   — clean background + an INVITE flood burst that
//                         must raise exactly one aggregate alert (BE, µs:
//                         the byte-swapped reader path rides through CI)
//   torn_truncated.pcap — wire-realistic malformed input: snaplen-torn
//                         SIP, Content-Length overruns, LF-only framing,
//                         compact-form final unterminated headers,
//                         truncated RTP, empty payloads (LE, ns, VLAN-
//                         tagged so the 802.1Q skip path is exercised)
//   spit_burst.pcap     — protocol-legal SPIT: one caller blasting short
//                         clean calls at distinct victims; only the
//                         behavioral call-rate profile raises (LE, ns)
//   reg_cracking.pcap   — distributed registration cracking: clean
//                         REGISTER/401 exchanges against one account from
//                         many sources; only the behavioral failed-auth
//                         streak raises (LE, ns)
//   toll_fraud.pcap     — low-and-slow toll-fraud fan-out: clean calls to
//                         distinct premium AORs, paced under every rate
//                         threshold; only the behavioral 60 s destination
//                         fan-out window raises (LE, ns)
//
// tools/make_corpus writes these to tests/corpus/; CI regenerates and
// byte-compares them so the checked-in files can never drift from this
// generator, then replays them through 1-shard and 4-shard engines with
// an alert-count equality gate. The three behavioral captures must each
// raise exactly one kBehavior alert and zero spec-machine alerts — that
// asymmetry is the CI proof of the layer's reason to exist. Everything
// here is fixed-seed and fixed-epoch: regeneration is byte-identical on
// every platform.
#pragma once

#include <string>
#include <vector>

#include "net/address.h"

namespace vids::capture::corpus {

struct CorpusFile {
  std::string name;   ///< file name, e.g. "clean_calls.pcap"
  std::string bytes;  ///< complete pcap savefile contents
};

/// Builds all corpus captures, in a fixed order.
std::vector<CorpusFile> BuildAll();

/// The protected-perimeter subnet for replaying this corpus: the callee /
/// proxy-B side (10.2.0.0/16). Sources inside it are from_outside=false,
/// matching the simulator's tap-direction convention (caller side and
/// attackers are "outside").
net::Subnet InsideSubnet();

}  // namespace vids::capture::corpus
