#include "capture/corpus.h"

#include <optional>

#include "capture/pcap.h"
#include "net/datagram.h"
#include "rtp/packet.h"
#include "sdp/sdp.h"
#include "sip/message.h"

namespace vids::capture::corpus {

namespace {

// Topology mirrors the soak harness: proxy A / caller side on 10.1.0.0/16
// (outside the protected perimeter), proxy B / callee side on 10.2.0.0/16
// (inside), attacker on 10.9.0.66.
const net::Endpoint kProxyA{net::IpAddress(10, 1, 0, 1), 5060};
const net::Endpoint kProxyB{net::IpAddress(10, 2, 0, 1), 5060};
const net::Endpoint kAttacker{net::IpAddress(10, 9, 0, 66), 5060};

net::Datagram SipDgram(const sip::Message& message, net::Endpoint src,
                       net::Endpoint dst) {
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = message.Serialize();
  dgram.kind = net::PayloadKind::kSip;
  return dgram;
}

net::Datagram RawDgram(std::string payload, net::Endpoint src,
                       net::Endpoint dst, uint32_t padding = 0) {
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = std::move(payload);
  dgram.kind = net::PayloadKind::kOther;
  dgram.padding_bytes = padding;
  return dgram;
}

net::Datagram RtpDgram(uint32_t ssrc, uint16_t seq, uint32_t ts, bool marker,
                       net::Endpoint src, net::Endpoint dst) {
  rtp::RtpHeader header;
  header.ssrc = ssrc;
  header.sequence_number = seq;
  header.timestamp = ts;
  header.marker = marker;
  header.payload_type = 18;  // G.729, the testbed codec
  net::Datagram dgram;
  dgram.src = src;
  dgram.dst = dst;
  dgram.payload = header.Serialize();
  dgram.kind = net::PayloadKind::kRtp;
  return dgram;
}

sip::Message MakeInvite(const std::string& call_id,
                        const std::string& callee_user,
                        net::Endpoint caller_media,
                        const std::string& caller_user = "alice",
                        const std::string& user_agent = {}) {
  auto invite = sip::Message::MakeRequest(
      sip::Method::kInvite,
      *sip::SipUri::Parse("sip:" + callee_user + "@b.example.com"));
  sip::Via via;
  via.sent_by = kProxyA;
  via.branch = "z9hG4bK" + call_id;
  invite.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:" + caller_user + "@a.example.com");
  from.SetTag("tag-" + call_id);
  invite.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:" + callee_user + "@b.example.com");
  invite.SetTo(to);
  invite.SetCallId(call_id);
  invite.SetCseq(sip::CSeq{1, sip::Method::kInvite});
  if (!user_agent.empty()) invite.SetHeader("User-Agent", user_agent);
  invite.SetBody(sdp::MakeAudioOffer(caller_media).Serialize(),
                 "application/sdp");
  return invite;
}

sip::Message MakeResponse(const sip::Message& request, int status,
                          std::optional<net::Endpoint> answer_media) {
  auto response = sip::Message::MakeResponse(status);
  for (const auto via : request.Headers("Via")) {
    response.AddHeader("Via", via);
  }
  response.SetFrom(*request.From());
  auto to = *request.To();
  to.SetTag("tag-callee");
  response.SetTo(to);
  response.SetCallId(std::string(*request.CallId()));
  response.SetCseq(*request.Cseq());
  if (answer_media) {
    response.SetBody(sdp::MakeAudioOffer(*answer_media).Serialize(),
                     "application/sdp");
  }
  return response;
}

sip::Message MakeInDialog(sip::Method method, const std::string& call_id,
                          uint32_t cseq, const std::string& callee_user,
                          const std::string& caller_user = "alice") {
  auto request = sip::Message::MakeRequest(
      method, *sip::SipUri::Parse("sip:" + callee_user + "@b.example.com"));
  sip::Via via;
  via.sent_by = kProxyA;
  via.branch = "z9hG4bK" + std::string(sip::MethodName(method)) + call_id;
  request.PushVia(via);
  sip::NameAddr from;
  from.uri = *sip::SipUri::Parse("sip:" + caller_user + "@a.example.com");
  from.SetTag("tag-" + call_id);
  request.SetFrom(from);
  sip::NameAddr to;
  to.uri = *sip::SipUri::Parse("sip:" + callee_user + "@b.example.com");
  to.SetTag("tag-callee");
  request.SetTo(to);
  request.SetCallId(call_id);
  request.SetCseq(sip::CSeq{cseq, method});
  return request;
}

/// One complete clean call starting at `t0`: INVITE/180/200/ACK, `rtp_each`
/// RTP packets each way at 20 ms spacing, then BYE/200.
void AddCleanCall(PcapWriter& writer, sim::Time t0, int index,
                  int rtp_each = 8) {
  const std::string call_id = "clean-" + std::to_string(index);
  const std::string callee = "bob" + std::to_string(index);
  const net::Endpoint caller_media{
      net::IpAddress(10, 1, 0, static_cast<uint8_t>(10 + index)),
      static_cast<uint16_t>(4000 + 2 * index)};
  const net::Endpoint callee_media{
      net::IpAddress(10, 2, 0, static_cast<uint8_t>(10 + index)),
      static_cast<uint16_t>(5000 + 2 * index)};
  const auto ms = [&](int64_t m) { return t0 + sim::Duration::Millis(m); };

  const auto invite = MakeInvite(call_id, callee, caller_media);
  writer.Add(ms(0), SipDgram(invite, kProxyA, kProxyB));
  writer.Add(ms(20), SipDgram(MakeResponse(invite, 180, std::nullopt),
                              kProxyB, kProxyA));
  writer.Add(ms(60), SipDgram(MakeResponse(invite, 200, callee_media),
                              kProxyB, kProxyA));
  writer.Add(ms(80),
             SipDgram(MakeInDialog(sip::Method::kAck, call_id, 1, callee),
                      kProxyA, kProxyB));
  const auto ssrc = static_cast<uint32_t>(0x1000 + 2 * index);
  for (int k = 0; k < rtp_each; ++k) {
    const auto seq = static_cast<uint16_t>(k + 1);
    const auto ts_units = 160u * static_cast<uint32_t>(k + 1);
    writer.Add(ms(100 + 20 * k), RtpDgram(ssrc, seq, ts_units, k == 0,
                                          caller_media, callee_media));
    writer.Add(ms(110 + 20 * k), RtpDgram(ssrc + 1, seq, ts_units, k == 0,
                                          callee_media, caller_media));
  }
  const auto bye = MakeInDialog(sip::Method::kBye, call_id, 2, callee);
  writer.Add(ms(400), SipDgram(bye, caller_media, callee_media));
  writer.Add(ms(420), SipDgram(MakeResponse(bye, 200, std::nullopt),
                               callee_media, caller_media));
}

std::string BuildCleanCalls() {
  PcapWriter writer;  // little-endian, nanosecond magic
  for (int i = 0; i < 4; ++i) {
    AddCleanCall(writer, sim::Time::FromNanos(0) +
                             sim::Duration::Millis(500 * i), i);
  }
  return writer.bytes();
}

std::string BuildInviteFlood() {
  // Big-endian, microsecond magic: the flood corpus doubles as the
  // byte-swapped reader's CI coverage.
  PcapWriteOptions options;
  options.big_endian = true;
  options.nanosecond = false;
  PcapWriter writer(options);
  AddCleanCall(writer, sim::Time::FromNanos(0), 0);
  AddCleanCall(writer, sim::Time::FromNanos(0) + sim::Duration::Millis(200),
               1);
  // 8 INVITEs to one AOR inside one second — past the threshold-5/1 s
  // window (config.h), so the aggregate path must raise the flood alert
  // (deduped to exactly one).
  const sim::Time burst = sim::Time::FromNanos(0) + sim::Duration::Seconds(2);
  for (int i = 0; i < 8; ++i) {
    const auto invite =
        MakeInvite("flood-" + std::to_string(i), "victim",
                   net::Endpoint{net::IpAddress(10, 9, 0, 66),
                                 static_cast<uint16_t>(41000 + i)});
    writer.Add(burst + sim::Duration::Millis(50 * i),
               SipDgram(invite, kAttacker, kProxyB));
  }
  return writer.bytes();
}

std::string BuildTornTruncated() {
  // VLAN-tagged frames: the 802.1Q skip path rides through every CI replay.
  PcapWriteOptions options;
  options.vlan = true;
  PcapWriter writer(options);
  const auto at = [](int64_t m) {
    return sim::Time::FromNanos(0) + sim::Duration::Millis(m);
  };

  // A clean call to prove good traffic still classifies among the noise.
  AddCleanCall(writer, at(0), 0, /*rtp_each=*/4);

  // Snaplen-torn INVITE: 100 captured bytes, the rest claimed by the
  // headers but absent (orig_len - incl_len) — cut mid-header.
  const std::string full_invite =
      MakeInvite("torn-1", "bob", net::Endpoint{net::IpAddress(10, 9, 0, 66),
                                                42000})
          .Serialize();
  writer.Add(at(600),
             RawDgram(full_invite.substr(0, 100), kAttacker, kProxyB,
                      static_cast<uint32_t>(full_invite.size() - 100)));

  // Content-Length far past the end of the buffer: must fail closed.
  writer.Add(at(610),
             RawDgram("INVITE sip:bob@b.example.com SIP/2.0\r\n"
                      "Via: SIP/2.0/UDP 10.9.0.66:5060;branch=z9hG4bKcl\r\n"
                      "Call-ID: overrun-1\r\n"
                      "CSeq: 1 INVITE\r\n"
                      "Content-Length: 9999\r\n"
                      "\r\n"
                      "short",
                      kAttacker, kProxyB));

  // LF-only framing whose binary body contains \r\n\r\n: the head must
  // split at the first blank line, not at the CRLFCRLF inside the body.
  writer.Add(at(620),
             RawDgram("OPTIONS sip:bob@b.example.com SIP/2.0\n"
                      "Via: SIP/2.0/UDP 10.9.0.66:5060;branch=z9hG4bKlf\n"
                      "Call-ID: lf-framed-1\n"
                      "CSeq: 1 OPTIONS\n"
                      "Content-Length: 8\n"
                      "\n"
                      "AB\r\n\r\nCD",
                      kAttacker, kProxyB));

  // Compact-form header as the final, unterminated line (no trailing CRLF).
  writer.Add(at(630),
             RawDgram("OPTIONS sip:bob@b.example.com SIP/2.0\r\n"
                      "v: SIP/2.0/UDP 10.9.0.66:5060;branch=z9hG4bKco\r\n"
                      "i:compact-1",
                      kAttacker, kProxyB));

  // Truncated RTP (8 of the 12 fixed-header bytes) and an empty payload.
  writer.Add(at(640), RawDgram(std::string("\x80\x12\x00\x01\x00\x00\x00", 8),
                               kAttacker,
                               net::Endpoint{net::IpAddress(10, 2, 0, 10),
                                             5000}));
  writer.Add(at(650), RawDgram(std::string(), kAttacker, kProxyB));

  // RTCP-shaped 4-byte runt: passes the sniff, truncated for the parser.
  writer.Add(at(660), RawDgram(std::string("\x80\xc8\x00\x06", 4), kAttacker,
                               net::Endpoint{net::IpAddress(10, 2, 0, 10),
                                             5001}));
  return writer.bytes();
}

// --------------- behavioral-attack captures (DESIGN.md §16) --------------
// Every dialog and registration below is protocol-legal — the spec
// machines run each one to a clean terminal state — so the captures must
// raise exactly one behavioral alert each and zero spec-machine alerts.

/// One complete clean scenario dialog (no media): INVITE/180/200/ACK at
/// `t0`, BYE/200 at `t0 + hold`. The caller terminates, so the behavior
/// profile records the call duration.
void AddScenarioCall(PcapWriter& writer, sim::Time t0,
                     const std::string& caller, const std::string& callee,
                     const std::string& call_id, const std::string& ua,
                     int index, sim::Duration hold) {
  const net::Endpoint caller_media{
      kAttacker.ip, static_cast<uint16_t>(43000 + 2 * index)};
  const net::Endpoint callee_media{
      net::IpAddress(10, 2, 0, 10), static_cast<uint16_t>(43001 + 2 * index)};
  const auto ms = [&](int64_t m) { return t0 + sim::Duration::Millis(m); };
  const auto invite = MakeInvite(call_id, callee, caller_media, caller, ua);
  writer.Add(ms(0), SipDgram(invite, kAttacker, kProxyB));
  writer.Add(ms(20), SipDgram(MakeResponse(invite, 180, std::nullopt),
                              kProxyB, kAttacker));
  writer.Add(ms(40), SipDgram(MakeResponse(invite, 200, callee_media),
                              kProxyB, kAttacker));
  writer.Add(ms(60),
             SipDgram(MakeInDialog(sip::Method::kAck, call_id, 1, callee,
                                   caller),
                      kAttacker, kProxyB));
  const auto bye =
      MakeInDialog(sip::Method::kBye, call_id, 2, callee, caller);
  writer.Add(t0 + hold, SipDgram(bye, kAttacker, kProxyB));
  writer.Add(t0 + hold + sim::Duration::Millis(20),
             SipDgram(MakeResponse(bye, 200, std::nullopt), kProxyB,
                      kAttacker));
}

std::string BuildSpitBurst() {
  // 20 short clean calls from one caller at 150 ms spacing: the 10 s
  // call-rate window crosses threshold 15 at call 16 and the weighted
  // score crosses alert_score at call 18 (400 milli-units per call over);
  // the cooldown then holds the alert count at exactly one.
  PcapWriter writer;  // little-endian, nanosecond magic
  const sim::Time t0 = sim::Time::FromNanos(0);
  for (int k = 0; k < 20; ++k) {
    AddScenarioCall(writer, t0 + sim::Duration::Millis(150) * k, "spitter",
                    "spit-victim-" + std::to_string(k),
                    "spit-" + std::to_string(k), "spitware/1.0", k,
                    sim::Duration::Seconds(1));
  }
  return writer.bytes();
}

std::string BuildRegCracking() {
  // 14 REGISTER/401 exchanges against one account, each attempt from a
  // different source address at 300 ms spacing. The failed-auth streak
  // (threshold 8) and the distinct-source spread (threshold 4) cross the
  // alert score together at attempt 10; cooldown dedups the rest.
  PcapWriter writer;
  const sim::Time t0 = sim::Time::FromNanos(0);
  for (int k = 0; k < 14; ++k) {
    const std::string call_id = "crack-" + std::to_string(k);
    const net::Endpoint source{
        net::IpAddress(10, 9, 100, static_cast<uint8_t>(1 + k)), 5060};
    auto reg = sip::Message::MakeRequest(
        sip::Method::kRegister, *sip::SipUri::Parse("sip:b.example.com"));
    sip::Via via;
    via.sent_by = source;
    via.branch = "z9hG4bKreg" + call_id;
    reg.PushVia(via);
    sip::NameAddr aor;
    aor.uri = *sip::SipUri::Parse("sip:reg-victim@b.example.com");
    auto from = aor;
    from.SetTag("tag-" + call_id);
    reg.SetFrom(from);
    reg.SetTo(aor);
    reg.SetCallId(call_id);
    reg.SetCseq(sip::CSeq{1, sip::Method::kRegister});
    const sim::Time t = t0 + sim::Duration::Millis(300) * k;
    writer.Add(t, SipDgram(reg, source, kProxyB));
    writer.Add(t + sim::Duration::Millis(20),
               SipDgram(MakeResponse(reg, 401, std::nullopt), kProxyB,
                        source));
  }
  return writer.bytes();
}

std::string BuildTollFraud() {
  // 24 clean calls to distinct premium AORs at 2 s spacing with 5 s holds:
  // every short-window rate stays far under threshold; only the 60 s
  // destination fan-out window (threshold 16) accumulates, crossing the
  // alert score at call 23. Low and slow — the call pattern a spec machine
  // cannot distinguish from business traffic.
  PcapWriter writer;
  const sim::Time t0 = sim::Time::FromNanos(0);
  for (int k = 0; k < 24; ++k) {
    AddScenarioCall(writer, t0 + sim::Duration::Seconds(2) * k, "fraudster",
                    "premium-" + std::to_string(k),
                    "fraud-" + std::to_string(k), "fraudster-phone/2.1",
                    100 + k, sim::Duration::Seconds(5));
  }
  return writer.bytes();
}

}  // namespace

std::vector<CorpusFile> BuildAll() {
  return {
      {"clean_calls.pcap", BuildCleanCalls()},
      {"invite_flood.pcap", BuildInviteFlood()},
      {"torn_truncated.pcap", BuildTornTruncated()},
      {"spit_burst.pcap", BuildSpitBurst()},
      {"reg_cracking.pcap", BuildRegCracking()},
      {"toll_fraud.pcap", BuildTollFraud()},
  };
}

net::Subnet InsideSubnet() {
  return net::Subnet(net::IpAddress(10, 2, 0, 0), 16);
}

}  // namespace vids::capture::corpus
