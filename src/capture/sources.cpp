#include "capture/sources.h"

namespace vids::capture {

void SimSource::Append(sim::Time when, const net::Datagram& dgram,
                       bool from_outside) {
  if (!packets_.empty() && when < packets_.back().when) {
    when = packets_.back().when;
  }
  packets_.push_back(TimedPacket{when, from_outside, dgram});
}

net::InlineTap::Monitor SimSource::Recorder(sim::Scheduler& scheduler) {
  return [this, &scheduler](const net::Datagram& dgram, bool from_outside) {
    Append(scheduler.Now(), dgram, from_outside);
  };
}

size_t SimSource::PullBatch(std::vector<TimedPacket>& out, size_t max) {
  out.clear();
  while (out.size() < max && cursor_ < packets_.size()) {
    out.push_back(packets_[cursor_++]);
    clock_ = out.back().when;
  }
  return out.size();
}

void SimSource::Rewind() {
  cursor_ = 0;
  clock_ = sim::Time();
}

size_t TraceLogSource::PullBatch(std::vector<TimedPacket>& out, size_t max) {
  out.clear();
  const auto& records = log_.records();
  while (out.size() < max && cursor_ < records.size()) {
    const ids::TraceRecord& record = records[cursor_++];
    out.push_back(TimedPacket{record.when, record.from_outside, record.dgram});
    clock_ = record.when;
  }
  return out.size();
}

}  // namespace vids::capture
