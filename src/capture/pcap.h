// Classic pcap (libpcap savefile) reader and writer — no libpcap.
//
// The reader is a hand parser for the format an operator actually hands a
// tap-deployed IDS: classic pcap (magic 0xa1b2c3d4 microsecond or
// 0xa1b23c4d nanosecond, either byte order), linktype Ethernet (with up to
// two stacked 802.1Q/802.1ad VLAN tags) or raw IPv4, carrying UDP. Frames
// that are not UDP/IPv4 (ARP, TCP, fragments, …) are skipped and counted;
// a structurally broken file (bad magic, record running past EOF) stops
// the stream with `error()` set after delivering everything decoded up to
// the fault. Snaplen-truncated records are preserved as torn packets: the
// bytes beyond `incl_len` become `Datagram::padding_bytes`
// (= orig_len - incl_len), so wire sizes round-trip without filler.
//
// The writer exists so the corpus generator (tools/make_corpus) and the
// round-trip tests can fabricate deterministic captures in both byte
// orders; it emits one UDP/IPv4/Ethernet frame per datagram with MACs
// derived from the IPs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "capture/packet_source.h"
#include "net/address.h"
#include "net/datagram.h"
#include "sim/time.h"

namespace vids::capture {

struct PcapReadOptions {
  /// Direction inference: packets whose *source* address lies inside this
  /// subnet are marked from_outside = false, everything else
  /// from_outside = true. Unset => all traffic is treated as outside (the
  /// conservative tap-on-the-perimeter default).
  std::optional<net::Subnet> inside;

  /// Rebase timestamps so the first packet arrives at t = 0 on the sim
  /// clock. Detection is time-translation-invariant, so verdict counts are
  /// unaffected; disable to keep absolute capture epochs.
  bool rebase_to_first = true;
};

/// Decode tallies, for operator output and skip-accounting in tests.
struct PcapStats {
  uint64_t records = 0;            ///< records decoded, delivered or not
  uint64_t delivered = 0;          ///< UDP datagrams handed to the engine
  uint64_t skipped_non_ip = 0;     ///< non-IPv4 ethertype / IP version
  uint64_t skipped_non_udp = 0;    ///< IPv4 but protocol != UDP
  uint64_t skipped_fragment = 0;   ///< IPv4 fragments (no reassembly)
  uint64_t skipped_malformed = 0;  ///< headers truncated inside the snap
};

class PcapFileSource : public PacketSource {
 public:
  /// Parses the global header eagerly; on a bad header the source is
  /// created with error() set and yields nothing.
  explicit PcapFileSource(std::string bytes, PcapReadOptions options = {});

  /// Reads `path` into memory. An unreadable file yields a source with
  /// error() set (uniform handling with in-stream faults).
  static std::unique_ptr<PcapFileSource> Open(const std::string& path,
                                              PcapReadOptions options = {});

  size_t PullBatch(std::vector<TimedPacket>& out, size_t max) override;
  sim::Time clock() const override { return clock_; }
  const std::string& error() const override { return error_; }

  const PcapStats& stats() const { return stats_; }
  bool nanosecond() const { return nanosecond_; }
  bool swapped() const { return swapped_; }
  uint32_t linktype() const { return linktype_; }

 private:
  /// Decodes records until one UDP packet materializes. Returns false at
  /// end of stream (clean EOF or fault — error_ distinguishes).
  bool DecodeNext(TimedPacket& out);

  uint32_t ReadU32(size_t offset) const;
  uint16_t ReadU16(size_t offset) const;

  std::string data_;
  PcapReadOptions options_;
  size_t offset_ = 0;
  bool swapped_ = false;
  bool nanosecond_ = false;
  uint32_t linktype_ = 0;
  int64_t first_ts_ns_ = -1;
  sim::Time clock_;
  uint64_t next_id_ = 1;
  PcapStats stats_;
  std::string error_;
};

struct PcapWriteOptions {
  bool big_endian = false;  ///< emit the byte-swapped magic + headers
  bool nanosecond = true;   ///< 0xa1b23c4d nanosecond-resolution magic
  bool vlan = false;        ///< wrap every frame in one 802.1Q tag
  /// Capture epoch: sim t=0 maps to this many seconds after the Unix
  /// epoch. Fixed (not wall clock) so corpus regeneration is
  /// byte-deterministic.
  int64_t epoch_base_s = 1'600'000'000;
};

class PcapWriter {
 public:
  explicit PcapWriter(PcapWriteOptions options = {});

  /// Appends one frame. `dgram.padding_bytes` becomes the snap-truncated
  /// tail: the IP/UDP headers claim payload + padding bytes, but only
  /// `payload` is stored (orig_len - incl_len = padding).
  void Add(sim::Time when, const net::Datagram& dgram);

  const std::string& bytes() const { return bytes_; }
  bool WriteFile(const std::string& path) const;

 private:
  void PutU16(uint16_t value);
  void PutU32(uint32_t value);

  PcapWriteOptions options_;
  std::string bytes_;
  uint16_t next_ip_id_ = 1;
};

}  // namespace vids::capture
