#include "net/host.h"

#include <stdexcept>

#include "common/log.h"

namespace vids::net {

void Host::SendUdp(uint16_t src_port, Endpoint dst, std::string payload,
                   PayloadKind kind, uint32_t padding_bytes) {
  Datagram dgram;
  dgram.src = Endpoint{ip_, src_port};
  dgram.dst = dst;
  dgram.payload = std::move(payload);
  dgram.kind = kind;
  dgram.padding_bytes = padding_bytes;
  SendRaw(std::move(dgram));
}

void Host::SendRaw(Datagram dgram) {
  if (uplink_ == nullptr) {
    throw std::logic_error(std::string(name()) + ": SendRaw before SetUplink");
  }
  dgram.sent_time = network_.scheduler().Now();
  dgram.id = network_.NextDatagramId();
  ++datagrams_sent_;
  uplink_->Send(std::move(dgram));
}

void Host::Receive(const Datagram& dgram) {
  if (dgram.dst.ip != ip_) {
    ++datagrams_dropped_;
    return;
  }
  const auto it = udp_handlers_.find(dgram.dst.port);
  if (it == udp_handlers_.end()) {
    ++datagrams_dropped_;
    VIDS_TRACE() << name() << ": no listener on port " << dgram.dst.port;
    return;
  }
  ++datagrams_received_;
  it->second(dgram);
}

}  // namespace vids::net
