// Node and link abstractions of the simulated network.
#pragma once

#include <string>
#include <string_view>

#include "net/datagram.h"

namespace vids::net {

/// Anything datagrams can be delivered to: hosts, routers, hubs, clouds and
/// the inline vIDS tap all implement Node.
class Node {
 public:
  explicit Node(std::string name) : name_(std::move(name)) {}
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  std::string_view name() const { return name_; }

  /// Called by a Link when a datagram arrives at this node.
  virtual void Receive(const Datagram& dgram) = 0;

 private:
  std::string name_;
};

}  // namespace vids::net
