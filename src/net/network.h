// Network container: owns nodes and links, hands out datagram ids.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "net/link.h"
#include "net/node.h"
#include "sim/scheduler.h"

namespace vids::net {

class Network {
 public:
  Network(sim::Scheduler& scheduler, uint64_t seed)
      : scheduler_(scheduler), rng_(seed, "network") {}

  /// Constructs a network element of type `T` owned by the network and
  /// returns a reference valid for the network's lifetime. Works for Node
  /// subclasses and for composite elements like InlineTap.
  template <typename T, typename... Args>
  T& AddNode(Args&&... args) {
    auto node = std::make_shared<T>(std::forward<Args>(args)...);
    T& ref = *node;
    nodes_.push_back(std::move(node));
    return ref;
  }

  /// Creates a unidirectional link delivering into `to`, with an explicit
  /// name. Use when the sending element is not itself a Node (e.g. a tap).
  Link& MakeLink(std::string name, Node& to, const LinkConfig& config) {
    auto link =
        std::make_unique<Link>(std::move(name), scheduler_, to, config, rng_);
    Link& ref = *link;
    links_.push_back(std::move(link));
    return ref;
  }

  /// Creates a unidirectional link `from --> to`, named after its endpoints;
  /// the same pair may be connected repeatedly.
  Link& Connect(const Node& from, Node& to, const LinkConfig& config) {
    return MakeLink(std::string(from.name()) + "->" + std::string(to.name()),
                    to, config);
  }

  /// Creates a pair of opposite unidirectional links (a duplex connection).
  std::pair<Link&, Link&> ConnectDuplex(Node& a, Node& b,
                                        const LinkConfig& config) {
    return {Connect(a, b, config), Connect(b, a, config)};
  }

  sim::Scheduler& scheduler() { return scheduler_; }
  common::Stream& rng() { return rng_; }
  uint64_t NextDatagramId() { return next_datagram_id_++; }

  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

 private:
  sim::Scheduler& scheduler_;
  common::Stream rng_;
  std::vector<std::shared_ptr<void>> nodes_;  // type-erased element owners
  std::vector<std::unique_ptr<Link>> links_;
  uint64_t next_datagram_id_ = 1;
};

}  // namespace vids::net
