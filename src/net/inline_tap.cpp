#include "net/inline_tap.h"

#include <algorithm>

#include "common/log.h"

namespace vids::net {

void InlineTap::HandlePacket(const Datagram& dgram, bool from_outside) {
  ++packets_seen_;
  if (monitor_) monitor_(dgram, from_outside);
  sim::Duration cost{};
  if (inspector_) cost = inspector_(dgram, from_outside);
  if (cost <= sim::Duration{}) {
    Forward(dgram, from_outside);
    return;
  }
  cpu_time_used_ += cost;
  sim::Time& lane = dgram.kind == PayloadKind::kRtp ? media_busy_until_
                                                    : signaling_busy_until_;
  const sim::Time start = std::max(scheduler_.Now(), lane);
  lane = start + cost;
  scheduler_.ScheduleAt(lane, [this, dgram, from_outside] {
    Forward(dgram, from_outside);
  });
}

void InlineTap::Forward(const Datagram& dgram, bool from_outside) {
  Link* out = from_outside ? inside_link_ : outside_link_;
  if (out == nullptr) {
    VIDS_DEBUG() << "tap: no link on the "
                 << (from_outside ? "inside" : "outside") << " side";
    return;
  }
  out->Send(dgram);
}

}  // namespace vids::net
