#include "net/link.h"

#include <algorithm>
#include <utility>

namespace vids::net {

LinkConfig FastEthernet() {
  return LinkConfig{.bandwidth_bps = 100'000'000,
                    .propagation = sim::Duration::Micros(5),
                    .loss_rate = 0.0};
}

LinkConfig Ds1() {
  return LinkConfig{.bandwidth_bps = 1'544'000,
                    .propagation = sim::Duration::Micros(500),
                    .loss_rate = 0.0};
}

LinkConfig InternetCloud() {
  // The paper assumes a 50 ms Internet delay with 0.42% packet loss between
  // enterprise networks A and B (§7.1). Serialization inside the cloud is
  // not modeled (bandwidth_bps = 0 → infinite).
  return LinkConfig{.bandwidth_bps = 0,
                    .propagation = sim::Duration::Millis(50),
                    .loss_rate = 0.0042};
}

Link::Link(std::string name, sim::Scheduler& scheduler, Node& dst,
           const LinkConfig& config, common::Stream& rng)
    : name_(std::move(name)),
      scheduler_(scheduler),
      dst_(dst),
      config_(config),
      rng_(rng.Fork(name_)) {}

void Link::Send(Datagram dgram) {
  if (drop_filter_ && drop_filter_(dgram)) {
    ++packets_dropped_;
    return;
  }
  if (config_.loss_rate > 0.0 && rng_.NextBernoulli(config_.loss_rate)) {
    ++packets_dropped_;
    return;
  }
  sim::Duration tx = sim::Duration{};
  if (config_.bandwidth_bps > 0) {
    const uint64_t bits = uint64_t{dgram.WireBytes()} * 8;
    tx = sim::Duration::Nanos(static_cast<int64_t>(
        bits * 1'000'000'000ULL / config_.bandwidth_bps));
  }
  const sim::Time start = std::max(scheduler_.Now(), busy_until_);
  busy_until_ = start + tx;
  const sim::Time arrival = busy_until_ + config_.propagation;
  ++packets_sent_;
  bytes_sent_ += dgram.WireBytes();
  scheduler_.ScheduleAt(arrival, [this, dgram = std::move(dgram)] {
    dst_.Receive(dgram);
  });
}

}  // namespace vids::net
