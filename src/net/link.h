// Unidirectional point-to-point link with serialization, propagation and loss.
//
// Models what the paper's OPNET topology models: 100BaseT LAN segments, the
// DS1 (1.544 Mb/s) uplinks, and the Internet cloud's 50 ms / 0.42% loss path.
// Serialization uses a busy-until FIFO, so competing G.729 streams queue and
// produce the jitter Figure 10 measures.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "net/node.h"
#include "sim/scheduler.h"

namespace vids::net {

struct LinkConfig {
  /// Transmission rate in bits per second. 0 means infinite (no
  /// serialization delay), used for intra-host shortcuts.
  uint64_t bandwidth_bps = 100'000'000;
  sim::Duration propagation = sim::Duration::Micros(5);
  /// Independent per-packet drop probability.
  double loss_rate = 0.0;
};

/// Standard profiles matching the paper's testbed (§7.1).
LinkConfig FastEthernet();              // 100BaseT LAN segment
LinkConfig Ds1();                       // 1.544 Mb/s WAN uplink
LinkConfig InternetCloud();             // 50 ms, 0.42% loss

class Link {
 public:
  /// `rng` must outlive the link; it is forked per link name so loss draws
  /// are independent across links.
  Link(std::string name, sim::Scheduler& scheduler, Node& dst,
       const LinkConfig& config, common::Stream& rng);

  /// Queues `dgram` for transmission toward the destination node.
  void Send(Datagram dgram);

  /// Deterministic failure injection: when set, a datagram for which the
  /// filter returns true is dropped (counted in packets_dropped). Used by
  /// tests to lose *specific* packets — e.g. exactly one 200 OK — where
  /// the random loss_rate can't be aimed.
  using DropFilter = std::function<bool(const Datagram&)>;
  void SetDropFilter(DropFilter filter) { drop_filter_ = std::move(filter); }

  std::string_view name() const { return name_; }
  const LinkConfig& config() const { return config_; }

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_dropped() const { return packets_dropped_; }
  uint64_t bytes_sent() const { return bytes_sent_; }

 private:
  std::string name_;
  sim::Scheduler& scheduler_;
  Node& dst_;
  LinkConfig config_;
  common::Stream rng_;
  DropFilter drop_filter_;
  sim::Time busy_until_;
  uint64_t packets_sent_ = 0;
  uint64_t packets_dropped_ = 0;
  uint64_t bytes_sent_ = 0;
};

}  // namespace vids::net
