#include "net/forwarder.h"

#include "common/log.h"

namespace vids::net {

void Forwarder::Receive(const Datagram& dgram) {
  Link* best = nullptr;
  int best_len = -1;
  for (const auto& route : routes_) {
    if (route.subnet.Contains(dgram.dst.ip) &&
        route.subnet.prefix_len() > best_len) {
      best = route.link;
      best_len = route.subnet.prefix_len();
    }
  }
  if (best == nullptr) best = default_route_;
  if (best == nullptr) {
    ++packets_unroutable_;
    VIDS_DEBUG() << name() << ": no route to " << dgram.dst;
    return;
  }
  ++packets_forwarded_;
  best->Send(dgram);
}

}  // namespace vids::net
