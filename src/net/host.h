// An end host with a single network interface and a UDP port demultiplexer.
//
// SIP user agents, proxies and attackers are applications bound to ports on
// Hosts. Attackers additionally use SendRaw to forge source addresses — the
// spoofed CANCEL/BYE attacks of §3.1 depend on it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "net/link.h"
#include "net/network.h"
#include "net/node.h"

namespace vids::net {

class Host : public Node {
 public:
  using UdpHandler = std::function<void(const Datagram&)>;

  Host(Network& network, std::string name, IpAddress ip)
      : Node(std::move(name)), network_(network), ip_(ip) {}

  IpAddress ip() const { return ip_; }

  /// The host's uplink toward the rest of the network. Must be set before
  /// sending.
  void SetUplink(Link& link) { uplink_ = &link; }

  /// Registers `handler` for datagrams addressed to `port`. Overwrites any
  /// previous binding.
  void BindUdp(uint16_t port, UdpHandler handler) {
    udp_handlers_[port] = std::move(handler);
  }
  void UnbindUdp(uint16_t port) { udp_handlers_.erase(port); }

  /// Sends a UDP datagram from this host's address.
  void SendUdp(uint16_t src_port, Endpoint dst, std::string payload,
               PayloadKind kind, uint32_t padding_bytes = 0);

  /// Sends a fully caller-controlled datagram (spoofing allowed). Used by
  /// attack injectors; legitimate applications use SendUdp.
  void SendRaw(Datagram dgram);

  void Receive(const Datagram& dgram) override;

  uint64_t datagrams_sent() const { return datagrams_sent_; }
  uint64_t datagrams_received() const { return datagrams_received_; }
  uint64_t datagrams_dropped() const { return datagrams_dropped_; }

 private:
  Network& network_;
  IpAddress ip_;
  Link* uplink_ = nullptr;
  std::map<uint16_t, UdpHandler> udp_handlers_;
  uint64_t datagrams_sent_ = 0;
  uint64_t datagrams_received_ = 0;
  uint64_t datagrams_dropped_ = 0;
};

}  // namespace vids::net
