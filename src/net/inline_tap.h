// Inline tap: the bump-in-the-wire network element the vIDS host occupies.
//
// Fig. 1/Fig. 7 place vIDS between the edge router and the protected
// network, seeing all traffic in both directions. The tap has two ports;
// the topology connects the outside link to port_from_outside() and the
// inside link to port_from_inside(), so the inspector learns the true
// arrival direction — which IP spoofing cannot forge.
//
// Processing model: the inspector returns a cost per packet; packets queue
// in a FIFO per *lane* and are forwarded when processing completes. There
// are two lanes — signaling and media — so heavyweight SIP analysis
// (~50 ms per message on the paper's hardware) delays call setup but does
// not serialize the latency-critical RTP fast path. This mirrors the
// paper's measurements, where vIDS adds ~100 ms to call setup yet only
// ~1.5 ms to RTP delay: impossible on a single shared service queue. With
// a null inspector the tap is the paper's "without vIDS" arm — plain
// forwarding at zero cost.
#pragma once

#include <functional>

#include "net/link.h"
#include "net/node.h"
#include "sim/scheduler.h"

namespace vids::net {

class InlineTap {
 public:
  /// Inspects a packet and returns the CPU time to charge for it.
  /// `from_outside` is true when the packet arrived on the outside port.
  using Inspector =
      std::function<sim::Duration(const Datagram&, bool from_outside)>;

  InlineTap(std::string name, sim::Scheduler& scheduler)
      : scheduler_(scheduler),
        inside_port_(name + "/inside", *this, /*from_outside=*/false),
        outside_port_(name + "/outside", *this, /*from_outside=*/true) {}

  /// Node to which the *inside* network's link toward the tap connects.
  Node& port_from_inside() { return inside_port_; }
  /// Node to which the *outside* (Internet-facing) link connects.
  Node& port_from_outside() { return outside_port_; }

  /// Links the tap transmits on, one per side.
  void SetLinks(Link& toward_inside, Link& toward_outside) {
    inside_link_ = &toward_inside;
    outside_link_ = &toward_outside;
  }

  /// Installs the analysis stage. Pass nullptr to revert to plain forwarding.
  void SetInspector(Inspector inspector) { inspector_ = std::move(inspector); }

  /// A passive copy of every packet (a SPAN/mirror port): no cost, no
  /// reordering. Used by measurement probes and by attack eavesdroppers.
  using Monitor = std::function<void(const Datagram&, bool from_outside)>;
  void SetMonitor(Monitor monitor) { monitor_ = std::move(monitor); }

  uint64_t packets_seen() const { return packets_seen_; }
  /// Total simulated CPU time charged by the inspector.
  sim::Duration cpu_time_used() const { return cpu_time_used_; }

 private:
  class Port : public Node {
   public:
    Port(std::string name, InlineTap& tap, bool from_outside)
        : Node(std::move(name)), tap_(tap), from_outside_(from_outside) {}
    void Receive(const Datagram& dgram) override {
      tap_.HandlePacket(dgram, from_outside_);
    }

   private:
    InlineTap& tap_;
    bool from_outside_;
  };

  void HandlePacket(const Datagram& dgram, bool from_outside);
  void Forward(const Datagram& dgram, bool from_outside);

  sim::Scheduler& scheduler_;
  Port inside_port_;
  Port outside_port_;
  Link* inside_link_ = nullptr;
  Link* outside_link_ = nullptr;
  Inspector inspector_;
  Monitor monitor_;
  sim::Time signaling_busy_until_;
  sim::Time media_busy_until_;
  uint64_t packets_seen_ = 0;
  sim::Duration cpu_time_used_;
};

}  // namespace vids::net
