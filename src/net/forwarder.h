// Longest-prefix-match packet forwarder: the basis of routers and hubs.
//
// The paper's topology (Fig. 7) uses hubs inside each enterprise LAN and
// edge routers toward the Internet; both only need next-hop selection by
// destination address at the fidelity the evaluation depends on, so both are
// Forwarder instances with different route tables.
#pragma once

#include <cstdint>
#include <vector>

#include "net/link.h"
#include "net/node.h"

namespace vids::net {

class Forwarder : public Node {
 public:
  explicit Forwarder(std::string name) : Node(std::move(name)) {}

  /// Adds a route; the most specific (longest prefix) match wins.
  void AddRoute(Subnet subnet, Link& link) {
    routes_.push_back({subnet, &link});
  }

  /// Route used when no subnet matches (e.g. toward the Internet).
  void SetDefaultRoute(Link& link) { default_route_ = &link; }

  void Receive(const Datagram& dgram) override;

  uint64_t packets_forwarded() const { return packets_forwarded_; }
  uint64_t packets_unroutable() const { return packets_unroutable_; }

 private:
  struct Route {
    Subnet subnet;
    Link* link;
  };
  std::vector<Route> routes_;
  Link* default_route_ = nullptr;
  uint64_t packets_forwarded_ = 0;
  uint64_t packets_unroutable_ = 0;
};

}  // namespace vids::net
