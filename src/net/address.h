// IPv4 addressing for the simulated network.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

namespace vids::net {

/// An IPv4 address (host byte order).
class IpAddress {
 public:
  constexpr IpAddress() = default;
  constexpr explicit IpAddress(uint32_t bits) : bits_(bits) {}
  constexpr IpAddress(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : bits_((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
              d) {}

  /// Parses dotted-quad notation ("192.168.1.20"). Returns nullopt on error.
  static std::optional<IpAddress> Parse(std::string_view text);

  constexpr uint32_t bits() const { return bits_; }
  std::string ToString() const;

  constexpr auto operator<=>(const IpAddress&) const = default;

 private:
  uint32_t bits_ = 0;
};

/// An IPv4 subnet in CIDR form, used by forwarding tables.
class Subnet {
 public:
  constexpr Subnet() = default;
  constexpr Subnet(IpAddress base, int prefix_len)
      : base_(base), prefix_len_(prefix_len) {}

  /// Parses "10.1.0.0/16". Returns nullopt on error.
  static std::optional<Subnet> Parse(std::string_view text);

  constexpr bool Contains(IpAddress addr) const {
    if (prefix_len_ == 0) return true;
    const uint32_t mask = ~uint32_t{0} << (32 - prefix_len_);
    return (addr.bits() & mask) == (base_.bits() & mask);
  }
  constexpr int prefix_len() const { return prefix_len_; }
  constexpr IpAddress base() const { return base_; }
  std::string ToString() const;

 private:
  IpAddress base_;
  int prefix_len_ = 0;
};

/// A transport endpoint: IP address + UDP port.
struct Endpoint {
  IpAddress ip;
  uint16_t port = 0;

  auto operator<=>(const Endpoint&) const = default;
  std::string ToString() const;

  /// 48-bit binary key (ip << 16 | port) for hash-map indexing — the
  /// allocation-free alternative to keying containers on ToString().
  constexpr uint64_t PackedKey() const {
    return (uint64_t{ip.bits()} << 16) | port;
  }

  /// Parses "10.1.0.5:5060". Returns nullopt on error.
  static std::optional<Endpoint> Parse(std::string_view text);
};

std::ostream& operator<<(std::ostream& os, IpAddress addr);
std::ostream& operator<<(std::ostream& os, const Endpoint& ep);

}  // namespace vids::net

template <>
struct std::hash<vids::net::IpAddress> {
  size_t operator()(vids::net::IpAddress addr) const noexcept {
    return std::hash<uint32_t>{}(addr.bits());
  }
};

template <>
struct std::hash<vids::net::Endpoint> {
  size_t operator()(const vids::net::Endpoint& ep) const noexcept {
    return std::hash<uint64_t>{}(ep.PackedKey());
  }
};
