// The unit of simulated traffic: a UDP datagram.
//
// SIP (the paper prefers UDP transport, §2.1) and RTP both ride on UDP, so
// the simulator carries exactly one packet type. The wire size used for link
// serialization is payload + padding + the 28-byte UDP/IPv4 header.
#pragma once

#include <cstdint>
#include <string>

#include "net/address.h"
#include "sim/time.h"

namespace vids::net {

/// Which application protocol a datagram carries; set by the sender so the
/// packet classifier and per-protocol processing-delay model can dispatch
/// without re-parsing. (A real deployment infers this from ports; the
/// simulation keeps the label explicit and the classifier verifies it.)
enum class PayloadKind : uint8_t { kSip, kRtp, kOther };

struct Datagram {
  Endpoint src;
  Endpoint dst;
  std::string payload;
  PayloadKind kind = PayloadKind::kOther;

  /// Extra bytes counted on the wire but not carried in `payload`; used to
  /// model the paper's constant 500-byte SIP messages and codec payloads
  /// without materializing filler bytes.
  uint32_t padding_bytes = 0;

  /// Stamped by the sending host; receivers use it to measure one-way delay.
  sim::Time sent_time;

  /// Unique per-simulation id, for tracing and duplicate detection.
  uint64_t id = 0;

  /// Bytes occupying the link, including UDP/IPv4 headers.
  uint32_t WireBytes() const {
    return static_cast<uint32_t>(payload.size()) + padding_bytes + 28;
  }
};

}  // namespace vids::net
