#include "net/address.h"

#include "common/strings.h"

namespace vids::net {

using common::ParseInt;

std::optional<IpAddress> IpAddress::Parse(std::string_view text) {
  // Manual dotted-quad walk: exactly four '.'-separated pieces, each a
  // decimal octet (ParseInt trims, so lws around pieces is tolerated exactly
  // as the old Split-based version allowed). No heap traffic — this runs in
  // the per-packet inspect path via Via and SDP connection lines.
  uint32_t bits = 0;
  size_t start = 0;
  for (int i = 0; i < 4; ++i) {
    const size_t dot = text.find('.', start);
    const bool last = (i == 3);
    if (last != (dot == std::string_view::npos)) return std::nullopt;
    const std::string_view piece =
        last ? text.substr(start) : text.substr(start, dot - start);
    const auto octet = ParseInt<uint32_t>(piece);
    if (!octet || *octet > 255) return std::nullopt;
    bits = (bits << 8) | *octet;
    start = dot + 1;
  }
  return IpAddress(bits);
}

std::string IpAddress::ToString() const {
  return std::to_string((bits_ >> 24) & 0xFF) + "." +
         std::to_string((bits_ >> 16) & 0xFF) + "." +
         std::to_string((bits_ >> 8) & 0xFF) + "." +
         std::to_string(bits_ & 0xFF);
}

std::optional<Subnet> Subnet::Parse(std::string_view text) {
  const auto split = common::SplitOnce(text, '/');
  if (!split) return std::nullopt;
  const auto base = IpAddress::Parse(split->first);
  const auto prefix = ParseInt<int>(split->second);
  if (!base || !prefix || *prefix < 0 || *prefix > 32) return std::nullopt;
  return Subnet(*base, *prefix);
}

std::string Subnet::ToString() const {
  return base_.ToString() + "/" + std::to_string(prefix_len_);
}

std::string Endpoint::ToString() const {
  return ip.ToString() + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::Parse(std::string_view text) {
  const auto split = common::SplitOnce(text, ':');
  if (!split) return std::nullopt;
  const auto ip = IpAddress::Parse(split->first);
  const auto port = ParseInt<uint16_t>(split->second);
  if (!ip || !port) return std::nullopt;
  return Endpoint{*ip, *port};
}

std::ostream& operator<<(std::ostream& os, IpAddress addr) {
  return os << addr.ToString();
}

std::ostream& operator<<(std::ostream& os, const Endpoint& ep) {
  return os << ep.ToString();
}

}  // namespace vids::net
