#include "net/address.h"

#include "common/strings.h"

namespace vids::net {

using common::ParseInt;
using common::Split;

std::optional<IpAddress> IpAddress::Parse(std::string_view text) {
  const auto parts = Split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  uint32_t bits = 0;
  for (const auto& part : parts) {
    const auto octet = ParseInt<uint32_t>(part);
    if (!octet || *octet > 255) return std::nullopt;
    bits = (bits << 8) | *octet;
  }
  return IpAddress(bits);
}

std::string IpAddress::ToString() const {
  return std::to_string((bits_ >> 24) & 0xFF) + "." +
         std::to_string((bits_ >> 16) & 0xFF) + "." +
         std::to_string((bits_ >> 8) & 0xFF) + "." +
         std::to_string(bits_ & 0xFF);
}

std::optional<Subnet> Subnet::Parse(std::string_view text) {
  const auto split = common::SplitOnce(text, '/');
  if (!split) return std::nullopt;
  const auto base = IpAddress::Parse(split->first);
  const auto prefix = ParseInt<int>(split->second);
  if (!base || !prefix || *prefix < 0 || *prefix > 32) return std::nullopt;
  return Subnet(*base, *prefix);
}

std::string Subnet::ToString() const {
  return base_.ToString() + "/" + std::to_string(prefix_len_);
}

std::string Endpoint::ToString() const {
  return ip.ToString() + ":" + std::to_string(port);
}

std::optional<Endpoint> Endpoint::Parse(std::string_view text) {
  const auto split = common::SplitOnce(text, ':');
  if (!split) return std::nullopt;
  const auto ip = IpAddress::Parse(split->first);
  const auto port = ParseInt<uint16_t>(split->second);
  if (!ip || !port) return std::nullopt;
  return Endpoint{*ip, *port};
}

std::ostream& operator<<(std::ostream& os, IpAddress addr) {
  return os << addr.ToString();
}

std::ostream& operator<<(std::ostream& os, const Endpoint& ep) {
  return os << ep.ToString();
}

}  // namespace vids::net
