#include "sdp/sdp.h"

#include <sstream>

#include "common/strings.h"

namespace vids::sdp {

using common::ParseInt;
using common::Split;
using common::SplitOnce;
using common::Trim;

namespace {

// Parses "IN IP4 10.1.0.5" (the tail of o= and the whole of c=).
std::optional<net::IpAddress> ParseConnection(std::string_view value) {
  const auto parts = Split(value, ' ');
  if (parts.size() != 3 || parts[0] != "IN" || parts[1] != "IP4") {
    return std::nullopt;
  }
  return net::IpAddress::Parse(parts[2]);
}

bool ParseMediaLine(std::string_view value, MediaDescription& out) {
  const auto parts = Split(value, ' ');
  if (parts.size() < 4) return false;
  out.media = std::string(parts[0]);
  const auto port = ParseInt<uint16_t>(parts[1]);
  if (!port) return false;
  out.port = *port;
  out.transport = std::string(parts[2]);
  out.payload_types.clear();
  for (size_t i = 3; i < parts.size(); ++i) {
    const auto pt = ParseInt<int>(parts[i]);
    if (!pt) return false;
    out.payload_types.push_back(*pt);
  }
  return true;
}

void ParseAttribute(std::string_view value, MediaDescription& media) {
  if (common::IStartsWith(value, "rtpmap:")) {
    const auto rest = value.substr(7);
    const auto split = SplitOnce(rest, ' ');
    if (split) {
      const auto pt = ParseInt<int>(split->first);
      if (pt) {
        media.rtpmap[*pt] = std::string(split->second);
        return;
      }
    }
  }
  media.attributes.emplace_back(value);
}

std::string_view WellKnownEncoding(int payload_type) {
  // Static payload types from the RTP A/V profile (RFC 3551 table 4).
  switch (payload_type) {
    case 0: return "PCMU";
    case 3: return "GSM";
    case 4: return "G723";
    case 8: return "PCMA";
    case 9: return "G722";
    case 18: return "G729";
    default: return "";
  }
}

// Iterates the space-separated pieces of a line value, trimming each and
// keeping empties — common::Split(s, ' ') without the vector, so ProbeAudio
// counts pieces exactly like the allocating parser does.
struct PieceCursor {
  std::string_view s;
  size_t start = 0;
  bool done = false;

  std::optional<std::string_view> Next() {
    if (done) return std::nullopt;
    const size_t pos = s.find(' ', start);
    if (pos == std::string_view::npos) {
      done = true;
      return Trim(s.substr(start));
    }
    const auto piece = Trim(s.substr(start, pos - start));
    start = pos + 1;
    return piece;
  }
};

}  // namespace

std::optional<SessionDescription> SessionDescription::Parse(
    std::string_view body) {
  SessionDescription sd;
  bool saw_version = false;
  MediaDescription* current_media = nullptr;

  size_t pos = 0;
  while (pos < body.size()) {
    size_t eol = body.find('\n', pos);
    std::string_view line = body.substr(
        pos, eol == std::string_view::npos ? body.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? body.size() : eol + 1;
    line = Trim(line);
    if (line.empty()) continue;
    if (line.size() < 2 || line[1] != '=') return std::nullopt;
    const char type = line[0];
    const std::string_view value = Trim(line.substr(2));

    switch (type) {
      case 'v':
        if (value != "0") return std::nullopt;
        saw_version = true;
        break;
      case 'o': {
        const auto parts = Split(value, ' ');
        if (parts.size() != 6) return std::nullopt;
        sd.origin_username = std::string(parts[0]);
        const auto id = ParseInt<uint64_t>(parts[1]);
        const auto ver = ParseInt<uint64_t>(parts[2]);
        if (!id || !ver) return std::nullopt;
        sd.session_id = *id;
        sd.session_version = *ver;
        sd.origin_address = net::IpAddress::Parse(parts[5]);
        break;
      }
      case 's':
        sd.session_name = std::string(value);
        break;
      case 'c': {
        const auto addr = ParseConnection(value);
        if (!addr) return std::nullopt;
        if (current_media != nullptr) {
          current_media->connection = addr;
        } else {
          sd.connection = addr;
        }
        break;
      }
      case 'm': {
        MediaDescription media;
        if (!ParseMediaLine(value, media)) return std::nullopt;
        sd.media.push_back(std::move(media));
        current_media = &sd.media.back();
        break;
      }
      case 'a':
        if (current_media != nullptr) ParseAttribute(value, *current_media);
        break;
      default:
        break;  // t=, b=, k=, ... tolerated and ignored
    }
  }
  if (!saw_version) return std::nullopt;
  return sd;
}

std::string SessionDescription::Serialize() const {
  std::ostringstream out;
  out << "v=0\r\n";
  out << "o=" << origin_username << " " << session_id << " " << session_version
      << " IN IP4 "
      << (origin_address ? origin_address->ToString() : "0.0.0.0") << "\r\n";
  out << "s=" << session_name << "\r\n";
  if (connection) out << "c=IN IP4 " << connection->ToString() << "\r\n";
  out << "t=0 0\r\n";
  for (const auto& m : media) {
    out << "m=" << m.media << " " << m.port << " " << m.transport;
    for (int pt : m.payload_types) out << " " << pt;
    out << "\r\n";
    if (m.connection) out << "c=IN IP4 " << m.connection->ToString() << "\r\n";
    for (const auto& [pt, map] : m.rtpmap) {
      out << "a=rtpmap:" << pt << " " << map << "\r\n";
    }
    for (const auto& attr : m.attributes) out << "a=" << attr << "\r\n";
  }
  return out.str();
}

std::optional<net::Endpoint> SessionDescription::AudioEndpoint() const {
  for (const auto& m : media) {
    if (m.media != "audio") continue;
    const auto addr = m.connection ? m.connection : connection;
    if (!addr || m.port == 0) return std::nullopt;
    return net::Endpoint{*addr, m.port};
  }
  return std::nullopt;
}

std::string SessionDescription::AudioCodec() const {
  for (const auto& m : media) {
    if (m.media != "audio" || m.payload_types.empty()) continue;
    const int pt = m.payload_types.front();
    const auto it = m.rtpmap.find(pt);
    if (it != m.rtpmap.end()) {
      const auto slash = it->second.find('/');
      return it->second.substr(0, slash);
    }
    return std::string(WellKnownEncoding(pt));
  }
  return "";
}

std::optional<AudioProbe> ProbeAudio(std::string_view body) {
  AudioProbe probe;
  bool saw_version = false;
  bool in_media = false;        // an m= section is open (current_media != null)
  bool in_first_audio = false;  // ... and it is the first audio section
  bool audio_seen = false;
  bool audio_has_media_c = false;
  bool has_session_c = false;
  net::IpAddress audio_media_c;
  net::IpAddress session_c;
  uint16_t audio_port = 0;
  int audio_pt = 0;
  bool codec_from_rtpmap = false;
  std::string_view rtpmap_codec;

  size_t pos = 0;
  while (pos < body.size()) {
    const size_t eol = body.find('\n', pos);
    std::string_view line = body.substr(
        pos, eol == std::string_view::npos ? body.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? body.size() : eol + 1;
    line = Trim(line);
    if (line.empty()) continue;
    if (line.size() < 2 || line[1] != '=') return std::nullopt;
    const char type = line[0];
    const std::string_view value = Trim(line.substr(2));

    switch (type) {
      case 'v':
        if (value != "0") return std::nullopt;
        saw_version = true;
        break;
      case 'o': {
        // Exactly six fields; id and version must be numeric. The origin
        // address is not validated (matching Parse).
        PieceCursor cursor{value};
        std::string_view id;
        std::string_view version;
        int count = 0;
        while (const auto piece = cursor.Next()) {
          if (count == 1) id = *piece;
          if (count == 2) version = *piece;
          ++count;
        }
        if (count != 6) return std::nullopt;
        if (!ParseInt<uint64_t>(id) || !ParseInt<uint64_t>(version)) {
          return std::nullopt;
        }
        break;
      }
      case 's':
        break;
      case 'c': {
        // "IN IP4 <addr>", exactly three fields with a valid address.
        PieceCursor cursor{value};
        const auto net_type = cursor.Next();
        const auto addr_type = cursor.Next();
        const auto addr_text = cursor.Next();
        if (!net_type || !addr_type || !addr_text || !cursor.done ||
            *net_type != "IN" || *addr_type != "IP4") {
          return std::nullopt;
        }
        const auto addr = net::IpAddress::Parse(*addr_text);
        if (!addr) return std::nullopt;
        if (in_media) {
          // Media-level override; only the first audio section matters here.
          if (in_first_audio) {
            audio_media_c = *addr;
            audio_has_media_c = true;
          }
        } else {
          session_c = *addr;
          has_session_c = true;
        }
        break;
      }
      case 'm': {
        PieceCursor cursor{value};
        const auto media_type = cursor.Next();
        const auto port_text = cursor.Next();
        const auto transport = cursor.Next();
        if (!media_type || !port_text || !transport) return std::nullopt;
        const auto port = ParseInt<uint16_t>(*port_text);
        if (!port) return std::nullopt;
        int fmt_count = 0;
        int first_fmt = 0;
        while (const auto fmt = cursor.Next()) {
          const auto pt = ParseInt<int>(*fmt);
          if (!pt) return std::nullopt;
          if (fmt_count++ == 0) first_fmt = *pt;
        }
        if (fmt_count == 0) return std::nullopt;  // fewer than four fields
        if (!probe.has_first_pt) {
          probe.has_first_pt = true;
          probe.first_pt = first_fmt;
        }
        in_media = true;
        in_first_audio = false;
        if (!audio_seen && *media_type == "audio") {
          audio_seen = true;
          in_first_audio = true;
          audio_port = *port;
          audio_pt = first_fmt;
        }
        break;
      }
      case 'a':
        // Only rtpmap entries for the first audio section's first payload
        // type feed AudioCodec; the last occurrence wins (map assignment).
        if (in_first_audio && common::IStartsWith(value, "rtpmap:")) {
          const auto rest = value.substr(7);
          const auto space = rest.find(' ');
          if (space != std::string_view::npos) {
            const auto pt = ParseInt<int>(rest.substr(0, space));
            if (pt && *pt == audio_pt) {
              rtpmap_codec = Trim(rest.substr(space + 1));
              codec_from_rtpmap = true;
            }
          }
        }
        break;
      default:
        break;  // t=, b=, k=, ... tolerated and ignored
    }
  }
  if (!saw_version) return std::nullopt;

  if (audio_seen) {
    if ((audio_has_media_c || has_session_c) && audio_port != 0) {
      probe.has_endpoint = true;
      probe.endpoint = net::Endpoint{
          audio_has_media_c ? audio_media_c : session_c, audio_port};
    }
    probe.codec = codec_from_rtpmap
                      ? rtpmap_codec.substr(0, rtpmap_codec.find('/'))
                      : WellKnownEncoding(audio_pt);
  }
  return probe;
}

SessionDescription MakeAudioOffer(net::Endpoint media_ep,
                                  std::string_view codec, int payload_type) {
  SessionDescription sd;
  sd.origin_username = "ua";
  sd.session_id = 1;
  sd.session_version = 1;
  sd.origin_address = media_ep.ip;
  sd.session_name = "call";
  sd.connection = media_ep.ip;
  MediaDescription media;
  media.port = media_ep.port;
  media.payload_types = {payload_type};
  media.rtpmap[payload_type] = std::string(codec) + "/8000";
  sd.media.push_back(std::move(media));
  return sd;
}

}  // namespace vids::sdp
