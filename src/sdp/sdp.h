// Session Description Protocol (RFC 2327 subset).
//
// SDP bodies inside INVITE/200 OK messages carry the media parameters — IP
// address, port, transport, codec — that the SIP EFSM exports to the RTP
// EFSM through global variables (paper §4.2). This module parses and
// serializes the subset those attacks and experiments exercise.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/address.h"

namespace vids::sdp {

/// One "m=" section plus its attribute lines.
struct MediaDescription {
  std::string media = "audio";           // m= media type
  uint16_t port = 0;                     // m= transport port
  std::string transport = "RTP/AVP";     // m= proto
  std::vector<int> payload_types;        // m= fmt list
  /// a=rtpmap entries: payload type -> "ENCODING/clock" (e.g. "G729/8000").
  std::map<int, std::string> rtpmap;
  /// Media-level "c=" line, overriding the session-level connection.
  std::optional<net::IpAddress> connection;
  /// Other attribute lines verbatim (without the "a=" prefix).
  std::vector<std::string> attributes;
};

struct SessionDescription {
  // o= fields
  std::string origin_username = "-";
  uint64_t session_id = 0;
  uint64_t session_version = 0;
  std::optional<net::IpAddress> origin_address;
  // s=
  std::string session_name = "-";
  // session-level c=
  std::optional<net::IpAddress> connection;
  std::vector<MediaDescription> media;

  /// Parses an SDP body. Returns nullopt if the body violates the grammar
  /// subset (missing v=, malformed m=, ...). Unknown lines are ignored, as
  /// RFC 2327 requires.
  static std::optional<SessionDescription> Parse(std::string_view body);

  std::string Serialize() const;

  /// Convenience: the RTP endpoint offered by the first audio section, if
  /// the description is complete enough to derive one.
  std::optional<net::Endpoint> AudioEndpoint() const;

  /// Convenience: encoding name of the first payload type of the first
  /// audio section ("G729" if absent but PT 18, "PCMU" for 0, ...).
  std::string AudioCodec() const;
};

/// Builds a minimal audio-only description, the shape every UA in the
/// testbed offers: G.729 (payload type 18) at `media_ep`.
SessionDescription MakeAudioOffer(net::Endpoint media_ep,
                                  std::string_view codec = "G729",
                                  int payload_type = 18);

/// The media facts the IDS inspect path exports to the RTP machines,
/// extracted in one allocation-free pass. Equivalent to Parse +
/// AudioEndpoint + AudioCodec + first-section payload type, without
/// materializing a SessionDescription: nullopt exactly when Parse rejects;
/// `codec` views either the body or a static encoding name.
struct AudioProbe {
  bool has_endpoint = false;
  net::Endpoint endpoint;      // valid only when has_endpoint
  std::string_view codec;      // AudioCodec() ("" when none derivable)
  bool has_first_pt = false;   // first m= section has a fmt list (always, if any m=)
  int first_pt = 0;            // first payload type of the first m= section
};
std::optional<AudioProbe> ProbeAudio(std::string_view body);

}  // namespace vids::sdp
