#include "sim/scheduler.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace vids::sim {

Scheduler::EventId Scheduler::ScheduleAt(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("ScheduleAt: time in the past");
  auto cancelled = std::make_shared<bool>(false);
  queue_.push(Entry{t, next_seq_++, std::move(cb), cancelled});
  return EventId(std::move(cancelled));
}

Scheduler::EventId Scheduler::ScheduleAfter(Duration d, Callback cb) {
  if (d < Duration{}) throw std::invalid_argument("ScheduleAfter: negative");
  return ScheduleAt(now_ + d, std::move(cb));
}

bool Scheduler::Cancel(EventId& id) {
  if (!id.cancelled_ || *id.cancelled_) return false;
  *id.cancelled_ = true;
  ++cancelled_count_;
  id.cancelled_.reset();
  return true;
}

bool Scheduler::Step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    if (*entry.cancelled) {
      assert(cancelled_count_ > 0);
      --cancelled_count_;
      continue;
    }
    now_ = entry.time;
    *entry.cancelled = true;  // marks "already ran" for Cancel()
    ++executed_;
    entry.cb();
    return true;
  }
  return false;
}

void Scheduler::Run() {
  while (Step()) {
  }
}

void Scheduler::RunUntil(Time deadline) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (*top.cancelled) {
      --cancelled_count_;
      queue_.pop();
      continue;
    }
    if (top.time > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Timer::Start(Duration d, Scheduler::Callback cb) {
  Cancel();
  running_ = true;
  pending_ = scheduler_.ScheduleAfter(
      d, [this, cb = std::move(cb)] {
        running_ = false;
        cb();
      });
}

void Timer::Cancel() {
  if (running_) {
    scheduler_.Cancel(pending_);
    running_ = false;
  }
}

}  // namespace vids::sim
