#include "sim/scheduler.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace vids::sim {

Scheduler::EventId Scheduler::AcquireSlot() {
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  slots_[slot].active = true;
  return EventId(slot, slots_[slot].gen);
}

void Scheduler::ReleaseSlot(uint32_t slot) {
  // The generation bump invalidates every handle still pointing here before
  // the slot is reused.
  ++slots_[slot].gen;
  slots_[slot].active = false;
  free_slots_.push_back(slot);
}

Scheduler::EventId Scheduler::ScheduleAt(Time t, Callback cb) {
  if (t < now_) throw std::invalid_argument("ScheduleAt: time in the past");
  const EventId id = AcquireSlot();
  queue_.push(Entry{t, next_seq_++, id.slot_, std::move(cb)});
  scheduled_counter_->Inc();
  depth_gauge_->Set(static_cast<int64_t>(PendingEvents()));
  return id;
}

Scheduler::EventId Scheduler::ScheduleAfter(Duration d, Callback cb) {
  if (d < Duration{}) throw std::invalid_argument("ScheduleAfter: negative");
  return ScheduleAt(now_ + d, std::move(cb));
}

bool Scheduler::Cancel(EventId& id) {
  if (!IsPending(id)) {
    id = EventId();
    return false;
  }
  // The queue entry stays behind as a tombstone and frees the slot when it
  // reaches the top; only the active flag flips here.
  slots_[id.slot_].active = false;
  ++cancelled_count_;
  id = EventId();
  return true;
}

bool Scheduler::IsPending(const EventId& id) const {
  return id.slot_ != EventId::kNoSlot && id.slot_ < slots_.size() &&
         slots_[id.slot_].gen == id.gen_ && slots_[id.slot_].active;
}

bool Scheduler::Step() {
  while (!queue_.empty()) {
    // priority_queue::top() is const to protect the heap invariant, but the
    // entry is leaving the queue anyway — move it out instead of copying
    // the std::function.
    Entry entry = std::move(const_cast<Entry&>(queue_.top()));
    queue_.pop();
    if (!slots_[entry.slot].active) {
      assert(cancelled_count_ > 0);
      --cancelled_count_;
      ReleaseSlot(entry.slot);
      drain_counter_->Inc();
      continue;
    }
    now_ = entry.time;
    ReleaseSlot(entry.slot);  // fired: stale handles must not cancel it
    ++executed_;
    executed_counter_->Inc();
    depth_gauge_->Set(static_cast<int64_t>(PendingEvents()));
    entry.cb();
    return true;
  }
  return false;
}

void Scheduler::Run() {
  while (Step()) {
  }
}

void Scheduler::RunUntil(Time deadline) {
  while (!queue_.empty()) {
    const Entry& top = queue_.top();
    if (!slots_[top.slot].active) {
      --cancelled_count_;
      const uint32_t slot = top.slot;
      queue_.pop();
      ReleaseSlot(slot);
      drain_counter_->Inc();
      continue;
    }
    if (top.time > deadline) break;
    Step();
  }
  if (now_ < deadline) now_ = deadline;
}

void Scheduler::AttachMetrics(obs::MetricsRegistry& registry) {
  scheduled_counter_ = &registry.GetCounter("sim.events_scheduled");
  executed_counter_ = &registry.GetCounter("sim.events_executed");
  drain_counter_ = &registry.GetCounter("sim.tombstone_drains");
  depth_gauge_ = &registry.GetGauge("sim.queue_depth");
}

void Timer::Start(Duration d, Scheduler::Callback cb) {
  Cancel();
  pending_ = scheduler_.ScheduleAfter(d, std::move(cb));
}

void Timer::Cancel() { scheduler_.Cancel(pending_); }

}  // namespace vids::sim
