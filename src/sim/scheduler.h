// Discrete-event scheduler.
//
// The single-threaded event core that substitutes for OPNET Modeler in the
// paper's testbed: every link transmission, protocol timer, call arrival and
// IDS timeout is an event on one totally-ordered queue. Ties in time are
// broken by insertion order, so runs are deterministic.
//
// Cancellation handles are (slot, generation) pairs into a recycled slot
// vector — no per-event shared_ptr allocation. A slot's generation bumps
// when its event fires or its slot is recycled, so stale handles are
// detected by a single integer compare.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "obs/metrics.h"
#include "sim/time.h"

namespace vids::sim {

class Scheduler {
 public:
  using Callback = std::function<void()>;

  /// Handle for cancelling a scheduled event. Default-constructed ids are
  /// inert: cancelling them is a no-op. A handle outlives its event safely;
  /// once the event fires (or the handle is cancelled) the slot's
  /// generation moves on and the handle goes stale.
  class EventId {
   public:
    EventId() = default;

   private:
    friend class Scheduler;
    static constexpr uint32_t kNoSlot = UINT32_MAX;
    EventId(uint32_t slot, uint32_t gen) : slot_(slot), gen_(gen) {}
    uint32_t slot_ = kNoSlot;
    uint32_t gen_ = 0;
  };

  /// Schedules `cb` at absolute time `t` (>= now).
  EventId ScheduleAt(Time t, Callback cb);

  /// Schedules `cb` after `d` (>= 0) from now.
  EventId ScheduleAfter(Duration d, Callback cb);

  /// Cancels a pending event. Returns false if it already ran, was already
  /// cancelled, or the id is inert.
  bool Cancel(EventId& id);

  /// True while the event behind `id` is scheduled and not yet run or
  /// cancelled.
  bool IsPending(const EventId& id) const;

  Time Now() const { return now_; }

  /// Runs events until the queue is empty.
  void Run();

  /// Runs events with time <= `deadline`, then advances the clock to
  /// `deadline` (so subsequent ScheduleAfter calls are relative to it).
  void RunUntil(Time deadline);

  /// Executes the next event, if any. Returns false when the queue is empty.
  bool Step();

  /// Number of pending (non-cancelled) events.
  size_t PendingEvents() const { return queue_.size() - cancelled_count_; }

  /// Total events executed so far; a cheap progress/cost metric for benches.
  uint64_t ExecutedEvents() const { return executed_; }

  /// Registers this scheduler's metrics (sim.events_scheduled,
  /// sim.events_executed, sim.tombstone_drains counters and the
  /// sim.queue_depth gauge) in `registry`. Before attachment the updates go
  /// to the shared null sinks — no branch on the event path either way.
  void AttachMetrics(obs::MetricsRegistry& registry);

 private:
  struct Entry {
    Time time;
    uint64_t seq;
    uint32_t slot;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  struct Slot {
    uint32_t gen = 0;
    bool active = false;
  };

  EventId AcquireSlot();
  void ReleaseSlot(uint32_t slot);

  Time now_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
  size_t cancelled_count_ = 0;
  obs::Counter* scheduled_counter_ = &obs::NullCounter();
  obs::Counter* executed_counter_ = &obs::NullCounter();
  obs::Counter* drain_counter_ = &obs::NullCounter();
  obs::Gauge* depth_gauge_ = &obs::NullGauge();
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
};

/// A restartable one-shot timer bound to a scheduler — the building block for
/// RFC 3261 transaction timers and the vIDS detection timers T and T1.
class Timer {
 public:
  explicit Timer(Scheduler& scheduler) : scheduler_(scheduler) {}
  ~Timer() { Cancel(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re)starts the timer: fires `cb` once after `d`. A running timer is
  /// cancelled first.
  void Start(Duration d, Scheduler::Callback cb);

  /// Stops the timer if running.
  void Cancel();

  bool IsRunning() const { return scheduler_.IsPending(pending_); }

 private:
  Scheduler& scheduler_;
  Scheduler::EventId pending_;
};

}  // namespace vids::sim
