#include "sim/time.h"

#include <cmath>

namespace vids::sim {

Duration Duration::FromSeconds(double s) {
  return Duration::Nanos(static_cast<int64_t>(std::llround(s * 1e9)));
}

std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.ToSeconds() << "s";
}

std::ostream& operator<<(std::ostream& os, Time t) {
  return os << "t=" << t.ToSeconds() << "s";
}

}  // namespace vids::sim
