// Simulated time.
//
// The simulator measures time in integer nanoseconds from the start of the
// run. Strong types keep instants (Time) and spans (Duration) distinct, and
// integer arithmetic keeps event ordering exact and platform independent —
// the property every reproducibility claim in EXPERIMENTS.md rests on.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace vids::sim {

/// A span of simulated time. Negative durations are representable (useful in
/// delay-variation arithmetic) but never scheduled.
class Duration {
 public:
  constexpr Duration() = default;

  static constexpr Duration Nanos(int64_t n) { return Duration(n); }
  static constexpr Duration Micros(int64_t n) { return Duration(n * 1000); }
  static constexpr Duration Millis(int64_t n) { return Duration(n * 1000000); }
  static constexpr Duration Seconds(int64_t n) {
    return Duration(n * 1000000000);
  }
  /// From floating-point seconds, rounding to the nearest nanosecond.
  static Duration FromSeconds(double s);

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillis() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const Duration&) const = default;
  constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
  constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
  constexpr Duration operator-() const { return Duration(-ns_); }
  constexpr Duration operator*(int64_t k) const { return Duration(ns_ * k); }
  constexpr Duration operator/(int64_t k) const { return Duration(ns_ / k); }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

 private:
  constexpr explicit Duration(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

/// An instant of simulated time. Time zero is the start of the run.
class Time {
 public:
  constexpr Time() = default;
  static constexpr Time FromNanos(int64_t ns) { return Time(ns); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSeconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Time&) const = default;
  constexpr Time operator+(Duration d) const { return Time(ns_ + d.nanos()); }
  constexpr Time operator-(Duration d) const { return Time(ns_ - d.nanos()); }
  constexpr Duration operator-(Time o) const {
    return Duration::Nanos(ns_ - o.ns_);
  }
  constexpr Time& operator+=(Duration d) { ns_ += d.nanos(); return *this; }

  /// The largest representable instant; used as "never".
  static constexpr Time Max() { return Time(INT64_MAX); }

 private:
  constexpr explicit Time(int64_t ns) : ns_(ns) {}
  int64_t ns_ = 0;
};

std::ostream& operator<<(std::ostream& os, Duration d);
std::ostream& operator<<(std::ostream& os, Time t);

}  // namespace vids::sim
