// Zero-allocation metrics registry.
//
// The paper's evaluation is about *measuring* vIDS (call setup delay, RTP
// QoS, CPU and memory overhead, detection accuracy); this registry is the
// runtime side of that story. Metrics are registered once (an allocation,
// at component construction) and from then on a hot-path update is a plain
// uint64_t store into a preallocated slot: Counter::Inc is one add,
// Gauge::Set one store, Histogram::Record one array increment into a fixed
// log2 bucket. Steady-state packet inspection therefore stays on the
// zero-allocation path established in PR 1 with instrumentation enabled.
//
// Components that may run without a registry (benches, unit fixtures) hold
// pointers defaulted to the Null* singletons — increments are unconditional
// writes into a shared dummy slot, so the hot path carries no branch.
//
// Exporters: ToJson() (machine-readable snapshot, deterministic key order)
// and ToPrometheus() (text exposition format).
//
// Threading model (sharded engine): every registry has exactly ONE writer
// thread — each shard worker owns its Vids' registry, the coordinator owns
// the merged one. Counter/Gauge slots are relaxed atomics under a
// single-writer discipline (the update is a plain load+add+store, which
// compiles to the same unlocked add as the old uint64_t += — the
// single-threaded path pays nothing) so a reader thread that has
// synchronized with the writer through a ring-buffer release/acquire edge
// can read them without a data race. Histograms stay plain: they are only
// read at quiescent points (post-Flush), where the same happens-before edge
// covers them.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <string_view>

namespace vids::obs {

/// Monotonic wall-clock nanoseconds, for latency histograms. (Simulated
/// time is the scheduler's business; instrumentation that measures *our*
/// cost needs the real clock.)
inline int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// A monotonically increasing event count. Single-writer relaxed atomic:
/// Inc is a plain unlocked add (not fetch_add — there is never a second
/// writer to race with), value() is safe from any thread that established
/// happens-before with the writer.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Counter& operator=(const Counter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void Inc(uint64_t n = 1) {
    value_.store(value_.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time level (queue depth, live group count). Same
/// single-writer relaxed-atomic discipline as Counter.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Gauge& operator=(const Gauge& other) {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) {
    value_.store(value_.load(std::memory_order_relaxed) + d,
                 std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket log2 histogram: value v lands in bucket bit_width(v), so
/// bucket b covers [2^(b-1), 2^b). 64 buckets span the full uint64 range —
/// no configuration, no allocation, one increment per Record. Quantiles are
/// estimated from the bucket boundaries (good to a factor of 2, which is
/// what a latency histogram is for).
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;  // bucket 0 holds v <= 0

  void Record(int64_t v) {
    ++buckets_[BucketOf(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (count_ == 1 || v > max_) max_ = v;
  }

  uint64_t count() const { return count_; }
  int64_t sum() const { return sum_; }
  int64_t min() const { return min_; }
  int64_t max() const { return max_; }
  double Mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  /// Upper bound of the bucket holding the q-quantile (0 <= q <= 1), clamped
  /// to the observed [min, max]. Returns 0 when empty.
  int64_t Quantile(double q) const;

  /// Folds `other` into this histogram (bucket-wise sum; min/max widen).
  /// Used by the sharded engine's post-Flush metric merge.
  void MergeFrom(const Histogram& other);

  static size_t BucketOf(int64_t v) {
    if (v <= 0) return 0;
    size_t b = 0;
    auto u = static_cast<uint64_t>(v);
    while (u != 0) {
      ++b;
      u >>= 1;
    }
    return b;
  }
  /// Exclusive upper bound of bucket b (inclusive values < bound).
  static int64_t BucketBound(size_t b);

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  int64_t sum_ = 0;
  int64_t min_ = 0;
  int64_t max_ = 0;
};

/// Shared no-op sinks for unattached components. Writes go to a process-wide
/// dummy slot; reads are meaningless. Never registered, never exported.
Counter& NullCounter();
Gauge& NullGauge();
Histogram& NullHistogram();

/// Named metric store. Get* registers on first use and returns a reference
/// that stays valid for the registry's lifetime (node-stable map storage);
/// components resolve their metrics once at construction and keep the
/// pointer. Names are dotted paths ("vids.rtp_packets", "efsm.transition_ns").
class MetricsRegistry {
 public:
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  /// Read-only lookup; nullptr when the metric was never registered.
  const Counter* FindCounter(std::string_view name) const;
  const Gauge* FindGauge(std::string_view name) const;
  const Histogram* FindHistogram(std::string_view name) const;

  /// Visitation in lexicographic name order (deterministic exports).
  void VisitCounters(
      const std::function<void(std::string_view, const Counter&)>& fn) const;
  void VisitGauges(
      const std::function<void(std::string_view, const Gauge&)>& fn) const;
  void VisitHistograms(
      const std::function<void(std::string_view, const Histogram&)>& fn) const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {...}}. Key order is deterministic. Histograms carry wall-clock-derived
  /// values, so replay/equality checks pass include_histograms = false.
  std::string ToJson(bool include_histograms = true) const;

  /// Prometheus text exposition format ('.' and '-' become '_'). Metric
  /// names of the form "shard.<N>.<rest>" (the sharded engine's merged
  /// snapshot) are exported as `<rest>{shard="<N>"}` so one metric family
  /// carries every shard as a labeled series.
  std::string ToPrometheus() const;

  /// Folds every metric of `other` into this registry: counters and gauges
  /// add their values, histograms merge bucket-wise. Slots missing here are
  /// registered. The sharded engine rebuilds its merged snapshot by merging
  /// each quiescent shard registry into a fresh one.
  void MergeFrom(const MetricsRegistry& other);
  /// Same fold, but every metric of `other` lands under `prefix` + its name.
  /// The sharded engine uses prefix "shard.<N>." to keep per-shard series
  /// next to the cross-shard aggregates in one snapshot.
  void MergeFrom(const MetricsRegistry& other, std::string_view prefix);

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

}  // namespace vids::obs
