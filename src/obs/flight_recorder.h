// Per-call flight recorder: a preallocated ring of compact binary events.
//
// Every machine group (one per monitored call / keyed pattern) owns one
// ring. Producers write 24-byte records — EFSM transitions with
// machine/state/transition ids, FIFO channel sends, fact-base assertions
// and retractions, alert emissions — so when an alert fires, the last
// kCapacity events of its call explain *why*: the cross-protocol
// "interacting state machines" story made inspectable after the fact.
//
// The ring is inline storage (no heap beyond the owning group) and Record()
// is an array store plus a head increment, so recording every transition on
// the per-packet hot path stays allocation-free. Records hold only integer
// ids; the producer layer (which owns the machine definitions and intern
// tables) decodes them back to names when a human-readable report is built.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace vids::obs {

enum class RecordType : uint8_t {
  kNone = 0,
  kTransition,   // machine, from/to state ids, a = transition index
  kSyncSend,     // machine = sender, a = interned event name, aux = channel id
  kDeviation,    // machine, from = state, a = interned event name
  kFactAssert,   // fact-base assertion; aux = producer-tagged payload
  kFactRetract,  // fact-base retraction; aux = producer-tagged payload
  kAlert,        // machine, a = interned classification, aux = alert kind
  // Pipeline span (sharded engine, DESIGN.md §13): one sampled packet's
  // trip through ingest → ring → worker. when_ns = wall-clock enqueue
  // time, aux = end-to-end nanoseconds (enqueue → inspect complete),
  // a = ingest→dequeue µs (saturating), from = inspect µs (saturating),
  // to = shard index.
  kSpan,
};

/// One compact binary event. Field semantics depend on `type` (see
/// RecordType); the producer assigns and decodes them.
struct Record {
  int64_t when_ns = 0;   // simulated time of the event
  uint64_t aux = 0;      // type-specific payload
  uint16_t a = 0;        // type-specific id (transition index, interned name)
  int16_t from = 0;      // state id before the event
  int16_t to = 0;        // state id after the event
  uint8_t machine = kNoMachine;  // index of the machine within its group
  RecordType type = RecordType::kNone;

  static constexpr uint8_t kNoMachine = 0xFF;
};
static_assert(sizeof(Record) == 24, "flight record must stay compact");

class FlightRecorder {
 public:
  /// Ring capacity — also the "preceding <= 32 events" provenance window.
  static constexpr size_t kCapacity = 32;
  static_assert((kCapacity & (kCapacity - 1)) == 0, "power of two");

  void Record(const obs::Record& r) {
    ring_[head_ & (kCapacity - 1)] = r;
    ++head_;
  }

  /// Forgets all records — used when a recycled machine group is reset for
  /// a new call, so provenance never leaks across calls. Stale ring slots
  /// are unreachable (size() derives from the head counter).
  void Reset() { head_ = 0; }

  /// Records currently held (saturates at kCapacity).
  size_t size() const { return head_ < kCapacity ? head_ : kCapacity; }
  /// Total records ever written (ring overwrites included).
  uint64_t total_recorded() const { return head_; }

  /// Visits held records oldest → newest.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    const uint64_t begin = head_ < kCapacity ? 0 : head_ - kCapacity;
    for (uint64_t i = begin; i < head_; ++i) {
      fn(ring_[i & (kCapacity - 1)]);
    }
  }

  void Clear() { head_ = 0; }

 private:
  std::array<obs::Record, kCapacity> ring_{};
  uint64_t head_ = 0;
};

}  // namespace vids::obs
