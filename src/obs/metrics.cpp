#include "obs/metrics.h"

#include <sstream>

namespace vids::obs {

Counter& NullCounter() {
  static Counter counter;
  return counter;
}
Gauge& NullGauge() {
  static Gauge gauge;
  return gauge;
}
Histogram& NullHistogram() {
  static Histogram histogram;
  return histogram;
}

int64_t Histogram::BucketBound(size_t b) {
  if (b == 0) return 1;  // bucket 0: v <= 0
  if (b >= 63) return INT64_MAX;
  return int64_t{1} << b;
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      const int64_t bound = BucketBound(b);
      return bound > max_ ? max_ : (bound < min_ ? min_ : bound);
    }
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(name).Inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(name).Add(gauge.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    GetHistogram(name).MergeFrom(histogram);
  }
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other,
                                std::string_view prefix) {
  std::string name;  // one scratch key reused across the whole fold
  const auto prefixed = [&](std::string_view suffix) -> const std::string& {
    name.assign(prefix);
    name.append(suffix);
    return name;
  };
  for (const auto& [suffix, counter] : other.counters_) {
    GetCounter(prefixed(suffix)).Inc(counter.value());
  }
  for (const auto& [suffix, gauge] : other.gauges_) {
    GetGauge(prefixed(suffix)).Add(gauge.value());
  }
  for (const auto& [suffix, histogram] : other.histograms_) {
    GetHistogram(prefixed(suffix)).MergeFrom(histogram);
  }
}

// Get* descend the tree once: lower_bound both answers the lookup and, on a
// miss, hints the insert at the right position. The per-shard merge path
// registers dozens of prefixed names per snapshot, so the old find+emplace
// double walk (which also constructed a throwaway 500-byte Histogram
// argument before knowing whether the key existed) paid twice per metric.
// std::map storage keeps every previously returned reference stable across
// any number of later registrations.
Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const auto it = counters_.lower_bound(name);
  if (it != counters_.end() && it->first == name) return it->second;
  return counters_.try_emplace(it, std::string(name))->second;
}
Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  const auto it = gauges_.lower_bound(name);
  if (it != gauges_.end() && it->first == name) return it->second;
  return gauges_.try_emplace(it, std::string(name))->second;
}
Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  const auto it = histograms_.lower_bound(name);
  if (it != histograms_.end() && it->first == name) return it->second;
  return histograms_.try_emplace(it, std::string(name))->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}
const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}
const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::VisitCounters(
    const std::function<void(std::string_view, const Counter&)>& fn) const {
  for (const auto& [name, counter] : counters_) fn(name, counter);
}
void MetricsRegistry::VisitGauges(
    const std::function<void(std::string_view, const Gauge&)>& fn) const {
  for (const auto& [name, gauge] : gauges_) fn(name, gauge);
}
void MetricsRegistry::VisitHistograms(
    const std::function<void(std::string_view, const Histogram&)>& fn) const {
  for (const auto& [name, histogram] : histograms_) fn(name, histogram);
}

std::string MetricsRegistry::ToJson(bool include_histograms) const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << counter.value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << gauge.value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";
  if (include_histograms) {
    out << ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
          << h.count() << ", \"sum\": " << h.sum() << ", \"min\": " << h.min()
          << ", \"max\": " << h.max() << ", \"p50\": " << h.Quantile(0.5)
          << ", \"p95\": " << h.Quantile(0.95)
          << ", \"p99\": " << h.Quantile(0.99) << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "}";
  }
  out << "\n}\n";
  return out.str();
}

namespace {
std::string PromName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '.' || c == '-' || c == ' ') c = '_';
  }
  return out;
}

/// Splits a merged-snapshot name into its Prometheus family name and label
/// set: "shard.3.lat.e2e" → family "lat_e2e", labels `shard="3"`; the
/// per-ingest-lane form "shard.3.lane.1.ring.depth_hwm" → family
/// "ring_depth_hwm", labels `shard="3",lane="1"`. Names without the shard
/// prefix (including "sharded.*") pass through unlabeled.
struct PromSeries {
  std::string name;
  std::string labels;  // without braces; empty = no labels
};
PromSeries PromSplit(std::string_view name) {
  // Matches `prefix<digits>.` at the front of `rest`; on success returns the
  // digit run and advances `rest` past the trailing dot.
  const auto eat_indexed = [](std::string_view& rest, std::string_view prefix,
                              std::string_view& digits) {
    if (rest.substr(0, prefix.size()) != prefix) return false;
    size_t digits_end = prefix.size();
    while (digits_end < rest.size() && rest[digits_end] >= '0' &&
           rest[digits_end] <= '9') {
      ++digits_end;
    }
    if (digits_end == prefix.size() || digits_end + 1 >= rest.size() ||
        rest[digits_end] != '.') {
      return false;
    }
    digits = rest.substr(prefix.size(), digits_end - prefix.size());
    rest = rest.substr(digits_end + 1);
    return true;
  };
  std::string_view rest = name;
  std::string_view shard_digits;
  if (eat_indexed(rest, "shard.", shard_digits)) {
    std::string labels = "shard=\"" + std::string(shard_digits) + "\"";
    std::string_view lane_digits;
    if (eat_indexed(rest, "lane.", lane_digits)) {
      labels += ",lane=\"" + std::string(lane_digits) + "\"";
    }
    return {PromName(rest), labels};
  }
  return {PromName(name), ""};
}
}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::ostringstream out;
  // With shard labels, several registry entries can map onto one metric
  // family; the TYPE header must appear once per family, not per series.
  std::map<std::string, bool> typed;
  const auto type_line = [&](const std::string& family, const char* type) {
    if (typed.emplace(family, true).second) {
      out << "# TYPE " << family << " " << type << "\n";
    }
  };
  const auto series = [](const PromSeries& s,
                         std::string_view extra = {}) -> std::string {
    if (s.labels.empty() && extra.empty()) return s.name;
    std::string line = s.name + "{" + s.labels;
    if (!s.labels.empty() && !extra.empty()) line += ",";
    line.append(extra);
    line += "}";
    return line;
  };
  for (const auto& [name, counter] : counters_) {
    const PromSeries s = PromSplit(name);
    type_line(s.name, "counter");
    out << series(s) << " " << counter.value() << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const PromSeries s = PromSplit(name);
    type_line(s.name, "gauge");
    out << series(s) << " " << gauge.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const PromSeries s = PromSplit(name);
    type_line(s.name, "histogram");
    const PromSeries bucket{s.name + "_bucket", s.labels};
    uint64_t cumulative = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets()[b] == 0) continue;
      cumulative += h.buckets()[b];
      out << series(bucket, "le=\"" + std::to_string(Histogram::BucketBound(b)) +
                                "\"")
          << " " << cumulative << "\n";
    }
    out << series(bucket, "le=\"+Inf\"") << " " << h.count() << "\n"
        << series({s.name + "_sum", s.labels}) << " " << h.sum() << "\n"
        << series({s.name + "_count", s.labels}) << " " << h.count() << "\n";
  }
  return out.str();
}

}  // namespace vids::obs
