#include "obs/metrics.h"

#include <sstream>

namespace vids::obs {

Counter& NullCounter() {
  static Counter counter;
  return counter;
}
Gauge& NullGauge() {
  static Gauge gauge;
  return gauge;
}
Histogram& NullHistogram() {
  static Histogram histogram;
  return histogram;
}

int64_t Histogram::BucketBound(size_t b) {
  if (b == 0) return 1;  // bucket 0: v <= 0
  if (b >= 63) return INT64_MAX;
  return int64_t{1} << b;
}

int64_t Histogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto rank = static_cast<uint64_t>(q * static_cast<double>(count_));
  uint64_t seen = 0;
  for (size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen > rank) {
      const int64_t bound = BucketBound(b);
      return bound > max_ ? max_ : (bound < min_ ? min_ : bound);
    }
  }
  return max_;
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t b = 0; b < kBuckets; ++b) buckets_[b] += other.buckets_[b];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  for (const auto& [name, counter] : other.counters_) {
    GetCounter(name).Inc(counter.value());
  }
  for (const auto& [name, gauge] : other.gauges_) {
    GetGauge(name).Add(gauge.value());
  }
  for (const auto& [name, histogram] : other.histograms_) {
    GetHistogram(name).MergeFrom(histogram);
  }
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.emplace(std::string(name), Counter{}).first->second;
}
Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.emplace(std::string(name), Gauge{}).first->second;
}
Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(std::string(name), Histogram{}).first->second;
}

const Counter* MetricsRegistry::FindCounter(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}
const Gauge* MetricsRegistry::FindGauge(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}
const Histogram* MetricsRegistry::FindHistogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::VisitCounters(
    const std::function<void(std::string_view, const Counter&)>& fn) const {
  for (const auto& [name, counter] : counters_) fn(name, counter);
}
void MetricsRegistry::VisitGauges(
    const std::function<void(std::string_view, const Gauge&)>& fn) const {
  for (const auto& [name, gauge] : gauges_) fn(name, gauge);
}
void MetricsRegistry::VisitHistograms(
    const std::function<void(std::string_view, const Histogram&)>& fn) const {
  for (const auto& [name, histogram] : histograms_) fn(name, histogram);
}

std::string MetricsRegistry::ToJson(bool include_histograms) const {
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << counter.value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    out << (first ? "\n" : ",\n") << "    \"" << name
        << "\": " << gauge.value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "}";
  if (include_histograms) {
    out << ",\n  \"histograms\": {";
    first = true;
    for (const auto& [name, h] : histograms_) {
      out << (first ? "\n" : ",\n") << "    \"" << name << "\": {\"count\": "
          << h.count() << ", \"sum\": " << h.sum() << ", \"min\": " << h.min()
          << ", \"max\": " << h.max() << ", \"p50\": " << h.Quantile(0.5)
          << ", \"p99\": " << h.Quantile(0.99) << "}";
      first = false;
    }
    out << (first ? "" : "\n  ") << "}";
  }
  out << "\n}\n";
  return out.str();
}

namespace {
std::string PromName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '.' || c == '-' || c == ' ') c = '_';
  }
  return out;
}
}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::ostringstream out;
  for (const auto& [name, counter] : counters_) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " counter\n" << p << " " << counter.value()
        << "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " gauge\n" << p << " " << gauge.value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = PromName(name);
    out << "# TYPE " << p << " histogram\n";
    uint64_t cumulative = 0;
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (h.buckets()[b] == 0) continue;
      cumulative += h.buckets()[b];
      out << p << "_bucket{le=\"" << Histogram::BucketBound(b) << "\"} "
          << cumulative << "\n";
    }
    out << p << "_bucket{le=\"+Inf\"} " << h.count() << "\n"
        << p << "_sum " << h.sum() << "\n"
        << p << "_count " << h.count() << "\n";
  }
  return out.str();
}

}  // namespace vids::obs
