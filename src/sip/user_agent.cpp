#include "sip/user_agent.h"
#include <algorithm>

#include "sip/auth.h"

#include "common/log.h"

namespace vids::sip {

UserAgent::UserAgent(sim::Scheduler& scheduler, net::Host& host, Config config)
    : scheduler_(scheduler),
      config_(std::move(config)),
      transport_(host, config_.sip_port),
      layer_(scheduler, transport_, config_.timers),
      next_rtp_port_(config_.rtp_port_base) {
  layer_.SetCore(TransactionLayer::Core{
      .on_request = [this](ServerTransaction& tx) { OnRequest(tx); },
      .on_ack = [this](const Message& ack,
                       const net::Datagram& dgram) { OnAck(ack, dgram); },
      .on_stray_response =
          [this](const Message& response, const net::Datagram& dgram) {
            OnStrayResponse(response, dgram);
          },
  });
}

SipUri UserAgent::address_of_record() const {
  SipUri uri;
  uri.user = config_.user;
  uri.host = config_.domain;
  return uri;
}

std::string UserAgent::NewCallId() {
  return config_.user + "-" + std::to_string(next_call_serial_++) + "@" +
         config_.domain;
}

uint16_t UserAgent::AllocateRtpPort() {
  const uint16_t port = next_rtp_port_;
  next_rtp_port_ = static_cast<uint16_t>(next_rtp_port_ + 2);  // RTP is even
  return port;
}

void UserAgent::Register() {
  register_call_id_ = NewCallId();
  SendRegister(std::nullopt, 1);
}

void UserAgent::SendRegister(std::optional<std::string> authorization,
                             uint32_t cseq_number) {
  SipUri registrar;
  registrar.host = config_.domain;
  Message reg = Message::MakeRequest(Method::kRegister, registrar);
  Via via;
  via.sent_by = transport_.local();
  via.branch = layer_.NewBranch();
  reg.PushVia(via);
  NameAddr self;
  self.uri = address_of_record();
  self.SetTag(layer_.NewTag());
  reg.SetFrom(self);
  NameAddr to;
  to.uri = address_of_record();
  reg.SetTo(to);
  reg.SetCallId(register_call_id_);
  reg.SetCseq(CSeq{cseq_number, Method::kRegister});
  NameAddr contact;
  contact.uri.user = config_.user;
  contact.uri.host = transport_.local().ip.ToString();
  contact.uri.port = config_.sip_port;
  reg.SetContact(contact);
  if (authorization) reg.SetHeader("Authorization", *authorization);
  const std::string request_uri = reg.request_uri().ToString();

  layer_.StartClient(
      std::move(reg), config_.outbound_proxy,
      [this, cseq_number, request_uri,
       already_answered = authorization.has_value()](const Message& response) {
        if (response.status() == 200) {
          registered_ = true;
          return;
        }
        if (response.status() == 401 && !already_answered) {
          // Answer the Digest challenge once (§22.2).
          const auto www = response.Header("WWW-Authenticate");
          const auto challenge =
              www ? DigestChallenge::Parse(*www) : std::nullopt;
          if (challenge) {
            const auto credentials =
                AnswerChallenge(*challenge, config_.user, config_.password,
                                "REGISTER", request_uri);
            SendRegister(credentials.ToString(), cseq_number + 1);
          }
        }
      },
      [] {});
}

Message UserAgent::BuildInvite(Call& call) {
  Message invite = Message::MakeRequest(Method::kInvite, call.remote_uri);
  Via via;
  via.sent_by = transport_.local();
  via.branch = layer_.NewBranch();
  invite.PushVia(via);
  NameAddr from;
  from.uri = call.local_uri;
  from.SetTag(call.local_tag);
  invite.SetFrom(from);
  NameAddr to;
  to.uri = call.remote_uri;
  invite.SetTo(to);
  invite.SetCallId(call.record.call_id);
  invite.SetCseq(CSeq{call.local_cseq, Method::kInvite});
  NameAddr contact;
  contact.uri.user = config_.user;
  contact.uri.host = transport_.local().ip.ToString();
  contact.uri.port = config_.sip_port;
  invite.SetContact(contact);
  const auto offer = sdp::MakeAudioOffer(
      net::Endpoint{transport_.local().ip, call.local_rtp_port});
  invite.SetBody(offer.Serialize(), "application/sdp");
  return invite;
}

std::string UserAgent::PlaceCall(const SipUri& callee, sim::Duration duration) {
  Call call;
  call.record.call_id = NewCallId();
  call.record.peer = callee.UserAtHost();
  call.record.outgoing = true;
  call.record.started = scheduler_.Now();
  call.local_tag = layer_.NewTag();
  call.local_uri = address_of_record();
  call.remote_uri = callee;
  call.local_rtp_port = AllocateRtpPort();
  call.planned_duration = duration;

  Message invite = BuildInvite(call);
  call.original_invite = invite;
  const std::string call_id = call.record.call_id;
  calls_[call_id] = std::move(call);

  layer_.StartClient(
      std::move(invite), config_.outbound_proxy,
      [this, call_id](const Message& response) {
        OnInviteResponse(call_id, response);
      },
      [this, call_id] { FinishCall(call_id, /*failed=*/true); });
  return call_id;
}

void UserAgent::OnInviteResponse(const std::string& call_id,
                                 const Message& response) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& call = it->second;
  const int status = response.status();

  if (status >= 100 && status < 200) {
    if (status >= 180 && !call.record.ringing) {
      call.record.ringing = scheduler_.Now();
    }
    return;
  }
  if (status >= 200 && status < 300) {
    call.record.answered = scheduler_.Now();
    if (const auto to = response.To()) {
      call.remote_tag = to->Tag().value_or("");
    }
    // Learn the remote target (Contact) so ACK/BYE go end-to-end.
    if (const auto contact = response.ContactHeader()) {
      call.remote_target = contact->uri;
      if (const auto ip = net::IpAddress::Parse(contact->uri.host)) {
        call.remote_endpoint = net::Endpoint{
            *ip, contact->uri.port != 0 ? contact->uri.port : kDefaultSipPort};
      }
    }
    // Remote media endpoint from the SDP answer.
    if (const auto sd = sdp::SessionDescription::Parse(response.body())) {
      if (const auto ep = sd->AudioEndpoint()) call.remote_rtp = *ep;
    }
    call.local_cseq++;
    // ACK for 2xx is end-to-end and stateless (§17.1.1.3 / §13.2.2.4).
    Message ack = Message::MakeRequest(Method::kAck, call.remote_target);
    Via via;
    via.sent_by = transport_.local();
    via.branch = layer_.NewBranch();
    ack.PushVia(via);
    NameAddr from;
    from.uri = call.local_uri;
    from.SetTag(call.local_tag);
    ack.SetFrom(from);
    if (const auto to = response.To()) ack.SetTo(*to);
    ack.SetCallId(call_id);
    const auto cseq = response.Cseq();
    ack.SetCseq(CSeq{cseq ? cseq->number : 1, Method::kAck});
    layer_.SendStateless(ack, call.remote_endpoint);
    call.last_ack = std::move(ack);  // kept for 2xx retransmissions

    StartMedia(call);
    // This side hangs up after the planned duration.
    call.hangup_event = scheduler_.ScheduleAfter(
        call.planned_duration, [this, call_id] { HangUp(call_id); });
    return;
  }
  // Final failure (3xx-6xx, incl. 487 after CANCEL): the transaction layer
  // already ACKed; record the attempt as failed.
  FinishCall(call_id, /*failed=*/true);
}

void UserAgent::CancelCall(const std::string& call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end() || !it->second.original_invite) return;
  Call& call = it->second;
  if (call.record.answered) return;  // too late, use HangUp
  // RFC 3261 §9.1: CANCEL mirrors the INVITE, same branch, CSeq method
  // CANCEL with the INVITE's sequence number.
  const Message& invite = *call.original_invite;
  Message cancel = Message::MakeRequest(Method::kCancel, invite.request_uri());
  if (const auto via = invite.TopVia()) cancel.PushVia(*via);
  if (const auto from = invite.From()) cancel.SetFrom(*from);
  if (const auto to = invite.To()) cancel.SetTo(*to);
  if (const auto id = invite.CallId()) cancel.SetCallId(*id);
  if (const auto cseq = invite.Cseq()) {
    cancel.SetCseq(CSeq{cseq->number, Method::kCancel});
  }
  layer_.StartClient(std::move(cancel), config_.outbound_proxy,
                     [](const Message&) {}, [] {});
}

void UserAgent::HangUp(const std::string& call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& call = it->second;
  if (call.terminating) return;
  call.terminating = true;
  scheduler_.Cancel(call.hangup_event);
  StopMedia(call);
  Message bye = BuildInDialogRequest(call, Method::kBye);
  layer_.StartClient(
      std::move(bye), call.remote_endpoint,
      [this, call_id](const Message& response) {
        if (response.status() >= 200) FinishCall(call_id, false);
      },
      [this, call_id] { FinishCall(call_id, true); });
}

bool UserAgent::Reinvite(const std::string& call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end() || !it->second.record.answered ||
      it->second.terminating) {
    return false;
  }
  Call& call = it->second;
  Message reinvite = BuildInDialogRequest(call, Method::kInvite);
  NameAddr contact;
  contact.uri.user = config_.user;
  contact.uri.host = transport_.local().ip.ToString();
  contact.uri.port = config_.sip_port;
  reinvite.SetContact(contact);
  const auto offer = sdp::MakeAudioOffer(
      net::Endpoint{transport_.local().ip, call.local_rtp_port});
  reinvite.SetBody(offer.Serialize(), "application/sdp");
  layer_.StartClient(
      std::move(reinvite), call.remote_endpoint,
      [this, call_id](const Message& response) {
        if (response.status() < 200 || response.status() >= 300) return;
        const auto it2 = calls_.find(call_id);
        if (it2 == calls_.end()) return;
        // ACK the re-INVITE's 2xx end-to-end, like the original.
        Message ack = BuildInDialogRequest(it2->second, Method::kAck);
        if (const auto cseq = response.Cseq()) {
          ack.SetCseq(CSeq{cseq->number, Method::kAck});
          --it2->second.local_cseq;  // BuildInDialogRequest bumped it
        }
        layer_.SendStateless(ack, it2->second.remote_endpoint);
      },
      [] {});
  return true;
}

Message UserAgent::BuildInDialogRequest(Call& call, Method method) {
  Message request = Message::MakeRequest(method, call.remote_target);
  Via via;
  via.sent_by = transport_.local();
  via.branch = layer_.NewBranch();
  request.PushVia(via);
  NameAddr from;
  from.uri = call.local_uri;
  from.SetTag(call.local_tag);
  request.SetFrom(from);
  NameAddr to;
  to.uri = call.remote_uri;
  if (!call.remote_tag.empty()) to.SetTag(call.remote_tag);
  request.SetTo(to);
  request.SetCallId(call.record.call_id);
  request.SetCseq(CSeq{++call.local_cseq, method});
  return request;
}

void UserAgent::OnRequest(ServerTransaction& tx) {
  switch (tx.method()) {
    case Method::kInvite: OnInvite(tx); return;
    case Method::kBye: OnBye(tx); return;
    case Method::kCancel: OnCancel(tx); return;
    case Method::kOptions:
      tx.Respond(tx.MakeResponse(200, layer_.NewTag()));
      return;
    default:
      tx.Respond(tx.MakeResponse(405, layer_.NewTag()));
      return;
  }
}

void UserAgent::OnInvite(ServerTransaction& tx) {
  const auto call_id_hdr = tx.request().CallId();
  const auto from = tx.request().From();
  if (!call_id_hdr || !from) {
    tx.Respond(tx.MakeResponse(400));
    return;
  }
  const std::string call_id(*call_id_hdr);

  // A re-INVITE inside an existing dialog (call hijacking vector, §3.1) is
  // answered but not renegotiated in this model.
  if (calls_.contains(call_id)) {
    tx.Respond(tx.MakeResponse(200, calls_[call_id].local_tag));
    return;
  }
  if (active_call_count() >= config_.max_concurrent_calls) {
    tx.Respond(tx.MakeResponse(486, layer_.NewTag()));
    return;
  }

  Call call;
  call.record.call_id = call_id;
  call.record.peer = from->uri.UserAtHost();
  call.record.outgoing = false;
  call.record.started = scheduler_.Now();
  call.local_tag = layer_.NewTag();
  call.remote_tag = from->Tag().value_or("");
  call.local_uri = address_of_record();
  call.remote_uri = from->uri;
  call.local_rtp_port = AllocateRtpPort();
  if (const auto contact = tx.request().ContactHeader()) {
    call.remote_target = contact->uri;
    if (const auto ip = net::IpAddress::Parse(contact->uri.host)) {
      call.remote_endpoint = net::Endpoint{
          *ip, contact->uri.port != 0 ? contact->uri.port : kDefaultSipPort};
    }
  }
  if (const auto sd = sdp::SessionDescription::Parse(tx.request().body())) {
    if (const auto ep = sd->AudioEndpoint()) call.remote_rtp = *ep;
  }
  call.pending_invite = &tx;
  tx.set_on_timeout([this, call_id] { FinishCall(call_id, true); });

  tx.Respond(tx.MakeResponse(180, call.local_tag));

  calls_[call_id] = std::move(call);
  // Answer after the configured ringing time.
  calls_[call_id].answer_event =
      scheduler_.ScheduleAfter(config_.answer_delay, [this, call_id] {
        const auto it = calls_.find(call_id);
        if (it == calls_.end() || it->second.pending_invite == nullptr) return;
        Call& pending = it->second;
        ServerTransaction& invite_tx = *pending.pending_invite;
        pending.pending_invite = nullptr;
        Message ok = invite_tx.MakeResponse(200, pending.local_tag);
        NameAddr contact;
        contact.uri.user = config_.user;
        contact.uri.host = transport_.local().ip.ToString();
        contact.uri.port = config_.sip_port;
        ok.SetContact(contact);
        const auto answer = sdp::MakeAudioOffer(
            net::Endpoint{transport_.local().ip, pending.local_rtp_port});
        ok.SetBody(answer.Serialize(), "application/sdp");
        const net::Endpoint ok_destination = invite_tx.remote();
        invite_tx.Respond(ok);
        pending.record.answered = scheduler_.Now();
        // §13.3.1.4: the 2xx ends the INVITE transaction, so its
        // reliability is the UAS core's job — retransmit until ACKed.
        pending.pending_ok = std::move(ok);
        pending.ok_destination = ok_destination;
        pending.ok_interval = config_.timers.t1;
        pending.ok_elapsed = sim::Duration{};
        pending.ok_retransmit_event = scheduler_.ScheduleAfter(
            pending.ok_interval,
            [this, call_id] { Retransmit200(call_id); });
        // Session expiry (RFC 4028 stand-in): don't trust the caller to
        // ever hang up.
        pending.hangup_event = scheduler_.ScheduleAfter(
            config_.uas_max_call_duration,
            [this, call_id] { HangUp(call_id); });
        // Media starts at answer; callers also wait for the ACK in full
        // implementations, but early media on 200 is common practice.
        StartMedia(pending);
      });
}

void UserAgent::OnAck(const Message& ack, const net::Datagram&) {
  // ACK for our 200 OK: the dialog is confirmed; stop retransmitting the
  // 2xx (media already started at answer time).
  const auto call_id_hdr = ack.CallId();
  if (!call_id_hdr) return;
  const auto it = calls_.find(std::string(*call_id_hdr));
  if (it == calls_.end()) {
    VIDS_TRACE() << config_.user << ": stray ACK";
    return;
  }
  Call& call = it->second;
  call.pending_ok.reset();
  scheduler_.Cancel(call.ok_retransmit_event);
}

void UserAgent::Retransmit200(const std::string& call_id) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end() || !it->second.pending_ok) return;
  Call& call = it->second;
  call.ok_elapsed += call.ok_interval;
  if (call.ok_elapsed >= config_.timers.t1 * 64) {
    // §13.3.1.4: no ACK after 64*T1 — terminate the dialog with a BYE.
    call.pending_ok.reset();
    VIDS_DEBUG() << config_.user << ": 2xx never ACKed, hanging up "
                 << call_id;
    HangUp(call_id);
    return;
  }
  layer_.SendStateless(*call.pending_ok, call.ok_destination);
  call.ok_interval = std::min(call.ok_interval * 2, config_.timers.t2);
  call.ok_retransmit_event = scheduler_.ScheduleAfter(
      call.ok_interval, [this, call_id] { Retransmit200(call_id); });
}

void UserAgent::OnStrayResponse(const Message& response,
                                const net::Datagram&) {
  // §13.2.2.4: a retransmitted 2xx for the INVITE means our ACK was lost —
  // answer every copy with a fresh ACK.
  if (response.status() < 200 || response.status() >= 300 ||
      response.method() != Method::kInvite) {
    return;
  }
  const auto call_id_hdr = response.CallId();
  if (!call_id_hdr) return;
  const auto it = calls_.find(std::string(*call_id_hdr));
  if (it == calls_.end() || !it->second.last_ack) return;
  layer_.SendStateless(*it->second.last_ack, it->second.remote_endpoint);
}

void UserAgent::OnBye(ServerTransaction& tx) {
  const auto call_id_hdr = tx.request().CallId();
  if (!call_id_hdr) {
    tx.Respond(tx.MakeResponse(400));
    return;
  }
  const std::string call_id(*call_id_hdr);
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) {
    tx.Respond(tx.MakeResponse(481));
    return;
  }
  // NOTE: like the paper's victim UA, we accept the BYE if the Call-ID
  // matches — no cryptographic authentication. A spoofed BYE therefore
  // tears the call down (the BYE DoS attack of §3.1); detecting it is the
  // IDS's job, not the UA's.
  Call& call = it->second;
  scheduler_.Cancel(call.hangup_event);
  StopMedia(call);
  tx.Respond(tx.MakeResponse(200, call.local_tag));
  FinishCall(call_id, /*failed=*/false);
}

void UserAgent::OnCancel(ServerTransaction& tx) {
  ServerTransaction* invite_tx = layer_.FindInviteServer(tx.request());
  tx.Respond(tx.MakeResponse(200, layer_.NewTag()));
  if (invite_tx == nullptr || invite_tx->state() != TxState::kProceeding) {
    return;  // nothing to cancel (too late or unknown)
  }
  const auto call_id_hdr = invite_tx->request().CallId();
  const std::string call_id =
      call_id_hdr ? std::string(*call_id_hdr) : std::string();
  const auto it = calls_.find(call_id);
  if (it != calls_.end() && it->second.pending_invite != nullptr) {
    Call& call = it->second;
    scheduler_.Cancel(call.answer_event);
    call.pending_invite = nullptr;
    invite_tx->Respond(invite_tx->MakeResponse(487, call.local_tag));
    FinishCall(call_id, /*failed=*/true);
  }
}

void UserAgent::StartMedia(Call& call) {
  if (call.media_running || call.remote_rtp.port == 0) return;
  call.media_running = true;
  if (media_start_) {
    MediaSpec spec;
    spec.call_id = call.record.call_id;
    spec.local_rtp = net::Endpoint{transport_.local().ip, call.local_rtp_port};
    spec.remote_rtp = call.remote_rtp;
    media_start_(spec);
  }
}

void UserAgent::StopMedia(Call& call) {
  if (!call.media_running) return;
  call.media_running = false;
  if (media_stop_) media_stop_(call.record.call_id);
}

void UserAgent::FinishCall(const std::string& call_id, bool failed) {
  const auto it = calls_.find(call_id);
  if (it == calls_.end()) return;
  Call& call = it->second;
  scheduler_.Cancel(call.answer_event);
  scheduler_.Cancel(call.hangup_event);
  scheduler_.Cancel(call.ok_retransmit_event);
  StopMedia(call);
  call.record.ended = scheduler_.Now();
  call.record.failed = failed;
  completed_calls_.push_back(call.record);
  if (on_call_done_) on_call_done_(completed_calls_.back());
  calls_.erase(it);
}

}  // namespace vids::sip
