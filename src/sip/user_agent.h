// SIP user agent (UAC + UAS), the "IP phone" of the paper's testbed.
//
// Places and answers calls through an outbound proxy, negotiates media via
// SDP, keeps dialog state, and reports per-call metrics (setup delay =
// INVITE sent → 180 received, the quantity Figure 9 plots). Media itself is
// decoupled through MediaStart/MediaStop hooks the testbed wires to RTP
// sessions, keeping the SIP library independent of the RTP library.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "sdp/sdp.h"
#include "sip/transaction.h"

namespace vids::sip {

/// Everything the media layer needs to start an RTP stream for a call.
struct MediaSpec {
  std::string call_id;
  net::Endpoint local_rtp;
  net::Endpoint remote_rtp;
  std::string codec = "G729";
  int payload_type = 18;
};

/// Lifecycle record of one call attempt, harvested by the experiments.
struct CallRecord {
  std::string call_id;
  std::string peer;          // remote address-of-record
  bool outgoing = false;
  sim::Time started;         // INVITE sent (UAC) or received (UAS)
  std::optional<sim::Time> ringing;    // 180 received (UAC only)
  std::optional<sim::Time> answered;   // 200 OK received/sent
  std::optional<sim::Time> ended;      // BYE completed / call failed
  bool failed = false;

  /// The paper's call setup time: last digit (INVITE) to ringback (180).
  std::optional<sim::Duration> SetupDelay() const {
    if (!ringing) return std::nullopt;
    return *ringing - started;
  }
};

class UserAgent {
 public:
  struct Config {
    std::string user;              // "ua3"
    std::string domain;            // "a.example.com"
    net::Endpoint outbound_proxy;  // where requests leave through
    uint16_t sip_port = kDefaultSipPort;
    uint16_t rtp_port_base = 20000;
    /// Simulated ringing time before the UAS answers with 200 OK.
    sim::Duration answer_delay = sim::Duration::Millis(500);
    /// Calls beyond this limit are refused with 486 Busy Here — the
    /// capability limit the INVITE-flooding threat (§3.1) exhausts.
    int max_concurrent_calls = 3;
    /// Digest password used to answer a registrar's 401 challenge.
    std::string password;
    /// Safety valve for answered incoming calls whose caller never hangs
    /// up (e.g. flood residue): the UAS hangs up after this long. Stands in
    /// for RFC 4028 session timers.
    sim::Duration uas_max_call_duration = sim::Duration::Seconds(3600);
    TimerConfig timers{};
  };

  using MediaStart = std::function<void(const MediaSpec&)>;
  using MediaStop = std::function<void(const std::string& call_id)>;
  using CallEvent = std::function<void(const CallRecord&)>;

  UserAgent(sim::Scheduler& scheduler, net::Host& host, Config config);

  /// Sends the initial REGISTER binding this UA's contact at its registrar.
  /// If the registrar challenges with 401 Digest, answers once with the
  /// configured password.
  void Register();

  /// True once a REGISTER received its 200 OK.
  bool registered() const { return registered_; }

  /// Places a call to `callee` (an address-of-record URI). The call is hung
  /// up by this side `duration` after it is answered. Returns the Call-ID.
  std::string PlaceCall(const SipUri& callee, sim::Duration duration);

  /// Cancels a not-yet-answered outgoing call.
  void CancelCall(const std::string& call_id);

  /// Hangs up an established call immediately.
  void HangUp(const std::string& call_id);

  /// Sends a re-INVITE inside the established dialog, re-offering the same
  /// media (a keep-alive/refresh; the degenerate hold/resume case). Returns
  /// false if the call is not established.
  bool Reinvite(const std::string& call_id);

  void set_media_start(MediaStart hook) { media_start_ = std::move(hook); }
  void set_media_stop(MediaStop hook) { media_stop_ = std::move(hook); }
  /// Invoked whenever a call record reaches a terminal state.
  void set_on_call_done(CallEvent hook) { on_call_done_ = std::move(hook); }

  SipUri address_of_record() const;
  net::Endpoint contact_endpoint() const { return transport_.local(); }
  const Config& config() const { return config_; }

  /// Terminal call records, in completion order.
  const std::vector<CallRecord>& completed_calls() const {
    return completed_calls_;
  }
  int active_call_count() const { return static_cast<int>(calls_.size()); }

  /// For metric attachment by the deployment that owns this UA.
  TransactionLayer& transaction_layer() { return layer_; }

 private:
  struct Call {
    CallRecord record;
    // Dialog state (RFC 3261 §12).
    std::string local_tag;
    std::string remote_tag;
    uint32_t local_cseq = 1;
    SipUri local_uri;
    SipUri remote_uri;
    SipUri remote_target;          // peer Contact URI
    net::Endpoint remote_endpoint; // where in-dialog requests go
    net::Endpoint remote_rtp;
    uint16_t local_rtp_port = 0;
    sim::Duration planned_duration{};
    bool media_running = false;
    bool terminating = false;
    ServerTransaction* pending_invite = nullptr;  // UAS side, pre-answer
    std::optional<Message> original_invite;       // UAC side, for CANCEL
    // §13.3.1.4: the UAS core retransmits its 2xx until the ACK arrives
    // (the transaction layer is already gone for 2xx finals).
    std::optional<Message> pending_ok;
    net::Endpoint ok_destination;
    sim::Duration ok_interval{};
    sim::Duration ok_elapsed{};
    sim::Scheduler::EventId ok_retransmit_event;
    // §13.2.2.4: the UAC core re-sends the ACK for every retransmitted 2xx.
    std::optional<Message> last_ack;
    sim::Scheduler::EventId answer_event;
    sim::Scheduler::EventId hangup_event;
  };

  void SendRegister(std::optional<std::string> authorization,
                    uint32_t cseq_number);
  void OnRequest(ServerTransaction& tx);
  void OnAck(const Message& ack, const net::Datagram& dgram);
  void OnInvite(ServerTransaction& tx);
  void OnBye(ServerTransaction& tx);
  void OnCancel(ServerTransaction& tx);
  void OnInviteResponse(const std::string& call_id, const Message& response);
  void OnStrayResponse(const Message& response, const net::Datagram& dgram);
  void Retransmit200(const std::string& call_id);
  void StartMedia(Call& call);
  void StopMedia(Call& call);
  void FinishCall(const std::string& call_id, bool failed);
  Message BuildInvite(Call& call);
  Message BuildInDialogRequest(Call& call, Method method);
  uint16_t AllocateRtpPort();
  std::string NewCallId();

  sim::Scheduler& scheduler_;
  Config config_;
  Transport transport_;
  TransactionLayer layer_;
  MediaStart media_start_;
  MediaStop media_stop_;
  CallEvent on_call_done_;
  std::map<std::string, Call> calls_;  // by Call-ID
  std::vector<CallRecord> completed_calls_;
  uint64_t next_call_serial_ = 1;
  uint16_t next_rtp_port_;
  bool registered_ = false;
  std::string register_call_id_;
};

}  // namespace vids::sip
