// Zero-copy, single-pass, lazily-decoded SIP parse layer.
//
// LazyMessage::Index makes one structural pass over a datagram payload and
// builds a span table: start-line kind, method/status spans, and one
// {canonical-name-id, value-span} entry per header (folded Via values are
// unfolded into separate entries, exactly like Message::Parse). It accepts
// and rejects precisely the same inputs as Message::Parse — the mutable
// Message codec is rebuilt on top of this lexer, and sip_lazy_test pins the
// equivalence property over generated and adversarial corpora.
//
// Typed views (ViaView, NameAddrView, UriView, CSeqView) are decoded
// lazily and memoized: TopVia()/From()/To()/Cseq() parse their header value
// at most once per indexed packet, store parameters in small inline arrays
// instead of std::map, and hand out string_views into the original payload.
//
// Lifetime invariant: every string_view produced by this class (header
// values, view fields, param names/values) points into the payload passed
// to Index(). Views must not outlive that buffer; re-indexing invalidates
// them. The IDS inspect path honors this by consuming the views inside the
// per-packet scope only and copying anything it retains.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "net/address.h"

namespace vids::sip {

enum class Method;  // message.h

/// Canonical header identities — one per entry of the canonical-name table
/// the serializer uses, so a span-table entry resolves its name without
/// materializing a string. kOther covers headers outside the table.
enum class HeaderId : uint8_t {
  kVia,
  kFrom,
  kTo,
  kCallId,
  kCseq,
  kContact,
  kContentType,
  kContentLength,
  kMaxForwards,
  kExpires,
  kUserAgent,
  kWwwAuthenticate,
  kAuthorization,
  kProxyAuthenticate,
  kProxyAuthorization,
  kRecordRoute,
  kRoute,
  kAllow,
  kSupported,
  kSubject,
  kOther,
};

/// RFC 3261 §7.3.3 compact-form expansion ("i" -> "Call-ID", ...).
std::string_view ExpandCompactHeader(std::string_view name);

/// Canonical spelling of a table header; empty for kOther.
std::string_view CanonicalHeaderName(HeaderId id);

/// Resolves a (possibly compact, case-insensitive) header name to its id.
HeaderId CanonicalHeaderId(std::string_view name);

/// One ";name=value" or ";flag" parameter. Views into the payload.
struct ParamView {
  std::string_view name;   // left of '=', not re-trimmed (parser parity)
  std::string_view value;  // right of '=', empty for flag parameters
};

/// Parameter list with inline capacity. Matches the std::map semantics of
/// the mutable codec's ParseParams: keys compare case-insensitively and the
/// last occurrence of a key wins.
class ParamList {
 public:
  void clear() { size_ = 0; }
  void push_back(ParamView param);
  size_t size() const { return size_; }
  const ParamView& operator[](size_t i) const {
    return i < kInline ? inline_[i] : overflow_[i - kInline];
  }
  /// Last parameter whose name matches `name` ASCII-case-insensitively, or
  /// nullptr. (insert_or_assign on a lowercased key == last-wins.)
  const ParamView* Find(std::string_view name) const;

 private:
  static constexpr size_t kInline = 8;
  size_t size_ = 0;
  std::array<ParamView, kInline> inline_{};
  std::vector<ParamView> overflow_;
};

/// A SIP URI, decoded without copying: sip:user@host[:port];params.
struct UriView {
  std::string_view user;
  std::string_view host;
  uint16_t port = 0;        // 0 = unspecified (default 5060)
  std::string_view params;  // everything after the first ';', verbatim
};

/// Decodes `text` with SipUri::Parse's exact semantics. Allocation-free.
bool ParseUriView(std::string_view text, UriView& out);

/// A From/To/Contact value: [display-name] <uri> ;params.
struct NameAddrView {
  std::string_view display_name;
  UriView uri;
  ParamList params;

  /// The "tag" parameter, or nullopt when absent. A present-but-empty tag
  /// yields an empty view (distinct from absent, like NameAddr::Tag()).
  std::optional<std::string_view> Tag() const {
    const ParamView* tag = params.Find("tag");
    if (tag == nullptr) return std::nullopt;
    return tag->value;
  }
};

/// One Via value: SIP/2.0/transport host[:port];branch=...;params.
struct ViaView {
  std::string_view transport;
  net::Endpoint sent_by;
  std::string_view branch;  // empty when the branch parameter is absent
  ParamList params;         // includes the branch parameter, if any
};

struct CSeqView {
  uint32_t number = 0;
  Method method{};  // always one of the six known methods (parse rejects else)
};

class LazyMessage {
 public:
  struct HeaderEntry {
    HeaderId id = HeaderId::kOther;
    std::string_view name;   // raw spelling, trimmed (compact forms stay "i")
    std::string_view value;  // trimmed; Via lines yield one entry per comma
  };

  /// Indexes one datagram payload. Returns false on exactly the inputs
  /// Message::Parse rejects (bad start line, header without colon,
  /// unparsable CSeq / Content-Length, truncated body, bad request URI).
  /// Invalidates all views handed out for the previous payload.
  bool Index(std::string_view payload);

  bool IsRequest() const { return status_ == 0; }
  bool IsResponse() const { return status_ != 0; }

  /// Request method token, verbatim ("INVITE", or an unknown spelling).
  std::string_view method_token() const { return method_token_; }
  /// For requests: the request-line method. For responses: the CSeq method
  /// (kUnknown when no CSeq is present). Mirrors Message::method().
  Method method() const;
  const UriView& request_uri() const { return request_uri_; }
  int status() const { return status_; }
  std::string_view reason() const { return reason_; }

  /// First value of the header, or nullopt. kOther is ambiguous (many
  /// header names share it) and always yields nullopt — use the name
  /// overload for non-table headers.
  std::optional<std::string_view> Header(HeaderId id) const;
  /// First value of the (case-insensitive, possibly compact) name.
  std::optional<std::string_view> Header(std::string_view name) const;

  size_t HeaderCount() const { return header_count_; }
  const HeaderEntry& HeaderAt(size_t i) const {
    return i < kInlineHeaders ? inline_headers_[i]
                              : overflow_headers_[i - kInlineHeaders];
  }

  std::optional<std::string_view> CallId() const {
    return Header(HeaderId::kCallId);
  }
  /// Body, already clamped to Content-Length when that header is present.
  std::string_view body() const { return body_; }

  // --- Memoized typed views (each decodes at most once per Index) ---
  /// nullptr when the header is absent or its value does not parse.
  const ViaView* TopVia() const;
  const NameAddrView* From() const;
  const NameAddrView* To() const;
  /// Never null after a successful Index *if* a CSeq header exists: Index
  /// rejects payloads whose CSeq does not parse. nullptr when absent.
  const CSeqView* Cseq() const { return has_cseq_ ? &cseq_ : nullptr; }

 private:
  enum class Memo : uint8_t { kUnparsed, kValid, kInvalid };

  void AppendHeader(HeaderId id, std::string_view name, std::string_view value);
  const NameAddrView* MemoNameAddr(HeaderId id, Memo& state,
                                   NameAddrView& view) const;

  static constexpr size_t kInlineHeaders = 32;

  // Start line.
  int status_ = 0;
  std::string_view method_token_;
  std::string_view reason_;
  UriView request_uri_;

  // Span table.
  size_t header_count_ = 0;
  std::array<HeaderEntry, kInlineHeaders> inline_headers_{};
  std::vector<HeaderEntry> overflow_headers_;
  std::string_view body_;

  // Eager CSeq (Index validates it) and lazy memoized views.
  bool has_cseq_ = false;
  CSeqView cseq_{};
  mutable Memo top_via_state_ = Memo::kUnparsed;
  mutable ViaView top_via_;
  mutable Memo from_state_ = Memo::kUnparsed;
  mutable NameAddrView from_;
  mutable Memo to_state_ = Memo::kUnparsed;
  mutable NameAddrView to_;
};

/// Decodes one Via value with Via::Parse's exact semantics. Allocation-free
/// (given the list stays within its inline capacity).
bool ParseViaView(std::string_view text, ViaView& out);

/// Decodes a name-addr / addr-spec with NameAddr::Parse's exact semantics.
bool ParseNameAddrView(std::string_view text, NameAddrView& out);

/// Decodes "number METHOD" with CSeq::Parse's exact semantics.
bool ParseCSeqView(std::string_view text, CSeqView& out);

}  // namespace vids::sip
