#include "sip/message.h"

#include <array>
#include <sstream>

#include "common/strings.h"

namespace vids::sip {

using common::IEquals;
using common::ParseInt;
using common::Split;
using common::SplitOnce;
using common::Trim;

namespace {

constexpr std::string_view kSipVersion = "SIP/2.0";
constexpr std::string_view kBranchCookie = "z9hG4bK";

struct MethodEntry {
  Method method;
  std::string_view name;
};
constexpr std::array<MethodEntry, 6> kMethods{{
    {Method::kInvite, "INVITE"},
    {Method::kAck, "ACK"},
    {Method::kBye, "BYE"},
    {Method::kCancel, "CANCEL"},
    {Method::kRegister, "REGISTER"},
    {Method::kOptions, "OPTIONS"},
}};

// RFC 3261 §7.3.3 compact forms for the headers we care about.
std::string_view ExpandCompact(std::string_view name) {
  if (name.size() != 1) return name;
  switch (name[0] | 0x20) {
    case 'i': return "Call-ID";
    case 'f': return "From";
    case 't': return "To";
    case 'v': return "Via";
    case 'm': return "Contact";
    case 'c': return "Content-Type";
    case 'l': return "Content-Length";
    default: return name;
  }
}

// Canonical capitalization so serialized traffic looks conventional. Every
// header the stack itself emits hits the static table — one case-insensitive
// scan over ~20 entries, no per-character case analysis; the word-by-word
// capitalization loop only runs for headers outside the table.
std::string CanonicalName(std::string_view name) {
  name = ExpandCompact(name);
  static constexpr std::string_view kCanonical[] = {
      "Via", "From", "To", "Call-ID", "CSeq", "Contact", "Content-Type",
      "Content-Length", "Max-Forwards", "Expires", "User-Agent",
      "WWW-Authenticate", "Authorization", "Proxy-Authenticate",
      "Proxy-Authorization", "Record-Route", "Route", "Allow", "Supported",
      "Subject"};
  for (const std::string_view canonical : kCanonical) {
    if (IEquals(name, canonical)) return std::string(canonical);
  }
  std::string out(name);
  bool start_of_word = true;
  for (char& c : out) {
    if (start_of_word && c >= 'a' && c <= 'z') {
      c = static_cast<char>(c - 'a' + 'A');
    } else if (!start_of_word && c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
    start_of_word = (c == '-');
  }
  return out;
}

// Parses ";name=value;flag" parameter tails shared by URIs/NameAddr/Via.
std::map<std::string, std::string> ParseParams(std::string_view tail) {
  std::map<std::string, std::string> params;
  for (const auto piece : Split(tail, ';')) {
    if (piece.empty()) continue;
    const auto eq = SplitOnce(piece, '=');
    std::string key(eq ? eq->first : piece);
    common::AsciiLowerInPlace(key);
    params.insert_or_assign(std::move(key),
                            eq ? std::string(eq->second) : std::string());
  }
  return params;
}

}  // namespace

std::string_view MethodName(Method method) {
  for (const auto& entry : kMethods) {
    if (entry.method == method) return entry.name;
  }
  return "UNKNOWN";
}

Method ParseMethod(std::string_view token) {
  for (const auto& entry : kMethods) {
    if (entry.name == token) return entry.method;
  }
  return Method::kUnknown;
}

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 100: return "Trying";
    case 180: return "Ringing";
    case 181: return "Call Is Being Forwarded";
    case 183: return "Session Progress";
    case 200: return "OK";
    case 202: return "Accepted";
    case 301: return "Moved Permanently";
    case 302: return "Moved Temporarily";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 415: return "Unsupported Media Type";
    case 480: return "Temporarily Unavailable";
    case 481: return "Call/Transaction Does Not Exist";
    case 486: return "Busy Here";
    case 487: return "Request Terminated";
    case 500: return "Server Internal Error";
    case 503: return "Service Unavailable";
    case 600: return "Busy Everywhere";
    case 603: return "Decline";
    default: return "Unknown";
  }
}

// --- SipUri ---

std::optional<SipUri> SipUri::Parse(std::string_view text) {
  text = Trim(text);
  if (!common::IStartsWith(text, "sip:")) return std::nullopt;
  text.remove_prefix(4);
  SipUri uri;
  // Split off URI parameters.
  if (const auto semi = text.find(';'); semi != std::string_view::npos) {
    uri.params = std::string(text.substr(semi + 1));
    text = text.substr(0, semi);
  }
  if (const auto at = text.find('@'); at != std::string_view::npos) {
    uri.user = std::string(text.substr(0, at));
    text = text.substr(at + 1);
  }
  if (text.empty()) return std::nullopt;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    const auto port = ParseInt<uint16_t>(text.substr(colon + 1));
    if (!port) return std::nullopt;
    uri.port = *port;
    text = text.substr(0, colon);
  }
  uri.host = std::string(text);
  return uri;
}

std::string SipUri::ToString() const {
  std::string out = "sip:";
  if (!user.empty()) {
    out += user;
    out += '@';
  }
  out += host;
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  if (!params.empty()) {
    out += ';';
    out += params;
  }
  return out;
}

// --- NameAddr ---

std::optional<NameAddr> NameAddr::Parse(std::string_view text) {
  text = Trim(text);
  NameAddr addr;
  std::string_view uri_part;
  std::string_view param_tail;

  const auto open = text.find('<');
  if (open != std::string_view::npos) {
    const auto close = text.find('>', open);
    if (close == std::string_view::npos) return std::nullopt;
    std::string_view display = Trim(text.substr(0, open));
    if (display.size() >= 2 && display.front() == '"' && display.back() == '"') {
      display = display.substr(1, display.size() - 2);
    }
    addr.display_name = std::string(display);
    uri_part = text.substr(open + 1, close - open - 1);
    param_tail = text.substr(close + 1);
    if (!param_tail.empty() && param_tail.front() == ';') {
      param_tail.remove_prefix(1);
    }
  } else {
    // addr-spec form: params after ';' belong to the header, not the URI.
    const auto semi = text.find(';');
    uri_part = text.substr(0, semi);
    if (semi != std::string_view::npos) param_tail = text.substr(semi + 1);
  }

  const auto uri = SipUri::Parse(uri_part);
  if (!uri) return std::nullopt;
  addr.uri = *uri;
  if (!param_tail.empty()) addr.params = ParseParams(param_tail);
  return addr;
}

std::string NameAddr::ToString() const {
  std::string out;
  if (!display_name.empty()) {
    out += '"';
    out += display_name;
    out += "\" ";
  }
  out += '<';
  out += uri.ToString();
  out += '>';
  for (const auto& [key, value] : params) {
    out += ';';
    out += key;
    if (!value.empty()) {
      out += '=';
      out += value;
    }
  }
  return out;
}

std::optional<std::string> NameAddr::Tag() const {
  const auto it = params.find("tag");
  if (it == params.end()) return std::nullopt;
  return it->second;
}

void NameAddr::SetTag(std::string_view tag) {
  params["tag"] = std::string(tag);
}

// --- Via ---

std::optional<Via> Via::Parse(std::string_view text) {
  text = Trim(text);
  // "SIP/2.0/UDP host:port;params"
  const auto space = text.find(' ');
  if (space == std::string_view::npos) return std::nullopt;
  const std::string_view proto = text.substr(0, space);
  const auto parts = Split(proto, '/');
  if (parts.size() != 3 || parts[0] != "SIP" || parts[1] != "2.0") {
    return std::nullopt;
  }
  Via via;
  via.transport = std::string(parts[2]);

  std::string_view rest = Trim(text.substr(space + 1));
  std::string_view host_port = rest;
  if (const auto semi = rest.find(';'); semi != std::string_view::npos) {
    host_port = Trim(rest.substr(0, semi));
    via.params = ParseParams(rest.substr(semi + 1));
  }
  const auto ep = net::Endpoint::Parse(host_port);
  if (ep) {
    via.sent_by = *ep;
  } else {
    const auto ip = net::IpAddress::Parse(host_port);
    if (!ip) return std::nullopt;
    via.sent_by = net::Endpoint{*ip, 5060};
  }
  if (const auto it = via.params.find("branch"); it != via.params.end()) {
    via.branch = it->second;
    via.params.erase(it);
  }
  return via;
}

std::string Via::ToString() const {
  std::string out = "SIP/2.0/" + transport + " " + sent_by.ToString();
  if (!branch.empty()) out += ";branch=" + branch;
  for (const auto& [key, value] : params) {
    out += ';';
    out += key;
    if (!value.empty()) {
      out += '=';
      out += value;
    }
  }
  return out;
}

// --- CSeq ---

std::optional<CSeq> CSeq::Parse(std::string_view text) {
  const auto split = SplitOnce(Trim(text), ' ');
  if (!split) return std::nullopt;
  const auto number = ParseInt<uint32_t>(split->first);
  if (!number) return std::nullopt;
  const Method method = sip::ParseMethod(Trim(split->second));
  if (method == Method::kUnknown) return std::nullopt;
  return CSeq{*number, method};
}

std::string CSeq::ToString() const {
  return std::to_string(number) + " " + std::string(MethodName(method));
}

// --- Message ---

Message Message::MakeRequest(Method method, SipUri request_uri) {
  Message msg;
  msg.req_method_ = method;
  msg.req_method_token_ = std::string(MethodName(method));
  msg.request_uri_ = std::move(request_uri);
  msg.SetHeader("Max-Forwards", "70");
  msg.SetHeader("Content-Length", "0");
  return msg;
}

Message Message::MakeResponse(int status) {
  return MakeResponse(status, std::string(ReasonPhrase(status)));
}

Message Message::MakeResponse(int status, std::string reason) {
  Message msg;
  msg.status_ = status;
  msg.reason_ = std::move(reason);
  msg.SetHeader("Content-Length", "0");
  return msg;
}

std::optional<Message> Message::Parse(std::string_view text) {
  // Split head (start line + headers) from body at the blank line.
  size_t head_end = text.find("\r\n\r\n");
  size_t body_start;
  if (head_end != std::string_view::npos) {
    body_start = head_end + 4;
  } else {
    head_end = text.find("\n\n");
    if (head_end == std::string_view::npos) {
      head_end = text.size();
      body_start = text.size();
    } else {
      body_start = head_end + 2;
    }
  }
  const std::string_view head = text.substr(0, head_end);

  Message msg;
  bool first_line = true;
  size_t pos = 0;
  while (pos < head.size()) {
    size_t eol = head.find('\n', pos);
    std::string_view line = head.substr(
        pos, eol == std::string_view::npos ? head.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? head.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (first_line) {
      first_line = false;
      line = Trim(line);
      if (line.empty()) return std::nullopt;
      if (common::IStartsWith(line, "SIP/2.0 ")) {
        // Status line: SIP/2.0 200 OK
        const auto rest = Trim(line.substr(kSipVersion.size()));
        const auto space = rest.find(' ');
        const auto code_text =
            space == std::string_view::npos ? rest : rest.substr(0, space);
        const auto code = ParseInt<int>(code_text);
        if (!code || *code < 100 || *code > 699) return std::nullopt;
        msg.status_ = *code;
        msg.reason_ = space == std::string_view::npos
                          ? std::string()
                          : std::string(Trim(rest.substr(space + 1)));
      } else {
        // Request line: INVITE sip:bob@b.example SIP/2.0
        const auto parts = Split(line, ' ');
        if (parts.size() != 3 || parts[2] != kSipVersion) return std::nullopt;
        msg.req_method_token_ = std::string(parts[0]);
        msg.req_method_ = sip::ParseMethod(parts[0]);
        const auto uri = SipUri::Parse(parts[1]);
        if (!uri) return std::nullopt;
        msg.request_uri_ = *uri;
      }
      continue;
    }
    if (Trim(line).empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return std::nullopt;
    const std::string name = CanonicalName(Trim(line.substr(0, colon)));
    const std::string_view value = Trim(line.substr(colon + 1));
    // Comma-separated Via values may be folded into one line (RFC 3261
    // §7.3.1); unfold them so PopVia works uniformly.
    if (IEquals(name, "Via")) {
      for (const auto piece : Split(value, ',')) {
        msg.headers_.emplace_back(name, std::string(piece));
      }
    } else {
      msg.headers_.emplace_back(name, std::string(value));
    }
  }
  if (first_line) return std::nullopt;

  // Mandatory structural fields must parse if present.
  if (const auto cseq = msg.Header("CSeq"); cseq && !CSeq::Parse(*cseq)) {
    return std::nullopt;
  }

  std::string_view body = text.substr(body_start);
  if (const auto len_text = msg.Header("Content-Length")) {
    const auto len = ParseInt<size_t>(*len_text);
    if (!len) return std::nullopt;
    if (*len > body.size()) return std::nullopt;  // truncated message
    body = body.substr(0, *len);
  }
  msg.body_ = std::string(body);
  return msg;
}

std::string Message::Serialize() const {
  std::ostringstream out;
  if (IsRequest()) {
    out << req_method_token_ << " " << request_uri_.ToString() << " "
        << kSipVersion << "\r\n";
  } else {
    out << kSipVersion << " " << status_ << " " << reason_ << "\r\n";
  }
  for (const auto& [name, value] : headers_) {
    out << name << ": " << value << "\r\n";
  }
  out << "\r\n" << body_;
  return out.str();
}

Method Message::method() const {
  if (IsRequest()) return req_method_;
  const auto cseq = Cseq();
  return cseq ? cseq->method : Method::kUnknown;
}

std::optional<std::string_view> Message::Header(std::string_view name) const {
  for (const auto& [key, value] : headers_) {
    if (IEquals(key, ExpandCompact(name))) return value;
  }
  return std::nullopt;
}

std::vector<std::string_view> Message::Headers(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& [key, value] : headers_) {
    if (IEquals(key, ExpandCompact(name))) out.push_back(value);
  }
  return out;
}

void Message::SetHeader(std::string_view name, std::string_view value) {
  RemoveHeader(name);
  headers_.emplace_back(CanonicalName(name), std::string(value));
}

void Message::AddHeader(std::string_view name, std::string_view value) {
  headers_.emplace_back(CanonicalName(name), std::string(value));
}

void Message::RemoveHeader(std::string_view name) {
  std::erase_if(headers_, [&](const auto& header) {
    return IEquals(header.first, ExpandCompact(name));
  });
}

std::optional<Via> Message::TopVia() const {
  const auto value = Header("Via");
  if (!value) return std::nullopt;
  return Via::Parse(*value);
}

std::vector<Via> Message::Vias() const {
  std::vector<Via> out;
  for (const auto value : Headers("Via")) {
    if (auto via = Via::Parse(value)) out.push_back(std::move(*via));
  }
  return out;
}

void Message::PushVia(const Via& via) {
  headers_.emplace(headers_.begin(), "Via", via.ToString());
}

void Message::PopVia() {
  for (auto it = headers_.begin(); it != headers_.end(); ++it) {
    if (IEquals(it->first, "Via")) {
      headers_.erase(it);
      return;
    }
  }
}

std::optional<NameAddr> Message::From() const {
  const auto value = Header("From");
  if (!value) return std::nullopt;
  return NameAddr::Parse(*value);
}

void Message::SetFrom(const NameAddr& from) {
  SetHeader("From", from.ToString());
}

std::optional<NameAddr> Message::To() const {
  const auto value = Header("To");
  if (!value) return std::nullopt;
  return NameAddr::Parse(*value);
}

void Message::SetTo(const NameAddr& to) { SetHeader("To", to.ToString()); }

std::optional<NameAddr> Message::ContactHeader() const {
  const auto value = Header("Contact");
  if (!value) return std::nullopt;
  return NameAddr::Parse(*value);
}

void Message::SetContact(const NameAddr& contact) {
  SetHeader("Contact", contact.ToString());
}

std::optional<CSeq> Message::Cseq() const {
  const auto value = Header("CSeq");
  if (!value) return std::nullopt;
  return CSeq::Parse(*value);
}

std::optional<int> Message::MaxForwards() const {
  const auto value = Header("Max-Forwards");
  if (!value) return std::nullopt;
  return ParseInt<int>(*value);
}

void Message::SetMaxForwards(int hops) {
  SetHeader("Max-Forwards", std::to_string(hops));
}

void Message::SetBody(std::string body, std::string_view content_type) {
  body_ = std::move(body);
  if (body_.empty()) {
    RemoveHeader("Content-Type");
  } else {
    SetHeader("Content-Type", content_type);
  }
  SetHeader("Content-Length", std::to_string(body_.size()));
}

std::string MakeBranch(uint64_t unique) {
  return std::string(kBranchCookie) + std::to_string(unique);
}

}  // namespace vids::sip
