#include "sip/message.h"

#include <array>
#include <sstream>

#include "common/strings.h"
#include "sip/lazy_message.h"

namespace vids::sip {

using common::IEquals;
using common::ParseInt;

namespace {

constexpr std::string_view kSipVersion = "SIP/2.0";
constexpr std::string_view kBranchCookie = "z9hG4bK";

struct MethodEntry {
  Method method;
  std::string_view name;
};
constexpr std::array<MethodEntry, 6> kMethods{{
    {Method::kInvite, "INVITE"},
    {Method::kAck, "ACK"},
    {Method::kBye, "BYE"},
    {Method::kCancel, "CANCEL"},
    {Method::kRegister, "REGISTER"},
    {Method::kOptions, "OPTIONS"},
}};

// Canonical capitalization so serialized traffic looks conventional. The
// shared lazy-lexer table resolves every header the stack itself emits; the
// word-by-word capitalization loop only runs for headers outside it.
std::string CanonicalName(std::string_view name) {
  const HeaderId id = CanonicalHeaderId(name);
  if (id != HeaderId::kOther) return std::string(CanonicalHeaderName(id));
  std::string out(name);
  bool start_of_word = true;
  for (char& c : out) {
    if (start_of_word && c >= 'a' && c <= 'z') {
      c = static_cast<char>(c - 'a' + 'A');
    } else if (!start_of_word && c >= 'A' && c <= 'Z') {
      c = static_cast<char>(c - 'A' + 'a');
    }
    start_of_word = (c == '-');
  }
  return out;
}

SipUri MaterializeUri(const UriView& view) {
  SipUri uri;
  uri.user = std::string(view.user);
  uri.host = std::string(view.host);
  uri.port = view.port;
  uri.params = std::string(view.params);
  return uri;
}

// Materializes a ParamList into the std::map form: keys lowercased, last
// occurrence wins (insert order == source order, so insert_or_assign keeps
// the historical semantics).
std::map<std::string, std::string> MaterializeParams(const ParamList& params) {
  std::map<std::string, std::string> out;
  for (size_t i = 0; i < params.size(); ++i) {
    std::string key(params[i].name);
    common::AsciiLowerInPlace(key);
    out.insert_or_assign(std::move(key), std::string(params[i].value));
  }
  return out;
}

}  // namespace

std::string_view MethodName(Method method) {
  for (const auto& entry : kMethods) {
    if (entry.method == method) return entry.name;
  }
  return "UNKNOWN";
}

Method ParseMethod(std::string_view token) {
  for (const auto& entry : kMethods) {
    if (entry.name == token) return entry.method;
  }
  return Method::kUnknown;
}

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 100: return "Trying";
    case 180: return "Ringing";
    case 181: return "Call Is Being Forwarded";
    case 183: return "Session Progress";
    case 200: return "OK";
    case 202: return "Accepted";
    case 301: return "Moved Permanently";
    case 302: return "Moved Temporarily";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 415: return "Unsupported Media Type";
    case 480: return "Temporarily Unavailable";
    case 481: return "Call/Transaction Does Not Exist";
    case 486: return "Busy Here";
    case 487: return "Request Terminated";
    case 500: return "Server Internal Error";
    case 503: return "Service Unavailable";
    case 600: return "Busy Everywhere";
    case 603: return "Decline";
    default: return "Unknown";
  }
}

// --- SipUri ---

std::optional<SipUri> SipUri::Parse(std::string_view text) {
  UriView view;
  if (!ParseUriView(text, view)) return std::nullopt;
  return MaterializeUri(view);
}

std::string SipUri::ToString() const {
  std::string out = "sip:";
  if (!user.empty()) {
    out += user;
    out += '@';
  }
  out += host;
  if (port != 0) {
    out += ':';
    out += std::to_string(port);
  }
  if (!params.empty()) {
    out += ';';
    out += params;
  }
  return out;
}

// --- NameAddr ---

std::optional<NameAddr> NameAddr::Parse(std::string_view text) {
  NameAddrView view;
  if (!ParseNameAddrView(text, view)) return std::nullopt;
  NameAddr addr;
  addr.display_name = std::string(view.display_name);
  addr.uri = MaterializeUri(view.uri);
  addr.params = MaterializeParams(view.params);
  return addr;
}

std::string NameAddr::ToString() const {
  std::string out;
  if (!display_name.empty()) {
    out += '"';
    out += display_name;
    out += "\" ";
  }
  out += '<';
  out += uri.ToString();
  out += '>';
  for (const auto& [key, value] : params) {
    out += ';';
    out += key;
    if (!value.empty()) {
      out += '=';
      out += value;
    }
  }
  return out;
}

std::optional<std::string> NameAddr::Tag() const {
  const auto it = params.find("tag");
  if (it == params.end()) return std::nullopt;
  return it->second;
}

void NameAddr::SetTag(std::string_view tag) {
  params["tag"] = std::string(tag);
}

// --- Via ---

std::optional<Via> Via::Parse(std::string_view text) {
  ViaView view;
  if (!ParseViaView(text, view)) return std::nullopt;
  Via via;
  via.transport = std::string(view.transport);
  via.sent_by = view.sent_by;
  via.branch = std::string(view.branch);
  via.params = MaterializeParams(view.params);
  // The view keeps branch in its param list; the map never held it.
  via.params.erase("branch");
  return via;
}

std::string Via::ToString() const {
  std::string out = "SIP/2.0/" + transport + " " + sent_by.ToString();
  if (!branch.empty()) out += ";branch=" + branch;
  for (const auto& [key, value] : params) {
    out += ';';
    out += key;
    if (!value.empty()) {
      out += '=';
      out += value;
    }
  }
  return out;
}

// --- CSeq ---

std::optional<CSeq> CSeq::Parse(std::string_view text) {
  CSeqView view;
  if (!ParseCSeqView(text, view)) return std::nullopt;
  return CSeq{view.number, view.method};
}

std::string CSeq::ToString() const {
  return std::to_string(number) + " " + std::string(MethodName(method));
}

// --- Message ---

Message Message::MakeRequest(Method method, SipUri request_uri) {
  Message msg;
  msg.req_method_ = method;
  msg.req_method_token_ = std::string(MethodName(method));
  msg.request_uri_ = std::move(request_uri);
  msg.SetHeader("Max-Forwards", "70");
  msg.SetHeader("Content-Length", "0");
  return msg;
}

Message Message::MakeResponse(int status) {
  return MakeResponse(status, std::string(ReasonPhrase(status)));
}

Message Message::MakeResponse(int status, std::string reason) {
  Message msg;
  msg.status_ = status;
  msg.reason_ = std::move(reason);
  msg.SetHeader("Content-Length", "0");
  return msg;
}

std::optional<Message> Message::Parse(std::string_view text) {
  // One structural pass through the shared lexer (acceptance semantics,
  // Via unfolding and Content-Length clamping live there), then
  // materialize the mutable representation from the span table.
  LazyMessage lazy;
  if (!lazy.Index(text)) return std::nullopt;

  Message msg;
  if (lazy.IsRequest()) {
    msg.req_method_token_ = std::string(lazy.method_token());
    msg.req_method_ = sip::ParseMethod(lazy.method_token());
    msg.request_uri_ = MaterializeUri(lazy.request_uri());
  } else {
    msg.status_ = lazy.status();
    msg.reason_ = std::string(lazy.reason());
  }
  msg.headers_.reserve(lazy.HeaderCount());
  for (size_t i = 0; i < lazy.HeaderCount(); ++i) {
    const auto& header = lazy.HeaderAt(i);
    msg.headers_.emplace_back(
        header.id != HeaderId::kOther
            ? std::string(CanonicalHeaderName(header.id))
            : CanonicalName(header.name),
        std::string(header.value));
  }
  msg.body_ = std::string(lazy.body());
  return msg;
}

std::string Message::Serialize() const {
  std::ostringstream out;
  if (IsRequest()) {
    out << req_method_token_ << " " << request_uri_.ToString() << " "
        << kSipVersion << "\r\n";
  } else {
    out << kSipVersion << " " << status_ << " " << reason_ << "\r\n";
  }
  for (const auto& [name, value] : headers_) {
    out << name << ": " << value << "\r\n";
  }
  out << "\r\n" << body_;
  return out.str();
}

Method Message::method() const {
  if (IsRequest()) return req_method_;
  const auto cseq = Cseq();
  return cseq ? cseq->method : Method::kUnknown;
}

std::optional<std::string_view> Message::Header(std::string_view name) const {
  for (const auto& [key, value] : headers_) {
    if (IEquals(key, ExpandCompactHeader(name))) return value;
  }
  return std::nullopt;
}

HeaderValues Message::Headers(std::string_view name) const {
  HeaderValues out;
  for (const auto& [key, value] : headers_) {
    if (IEquals(key, ExpandCompactHeader(name))) out.push_back(value);
  }
  return out;
}

void Message::SetHeader(std::string_view name, std::string_view value) {
  RemoveHeader(name);
  headers_.emplace_back(CanonicalName(name), std::string(value));
}

void Message::AddHeader(std::string_view name, std::string_view value) {
  headers_.emplace_back(CanonicalName(name), std::string(value));
}

void Message::RemoveHeader(std::string_view name) {
  std::erase_if(headers_, [&](const auto& header) {
    return IEquals(header.first, ExpandCompactHeader(name));
  });
}

std::optional<Via> Message::TopVia() const {
  const auto value = Header("Via");
  if (!value) return std::nullopt;
  return Via::Parse(*value);
}

std::vector<Via> Message::Vias() const {
  std::vector<Via> out;
  for (const auto value : Headers("Via")) {
    if (auto via = Via::Parse(value)) out.push_back(std::move(*via));
  }
  return out;
}

void Message::PushVia(const Via& via) {
  headers_.emplace(headers_.begin(), "Via", via.ToString());
}

void Message::PopVia() {
  for (auto it = headers_.begin(); it != headers_.end(); ++it) {
    if (IEquals(it->first, "Via")) {
      headers_.erase(it);
      return;
    }
  }
}

std::optional<NameAddr> Message::From() const {
  const auto value = Header("From");
  if (!value) return std::nullopt;
  return NameAddr::Parse(*value);
}

void Message::SetFrom(const NameAddr& from) {
  SetHeader("From", from.ToString());
}

std::optional<NameAddr> Message::To() const {
  const auto value = Header("To");
  if (!value) return std::nullopt;
  return NameAddr::Parse(*value);
}

void Message::SetTo(const NameAddr& to) { SetHeader("To", to.ToString()); }

std::optional<NameAddr> Message::ContactHeader() const {
  const auto value = Header("Contact");
  if (!value) return std::nullopt;
  return NameAddr::Parse(*value);
}

void Message::SetContact(const NameAddr& contact) {
  SetHeader("Contact", contact.ToString());
}

std::optional<CSeq> Message::Cseq() const {
  const auto value = Header("CSeq");
  if (!value) return std::nullopt;
  return CSeq::Parse(*value);
}

std::optional<int> Message::MaxForwards() const {
  const auto value = Header("Max-Forwards");
  if (!value) return std::nullopt;
  return ParseInt<int>(*value);
}

void Message::SetMaxForwards(int hops) {
  SetHeader("Max-Forwards", std::to_string(hops));
}

void Message::SetBody(std::string body, std::string_view content_type) {
  body_ = std::move(body);
  if (body_.empty()) {
    RemoveHeader("Content-Type");
  } else {
    SetHeader("Content-Type", content_type);
  }
  SetHeader("Content-Length", std::to_string(body_.size()));
}

std::string MakeBranch(uint64_t unique) {
  return std::string(kBranchCookie) + std::to_string(unique);
}

}  // namespace vids::sip
