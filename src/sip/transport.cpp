#include "sip/transport.h"

#include "common/log.h"

namespace vids::sip {

Transport::Transport(net::Host& host, uint16_t port, uint32_t pad_to_bytes)
    : host_(host), port_(port), pad_to_bytes_(pad_to_bytes) {
  host_.BindUdp(port_, [this](const net::Datagram& dgram) {
    auto message = Message::Parse(dgram.payload);
    if (!message) {
      ++parse_errors_;
      VIDS_DEBUG() << host_.name() << ": unparsable SIP datagram from "
                   << dgram.src;
      return;
    }
    ++messages_received_;
    if (receiver_) receiver_(*message, dgram);
  });
}

Transport::~Transport() { host_.UnbindUdp(port_); }

void Transport::Send(const Message& message, net::Endpoint dst) {
  std::string wire = message.Serialize();
  uint32_t padding = 0;
  if (wire.size() < pad_to_bytes_) {
    padding = pad_to_bytes_ - static_cast<uint32_t>(wire.size());
  }
  ++messages_sent_;
  host_.SendUdp(port_, dst, std::move(wire), net::PayloadKind::kSip, padding);
}

}  // namespace vids::sip
