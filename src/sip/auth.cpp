#include "sip/auth.h"

#include <cstdio>
#include <map>

#include "common/rng.h"
#include "common/strings.h"

namespace vids::sip {

namespace {

// Parses `key="value", key=value` comma-separated parameter lists used by
// both WWW-Authenticate and Authorization.
std::map<std::string, std::string> ParseAuthParams(std::string_view tail) {
  std::map<std::string, std::string> params;
  for (const auto piece : common::Split(tail, ',')) {
    const auto eq = common::SplitOnce(piece, '=');
    if (!eq) continue;
    std::string_view value = eq->second;
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"') {
      value = value.substr(1, value.size() - 2);
    }
    params[common::ToLower(eq->first)] = std::string(value);
  }
  return params;
}

std::optional<std::string_view> StripDigestScheme(std::string_view header) {
  header = common::Trim(header);
  if (!common::IStartsWith(header, "Digest")) return std::nullopt;
  return common::Trim(header.substr(6));
}

}  // namespace

std::string DigestChallenge::ToString() const {
  return "Digest realm=\"" + realm + "\", nonce=\"" + nonce + "\"";
}

std::optional<DigestChallenge> DigestChallenge::Parse(
    std::string_view header) {
  const auto tail = StripDigestScheme(header);
  if (!tail) return std::nullopt;
  const auto params = ParseAuthParams(*tail);
  DigestChallenge challenge;
  const auto realm = params.find("realm");
  const auto nonce = params.find("nonce");
  if (realm == params.end() || nonce == params.end()) return std::nullopt;
  challenge.realm = realm->second;
  challenge.nonce = nonce->second;
  return challenge;
}

std::string DigestCredentials::ToString() const {
  return "Digest username=\"" + username + "\", realm=\"" + realm +
         "\", nonce=\"" + nonce + "\", uri=\"" + uri + "\", response=\"" +
         response + "\"";
}

std::optional<DigestCredentials> DigestCredentials::Parse(
    std::string_view header) {
  const auto tail = StripDigestScheme(header);
  if (!tail) return std::nullopt;
  const auto params = ParseAuthParams(*tail);
  DigestCredentials credentials;
  for (const auto& [key, member] :
       std::initializer_list<std::pair<const char*, std::string*>>{
           {"username", &credentials.username},
           {"realm", &credentials.realm},
           {"nonce", &credentials.nonce},
           {"uri", &credentials.uri},
           {"response", &credentials.response}}) {
    const auto it = params.find(key);
    if (it == params.end()) return std::nullopt;
    *member = it->second;
  }
  return credentials;
}

std::string ComputeDigestResponse(std::string_view username,
                                  std::string_view realm,
                                  std::string_view password,
                                  std::string_view nonce,
                                  std::string_view method,
                                  std::string_view uri) {
  // Chained keyed hash over all binding material (substitute for the
  // MD5(A1):nonce:MD5(A2) construction — same binding, same protocol flow).
  uint64_t h = common::HashName(0x5D1657A7ED855713ULL, username);
  h = common::HashName(h, realm);
  h = common::HashName(h, password);
  h = common::HashName(h, nonce);
  h = common::HashName(h, method);
  h = common::HashName(h, uri);
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return buffer;
}

DigestCredentials AnswerChallenge(const DigestChallenge& challenge,
                                  std::string_view username,
                                  std::string_view password,
                                  std::string_view method,
                                  std::string_view uri) {
  DigestCredentials credentials;
  credentials.username = std::string(username);
  credentials.realm = challenge.realm;
  credentials.nonce = challenge.nonce;
  credentials.uri = std::string(uri);
  credentials.response = ComputeDigestResponse(
      username, challenge.realm, password, challenge.nonce, method, uri);
  return credentials;
}

}  // namespace vids::sip
