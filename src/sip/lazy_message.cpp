#include "sip/lazy_message.h"

#include "common/strings.h"
#include "sip/message.h"

namespace vids::sip {

using common::IEquals;
using common::IStartsWith;
using common::ParseInt;
using common::Trim;

namespace {

constexpr std::string_view kSipVersion = "SIP/2.0";

// Indexed by HeaderId — must stay in enum order. Same entries (and the same
// canonical capitalization) as the table Message's serializer has always
// used; Message::CanonicalName now resolves through this table too.
constexpr std::string_view kCanonicalNames[] = {
    "Via", "From", "To", "Call-ID", "CSeq", "Contact", "Content-Type",
    "Content-Length", "Max-Forwards", "Expires", "User-Agent",
    "WWW-Authenticate", "Authorization", "Proxy-Authenticate",
    "Proxy-Authorization", "Record-Route", "Route", "Allow", "Supported",
    "Subject"};
static_assert(std::size(kCanonicalNames) ==
              static_cast<size_t>(HeaderId::kOther));

// Splits ";name=value;flag" tails into `params`. Mirrors the std::map
// ParseParams in message.cpp: pieces trimmed, empty pieces skipped, and the
// halves around '=' trimmed (Split/SplitOnce both trim).
void ParseParamsInto(std::string_view tail, ParamList& params) {
  size_t start = 0;
  while (true) {
    const size_t semi = tail.find(';', start);
    const std::string_view piece =
        Trim(semi == std::string_view::npos ? tail.substr(start)
                                            : tail.substr(start, semi - start));
    if (!piece.empty()) {
      const size_t eq = piece.find('=');
      if (eq == std::string_view::npos) {
        params.push_back({piece, {}});
      } else {
        params.push_back({Trim(piece.substr(0, eq)), Trim(piece.substr(eq + 1))});
      }
    }
    if (semi == std::string_view::npos) return;
    start = semi + 1;
  }
}

}  // namespace

std::string_view ExpandCompactHeader(std::string_view name) {
  if (name.size() != 1) return name;
  switch (name[0] | 0x20) {
    case 'i': return "Call-ID";
    case 'f': return "From";
    case 't': return "To";
    case 'v': return "Via";
    case 'm': return "Contact";
    case 'c': return "Content-Type";
    case 'l': return "Content-Length";
    default: return name;
  }
}

std::string_view CanonicalHeaderName(HeaderId id) {
  if (id == HeaderId::kOther) return {};
  return kCanonicalNames[static_cast<size_t>(id)];
}

HeaderId CanonicalHeaderId(std::string_view name) {
  name = ExpandCompactHeader(name);
  if (name.empty()) return HeaderId::kOther;
  // First-letter + length dispatch: at most two case-insensitive compares
  // per header instead of a scan over the whole canonical table — this runs
  // once per header line on every indexed packet.
  const auto is = [name](HeaderId id) {
    return IEquals(name, kCanonicalNames[static_cast<size_t>(id)]);
  };
  switch (name[0] | 0x20) {
    case 'v':
      return is(HeaderId::kVia) ? HeaderId::kVia : HeaderId::kOther;
    case 'f':
      return is(HeaderId::kFrom) ? HeaderId::kFrom : HeaderId::kOther;
    case 't':
      return is(HeaderId::kTo) ? HeaderId::kTo : HeaderId::kOther;
    case 'c':
      switch (name.size()) {
        case 4:
          return is(HeaderId::kCseq) ? HeaderId::kCseq : HeaderId::kOther;
        case 7:
          if (is(HeaderId::kCallId)) return HeaderId::kCallId;
          return is(HeaderId::kContact) ? HeaderId::kContact
                                        : HeaderId::kOther;
        case 12:
          return is(HeaderId::kContentType) ? HeaderId::kContentType
                                            : HeaderId::kOther;
        case 14:
          return is(HeaderId::kContentLength) ? HeaderId::kContentLength
                                              : HeaderId::kOther;
        default:
          return HeaderId::kOther;
      }
    case 'm':
      return is(HeaderId::kMaxForwards) ? HeaderId::kMaxForwards
                                        : HeaderId::kOther;
    case 'e':
      return is(HeaderId::kExpires) ? HeaderId::kExpires : HeaderId::kOther;
    case 'u':
      return is(HeaderId::kUserAgent) ? HeaderId::kUserAgent
                                      : HeaderId::kOther;
    case 'w':
      return is(HeaderId::kWwwAuthenticate) ? HeaderId::kWwwAuthenticate
                                            : HeaderId::kOther;
    case 'a':
      if (is(HeaderId::kAuthorization)) return HeaderId::kAuthorization;
      return is(HeaderId::kAllow) ? HeaderId::kAllow : HeaderId::kOther;
    case 'p':
      if (is(HeaderId::kProxyAuthenticate)) {
        return HeaderId::kProxyAuthenticate;
      }
      return is(HeaderId::kProxyAuthorization) ? HeaderId::kProxyAuthorization
                                               : HeaderId::kOther;
    case 'r':
      if (is(HeaderId::kRecordRoute)) return HeaderId::kRecordRoute;
      return is(HeaderId::kRoute) ? HeaderId::kRoute : HeaderId::kOther;
    case 's':
      if (is(HeaderId::kSupported)) return HeaderId::kSupported;
      return is(HeaderId::kSubject) ? HeaderId::kSubject : HeaderId::kOther;
    default:
      return HeaderId::kOther;
  }
}

// --- ParamList ---

void ParamList::push_back(ParamView param) {
  if (size_ < kInline) {
    inline_[size_] = param;
  } else {
    // clear() keeps overflow capacity (and stale size) so steady-state reuse
    // stays allocation-free once grown; overwrite before growing.
    const size_t idx = size_ - kInline;
    if (idx < overflow_.size()) {
      overflow_[idx] = param;
    } else {
      overflow_.push_back(param);
    }
  }
  ++size_;
}

const ParamView* ParamList::Find(std::string_view name) const {
  for (size_t i = size_; i > 0; --i) {
    const ParamView& param = (*this)[i - 1];
    if (IEquals(param.name, name)) return &param;
  }
  return nullptr;
}

// --- Typed view decoders (each mirrors its message.cpp counterpart) ---

bool ParseUriView(std::string_view text, UriView& out) {
  text = Trim(text);
  if (!IStartsWith(text, "sip:")) return false;
  text.remove_prefix(4);
  out = UriView{};
  if (const auto semi = text.find(';'); semi != std::string_view::npos) {
    out.params = text.substr(semi + 1);
    text = text.substr(0, semi);
  }
  if (const auto at = text.find('@'); at != std::string_view::npos) {
    out.user = text.substr(0, at);
    text = text.substr(at + 1);
  }
  if (text.empty()) return false;
  if (const auto colon = text.find(':'); colon != std::string_view::npos) {
    const auto port = ParseInt<uint16_t>(text.substr(colon + 1));
    if (!port) return false;
    out.port = *port;
    text = text.substr(0, colon);
  }
  out.host = text;
  return true;
}

bool ParseNameAddrView(std::string_view text, NameAddrView& out) {
  text = Trim(text);
  out.display_name = {};
  out.params.clear();
  std::string_view uri_part;
  std::string_view param_tail;

  const auto open = text.find('<');
  if (open != std::string_view::npos) {
    const auto close = text.find('>', open);
    if (close == std::string_view::npos) return false;
    std::string_view display = Trim(text.substr(0, open));
    if (display.size() >= 2 && display.front() == '"' && display.back() == '"') {
      display = display.substr(1, display.size() - 2);
    }
    out.display_name = display;
    uri_part = text.substr(open + 1, close - open - 1);
    param_tail = text.substr(close + 1);
    if (!param_tail.empty() && param_tail.front() == ';') {
      param_tail.remove_prefix(1);
    }
  } else {
    // addr-spec form: params after ';' belong to the header, not the URI.
    const auto semi = text.find(';');
    uri_part = text.substr(0, semi);
    if (semi != std::string_view::npos) param_tail = text.substr(semi + 1);
  }

  if (!ParseUriView(uri_part, out.uri)) return false;
  if (!param_tail.empty()) ParseParamsInto(param_tail, out.params);
  return true;
}

bool ParseViaView(std::string_view text, ViaView& out) {
  text = Trim(text);
  // "SIP/2.0/UDP host:port;params" — the protocol token must split on '/'
  // into exactly {SIP, 2.0, transport} (pieces trimmed, compares exact).
  const auto space = text.find(' ');
  if (space == std::string_view::npos) return false;
  const std::string_view proto = text.substr(0, space);
  const auto slash1 = proto.find('/');
  if (slash1 == std::string_view::npos) return false;
  const auto slash2 = proto.find('/', slash1 + 1);
  if (slash2 == std::string_view::npos) return false;
  if (proto.find('/', slash2 + 1) != std::string_view::npos) return false;
  if (Trim(proto.substr(0, slash1)) != "SIP") return false;
  if (Trim(proto.substr(slash1 + 1, slash2 - slash1 - 1)) != "2.0") {
    return false;
  }
  out.transport = Trim(proto.substr(slash2 + 1));
  out.branch = {};
  out.params.clear();

  const std::string_view rest = Trim(text.substr(space + 1));
  std::string_view host_port = rest;
  if (const auto semi = rest.find(';'); semi != std::string_view::npos) {
    host_port = Trim(rest.substr(0, semi));
    ParseParamsInto(rest.substr(semi + 1), out.params);
  }
  const auto ep = net::Endpoint::Parse(host_port);
  if (ep) {
    out.sent_by = *ep;
  } else {
    const auto ip = net::IpAddress::Parse(host_port);
    if (!ip) return false;
    out.sent_by = net::Endpoint{*ip, 5060};
  }
  // Unlike Via::Parse, the branch stays in the param list; the field is a
  // convenience alias for the last (winning) occurrence.
  if (const ParamView* branch = out.params.Find("branch")) {
    out.branch = branch->value;
  }
  return true;
}

bool ParseCSeqView(std::string_view text, CSeqView& out) {
  text = Trim(text);
  const auto space = text.find(' ');
  if (space == std::string_view::npos) return false;
  const auto number = ParseInt<uint32_t>(text.substr(0, space));
  if (!number) return false;
  const Method method = ParseMethod(Trim(text.substr(space + 1)));
  if (method == Method::kUnknown) return false;
  out.number = *number;
  out.method = method;
  return true;
}

// --- LazyMessage ---

void LazyMessage::AppendHeader(HeaderId id, std::string_view name,
                               std::string_view value) {
  if (header_count_ < kInlineHeaders) {
    inline_headers_[header_count_] = {id, name, value};
  } else {
    const size_t idx = header_count_ - kInlineHeaders;
    if (idx < overflow_headers_.size()) {
      overflow_headers_[idx] = {id, name, value};
    } else {
      overflow_headers_.push_back({id, name, value});
    }
  }
  ++header_count_;
}

bool LazyMessage::Index(std::string_view payload) {
  status_ = 0;
  method_token_ = {};
  reason_ = {};
  request_uri_ = UriView{};
  header_count_ = 0;
  body_ = {};
  has_cseq_ = false;
  cseq_ = CSeqView{};
  top_via_state_ = Memo::kUnparsed;
  from_state_ = Memo::kUnparsed;
  to_state_ = Memo::kUnparsed;

  // The head (start line + headers) ends at the *first* blank line,
  // whichever framing ("\r\n\r\n" or "\n\n") produced it: an LF-framed
  // message whose binary body happens to contain \r\n\r\n must not have its
  // head extended into the body (and be rejected as a malformed header).
  // Detection is inline while walking header lines — no separate terminator
  // scan of the payload. A lone "\r\n" line inside an LF-framed head is NOT
  // a terminator (only the exact four-byte "\r\n\r\n" is), so the raw line
  // is tested against the byte before its own "\r\n" prior to the '\r'
  // strip.
  size_t body_start = payload.size();
  bool first_line = true;
  size_t pos = 0;
  while (pos < payload.size()) {
    const size_t eol = payload.find('\n', pos);
    std::string_view line = payload.substr(
        pos,
        eol == std::string_view::npos ? payload.size() - pos : eol - pos);
    if (eol != std::string_view::npos && pos >= 1) {
      if (line.empty()) {  // "\n\n": bare-LF blank line
        body_start = pos + 1;
        break;
      }
      if (line.size() == 1 && line[0] == '\r' && pos >= 2 &&
          payload[pos - 2] == '\r') {  // "\r\n\r\n": CRLF blank line
        body_start = pos + 2;
        break;
      }
    }
    pos = eol == std::string_view::npos ? payload.size() : eol + 1;
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (first_line) {
      first_line = false;
      line = Trim(line);
      if (line.empty()) return false;
      if (IStartsWith(line, "SIP/2.0 ")) {
        // Status line: SIP/2.0 200 OK
        const auto rest = Trim(line.substr(kSipVersion.size()));
        const auto space = rest.find(' ');
        const auto code_text =
            space == std::string_view::npos ? rest : rest.substr(0, space);
        const auto code = ParseInt<int>(code_text);
        if (!code || *code < 100 || *code > 699) return false;
        status_ = *code;
        reason_ = space == std::string_view::npos
                      ? std::string_view{}
                      : Trim(rest.substr(space + 1));
      } else {
        // Request line: INVITE sip:bob@b.example SIP/2.0 — exactly three
        // space-separated pieces (a doubled space is an empty piece: reject).
        const auto space1 = line.find(' ');
        if (space1 == std::string_view::npos) return false;
        const auto space2 = line.find(' ', space1 + 1);
        if (space2 == std::string_view::npos) return false;
        if (line.find(' ', space2 + 1) != std::string_view::npos) return false;
        if (Trim(line.substr(space2 + 1)) != kSipVersion) return false;
        method_token_ = Trim(line.substr(0, space1));
        const auto uri_text = Trim(line.substr(space1 + 1, space2 - space1 - 1));
        if (!ParseUriView(uri_text, request_uri_)) return false;
      }
      continue;
    }
    if (Trim(line).empty()) continue;
    const auto colon = line.find(':');
    if (colon == std::string_view::npos) return false;
    const std::string_view name = Trim(line.substr(0, colon));
    const std::string_view value = Trim(line.substr(colon + 1));
    const HeaderId id = CanonicalHeaderId(name);
    if (id == HeaderId::kVia) {
      // Comma-separated Via values may be folded into one line (RFC 3261
      // §7.3.1); unfold into separate span-table entries (empties kept).
      size_t start = 0;
      while (true) {
        const size_t comma = value.find(',', start);
        AppendHeader(id, name,
                     Trim(comma == std::string_view::npos
                              ? value.substr(start)
                              : value.substr(start, comma - start)));
        if (comma == std::string_view::npos) break;
        start = comma + 1;
      }
    } else {
      AppendHeader(id, name, value);
    }
  }
  if (first_line) return false;

  // Mandatory structural fields must parse if present.
  if (const auto cseq = Header(HeaderId::kCseq)) {
    if (!ParseCSeqView(*cseq, cseq_)) return false;
    has_cseq_ = true;
  }

  std::string_view body = payload.substr(body_start);
  if (const auto len_text = Header(HeaderId::kContentLength)) {
    const auto len = ParseInt<size_t>(*len_text);
    if (!len) return false;
    if (*len > body.size()) return false;  // truncated message
    body = body.substr(0, *len);
  }
  body_ = body;
  return true;
}

Method LazyMessage::method() const {
  if (IsRequest()) return ParseMethod(method_token_);
  return has_cseq_ ? cseq_.method : Method::kUnknown;
}

std::optional<std::string_view> LazyMessage::Header(HeaderId id) const {
  if (id == HeaderId::kOther) return std::nullopt;
  for (size_t i = 0; i < header_count_; ++i) {
    const HeaderEntry& header = HeaderAt(i);
    if (header.id == id) return header.value;
  }
  return std::nullopt;
}

std::optional<std::string_view> LazyMessage::Header(
    std::string_view name) const {
  const HeaderId id = CanonicalHeaderId(name);
  if (id != HeaderId::kOther) return Header(id);
  for (size_t i = 0; i < header_count_; ++i) {
    const HeaderEntry& header = HeaderAt(i);
    if (header.id == HeaderId::kOther && IEquals(header.name, name)) {
      return header.value;
    }
  }
  return std::nullopt;
}

const ViaView* LazyMessage::TopVia() const {
  if (top_via_state_ == Memo::kUnparsed) {
    const auto value = Header(HeaderId::kVia);
    top_via_state_ = (value && ParseViaView(*value, top_via_)) ? Memo::kValid
                                                               : Memo::kInvalid;
  }
  return top_via_state_ == Memo::kValid ? &top_via_ : nullptr;
}

const NameAddrView* LazyMessage::MemoNameAddr(HeaderId id, Memo& state,
                                              NameAddrView& view) const {
  if (state == Memo::kUnparsed) {
    const auto value = Header(id);
    state = (value && ParseNameAddrView(*value, view)) ? Memo::kValid
                                                       : Memo::kInvalid;
  }
  return state == Memo::kValid ? &view : nullptr;
}

const NameAddrView* LazyMessage::From() const {
  return MemoNameAddr(HeaderId::kFrom, from_state_, from_);
}

const NameAddrView* LazyMessage::To() const {
  return MemoNameAddr(HeaderId::kTo, to_state_, to_);
}

}  // namespace vids::sip
