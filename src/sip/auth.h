// SIP Digest authentication (RFC 3261 §22 shape, simplified).
//
// The paper observes that much of the SIP threat discussion "centers
// around an assumption of lack of proper authentication", yet "many
// attacks are still possible ... by an authenticated but misbehaving UA"
// (§3.1). This module provides challenge/response registration so the
// testbed can run with authentication on and demonstrate exactly that:
// registration hijacking gets harder, while spoofed BYE/CANCEL and toll
// fraud remain — and still need the vIDS to be seen.
//
// The digest function is a keyed FNV-chain, not MD5: the protocol shape
// (challenge, nonce, response binding user/realm/method/uri) is what the
// simulation exercises; cryptographic strength is irrelevant here and a
// homegrown MD5 would only invite misuse.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace vids::sip {

/// The server's challenge, carried in WWW-Authenticate.
struct DigestChallenge {
  std::string realm;
  std::string nonce;

  std::string ToString() const;  // Digest realm="...", nonce="..."
  static std::optional<DigestChallenge> Parse(std::string_view header);
};

/// The client's answer, carried in Authorization.
struct DigestCredentials {
  std::string username;
  std::string realm;
  std::string nonce;
  std::string uri;
  std::string response;

  std::string ToString() const;
  static std::optional<DigestCredentials> Parse(std::string_view header);
};

/// response = H(username, realm, password, nonce, method, uri).
std::string ComputeDigestResponse(std::string_view username,
                                  std::string_view realm,
                                  std::string_view password,
                                  std::string_view nonce,
                                  std::string_view method,
                                  std::string_view uri);

/// Builds the credentials answering `challenge` for the given request.
DigestCredentials AnswerChallenge(const DigestChallenge& challenge,
                                  std::string_view username,
                                  std::string_view password,
                                  std::string_view method,
                                  std::string_view uri);

}  // namespace vids::sip
