// RFC 3261 §17 transaction layer over UDP.
//
// Implements the four transaction state machines (INVITE/non-INVITE ×
// client/server) with the unreliable-transport timers A/B/D (INVITE client),
// E/F/K (non-INVITE client), G/H/I (INVITE server) and J (non-INVITE
// server), and the §17.1.3/§17.2.3 branch-based matching rules. The user
// agents and the proxy sit on top as transaction users; the vIDS observes
// the resulting wire traffic from outside.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "sim/scheduler.h"
#include "sip/message.h"
#include "sip/transport.h"

namespace vids::sip {

/// Metric slots for one transaction layer (one per UA / proxy). Null sinks
/// until TransactionLayer::AttachMetrics points them at a registry, so the
/// layer is always instrumented and never branches on "metrics enabled".
struct TxMetrics {
  obs::Counter* clients_created = &obs::NullCounter();
  obs::Counter* servers_created = &obs::NullCounter();
  obs::Counter* retransmits = &obs::NullCounter();   // wire re-sends
  obs::Counter* timer_fires = &obs::NullCounter();   // A/B/E/F/G/H/I/J/K/D
  obs::Counter* timeouts = &obs::NullCounter();      // B/F/H gave up
  obs::Histogram* state_ns = &obs::NullHistogram();  // sim-time per state
};

/// RFC 3261 base timers; configurable so tests can compress time.
struct TimerConfig {
  sim::Duration t1 = sim::Duration::Millis(500);
  sim::Duration t2 = sim::Duration::Seconds(4);
  sim::Duration t4 = sim::Duration::Seconds(5);
  /// Timer D (wait for response retransmits in INVITE client Completed).
  sim::Duration d = sim::Duration::Seconds(32);
};

class TransactionLayer;

/// Common state names across the four machines (not all states are used by
/// every machine).
enum class TxState {
  kCalling,     // INVITE client: initial
  kTrying,      // non-INVITE client/server: initial
  kProceeding,  // provisional seen / sent
  kCompleted,   // final seen / sent
  kConfirmed,   // INVITE server: ACK seen
  kTerminated,
};

std::string_view TxStateName(TxState state);

/// A client transaction (INVITE or non-INVITE chosen by request method).
class ClientTransaction {
 public:
  /// Called for every response passed to the TU (provisionals and finals).
  using ResponseHandler = std::function<void(const Message&)>;
  /// Called when the transaction times out (timer B or F).
  using TimeoutHandler = std::function<void()>;

  TxState state() const { return state_; }
  const std::string& branch() const { return branch_; }
  Method method() const { return method_; }
  const Message& request() const { return request_; }
  bool IsTerminated() const { return state_ == TxState::kTerminated; }

 private:
  friend class TransactionLayer;
  ClientTransaction(TransactionLayer& layer, Message request,
                    net::Endpoint dst, ResponseHandler on_response,
                    TimeoutHandler on_timeout);
  void Start();
  void ReceiveResponse(const Message& response);
  void RetransmitTimerFired();  // timer A / E
  void TimeoutTimerFired();     // timer B / F
  void Terminate();
  void SendAck(const Message& response);  // non-2xx ACK (transaction layer's)
  void EnterState(TxState next);  // records the outgoing state's duration

  TransactionLayer& layer_;
  Message request_;
  net::Endpoint dst_;
  ResponseHandler on_response_;
  TimeoutHandler on_timeout_;
  Method method_;
  std::string branch_;
  TxState state_;
  sim::Time state_entered_;
  sim::Duration retransmit_interval_;
  sim::Timer retransmit_timer_;
  sim::Timer timeout_timer_;  // B/F, then D/K in Completed
};

/// A server transaction (INVITE or non-INVITE chosen by request method).
class ServerTransaction {
 public:
  /// INVITE server only: ACK for a non-2xx final reached the transaction.
  using AckHandler = std::function<void(const Message&)>;
  /// Timer H fired: no ACK for our final response.
  using TimeoutHandler = std::function<void()>;

  /// Sends (and takes ownership of retransmitting) a response. Responses
  /// must carry increasing finality: provisionals any time in Proceeding,
  /// then exactly one final.
  void Respond(const Message& response);

  /// Convenience: builds a response from the original request (copies Via /
  /// From / To / Call-ID / CSeq, adds To-tag if `to_tag` non-empty).
  Message MakeResponse(int status, std::string_view to_tag = {}) const;

  TxState state() const { return state_; }
  const std::string& branch() const { return branch_; }
  Method method() const { return method_; }
  const Message& request() const { return request_; }
  const net::Endpoint& remote() const { return remote_; }
  bool IsTerminated() const { return state_ == TxState::kTerminated; }

  void set_on_ack(AckHandler handler) { on_ack_ = std::move(handler); }
  void set_on_timeout(TimeoutHandler handler) {
    on_timeout_ = std::move(handler);
  }

 private:
  friend class TransactionLayer;
  ServerTransaction(TransactionLayer& layer, Message request,
                    net::Endpoint remote);
  void ReceiveRetransmit(const Message& request);
  void ReceiveAck(const Message& ack);
  void Terminate();
  void EnterState(TxState next);  // records the outgoing state's duration

  TransactionLayer& layer_;
  Message request_;
  net::Endpoint remote_;
  Method method_;
  std::string branch_;
  TxState state_;
  sim::Time state_entered_;
  std::optional<Message> last_response_;
  AckHandler on_ack_;
  TimeoutHandler on_timeout_;
  sim::Duration retransmit_interval_;
  sim::Timer retransmit_timer_;  // timer G
  sim::Timer timeout_timer_;     // H, then I / J
};

/// Demultiplexes transport messages onto transactions and surfaces what RFC
/// 3261 calls the "core" events.
class TransactionLayer {
 public:
  struct Core {
    /// A request that created a new server transaction (not a retransmit).
    std::function<void(ServerTransaction&)> on_request;
    /// An ACK for a 2xx — RFC 3261 delivers these straight to the TU.
    std::function<void(const Message&, const net::Datagram&)> on_ack;
    /// A response matching no client transaction (e.g. forked 200 retransmit).
    std::function<void(const Message&, const net::Datagram&)> on_stray_response;
  };

  TransactionLayer(sim::Scheduler& scheduler, Transport& transport,
                   TimerConfig timers = {});

  void SetCore(Core core) { core_ = std::move(core); }

  /// Starts a client transaction. The request must carry a Via with a unique
  /// branch (use NewBranch()). The reference stays valid until the
  /// transaction terminates and a subsequent message triggers cleanup.
  ClientTransaction& StartClient(Message request, net::Endpoint dst,
                                 ClientTransaction::ResponseHandler on_response,
                                 ClientTransaction::TimeoutHandler on_timeout);

  /// Sends a request outside any transaction (ACK for 2xx).
  void SendStateless(const Message& message, net::Endpoint dst);

  /// Finds the INVITE server transaction a CANCEL targets, if any.
  ServerTransaction* FindInviteServer(const Message& cancel);

  std::string NewBranch() { return MakeBranch(next_branch_++); }
  std::string NewTag() { return "tag" + std::to_string(next_branch_++); }

  sim::Scheduler& scheduler() { return scheduler_; }
  Transport& transport() { return transport_; }
  const TimerConfig& timers() const { return timers_; }

  size_t active_clients() const { return clients_.size(); }
  size_t active_servers() const { return servers_.size(); }

  /// Points the layer's metric slots at "sip.tx.*" entries of `registry`.
  /// All transaction layers of one deployment may share the same registry —
  /// GetCounter is idempotent by name, so they aggregate.
  void AttachMetrics(obs::MetricsRegistry& registry);
  const TxMetrics& metrics() const { return metrics_; }

 private:
  friend class ClientTransaction;
  friend class ServerTransaction;

  void OnTransportReceive(const Message& message, const net::Datagram& dgram);
  void DispatchResponse(const Message& response, const net::Datagram& dgram);
  void DispatchRequest(const Message& request, const net::Datagram& dgram);
  void Collect();  // erase terminated transactions

  sim::Scheduler& scheduler_;
  Transport& transport_;
  TimerConfig timers_;
  Core core_;
  TxMetrics metrics_;
  uint64_t next_branch_ = 1;

  // Client key: branch + method name (CANCEL shares the INVITE's branch).
  std::map<std::string, std::unique_ptr<ClientTransaction>> clients_;
  // Server key: branch + sent-by + method (ACK folded onto INVITE).
  std::map<std::string, std::unique_ptr<ServerTransaction>> servers_;
};

}  // namespace vids::sip
