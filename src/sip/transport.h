// SIP transport binding: serializes messages onto a host's UDP port.
//
// The paper's testbed assumes a constant 500-byte average SIP message
// (§7.1); the transport pads shorter serializations on the wire (padding
// bytes are counted by links but not carried) so traffic volume matches.
#pragma once

#include <cstdint>
#include <functional>

#include "net/host.h"
#include "sip/message.h"

namespace vids::sip {

constexpr uint16_t kDefaultSipPort = 5060;

class Transport {
 public:
  /// `message` is the parsed SIP message; `dgram` retains network-level
  /// truth (actual source address — which spoofing attacks forge).
  using Receiver =
      std::function<void(const Message& message, const net::Datagram& dgram)>;

  Transport(net::Host& host, uint16_t port = kDefaultSipPort,
            uint32_t pad_to_bytes = 500);
  ~Transport();
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  void SetReceiver(Receiver receiver) { receiver_ = std::move(receiver); }

  void Send(const Message& message, net::Endpoint dst);

  net::Endpoint local() const {
    return net::Endpoint{host_.ip(), port_};
  }
  net::Host& host() { return host_; }

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t messages_received() const { return messages_received_; }
  uint64_t parse_errors() const { return parse_errors_; }

 private:
  net::Host& host_;
  uint16_t port_;
  uint32_t pad_to_bytes_;
  Receiver receiver_;
  uint64_t messages_sent_ = 0;
  uint64_t messages_received_ = 0;
  uint64_t parse_errors_ = 0;
};

}  // namespace vids::sip
