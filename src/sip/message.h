// SIP message model and text codec (RFC 3261 subset).
//
// Covers the six core methods (§2.1 of the paper), the headers the vIDS
// predicates inspect (Via branch, From/To tags, Call-ID, CSeq, Contact,
// Content-*), and the request/response line grammar, including RFC 3261
// compact header forms. The parser is strict about structure (start line,
// header colon, known numeric fields) and tolerant about unknown headers,
// matching how the paper's IDS must survive arbitrary-but-legal traffic.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/address.h"

namespace vids::sip {

enum class Method {
  kInvite,
  kAck,
  kBye,
  kCancel,
  kRegister,
  kOptions,
  kUnknown,
};

std::string_view MethodName(Method method);
Method ParseMethod(std::string_view token);

/// Standard reason phrase for a status code ("Ringing" for 180, ...).
std::string_view ReasonPhrase(int status);

/// A SIP URI: sip:user@host[:port]. URI parameters are preserved verbatim.
struct SipUri {
  std::string user;
  std::string host;
  uint16_t port = 0;  // 0 means unspecified (default 5060)
  std::string params;  // everything after the first ';', without it

  static std::optional<SipUri> Parse(std::string_view text);
  std::string ToString() const;

  /// "user@host", the address-of-record form used as a location-service key.
  std::string UserAtHost() const { return user + "@" + host; }

  bool operator==(const SipUri&) const = default;
};

/// A From/To/Contact value: [display-name] <uri> ;param=value...
struct NameAddr {
  std::string display_name;
  SipUri uri;
  std::map<std::string, std::string> params;

  static std::optional<NameAddr> Parse(std::string_view text);
  std::string ToString() const;

  std::optional<std::string> Tag() const;
  void SetTag(std::string_view tag);
};

/// One Via header value: SIP/2.0/UDP host:port;branch=...;...
struct Via {
  std::string transport = "UDP";
  net::Endpoint sent_by;
  std::string branch;
  std::map<std::string, std::string> params;  // other parameters (received, ...)

  static std::optional<Via> Parse(std::string_view text);
  std::string ToString() const;
};

/// Values of one header in message order. Inline capacity keeps the common
/// few-values lookup heap-free; storage is contiguous either way, so the
/// raw-pointer iterators support range-for, size() and operator[].
class HeaderValues {
 public:
  void push_back(std::string_view value) {
    if (heap_.empty() && size_ < kInline) {
      inline_[size_++] = value;
      return;
    }
    if (heap_.empty()) heap_.assign(inline_.begin(), inline_.begin() + size_);
    heap_.push_back(value);
    ++size_;
  }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::string_view* begin() const {
    return heap_.empty() ? inline_.data() : heap_.data();
  }
  const std::string_view* end() const { return begin() + size_; }
  std::string_view operator[](size_t i) const { return begin()[i]; }

 private:
  static constexpr size_t kInline = 8;
  size_t size_ = 0;
  std::array<std::string_view, kInline> inline_{};
  std::vector<std::string_view> heap_;
};

struct CSeq {
  uint32_t number = 0;
  Method method = Method::kUnknown;

  static std::optional<CSeq> Parse(std::string_view text);
  std::string ToString() const;
  bool operator==(const CSeq&) const = default;
};

/// A parsed SIP request or response.
class Message {
 public:
  static Message MakeRequest(Method method, SipUri request_uri);
  static Message MakeResponse(int status);
  static Message MakeResponse(int status, std::string reason);

  /// Parses one datagram's payload. Returns nullopt on any structural
  /// violation (bad start line, missing colon, unparsable mandatory field).
  static std::optional<Message> Parse(std::string_view text);

  std::string Serialize() const;

  bool IsRequest() const { return status_ == 0; }
  bool IsResponse() const { return status_ != 0; }

  /// For requests: the request method. For responses: the method of the
  /// transaction, taken from CSeq.
  Method method() const;
  const SipUri& request_uri() const { return request_uri_; }
  void set_request_uri(SipUri uri) { request_uri_ = std::move(uri); }
  int status() const { return status_; }
  const std::string& reason() const { return reason_; }

  // --- Generic header access (names are case-insensitive) ---
  /// First value of `name`, or nullopt.
  std::optional<std::string_view> Header(std::string_view name) const;
  /// All values of `name`, in message order. Heap-free for the common case
  /// (up to 8 values inline).
  HeaderValues Headers(std::string_view name) const;
  /// Replaces all values of `name` with one value.
  void SetHeader(std::string_view name, std::string_view value);
  /// Appends a value of `name` after existing ones.
  void AddHeader(std::string_view name, std::string_view value);
  void RemoveHeader(std::string_view name);
  size_t HeaderCount() const { return headers_.size(); }

  // --- Typed accessors for the fields the IDS predicates read ---
  std::optional<Via> TopVia() const;
  std::vector<Via> Vias() const;
  /// Prepends a Via (proxies and UACs add themselves on the way out).
  void PushVia(const Via& via);
  /// Removes the top Via (responses shed them on the way back).
  void PopVia();

  std::optional<NameAddr> From() const;
  void SetFrom(const NameAddr& from);
  std::optional<NameAddr> To() const;
  void SetTo(const NameAddr& to);
  std::optional<NameAddr> ContactHeader() const;
  void SetContact(const NameAddr& contact);

  std::optional<std::string_view> CallId() const { return Header("Call-ID"); }
  void SetCallId(std::string_view id) { SetHeader("Call-ID", id); }
  std::optional<CSeq> Cseq() const;
  void SetCseq(const CSeq& cseq) { SetHeader("CSeq", cseq.ToString()); }
  std::optional<int> MaxForwards() const;
  void SetMaxForwards(int hops);

  const std::string& body() const { return body_; }
  /// Sets the body and maintains Content-Length / Content-Type.
  void SetBody(std::string body, std::string_view content_type);

 private:
  Message() = default;

  // Request fields (status_ == 0) or response fields.
  Method req_method_ = Method::kUnknown;
  std::string req_method_token_;  // preserves unknown method names
  SipUri request_uri_;
  int status_ = 0;
  std::string reason_;

  // Headers in message order; names normalized to canonical capitalization.
  std::vector<std::pair<std::string, std::string>> headers_;
  std::string body_;
};

/// Generates an RFC 3261 branch id (magic-cookie prefixed) from a counter so
/// traces stay deterministic across runs.
std::string MakeBranch(uint64_t unique);

}  // namespace vids::sip
