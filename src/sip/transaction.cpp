#include "sip/transaction.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/log.h"

namespace vids::sip {

namespace {

bool IsProvisional(int status) { return status >= 100 && status < 200; }
bool IsSuccess(int status) { return status >= 200 && status < 300; }
bool IsFinal(int status) { return status >= 200; }

std::string ClientKey(std::string_view branch, Method method) {
  return std::string(branch) + "|" + std::string(MethodName(method));
}

// §17.2.3: server transactions match on top Via branch + sent-by + method,
// with ACK matching the INVITE transaction.
std::string ServerKey(const Via& via, Method method) {
  const Method match_method = method == Method::kAck ? Method::kInvite : method;
  return via.branch + "|" + via.sent_by.ToString() + "|" +
         std::string(MethodName(match_method));
}

}  // namespace

std::string_view TxStateName(TxState state) {
  switch (state) {
    case TxState::kCalling: return "Calling";
    case TxState::kTrying: return "Trying";
    case TxState::kProceeding: return "Proceeding";
    case TxState::kCompleted: return "Completed";
    case TxState::kConfirmed: return "Confirmed";
    case TxState::kTerminated: return "Terminated";
  }
  return "?";
}

// ---------------------------------------------------------------- Client

ClientTransaction::ClientTransaction(TransactionLayer& layer, Message request,
                                     net::Endpoint dst,
                                     ResponseHandler on_response,
                                     TimeoutHandler on_timeout)
    : layer_(layer),
      request_(std::move(request)),
      dst_(dst),
      on_response_(std::move(on_response)),
      on_timeout_(std::move(on_timeout)),
      method_(request_.method()),
      state_(method_ == Method::kInvite ? TxState::kCalling : TxState::kTrying),
      retransmit_interval_(layer.timers().t1),
      retransmit_timer_(layer.scheduler()),
      timeout_timer_(layer.scheduler()) {
  const auto via = request_.TopVia();
  if (!via || via->branch.empty()) {
    throw std::invalid_argument("client transaction requires a Via branch");
  }
  branch_ = via->branch;
  state_entered_ = layer_.scheduler().Now();
}

void ClientTransaction::EnterState(TxState next) {
  const sim::Time now = layer_.scheduler().Now();
  layer_.metrics_.state_ns->Record((now - state_entered_).nanos());
  state_entered_ = now;
  state_ = next;
}

void ClientTransaction::Start() {
  layer_.transport().Send(request_, dst_);
  // Timer A (INVITE) / E (non-INVITE): retransmit over UDP.
  retransmit_timer_.Start(retransmit_interval_,
                          [this] { RetransmitTimerFired(); });
  // Timer B / F: give up after 64*T1.
  timeout_timer_.Start(layer_.timers().t1 * 64, [this] { TimeoutTimerFired(); });
}

void ClientTransaction::RetransmitTimerFired() {
  layer_.metrics_.timer_fires->Inc();
  if (state_ == TxState::kCalling || state_ == TxState::kTrying) {
    layer_.transport().Send(request_, dst_);
    layer_.metrics_.retransmits->Inc();
    retransmit_interval_ = retransmit_interval_ * 2;
    if (method_ != Method::kInvite) {
      // Timer E caps at T2.
      retransmit_interval_ =
          std::min(retransmit_interval_, layer_.timers().t2);
    }
    retransmit_timer_.Start(retransmit_interval_,
                            [this] { RetransmitTimerFired(); });
  } else if (state_ == TxState::kProceeding && method_ != Method::kInvite) {
    // Non-INVITE Proceeding keeps retransmitting at T2.
    layer_.transport().Send(request_, dst_);
    layer_.metrics_.retransmits->Inc();
    retransmit_timer_.Start(layer_.timers().t2,
                            [this] { RetransmitTimerFired(); });
  }
}

void ClientTransaction::TimeoutTimerFired() {
  layer_.metrics_.timer_fires->Inc();
  if (state_ == TxState::kCompleted) {
    // Timer D / K expired: absorb window over.
    Terminate();
    return;
  }
  retransmit_timer_.Cancel();
  layer_.metrics_.timeouts->Inc();
  Terminate();
  if (on_timeout_) on_timeout_();
}

void ClientTransaction::SendAck(const Message& response) {
  // §17.1.1.3: ACK for a non-2xx final is built by the transaction layer
  // from the original request, reusing its branch.
  Message ack = Message::MakeRequest(Method::kAck, request_.request_uri());
  for (const auto& via : request_.Vias()) ack.PushVia(via);
  if (const auto from = request_.From()) ack.SetFrom(*from);
  if (const auto to = response.To()) ack.SetTo(*to);
  if (const auto call_id = request_.CallId()) ack.SetCallId(*call_id);
  if (const auto cseq = request_.Cseq()) {
    ack.SetCseq(CSeq{cseq->number, Method::kAck});
  }
  layer_.transport().Send(ack, dst_);
}

void ClientTransaction::ReceiveResponse(const Message& response) {
  const int status = response.status();
  switch (state_) {
    case TxState::kCalling:
    case TxState::kTrying:
    case TxState::kProceeding: {
      if (IsProvisional(status)) {
        if (method_ == Method::kInvite) {
          retransmit_timer_.Cancel();  // INVITE stops retransmitting on 1xx
        }
        EnterState(TxState::kProceeding);
        if (on_response_) on_response_(response);
        return;
      }
      assert(IsFinal(status));
      retransmit_timer_.Cancel();
      if (method_ == Method::kInvite) {
        if (IsSuccess(status)) {
          // 2xx: transaction ends; the TU sends the ACK end-to-end.
          Terminate();
          if (on_response_) on_response_(response);
        } else {
          SendAck(response);
          EnterState(TxState::kCompleted);
          timeout_timer_.Start(layer_.timers().d, [this] {
            layer_.metrics_.timer_fires->Inc();
            Terminate();
          });
          if (on_response_) on_response_(response);
        }
      } else {
        EnterState(TxState::kCompleted);
        timeout_timer_.Start(layer_.timers().t4, [this] {
          layer_.metrics_.timer_fires->Inc();
          Terminate();
        });
        if (on_response_) on_response_(response);
      }
      return;
    }
    case TxState::kCompleted:
      // Retransmitted final: re-ACK for INVITE, absorb otherwise.
      if (method_ == Method::kInvite && IsFinal(status) && !IsSuccess(status)) {
        SendAck(response);
      }
      return;
    case TxState::kConfirmed:
    case TxState::kTerminated:
      return;
  }
}

void ClientTransaction::Terminate() {
  if (state_ == TxState::kTerminated) return;
  EnterState(TxState::kTerminated);
  retransmit_timer_.Cancel();
  timeout_timer_.Cancel();
  layer_.Collect();
}

// ---------------------------------------------------------------- Server

ServerTransaction::ServerTransaction(TransactionLayer& layer, Message request,
                                     net::Endpoint remote)
    : layer_(layer),
      request_(std::move(request)),
      remote_(remote),
      method_(request_.method()),
      state_(method_ == Method::kInvite ? TxState::kProceeding
                                        : TxState::kTrying),
      retransmit_interval_(layer.timers().t1),
      retransmit_timer_(layer.scheduler()),
      timeout_timer_(layer.scheduler()) {
  const auto via = request_.TopVia();
  branch_ = via ? via->branch : std::string();
  state_entered_ = layer_.scheduler().Now();
}

void ServerTransaction::EnterState(TxState next) {
  const sim::Time now = layer_.scheduler().Now();
  layer_.metrics_.state_ns->Record((now - state_entered_).nanos());
  state_entered_ = now;
  state_ = next;
}

Message ServerTransaction::MakeResponse(int status,
                                        std::string_view to_tag) const {
  Message response = Message::MakeResponse(status);
  for (const auto via : request_.Headers("Via")) {
    response.AddHeader("Via", via);
  }
  if (const auto from = request_.From()) response.SetFrom(*from);
  if (auto to = request_.To()) {
    if (!to_tag.empty() && !to->Tag()) to->SetTag(to_tag);
    response.SetTo(*to);
  }
  if (const auto call_id = request_.CallId()) response.SetCallId(*call_id);
  if (const auto cseq = request_.Cseq()) response.SetCseq(*cseq);
  return response;
}

void ServerTransaction::Respond(const Message& response) {
  const int status = response.status();
  last_response_ = response;
  layer_.transport().Send(response, remote_);

  switch (state_) {
    case TxState::kTrying:
    case TxState::kProceeding:
      if (IsProvisional(status)) {
        EnterState(TxState::kProceeding);
        return;
      }
      if (method_ == Method::kInvite) {
        if (IsSuccess(status)) {
          // 2xx: the TU retransmits 2xx end-to-end; transaction is done.
          Terminate();
        } else {
          EnterState(TxState::kCompleted);
          // Timer G: retransmit the final until ACKed (ReceiveRetransmit
          // resends the stored response and backs the interval off);
          // Timer H: give up waiting for the ACK after 64*T1.
          retransmit_interval_ = layer_.timers().t1;
          retransmit_timer_.Start(retransmit_interval_, [this] {
            layer_.metrics_.timer_fires->Inc();
            ReceiveRetransmit(request_);
          });
          timeout_timer_.Start(layer_.timers().t1 * 64, [this] {
            layer_.metrics_.timer_fires->Inc();
            layer_.metrics_.timeouts->Inc();
            Terminate();
            if (on_timeout_) on_timeout_();
          });
        }
      } else {
        EnterState(TxState::kCompleted);
        // Timer J: absorb retransmits for 64*T1, then terminate.
        timeout_timer_.Start(layer_.timers().t1 * 64, [this] {
          layer_.metrics_.timer_fires->Inc();
          Terminate();
        });
      }
      return;
    case TxState::kCompleted:
    case TxState::kConfirmed:
    case TxState::kCalling:
    case TxState::kTerminated:
      return;  // late responses from the TU are dropped
  }
}

void ServerTransaction::ReceiveRetransmit(const Message&) {
  switch (state_) {
    case TxState::kProceeding:
    case TxState::kCompleted:
      if (last_response_) {
        layer_.transport().Send(*last_response_, remote_);
        layer_.metrics_.retransmits->Inc();
        if (method_ == Method::kInvite && state_ == TxState::kCompleted) {
          // Timer G semantics: back off the retransmit interval.
          retransmit_interval_ =
              std::min(retransmit_interval_ * 2, layer_.timers().t2);
          retransmit_timer_.Start(retransmit_interval_, [this] {
            layer_.metrics_.timer_fires->Inc();
            ReceiveRetransmit(request_);
          });
        }
      }
      return;
    default:
      return;
  }
}

void ServerTransaction::ReceiveAck(const Message& ack) {
  if (method_ != Method::kInvite) return;
  if (state_ == TxState::kCompleted) {
    EnterState(TxState::kConfirmed);
    retransmit_timer_.Cancel();
    // Timer I: absorb further ACKs for T4, then terminate.
    timeout_timer_.Start(layer_.timers().t4, [this] {
      layer_.metrics_.timer_fires->Inc();
      Terminate();
    });
    if (on_ack_) on_ack_(ack);
  }
}

void ServerTransaction::Terminate() {
  if (state_ == TxState::kTerminated) return;
  EnterState(TxState::kTerminated);
  retransmit_timer_.Cancel();
  timeout_timer_.Cancel();
  layer_.Collect();
}

// ----------------------------------------------------------------- Layer

TransactionLayer::TransactionLayer(sim::Scheduler& scheduler,
                                   Transport& transport, TimerConfig timers)
    : scheduler_(scheduler), transport_(transport), timers_(timers) {
  transport_.SetReceiver([this](const Message& message,
                                const net::Datagram& dgram) {
    OnTransportReceive(message, dgram);
  });
}

ClientTransaction& TransactionLayer::StartClient(
    Message request, net::Endpoint dst,
    ClientTransaction::ResponseHandler on_response,
    ClientTransaction::TimeoutHandler on_timeout) {
  auto tx = std::unique_ptr<ClientTransaction>(
      new ClientTransaction(*this, std::move(request), dst,
                            std::move(on_response), std::move(on_timeout)));
  const std::string key = ClientKey(tx->branch(), tx->method());
  ClientTransaction& ref = *tx;
  clients_[key] = std::move(tx);
  metrics_.clients_created->Inc();
  ref.Start();
  return ref;
}

void TransactionLayer::AttachMetrics(obs::MetricsRegistry& registry) {
  metrics_.clients_created = &registry.GetCounter("sip.tx.clients_created");
  metrics_.servers_created = &registry.GetCounter("sip.tx.servers_created");
  metrics_.retransmits = &registry.GetCounter("sip.tx.retransmits");
  metrics_.timer_fires = &registry.GetCounter("sip.tx.timer_fires");
  metrics_.timeouts = &registry.GetCounter("sip.tx.timeouts");
  metrics_.state_ns = &registry.GetHistogram("sip.tx.state_ns");
}

void TransactionLayer::SendStateless(const Message& message,
                                     net::Endpoint dst) {
  transport_.Send(message, dst);
}

ServerTransaction* TransactionLayer::FindInviteServer(const Message& cancel) {
  const auto via = cancel.TopVia();
  if (!via) return nullptr;
  const auto it = servers_.find(ServerKey(*via, Method::kInvite));
  if (it == servers_.end() || it->second->IsTerminated()) return nullptr;
  return it->second.get();
}

void TransactionLayer::OnTransportReceive(const Message& message,
                                          const net::Datagram& dgram) {
  if (message.IsResponse()) {
    DispatchResponse(message, dgram);
  } else {
    DispatchRequest(message, dgram);
  }
}

void TransactionLayer::DispatchResponse(const Message& response,
                                        const net::Datagram& dgram) {
  const auto via = response.TopVia();
  const auto cseq = response.Cseq();
  if (!via || !cseq) return;
  const auto it = clients_.find(ClientKey(via->branch, cseq->method));
  if (it == clients_.end() || it->second->IsTerminated()) {
    if (core_.on_stray_response) core_.on_stray_response(response, dgram);
    return;
  }
  it->second->ReceiveResponse(response);
}

void TransactionLayer::DispatchRequest(const Message& request,
                                       const net::Datagram& dgram) {
  const auto via = request.TopVia();
  if (!via || via->branch.empty()) {
    VIDS_DEBUG_C("sip") << "request without Via branch dropped";
    return;
  }
  const Method method = request.method();
  const std::string key = ServerKey(*via, method);
  const auto it = servers_.find(key);

  if (method == Method::kAck) {
    if (it != servers_.end() && !it->second->IsTerminated()) {
      it->second->ReceiveAck(request);
    } else if (core_.on_ack) {
      core_.on_ack(request, dgram);  // ACK for a 2xx
    }
    return;
  }

  if (it != servers_.end() && !it->second->IsTerminated()) {
    it->second->ReceiveRetransmit(request);
    return;
  }

  auto tx = std::unique_ptr<ServerTransaction>(
      new ServerTransaction(*this, request, dgram.src));
  ServerTransaction& ref = *tx;
  servers_[key] = std::move(tx);
  metrics_.servers_created->Inc();
  if (core_.on_request) core_.on_request(ref);
}

void TransactionLayer::Collect() {
  // Deferred so a transaction never frees itself mid-callback.
  scheduler_.ScheduleAfter(sim::Duration{}, [this] {
    std::erase_if(clients_, [](const auto& kv) {
      return kv.second->IsTerminated();
    });
    std::erase_if(servers_, [](const auto& kv) {
      return kv.second->IsTerminated();
    });
  });
}

}  // namespace vids::sip
