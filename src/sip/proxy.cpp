#include "sip/proxy.h"

#include "common/log.h"

namespace vids::sip {

Proxy::Proxy(sim::Scheduler& scheduler, net::Host& host, Config config)
    : scheduler_(scheduler),
      config_(std::move(config)),
      transport_(host, config_.sip_port),
      layer_(scheduler, transport_, config_.timers) {
  layer_.SetCore(TransactionLayer::Core{
      .on_request = [this](ServerTransaction& tx) { OnRequest(tx); },
      .on_ack = [this](const Message& ack,
                       const net::Datagram& dgram) { OnAck(ack, dgram); },
      .on_stray_response =
          [this](const Message& response, const net::Datagram&) {
            // Retransmitted 2xx after both transactions terminated: forward
            // statelessly along the Via chain (§16.7).
            Message copy = response;
            copy.PopVia();
            if (const auto via = copy.TopVia()) {
              layer_.SendStateless(copy, via->sent_by);
            }
          },
  });
}

void Proxy::AddBinding(const std::string& aor, net::Endpoint contact) {
  location_[aor] = contact;
}

std::optional<net::Endpoint> Proxy::Resolve(const SipUri& uri) const {
  if (uri.host == config_.domain) {
    const auto it = location_.find(uri.UserAtHost());
    if (it == location_.end()) return std::nullopt;
    return it->second;
  }
  // Numeric host: the request-URI already names a device (e.g. a Contact).
  if (const auto ip = net::IpAddress::Parse(uri.host)) {
    return net::Endpoint{*ip, uri.port != 0 ? uri.port : kDefaultSipPort};
  }
  // Foreign domain: hand to its inbound proxy (the paper's DNS step).
  const auto it = config_.directory.find(uri.host);
  if (it == config_.directory.end()) return std::nullopt;
  return it->second;
}

void Proxy::OnRegister(ServerTransaction& tx) {
  const auto to = tx.request().To();
  const auto contact = tx.request().ContactHeader();
  if (!to || !contact) {
    tx.Respond(tx.MakeResponse(400));
    return;
  }
  if (to->uri.host != config_.domain) {
    ++requests_rejected_;
    tx.Respond(tx.MakeResponse(403));
    return;
  }
  if (config_.require_registration_auth) {
    const std::string aor = to->uri.UserAtHost();
    const auto authorization = tx.request().Header("Authorization");
    const auto credentials =
        authorization ? DigestCredentials::Parse(*authorization)
                      : std::nullopt;
    const auto nonce = issued_nonces_.find(aor);
    bool authentic = false;
    if (credentials && nonce != issued_nonces_.end() &&
        credentials->nonce == nonce->second) {
      const auto password = config_.user_passwords.find(credentials->username);
      if (password != config_.user_passwords.end()) {
        const std::string expected = ComputeDigestResponse(
            credentials->username, config_.domain, password->second,
            credentials->nonce, "REGISTER",
            tx.request().request_uri().ToString());
        authentic = credentials->response == expected &&
                    credentials->username == to->uri.user;
      }
    }
    if (!authentic) {
      if (credentials) {
        // Wrong password / stale nonce / foreign user: refuse outright.
        ++auth_failures_;
        tx.Respond(tx.MakeResponse(403));
        return;
      }
      // No credentials yet: challenge (§22.2).
      DigestChallenge challenge;
      challenge.realm = config_.domain;
      challenge.nonce = "n" + std::to_string(next_nonce_++);
      issued_nonces_[aor] = challenge.nonce;
      ++auth_challenges_sent_;
      Message reject = tx.MakeResponse(401);
      reject.SetHeader("WWW-Authenticate", challenge.ToString());
      tx.Respond(reject);
      return;
    }
    issued_nonces_.erase(aor);  // nonces are single-use
  }
  const auto ip = net::IpAddress::Parse(contact->uri.host);
  if (!ip) {
    tx.Respond(tx.MakeResponse(400));
    return;
  }
  location_[to->uri.UserAtHost()] = net::Endpoint{
      *ip, contact->uri.port != 0 ? contact->uri.port : kDefaultSipPort};
  Message ok = tx.MakeResponse(200);
  ok.SetContact(*contact);
  tx.Respond(ok);
}

void Proxy::OnRequest(ServerTransaction& tx) {
  const Method method = tx.method();
  if (method == Method::kRegister) {
    OnRegister(tx);
    return;
  }
  if (method == Method::kCancel) {
    // §9.2: answer the CANCEL, then cancel the matching downstream INVITE.
    ServerTransaction* invite_tx = layer_.FindInviteServer(tx.request());
    tx.Respond(tx.MakeResponse(200));
    if (invite_tx == nullptr) return;
    // Rebuild a CANCEL for the downstream leg: same target as the forwarded
    // INVITE, our Via branch for that leg.
    // The downstream INVITE client transaction is identified through the
    // pending-forward bookkeeping below.
    const auto pending = pending_cancels_.find(invite_tx->branch());
    if (pending != pending_cancels_.end()) {
      Message cancel =
          Message::MakeRequest(Method::kCancel, pending->second.request_uri);
      cancel.PushVia(pending->second.via);
      const Message& fwd = pending->second.invite;
      if (const auto from = fwd.From()) cancel.SetFrom(*from);
      if (const auto to = fwd.To()) cancel.SetTo(*to);
      if (const auto id = fwd.CallId()) cancel.SetCallId(*id);
      if (const auto cseq = fwd.Cseq()) {
        cancel.SetCseq(CSeq{cseq->number, Method::kCancel});
      }
      layer_.StartClient(std::move(cancel), pending->second.next_hop,
                         [](const Message&) {}, [] {});
    }
    return;
  }

  const auto next_hop = Resolve(tx.request().request_uri());
  if (!next_hop) {
    ++requests_rejected_;
    tx.Respond(tx.MakeResponse(404));
    return;
  }
  ForwardRequest(tx, *next_hop);
}

void Proxy::ForwardRequest(ServerTransaction& tx, net::Endpoint next_hop) {
  Message forwarded = tx.request();
  const int max_forwards = forwarded.MaxForwards().value_or(70);
  if (max_forwards <= 0) {
    ++requests_rejected_;
    tx.Respond(tx.MakeResponse(483, "Too Many Hops"));
    return;
  }
  forwarded.SetMaxForwards(max_forwards - 1);
  Via via;
  via.sent_by = transport_.local();
  via.branch = layer_.NewBranch();
  forwarded.PushVia(via);
  ++requests_proxied_;

  if (tx.method() == Method::kInvite) {
    pending_cancels_.insert_or_assign(
        tx.branch(),
        PendingForward{forwarded.request_uri(), via, forwarded, next_hop});
  }

  ServerTransaction* upstream = &tx;
  const std::string upstream_branch = tx.branch();
  layer_.StartClient(
      std::move(forwarded), next_hop,
      [this, upstream, upstream_branch](const Message& response) {
        Message copy = response;
        copy.PopVia();  // shed our Via
        upstream->Respond(copy);
        if (response.status() >= 200) pending_cancels_.erase(upstream_branch);
      },
      [this, upstream, upstream_branch] {
        upstream->Respond(upstream->MakeResponse(408));
        pending_cancels_.erase(upstream_branch);
      });
}

void Proxy::OnAck(const Message& ack, const net::Datagram&) {
  // An ACK routed through the proxy (unusual without Record-Route, but
  // harmless): forward statelessly toward the request-URI.
  const auto next_hop = Resolve(ack.request_uri());
  if (!next_hop) return;
  Message copy = ack;
  const int max_forwards = copy.MaxForwards().value_or(70);
  if (max_forwards <= 0) return;
  copy.SetMaxForwards(max_forwards - 1);
  layer_.SendStateless(copy, *next_hop);
}

}  // namespace vids::sip
