// Stateful SIP proxy with registrar and location service (paper §2.1).
//
// Each enterprise network runs one. It accepts REGISTER bindings from its
// own domain, routes INVITEs for local users to their registered contacts,
// and forwards requests for foreign domains to the peer domain's inbound
// proxy (a static directory substitutes for the DNS lookup the paper
// describes). Responses travel back along the transaction pair; ACKs for
// 2xx and all media flow end-to-end, bypassing the proxy — which is exactly
// why the vIDS must sit on the network edge rather than at the proxy.
#pragma once

#include <map>
#include <string>

#include "sip/auth.h"
#include "sip/transaction.h"

namespace vids::sip {

/// Static domain → inbound-proxy directory, substituting for DNS SRV.
using DomainDirectory = std::map<std::string, net::Endpoint>;

class Proxy {
 public:
  struct Config {
    std::string domain;  // the domain this proxy is authoritative for
    uint16_t sip_port = kDefaultSipPort;
    DomainDirectory directory;  // peers, keyed by domain
    TimerConfig timers{};
    /// When true, REGISTER requires Digest authentication (§22): the
    /// registrar challenges with 401 and verifies the response against
    /// `user_passwords` (keyed by the AOR user part).
    bool require_registration_auth = false;
    std::map<std::string, std::string> user_passwords;
  };

  Proxy(sim::Scheduler& scheduler, net::Host& host, Config config);

  /// Pre-provisions a location binding (tests may skip REGISTER).
  void AddBinding(const std::string& aor, net::Endpoint contact);

  size_t binding_count() const { return location_.size(); }
  uint64_t requests_proxied() const { return requests_proxied_; }
  uint64_t requests_rejected() const { return requests_rejected_; }
  uint64_t auth_challenges_sent() const { return auth_challenges_sent_; }
  uint64_t auth_failures() const { return auth_failures_; }

  /// For metric attachment by the deployment that owns this proxy.
  TransactionLayer& transaction_layer() { return layer_; }

 private:
  void OnRequest(ServerTransaction& tx);
  void OnRegister(ServerTransaction& tx);
  void OnAck(const Message& ack, const net::Datagram& dgram);
  void ForwardRequest(ServerTransaction& tx, net::Endpoint next_hop);
  /// Resolves where a request-URI should be sent next: a local contact, a
  /// peer proxy, or nothing (404).
  std::optional<net::Endpoint> Resolve(const SipUri& uri) const;

  /// State of a forwarded INVITE's downstream leg, kept until a final
  /// response so an upstream CANCEL can be propagated (§9.2).
  struct PendingForward {
    SipUri request_uri;
    Via via;  // the Via we stamped on the downstream leg
    Message invite;
    net::Endpoint next_hop;
  };

  sim::Scheduler& scheduler_;
  Config config_;
  Transport transport_;
  TransactionLayer layer_;
  std::map<std::string, net::Endpoint> location_;  // AOR → contact
  // Keyed by the upstream INVITE server-transaction branch.
  std::map<std::string, PendingForward> pending_cancels_;
  // Outstanding Digest nonces, keyed by AOR.
  std::map<std::string, std::string> issued_nonces_;
  uint64_t next_nonce_ = 1;
  uint64_t requests_proxied_ = 0;
  uint64_t requests_rejected_ = 0;
  uint64_t auth_challenges_sent_ = 0;
  uint64_t auth_failures_ = 0;
};

}  // namespace vids::sip
