// Protocol specification EFSMs (paper §4.2, Figures 2 and 5).
//
// One SIP machine and one RTP machine are instantiated per monitored call.
// The SIP machine follows the INVITE dialog lifecycle and exports media
// parameters from SDP bodies into the group's global variables; at the
// critical events (offer, answer, teardown) it emits δ synchronization
// messages on the "SIP->RTP" channel. The RTP machine validates media
// against the negotiated session and implements the cross-protocol BYE
// DoS / toll-fraud detection: after a BYE it tolerates in-flight packets
// for T, then any further media is an attack — classified by whether it
// comes from the same host that sent the BYE (toll fraud, §3.1 billing
// attack) or another (BYE DoS).
#pragma once

#include "efsm/machine.h"
#include "vids/config.h"

namespace vids::ids {

/// Instance names inside a per-call machine group.
inline constexpr std::string_view kSipMachineName = "SIP";
inline constexpr std::string_view kRtpMachineName = "RTP";

/// Attack-state classification labels (also used by EXPERIMENTS.md).
inline constexpr std::string_view kAttackByeDos = "BYE DoS";
inline constexpr std::string_view kAttackTollFraud = "toll fraud";
inline constexpr std::string_view kAttackEncoding = "encoding violation";

/// Interned keys of the global variables the SIP spec machine exports from
/// SDP (read by the RTP machine's predicates and the media-index refresh).
namespace gkey {
inline const efsm::ArgKey kOfferIp = efsm::ArgKey::Intern("g_offer_ip");
inline const efsm::ArgKey kOfferPort = efsm::ArgKey::Intern("g_offer_port");
inline const efsm::ArgKey kOfferPt = efsm::ArgKey::Intern("g_offer_pt");
inline const efsm::ArgKey kOfferCodec = efsm::ArgKey::Intern("g_offer_codec");
inline const efsm::ArgKey kAnswerIp = efsm::ArgKey::Intern("g_answer_ip");
inline const efsm::ArgKey kAnswerPort = efsm::ArgKey::Intern("g_answer_port");
inline const efsm::ArgKey kAnswerPt = efsm::ArgKey::Intern("g_answer_pt");
inline const efsm::ArgKey kAnswerCodec =
    efsm::ArgKey::Intern("g_answer_codec");
inline const efsm::ArgKey kCloseSrcIp =
    efsm::ArgKey::Intern("g_close_src_ip");
}  // namespace gkey

efsm::MachineDef BuildSipSpecMachine(const DetectionConfig& config);
efsm::MachineDef BuildRtpSpecMachine(const DetectionConfig& config);

}  // namespace vids::ids
