#include "vids/ids.h"

#include "common/log.h"

namespace vids::ids {

namespace {
/// Suppression window for repeated identical alerts (an ongoing flood would
/// otherwise alert per packet).
constexpr sim::Duration kAlertDedupWindow = sim::Duration::Seconds(1);
}  // namespace

Vids::Vids(sim::Scheduler& scheduler, DetectionConfig detection,
           CostModel cost)
    : scheduler_(scheduler),
      detection_(detection),
      cost_(cost),
      fact_base_(scheduler, detection, this) {}

sim::Duration Vids::Inspect(const net::Datagram& dgram, bool from_outside) {
  ++stats_.packets;
  fact_base_.Sweep(scheduler_.Now());

  const auto packet = classifier_.Classify(dgram, from_outside);
  if (!packet) {
    ++stats_.unknown_packets;
    RaiseAlert(Alert{.when = scheduler_.Now(),
                     .kind = AlertKind::kMalformed,
                     .classification = "unparsable packet",
                     .machine = "classifier",
                     .group = dgram.dst.ToString(),
                     .state = "",
                     .detail = "from " + dgram.src.ToString()});
    return cost_.rtp_cost;  // rejecting junk is cheap
  }
  if (packet->proto == PacketProto::kSip) {
    ++stats_.sip_packets;
    HandleSip(*packet);
    return cost_.sip_cost;
  }
  if (packet->proto == PacketProto::kRtcp) {
    ++stats_.rtcp_packets;
    HandleRtcp(*packet);
    return cost_.rtp_cost;
  }
  ++stats_.rtp_packets;
  HandleRtp(*packet);
  return cost_.rtp_cost;
}

void Vids::HandleRtcp(const ClassifiedPacket& packet) {
  // RTCP runs on the media port + 1; fold it onto the media endpoint's
  // pattern group so the ghost-media machine sees both streams.
  const auto dst_ip = packet.event.ArgString("dst_ip");
  const auto dst_port = packet.event.ArgInt("dst_port");
  if (!dst_ip || !dst_port || *dst_port < 1) return;
  const auto addr = net::IpAddress::Parse(*dst_ip);
  if (!addr) return;
  const net::Endpoint media_endpoint{
      *addr, static_cast<uint16_t>(*dst_port - 1)};
  auto& media_group = fact_base_.GetOrCreateKeyed(KeyedKind::kMediaEndpoint,
                                                  media_endpoint.ToString());
  if (auto* machine = media_group.Find("rtcp-bye")) {
    media_group.DeliverData(*machine, packet.event);
  }
}

void Vids::HandleSip(const ClassifiedPacket& packet) {
  if (packet.call_key.empty()) {
    RaiseAlert(Alert{.when = scheduler_.Now(),
                     .kind = AlertKind::kMalformed,
                     .classification = "SIP message without Call-ID",
                     .machine = "classifier",
                     .group = "",
                     .state = "",
                     .detail = ""});
    return;
  }
  if (fact_base_.IsTombstoned(packet.call_key)) {
    return;  // late retransmission of a completed call
  }

  bool created = false;
  auto& group = fact_base_.GetOrCreateCall(packet.call_key, created);

  // A response opening a "call" is unsolicited: nobody here sent the
  // request. Feed the per-victim DRDoS counter (§3.1's reflection attack);
  // the SIP machine's INIT-state deviation also fires.
  const bool is_response =
      packet.event.ArgString("kind").value_or("") == "response";
  if (created && is_response) {
    if (const auto dst_ip = packet.event.ArgString("dst_ip")) {
      auto& drdos_group =
          fact_base_.GetOrCreateKeyed(KeyedKind::kDrdos, *dst_ip);
      efsm::Event unsolicited;
      unsolicited.name = std::string(kUnsolicitedEvent);
      unsolicited.args = packet.event.args;
      if (auto* machine = drdos_group.Find("drdos")) {
        drdos_group.DeliverData(*machine, unsolicited);
      }
    }
  }

  // Distribute to the call's machines: specification first (it exports the
  // media parameters), then the per-call attack patterns.
  for (const auto name :
       {kSipMachineName, std::string_view("cancel-dos"),
        std::string_view("hijack")}) {
    if (auto* machine = group.Find(name)) {
      group.DeliverData(*machine, packet.event);
    }
  }

  // INVITE requests additionally drive the per-destination flood counter.
  if (packet.event.ArgString("kind").value_or("") == "request" &&
      packet.event.ArgString("method").value_or("") == "INVITE" &&
      !packet.dest_key.empty()) {
    auto& flood_group =
        fact_base_.GetOrCreateKeyed(KeyedKind::kInviteFlood, packet.dest_key);
    if (auto* machine = flood_group.Find("invite-flood")) {
      flood_group.DeliverData(*machine, packet.event);
    }
  }

  RefreshMediaIndex(group, packet.call_key);
}

void Vids::RefreshMediaIndex(efsm::MachineGroup& group,
                             const std::string& call_id) {
  for (const std::string prefix : {"offer", "answer"}) {
    const auto ip = group.global().GetString("g_" + prefix + "_ip");
    const auto port = group.global().GetInt("g_" + prefix + "_port");
    if (ip && port) {
      if (const auto addr = net::IpAddress::Parse(*ip)) {
        fact_base_.IndexMedia(
            net::Endpoint{*addr, static_cast<uint16_t>(*port)}, call_id);
      }
    }
  }
}

void Vids::HandleRtp(const ClassifiedPacket& packet) {
  const auto dst_ip = packet.event.ArgString("dst_ip");
  const auto dst_port = packet.event.ArgInt("dst_port");
  if (!dst_ip || !dst_port) return;
  net::Endpoint dst;
  if (const auto addr = net::IpAddress::Parse(*dst_ip)) {
    dst = net::Endpoint{*addr, static_cast<uint16_t>(*dst_port)};
  }

  // Cross-protocol path: media belonging to a monitored call goes to that
  // call's RTP specification machine.
  if (const auto call_id = fact_base_.CallByMedia(dst)) {
    if (auto* group = fact_base_.FindCall(*call_id)) {
      if (auto* machine = group->Find(kRtpMachineName)) {
        group->DeliverData(*machine, packet.event);
      }
    }
  } else {
    ++stats_.orphan_rtp;
  }

  // Per-endpoint patterns see every media packet, monitored call or not.
  auto& media_group =
      fact_base_.GetOrCreateKeyed(KeyedKind::kMediaEndpoint, dst.ToString());
  for (const auto name :
       {std::string_view("media-spam"), std::string_view("rtp-flood"),
        std::string_view("rtcp-bye")}) {
    if (auto* machine = media_group.Find(name)) {
      media_group.DeliverData(*machine, packet.event);
    }
  }
}

// ------------------------------------------------- Analysis Engine side

void Vids::OnTransition(const efsm::MachineInstance& machine,
                        const efsm::Transition& transition,
                        const efsm::Event&) {
  ++stats_.transitions;
  if (transition_trace_) transition_trace_(machine, transition);
}

void Vids::OnAttackState(const efsm::MachineInstance& machine,
                         efsm::StateId state, const efsm::Event& event) {
  Alert alert;
  alert.when = scheduler_.Now();
  alert.kind = AlertKind::kAttackPattern;
  alert.classification = std::string(machine.def().StateName(state));
  alert.machine = machine.def().name();
  alert.group = machine.group().name();
  alert.state = std::string(machine.def().StateName(state));
  alert.detail = "src=" + event.ArgString("src_ip").value_or("?") +
                 " dst=" + event.ArgString("dst_ip").value_or("?");
  RaiseAlert(std::move(alert));
}

std::string Vids::DescribeDeviation(const efsm::MachineInstance& machine,
                                    const efsm::Event& event) {
  const std::string_view state = machine.StateName();
  const bool at_init = machine.state() == machine.def().initial_state();
  if (machine.def().name() == "sip-spec" && at_init) {
    if (event.ArgString("kind").value_or("") == "response") {
      return "unsolicited response (possible DRDoS reflection)";
    }
    return "dialog-less " + event.ArgString("method").value_or("request") +
           " (possible spoofed teardown)";
  }
  if (machine.def().name() == "rtp-spec") {
    if (at_init) return "media before signaling";
    return "unauthorized media (endpoint not negotiated in SDP)";
  }
  return "unexpected " + event.name + " in state " + std::string(state);
}

void Vids::OnDeviation(const efsm::MachineInstance& machine,
                       const efsm::Event& event) {
  Alert alert;
  alert.when = scheduler_.Now();
  alert.kind = AlertKind::kSpecDeviation;
  alert.classification = DescribeDeviation(machine, event);
  alert.machine = machine.def().name();
  alert.group = machine.group().name();
  alert.state = std::string(machine.StateName());
  alert.detail = "event=" + event.name +
                 " src=" + event.ArgString("src_ip").value_or("?");
  RaiseAlert(std::move(alert));
}

void Vids::OnNondeterminism(const efsm::MachineInstance& machine,
                            const efsm::Event& event, size_t enabled_count) {
  Alert alert;
  alert.when = scheduler_.Now();
  alert.kind = AlertKind::kNondeterminism;
  alert.classification = "non-disjoint predicates";
  alert.machine = machine.def().name();
  alert.group = machine.group().name();
  alert.state = std::string(machine.StateName());
  alert.detail = std::to_string(enabled_count) + " transitions enabled on " +
                 event.name;
  RaiseAlert(std::move(alert));
}

void Vids::RaiseAlert(Alert alert) {
  const std::string dedup_key =
      alert.group + "|" + alert.machine + "|" + alert.classification;
  const auto it = recent_alerts_.find(dedup_key);
  if (it != recent_alerts_.end() &&
      alert.when - it->second < kAlertDedupWindow) {
    ++stats_.alerts_suppressed;
    return;
  }
  recent_alerts_[dedup_key] = alert.when;
  VIDS_INFO() << alert.ToString();
  if (alert_callback_) alert_callback_(alert);
  alerts_.push_back(std::move(alert));
}

size_t Vids::CountAlerts(AlertKind kind) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.kind == kind) ++count;
  }
  return count;
}

size_t Vids::CountAlerts(std::string_view classification) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.classification == classification) ++count;
  }
  return count;
}

}  // namespace vids::ids
