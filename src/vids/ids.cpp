#include "vids/ids.h"

#include <algorithm>
#include <unordered_set>

#include "common/log.h"

namespace vids::ids {

namespace {

// Dotted-quad into a caller-provided stack buffer (the classifier's
// AssignIp shape) — the aggregate hook's DRDoS key must always be the
// victim IP from the packet itself, never an event arg that could be
// absent, and formatting it here keeps the hook path allocation-free.
std::string_view FormatIpv4(char (&buf)[16], net::IpAddress ip) {
  char* out = buf;
  const uint32_t bits = ip.bits();
  for (int shift = 24; shift >= 0; shift -= 8) {
    const uint32_t octet = (bits >> shift) & 0xFF;
    if (octet >= 100) {
      *out++ = static_cast<char>('0' + octet / 100);
      *out++ = static_cast<char>('0' + octet / 10 % 10);
    } else if (octet >= 10) {
      *out++ = static_cast<char>('0' + octet / 10);
    }
    *out++ = static_cast<char>('0' + octet % 10);
    if (shift != 0) *out++ = '.';
  }
  return {buf, static_cast<size_t>(out - buf)};
}

}  // namespace

Vids::Vids(sim::Scheduler& scheduler, DetectionConfig detection,
           CostModel cost)
    : scheduler_(scheduler),
      detection_(detection),
      cost_(cost),
      fact_base_(scheduler, detection, this, &registry_),
      behavior_(detection_.behavior),
      m_packets_(&registry_.GetCounter("vids.packets")),
      m_sip_packets_(&registry_.GetCounter("vids.sip_packets")),
      m_rtp_packets_(&registry_.GetCounter("vids.rtp_packets")),
      m_rtcp_packets_(&registry_.GetCounter("vids.rtcp_packets")),
      m_unknown_packets_(&registry_.GetCounter("vids.unknown_packets")),
      m_orphan_rtp_(&registry_.GetCounter("vids.orphan_rtp")),
      // Same slot the engine updates (GetCounter is idempotent by name).
      m_transitions_(&registry_.GetCounter("efsm.transitions")),
      m_alerts_(&registry_.GetCounter("vids.alerts")),
      m_alerts_suppressed_(&registry_.GetCounter("vids.alerts_suppressed")),
      m_alert_sigs_(&registry_.GetGauge("vids.alert_sigs")),
      m_behavior_profiles_(&registry_.GetGauge("vids.behavior_profiles")) {
  // The fact base's sweep doubles as the dedup table's pruning tick and the
  // behavior layer's profile-reclaim tick, so both tables are reclaimed on
  // the same time-driven cadence as the call state — including during
  // traffic silence. BehaviorEngine::Sweep is memory-only by its
  // determinism contract, so riding an arbitrary cadence is safe.
  fact_base_.set_sweep_listener(
      [this](sim::Time now, const std::vector<std::string>& reclaimed) {
        PruneAlertSigs(now, reclaimed);
        behavior_.Sweep(now);
        m_behavior_profiles_->Set(
            static_cast<int64_t>(behavior_.profile_count()));
      });
  // Behavioral alerts ride the normal alert path. The engine's own
  // cooldown (>= the dedup window by contract) means RaiseAlert's dedup
  // never suppresses one — the emission stream is the engine's alone, so
  // the sharded coordinator's instance reproduces it byte-for-byte.
  behavior_.set_alert_sink([this](Alert&& alert) {
    RaiseAlert(std::move(alert));
  });
}

Vids::Stats Vids::stats() const {
  Stats s;
  s.packets = m_packets_->value();
  s.sip_packets = m_sip_packets_->value();
  s.rtp_packets = m_rtp_packets_->value();
  s.rtcp_packets = m_rtcp_packets_->value();
  s.unknown_packets = m_unknown_packets_->value();
  s.orphan_rtp = m_orphan_rtp_->value();
  s.transitions = m_transitions_->value();
  s.alerts_suppressed = m_alerts_suppressed_->value();
  return s;
}

sim::Duration Vids::Inspect(const net::Datagram& dgram, bool from_outside) {
  m_packets_->Inc();
  fact_base_.Sweep(scheduler_.Now());

  const auto packet = classifier_.Classify(dgram, from_outside);
  if (!packet) {
    m_unknown_packets_->Inc();
    RaiseAlert(Alert{.when = scheduler_.Now(),
                     .kind = AlertKind::kMalformed,
                     .classification = "unparsable packet",
                     .machine = "classifier",
                     .group = dgram.dst.ToString(),
                     .state = "",
                     .detail = "from " + dgram.src.ToString(),
                     .trigger = "",
                     .provenance = {}});
    return cost_.rtp_cost;  // rejecting junk is cheap
  }
  if (packet->proto == PacketProto::kSip) {
    m_sip_packets_->Inc();
    HandleSip(*packet);
    return cost_.sip_cost;
  }
  if (packet->proto == PacketProto::kRtcp) {
    m_rtcp_packets_->Inc();
    HandleRtcp(*packet);
    return cost_.rtp_cost;
  }
  m_rtp_packets_->Inc();
  HandleRtp(*packet);
  return cost_.rtp_cost;
}

void Vids::HandleRtcp(const ClassifiedPacket& packet) {
  // RTCP runs on the media port + 1; fold it onto the media endpoint's
  // pattern group so the ghost-media machine sees both streams.
  if (packet.dst.port < 1) return;
  const net::Endpoint media_endpoint{
      packet.dst.ip, static_cast<uint16_t>(packet.dst.port - 1)};
  auto& media_group = fact_base_.GetOrCreateMediaGroup(media_endpoint);
  if (auto* machine = media_group.Find("rtcp-bye")) {
    media_group.DeliverData(*machine, packet.event);
  }
}

void Vids::HandleSip(const ClassifiedPacket& packet) {
  if (packet.call_key.empty()) {
    RaiseAlert(Alert{.when = scheduler_.Now(),
                     .kind = AlertKind::kMalformed,
                     .classification = "SIP message without Call-ID",
                     .machine = "classifier",
                     .group = "",
                     .state = "",
                     .detail = "",
                     .trigger = "",
                     .provenance = {}});
    return;
  }
  if (fact_base_.IsTombstoned(packet.call_key)) {
    return;  // late retransmission of a completed call
  }

  bool created = false;
  auto& group = fact_base_.GetOrCreateCall(packet.call_key, created);

  // A response opening a "call" is unsolicited: nobody here sent the
  // request. Feed the per-victim DRDoS counter (§3.1's reflection attack);
  // the SIP machine's INIT-state deviation also fires.
  const std::string* kind = packet.event.ArgStr(argkey::kKind);
  const bool is_response = kind != nullptr && *kind == "response";
  if (created && is_response) {
    if (aggregate_hook_) {
      // Sharded deployment: the victim-keyed count spans shards, so the
      // event goes up to the coordinator's window counter instead. The key
      // is the victim IP straight from the packet, matching the keying of
      // GetOrCreateDrdosGroup below.
      char victim[16];
      aggregate_hook_(AggregateKind::kUnsolicitedResponse,
                      FormatIpv4(victim, packet.dst.ip), packet);
    } else {
      auto& drdos_group = fact_base_.GetOrCreateDrdosGroup(packet.dst.ip);
      efsm::Event unsolicited;
      unsolicited.name = std::string(kUnsolicitedEvent);
      unsolicited.args = packet.event.args;
      if (auto* machine = drdos_group.Find("drdos")) {
        drdos_group.DeliverData(*machine, unsolicited);
      }
    }
  }

  // Distribute to the call's machines: specification first (it exports the
  // media parameters), then the per-call attack patterns.
  for (const auto name :
       {kSipMachineName, std::string_view("cancel-dos"),
        std::string_view("hijack")}) {
    if (auto* machine = group.Find(name)) {
      group.DeliverData(*machine, packet.event);
    }
  }

  // INVITE requests additionally drive the per-destination flood counter.
  if (!is_response && !packet.dest_key.empty()) {
    const std::string* method = packet.event.ArgStr(argkey::kMethod);
    if (method != nullptr && *method == "INVITE") {
      if (aggregate_hook_) {
        aggregate_hook_(AggregateKind::kInviteRequest, packet.dest_key,
                        packet);
      } else {
        auto& flood_group = fact_base_.GetOrCreateInviteFlood(packet.dest_key);
        if (auto* machine = flood_group.Find("invite-flood")) {
          flood_group.DeliverData(*machine, packet.event);
        }
      }
    }
  }

  // Entity-keyed behavior profiles see call starts/ends and REGISTER
  // finals (DESIGN.md §16). Same placement as the aggregate feeds above:
  // after the tombstone gate, so a late retransmission of a completed call
  // never re-feeds a profile.
  if (detection_.behavior.enabled) FeedBehavior(packet, is_response);

  // Only packets that actually carried SDP can move the media index. The
  // group's offer/answer globals persist for the call's whole life, so
  // refreshing on every packet would let an SDP-less BYE re-assert a stale
  // binding and steal an endpoint back from the call that re-negotiated it.
  if (packet.event.ArgStr(argkey::kSdpIp) != nullptr) {
    RefreshMediaIndex(group, packet.call_key);
  }
}

void Vids::FeedBehavior(const ClassifiedPacket& packet, bool is_response) {
  const std::string* method = packet.event.ArgStr(argkey::kMethod);
  if (method == nullptr) return;
  if (!is_response && *method == "INVITE" &&
      packet.event.ArgStr(argkey::kToTag) == nullptr) {
    // Initial INVITE (no To tag): a call start attributed to the caller.
    const std::string* from = packet.event.ArgStr(argkey::kFrom);
    if (from == nullptr) return;
    if (aggregate_hook_) {
      aggregate_hook_(AggregateKind::kBehaviorCallStart, *from, packet);
    } else {
      const std::string* ua = packet.event.ArgStr(argkey::kUserAgent);
      behavior_.OnCallStart(
          scheduler_.Now(), *from, packet.dest_key,
          ua != nullptr ? std::string_view(*ua) : std::string_view(),
          behavior::BehaviorEngine::HashKey(packet.call_key));
    }
    return;
  }
  if (!is_response && *method == "BYE") {
    const std::string* from = packet.event.ArgStr(argkey::kFrom);
    if (from == nullptr) return;
    if (aggregate_hook_) {
      aggregate_hook_(AggregateKind::kBehaviorCallEnd, *from, packet);
    } else {
      behavior_.OnCallEnd(scheduler_.Now(), *from,
                          behavior::BehaviorEngine::HashKey(packet.call_key));
    }
    return;
  }
  if (is_response && *method == "REGISTER") {
    // Final REGISTER responses drive the target's failed-auth streak; the
    // method arg of a response is its CSeq method. The profiled entity is
    // the To AOR (the account), the failing "source" the registering
    // client — the response's destination address.
    const auto status = packet.event.ArgInt(argkey::kStatus);
    const std::string* to = packet.event.ArgStr(argkey::kTo);
    if (!status || to == nullptr) return;
    const bool auth_failure =
        *status == 401 || *status == 403 || *status == 407;
    const bool success = *status >= 200 && *status < 300;
    if (!auth_failure && !success) return;
    if (aggregate_hook_) {
      aggregate_hook_(auth_failure ? AggregateKind::kBehaviorRegFailure
                                   : AggregateKind::kBehaviorRegSuccess,
                      *to, packet);
    } else if (auth_failure) {
      behavior_.OnRegFailure(scheduler_.Now(), *to,
                             static_cast<uint64_t>(packet.dst.ip.bits()));
    } else {
      behavior_.OnRegSuccess(scheduler_.Now(), *to);
    }
  }
}

void Vids::RefreshMediaIndex(efsm::MachineGroup& group,
                             const std::string& call_id) {
  const auto index_one = [&](efsm::ArgKey ip_key, efsm::ArgKey port_key) {
    const efsm::Value& ip = group.global().Get(ip_key);
    const auto port = group.global().GetInt(port_key);
    const auto* ip_str = std::get_if<std::string>(&ip);
    if (ip_str == nullptr || !port) return;
    if (const auto addr = net::IpAddress::Parse(*ip_str)) {
      fact_base_.IndexMedia(
          net::Endpoint{*addr, static_cast<uint16_t>(*port)}, call_id);
    }
  };
  index_one(gkey::kOfferIp, gkey::kOfferPort);
  index_one(gkey::kAnswerIp, gkey::kAnswerPort);
}

void Vids::HandleRtp(const ClassifiedPacket& packet) {
  // Cross-protocol path: media belonging to a monitored call goes to that
  // call's RTP specification machine. The media index resolves the packed
  // binary endpoint straight to the owning group — no string keys.
  if (auto* group = fact_base_.FindGroupByMedia(packet.dst)) {
    if (auto* machine = group->Find(kRtpMachineName)) {
      group->DeliverData(*machine, packet.event);
    }
  } else {
    m_orphan_rtp_->Inc();
  }

  // Per-endpoint patterns see every media packet, monitored call or not.
  auto& media_group = fact_base_.GetOrCreateMediaGroup(packet.dst);
  for (const auto name :
       {std::string_view("media-spam"), std::string_view("rtp-flood"),
        std::string_view("rtcp-bye")}) {
    if (auto* machine = media_group.Find(name)) {
      media_group.DeliverData(*machine, packet.event);
    }
  }
}

// ------------------------------------------------- Analysis Engine side

void Vids::OnTransition(const efsm::MachineInstance& machine,
                        const efsm::Transition& transition,
                        const efsm::Event&) {
  // Counting happens in the engine ("efsm.transitions" — the same slot
  // stats() reads); here we only remember the transition so an immediately
  // following OnAttackState can name its trigger.
  last_transition_ = &transition;
  last_transition_machine_ = &machine;
  if (transition_trace_) transition_trace_(machine, transition);
}

void Vids::AttachProvenance(Alert& alert,
                            const efsm::MachineInstance& machine) {
  if (last_transition_ != nullptr && last_transition_machine_ == &machine) {
    const efsm::Transition& t = *last_transition_;
    const efsm::MachineDef& def = machine.def();
    alert.trigger = machine.name() + ": '" + t.event_name + "' " +
                    std::string(def.StateName(t.from)) + " -> " +
                    std::string(def.StateName(t.to));
    if (!t.label.empty()) alert.trigger += " [" + t.label + "]";
  }
  const efsm::MachineGroup& group = machine.group();
  alert.provenance =
      group.ExplainFlight(obs::FlightRecorder::kCapacity,
                          &CallStateFactBase::DecodeFactRecord);
  // Stamp the alert itself into the ring afterwards, so this alert's
  // provenance holds only the events that *preceded* it, while any later
  // alert of the same call sees this one in its history.
  obs::Record rec;
  rec.type = obs::RecordType::kAlert;
  rec.when_ns = alert.when.nanos();
  rec.machine = machine.index_in_group();
  rec.a = efsm::ArgKey::Intern(alert.classification).id();
  rec.aux = static_cast<uint64_t>(alert.kind);
  group.flight_recorder().Record(rec);
}

void Vids::OnAttackState(const efsm::MachineInstance& machine,
                         efsm::StateId state, const efsm::Event& event) {
  // Attack states with self-loops (floods) re-enter per packet: suppress
  // repeats before building the Alert so the steady state allocates nothing.
  const std::string_view classification = machine.def().StateName(state);
  const sim::Time now = scheduler_.Now();
  if (IsDuplicateAlert(machine.group().name(), machine.def().name(),
                       classification, now)) {
    m_alerts_suppressed_->Inc();
    return;
  }

  Alert alert;
  alert.when = now;
  alert.kind = AlertKind::kAttackPattern;
  alert.classification = std::string(classification);
  alert.machine = machine.def().name();
  alert.group = machine.group().name();
  alert.state = std::string(classification);
  const std::string* src = event.ArgStr(argkey::kSrcIp);
  const std::string* dst = event.ArgStr(argkey::kDstIp);
  alert.detail = "src=" + (src != nullptr ? *src : std::string("?")) +
                 " dst=" + (dst != nullptr ? *dst : std::string("?"));
  AttachProvenance(alert, machine);
  RaiseAlert(std::move(alert));
}

std::string_view Vids::DescribeDeviation(const efsm::MachineInstance& machine,
                                         const efsm::Event& event,
                                         std::string& scratch) {
  const bool at_init = machine.state() == machine.def().initial_state();
  if (machine.def().name() == "sip-spec" && at_init) {
    const std::string* kind = event.ArgStr(argkey::kKind);
    if (kind != nullptr && *kind == "response") {
      return "unsolicited response (possible DRDoS reflection)";
    }
    const std::string* method = event.ArgStr(argkey::kMethod);
    scratch = "dialog-less " +
              (method != nullptr ? *method : std::string("request")) +
              " (possible spoofed teardown)";
    return scratch;
  }
  if (machine.def().name() == "rtp-spec") {
    if (at_init) return "media before signaling";
    return "unauthorized media (endpoint not negotiated in SDP)";
  }
  scratch = "unexpected " + event.name + " in state " +
            std::string(machine.StateName());
  return scratch;
}

void Vids::OnDeviation(const efsm::MachineInstance& machine,
                       const efsm::Event& event) {
  // A machine stuck out-of-spec deviates on every packet of an ongoing
  // stream; suppress repeats before any alert string is assembled.
  std::string scratch;
  const std::string_view classification =
      DescribeDeviation(machine, event, scratch);
  const sim::Time now = scheduler_.Now();
  if (IsDuplicateAlert(machine.group().name(), machine.def().name(),
                       classification, now)) {
    m_alerts_suppressed_->Inc();
    return;
  }

  Alert alert;
  alert.when = now;
  alert.kind = AlertKind::kSpecDeviation;
  alert.classification = std::string(classification);
  alert.machine = machine.def().name();
  alert.group = machine.group().name();
  alert.state = std::string(machine.StateName());
  const std::string* src = event.ArgStr(argkey::kSrcIp);
  alert.detail = "event=" + event.name +
                 " src=" + (src != nullptr ? *src : std::string("?"));
  // A deviation is the *absence* of a transition: the trigger is the
  // deviation record the engine just stamped, not last_transition_.
  last_transition_ = nullptr;
  alert.trigger = "deviation: '" + event.name + "' in state " +
                  std::string(machine.StateName());
  AttachProvenance(alert, machine);
  RaiseAlert(std::move(alert));
}

void Vids::OnNondeterminism(const efsm::MachineInstance& machine,
                            const efsm::Event& event, size_t enabled_count) {
  constexpr std::string_view kClassification = "non-disjoint predicates";
  const sim::Time now = scheduler_.Now();
  if (IsDuplicateAlert(machine.group().name(), machine.def().name(),
                       kClassification, now)) {
    m_alerts_suppressed_->Inc();
    return;
  }

  Alert alert;
  alert.when = now;
  alert.kind = AlertKind::kNondeterminism;
  alert.classification = std::string(kClassification);
  alert.machine = machine.def().name();
  alert.group = machine.group().name();
  alert.state = std::string(machine.StateName());
  alert.detail = std::to_string(enabled_count) + " transitions enabled on " +
                 event.name;
  last_transition_ = nullptr;  // fired before OnTransition: no trigger yet
  alert.trigger = "non-disjoint predicates on '" + event.name + "'";
  AttachProvenance(alert, machine);
  RaiseAlert(std::move(alert));
}

bool Vids::IsDuplicateAlert(std::string_view group, std::string_view machine,
                            std::string_view classification,
                            sim::Time when) const {
  const auto it = recent_alerts_.find(
      detail::AlertSigView{group, machine, classification});
  return it != recent_alerts_.end() &&
         when - it->second < detection_.alert_dedup_window;
}

void Vids::PruneAlertSigs(sim::Time now,
                          const std::vector<std::string>& reclaimed_groups) {
  if (recent_alerts_.empty()) {
    m_alert_sigs_->Set(0);
    return;
  }
  std::unordered_set<std::string_view> reclaimed;
  reclaimed.reserve(reclaimed_groups.size());
  for (const auto& name : reclaimed_groups) reclaimed.insert(name);
  const sim::Duration window = detection_.alert_dedup_window;
  std::erase_if(recent_alerts_, [&](const auto& kv) {
    return now - kv.second >= window || reclaimed.contains(kv.first.group);
  });
  m_alert_sigs_->Set(static_cast<int64_t>(recent_alerts_.size()));
}

void Vids::RaiseAlert(Alert alert) {
  if (IsDuplicateAlert(alert.group, alert.machine, alert.classification,
                       alert.when)) {
    m_alerts_suppressed_->Inc();
    return;
  }
  m_alerts_->Inc();
  // Per-classification counters are created lazily here — alert emission is
  // already off the clean steady-state path, and the classification set is
  // small and bounded by the modeled scenarios.
  registry_.GetCounter("alerts." + alert.classification).Inc();
  const auto it = recent_alerts_.find(detail::AlertSigView{
      alert.group, alert.machine, alert.classification});
  if (it != recent_alerts_.end()) {
    it->second = alert.when;
  } else {
    recent_alerts_.emplace(
        detail::AlertSig{alert.group, alert.machine, alert.classification},
        alert.when);
    m_alert_sigs_->Set(static_cast<int64_t>(recent_alerts_.size()));
  }
  VIDS_INFO_C("vids") << alert.ToString();
  if (alert_callback_) alert_callback_(alert);
  alerts_.push_back(std::move(alert));
  if (max_retained_alerts_ != 0 && alerts_.size() > max_retained_alerts_) {
    // Drop the oldest half so trimming amortizes to O(1) per alert.
    alerts_.erase(alerts_.begin(),
                  alerts_.begin() +
                      static_cast<ptrdiff_t>(alerts_.size() / 2));
  }
}

size_t Vids::CountAlerts(AlertKind kind) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.kind == kind) ++count;
  }
  return count;
}

size_t Vids::CountAlerts(std::string_view classification) const {
  size_t count = 0;
  for (const auto& alert : alerts_) {
    if (alert.classification == classification) ++count;
  }
  return count;
}

}  // namespace vids::ids
