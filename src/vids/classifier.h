// Packet Classifier (paper Fig. 3, bottom stage).
//
// Turns raw datagrams into protocol-tagged EFSM events carrying the input
// vector x̄ the predicates read: SIP header fields and SDP media parameters,
// or RTP header fields. Classification is by content (a parse attempt),
// with the port/label only as a hint — attack traffic does not announce
// itself honestly.
#pragma once

#include <string>

#include "efsm/machine.h"
#include "net/datagram.h"
#include "sip/lazy_message.h"

namespace vids::ids {

enum class PacketProto { kSip, kRtp, kRtcp, kUnknown };

struct ClassifiedPacket {
  PacketProto proto = PacketProto::kUnknown;
  efsm::Event event;
  /// SIP: the Call-ID (call grouping key). RTP: empty — media is matched to
  /// a call through the fact base's media-endpoint index.
  std::string call_key;
  /// SIP INVITE: the destination AOR (INVITE-flood grouping key).
  std::string dest_key;
  /// Binary source/destination endpoints of the datagram — the fact base
  /// keys its media and victim indexes on these, no string round trips.
  net::Endpoint src;
  net::Endpoint dst;
};

class PacketClassifier {
 public:
  /// Classifies one datagram. Returns nullptr when it is neither parsable
  /// SIP nor RTP. The result points at per-protocol scratch owned by the
  /// classifier — valid until the next Classify call — so the steady-state
  /// path reuses event-argument and key-string capacity instead of
  /// rebuilding a ClassifiedPacket per packet. SIP fields come from the
  /// zero-copy lazy lexer; no sip::Message is materialized.
  const ClassifiedPacket* Classify(const net::Datagram& dgram,
                                   bool from_outside);

  uint64_t sip_packets() const { return sip_packets_; }
  uint64_t rtp_packets() const { return rtp_packets_; }
  uint64_t rtcp_packets() const { return rtcp_packets_; }
  uint64_t unknown_packets() const { return unknown_packets_; }

 private:
  const ClassifiedPacket* ClassifySip(const net::Datagram& dgram,
                                      bool from_outside);
  const ClassifiedPacket* ClassifyRtp(const net::Datagram& dgram,
                                      bool from_outside);
  const ClassifiedPacket* ClassifyRtcp(const net::Datagram& dgram,
                                       bool from_outside);

  uint64_t sip_packets_ = 0;
  uint64_t rtp_packets_ = 0;
  uint64_t rtcp_packets_ = 0;
  uint64_t unknown_packets_ = 0;

  // Reused per packet; each protocol shape writes its full argument set
  // every time (absent fields become monostate) so no value leaks from one
  // packet into the next.
  sip::LazyMessage lazy_;
  ClassifiedPacket sip_scratch_;
  ClassifiedPacket rtp_scratch_;
  ClassifiedPacket rtcp_scratch_;
};

/// Event names shared between the classifier and the machine definitions.
inline constexpr std::string_view kSipEvent = "SIP";
inline constexpr std::string_view kRtpEvent = "RTP";
inline constexpr std::string_view kRtcpEvent = "RTCP";
/// Synthesized by the Event Distributor for responses matching no call.
inline constexpr std::string_view kUnsolicitedEvent = "UNSOLICITED";
/// Synchronization channel and event names (δ_SIP→RTP of Fig. 2/5).
inline constexpr std::string_view kSipToRtpChannel = "SIP->RTP";
inline constexpr std::string_view kSyncOffer = "sync:offer";
inline constexpr std::string_view kSyncAnswer = "sync:answer";
inline constexpr std::string_view kSyncBye = "sync:bye";

/// Interned keys for the event argument vector x̄, shared by the classifier
/// (producer) and the machine predicates/actions (consumers) so hot-path
/// argument access never hashes a string.
namespace argkey {
// Transport endpoints (every packet event).
inline const efsm::ArgKey kSrcIp = efsm::ArgKey::Intern("src_ip");
inline const efsm::ArgKey kSrcPort = efsm::ArgKey::Intern("src_port");
inline const efsm::ArgKey kDstIp = efsm::ArgKey::Intern("dst_ip");
inline const efsm::ArgKey kDstPort = efsm::ArgKey::Intern("dst_port");
inline const efsm::ArgKey kFromOutside = efsm::ArgKey::Intern("from_outside");
// SIP.
inline const efsm::ArgKey kKind = efsm::ArgKey::Intern("kind");
inline const efsm::ArgKey kMethod = efsm::ArgKey::Intern("method");
inline const efsm::ArgKey kStatus = efsm::ArgKey::Intern("status");
inline const efsm::ArgKey kCallId = efsm::ArgKey::Intern("call_id");
inline const efsm::ArgKey kCseq = efsm::ArgKey::Intern("cseq");
inline const efsm::ArgKey kFrom = efsm::ArgKey::Intern("from");
inline const efsm::ArgKey kFromTag = efsm::ArgKey::Intern("from_tag");
inline const efsm::ArgKey kTo = efsm::ArgKey::Intern("to");
inline const efsm::ArgKey kToTag = efsm::ArgKey::Intern("to_tag");
inline const efsm::ArgKey kBranch = efsm::ArgKey::Intern("branch");
inline const efsm::ArgKey kSdpIp = efsm::ArgKey::Intern("sdp_ip");
inline const efsm::ArgKey kSdpPort = efsm::ArgKey::Intern("sdp_port");
inline const efsm::ArgKey kSdpCodec = efsm::ArgKey::Intern("sdp_codec");
inline const efsm::ArgKey kSdpPt = efsm::ArgKey::Intern("sdp_pt");
inline const efsm::ArgKey kUserAgent = efsm::ArgKey::Intern("user_agent");
// RTP / RTCP.
inline const efsm::ArgKey kSsrc = efsm::ArgKey::Intern("ssrc");
inline const efsm::ArgKey kSeq = efsm::ArgKey::Intern("seq");
inline const efsm::ArgKey kTs = efsm::ArgKey::Intern("ts");
inline const efsm::ArgKey kPt = efsm::ArgKey::Intern("pt");
inline const efsm::ArgKey kMarker = efsm::ArgKey::Intern("marker");
inline const efsm::ArgKey kPacketCount = efsm::ArgKey::Intern("packet_count");
// Synchronization events (δ_SIP→RTP payload).
inline const efsm::ArgKey kIp = efsm::ArgKey::Intern("ip");
inline const efsm::ArgKey kPort = efsm::ArgKey::Intern("port");
}  // namespace argkey

}  // namespace vids::ids
