// Packet Classifier (paper Fig. 3, bottom stage).
//
// Turns raw datagrams into protocol-tagged EFSM events carrying the input
// vector x̄ the predicates read: SIP header fields and SDP media parameters,
// or RTP header fields. Classification is by content (a parse attempt),
// with the port/label only as a hint — attack traffic does not announce
// itself honestly.
#pragma once

#include <optional>
#include <string>

#include "efsm/machine.h"
#include "net/datagram.h"
#include "sip/message.h"

namespace vids::ids {

enum class PacketProto { kSip, kRtp, kRtcp, kUnknown };

struct ClassifiedPacket {
  PacketProto proto = PacketProto::kUnknown;
  efsm::Event event;
  /// SIP: the Call-ID (call grouping key). RTP: empty — media is matched to
  /// a call through the fact base's media-endpoint index.
  std::string call_key;
  /// SIP INVITE: the destination AOR (INVITE-flood grouping key).
  std::string dest_key;
};

class PacketClassifier {
 public:
  /// Returns nullopt when the datagram is neither parsable SIP nor RTP.
  std::optional<ClassifiedPacket> Classify(const net::Datagram& dgram,
                                           bool from_outside);

  uint64_t sip_packets() const { return sip_packets_; }
  uint64_t rtp_packets() const { return rtp_packets_; }
  uint64_t rtcp_packets() const { return rtcp_packets_; }
  uint64_t unknown_packets() const { return unknown_packets_; }

 private:
  ClassifiedPacket ClassifySip(const sip::Message& message,
                               const net::Datagram& dgram, bool from_outside);
  std::optional<ClassifiedPacket> ClassifyRtp(const net::Datagram& dgram,
                                              bool from_outside);
  std::optional<ClassifiedPacket> ClassifyRtcp(const net::Datagram& dgram,
                                               bool from_outside);

  uint64_t sip_packets_ = 0;
  uint64_t rtp_packets_ = 0;
  uint64_t rtcp_packets_ = 0;
  uint64_t unknown_packets_ = 0;
};

/// Event names shared between the classifier and the machine definitions.
inline constexpr std::string_view kSipEvent = "SIP";
inline constexpr std::string_view kRtpEvent = "RTP";
inline constexpr std::string_view kRtcpEvent = "RTCP";
/// Synthesized by the Event Distributor for responses matching no call.
inline constexpr std::string_view kUnsolicitedEvent = "UNSOLICITED";
/// Synchronization channel and event names (δ_SIP→RTP of Fig. 2/5).
inline constexpr std::string_view kSipToRtpChannel = "SIP->RTP";
inline constexpr std::string_view kSyncOffer = "sync:offer";
inline constexpr std::string_view kSyncAnswer = "sync:answer";
inline constexpr std::string_view kSyncBye = "sync:bye";

}  // namespace vids::ids
