// Call State Fact Base (paper Fig. 3).
//
// Stores "the control state and its state variables and keeps track of the
// progress of state machines for each ongoing call": one MachineGroup per
// call (SIP spec + RTP spec + per-call attack patterns, δ channel routed),
// plus keyed groups for the per-destination patterns (INVITE flood per
// callee AOR, media spam / RTP flood per media endpoint, DRDoS per victim
// host). It owns the lifecycle: completed calls are deleted (with a
// tombstone against late retransmissions) and idle state is reclaimed on a
// sweep that runs both from the packet path and from a periodic scheduler
// event armed while any tracked state exists — idle tail state dies even
// when traffic stops entirely. It also maintains the media-endpoint → call
// index that lets the Event Distributor hand RTP packets to the right call
// group.
//
// Indexing is binary on the hot path: media endpoints and DRDoS victims key
// hash maps by packed 48-bit endpoint / 32-bit IP values (no ToString()),
// string-keyed maps are unordered with transparent string_view lookup, and
// every call entry carries its media keys so Sweep() erases exactly the
// deleted call's index entries instead of scanning the whole index.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/strings.h"
#include "efsm/engine.h"
#include "net/address.h"
#include "vids/config.h"
#include "vids/patterns.h"
#include "vids/spec_machines.h"

namespace vids::ids {

/// Keyed (non-call) group families.
enum class KeyedKind : uint8_t { kInviteFlood, kMediaEndpoint, kDrdos };

/// Flight-record `aux` encoding used by the fact base's kFactAssert /
/// kFactRetract records: family tag in the top byte, packed payload below
/// (media-endpoint key for the media tags, nothing for call lifecycle).
struct FactAux {
  static constexpr uint64_t kCallCreated = uint64_t{1} << 56;
  static constexpr uint64_t kMediaIndexed = uint64_t{2} << 56;
  static constexpr uint64_t kMediaRetracted = uint64_t{3} << 56;
  static constexpr uint64_t kTagMask = uint64_t{0xFF} << 56;
};

class CallStateFactBase {
 public:
  /// `registry`, when non-null, receives the fact-base gauges/counters and
  /// the shared engine metrics every machine group of this fact base
  /// updates. Null keeps all instrumentation pointed at the null sinks.
  CallStateFactBase(sim::Scheduler& scheduler, const DetectionConfig& config,
                    efsm::Observer* observer,
                    obs::MetricsRegistry* registry = nullptr);

  /// Renders a fact-base flight record (FactAux encoding) for provenance
  /// reports. Empty for records the fact base did not write.
  static std::string DecodeFactRecord(const obs::Record& record);

  /// Returns the call's machine group, creating it (SIP + RTP spec machines,
  /// CANCEL-DoS and hijack patterns, δ channel) on first sight.
  /// `created` reports whether this packet opened the call.
  efsm::MachineGroup& GetOrCreateCall(const std::string& call_id,
                                      bool& created);
  efsm::MachineGroup* FindCall(std::string_view call_id);

  /// Per-destination pattern group, generic string-keyed entry point:
  /// INVITE flood (key = callee AOR), media spam + RTP flood (key = media
  /// endpoint "ip:port"), DRDoS (key = victim IP). Media/DRDoS keys that
  /// parse as endpoint/IP are routed to the binary-keyed overloads below.
  efsm::MachineGroup& GetOrCreateKeyed(KeyedKind kind, const std::string& key);

  /// INVITE-flood fast path: runs once per INVITE request, so the "flood|"
  /// prefixed map key is composed in a reused scratch string and looked up
  /// transparently — the hit path performs no allocation.
  efsm::MachineGroup& GetOrCreateInviteFlood(std::string_view aor);

  /// Binary-keyed fast paths — no string formatting or parsing.
  efsm::MachineGroup& GetOrCreateMediaGroup(const net::Endpoint& endpoint);
  efsm::MachineGroup& GetOrCreateDrdosGroup(net::IpAddress victim);

  /// True if the call completed recently; its late retransmissions are
  /// dropped rather than treated as new (deviant) calls.
  bool IsTombstoned(std::string_view call_id) const;

  /// Media-endpoint index: negotiated RTP destinations → owning call.
  void IndexMedia(const net::Endpoint& endpoint, const std::string& call_id);
  /// Drops the endpoint's index entry, stamping a retraction record into the
  /// owning call's flight log. Used by the sharded engine when an SDP
  /// re-negotiation moves the endpoint to a call owned by a different shard
  /// — this shard must stop claiming the media stream. No-op when unknown.
  void RetractMedia(const net::Endpoint& endpoint);
  /// Drops the endpoint's per-endpoint keyed pattern group (media-spam /
  /// RTP-flood / RTCP-BYE counters) and its alert-dedup signatures, as if
  /// the group had just been swept. Used by the sharded engine when media
  /// ownership of the endpoint moves to another shard: the loser's partial
  /// counts must die deterministically rather than linger until the idle
  /// sweep and split the stream's counting. No-op when absent.
  void DropMediaKeyedGroup(const net::Endpoint& endpoint);
  std::optional<std::string> CallByMedia(const net::Endpoint& endpoint) const;
  /// Zero-copy variant: the indexed call's group, or nullptr when the
  /// endpoint is unknown or its call no longer exists.
  efsm::MachineGroup* FindGroupByMedia(const net::Endpoint& endpoint) const;

  /// Reclaims completed calls and idle groups. Cheap when nothing is due;
  /// call it from the packet path. Also fired by the periodic sweep event
  /// (armed on state creation) so reclamation does not depend on the next
  /// packet arriving.
  void Sweep(sim::Time now);

  /// Called at the end of every executed sweep with the names of the groups
  /// it reclaimed (call ids and keyed-group names; possibly none). The
  /// analysis engine uses this both as its time-driven pruning tick and to
  /// evict alert-dedup signatures belonging to state that no longer exists.
  using SweepListener =
      std::function<void(sim::Time now, const std::vector<std::string>&)>;
  void set_sweep_listener(SweepListener listener) {
    sweep_listener_ = std::move(listener);
  }

  /// Visits every live call group (diagnostics: the soak harness uses it
  /// to report what state lingering calls are stuck in).
  void ForEachCall(
      const std::function<void(const efsm::MachineGroup&)>& visit) const {
    for (const auto& [id, entry] : calls_) visit(*entry.group);
  }

  size_t call_count() const { return calls_.size(); }
  size_t keyed_count() const { return keyed_str_.size() + keyed_bin_.size(); }
  size_t tombstone_count() const { return tombstones_.size(); }
  size_t media_index_count() const { return media_index_.size(); }
  uint64_t calls_created() const { return calls_created_; }
  uint64_t calls_deleted() const { return calls_deleted_; }

  /// Total footprint of all tracked state — the §7.3 memory metric.
  size_t MemoryBytes() const;
  /// Footprint of one call's group, if it exists.
  std::optional<size_t> CallMemoryBytes(const std::string& call_id) const;

  const DetectionConfig& config() const { return config_; }

 private:
  struct Entry {
    std::unique_ptr<efsm::MachineGroup> group;
    sim::Time last_event;
    // Reverse index: packed media-endpoint keys negotiated by this call, so
    // deletion cleans media_index_ without a full scan.
    std::vector<uint64_t> media_keys;
  };
  struct MediaEntry {
    std::string call_id;
    efsm::MachineGroup* group = nullptr;  // owned by calls_[call_id]
  };

  template <typename T>
  using StringKeyed =
      std::unordered_map<std::string, T, common::StringHash, std::equal_to<>>;

  /// A call is over when its SIP machine retired and its RTP machine either
  /// retired or never left INIT (non-call transactions like REGISTER).
  bool CallComplete(const efsm::MachineGroup& group) const;

  void UpdateGauges();

  /// True while any map holds reclaimable state — the periodic sweep event
  /// keeps re-arming exactly as long as this holds.
  bool HasTrackedState() const {
    return !calls_.empty() || !keyed_str_.empty() || !keyed_bin_.empty() ||
           !tombstones_.empty() || !media_index_.empty();
  }

  /// Arms the periodic sweep event if it is not already pending. Called on
  /// state creation only, so the steady-state packet path never schedules.
  void ArmSweepTimer();

  sim::Scheduler& scheduler_;
  DetectionConfig config_;
  efsm::Observer* observer_;

  // Shared metric slots: one EngineMetrics copy source for every group,
  // plus the fact base's own lifecycle/sweep instrumentation.
  efsm::EngineMetrics engine_metrics_;
  obs::Counter* m_calls_created_ = &obs::NullCounter();
  obs::Counter* m_calls_deleted_ = &obs::NullCounter();
  obs::Counter* m_sweeps_ = &obs::NullCounter();
  obs::Histogram* m_sweep_ns_ = &obs::NullHistogram();
  obs::Gauge* m_active_calls_ = &obs::NullGauge();
  obs::Gauge* m_keyed_groups_ = &obs::NullGauge();
  obs::Gauge* m_media_index_ = &obs::NullGauge();
  obs::Gauge* m_tombstones_ = &obs::NullGauge();

  // Shared machine definitions, instantiated per call / per key.
  efsm::MachineDef sip_spec_;
  efsm::MachineDef rtp_spec_;
  AttackScenarioBase scenarios_;

  // Recycled call groups. Every call group has the same shape (two protocol
  // machines, two always-on scenario machines, one sync channel), and
  // building one is the dominant cost of admitting a new call — so swept
  // groups are reset and parked here instead of destroyed, and the next
  // call reuses one with all its buffer capacities warm. Bounded so an
  // INVITE flood cannot convert itself into pinned pool memory; sized to
  // absorb one sweep's reclaim batch at busy-hour call rates (hundreds of
  // calls/s × one sweep interval), a few hundred KB worst case.
  static constexpr size_t kGroupPoolCap = 256;
  std::vector<std::unique_ptr<efsm::MachineGroup>> group_pool_;

  StringKeyed<Entry> calls_;
  StringKeyed<Entry> keyed_str_;  // INVITE flood, name-prefixed "flood|"
  std::string flood_key_scratch_;  // reused by GetOrCreateInviteFlood
  // Media-endpoint and DRDoS groups, keyed by kind-tagged packed binary key.
  std::unordered_map<uint64_t, Entry> keyed_bin_;
  StringKeyed<sim::Time> tombstones_;
  std::unordered_map<uint64_t, MediaEntry> media_index_;
  sim::Time next_sweep_;
  sim::Scheduler::EventId sweep_event_;
  SweepListener sweep_listener_;
  uint64_t calls_created_ = 0;
  uint64_t calls_deleted_ = 0;
};

}  // namespace vids::ids
