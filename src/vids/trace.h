// Traffic trace capture and offline replay.
//
// The online vIDS sits on a tap; for forensics and for building detection
// regression corpora you also want to record the traffic it saw and re-run
// analysis later (with different thresholds, or a newer scenario base).
// TraceLog captures timestamped datagrams from the tap's mirror port into
// a line-oriented text format, and replays them into a fresh Vids on a
// fresh scheduler — reproducing the online run's alerts offline.
//
// Format, one packet per line:
//   <nanos> <in|out> <src ip:port> <dst ip:port> <sip|rtp|other>
//       <padding-bytes> <hex payload>
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "net/datagram.h"
#include "net/inline_tap.h"
#include "vids/ids.h"

namespace vids::ids {

struct TraceRecord {
  sim::Time when;
  bool from_outside = false;
  net::Datagram dgram;
};

class TraceLog {
 public:
  void Append(sim::Time when, const net::Datagram& dgram, bool from_outside);

  /// A tap monitor that records everything it sees with the scheduler's
  /// current time. `scheduler` and this object must outlive the tap's use.
  net::InlineTap::Monitor MakeRecorder(sim::Scheduler& scheduler);

  std::string Serialize() const;
  /// Parses a serialized trace. Fails closed: any malformed line — wrong
  /// field count, unparseable/negative/overflowing nanosecond timestamp,
  /// timestamp rewind, bad endpoint, odd-length or non-hex payload, or a
  /// padding count that would push the datagram past the 65507-byte UDP
  /// payload bound — returns nullopt, with a line-numbered description in
  /// `*error` when provided.
  static std::optional<TraceLog> Parse(std::string_view text,
                                       std::string* error = nullptr);

  /// Feeds every record into `vids` at its recorded time, on `scheduler`.
  /// By default the scheduler runs to exhaustion (every IDS-internal timer
  /// fires). Passing `until` stops at that simulated time instead — matching
  /// an online run that was halted there, so metric snapshots compare equal.
  void ReplayInto(Vids& vids, sim::Scheduler& scheduler,
                  std::optional<sim::Time> until = std::nullopt) const;

  const std::vector<TraceRecord>& records() const { return records_; }
  size_t size() const { return records_.size(); }

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace vids::ids
