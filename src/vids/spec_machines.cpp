#include "vids/spec_machines.h"

#include "vids/classifier.h"

namespace vids::ids {

namespace {

using efsm::ArgKey;
using efsm::Context;
using efsm::Event;
using efsm::MachineDef;
using efsm::StateKind;
using efsm::Value;

// Interned keys for the local variables the spec machines maintain. All
// predicate helpers below run once per inspected packet, so every name
// lookup is a pre-interned integer scan — no string hashing, no temporary
// "g_" + prefix concatenations.
namespace lkey {
const ArgKey kCallId = ArgKey::Intern("l_call_id");
const ArgKey kFromTag = ArgKey::Intern("l_from_tag");
const ArgKey kToTag = ArgKey::Intern("l_to_tag");
const ArgKey kBranch = ArgKey::Intern("l_branch");
const ArgKey kFwdSsrc = ArgKey::Intern("l_fwd_ssrc");
const ArgKey kFwdSeq = ArgKey::Intern("l_fwd_seq");
const ArgKey kFwdTs = ArgKey::Intern("l_fwd_ts");
const ArgKey kRevSsrc = ArgKey::Intern("l_rev_ssrc");
const ArgKey kRevSeq = ArgKey::Intern("l_rev_seq");
const ArgKey kRevTs = ArgKey::Intern("l_rev_ts");
}  // namespace lkey

const ArgKey kGCallerIp = ArgKey::Intern("g_caller_ip");
const ArgKey kGCalleeIp = ArgKey::Intern("g_callee_ip");

// ---- Predicate helpers over the classifier's event argument vector x̄ ----

bool IsRequest(const Context& c, std::string_view method) {
  const std::string* kind = c.event().ArgStr(argkey::kKind);
  if (kind == nullptr || *kind != "request") return false;
  const std::string* m = c.event().ArgStr(argkey::kMethod);
  return m != nullptr && *m == method;
}

// Response with status in [lo, hi] whose CSeq method is `method`.
bool IsResponse(const Context& c, int lo, int hi, std::string_view method) {
  const std::string* kind = c.event().ArgStr(argkey::kKind);
  if (kind == nullptr || *kind != "response") return false;
  const auto status = c.event().ArgInt(argkey::kStatus).value_or(0);
  if (status < lo || status > hi) return false;
  if (method.empty()) return true;
  const std::string* m = c.event().ArgStr(argkey::kMethod);
  return m != nullptr && *m == method;
}

// The per-direction media parameter keys ExportMedia writes.
struct MediaKeys {
  ArgKey ip, port, pt, codec;
};
const MediaKeys kOfferMedia{gkey::kOfferIp, gkey::kOfferPort, gkey::kOfferPt,
                            gkey::kOfferCodec};
const MediaKeys kAnswerMedia{gkey::kAnswerIp, gkey::kAnswerPort,
                             gkey::kAnswerPt, gkey::kAnswerCodec};

// Copies SDP media parameters from the event into the global variables
// behind `keys` and emits the δ sync event carrying the same values.
void ExportMedia(Context& c, const MediaKeys& keys,
                 std::string_view sync_name) {
  const Event& e = c.event();
  // Monostate-aware: the classifier's reused event writes every SDP slot on
  // every packet, with monostate meaning "no SDP in this message".
  if (e.ArgStr(argkey::kSdpIp) == nullptr) return;
  c.mutable_global().Set(keys.ip, e.Arg(argkey::kSdpIp));
  c.mutable_global().Set(keys.port, e.Arg(argkey::kSdpPort));
  c.mutable_global().Set(keys.pt, e.Arg(argkey::kSdpPt));
  c.mutable_global().Set(keys.codec, e.Arg(argkey::kSdpCodec));
  Event sync;
  sync.name = std::string(sync_name);
  sync.args[argkey::kIp] = e.Arg(argkey::kSdpIp);
  sync.args[argkey::kPort] = e.Arg(argkey::kSdpPort);
  sync.args[argkey::kPt] = e.Arg(argkey::kSdpPt);
  c.Emit(kSipToRtpChannel, sync);
}

// Records who initiated teardown (for the BYE DoS vs toll fraud split) and
// tells the RTP machine the session is closing.
void ExportClose(Context& c) {
  c.mutable_global().Set(gkey::kCloseSrcIp, c.event().Arg(argkey::kSrcIp));
  Event sync;
  sync.name = std::string(kSyncBye);
  c.Emit(kSipToRtpChannel, sync);
}

// RTP event's destination equals the media endpoint stored under the
// given ip/port global variables.
bool DstIsMediaEndpoint(const Context& c, ArgKey ip_key, ArgKey port_key) {
  const Value& ip = c.global().Get(ip_key);
  const Value& port = c.global().Get(port_key);
  if (std::holds_alternative<std::monostate>(ip) ||
      std::holds_alternative<std::monostate>(port)) {
    return false;
  }
  // A missing event argument reads as monostate and the guards above make
  // the comparison false, matching the old optional-based semantics.
  return c.event().Arg(argkey::kDstIp) == ip &&
         c.event().Arg(argkey::kDstPort) == port;
}

bool MatchesSession(const Context& c) {
  return DstIsMediaEndpoint(c, gkey::kOfferIp, gkey::kOfferPort) ||
         DstIsMediaEndpoint(c, gkey::kAnswerIp, gkey::kAnswerPort);
}

bool PayloadTypeOk(const Context& c) {
  const auto pt = c.event().ArgInt(argkey::kPt);
  const auto offer_pt = c.global().GetInt(gkey::kOfferPt);
  const auto answer_pt = c.global().GetInt(gkey::kAnswerPt);
  if (!pt) return false;
  if (offer_pt && *pt == *offer_pt) return true;
  if (answer_pt && *pt == *answer_pt) return true;
  // Nothing negotiated (no SDP seen): do not judge the payload type.
  return !offer_pt && !answer_pt;
}

// Updates the per-direction stream bookkeeping (SSRC, seq, timestamp) —
// the ≈40 bytes of RTP state the paper prices per call (§7.3).
void NoteStream(Context& c) {
  const bool toward_answer =
      DstIsMediaEndpoint(c, gkey::kAnswerIp, gkey::kAnswerPort);
  auto& l = c.mutable_local();
  const Event& e = c.event();
  l.Set(toward_answer ? lkey::kFwdSsrc : lkey::kRevSsrc,
        e.Arg(argkey::kSsrc));
  l.Set(toward_answer ? lkey::kFwdSeq : lkey::kRevSeq, e.Arg(argkey::kSeq));
  l.Set(toward_answer ? lkey::kFwdTs : lkey::kRevTs, e.Arg(argkey::kTs));
}

bool FromCloseInitiator(const Context& c) {
  const std::string* closer =
      std::get_if<std::string>(&c.global().Get(gkey::kCloseSrcIp));
  if (closer == nullptr) return false;
  const std::string* src = c.event().ArgStr(argkey::kSrcIp);
  return src != nullptr && *src == *closer;
}

}  // namespace

MachineDef BuildSipSpecMachine(const DetectionConfig&) {
  MachineDef def("sip-spec");
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto invite_rcvd = def.AddState("INVITE Rcvd");
  const auto proceeding = def.AddState("Proceeding");
  const auto answered = def.AddState("Answered");
  const auto established = def.AddState("Call Established");
  const auto teardown = def.AddState("Call tear-down begins");
  const auto closed = def.AddState("Closed", StateKind::kFinal);
  const auto cancelling = def.AddState("Cancelling");
  const auto cancelled = def.AddState("Cancelled", StateKind::kFinal);
  const auto failed = def.AddState("Failed");
  const auto failed_done = def.AddState("Failed-Closed", StateKind::kFinal);
  const auto registering = def.AddState("Registering");
  const auto reg_done = def.AddState("Registered", StateKind::kFinal);
  const auto querying = def.AddState("Querying");
  const auto query_done = def.AddState("Query-Closed", StateKind::kFinal);

  const std::string sip(kSipEvent);

  // --- Call setup (Fig. 2(a)) ---
  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "INVITE"); })
      .Do([](Context& c) {
        const Event& e = c.event();
        auto& l = c.mutable_local();
        l.Set(lkey::kCallId, e.Arg(argkey::kCallId));
        l.Set(lkey::kFromTag, e.Arg(argkey::kFromTag));
        l.Set(lkey::kBranch, e.Arg(argkey::kBranch));
        auto& g = c.mutable_global();
        g.Set(kGCallerIp, e.Arg(argkey::kSrcIp));
        g.Set(kGCalleeIp, e.Arg(argkey::kDstIp));
        ExportMedia(c, kOfferMedia, kSyncOffer);
      })
      .To(invite_rcvd, "INVITE received; media offer exported");

  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "REGISTER"); })
      .To(registering);
  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "OPTIONS"); })
      .To(querying);

  for (const auto state : {invite_rcvd, proceeding}) {
    def.On(state, sip)  // INVITE retransmission
        .When([](const Context& c) { return IsRequest(c, "INVITE"); })
        .To(state, "INVITE retransmission");
    def.On(state, sip)
        .When([](const Context& c) { return IsResponse(c, 200, 299, "INVITE"); })
        .Do([](Context& c) {
          c.mutable_local().Set(lkey::kToTag, c.event().Arg(argkey::kToTag));
          ExportMedia(c, kAnswerMedia, kSyncAnswer);
        })
        .To(answered, "call answered; media answer exported");
    def.On(state, sip)
        .When([](const Context& c) { return IsResponse(c, 300, 699, "INVITE"); })
        .To(failed);
    def.On(state, sip)
        .When([](const Context& c) { return IsRequest(c, "CANCEL"); })
        .To(cancelling);
  }
  def.On(invite_rcvd, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 179, "INVITE"); })
      .To(invite_rcvd, "still trying");
  def.On(invite_rcvd, sip)
      .When([](const Context& c) { return IsResponse(c, 180, 199, "INVITE"); })
      .To(proceeding, "ringing");
  def.On(proceeding, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "INVITE"); })
      .To(proceeding, "provisional");

  // --- Established dialog ---
  def.On(answered, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .To(established, "three-way handshake complete");
  def.On(answered, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 299, "INVITE"); })
      .To(answered, "200 retransmission");
  def.On(answered, sip)
      .When([](const Context& c) { return IsRequest(c, "BYE"); })
      .Do(ExportClose)
      .To(teardown, "BYE before ACK");

  def.On(established, sip)
      .When([](const Context& c) { return IsRequest(c, "INVITE"); })
      .To(established, "re-INVITE");
  def.On(established, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 299, "INVITE"); })
      .To(established, "re-INVITE progress");
  def.On(established, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .To(established, "ACK");
  def.On(established, sip)
      .When([](const Context& c) { return IsRequest(c, "BYE"); })
      .Do(ExportClose)
      .To(teardown, "BYE received; δ sent to RTP machine");

  // --- Teardown (Fig. 5 upper half) ---
  def.On(teardown, sip)
      .When([](const Context& c) { return IsRequest(c, "BYE"); })
      .To(teardown, "BYE retransmission");
  def.On(teardown, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 299, "BYE"); })
      .To(closed, "call closed");
  def.On(teardown, sip)
      .When([](const Context& c) { return IsResponse(c, 400, 499, "BYE"); })
      .To(closed, "teardown refused; call considered over");

  // --- Cancellation ---
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 299, "CANCEL"); })
      .To(cancelling, "CANCEL accepted");
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "INVITE"); })
      .To(cancelling);
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsResponse(c, 300, 699, "INVITE"); })
      .To(cancelling, "INVITE terminated");
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsRequest(c, "CANCEL"); })
      .To(cancelling, "CANCEL retransmission");
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .Do(ExportClose)
      .To(cancelled, "cancelled call closed");
  def.On(cancelling, sip)  // CANCEL lost the race with the answer
      .When([](const Context& c) { return IsResponse(c, 200, 299, "INVITE"); })
      .Do([](Context& c) { ExportMedia(c, kAnswerMedia, kSyncAnswer); })
      .To(answered, "answered despite CANCEL");

  // --- Failed setup ---
  def.On(failed, sip)
      .When([](const Context& c) { return IsResponse(c, 300, 699, "INVITE"); })
      .To(failed, "final response retransmission");
  def.On(failed, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .Do(ExportClose)
      .To(failed_done, "failed call closed");

  // --- Registration / capability query ---
  def.On(registering, sip)
      .When([](const Context& c) { return IsRequest(c, "REGISTER"); })
      .To(registering, "REGISTER retransmission");
  def.On(registering, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "REGISTER"); })
      .To(registering);
  def.On(registering, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 699, "REGISTER"); })
      .To(reg_done, "registration concluded");
  def.On(querying, sip)
      .When([](const Context& c) { return IsRequest(c, "OPTIONS"); })
      .To(querying, "OPTIONS retransmission");
  def.On(querying, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "OPTIONS"); })
      .To(querying);
  def.On(querying, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 699, "OPTIONS"); })
      .To(query_done, "query concluded");

  return def;
}

MachineDef BuildRtpSpecMachine(const DetectionConfig& config) {
  MachineDef def("rtp-spec");
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto open = def.AddState("RTP Open");
  const auto ready = def.AddState("RTP Ready");
  const auto active = def.AddState("RTP Rcvd");
  const auto encoding =
      def.AddState(std::string(kAttackEncoding), StateKind::kAttack);
  const auto close_wait = def.AddState("RTP rcvd after BYE");
  const auto closing = def.AddState("RTP Close");
  const auto bye_dos = def.AddState(std::string(kAttackByeDos),
                                    StateKind::kAttack);
  const auto toll_fraud = def.AddState(std::string(kAttackTollFraud),
                                       StateKind::kAttack);
  const auto done = def.AddState("Done", StateKind::kFinal);

  const std::string rtp(kRtpEvent);
  const std::string offer(kSyncOffer);
  const std::string answer(kSyncAnswer);
  const std::string bye(kSyncBye);
  const sim::Duration grace = config.bye_inflight_grace;
  const sim::Duration linger = config.rtp_close_linger;

  const auto store_media = [](std::string_view prefix) {
    struct Keys {
      ArgKey ip, port, pt;
    };
    const Keys keys{
        ArgKey::Intern("l_" + std::string(prefix) + "_ip"),
        ArgKey::Intern("l_" + std::string(prefix) + "_port"),
        ArgKey::Intern("l_" + std::string(prefix) + "_pt")};
    return [keys](Context& c) {
      auto& l = c.mutable_local();
      l.Set(keys.ip, c.event().Arg(argkey::kIp));
      l.Set(keys.port, c.event().Arg(argkey::kPort));
      l.Set(keys.pt, c.event().Arg(argkey::kPt));
    };
  };

  // INIT: only the δ from the SIP machine opens the RTP context (Fig. 2(a)).
  def.On(init, offer)
      .Do(store_media("offer"))
      .To(open, "δ(SIP→RTP): media offer; RTP state initialized");

  def.On(open, answer)
      .Do(store_media("answer"))
      .To(ready, "δ(SIP→RTP): media answer");
  def.On(open, rtp)
      .When([](const Context& c) {
        return DstIsMediaEndpoint(c, gkey::kOfferIp, gkey::kOfferPort) &&
               PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "early media toward caller");
  def.On(open, bye).To(done, "closed before any media");

  def.On(ready, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "media flowing");
  def.On(ready, bye)
      .Do([grace](Context& c) { c.StartTimer("T", grace); })
      .To(close_wait, "closed before media started");

  def.On(active, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "in-session media");
  def.On(active, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && !PayloadTypeOk(c);
      })
      .To(encoding, "media with non-negotiated encoding");
  def.On(active, bye)
      .Do([grace](Context& c) { c.StartTimer("T", grace); })
      .To(close_wait, "δ(SIP→RTP): BYE seen; timer T started");
  // Early media: the direct RTP path can beat the proxied 200 OK to the
  // monitoring point, so the answer δ may arrive after media started.
  def.On(active, answer)
      .Do(store_media("answer"))
      .To(active, "late media answer (early media raced the 200)");
  // Session-mismatched RTP falls through → specification deviation
  // ("unauthorized media"), reported by the engine.

  def.On(encoding, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "encoding restored");
  def.On(encoding, rtp)
      .When([](const Context& c) { return MatchesSession(c); })
      .To(encoding, "encoding still wrong");
  def.On(encoding, bye)
      .Do([grace](Context& c) { c.StartTimer("T", grace); })
      .To(close_wait);
  def.On(encoding, answer).Do(store_media("answer")).To(encoding);
  def.On(close_wait, answer).To(close_wait, "late answer during teardown");

  // Fig. 5: in-flight packets tolerated until T expires...
  def.On(close_wait, rtp)
      .When([](const Context& c) { return MatchesSession(c); })
      .To(close_wait, "in-flight RTP within T");
  def.On(close_wait, efsm::TimerEventName("T"))
      .Do([linger](Context& c) { c.StartTimer("linger", linger); })
      .To(closing, "T expired: RTP Close");

  // ...then any media is an attack, split by who tore the call down.
  def.On(closing, rtp)
      .When(FromCloseInitiator)
      .To(toll_fraud, "RTP continues from the BYE sender");
  def.On(closing, rtp)
      .When([](const Context& c) { return !FromCloseInitiator(c); })
      .To(bye_dos, "RTP continues after BYE from a third party");
  def.On(closing, efsm::TimerEventName("linger")).To(done, "call retired");

  for (const auto attack_state : {bye_dos, toll_fraud}) {
    def.On(attack_state, rtp).To(attack_state, "attack media continues");
    def.On(attack_state, efsm::TimerEventName("linger")).To(done);
  }

  return def;
}

}  // namespace vids::ids
