#include "vids/spec_machines.h"

#include "vids/classifier.h"

namespace vids::ids {

namespace {

using efsm::Context;
using efsm::Event;
using efsm::MachineDef;
using efsm::StateKind;

// ---- Predicate helpers over the classifier's event argument vector x̄ ----

bool IsRequest(const Context& c, std::string_view method) {
  return c.event().ArgString("kind") == "request" &&
         c.event().ArgString("method") == method;
}

// Response with status in [lo, hi] whose CSeq method is `method`.
bool IsResponse(const Context& c, int lo, int hi, std::string_view method) {
  if (c.event().ArgString("kind") != "response") return false;
  const auto status = c.event().ArgInt("status").value_or(0);
  if (status < lo || status > hi) return false;
  return method.empty() || c.event().ArgString("method") == method;
}

// Copies SDP media parameters from the event into global variables with the
// given prefix and emits the δ sync event carrying the same values.
void ExportMedia(Context& c, std::string_view prefix,
                 std::string_view sync_name) {
  const Event& e = c.event();
  if (!e.args.contains("sdp_ip")) return;
  const std::string p(prefix);
  c.mutable_global().Set("g_" + p + "_ip", e.Arg("sdp_ip"));
  c.mutable_global().Set("g_" + p + "_port", e.Arg("sdp_port"));
  c.mutable_global().Set("g_" + p + "_pt", e.Arg("sdp_pt"));
  c.mutable_global().Set("g_" + p + "_codec", e.Arg("sdp_codec"));
  Event sync;
  sync.name = std::string(sync_name);
  sync.args["ip"] = e.Arg("sdp_ip");
  sync.args["port"] = e.Arg("sdp_port");
  sync.args["pt"] = e.Arg("sdp_pt");
  c.Emit(kSipToRtpChannel, sync);
}

// Records who initiated teardown (for the BYE DoS vs toll fraud split) and
// tells the RTP machine the session is closing.
void ExportClose(Context& c) {
  c.mutable_global().Set("g_close_src_ip", c.event().Arg("src_ip"));
  Event sync;
  sync.name = std::string(kSyncBye);
  c.Emit(kSipToRtpChannel, sync);
}

// RTP event's destination equals the media endpoint stored under
// g_<prefix>_ip / g_<prefix>_port.
bool DstIsMediaEndpoint(const Context& c, std::string_view prefix) {
  const std::string p(prefix);
  const auto ip = c.global().GetString("g_" + p + "_ip");
  const auto port = c.global().GetInt("g_" + p + "_port");
  if (!ip || !port) return false;
  return c.event().ArgString("dst_ip") == *ip &&
         c.event().ArgInt("dst_port") == *port;
}

bool MatchesSession(const Context& c) {
  return DstIsMediaEndpoint(c, "offer") || DstIsMediaEndpoint(c, "answer");
}

bool PayloadTypeOk(const Context& c) {
  const auto pt = c.event().ArgInt("pt");
  const auto offer_pt = c.global().GetInt("g_offer_pt");
  const auto answer_pt = c.global().GetInt("g_answer_pt");
  if (!pt) return false;
  if (offer_pt && *pt == *offer_pt) return true;
  if (answer_pt && *pt == *answer_pt) return true;
  // Nothing negotiated (no SDP seen): do not judge the payload type.
  return !offer_pt && !answer_pt;
}

// Updates the per-direction stream bookkeeping (SSRC, seq, timestamp) —
// the ≈40 bytes of RTP state the paper prices per call (§7.3).
void NoteStream(Context& c) {
  const bool toward_answer = DstIsMediaEndpoint(c, "answer");
  const std::string dir = toward_answer ? "fwd" : "rev";
  auto& l = c.mutable_local();
  l.Set("l_" + dir + "_ssrc", c.event().Arg("ssrc"));
  l.Set("l_" + dir + "_seq", c.event().Arg("seq"));
  l.Set("l_" + dir + "_ts", c.event().Arg("ts"));
}

bool FromCloseInitiator(const Context& c) {
  const auto closer = c.global().GetString("g_close_src_ip");
  return closer && c.event().ArgString("src_ip") == *closer;
}

}  // namespace

MachineDef BuildSipSpecMachine(const DetectionConfig&) {
  MachineDef def("sip-spec");
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto invite_rcvd = def.AddState("INVITE Rcvd");
  const auto proceeding = def.AddState("Proceeding");
  const auto answered = def.AddState("Answered");
  const auto established = def.AddState("Call Established");
  const auto teardown = def.AddState("Call tear-down begins");
  const auto closed = def.AddState("Closed", StateKind::kFinal);
  const auto cancelling = def.AddState("Cancelling");
  const auto cancelled = def.AddState("Cancelled", StateKind::kFinal);
  const auto failed = def.AddState("Failed");
  const auto failed_done = def.AddState("Failed-Closed", StateKind::kFinal);
  const auto registering = def.AddState("Registering");
  const auto reg_done = def.AddState("Registered", StateKind::kFinal);
  const auto querying = def.AddState("Querying");
  const auto query_done = def.AddState("Query-Closed", StateKind::kFinal);

  const std::string sip(kSipEvent);

  // --- Call setup (Fig. 2(a)) ---
  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "INVITE"); })
      .Do([](Context& c) {
        const Event& e = c.event();
        auto& l = c.mutable_local();
        l.Set("l_call_id", e.Arg("call_id"));
        l.Set("l_from_tag", e.Arg("from_tag"));
        l.Set("l_branch", e.Arg("branch"));
        auto& g = c.mutable_global();
        g.Set("g_caller_ip", e.Arg("src_ip"));
        g.Set("g_callee_ip", e.Arg("dst_ip"));
        ExportMedia(c, "offer", kSyncOffer);
      })
      .To(invite_rcvd, "INVITE received; media offer exported");

  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "REGISTER"); })
      .To(registering);
  def.On(init, sip)
      .When([](const Context& c) { return IsRequest(c, "OPTIONS"); })
      .To(querying);

  for (const auto state : {invite_rcvd, proceeding}) {
    def.On(state, sip)  // INVITE retransmission
        .When([](const Context& c) { return IsRequest(c, "INVITE"); })
        .To(state, "INVITE retransmission");
    def.On(state, sip)
        .When([](const Context& c) { return IsResponse(c, 200, 299, "INVITE"); })
        .Do([](Context& c) {
          c.mutable_local().Set("l_to_tag", c.event().Arg("to_tag"));
          ExportMedia(c, "answer", kSyncAnswer);
        })
        .To(answered, "call answered; media answer exported");
    def.On(state, sip)
        .When([](const Context& c) { return IsResponse(c, 300, 699, "INVITE"); })
        .To(failed);
    def.On(state, sip)
        .When([](const Context& c) { return IsRequest(c, "CANCEL"); })
        .To(cancelling);
  }
  def.On(invite_rcvd, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 179, "INVITE"); })
      .To(invite_rcvd, "still trying");
  def.On(invite_rcvd, sip)
      .When([](const Context& c) { return IsResponse(c, 180, 199, "INVITE"); })
      .To(proceeding, "ringing");
  def.On(proceeding, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "INVITE"); })
      .To(proceeding, "provisional");

  // --- Established dialog ---
  def.On(answered, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .To(established, "three-way handshake complete");
  def.On(answered, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 299, "INVITE"); })
      .To(answered, "200 retransmission");
  def.On(answered, sip)
      .When([](const Context& c) { return IsRequest(c, "BYE"); })
      .Do(ExportClose)
      .To(teardown, "BYE before ACK");

  def.On(established, sip)
      .When([](const Context& c) { return IsRequest(c, "INVITE"); })
      .To(established, "re-INVITE");
  def.On(established, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 299, "INVITE"); })
      .To(established, "re-INVITE progress");
  def.On(established, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .To(established, "ACK");
  def.On(established, sip)
      .When([](const Context& c) { return IsRequest(c, "BYE"); })
      .Do(ExportClose)
      .To(teardown, "BYE received; δ sent to RTP machine");

  // --- Teardown (Fig. 5 upper half) ---
  def.On(teardown, sip)
      .When([](const Context& c) { return IsRequest(c, "BYE"); })
      .To(teardown, "BYE retransmission");
  def.On(teardown, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 299, "BYE"); })
      .To(closed, "call closed");
  def.On(teardown, sip)
      .When([](const Context& c) { return IsResponse(c, 400, 499, "BYE"); })
      .To(closed, "teardown refused; call considered over");

  // --- Cancellation ---
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 299, "CANCEL"); })
      .To(cancelling, "CANCEL accepted");
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "INVITE"); })
      .To(cancelling);
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsResponse(c, 300, 699, "INVITE"); })
      .To(cancelling, "INVITE terminated");
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsRequest(c, "CANCEL"); })
      .To(cancelling, "CANCEL retransmission");
  def.On(cancelling, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .Do(ExportClose)
      .To(cancelled, "cancelled call closed");
  def.On(cancelling, sip)  // CANCEL lost the race with the answer
      .When([](const Context& c) { return IsResponse(c, 200, 299, "INVITE"); })
      .Do([](Context& c) { ExportMedia(c, "answer", kSyncAnswer); })
      .To(answered, "answered despite CANCEL");

  // --- Failed setup ---
  def.On(failed, sip)
      .When([](const Context& c) { return IsResponse(c, 300, 699, "INVITE"); })
      .To(failed, "final response retransmission");
  def.On(failed, sip)
      .When([](const Context& c) { return IsRequest(c, "ACK"); })
      .Do(ExportClose)
      .To(failed_done, "failed call closed");

  // --- Registration / capability query ---
  def.On(registering, sip)
      .When([](const Context& c) { return IsRequest(c, "REGISTER"); })
      .To(registering, "REGISTER retransmission");
  def.On(registering, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "REGISTER"); })
      .To(registering);
  def.On(registering, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 699, "REGISTER"); })
      .To(reg_done, "registration concluded");
  def.On(querying, sip)
      .When([](const Context& c) { return IsRequest(c, "OPTIONS"); })
      .To(querying, "OPTIONS retransmission");
  def.On(querying, sip)
      .When([](const Context& c) { return IsResponse(c, 100, 199, "OPTIONS"); })
      .To(querying);
  def.On(querying, sip)
      .When([](const Context& c) { return IsResponse(c, 200, 699, "OPTIONS"); })
      .To(query_done, "query concluded");

  return def;
}

MachineDef BuildRtpSpecMachine(const DetectionConfig& config) {
  MachineDef def("rtp-spec");
  const auto init = def.AddState("INIT", StateKind::kInitial);
  const auto open = def.AddState("RTP Open");
  const auto ready = def.AddState("RTP Ready");
  const auto active = def.AddState("RTP Rcvd");
  const auto encoding =
      def.AddState(std::string(kAttackEncoding), StateKind::kAttack);
  const auto close_wait = def.AddState("RTP rcvd after BYE");
  const auto closing = def.AddState("RTP Close");
  const auto bye_dos = def.AddState(std::string(kAttackByeDos),
                                    StateKind::kAttack);
  const auto toll_fraud = def.AddState(std::string(kAttackTollFraud),
                                       StateKind::kAttack);
  const auto done = def.AddState("Done", StateKind::kFinal);

  const std::string rtp(kRtpEvent);
  const std::string offer(kSyncOffer);
  const std::string answer(kSyncAnswer);
  const std::string bye(kSyncBye);
  const sim::Duration grace = config.bye_inflight_grace;
  const sim::Duration linger = config.rtp_close_linger;

  const auto store_media = [](std::string_view prefix) {
    return [p = std::string(prefix)](Context& c) {
      auto& l = c.mutable_local();
      l.Set("l_" + p + "_ip", c.event().Arg("ip"));
      l.Set("l_" + p + "_port", c.event().Arg("port"));
      l.Set("l_" + p + "_pt", c.event().Arg("pt"));
    };
  };

  // INIT: only the δ from the SIP machine opens the RTP context (Fig. 2(a)).
  def.On(init, offer)
      .Do(store_media("offer"))
      .To(open, "δ(SIP→RTP): media offer; RTP state initialized");

  def.On(open, answer)
      .Do(store_media("answer"))
      .To(ready, "δ(SIP→RTP): media answer");
  def.On(open, rtp)
      .When([](const Context& c) {
        return DstIsMediaEndpoint(c, "offer") && PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "early media toward caller");
  def.On(open, bye).To(done, "closed before any media");

  def.On(ready, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "media flowing");
  def.On(ready, bye)
      .Do([grace](Context& c) { c.StartTimer("T", grace); })
      .To(close_wait, "closed before media started");

  def.On(active, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "in-session media");
  def.On(active, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && !PayloadTypeOk(c);
      })
      .To(encoding, "media with non-negotiated encoding");
  def.On(active, bye)
      .Do([grace](Context& c) { c.StartTimer("T", grace); })
      .To(close_wait, "δ(SIP→RTP): BYE seen; timer T started");
  // Early media: the direct RTP path can beat the proxied 200 OK to the
  // monitoring point, so the answer δ may arrive after media started.
  def.On(active, answer)
      .Do(store_media("answer"))
      .To(active, "late media answer (early media raced the 200)");
  // Session-mismatched RTP falls through → specification deviation
  // ("unauthorized media"), reported by the engine.

  def.On(encoding, rtp)
      .When([](const Context& c) {
        return MatchesSession(c) && PayloadTypeOk(c);
      })
      .Do(NoteStream)
      .To(active, "encoding restored");
  def.On(encoding, rtp)
      .When([](const Context& c) { return MatchesSession(c); })
      .To(encoding, "encoding still wrong");
  def.On(encoding, bye)
      .Do([grace](Context& c) { c.StartTimer("T", grace); })
      .To(close_wait);
  def.On(encoding, answer).Do(store_media("answer")).To(encoding);
  def.On(close_wait, answer).To(close_wait, "late answer during teardown");

  // Fig. 5: in-flight packets tolerated until T expires...
  def.On(close_wait, rtp)
      .When([](const Context& c) { return MatchesSession(c); })
      .To(close_wait, "in-flight RTP within T");
  def.On(close_wait, efsm::TimerEventName("T"))
      .Do([linger](Context& c) { c.StartTimer("linger", linger); })
      .To(closing, "T expired: RTP Close");

  // ...then any media is an attack, split by who tore the call down.
  def.On(closing, rtp)
      .When(FromCloseInitiator)
      .To(toll_fraud, "RTP continues from the BYE sender");
  def.On(closing, rtp)
      .When([](const Context& c) { return !FromCloseInitiator(c); })
      .To(bye_dos, "RTP continues after BYE from a third party");
  def.On(closing, efsm::TimerEventName("linger")).To(done, "call retired");

  for (const auto attack_state : {bye_dos, toll_fraud}) {
    def.On(attack_state, rtp).To(attack_state, "attack media continues");
    def.On(attack_state, efsm::TimerEventName("linger")).To(done);
  }

  return def;
}

}  // namespace vids::ids
