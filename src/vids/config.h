// vIDS tunables: detection thresholds and the per-packet processing-cost
// model.
//
// The thresholds are the paper's adjustable variables: N and T1 for INVITE
// flooding (Fig. 4), T for in-flight RTP after a BYE (Fig. 5, "one RTT
// should be long enough"), and Δn/Δt sequence/timestamp gaps for media
// spamming (Fig. 6). The cost model reproduces the measured overheads of
// §7.2–§7.4 on 2006-era hardware: ~50 ms of analysis per SIP message
// (two signaling messages in the INVITE→180 path ⇒ ≈100 ms extra call setup
// delay) and ~1 ms per RTP packet (≈1.5 ms average extra media delay once
// queueing is included).
#pragma once

#include "sim/time.h"
#include "vids/behavior/behavior.h"

namespace vids::ids {

struct DetectionConfig {
  /// Ablation switch: when false, the δ synchronization channel between the
  /// SIP and RTP machines is not routed, reducing vIDS to two independent
  /// single-protocol monitors. The ablation bench shows exactly which
  /// attacks (BYE DoS, toll fraud) only the cross-protocol view catches.
  bool enable_cross_protocol = true;

  // --- INVITE flooding (Fig. 4) ---
  /// N: INVITEs for one destination within the window considered normal.
  int invite_flood_threshold = 5;
  /// T1: the observation window.
  sim::Duration invite_flood_window = sim::Duration::Seconds(1);

  // --- BYE DoS / toll fraud (Fig. 5) ---
  /// T: grace period after a BYE for in-flight RTP (≈ one RTT).
  sim::Duration bye_inflight_grace = sim::Duration::Millis(120);
  /// How long the RTP machine lingers in (RTP Close) watching for
  /// post-teardown media before the call state is deleted. Must comfortably
  /// exceed VAD silence periods (mean ~1.6 s, heavy tail): a duped caller's
  /// stream pauses with the conversation, and evidence arriving after the
  /// machine retired is evidence missed. 30 s puts the miss probability
  /// below 1e-8 for P.59-style speech at ~40 B of extra state per call.
  sim::Duration rtp_close_linger = sim::Duration::Seconds(30);

  // --- Media spamming (Fig. 6) ---
  /// Δn: sequence-number jump considered a fabricated stream.
  int64_t spam_seq_gap = 50;
  /// Δt: timestamp jump considered a fabricated stream (RTP clock units;
  /// 4000 = 0.5 s at the 8 kHz voice clock).
  int64_t spam_ts_gap = 4000;
  /// Consecutive non-forward sequence numbers before the stream is deemed
  /// raced-ahead by an injected clone (catches low-and-slow injection that
  /// keeps its own gaps small: the *genuine* stream then looks like a
  /// persistent replay).
  int spam_regress_threshold = 3;

  // --- RTP flooding ---
  /// Packets to one media endpoint within the window considered normal
  /// (a G.729 stream is 100 pkt/s, so 1 s at 150 allows jitter bursts).
  int rtp_flood_threshold = 150;
  sim::Duration rtp_flood_window = sim::Duration::Seconds(1);

  // --- Alert deduplication ---
  /// Suppression window for repeated identical alerts (an ongoing flood
  /// would otherwise alert per packet). Dedup signatures older than this
  /// are pruned on sweep, so the signature table is bounded by the alert
  /// rate of the last window rather than by deployment lifetime.
  sim::Duration alert_dedup_window = sim::Duration::Seconds(1);

  // --- Call-state lifecycle (paper §5: machines deleted at final state) ---
  /// How often the fact base sweeps for completed/idle state. Sweeps fire
  /// from the packet path *and* from a scheduler-armed periodic event that
  /// stays armed while any tracked state exists, so idle tail state is
  /// reclaimed even when traffic pauses entirely. Once everything is
  /// reclaimed the event is not re-armed: an empty, idle IDS schedules
  /// nothing.
  sim::Duration sweep_interval = sim::Duration::Seconds(1);
  /// Completed Call-IDs are remembered this long so late retransmissions
  /// don't re-open a call as a false "deviation".
  sim::Duration tombstone_ttl = sim::Duration::Seconds(32);
  /// A call group with no traffic for this long is abandoned (e.g. the
  /// one-INVITE-per-Call-ID residue of a flood) and reclaimed.
  sim::Duration call_idle_timeout = sim::Duration::Seconds(180);
  /// Per-destination pattern groups are reclaimed after this idle time.
  sim::Duration keyed_idle_timeout = sim::Duration::Seconds(30);

  // --- DRDoS reflection ---
  /// Unsolicited SIP responses to one host within the window tolerated
  /// (stray retransmits happen; floods do not).
  int drdos_threshold = 10;
  sim::Duration drdos_window = sim::Duration::Seconds(2);

  // --- Behavioral anomaly layer (DESIGN.md §16) ---
  /// Per-endpoint profiling/scoring thresholds and weights. Rides inside
  /// DetectionConfig so the sharded engine's per-shard Vids and the
  /// coordinator's replay-side engine are configured identically for free.
  behavior::BehaviorConfig behavior;
};

/// Simulated CPU cost the inline vIDS host charges per analyzed packet.
struct CostModel {
  sim::Duration sip_cost = sim::Duration::Millis(50);
  sim::Duration rtp_cost = sim::Duration::Millis(1);
};

}  // namespace vids::ids
